// Package tomography is a Go implementation of the system described in
// "Shifting Network Tomography Toward A Practical Goal" (Ghita,
// Karakus, Argyraki, Thiran — ACM CoNEXT 2011).
//
// It provides, as a library:
//
//   - the Boolean network-tomography model: AS-level topologies with
//     links, end-to-end paths, coverage functions and correlation sets
//     (one per AS by default);
//   - a unified Estimator interface over every algorithm of the paper,
//     selected by registry name: the Correlation-complete Congestion
//     Probability Computation algorithm (the paper's contribution,
//     Algorithms 1 and 2), the Independence and Correlation-heuristic
//     baselines, and adapters over the three Boolean Inference
//     algorithms (Sparsity, Bayesian-Independence,
//     Bayesian-Correlation) whose limitations motivate the paper;
//   - the experimental substrate: BRITE-style dense topology
//     generation, a traceroute-campaign synthesizer for sparse
//     ISP-view topologies, and a congestion/loss/probing simulator
//     with router-level correlation ground truth.
//
// # Quick start
//
// Monitor a network by recording, per measurement interval, which paths
// were congested; then run any estimator from the registry over the
// observations:
//
//	top := tomography.Fig1Case1() // or your own topology
//	rec := tomography.NewRecorder(top.NumPaths())
//	for each interval {
//	    rec.Add(congestedPaths) // a bitset of path IDs
//	}
//	est, err := tomography.NewEstimator("correlation-complete")
//	res, err := est.Estimate(ctx, top, rec,
//	    tomography.WithMaxSubsetSize(2),
//	    tomography.WithAlwaysGoodTol(0.02))
//	p, exact := res.LinkCongestProb(linkID)
//
// Every estimator accepts any ObservationStore — a full-period Recorder
// or a live SlidingWindow — and the same functional options; the
// context cancels a long solve. tomography.Estimators() lists the
// registry. Joint subset probabilities (the paper's primary output) are
// on res.Subsets and, for Correlation-complete, res.Detail.
//
// See examples/ for complete programs, cmd/tomo for the harness that
// regenerates every figure and table of the paper, and cmd/tomod for
// the streaming daemon exposing the same registry over HTTP. MIGRATION.md
// maps the pre-registry API onto this one.
package tomography

import (
	"context"
	"math/rand"

	"repro/internal/bitset"
	"repro/internal/brite"
	"repro/internal/core"
	"repro/internal/estimator"
	"repro/internal/inference"
	"repro/internal/netsim"
	"repro/internal/observe"
	"repro/internal/probcalc"
	"repro/internal/stream"
	"repro/internal/topology"
	"repro/internal/traceroute"
)

// ---------------------------------------------------------------------
// Network model
// ---------------------------------------------------------------------

// Topology is the network model: links, loop-free end-to-end paths, and
// correlation sets (Assumption 5).
type Topology = topology.Topology

// Link is a logical (AS-level) link.
type Link = topology.Link

// Path is a loop-free end-to-end path.
type Path = topology.Path

// Set is a bit set of link or path IDs.
type Set = bitset.Set

// NewSet returns an empty set over universe [0, n).
func NewSet(n int) *Set { return bitset.New(n) }

// SetOf returns a set over [0, n) containing the given indices.
func SetOf(n int, indices ...int) *Set { return bitset.FromIndices(n, indices...) }

// NewTopology assembles a topology, reporting structurally invalid
// input (dangling link references, loops, overlapping correlation sets)
// as an error. corrSets may be nil (every link becomes its own
// correlation set); use CorrelationSetsByAS for the paper's
// one-set-per-AS policy.
func NewTopology(links []Link, paths []Path, corrSets [][]int) (*Topology, error) {
	return topology.NewChecked(links, paths, corrSets)
}

// MustNewTopology is NewTopology panicking on invalid input, for
// hand-written literal topologies.
func MustNewTopology(links []Link, paths []Path, corrSets [][]int) *Topology {
	return topology.New(links, paths, corrSets)
}

// CorrelationSetsByAS groups links into one correlation set per AS (§2).
func CorrelationSetsByAS(links []Link) [][]int { return topology.CorrelationSetsByAS(links) }

// Fig1Case1 returns the paper's toy topology (Fig. 1) with correlation
// sets {{e1}, {e2,e3}, {e4}}.
func Fig1Case1() *Topology { return topology.Fig1Case1() }

// Fig1Case2 returns the toy topology with correlation sets
// {{e1,e4}, {e2,e3}}, for which Identifiability++ fails.
func Fig1Case2() *Topology { return topology.Fig1Case2() }

// ---------------------------------------------------------------------
// Observation
// ---------------------------------------------------------------------

// Recorder accumulates per-interval path observations (Assumption 2).
type Recorder = observe.Recorder

// NewRecorder returns an empty recorder for numPaths paths.
func NewRecorder(numPaths int) *Recorder { return observe.NewRecorder(numPaths) }

// ObservationStore is the read side shared by Recorder and
// SlidingWindow; every estimator accepts it.
type ObservationStore = observe.Store

// SlidingWindow is a bounded observation store retaining only the most
// recent intervals, the substrate of the streaming service (cmd/tomod).
// Adding an interval past capacity evicts the oldest in O(words).
type SlidingWindow = stream.Window

// NewSlidingWindow returns an empty window over numPaths paths
// retaining at most capacity intervals.
func NewSlidingWindow(numPaths, capacity int) *SlidingWindow {
	return stream.NewWindow(numPaths, capacity)
}

// ---------------------------------------------------------------------
// The unified Estimator interface
// ---------------------------------------------------------------------

// Estimator is one congestion-probability estimation algorithm: it runs
// over a topology and any observation store, tuned by functional
// options, cancellable through the context. Obtain one from
// NewEstimator; implementations are stateless and safe for concurrent
// use.
type Estimator = estimator.Estimator

// Estimate is the unified output of every estimator: per-link
// congestion probabilities, plus subset-level probabilities and solver
// diagnostics for the algorithms that produce them.
type Estimate = estimator.Estimate

// SubsetEstimate is the estimated probability that all links of one
// correlation subset are simultaneously good.
type SubsetEstimate = estimator.SubsetEstimate

// Option tunes an estimator run; options validate eagerly and surface
// bad values as errors from Estimate, never as panics.
type Option = estimator.Option

// Estimators lists the registered estimator names, sorted:
// "bayesian-correlation", "bayesian-independence",
// "correlation-complete", "correlation-complete-sharded",
// "correlation-heuristic", "independence", "sparsity".
// "correlation-complete-sharded" solves each correlation-set shard
// (connected component of the correlation-set/path incidence)
// independently and merges the blocks — identical output, block-wise
// cost.
func Estimators() []string { return estimator.Names() }

// NewEstimator returns the estimator registered under name; the error
// of an unknown name lists the known ones.
func NewEstimator(name string) (Estimator, error) { return estimator.New(name) }

// The functional options shared by every estimator; each algorithm
// reads the knobs relevant to it and ignores the rest.
var (
	// WithMaxSubsetSize bounds the enumerated correlation-subset size
	// (the paper's resource knob, §4). 0 means unbounded.
	WithMaxSubsetSize = estimator.WithMaxSubsetSize
	// WithAlwaysGoodTol sets the congested-fraction tolerance under
	// which a path counts as always good, in [0, 1).
	WithAlwaysGoodTol = estimator.WithAlwaysGoodTol
	// WithMaxEnumPathSets caps the per-subset candidate enumeration of
	// the Correlation-complete augmentation loop.
	WithMaxEnumPathSets = estimator.WithMaxEnumPathSets
	// WithConcurrency bounds solver workers: 0/-1 = all CPUs, 1 =
	// serial; results are bit-identical at every setting.
	WithConcurrency = estimator.WithConcurrency
	// WithPairsPerLink sizes the Independence baseline's per-link
	// path-pair sampling.
	WithPairsPerLink = estimator.WithPairsPerLink
	// WithGlobalPairs sizes the Independence baseline's global
	// path-pair sampling (-1 disables).
	WithGlobalPairs = estimator.WithGlobalPairs
	// WithSweeps sets the Correlation-heuristic substitution sweeps.
	WithSweeps = estimator.WithSweeps
	// WithSeed seeds the estimators that sample.
	WithSeed = estimator.WithSeed
)

// ---------------------------------------------------------------------
// Congestion Probability Computation (direct, pre-registry forms)
// ---------------------------------------------------------------------

// ProbabilityConfig tunes the Correlation-complete algorithm; the
// MaxSubsetSize field is the paper's resource knob (§4).
type ProbabilityConfig = core.Config

// DefaultProbabilityConfig returns the configuration used by the
// paper's experiments (subsets of up to two links).
func DefaultProbabilityConfig() ProbabilityConfig { return core.DefaultConfig() }

// ProbabilityResult is the output of Correlation-complete: per-subset
// good probabilities with identifiability flags and joint-probability
// queries. The "correlation-complete" estimator carries it as
// Estimate.Detail.
type ProbabilityResult = core.Result

// ComputeProbabilities runs the Correlation-complete algorithm
// (Algorithms 1 and 2 of the paper) over the recorded observations —
// a full-period Recorder or a live SlidingWindow.
//
// Deprecated: use NewEstimator("correlation-complete") and Estimate,
// which add context cancellation and the unified result shape; this
// wrapper remains for one release (see MIGRATION.md).
func ComputeProbabilities(top *Topology, obs ObservationStore, cfg ProbabilityConfig) (*ProbabilityResult, error) {
	return core.Compute(context.Background(), top, obs, cfg)
}

// LinkProbabilities holds per-link congestion probability estimates
// from one of the baseline algorithms.
type LinkProbabilities = probcalc.LinkResult

// IndependenceConfig tunes the Independence baseline.
type IndependenceConfig = probcalc.IndependenceConfig

// ComputeProbabilitiesIndependence runs the Independence baseline
// (CLINK's Probability Computation step [11]).
//
// Deprecated: use NewEstimator("independence") and Estimate; this
// wrapper remains for one release (see MIGRATION.md).
func ComputeProbabilitiesIndependence(top *Topology, obs ObservationStore, cfg IndependenceConfig) (*LinkProbabilities, error) {
	return probcalc.Independence(context.Background(), top, obs, cfg)
}

// HeuristicConfig tunes the Correlation-heuristic baseline.
type HeuristicConfig = probcalc.HeuristicConfig

// ComputeProbabilitiesHeuristic runs the Correlation-heuristic baseline
// of [9].
//
// Deprecated: use NewEstimator("correlation-heuristic") and Estimate;
// this wrapper remains for one release (see MIGRATION.md).
func ComputeProbabilitiesHeuristic(top *Topology, obs ObservationStore, cfg HeuristicConfig) (*LinkProbabilities, error) {
	return probcalc.CorrelationHeuristic(context.Background(), top, obs, cfg)
}

// ---------------------------------------------------------------------
// Boolean Inference (the problem the paper argues against)
// ---------------------------------------------------------------------

// InferenceAlgorithm diagnoses the congested links of one interval from
// the congested paths. The same algorithms are reachable through the
// Estimator registry ("sparsity", "bayesian-independence",
// "bayesian-correlation"), where their per-interval diagnoses are
// aggregated into per-link blame frequencies.
type InferenceAlgorithm = inference.Algorithm

// NewSparsity returns the Sparsity (Tomo) inference algorithm [6, 8].
func NewSparsity() InferenceAlgorithm { return inference.NewSparsity() }

// NewBayesianIndependence returns the CLINK-style inference algorithm
// [11].
func NewBayesianIndependence(cfg IndependenceConfig) InferenceAlgorithm {
	return inference.NewBayesianIndependence(cfg)
}

// NewBayesianCorrelation returns the correlation-aware Bayesian
// inference algorithm developed for the paper [10].
func NewBayesianCorrelation(cfg ProbabilityConfig) InferenceAlgorithm {
	return inference.NewBayesianCorrelation(cfg)
}

// ---------------------------------------------------------------------
// Topology generation and simulation
// ---------------------------------------------------------------------

// BriteConfig parameterizes the BRITE-style generator.
type BriteConfig = brite.Config

// DefaultBriteConfig returns the dense-topology parameters used in the
// evaluation.
func DefaultBriteConfig() BriteConfig { return brite.DefaultConfig() }

// Internet is a generated two-tier (router + AS) ground-truth network.
type Internet = brite.Internet

// GenerateBrite generates a dense "Brite" AS-level overlay by routing
// numPaths random end-to-end routes over a synthetic Internet. It
// returns the overlay and the underlying Internet (whose router-level
// links define the ground-truth link correlations).
func GenerateBrite(cfg BriteConfig, numPaths int, rng *rand.Rand) (*Topology, *Internet, error) {
	return brite.DenseTopology(cfg, numPaths, rng)
}

// TracerouteConfig parameterizes the sparse-view traceroute campaign.
type TracerouteConfig = traceroute.Config

// DefaultTracerouteConfig sizes a campaign to the paper's Sparse
// topologies.
func DefaultTracerouteConfig() TracerouteConfig { return traceroute.DefaultConfig() }

// Campaign is the outcome of a traceroute measurement campaign.
type Campaign = traceroute.Campaign

// GenerateSparse synthesizes the paper's "Sparse" topology: the
// AS-level view of a source ISP tracerouting the Internet from a few
// vantage points, with incomplete traces discarded.
func GenerateSparse(cfg TracerouteConfig, rng *rand.Rand) (*Campaign, error) {
	return traceroute.Run(cfg, rng)
}

// Scenario selects which links are congestible in a simulation.
type Scenario = netsim.Scenario

// The paper's congestion scenarios (§3.2).
const (
	RandomCongestion       = netsim.RandomCongestion
	ConcentratedCongestion = netsim.ConcentratedCongestion
	NoIndependence         = netsim.NoIndependence
)

// SimulationConfig parameterizes the congestion/loss/probing simulator.
type SimulationConfig = netsim.Config

// DefaultSimulationConfig mirrors the paper's simulator setup for the
// given scenario.
func DefaultSimulationConfig(s Scenario) SimulationConfig { return netsim.DefaultConfig(s) }

// Simulation is a fully specified congestion model over a topology.
type Simulation = netsim.Model

// Observation is one simulated interval: the probed path statuses and
// the hidden ground truth.
type Observation = netsim.Observation

// NewSimulation draws a congestion model for totalIntervals intervals.
func NewSimulation(top *Topology, cfg SimulationConfig, totalIntervals int, rng *rand.Rand) (*Simulation, error) {
	return netsim.NewModel(top, cfg, totalIntervals, rng)
}
