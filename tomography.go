// Package tomography is a Go implementation of the system described in
// "Shifting Network Tomography Toward A Practical Goal" (Ghita,
// Karakus, Argyraki, Thiran — ACM CoNEXT 2011).
//
// It provides, as a library:
//
//   - the Boolean network-tomography model: AS-level topologies with
//     links, end-to-end paths, coverage functions and correlation sets
//     (one per AS by default);
//   - the paper's primary contribution, the Correlation-complete
//     Congestion Probability Computation algorithm (Algorithms 1 and 2),
//     which computes, for each correlation subset of links, the
//     probability that all its links are congested — accurately, under
//     only the Separability, E2E-Monitoring and Correlation-Sets
//     assumptions;
//   - the baselines it is evaluated against: the Independence
//     probability computation (CLINK's step 1) and the
//     Correlation-heuristic, plus the three Boolean Inference
//     algorithms (Sparsity, Bayesian-Independence,
//     Bayesian-Correlation) whose limitations motivate the paper;
//   - the experimental substrate: BRITE-style dense topology
//     generation, a traceroute-campaign synthesizer for sparse
//     ISP-view topologies, and a congestion/loss/probing simulator
//     with router-level correlation ground truth.
//
// # Quick start
//
// Monitor a network by recording, per measurement interval, which paths
// were congested; then compute link-congestion probabilities:
//
//	top := tomography.Fig1Case1() // or your own topology
//	rec := tomography.NewRecorder(top.NumPaths())
//	for each interval {
//	    rec.Add(congestedPaths) // a bitset of path IDs
//	}
//	res, err := tomography.ComputeProbabilities(top, rec, tomography.DefaultProbabilityConfig())
//	p, ok := res.LinkGoodProb(linkID)
//
// See examples/ for complete programs and cmd/tomo for the harness that
// regenerates every figure and table of the paper.
package tomography

import (
	"math/rand"

	"repro/internal/bitset"
	"repro/internal/brite"
	"repro/internal/core"
	"repro/internal/inference"
	"repro/internal/netsim"
	"repro/internal/observe"
	"repro/internal/probcalc"
	"repro/internal/stream"
	"repro/internal/topology"
	"repro/internal/traceroute"
)

// ---------------------------------------------------------------------
// Network model
// ---------------------------------------------------------------------

// Topology is the network model: links, loop-free end-to-end paths, and
// correlation sets (Assumption 5).
type Topology = topology.Topology

// Link is a logical (AS-level) link.
type Link = topology.Link

// Path is a loop-free end-to-end path.
type Path = topology.Path

// Set is a bit set of link or path IDs.
type Set = bitset.Set

// NewSet returns an empty set over universe [0, n).
func NewSet(n int) *Set { return bitset.New(n) }

// SetOf returns a set over [0, n) containing the given indices.
func SetOf(n int, indices ...int) *Set { return bitset.FromIndices(n, indices...) }

// NewTopology assembles a topology; it panics on invalid input.
// corrSets may be nil (every link becomes its own correlation set); use
// CorrelationSetsByAS for the paper's one-set-per-AS policy.
func NewTopology(links []Link, paths []Path, corrSets [][]int) *Topology {
	return topology.New(links, paths, corrSets)
}

// CorrelationSetsByAS groups links into one correlation set per AS (§2).
func CorrelationSetsByAS(links []Link) [][]int { return topology.CorrelationSetsByAS(links) }

// Fig1Case1 returns the paper's toy topology (Fig. 1) with correlation
// sets {{e1}, {e2,e3}, {e4}}.
func Fig1Case1() *Topology { return topology.Fig1Case1() }

// Fig1Case2 returns the toy topology with correlation sets
// {{e1,e4}, {e2,e3}}, for which Identifiability++ fails.
func Fig1Case2() *Topology { return topology.Fig1Case2() }

// ---------------------------------------------------------------------
// Observation
// ---------------------------------------------------------------------

// Recorder accumulates per-interval path observations (Assumption 2).
type Recorder = observe.Recorder

// NewRecorder returns an empty recorder for numPaths paths.
func NewRecorder(numPaths int) *Recorder { return observe.NewRecorder(numPaths) }

// ObservationStore is the read side shared by Recorder and
// SlidingWindow; every probability-computation algorithm accepts it.
type ObservationStore = observe.Store

// SlidingWindow is a bounded observation store retaining only the most
// recent intervals, the substrate of the streaming service (cmd/tomod).
// Adding an interval past capacity evicts the oldest in O(words).
type SlidingWindow = stream.Window

// NewSlidingWindow returns an empty window over numPaths paths
// retaining at most capacity intervals.
func NewSlidingWindow(numPaths, capacity int) *SlidingWindow {
	return stream.NewWindow(numPaths, capacity)
}

// ---------------------------------------------------------------------
// Congestion Probability Computation (the paper's contribution)
// ---------------------------------------------------------------------

// ProbabilityConfig tunes the Correlation-complete algorithm; the
// MaxSubsetSize field is the paper's resource knob (§4).
type ProbabilityConfig = core.Config

// DefaultProbabilityConfig returns the configuration used by the
// paper's experiments (subsets of up to two links).
func DefaultProbabilityConfig() ProbabilityConfig { return core.DefaultConfig() }

// ProbabilityResult is the output of Correlation-complete: per-subset
// good probabilities with identifiability flags.
type ProbabilityResult = core.Result

// ComputeProbabilities runs the Correlation-complete algorithm
// (Algorithms 1 and 2 of the paper) over the recorded observations —
// a full-period Recorder or a live SlidingWindow.
func ComputeProbabilities(top *Topology, obs ObservationStore, cfg ProbabilityConfig) (*ProbabilityResult, error) {
	return core.Compute(top, obs, cfg)
}

// LinkProbabilities holds per-link congestion probability estimates
// from one of the baseline algorithms.
type LinkProbabilities = probcalc.LinkResult

// IndependenceConfig tunes the Independence baseline.
type IndependenceConfig = probcalc.IndependenceConfig

// ComputeProbabilitiesIndependence runs the Independence baseline
// (CLINK's Probability Computation step [11]).
func ComputeProbabilitiesIndependence(top *Topology, rec *Recorder, cfg IndependenceConfig) (*LinkProbabilities, error) {
	return probcalc.Independence(top, rec, cfg)
}

// HeuristicConfig tunes the Correlation-heuristic baseline.
type HeuristicConfig = probcalc.HeuristicConfig

// ComputeProbabilitiesHeuristic runs the Correlation-heuristic baseline
// of [9].
func ComputeProbabilitiesHeuristic(top *Topology, rec *Recorder, cfg HeuristicConfig) (*LinkProbabilities, error) {
	return probcalc.CorrelationHeuristic(top, rec, cfg)
}

// ---------------------------------------------------------------------
// Boolean Inference (the problem the paper argues against)
// ---------------------------------------------------------------------

// InferenceAlgorithm diagnoses the congested links of one interval from
// the congested paths.
type InferenceAlgorithm = inference.Algorithm

// NewSparsity returns the Sparsity (Tomo) inference algorithm [6, 8].
func NewSparsity() InferenceAlgorithm { return inference.NewSparsity() }

// NewBayesianIndependence returns the CLINK-style inference algorithm
// [11].
func NewBayesianIndependence(cfg IndependenceConfig) InferenceAlgorithm {
	return inference.NewBayesianIndependence(cfg)
}

// NewBayesianCorrelation returns the correlation-aware Bayesian
// inference algorithm developed for the paper [10].
func NewBayesianCorrelation(cfg ProbabilityConfig) InferenceAlgorithm {
	return inference.NewBayesianCorrelation(cfg)
}

// ---------------------------------------------------------------------
// Topology generation and simulation
// ---------------------------------------------------------------------

// BriteConfig parameterizes the BRITE-style generator.
type BriteConfig = brite.Config

// DefaultBriteConfig returns the dense-topology parameters used in the
// evaluation.
func DefaultBriteConfig() BriteConfig { return brite.DefaultConfig() }

// Internet is a generated two-tier (router + AS) ground-truth network.
type Internet = brite.Internet

// GenerateBrite generates a dense "Brite" AS-level overlay by routing
// numPaths random end-to-end routes over a synthetic Internet. It
// returns the overlay and the underlying Internet (whose router-level
// links define the ground-truth link correlations).
func GenerateBrite(cfg BriteConfig, numPaths int, rng *rand.Rand) (*Topology, *Internet, error) {
	return brite.DenseTopology(cfg, numPaths, rng)
}

// TracerouteConfig parameterizes the sparse-view traceroute campaign.
type TracerouteConfig = traceroute.Config

// DefaultTracerouteConfig sizes a campaign to the paper's Sparse
// topologies.
func DefaultTracerouteConfig() TracerouteConfig { return traceroute.DefaultConfig() }

// Campaign is the outcome of a traceroute measurement campaign.
type Campaign = traceroute.Campaign

// GenerateSparse synthesizes the paper's "Sparse" topology: the
// AS-level view of a source ISP tracerouting the Internet from a few
// vantage points, with incomplete traces discarded.
func GenerateSparse(cfg TracerouteConfig, rng *rand.Rand) (*Campaign, error) {
	return traceroute.Run(cfg, rng)
}

// Scenario selects which links are congestible in a simulation.
type Scenario = netsim.Scenario

// The paper's congestion scenarios (§3.2).
const (
	RandomCongestion       = netsim.RandomCongestion
	ConcentratedCongestion = netsim.ConcentratedCongestion
	NoIndependence         = netsim.NoIndependence
)

// SimulationConfig parameterizes the congestion/loss/probing simulator.
type SimulationConfig = netsim.Config

// DefaultSimulationConfig mirrors the paper's simulator setup for the
// given scenario.
func DefaultSimulationConfig(s Scenario) SimulationConfig { return netsim.DefaultConfig(s) }

// Simulation is a fully specified congestion model over a topology.
type Simulation = netsim.Model

// Observation is one simulated interval: the probed path statuses and
// the hidden ground truth.
type Observation = netsim.Observation

// NewSimulation draws a congestion model for totalIntervals intervals.
func NewSimulation(top *Topology, cfg SimulationConfig, totalIntervals int, rng *rand.Rand) (*Simulation, error) {
	return netsim.NewModel(top, cfg, totalIntervals, rng)
}
