// Inference vs Probability: the paper's central argument, demonstrated.
//
// On a sparse ISP-view topology, per-interval Boolean Inference is not
// accurate enough to attribute blame (detection drops, false positives
// soar), while Congestion Probability Computation — an easier problem —
// remains accurate on the same data. This program runs both on one
// simulated monitoring period and prints the comparison.
package main

import (
	"context"
	"fmt"
	"log"
	"math"
	"math/rand"

	tomography "repro"
)

func main() {
	rng := rand.New(rand.NewSource(3))

	// Sparse topology via a traceroute campaign.
	tcfg := tomography.DefaultTracerouteConfig()
	tcfg.Internet.NumAS = 70
	tcfg.Internet.RoutersPerAS = 5
	tcfg.TargetPaths = 250
	campaign, err := tomography.GenerateSparse(tcfg, rng)
	if err != nil {
		log.Fatal(err)
	}
	top := campaign.Topology

	// One monitoring period with correlated congestion.
	const intervals = 500
	sim, err := tomography.NewSimulation(top,
		tomography.DefaultSimulationConfig(tomography.NoIndependence), intervals, rng)
	if err != nil {
		log.Fatal(err)
	}
	rec := tomography.NewRecorder(top.NumPaths())
	var truths []*tomography.Set
	var observations []*tomography.Set
	for t := 0; t < intervals; t++ {
		obs := sim.Interval(t, rng)
		rec.Add(obs.CongestedPaths)
		truths = append(truths, obs.CongestedLinks)
		observations = append(observations, obs.CongestedPaths)
	}

	// --- Boolean Inference: which links were congested *when*? ---
	ctx := context.Background()
	pcfg := tomography.DefaultProbabilityConfig()
	pcfg.AlwaysGoodTol = 0.02
	alg := tomography.NewBayesianCorrelation(pcfg)
	if err := alg.Prepare(ctx, top, rec); err != nil {
		log.Fatal(err)
	}
	var drSum, fprSum float64
	var drN, fprN int
	for t := 0; t < intervals; t++ {
		inferred := alg.Infer(observations[t])
		actual := truths[t]
		if c := actual.Count(); c > 0 {
			drSum += float64(inferred.Intersect(actual).Count()) / float64(c)
			drN++
		}
		if c := inferred.Count(); c > 0 {
			fprSum += float64(inferred.Difference(actual).Count()) / float64(c)
			fprN++
		}
	}
	fmt.Printf("Boolean Inference (%s) on the sparse view:\n", alg.Name())
	fmt.Printf("  detection rate:      %.2f\n", drSum/float64(drN))
	fmt.Printf("  false-positive rate: %.2f\n", fprSum/float64(fprN))
	fmt.Println("  -> too inaccurate to attribute blame per interval (§4)")

	// --- Probability Computation: how *often* is each link congested? ---
	// The same data, through the unified Estimator interface.
	est, err := tomography.NewEstimator("correlation-complete")
	if err != nil {
		log.Fatal(err)
	}
	res, err := est.Estimate(ctx, top, rec, tomography.WithAlwaysGoodTol(0.02))
	if err != nil {
		log.Fatal(err)
	}
	var errSum float64
	var errN int
	var worst float64
	for e := 0; e < top.NumLinks(); e++ {
		if !res.PotentiallyCongested.Contains(e) || top.LinkPaths(e).IsEmpty() {
			continue
		}
		p, _ := res.LinkCongestProb(e)
		aerr := math.Abs(p - sim.TrueLinkProb(e))
		errSum += aerr
		errN++
		if aerr > worst {
			worst = aerr
		}
	}
	fmt.Printf("\nCongestion Probability Computation (Correlation-complete), same data:\n")
	fmt.Printf("  mean abs error of P(link congested): %.3f over %d links (max %.3f)\n",
		errSum/float64(errN), errN, worst)
	fmt.Println("  -> the long-run congestion profile of each peer is recoverable,")
	fmt.Println("     which answers the operator's actual questions (§1).")
}
