// Disjoint paths: the use case of §5.4 for *set* probabilities.
//
// Knowing the congestion probability of sets of links "reveals which
// links within each peer are actually correlated; this can be useful
// for computing 'disjoint' paths to some destination, i.e., paths that
// are not likely to fail at the same time."
//
// We build a dense overlay, learn pairwise joint congestion
// probabilities with Correlation-complete, and then, for pairs of paths
// to the same region, score how likely the two paths are to be
// congested simultaneously — picking the pair that minimizes joint
// failure, which is NOT always the pair with the lowest individual
// probabilities.
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"

	tomography "repro"
)

func main() {
	rng := rand.New(rand.NewSource(11))
	cfg := tomography.DefaultBriteConfig()
	cfg.NumAS = 25
	cfg.RoutersPerAS = 4
	top, _, err := tomography.GenerateBrite(cfg, 150, rng)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Overlay: %d links, %d paths\n", top.NumLinks(), top.NumPaths())

	// Monitor under correlated congestion.
	const intervals = 800
	sim, err := tomography.NewSimulation(top,
		tomography.DefaultSimulationConfig(tomography.NoIndependence), intervals, rng)
	if err != nil {
		log.Fatal(err)
	}
	rec := tomography.NewRecorder(top.NumPaths())
	for t := 0; t < intervals; t++ {
		rec.Add(sim.Interval(t, rng).CongestedPaths)
	}
	est, err := tomography.NewEstimator("correlation-complete")
	if err != nil {
		log.Fatal(err)
	}
	res, err := est.Estimate(context.Background(), top, rec,
		tomography.WithAlwaysGoodTol(0.02))
	if err != nil {
		log.Fatal(err)
	}

	// Score path pairs: P(path A fails AND path B fails) is
	// upper-bounded by the joint congestion probability of their most
	// correlated link pair; independent links multiply, correlated
	// links don't. We approximate the pair's joint risk by the maximum
	// over cross-path link pairs of P(both congested).
	jointRisk := func(a, b int) float64 {
		worst := 0.0
		top.PathLinks(a).ForEach(func(la int) bool {
			top.PathLinks(b).ForEach(func(lb int) bool {
				if la == lb {
					worst = maxf(worst, linkProb(res, top, la))
					return true
				}
				pair := tomography.SetOf(top.NumLinks(), la, lb)
				if p, ok := res.Detail.CongestedProb(pair); ok {
					worst = maxf(worst, p)
				} else {
					// Fall back to the independent product.
					worst = maxf(worst, linkProb(res, top, la)*linkProb(res, top, lb))
				}
				return true
			})
			return true
		})
		return worst
	}

	// Pick as primary the path most at risk (it contains the link with
	// the highest estimated congestion probability): that is the path an
	// operator would actually want a backup for.
	primary, primaryRisk := 0, -1.0
	for p := 0; p < top.NumPaths(); p++ {
		worst := 0.0
		top.PathLinks(p).ForEach(func(li int) bool {
			worst = maxf(worst, linkProb(res, top, li))
			return true
		})
		if worst > primaryRisk {
			primary, primaryRisk = p, worst
		}
	}
	fmt.Printf("Most at-risk path: %s (worst-link P(congested) ≈ %.3f)\n",
		top.Paths[primary].Name, primaryRisk)

	// Find its best backup among paths with a different first hop (a
	// plausible "reroute" candidate set).
	bestBackup, bestRisk := -1, 1.1
	worstBackup, worstRisk := -1, -0.1
	for b := 0; b < top.NumPaths(); b++ {
		if b == primary || top.Paths[b].Links[0] == top.Paths[primary].Links[0] {
			continue
		}
		r := jointRisk(primary, b)
		if r < bestRisk {
			bestBackup, bestRisk = b, r
		}
		if r > worstRisk {
			worstBackup, worstRisk = b, r
		}
	}
	if bestBackup < 0 {
		log.Fatal("no backup candidates found")
	}
	fmt.Printf("\nPrimary path: %s\n", top.Paths[primary].Name)
	fmt.Printf("Best backup:  %s  (joint failure risk ≈ %.3f)\n", top.Paths[bestBackup].Name, bestRisk)
	fmt.Printf("Worst backup: %s  (joint failure risk ≈ %.3f)\n", top.Paths[worstBackup].Name, worstRisk)
	fmt.Println("\nPicking the backup by joint risk avoids pairs whose links are")
	fmt.Println("correlated inside the same peer, which marginal probabilities alone cannot see.")
}

func linkProb(res *tomography.Estimate, top *tomography.Topology, e int) float64 {
	p, _ := res.LinkCongestProb(e)
	return p
}

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}
