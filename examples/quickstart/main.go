// Quickstart: the paper's toy topology (Fig. 1) end to end.
//
// We simulate the §3.1 example — links e2 and e3 are perfectly
// correlated (they share a router-level link), e1 and e4 congest
// independently — record which paths are congested in each interval,
// and run Congestion Probability Computation. The output shows that the
// algorithm recovers each link's congestion probability and the joint
// probability of the correlated pair, which the Independence baseline
// gets wrong.
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"

	tomography "repro"
)

func main() {
	top := tomography.Fig1Case1()
	fmt.Printf("Topology: %d links, %d paths, correlation sets %v\n\n",
		top.NumLinks(), top.NumPaths(), top.CorrSets)

	// Ground truth for the simulation.
	const (
		p1  = 0.30 // P(e1 congested)
		p23 = 0.40 // P(e2 and e3 congested together)
		p4  = 0.20 // P(e4 congested)
		T   = 20000
	)
	rng := rand.New(rand.NewSource(42))
	rec := tomography.NewRecorder(top.NumPaths())
	for t := 0; t < T; t++ {
		congested := tomography.NewSet(top.NumLinks())
		if rng.Float64() < p1 {
			congested.Add(0)
		}
		if rng.Float64() < p23 { // perfectly correlated pair
			congested.Add(1)
			congested.Add(2)
		}
		if rng.Float64() < p4 {
			congested.Add(3)
		}
		// Separability: a path is congested iff it crosses a congested
		// link. (A real deployment would measure this with probes.)
		congPaths := tomography.NewSet(top.NumPaths())
		for p := 0; p < top.NumPaths(); p++ {
			if top.PathLinks(p).Intersects(congested) {
				congPaths.Add(p)
			}
		}
		rec.Add(congPaths)
	}

	// Every algorithm sits behind the same Estimator interface; pick
	// one from the registry by name.
	ctx := context.Background()
	est, err := tomography.NewEstimator("correlation-complete")
	if err != nil {
		log.Fatal(err)
	}
	res, err := est.Estimate(ctx, top, rec, tomography.WithMaxSubsetSize(2))
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("Correlation-complete results (truth in parentheses):")
	names := []string{"e1", "e2", "e3", "e4"}
	truth := []float64{p1, p23, p23, p4}
	for e, name := range names {
		p, exact := res.LinkCongestProb(e)
		if !exact {
			fmt.Printf("  %s: unidentifiable (fallback estimate %.3f)\n", name, p)
			continue
		}
		fmt.Printf("  P(%s congested) = %.3f  (%.2f)\n", name, p, truth[e])
	}

	// Joint subset probabilities — the paper's primary output — are on
	// the Correlation-complete detail result.
	pair := tomography.SetOf(top.NumLinks(), 1, 2)
	joint, ok := res.Detail.CongestedProb(pair)
	if !ok {
		log.Fatal("pair {e2,e3} should be identifiable in Case 1")
	}
	fmt.Printf("\n  P(e2 AND e3 congested) = %.3f  (%.2f)\n", joint, p23)
	fmt.Printf("  under Independence it would be ≈ %.3f — wrong by ≈%.2fx\n\n",
		p23*p23, p23/(p23*p23))

	// The Independence baseline over the same data: same interface,
	// same options, different registry name.
	indepEst, err := tomography.NewEstimator("independence")
	if err != nil {
		log.Fatal(err)
	}
	indep, err := indepEst.Estimate(ctx, top, rec)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("Independence baseline (biased by the correlation):")
	for e, name := range names {
		fmt.Printf("  P(%s congested) = %.3f  (%.2f)\n", name, indep.LinkProb[e], truth[e])
	}

	fmt.Printf("\nAll registered estimators: %v\n", tomography.Estimators())
}
