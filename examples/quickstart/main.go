// Quickstart: the paper's toy topology (Fig. 1) end to end.
//
// We simulate the §3.1 example — links e2 and e3 are perfectly
// correlated (they share a router-level link), e1 and e4 congest
// independently — record which paths are congested in each interval,
// and run Congestion Probability Computation. The output shows that the
// algorithm recovers each link's congestion probability and the joint
// probability of the correlated pair, which the Independence baseline
// gets wrong.
package main

import (
	"fmt"
	"log"
	"math/rand"

	tomography "repro"
)

func main() {
	top := tomography.Fig1Case1()
	fmt.Printf("Topology: %d links, %d paths, correlation sets %v\n\n",
		top.NumLinks(), top.NumPaths(), top.CorrSets)

	// Ground truth for the simulation.
	const (
		p1  = 0.30 // P(e1 congested)
		p23 = 0.40 // P(e2 and e3 congested together)
		p4  = 0.20 // P(e4 congested)
		T   = 20000
	)
	rng := rand.New(rand.NewSource(42))
	rec := tomography.NewRecorder(top.NumPaths())
	for t := 0; t < T; t++ {
		congested := tomography.NewSet(top.NumLinks())
		if rng.Float64() < p1 {
			congested.Add(0)
		}
		if rng.Float64() < p23 { // perfectly correlated pair
			congested.Add(1)
			congested.Add(2)
		}
		if rng.Float64() < p4 {
			congested.Add(3)
		}
		// Separability: a path is congested iff it crosses a congested
		// link. (A real deployment would measure this with probes.)
		congPaths := tomography.NewSet(top.NumPaths())
		for p := 0; p < top.NumPaths(); p++ {
			if top.PathLinks(p).Intersects(congested) {
				congPaths.Add(p)
			}
		}
		rec.Add(congPaths)
	}

	res, err := tomography.ComputeProbabilities(top, rec, tomography.DefaultProbabilityConfig())
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("Correlation-complete results (truth in parentheses):")
	names := []string{"e1", "e2", "e3", "e4"}
	truth := []float64{p1, p23, p23, p4}
	for e, name := range names {
		g, ok := res.LinkGoodProb(e)
		if !ok {
			fmt.Printf("  %s: unidentifiable\n", name)
			continue
		}
		fmt.Printf("  P(%s congested) = %.3f  (%.2f)\n", name, 1-g, truth[e])
	}

	pair := tomography.SetOf(top.NumLinks(), 1, 2)
	joint, ok := res.CongestedProb(pair)
	if !ok {
		log.Fatal("pair {e2,e3} should be identifiable in Case 1")
	}
	fmt.Printf("\n  P(e2 AND e3 congested) = %.3f  (%.2f)\n", joint, p23)
	fmt.Printf("  under Independence it would be ≈ %.3f — wrong by ≈%.2fx\n\n",
		p23*p23, p23/(p23*p23))

	// The Independence baseline on the same data.
	indep, err := tomography.ComputeProbabilitiesIndependence(top, rec, tomography.IndependenceConfig{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("Independence baseline (biased by the correlation):")
	for e, name := range names {
		fmt.Printf("  P(%s congested) = %.3f  (%.2f)\n", name, indep.Prob[e], truth[e])
	}
}
