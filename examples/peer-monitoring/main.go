// Peer monitoring: the paper's motivating scenario (§1).
//
// A Tier-1 "source ISP" wants to know how congested each of its peers
// is, without access to their networks. It traceroutes the Internet
// from a few vantage points (building the paper's Sparse topology),
// monitors the resulting end-to-end paths over many intervals, runs
// Congestion Probability Computation, and aggregates the per-link
// results into a per-peer congestion report — the deliverable the
// paper argues is actually attainable, unlike per-interval Boolean
// Inference.
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"
	"sort"

	tomography "repro"
)

func main() {
	rng := rand.New(rand.NewSource(7))

	// 1. Build the sparse view by tracerouting.
	cfg := tomography.DefaultTracerouteConfig()
	cfg.Internet.NumAS = 80
	cfg.Internet.RoutersPerAS = 5
	cfg.TargetPaths = 300
	campaign, err := tomography.GenerateSparse(cfg, rng)
	if err != nil {
		log.Fatal(err)
	}
	top := campaign.Topology
	fmt.Printf("Traceroute campaign: %d probes issued, %d complete traces kept\n",
		campaign.Issued, campaign.Kept)
	fmt.Printf("Sparse AS-level view: %d links across %d correlation sets (ASes), %d paths\n\n",
		top.NumLinks(), len(top.CorrSets), top.NumPaths())

	// 2. Monitor: simulate a day of measurement intervals with
	// correlated congestion.
	const intervals = 600
	sim, err := tomography.NewSimulation(top,
		tomography.DefaultSimulationConfig(tomography.NoIndependence), intervals, rng)
	if err != nil {
		log.Fatal(err)
	}
	rec := tomography.NewRecorder(top.NumPaths())
	for t := 0; t < intervals; t++ {
		rec.Add(sim.Interval(t, rng).CongestedPaths)
	}

	// 3. Compute congestion probabilities through the unified
	// estimator API (any registered algorithm would slot in here).
	est, err := tomography.NewEstimator("correlation-complete")
	if err != nil {
		log.Fatal(err)
	}
	res, err := est.Estimate(context.Background(), top, rec,
		tomography.WithAlwaysGoodTol(0.02))
	if err != nil {
		log.Fatal(err)
	}

	// 4. Aggregate per peer (per AS): mean link congestion probability
	// and the worst link.
	type peerReport struct {
		as        int
		links     int
		meanProb  float64
		worstProb float64
		truth     float64
	}
	byAS := map[int]*peerReport{}
	for e := 0; e < top.NumLinks(); e++ {
		as := top.Links[e].AS
		if as == campaign.SourceAS {
			continue // not a peer
		}
		r := byAS[as]
		if r == nil {
			r = &peerReport{as: as}
			byAS[as] = r
		}
		p, _ := res.LinkCongestProb(e)
		r.links++
		r.meanProb += p
		if p > r.worstProb {
			r.worstProb = p
		}
		r.truth += sim.TrueLinkProb(e)
	}
	var reports []*peerReport
	for _, r := range byAS {
		r.meanProb /= float64(r.links)
		r.truth /= float64(r.links)
		reports = append(reports, r)
	}
	sort.Slice(reports, func(i, j int) bool { return reports[i].meanProb > reports[j].meanProb })

	fmt.Println("Most congested peers (estimated over the monitoring period):")
	fmt.Printf("%-8s %7s %12s %12s %14s\n", "peer", "links", "mean P(cong)", "worst link", "true mean")
	n := 10
	if len(reports) < n {
		n = len(reports)
	}
	for _, r := range reports[:n] {
		fmt.Printf("AS%-6d %7d %12.3f %12.3f %14.3f\n", r.as, r.links, r.meanProb, r.worstProb, r.truth)
	}
}
