package probcalc

import (
	"math"

	"repro/internal/linalg"
)

// solveLogSystem least-squares-solves a 0/1 log-domain system: each row
// lists the column indices whose log-unknowns sum to the corresponding
// rhs entry. It returns exp(x) per column (clamped to [0,1]) and a flag
// per column reporting whether it was identifiable. Unidentifiable
// columns (those in the null space of the row set) and the rows that
// mention them are dropped iteratively, mirroring core's solver.
func solveLogSystem(rows [][]int, rhs []float64, nCols int) (g []float64, identifiable []bool) {
	g = make([]float64, nCols)
	identifiable = make([]bool, nCols)
	if nCols == 0 || len(rows) == 0 {
		return g, identifiable
	}
	active := make([]bool, len(rows))
	for i := range active {
		active[i] = true
	}
	alive := make([]bool, nCols)
	// A column is a candidate only if some row mentions it.
	for _, r := range rows {
		for _, c := range r {
			alive[c] = true
		}
	}
	for iter := 0; iter < nCols+2; iter++ {
		// Drop rows touching dead columns.
		for ri, r := range rows {
			if !active[ri] {
				continue
			}
			for _, c := range r {
				if !alive[c] {
					active[ri] = false
					break
				}
			}
		}
		var colMap []int
		colIdx := make([]int, nCols)
		for c := 0; c < nCols; c++ {
			colIdx[c] = -1
			if alive[c] {
				colIdx[c] = len(colMap)
				colMap = append(colMap, c)
			}
		}
		if len(colMap) == 0 {
			return g, identifiable
		}
		var mRows [][]float64
		var b []float64
		for ri, r := range rows {
			if !active[ri] {
				continue
			}
			row := make([]float64, len(colMap))
			for _, c := range r {
				row[colIdx[c]] = 1
			}
			mRows = append(mRows, row)
			b = append(b, rhs[ri])
		}
		if len(mRows) >= len(colMap) {
			// The factorization may consume the matrix in place: the
			// rank-deficient path below rebuilds from mRows.
			a := linalg.FromRows(mRows)
			if x, err := linalg.SolveLeastSquaresInPlace(a, b); err == nil {
				for k, c := range colMap {
					v := math.Exp(x[k])
					if v > 1 {
						v = 1
					}
					g[c] = v
					identifiable[c] = true
				}
				return g, identifiable
			}
		}
		// Rank-deficient: kill the columns in the null space and retry.
		var a *linalg.Matrix
		if len(mRows) == 0 {
			return g, identifiable
		}
		a = linalg.FromRows(mRows)
		ns := linalg.NullSpaceBasis(a)
		changed := false
		for k, c := range colMap {
			for j := 0; j < ns.Cols; j++ {
				if math.Abs(ns.At(k, j)) > 1e-7 {
					if alive[c] {
						alive[c] = false
						changed = true
					}
					break
				}
			}
		}
		if !changed {
			return g, identifiable
		}
	}
	return g, identifiable
}
