// Package probcalc implements the two baseline Probability Computation
// algorithms the paper compares against (§5.4):
//
//   - Independence: the Probability Computation step of CLINK [11]. It
//     assumes all links are independent (Assumption 4), so every
//     equation splits per link; it solves a log-linear least-squares
//     system over single-path and path-pair observations.
//   - Correlation-heuristic: the earlier heuristic of [9]. Under the
//     Correlation Sets assumption it estimates each link's good
//     probability with a conditional-ratio estimator built from many
//     redundant empirical frequencies — accurate when the ratios are
//     well conditioned, but noticeably noisier than Correlation-complete
//     on sparse topologies, where the denominators are small (this is
//     exactly the behaviour Fig. 4(b) reports).
//
// Both report, like the core algorithm, a per-link congestion
// probability with the same observable fallback for links they cannot
// identify.
package probcalc

import (
	"context"
	"fmt"
	"math"
	"math/rand"

	"repro/internal/bitset"
	"repro/internal/core"
	"repro/internal/observe"
	"repro/internal/topology"
)

// LinkResult is a per-link congestion probability estimate.
type LinkResult struct {
	// Prob[e] estimates P(X_e = 1). Exact[e] reports whether it came
	// from the algorithm proper (true) or from the observable fallback
	// (false).
	Prob  []float64
	Exact []bool

	// PotentiallyCongested marks links not traversed by an always-good
	// path (the evaluation set of Fig. 4).
	PotentiallyCongested *bitset.Set
}

// IndependenceConfig tunes the Independence baseline.
type IndependenceConfig struct {
	// PairsPerLink is how many path pairs are added per link to raise
	// the system rank beyond single-path equations (Fig. 2(a) uses
	// pairs). 0 means the default of 4.
	PairsPerLink int
	// GlobalPairs is how many uniformly random path pairs are added
	// (Fig. 2(a) also uses pairs of non-intersecting paths, e.g.
	// {p1, p3}). 0 means the default of one per path; -1 disables.
	GlobalPairs int
	// AlwaysGoodTol mirrors core.Config.
	AlwaysGoodTol float64
	// Seed drives pair sampling.
	Seed int64
}

// Independence computes per-link congestion probabilities assuming link
// independence (CLINK's Probability Computation step). rec may be any
// observation store — a Recorder over a full monitoring period or a
// stream.Window over the live sliding window. ctx cancels a long run
// (nil means context.Background()).
func Independence(ctx context.Context, top *topology.Topology, rec observe.Store, cfg IndependenceConfig) (*LinkResult, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if rec.NumPaths() != top.NumPaths() {
		return nil, fmt.Errorf("probcalc: recorder/topology path mismatch")
	}
	pairs := cfg.PairsPerLink
	if pairs <= 0 {
		pairs = 4
	}
	rng := rand.New(rand.NewSource(cfg.Seed))

	alwaysGood := rec.AlwaysGoodPaths(cfg.AlwaysGoodTol)
	pot := top.PotentiallyCongestedLinks(top.LinksOf(alwaysGood))

	// Column universe: potentially congested links covered by a path.
	colOf := make([]int, top.NumLinks())
	var cols []int
	for e := 0; e < top.NumLinks(); e++ {
		colOf[e] = -1
		if pot.Contains(e) && !top.LinkPaths(e).IsEmpty() {
			colOf[e] = len(cols)
			cols = append(cols, e)
		}
	}

	var rows [][]int
	var rhs []float64
	addRow := func(pathSet *bitset.Set) {
		var r []int
		top.LinksOf(pathSet).ForEach(func(li int) bool {
			if colOf[li] >= 0 {
				r = append(r, colOf[li])
			}
			return true
		})
		if len(r) == 0 {
			return
		}
		lp, _ := rec.LogGoodFreq(pathSet)
		rows = append(rows, r)
		rhs = append(rhs, lp)
	}
	// Single-path equations.
	one := bitset.New(top.NumPaths())
	for p := 0; p < top.NumPaths(); p++ {
		if alwaysGood.Contains(p) {
			continue
		}
		one.Clear()
		one.Add(p)
		addRow(one)
	}
	// Path-pair equations per link (Fig. 2(a) style), sampled.
	for _, e := range cols {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		ps := top.LinkPaths(e).Indices()
		if len(ps) < 2 {
			continue
		}
		for k := 0; k < pairs; k++ {
			i, j := rng.Intn(len(ps)), rng.Intn(len(ps))
			if i == j {
				continue
			}
			addRow(bitset.FromIndices(top.NumPaths(), ps[i], ps[j]))
		}
	}
	// Uniformly random path pairs (Fig. 2(a) also pairs disjoint paths).
	globalPairs := cfg.GlobalPairs
	if globalPairs == 0 {
		globalPairs = top.NumPaths()
	}
	for k := 0; k < globalPairs; k++ {
		i, j := rng.Intn(top.NumPaths()), rng.Intn(top.NumPaths())
		if i == j || alwaysGood.Contains(i) || alwaysGood.Contains(j) {
			continue
		}
		addRow(bitset.FromIndices(top.NumPaths(), i, j))
	}

	if err := ctx.Err(); err != nil {
		return nil, err
	}
	g, ident := solveLogSystem(rows, rhs, len(cols))
	res := &LinkResult{
		Prob:                 make([]float64, top.NumLinks()),
		Exact:                make([]bool, top.NumLinks()),
		PotentiallyCongested: pot,
	}
	for e := 0; e < top.NumLinks(); e++ {
		fillLink(res, top, rec, pot, e, func() (float64, bool) {
			if colOf[e] >= 0 && ident[colOf[e]] {
				return g[colOf[e]], true
			}
			return 0, false
		})
	}
	return res, nil
}

// HeuristicConfig tunes the Correlation-heuristic baseline.
type HeuristicConfig struct {
	// AlwaysGoodTol mirrors core.Config.
	AlwaysGoodTol float64
	// Sweeps is the number of substitution sweeps (0 = default 50).
	Sweeps int
}

// CorrelationHeuristic estimates each link's congestion probability
// under the Correlation Sets assumption with the substitution heuristic
// of [9]: it forms the same log-linear equations as Correlation-complete
// (single paths plus one isolation path set per correlation subset),
// initializes every subset's good probability with its tightest
// observable lower bound (g(E) ≥ P̂(path set good) for any equation
// mentioning E, since the other factors are ≤ 1), and then repeatedly
// substitutes current estimates into each equation to re-derive each
// unknown.
//
// Unlike Correlation-complete it never solves a joint system: each
// unknown is peeled out of individual noisy equations, so estimation
// errors propagate through substitution chains. On dense topologies the
// chains are short and the heuristic is accurate; on sparse topologies
// the redundant, poorly-conditioned equations make it markedly noisier
// — the behaviour Fig. 4(b) reports.
//
// rec may be any observation store (Recorder or stream.Window); ctx
// cancels a long run (nil means context.Background()).
func CorrelationHeuristic(ctx context.Context, top *topology.Topology, rec observe.Store, cfg HeuristicConfig) (*LinkResult, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if rec.NumPaths() != top.NumPaths() {
		return nil, fmt.Errorf("probcalc: recorder/topology path mismatch")
	}
	sweeps := cfg.Sweeps
	if sweeps <= 0 {
		sweeps = 50
	}
	alwaysGood := rec.AlwaysGoodPaths(cfg.AlwaysGoodTol)
	pot := top.PotentiallyCongestedLinks(top.LinksOf(alwaysGood))

	// Unknown universe: per-correlation-set intersections appearing in
	// single-path and isolation equations, exactly like the core
	// algorithm's registration (the heuristic differs in the *solving*).
	type entry struct{ links *bitset.Set }
	var subs []entry
	index := map[string]int{}
	registerRow := func(pathSet *bitset.Set) []int {
		links := top.LinksOf(pathSet)
		// Decompose per correlation set in first-encounter order (links
		// iterate in ascending index order), NOT map iteration order:
		// registration order fixes both column indices and the float
		// summation order of the sweeps, so it must be deterministic.
		bySet := map[int]*bitset.Set{}
		var setOrder []int
		links.ForEach(func(li int) bool {
			if !pot.Contains(li) {
				return true
			}
			c := top.CorrSetOf(li)
			if bySet[c] == nil {
				bySet[c] = bitset.New(top.NumLinks())
				setOrder = append(setOrder, c)
			}
			bySet[c].Add(li)
			return true
		})
		var cols []int
		for _, c := range setOrder {
			sub := bySet[c]
			key := sub.Key()
			i, ok := index[key]
			if !ok {
				i = len(subs)
				index[key] = i
				subs = append(subs, entry{links: sub.Clone()})
			}
			cols = append(cols, i)
		}
		return cols
	}

	var rows [][]int
	var rhs []float64
	addEq := func(pathSet *bitset.Set) {
		cols := registerRow(pathSet)
		if len(cols) == 0 {
			return
		}
		lp, _ := rec.LogGoodFreq(pathSet)
		rows = append(rows, cols)
		rhs = append(rhs, lp)
	}
	one := bitset.New(top.NumPaths())
	for p := 0; p < top.NumPaths(); p++ {
		if alwaysGood.Contains(p) {
			continue
		}
		one.Clear()
		one.Add(p)
		addEq(one)
	}
	// Isolation equations per potentially congested link: paths through
	// e that avoid the rest of e's correlation set.
	for e := 0; e < top.NumLinks(); e++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		if !pot.Contains(e) || top.LinkPaths(e).IsEmpty() {
			continue
		}
		comp := bitset.New(top.NumLinks())
		for _, li := range top.CorrSetLinks(top.CorrSetOf(e)) {
			if li != e && pot.Contains(li) {
				comp.Add(li)
			}
		}
		iso := top.LinkPaths(e).Difference(top.PathsOf(comp))
		if !iso.IsEmpty() {
			addEq(iso)
		}
	}

	// Initialization: tightest observable lower bound per subset.
	logG := make([]float64, len(subs))
	seen := make([]bool, len(subs))
	for ri, cols := range rows {
		for _, c := range cols {
			if !seen[c] || rhs[ri] > logG[c] {
				logG[c] = rhs[ri]
				seen[c] = true
			}
		}
	}
	// Substitution sweeps (Jacobi with averaging): re-derive each
	// unknown from every equation mentioning it using the current
	// values of the others.
	sum := make([]float64, len(subs))
	cnt := make([]int, len(subs))
	const damping = 0.5 // undamped substitution oscillates on pair equations
	for s := 0; s < sweeps; s++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		for i := range sum {
			sum[i], cnt[i] = 0, 0
		}
		for ri, cols := range rows {
			total := 0.0
			for _, c := range cols {
				total += logG[c]
			}
			for _, c := range cols {
				cand := rhs[ri] - (total - logG[c])
				if cand > 0 {
					cand = 0 // probabilities never exceed 1
				}
				sum[c] += cand
				cnt[c]++
			}
		}
		for i := range logG {
			if cnt[i] > 0 {
				logG[i] += damping * (sum[i]/float64(cnt[i]) - logG[i])
			}
		}
	}

	res := &LinkResult{
		Prob:                 make([]float64, top.NumLinks()),
		Exact:                make([]bool, top.NumLinks()),
		PotentiallyCongested: pot,
	}
	single := bitset.New(top.NumLinks())
	for e := 0; e < top.NumLinks(); e++ {
		e := e
		fillLink(res, top, rec, pot, e, func() (float64, bool) {
			single.Clear()
			single.Add(e)
			i, ok := index[single.Key()]
			if !ok || !seen[i] {
				return 0, false
			}
			return math.Exp(logG[i]), true
		})
	}
	return res, nil
}

// fillLink applies the common per-link protocol: always-good links are
// exactly 0; otherwise use the algorithm's estimate when identified,
// else the shared observable fallback (core.FallbackLinkProb).
func fillLink(res *LinkResult, top *topology.Topology, rec observe.Store, pot *bitset.Set, e int, est func() (float64, bool)) {
	if !pot.Contains(e) {
		res.Prob[e], res.Exact[e] = 0, true
		return
	}
	if g, ok := est(); ok {
		res.Prob[e], res.Exact[e] = clamp01(1-g), true
		return
	}
	res.Prob[e], res.Exact[e] = core.FallbackLinkProb(top, rec, pot, e), false
}

func clamp01(x float64) float64 {
	if x < 0 {
		return 0
	}
	if x > 1 {
		return 1
	}
	return x
}
