package probcalc

import (
	"context"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/bitset"
	"repro/internal/brite"
	"repro/internal/observe"
	"repro/internal/stream"
	"repro/internal/topology"
)

// Property: both baselines must produce bit-identical results over a
// Recorder and over a stream.Window holding exactly the same intervals
// — including when the window has evicted a prefix of the stream. The
// guarantee is what lets every estimator run over the live sliding
// window of the streaming service.
func TestBaselinesRecorderWindowEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for round := 0; round < 6; round++ {
		// A small random overlay and a random observation stream.
		cfg := brite.DefaultConfig()
		cfg.NumAS = 8 + rng.Intn(10)
		cfg.RoutersPerAS = 3
		top, _, err := brite.ASLevelTopology(cfg, 20+rng.Intn(40), rng)
		if err != nil {
			t.Fatal(err)
		}
		total := 50 + rng.Intn(150)
		capacity := 20 + rng.Intn(total)
		congProb := 0.05 + 0.4*rng.Float64()

		win := stream.NewWindow(top.NumPaths(), capacity)
		var tail []*bitset.Set // the last `capacity` intervals
		for ti := 0; ti < total; ti++ {
			cong := bitset.New(top.NumPaths())
			for p := 0; p < top.NumPaths(); p++ {
				if rng.Float64() < congProb {
					cong.Add(p)
				}
			}
			win.Add(cong)
			tail = append(tail, cong)
			if len(tail) > capacity {
				tail = tail[1:]
			}
		}
		rec := observeRecorder(top, tail)

		tol := 0.05 * rng.Float64()
		seed := rng.Int63()

		recIndep, err1 := Independence(context.Background(), top, rec,
			IndependenceConfig{AlwaysGoodTol: tol, Seed: seed})
		winIndep, err2 := Independence(context.Background(), top, win,
			IndependenceConfig{AlwaysGoodTol: tol, Seed: seed})
		if err1 != nil || err2 != nil {
			t.Fatalf("independence: %v / %v", err1, err2)
		}
		if !reflect.DeepEqual(recIndep, winIndep) {
			t.Fatalf("round %d: Independence diverges between Recorder and Window", round)
		}

		recHeur, err1 := CorrelationHeuristic(context.Background(), top, rec,
			HeuristicConfig{AlwaysGoodTol: tol})
		winHeur, err2 := CorrelationHeuristic(context.Background(), top, win,
			HeuristicConfig{AlwaysGoodTol: tol})
		if err1 != nil || err2 != nil {
			t.Fatalf("heuristic: %v / %v", err1, err2)
		}
		if !reflect.DeepEqual(recHeur, winHeur) {
			t.Fatalf("round %d: Correlation-heuristic diverges between Recorder and Window", round)
		}
	}
}

// observeRecorder replays the intervals into a fresh Recorder.
func observeRecorder(top *topology.Topology, intervals []*bitset.Set) *observe.Recorder {
	rec := observe.NewRecorder(top.NumPaths())
	for _, iv := range intervals {
		rec.Add(iv)
	}
	return rec
}
