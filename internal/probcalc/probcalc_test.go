package probcalc

import (
	"context"
	"math"
	"math/rand"
	"testing"

	"repro/internal/bitset"
	"repro/internal/observe"
	"repro/internal/topology"
)

// simulate produces perfect observations over Fig. 1 Case 1 where e1,
// e4 are independent with probabilities p1, p4 and e2, e3 congest
// together with probability p23 when correlated is true, or
// independently with probability p23 each when false.
func simulate(t *testing.T, p1, p23, p4 float64, correlated bool, T int, seed int64) (*topology.Topology, *observe.Recorder) {
	t.Helper()
	top := topology.Fig1Case1()
	rng := rand.New(rand.NewSource(seed))
	rec := observe.NewRecorder(top.NumPaths())
	for i := 0; i < T; i++ {
		cong := bitset.New(4)
		if rng.Float64() < p1 {
			cong.Add(0)
		}
		if correlated {
			if rng.Float64() < p23 {
				cong.Add(1)
				cong.Add(2)
			}
		} else {
			if rng.Float64() < p23 {
				cong.Add(1)
			}
			if rng.Float64() < p23 {
				cong.Add(2)
			}
		}
		if rng.Float64() < p4 {
			cong.Add(3)
		}
		congPaths := bitset.New(3)
		for p := 0; p < 3; p++ {
			if top.PathLinks(p).Intersects(cong) {
				congPaths.Add(p)
			}
		}
		rec.Add(congPaths)
	}
	return top, rec
}

func TestIndependenceRecoversIndependentLinks(t *testing.T) {
	// When links really are independent, CLINK's step 1 is consistent.
	top, rec := simulate(t, 0.3, 0.25, 0.2, false, 60000, 1)
	res, err := Independence(context.Background(), top, rec, IndependenceConfig{})
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{0.3, 0.25, 0.25, 0.2}
	for e, w := range want {
		if !res.Exact[e] {
			t.Fatalf("link %d not identified", e)
		}
		if math.Abs(res.Prob[e]-w) > 0.03 {
			t.Errorf("link %d: prob %.3f, want ≈%.3f", e, res.Prob[e], w)
		}
	}
}

func TestIndependenceBiasedUnderCorrelation(t *testing.T) {
	// The §3.1 example: e2 and e3 perfectly correlated. Assuming
	// independence mis-computes the probabilities (the last two
	// equations of Fig. 2(a) are wrong); the error must be visible.
	p23 := 0.4
	top, rec := simulate(t, 0.0, p23, 0.0, true, 60000, 2)
	res, err := Independence(context.Background(), top, rec, IndependenceConfig{})
	if err != nil {
		t.Fatal(err)
	}
	// Under perfect correlation the pair-equation system is
	// inconsistent with the product form; at least one of e2, e3 must
	// be off by a clear margin.
	errSum := math.Abs(res.Prob[1]-p23) + math.Abs(res.Prob[2]-p23)
	if errSum < 0.05 {
		t.Fatalf("independence unexpectedly accurate under correlation (total error %.3f)", errSum)
	}
}

func TestCorrelationHeuristicHandlesCorrelation(t *testing.T) {
	p1, p23, p4 := 0.3, 0.4, 0.2
	top, rec := simulate(t, p1, p23, p4, true, 60000, 3)
	res, err := CorrelationHeuristic(context.Background(), top, rec, HeuristicConfig{})
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{p1, p23, p23, p4}
	for e, w := range want {
		if math.Abs(res.Prob[e]-w) > 0.05 {
			t.Errorf("link %d: prob %.3f, want ≈%.3f", e, res.Prob[e], w)
		}
	}
}

func TestAlwaysGoodLinksZero(t *testing.T) {
	// p3 always good -> e3, e4 always good -> probability exactly 0.
	top := topology.Fig1Case1()
	rng := rand.New(rand.NewSource(4))
	rec := observe.NewRecorder(top.NumPaths())
	for i := 0; i < 3000; i++ {
		congPaths := bitset.New(3)
		if rng.Float64() < 0.3 {
			congPaths.Add(0)
			congPaths.Add(1)
		}
		rec.Add(congPaths)
	}
	for name, run := range map[string]func() (*LinkResult, error){
		"independence": func() (*LinkResult, error) { return Independence(context.Background(), top, rec, IndependenceConfig{}) },
		"heuristic": func() (*LinkResult, error) {
			return CorrelationHeuristic(context.Background(), top, rec, HeuristicConfig{})
		},
	} {
		res, err := run()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		for _, e := range []int{2, 3} {
			if res.Prob[e] != 0 || !res.Exact[e] {
				t.Errorf("%s: always-good link %d: prob=%v exact=%v", name, e, res.Prob[e], res.Exact[e])
			}
			if res.PotentiallyCongested.Contains(e) {
				t.Errorf("%s: link %d should not be potentially congested", name, e)
			}
		}
	}
}

func TestUncoveredLinkFallback(t *testing.T) {
	links := []topology.Link{{ID: 0, AS: 0}, {ID: 1, AS: 1}}
	paths := []topology.Path{{ID: 0, Links: []int{0}}}
	top := topology.New(links, paths, nil)
	rec := observe.NewRecorder(1)
	rec.Add(bitset.FromIndices(1, 0))
	rec.Add(bitset.New(1))
	for name, run := range map[string]func() (*LinkResult, error){
		"independence": func() (*LinkResult, error) { return Independence(context.Background(), top, rec, IndependenceConfig{}) },
		"heuristic": func() (*LinkResult, error) {
			return CorrelationHeuristic(context.Background(), top, rec, HeuristicConfig{})
		},
	} {
		res, err := run()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if res.Prob[1] != 0 || res.Exact[1] {
			t.Errorf("%s: uncovered link should fall back to 0 (inexact), got %v exact=%v", name, res.Prob[1], res.Exact[1])
		}
		if math.Abs(res.Prob[0]-0.5) > 1e-9 {
			t.Errorf("%s: covered link prob = %v, want 0.5", name, res.Prob[0])
		}
	}
}

func TestMismatchedRecorderRejected(t *testing.T) {
	top := topology.Fig1Case1()
	rec := observe.NewRecorder(7)
	if _, err := Independence(context.Background(), top, rec, IndependenceConfig{}); err == nil {
		t.Fatal("Independence accepted mismatched recorder")
	}
	if _, err := CorrelationHeuristic(context.Background(), top, rec, HeuristicConfig{}); err == nil {
		t.Fatal("CorrelationHeuristic accepted mismatched recorder")
	}
}

func TestSolveLogSystemBasics(t *testing.T) {
	// x0 + x1 = log(0.25), x0 = log(0.5) -> g0 = 0.5, g1 = 0.5.
	rows := [][]int{{0, 1}, {0}}
	rhs := []float64{math.Log(0.25), math.Log(0.5)}
	g, ident := solveLogSystem(rows, rhs, 2)
	if !ident[0] || !ident[1] {
		t.Fatal("both columns should be identifiable")
	}
	if math.Abs(g[0]-0.5) > 1e-9 || math.Abs(g[1]-0.5) > 1e-9 {
		t.Fatalf("g = %v", g)
	}
}

func TestSolveLogSystemUnidentifiable(t *testing.T) {
	// Only x0 + x1 observed: neither is identifiable.
	g, ident := solveLogSystem([][]int{{0, 1}}, []float64{math.Log(0.3)}, 2)
	if ident[0] || ident[1] {
		t.Fatalf("columns should be unidentifiable, got %v %v", ident, g)
	}
	// Empty inputs.
	if g, ident := solveLogSystem(nil, nil, 3); ident[0] || g[0] != 0 {
		t.Fatal("empty system should identify nothing")
	}
}

func TestSolveLogSystemPartialIdentifiability(t *testing.T) {
	// x0 identifiable; x1 + x2 only jointly observed.
	rows := [][]int{{0}, {1, 2}, {0, 1, 2}}
	rhs := []float64{math.Log(0.5), math.Log(0.4), math.Log(0.2)}
	g, ident := solveLogSystem(rows, rhs, 3)
	if !ident[0] {
		t.Fatal("x0 should be identifiable")
	}
	if ident[1] || ident[2] {
		t.Fatal("x1, x2 should not be identifiable")
	}
	if math.Abs(g[0]-0.5) > 1e-9 {
		t.Fatalf("g0 = %v", g[0])
	}
}
