// Package netsim simulates congestion and probe traffic over an
// AS-level topology, following §3.2 of the paper ("Simulator"):
//
//   - a configurable fraction (10 % in the paper) of the AS-level links
//     is congestible, each with a congestion probability drawn uniformly
//     from (0, 1);
//   - congestion actually lives on the underlying *router-level* links,
//     so AS-level links that share a router-level link congest together
//     in the same interval — this is the ground truth behind the
//     correlation-set assumption;
//   - per interval, a good link drops a loss rate drawn from U(0, 0.01)
//     and a congested link from U(0.01, 1), the loss model of
//     Padmanabhan et al. [12];
//   - each path is probed with a batch of packets; the path is observed
//     congested when its measured loss exceeds 1−(1−f)^d for a path of
//     d links (the threshold of Duffield [8]), so end-to-end monitoring
//     has realistic false positives/negatives;
//   - in the No-Stationarity scenarios, the congestion probabilities are
//     redrawn every RedrawEvery intervals.
//
// Which links are congestible depends on the scenario: chosen uniformly
// (RandomCongestion), at the network edge (ConcentratedCongestion), or
// so that every congestible link is correlated with at least one other
// (NoIndependence).
package netsim

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/bitset"
	"repro/internal/topology"
)

// Scenario selects which links receive a non-zero congestion
// probability (§3.2).
type Scenario int

const (
	// RandomCongestion picks the congestible links uniformly at random.
	RandomCongestion Scenario = iota
	// ConcentratedCongestion picks links at the edge of the network
	// (adjacent to end-hosts: the first/last links of paths).
	ConcentratedCongestion
	// NoIndependence picks links such that each congestible link is
	// correlated with at least one other (they share a router link).
	NoIndependence
)

// String names the scenario as in the paper's figures.
func (s Scenario) String() string {
	switch s {
	case RandomCongestion:
		return "Random Congestion"
	case ConcentratedCongestion:
		return "Concentrated Congestion"
	case NoIndependence:
		return "No Independence"
	default:
		return fmt.Sprintf("Scenario(%d)", int(s))
	}
}

// Config parameterizes a simulation.
type Config struct {
	Scenario        Scenario
	CongestibleFrac float64 // fraction of links with non-zero congestion probability (paper: 0.10)
	NonStationary   bool    // redraw congestion probabilities periodically (the "No Stationarity" add-on)
	RedrawEvery     int     // intervals per stationary epoch (only if NonStationary)
	PacketsPerPath  int     // probe packets per path per interval
	LossThresholdF  float64 // the link threshold f; path threshold is 1-(1-f)^d
	PerfectE2E      bool    // bypass probing: a path is observed congested iff a link on it is congested
}

// DefaultConfig mirrors the paper's setup.
func DefaultConfig(s Scenario) Config {
	return Config{
		Scenario:        s,
		CongestibleFrac: 0.10,
		RedrawEvery:     50,
		PacketsPerPath:  1000,
		LossThresholdF:  0.01,
	}
}

// Model is a fully-specified simulation: the congestible router links,
// their per-epoch congestion probabilities, and the derived per-link
// ground truth.
type Model struct {
	Top *topology.Topology
	Cfg Config

	// congestible router links and their probabilities, per epoch.
	drivers   []int       // router-link IDs that can congest
	driverIdx map[int]int // router-link ID -> index into drivers
	epochs    [][]float64 // epochs[e][d] = P(driver d congested) during epoch e
	intervals int         // total interval count the model was built for

	// linkDrivers[e] lists (indices into drivers of) the congestible
	// router links underlying AS-level link e.
	linkDrivers [][]int

	pathThreshold []float64 // per path: 1-(1-f)^d

	// scratch reused across intervals.
	driverState []bool
	lossRate    []float64
}

// NewModel selects the congestible links per the scenario and draws the
// congestion probability schedule for totalIntervals intervals.
func NewModel(top *topology.Topology, cfg Config, totalIntervals int, rng *rand.Rand) (*Model, error) {
	if cfg.CongestibleFrac <= 0 || cfg.CongestibleFrac > 1 {
		return nil, fmt.Errorf("netsim: CongestibleFrac %v out of (0,1]", cfg.CongestibleFrac)
	}
	if cfg.PacketsPerPath <= 0 && !cfg.PerfectE2E {
		return nil, fmt.Errorf("netsim: PacketsPerPath must be positive")
	}
	if cfg.LossThresholdF <= 0 || cfg.LossThresholdF >= 1 {
		return nil, fmt.Errorf("netsim: LossThresholdF %v out of (0,1)", cfg.LossThresholdF)
	}
	if totalIntervals <= 0 {
		return nil, fmt.Errorf("netsim: totalIntervals must be positive")
	}
	m := &Model{Top: top, Cfg: cfg, intervals: totalIntervals, driverIdx: map[int]int{}}
	if err := m.selectDrivers(rng); err != nil {
		return nil, err
	}

	// Probability schedule: one epoch if stationary, else one per
	// RedrawEvery intervals.
	numEpochs := 1
	if cfg.NonStationary {
		re := cfg.RedrawEvery
		if re <= 0 {
			re = 50
		}
		numEpochs = (totalIntervals + re - 1) / re
	}
	m.epochs = make([][]float64, numEpochs)
	for e := range m.epochs {
		ps := make([]float64, len(m.drivers))
		for d := range ps {
			ps[d] = rng.Float64()
		}
		m.epochs[e] = ps
	}

	// Derived per-link driver lists and path thresholds.
	m.linkDrivers = make([][]int, top.NumLinks())
	for li, l := range top.Links {
		for _, r := range l.RouterLinks {
			if di, ok := m.driverIdx[r]; ok {
				m.linkDrivers[li] = append(m.linkDrivers[li], di)
			}
		}
	}
	m.pathThreshold = make([]float64, top.NumPaths())
	for pi := range m.pathThreshold {
		d := float64(top.PathLen(pi))
		m.pathThreshold[pi] = 1 - math.Pow(1-cfg.LossThresholdF, d)
	}
	m.driverState = make([]bool, len(m.drivers))
	m.lossRate = make([]float64, top.NumLinks())
	return m, nil
}

// addDriver registers router link r as congestible.
func (m *Model) addDriver(r int) {
	if _, ok := m.driverIdx[r]; ok {
		return
	}
	m.driverIdx[r] = len(m.drivers)
	m.drivers = append(m.drivers, r)
}

// selectDrivers implements the three scenario policies. In every
// scenario the target is ⌈frac·|E*|⌉ AS-level links with a non-zero
// congestion probability.
func (m *Model) selectDrivers(rng *rand.Rand) error {
	top := m.Top
	n := top.NumLinks()
	target := int(math.Ceil(m.Cfg.CongestibleFrac * float64(n)))
	if target < 1 {
		target = 1
	}
	affected := bitset.New(n)
	// countAffected recomputes which AS links contain a congestible
	// router link.
	recount := func() int {
		affected.Clear()
		for li, l := range top.Links {
			for _, r := range l.RouterLinks {
				if _, ok := m.driverIdx[r]; ok {
					affected.Add(li)
					break
				}
			}
		}
		return affected.Count()
	}

	switch m.Cfg.Scenario {
	case RandomCongestion, ConcentratedCongestion:
		var candidates []int
		if m.Cfg.Scenario == RandomCongestion {
			candidates = rng.Perm(n)
		} else {
			// Edge links: those adjacent to an end-host, i.e. appearing
			// as the first or last link of some path — "there is no
			// congestion at the core" (§3.2).
			edge := bitset.New(n)
			for _, p := range top.Paths {
				edge.Add(p.Links[0])
				edge.Add(p.Links[len(p.Links)-1])
			}
			candidates = edge.Indices()
			rng.Shuffle(len(candidates), func(i, j int) { candidates[i], candidates[j] = candidates[j], candidates[i] })
		}
		for _, li := range candidates {
			if recount() >= target {
				break
			}
			rl := top.Links[li].RouterLinks
			m.addDriver(rl[rng.Intn(len(rl))])
		}
	case NoIndependence:
		// Router links shared by ≥2 AS links: congesting one congests
		// all of them together.
		sharedBy := map[int][]int{}
		for li, l := range top.Links {
			for _, r := range l.RouterLinks {
				sharedBy[r] = append(sharedBy[r], li)
			}
		}
		var shared []int
		for r, lis := range sharedBy {
			if len(lis) >= 2 {
				shared = append(shared, r)
			}
		}
		// Deterministic base order, then shuffle.
		sortInts(shared)
		rng.Shuffle(len(shared), func(i, j int) { shared[i], shared[j] = shared[j], shared[i] })
		for _, r := range shared {
			if recount() >= target {
				break
			}
			m.addDriver(r)
		}
		if recount() < target {
			return fmt.Errorf("netsim: topology has too few correlated links for the NoIndependence scenario (%d of %d target)", recount(), target)
		}
	default:
		return fmt.Errorf("netsim: unknown scenario %d", m.Cfg.Scenario)
	}
	if len(m.drivers) == 0 {
		return fmt.Errorf("netsim: no congestible links selected")
	}
	return nil
}

func sortInts(s []int) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

// epochOf returns the epoch index of interval t.
func (m *Model) epochOf(t int) int {
	if !m.Cfg.NonStationary || len(m.epochs) == 1 {
		return 0
	}
	re := m.Cfg.RedrawEvery
	if re <= 0 {
		re = 50
	}
	e := t / re
	if e >= len(m.epochs) {
		e = len(m.epochs) - 1
	}
	return e
}

// Observation is the outcome of one measurement interval.
type Observation struct {
	CongestedPaths *bitset.Set // observed via probing (Assumption 2)
	CongestedLinks *bitset.Set // ground truth, hidden from the algorithms
}

// Interval simulates interval t: draws the congestion state, the loss
// rates, probes every path, and returns the observation.
func (m *Model) Interval(t int, rng *rand.Rand) Observation {
	ps := m.epochs[m.epochOf(t)]
	for d, p := range ps {
		m.driverState[d] = rng.Float64() < p
	}
	congLinks := bitset.New(m.Top.NumLinks())
	for li := range m.Top.Links {
		congested := false
		for _, di := range m.linkDrivers[li] {
			if m.driverState[di] {
				congested = true
				break
			}
		}
		if congested {
			congLinks.Add(li)
			m.lossRate[li] = 0.01 + rng.Float64()*0.99 // U(0.01, 1)
		} else {
			m.lossRate[li] = rng.Float64() * 0.01 // U(0, 0.01)
		}
	}
	congPaths := bitset.New(m.Top.NumPaths())
	for pi := range m.Top.Paths {
		if m.Cfg.PerfectE2E {
			if m.Top.PathLinks(pi).Intersects(congLinks) {
				congPaths.Add(pi)
			}
			continue
		}
		// Probe: survival through the path is the product of per-link
		// survival rates; the measured loss fraction is binomial.
		survive := 1.0
		for _, li := range m.Top.Paths[pi].Links {
			survive *= 1 - m.lossRate[li]
		}
		n := m.Cfg.PacketsPerPath
		got := Binomial(n, survive, rng)
		lossFrac := 1 - float64(got)/float64(n)
		if lossFrac > m.pathThreshold[pi] {
			congPaths.Add(pi)
		}
	}
	return Observation{CongestedPaths: congPaths, CongestedLinks: congLinks}
}

// TrueGoodProb returns the exact model probability that every link in
// the set is good, time-averaged over epochs: the product over the
// congestible router links underlying the set of (1 − p_r).
func (m *Model) TrueGoodProb(links *bitset.Set) float64 {
	// Union of driver indices under the set.
	seen := map[int]bool{}
	links.ForEach(func(li int) bool {
		for _, di := range m.linkDrivers[li] {
			seen[di] = true
		}
		return true
	})
	if len(seen) == 0 {
		return 1
	}
	return m.averageOverEpochs(func(ps []float64) float64 {
		g := 1.0
		for di := range seen {
			g *= 1 - ps[di]
		}
		return g
	})
}

// TrueCongestedProb returns the exact model probability that every link
// in the set is congested simultaneously, via inclusion–exclusion over
// the set (tractable for the small sets the algorithms report).
func (m *Model) TrueCongestedProb(links *bitset.Set) float64 {
	ids := links.Indices()
	if len(ids) == 0 {
		return 1
	}
	if len(ids) > 20 {
		panic("netsim: TrueCongestedProb on a set larger than 20 links")
	}
	return m.averageOverEpochs(func(ps []float64) float64 {
		// P(∀ congested) = Σ_{S⊆ids} (−1)^|S| P(all in S good).
		total := 0.0
		for mask := 0; mask < 1<<len(ids); mask++ {
			seen := map[int]bool{}
			bits := 0
			for b, li := range ids {
				if mask&(1<<b) != 0 {
					bits++
					for _, di := range m.linkDrivers[li] {
						seen[di] = true
					}
				}
			}
			g := 1.0
			for di := range seen {
				g *= 1 - ps[di]
			}
			if bits%2 == 0 {
				total += g
			} else {
				total -= g
			}
		}
		return total
	})
}

// TrueLinkProb returns the time-averaged probability that link e is
// congested.
func (m *Model) TrueLinkProb(e int) float64 {
	s := bitset.New(m.Top.NumLinks())
	s.Add(e)
	return 1 - m.TrueGoodProb(s)
}

// averageOverEpochs weights each epoch by the number of intervals it
// covers within the model's horizon.
func (m *Model) averageOverEpochs(f func(ps []float64) float64) float64 {
	if len(m.epochs) == 1 {
		return f(m.epochs[0])
	}
	re := m.Cfg.RedrawEvery
	if re <= 0 {
		re = 50
	}
	total, weight := 0.0, 0
	for e, ps := range m.epochs {
		w := re
		if (e+1)*re > m.intervals {
			w = m.intervals - e*re
		}
		if w <= 0 {
			break
		}
		total += float64(w) * f(ps)
		weight += w
	}
	return total / float64(weight)
}

// CongestibleLinks returns the AS-level links with a non-zero
// congestion probability (the scenario's 10 %).
func (m *Model) CongestibleLinks() *bitset.Set {
	out := bitset.New(m.Top.NumLinks())
	for li := range m.Top.Links {
		if len(m.linkDrivers[li]) > 0 {
			out.Add(li)
		}
	}
	return out
}

// CorrelatedWithAnother reports whether congestible link e shares a
// congestible router link with some other congestible link.
func (m *Model) CorrelatedWithAnother(e int) bool {
	for _, di := range m.linkDrivers[e] {
		for li := range m.Top.Links {
			if li == e {
				continue
			}
			for _, dj := range m.linkDrivers[li] {
				if di == dj {
					return true
				}
			}
		}
	}
	return false
}
