package netsim

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/bitset"
	"repro/internal/brite"
	"repro/internal/topology"
)

func testTopology(t *testing.T, seed int64) *topology.Topology {
	t.Helper()
	cfg := brite.DefaultConfig()
	cfg.NumAS = 25
	cfg.RoutersPerAS = 4
	top, _, err := brite.DenseTopology(cfg, 120, rand.New(rand.NewSource(seed)))
	if err != nil {
		t.Fatal(err)
	}
	return top
}

func TestBinomialEdgeCases(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	if Binomial(0, 0.5, rng) != 0 {
		t.Fatal("n=0 must give 0")
	}
	if Binomial(10, 0, rng) != 0 {
		t.Fatal("p=0 must give 0")
	}
	if Binomial(10, 1, rng) != 10 {
		t.Fatal("p=1 must give n")
	}
	if Binomial(-5, 0.5, rng) != 0 {
		t.Fatal("negative n must give 0")
	}
}

func TestBinomialMoments(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	// Exercise both the inversion branch (small variance) and the
	// normal-approximation branch (large variance).
	for _, tc := range []struct {
		n int
		p float64
	}{{20, 0.1}, {50, 0.5}, {400, 0.5}, {1000, 0.3}} {
		const draws = 20000
		sum, sumSq := 0.0, 0.0
		for i := 0; i < draws; i++ {
			x := float64(Binomial(tc.n, tc.p, rng))
			if x < 0 || x > float64(tc.n) {
				t.Fatalf("n=%d p=%v: sample %v out of range", tc.n, tc.p, x)
			}
			sum += x
			sumSq += x * x
		}
		mean := sum / draws
		wantMean := float64(tc.n) * tc.p
		if math.Abs(mean-wantMean) > 0.05*float64(tc.n) {
			t.Errorf("n=%d p=%v: mean %v, want ≈%v", tc.n, tc.p, mean, wantMean)
		}
		variance := sumSq/draws - mean*mean
		wantVar := float64(tc.n) * tc.p * (1 - tc.p)
		if math.Abs(variance-wantVar) > 0.25*wantVar+1 {
			t.Errorf("n=%d p=%v: var %v, want ≈%v", tc.n, tc.p, variance, wantVar)
		}
	}
}

func TestQuickBinomialRange(t *testing.T) {
	f := func(seed int64, pRaw float64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := math.Mod(math.Abs(pRaw), 1)
		n := rng.Intn(500)
		x := Binomial(n, p, rng)
		return x >= 0 && x <= n
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestModelCongestibleFraction(t *testing.T) {
	top := testTopology(t, 1)
	rng := rand.New(rand.NewSource(1))
	m, err := NewModel(top, DefaultConfig(RandomCongestion), 100, rng)
	if err != nil {
		t.Fatal(err)
	}
	frac := float64(m.CongestibleLinks().Count()) / float64(top.NumLinks())
	if frac < 0.08 || frac > 0.25 {
		t.Fatalf("congestible fraction = %.3f, want ≈0.10", frac)
	}
}

func TestModelRejectsBadConfig(t *testing.T) {
	top := testTopology(t, 2)
	rng := rand.New(rand.NewSource(1))
	bad := DefaultConfig(RandomCongestion)
	bad.CongestibleFrac = 0
	if _, err := NewModel(top, bad, 100, rng); err == nil {
		t.Fatal("CongestibleFrac=0 accepted")
	}
	bad = DefaultConfig(RandomCongestion)
	bad.PacketsPerPath = 0
	if _, err := NewModel(top, bad, 100, rng); err == nil {
		t.Fatal("PacketsPerPath=0 accepted")
	}
	bad = DefaultConfig(RandomCongestion)
	bad.LossThresholdF = 1.5
	if _, err := NewModel(top, bad, 100, rng); err == nil {
		t.Fatal("LossThresholdF=1.5 accepted")
	}
	if _, err := NewModel(top, DefaultConfig(RandomCongestion), 0, rng); err == nil {
		t.Fatal("totalIntervals=0 accepted")
	}
	weird := DefaultConfig(Scenario(42))
	if _, err := NewModel(top, weird, 100, rng); err == nil {
		t.Fatal("unknown scenario accepted")
	}
}

func TestConcentratedPicksEdgeLinks(t *testing.T) {
	top := testTopology(t, 3)
	rng := rand.New(rand.NewSource(2))
	m, err := NewModel(top, DefaultConfig(ConcentratedCongestion), 100, rng)
	if err != nil {
		t.Fatal(err)
	}
	edge := bitset.New(top.NumLinks())
	for _, p := range top.Paths {
		edge.Add(p.Links[0])
		edge.Add(p.Links[len(p.Links)-1])
	}
	// Every congestible link must share a driver router link with some
	// edge link; the directly selected ones are edge links themselves.
	cong := m.CongestibleLinks()
	direct := 0
	cong.ForEach(func(li int) bool {
		if edge.Contains(li) {
			direct++
		}
		return true
	})
	if float64(direct) < 0.6*float64(cong.Count()) {
		t.Fatalf("only %d/%d congestible links are edge links", direct, cong.Count())
	}
}

func TestNoIndependenceAllCorrelated(t *testing.T) {
	top := testTopology(t, 4)
	rng := rand.New(rand.NewSource(3))
	m, err := NewModel(top, DefaultConfig(NoIndependence), 100, rng)
	if err != nil {
		t.Fatal(err)
	}
	m.CongestibleLinks().ForEach(func(li int) bool {
		if !m.CorrelatedWithAnother(li) {
			t.Errorf("congestible link %d is not correlated with any other", li)
		}
		return true
	})
}

func TestIntervalGroundTruthWithinCongestible(t *testing.T) {
	top := testTopology(t, 5)
	rng := rand.New(rand.NewSource(4))
	m, err := NewModel(top, DefaultConfig(RandomCongestion), 50, rng)
	if err != nil {
		t.Fatal(err)
	}
	cong := m.CongestibleLinks()
	for t0 := 0; t0 < 50; t0++ {
		obs := m.Interval(t0, rng)
		if !obs.CongestedLinks.SubsetOf(cong) {
			t.Fatal("a non-congestible link congested")
		}
	}
}

func TestEmpiricalMarginalsMatchTruth(t *testing.T) {
	top := testTopology(t, 6)
	rng := rand.New(rand.NewSource(5))
	cfg := DefaultConfig(RandomCongestion)
	cfg.PerfectE2E = true
	const T = 4000
	m, err := NewModel(top, cfg, T, rng)
	if err != nil {
		t.Fatal(err)
	}
	counts := make([]int, top.NumLinks())
	for t0 := 0; t0 < T; t0++ {
		obs := m.Interval(t0, rng)
		obs.CongestedLinks.ForEach(func(li int) bool {
			counts[li]++
			return true
		})
	}
	for li := 0; li < top.NumLinks(); li++ {
		want := m.TrueLinkProb(li)
		got := float64(counts[li]) / T
		if math.Abs(got-want) > 0.05 {
			t.Errorf("link %d: empirical %.3f vs true %.3f", li, got, want)
		}
	}
}

func TestPerfectE2EMatchesSeparability(t *testing.T) {
	top := testTopology(t, 7)
	rng := rand.New(rand.NewSource(6))
	cfg := DefaultConfig(NoIndependence)
	cfg.PerfectE2E = true
	m, err := NewModel(top, cfg, 20, rng)
	if err != nil {
		t.Fatal(err)
	}
	for t0 := 0; t0 < 20; t0++ {
		obs := m.Interval(t0, rng)
		for pi := 0; pi < top.NumPaths(); pi++ {
			want := top.PathLinks(pi).Intersects(obs.CongestedLinks)
			if obs.CongestedPaths.Contains(pi) != want {
				t.Fatalf("interval %d path %d: separability violated", t0, pi)
			}
		}
	}
}

func TestProbingRoughlyAgreesWithTruth(t *testing.T) {
	// Probing is noisy but must agree with separability for the vast
	// majority of (interval, path) pairs.
	top := testTopology(t, 8)
	rng := rand.New(rand.NewSource(7))
	m, err := NewModel(top, DefaultConfig(RandomCongestion), 100, rng)
	if err != nil {
		t.Fatal(err)
	}
	agree, total := 0, 0
	for t0 := 0; t0 < 100; t0++ {
		obs := m.Interval(t0, rng)
		for pi := 0; pi < top.NumPaths(); pi++ {
			truth := top.PathLinks(pi).Intersects(obs.CongestedLinks)
			if obs.CongestedPaths.Contains(pi) == truth {
				agree++
			}
			total++
		}
	}
	if frac := float64(agree) / float64(total); frac < 0.85 {
		t.Fatalf("probe observations agree with separability only %.2f of the time", frac)
	}
}

func TestNonStationaryEpochs(t *testing.T) {
	top := testTopology(t, 9)
	rng := rand.New(rand.NewSource(8))
	cfg := DefaultConfig(NoIndependence)
	cfg.NonStationary = true
	cfg.RedrawEvery = 10
	const T = 95
	m, err := NewModel(top, cfg, T, rng)
	if err != nil {
		t.Fatal(err)
	}
	if len(m.epochs) != 10 {
		t.Fatalf("epochs = %d, want 10", len(m.epochs))
	}
	// The time-averaged marginal of a congestible link must lie within
	// the per-epoch extremes.
	li := m.CongestibleLinks().Indices()[0]
	s := bitset.New(top.NumLinks())
	s.Add(li)
	avg := m.TrueLinkProb(li)
	lo, hi := 2.0, -1.0
	for _, ps := range m.epochs {
		g := 1.0
		for _, di := range m.linkDrivers[li] {
			g *= 1 - ps[di]
		}
		p := 1 - g
		if p < lo {
			lo = p
		}
		if p > hi {
			hi = p
		}
	}
	if avg < lo-1e-12 || avg > hi+1e-12 {
		t.Fatalf("time-averaged %v outside epoch range [%v, %v]", avg, lo, hi)
	}
}

func TestTrueProbIdentities(t *testing.T) {
	top := testTopology(t, 10)
	rng := rand.New(rand.NewSource(9))
	m, err := NewModel(top, DefaultConfig(NoIndependence), 100, rng)
	if err != nil {
		t.Fatal(err)
	}
	cong := m.CongestibleLinks().Indices()
	// Singleton: P(congested) + P(good) = 1.
	for _, li := range cong[:min(len(cong), 5)] {
		s := bitset.New(top.NumLinks())
		s.Add(li)
		if math.Abs(m.TrueCongestedProb(s)+m.TrueGoodProb(s)-1) > 1e-9 {
			t.Fatalf("link %d: P(c)+P(g) != 1", li)
		}
	}
	// Pair inclusion-exclusion: P(both congested) = 1 - P(a good) -
	// P(b good) + P(both good).
	if len(cong) >= 2 {
		a, b := cong[0], cong[1]
		sa := bitset.New(top.NumLinks())
		sa.Add(a)
		sb := bitset.New(top.NumLinks())
		sb.Add(b)
		sab := bitset.New(top.NumLinks())
		sab.Add(a)
		sab.Add(b)
		want := 1 - m.TrueGoodProb(sa) - m.TrueGoodProb(sb) + m.TrueGoodProb(sab)
		if math.Abs(m.TrueCongestedProb(sab)-want) > 1e-9 {
			t.Fatalf("pair inclusion-exclusion violated: %v vs %v", m.TrueCongestedProb(sab), want)
		}
	}
	// Non-congestible links are always good.
	for li := 0; li < top.NumLinks(); li++ {
		if len(m.linkDrivers[li]) == 0 {
			if m.TrueLinkProb(li) != 0 {
				t.Fatalf("non-congestible link %d has prob %v", li, m.TrueLinkProb(li))
			}
		}
	}
	// Empty set is good with probability 1.
	if m.TrueGoodProb(bitset.New(top.NumLinks())) != 1 {
		t.Fatal("P(empty set good) != 1")
	}
}

func TestCorrelatedJointDiffersFromProduct(t *testing.T) {
	// In the NoIndependence scenario there must exist a pair with
	// P(both good) != P(a good)·P(b good) — otherwise the scenario
	// would not stress the Independence assumption.
	top := testTopology(t, 11)
	rng := rand.New(rand.NewSource(10))
	m, err := NewModel(top, DefaultConfig(NoIndependence), 100, rng)
	if err != nil {
		t.Fatal(err)
	}
	cong := m.CongestibleLinks().Indices()
	found := false
	for i := 0; i < len(cong) && !found; i++ {
		for j := i + 1; j < len(cong) && !found; j++ {
			sa := bitset.New(top.NumLinks())
			sa.Add(cong[i])
			sb := bitset.New(top.NumLinks())
			sb.Add(cong[j])
			sab := sa.Union(sb)
			joint := m.TrueGoodProb(sab)
			prod := m.TrueGoodProb(sa) * m.TrueGoodProb(sb)
			if math.Abs(joint-prod) > 0.01 {
				found = true
			}
		}
	}
	if !found {
		t.Fatal("no correlated pair found in NoIndependence scenario")
	}
}
