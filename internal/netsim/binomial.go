package netsim

import (
	"math"
	"math/rand"
)

// Binomial draws a sample from Binomial(n, p). Probing a path with n
// packets whose end-to-end survival probability is p is a binomial
// experiment; sampling it directly (instead of flipping n coins) keeps
// interval simulation cheap for thousands of paths.
//
// For small n·p it inverts the CDF; for large n·p·(1−p) it uses the
// normal approximation with continuity correction, clamped to [0, n].
// p > 1/2 is folded through the symmetry Bin(n, p) = n − Bin(n, 1−p)
// so the inversion walk is O(n·min(p, 1−p)) — the probing hot path
// samples survival probabilities near 1, which would otherwise walk
// the CDF across nearly all n packets on every probe.
func Binomial(n int, p float64, rng *rand.Rand) int {
	switch {
	case n <= 0 || p <= 0:
		return 0
	case p >= 1:
		return n
	}
	if p > 0.5 {
		return n - Binomial(n, 1-p, rng)
	}
	variance := float64(n) * p * (1 - p)
	if variance > 25 {
		x := math.Round(float64(n)*p + math.Sqrt(variance)*rng.NormFloat64())
		if x < 0 {
			return 0
		}
		if x > float64(n) {
			return n
		}
		return int(x)
	}
	// CDF inversion with the recurrence
	// P(k+1) = P(k)·(n−k)/(k+1)·p/(1−p).
	u := rng.Float64()
	pk := math.Pow(1-p, float64(n)) // P(0)
	cdf := pk
	k := 0
	for cdf < u && k < n {
		pk *= float64(n-k) / float64(k+1) * p / (1 - p)
		cdf += pk
		k++
	}
	return k
}
