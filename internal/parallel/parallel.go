// Package parallel provides the bounded, deterministic worker pools
// shared by the solver and the experiment engine. The contract that
// makes parallel runs bit-identical to serial ones lives here: fn(i)
// must only write state owned by index i, and anything
// ordering-sensitive stays with the caller.
package parallel

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// workerCount resolves the worker knob: 0 (the zero value) and negative
// both mean GOMAXPROCS — parallelism is the default, and 1 is the
// explicit serial opt-out. The count is clamped to the number of items
// so surplus workers are never spawned.
func workerCount(workers, n int) int {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	return workers
}

// Resolve returns the effective worker count for a knob value without
// clamping to an item count: 0 and negative mean GOMAXPROCS.
func Resolve(workers int) int {
	if workers <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return workers
}

// For runs fn(i) for every i in [start, end) on at most workers
// goroutines. 1 worker degenerates to a plain serial loop; 0 or
// negative uses all CPUs.
func For(workers, start, end int, fn func(i int)) {
	if workerCount(workers, end-start) <= 1 {
		for i := start; i < end; i++ {
			fn(i)
		}
		return
	}
	forPool(workerCount(workers, end-start), start, end, func(i int) bool {
		fn(i)
		return true
	})
}

// ForWorker is For with a worker identity: fn(w, i) runs with w in
// [0, workers) unique to the executing goroutine, so fn can use
// per-worker scratch slabs without synchronization. Which worker
// handles which index is scheduling-dependent — fn's observable output
// must depend only on i, never on w. 1 worker degenerates to a serial
// loop with w = 0.
func ForWorker(workers, start, end int, fn func(w, i int)) {
	wc := workerCount(workers, end-start)
	if wc <= 1 {
		for i := start; i < end; i++ {
			fn(0, i)
		}
		return
	}
	var wg sync.WaitGroup
	next := make(chan int)
	for w := 0; w < wc; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := range next {
				fn(w, i)
			}
		}(w)
	}
	for i := start; i < end; i++ {
		next <- i
	}
	close(next)
	wg.Wait()
}

// ForErr runs fn(i) for i in [0, n) on at most workers goroutines
// (resolved like For: 0 or negative = all CPUs, 1 = serial) and
// returns the error of the lowest failing index, matching the serial
// loop's error precedence (an index below the first failure always ran
// before it was dispatched, so its error is always collected). After
// any failure no new indices are dispatched; already-running calls
// finish.
func ForErr(workers, n int, fn func(i int) error) error {
	if workerCount(workers, n) <= 1 {
		for i := 0; i < n; i++ {
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	}
	errs := make([]error, n)
	var failed atomic.Bool
	forPool(workerCount(workers, n), 0, n, func(i int) bool {
		if err := fn(i); err != nil {
			errs[i] = err
			failed.Store(true)
		}
		return !failed.Load()
	})
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// forPool feeds [start, end) to workers goroutines in index order.
// fn returning false stops the dispatch of further indices.
func forPool(workers, start, end int, fn func(i int) bool) {
	var wg sync.WaitGroup
	var stopped atomic.Bool
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				if !fn(i) {
					stopped.Store(true)
				}
			}
		}()
	}
	for i := start; i < end && !stopped.Load(); i++ {
		next <- i
	}
	close(next)
	wg.Wait()
}
