package parallel

import (
	"errors"
	"sync/atomic"
	"testing"
)

func TestForCoversEveryIndexOnce(t *testing.T) {
	for _, workers := range []int{0, 1, 3, -1, 100} {
		counts := make([]int32, 50)
		For(workers, 10, 50, func(i int) {
			atomic.AddInt32(&counts[i], 1)
		})
		for i, c := range counts {
			want := int32(0)
			if i >= 10 {
				want = 1
			}
			if c != want {
				t.Fatalf("workers=%d: index %d ran %d times, want %d", workers, i, c, want)
			}
		}
	}
}

func TestForEmptyRange(t *testing.T) {
	For(4, 3, 3, func(i int) { t.Fatal("fn called on empty range") })
}

func TestForErrLowestIndexWins(t *testing.T) {
	errLow, errHigh := errors.New("low"), errors.New("high")
	for _, workers := range []int{1, 4} {
		err := ForErr(workers, 10, func(i int) error {
			switch i {
			case 2:
				return errLow
			case 7:
				return errHigh
			}
			return nil
		})
		// Index 2 is always dispatched before 7, so its error is always
		// collected and must win.
		if err != errLow {
			t.Fatalf("workers=%d: err = %v, want %v", workers, err, errLow)
		}
	}
}

func TestForErrStopsDispatchingAfterFailure(t *testing.T) {
	var ran int32
	err := ForErr(2, 1000, func(i int) error {
		atomic.AddInt32(&ran, 1)
		if i == 0 {
			return errors.New("fail fast")
		}
		return nil
	})
	if err == nil {
		t.Fatal("expected error")
	}
	// After index 0 fails, dispatch must stop: with 2 workers only a
	// handful of indices can already be in flight, nowhere near all
	// 1000 (the serial path would run exactly 1).
	if n := atomic.LoadInt32(&ran); n > 100 {
		t.Fatalf("ran %d trials after early failure, want early stop", n)
	}
}

func TestForErrNoError(t *testing.T) {
	var ran int32
	if err := ForErr(4, 20, func(i int) error {
		atomic.AddInt32(&ran, 1)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if ran != 20 {
		t.Fatalf("ran %d, want 20", ran)
	}
}
