// Package inference implements the three Boolean Inference algorithms
// whose limitations Section 3 of the paper demonstrates:
//
//   - Sparsity (originally Tomo [6], Duffield's tree algorithm [8]
//     adapted to meshes): assumes Homogeneity and greedily blames the
//     links that explain the most congested paths.
//   - Bayesian-Independence (originally CLINK [11]): learns per-link
//     congestion probabilities assuming Independence, then solves a MAP
//     problem per interval with a greedy weighted set cover (the exact
//     problem is NP-complete).
//   - Bayesian-Correlation ([10], developed for the paper): like
//     Bayesian-Independence but its Probability Computation step is the
//     Correlation-complete algorithm, and its per-interval step scores
//     candidates with joint subset probabilities where identifiable.
//
// Every algorithm implements the Algorithm interface: Prepare consumes
// the whole monitoring period once, Infer diagnoses one interval.
package inference

import (
	"context"
	"math"
	"sync"

	"repro/internal/bitset"
	"repro/internal/core"
	"repro/internal/observe"
	"repro/internal/probcalc"
	"repro/internal/topology"
)

// Algorithm is a Boolean Inference algorithm: given the congested paths
// of one interval, infer the congested links (the problem of §2).
type Algorithm interface {
	// Name returns the paper's name for the algorithm.
	Name() string
	// Prepare runs once over the recorded monitoring period (the
	// Probability Computation step of the Bayesian algorithms; a no-op
	// for Sparsity). rec may be any observation store — a Recorder or a
	// live stream.Window; ctx cancels a long preparation.
	Prepare(ctx context.Context, top *topology.Topology, rec observe.Store) error
	// Infer returns the links inferred congested during an interval in
	// which exactly the given paths were observed congested.
	Infer(congestedPaths *bitset.Set) *bitset.Set
	// Assumptions lists the algorithm's sources of inaccuracy (the rows
	// of Table 2 that apply to it).
	Assumptions() []string
}

// candidateSetup computes the per-interval candidate machinery shared
// by all three algorithms: links on good paths are exonerated
// (Separability), the remaining links on congested paths are candidate
// culprits.
type candidateSetup struct {
	top *topology.Topology
}

// inferScratch pools the per-interval buffers of the candidate
// computation and the greedy cover. The figure drivers call Infer once
// per interval per trial, so these transients dominated the
// experiment's allocation profile; a pool keeps Infer safe for the
// concurrent trials of the experiment engine.
type inferScratch struct {
	numLinks, numPaths int

	goodPaths  *bitset.Set
	exonerated *bitset.Set
	cands      *bitset.Set
	uncovered  *bitset.Set
	candList   []int
}

var inferPool = sync.Pool{New: func() any { return &inferScratch{} }}

func getInferScratch(top *topology.Topology) *inferScratch {
	sc := inferPool.Get().(*inferScratch)
	nl, np := top.NumLinks(), top.NumPaths()
	if sc.numLinks != nl || sc.numPaths != np {
		*sc = inferScratch{
			numLinks: nl, numPaths: np,
			goodPaths:  bitset.New(np),
			exonerated: bitset.New(nl),
			cands:      bitset.New(nl),
			uncovered:  bitset.New(np),
		}
	}
	return sc
}

func putInferScratch(sc *inferScratch) { inferPool.Put(sc) }

// candidates returns the candidate links: the links on congested paths
// minus those exonerated by a good path (Separability). The result
// lives in sc and is valid until the scratch is released.
func (c *candidateSetup) candidates(sc *inferScratch, congestedPaths *bitset.Set) *bitset.Set {
	sc.goodPaths.Clear()
	for p := 0; p < c.top.NumPaths(); p++ {
		if !congestedPaths.Contains(p) {
			sc.goodPaths.Add(p)
		}
	}
	sc.exonerated.Clear()
	sc.goodPaths.ForEach(func(pi int) bool {
		sc.exonerated.UnionWith(c.top.PathLinks(pi))
		return true
	})
	sc.cands.Clear()
	congestedPaths.ForEach(func(pi int) bool {
		sc.cands.UnionWith(c.top.PathLinks(pi))
		return true
	})
	sc.cands.AndNotInto(sc.exonerated, sc.cands)
	return sc.cands
}

// greedyCover selects links from cands until every congested path is
// covered (or no candidate covers a remaining path), choosing at each
// step the candidate minimizing score(link, newlyCovered). Lower scores
// win; ties break toward smaller link IDs for determinism.
func greedyCover(sc *inferScratch, top *topology.Topology, congestedPaths, cands *bitset.Set,
	score func(link, newlyCovered int, chosen *bitset.Set) float64) *bitset.Set {

	chosen := bitset.New(top.NumLinks()) // returned to the caller: not scratch
	uncovered := congestedPaths.IntersectInto(congestedPaths, sc.uncovered)
	sc.candList = cands.AppendIndices(sc.candList[:0])
	candList := sc.candList
	for !uncovered.IsEmpty() {
		best, bestScore, bestCov := -1, math.Inf(1), 0
		for _, e := range candList {
			if chosen.Contains(e) {
				continue
			}
			cov := top.LinkPaths(e).IntersectCount(uncovered)
			if cov == 0 {
				continue
			}
			s := score(e, cov, chosen)
			if s < bestScore || (s == bestScore && best >= 0 && e < best) {
				best, bestScore, bestCov = e, s, cov
			}
		}
		if best < 0 {
			break // remaining congested paths unexplainable (observation noise)
		}
		_ = bestCov
		chosen.Add(best)
		uncovered.AndNotInto(top.LinkPaths(best), uncovered)
	}
	return chosen
}

// ---------------------------------------------------------------------
// Sparsity
// ---------------------------------------------------------------------

// Sparsity is the Homogeneity-based greedy algorithm (Tomo): few
// congested links explain many congested paths, so it repeatedly blames
// the candidate link traversing the most unexplained congested paths.
type Sparsity struct {
	setup candidateSetup
}

// NewSparsity returns a Sparsity inferencer.
func NewSparsity() *Sparsity { return &Sparsity{} }

// Name implements Algorithm.
func (s *Sparsity) Name() string { return "Sparsity" }

// Prepare implements Algorithm; Sparsity needs no monitoring period.
func (s *Sparsity) Prepare(_ context.Context, top *topology.Topology, _ observe.Store) error {
	s.setup.top = top
	return nil
}

// Infer implements Algorithm.
func (s *Sparsity) Infer(congestedPaths *bitset.Set) *bitset.Set {
	sc := getInferScratch(s.setup.top)
	defer putInferScratch(sc)
	cands := s.setup.candidates(sc, congestedPaths)
	// Maximize coverage == minimize its negation; Homogeneity means no
	// other weighting.
	return greedyCover(sc, s.setup.top, congestedPaths, cands,
		func(_, newlyCovered int, _ *bitset.Set) float64 {
			return -float64(newlyCovered)
		})
}

// Assumptions implements Algorithm (Table 2, column "Spar.").
func (s *Sparsity) Assumptions() []string {
	return []string{"Separability", "E2E Monitoring", "Homogeneity", "Identifiability", "Other approx./heuristic"}
}

// ---------------------------------------------------------------------
// Bayesian-Independence (CLINK)
// ---------------------------------------------------------------------

// BayesianIndependence learns per-link probabilities under the
// Independence assumption (step 1) and per interval picks an
// approximately most-likely solution with a greedy weighted set cover
// (step 2); the weight of blaming link e is log((1−p_e)/p_e), so likely
// congested links are cheap.
type BayesianIndependence struct {
	setup candidateSetup
	cfg   probcalc.IndependenceConfig
	probs *probcalc.LinkResult
}

// NewBayesianIndependence returns a CLINK-style inferencer.
func NewBayesianIndependence(cfg probcalc.IndependenceConfig) *BayesianIndependence {
	return &BayesianIndependence{cfg: cfg}
}

// Name implements Algorithm.
func (b *BayesianIndependence) Name() string { return "Bayesian-Independence" }

// Prepare implements Algorithm: the Probability Computation step.
func (b *BayesianIndependence) Prepare(ctx context.Context, top *topology.Topology, rec observe.Store) error {
	b.setup.top = top
	res, err := probcalc.Independence(ctx, top, rec, b.cfg)
	if err != nil {
		return err
	}
	b.probs = res
	return nil
}

// linkWeight converts probability p into the set-cover weight
// log((1−p)/p), clamped away from 0 and 1.
func linkWeight(p float64) float64 {
	const eps = 1e-4
	if p < eps {
		p = eps
	}
	if p > 1-eps {
		p = 1 - eps
	}
	return math.Log((1 - p) / p)
}

// Infer implements Algorithm.
func (b *BayesianIndependence) Infer(congestedPaths *bitset.Set) *bitset.Set {
	sc := getInferScratch(b.setup.top)
	defer putInferScratch(sc)
	cands := b.setup.candidates(sc, congestedPaths)
	return greedyCover(sc, b.setup.top, congestedPaths, cands,
		func(e, newlyCovered int, _ *bitset.Set) float64 {
			return linkWeight(b.probs.Prob[e]) / float64(newlyCovered)
		})
}

// Assumptions implements Algorithm (Table 2, "Bayesian-Indep.").
func (b *BayesianIndependence) Assumptions() []string {
	return []string{"Separability", "E2E Monitoring", "Independence", "Identifiability", "Other approx./heuristic"}
}

// ---------------------------------------------------------------------
// Bayesian-Correlation
// ---------------------------------------------------------------------

// BayesianCorrelation replaces step 1 with the Correlation-complete
// algorithm (Assumption 5 instead of Independence) and makes step 2
// correlation-aware: the cost of blaming a link already correlated with
// a blamed sibling uses the conditional probability
// P(e congested | blamed siblings congested) derived from the joint
// subset probabilities, so correlated links are blamed together.
type BayesianCorrelation struct {
	setup candidateSetup
	cfg   core.Config
	res   *core.Result
}

// NewBayesianCorrelation returns the paper's new inferencer [10].
func NewBayesianCorrelation(cfg core.Config) *BayesianCorrelation {
	return &BayesianCorrelation{cfg: cfg}
}

// Name implements Algorithm.
func (b *BayesianCorrelation) Name() string { return "Bayesian-Correlation" }

// Prepare implements Algorithm.
func (b *BayesianCorrelation) Prepare(ctx context.Context, top *topology.Topology, rec observe.Store) error {
	b.setup.top = top
	res, err := core.Compute(ctx, top, rec, b.cfg)
	if err != nil {
		return err
	}
	b.res = res
	return nil
}

// conditional returns P(e congested | the already chosen links of e's
// correlation set congested), falling back to the marginal when the
// joint probabilities are not identifiable.
func (b *BayesianCorrelation) conditional(e int, chosen *bitset.Set) float64 {
	marginal, _ := b.res.LinkCongestProbOrFallback(e)
	cs := b.setup.top.CorrSetOf(e)
	sibs := bitset.New(b.setup.top.NumLinks())
	chosen.ForEach(func(li int) bool {
		if b.setup.top.CorrSetOf(li) == cs {
			sibs.Add(li)
		}
		return true
	})
	if sibs.IsEmpty() || sibs.Count() > 8 {
		// Inclusion–exclusion over many siblings is exponential; past 8
		// the joint estimate is too noisy to help anyway.
		return marginal
	}
	pSibs, ok1 := b.res.CongestedProb(sibs)
	withE := sibs.Clone()
	withE.Add(e)
	pJoint, ok2 := b.res.CongestedProb(withE)
	if !ok1 || !ok2 || pSibs <= 1e-12 {
		return marginal
	}
	return pJoint / pSibs
}

// Infer implements Algorithm.
func (b *BayesianCorrelation) Infer(congestedPaths *bitset.Set) *bitset.Set {
	sc := getInferScratch(b.setup.top)
	defer putInferScratch(sc)
	cands := b.setup.candidates(sc, congestedPaths)
	return greedyCover(sc, b.setup.top, congestedPaths, cands,
		func(e, newlyCovered int, chosen *bitset.Set) float64 {
			return linkWeight(b.conditional(e, chosen)) / float64(newlyCovered)
		})
}

// Assumptions implements Algorithm (Table 2, "Bayesian-Corr.").
func (b *BayesianCorrelation) Assumptions() []string {
	return []string{"Separability", "E2E Monitoring", "Correlation Sets", "Identifiability++", "Other approx./heuristic"}
}
