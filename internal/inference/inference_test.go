package inference

import (
	"context"
	"math/rand"
	"testing"

	"repro/internal/bitset"
	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/observe"
	"repro/internal/probcalc"
	"repro/internal/topology"
)

func TestSparsityToyExample(t *testing.T) {
	// §2/§3.1: all three paths congested -> Sparsity infers {e1, e3}
	// (each participates in two congested paths).
	top := topology.Fig1Case1()
	s := NewSparsity()
	if err := s.Prepare(context.Background(), top, observe.NewRecorder(top.NumPaths())); err != nil {
		t.Fatal(err)
	}
	got := s.Infer(bitset.FromIndices(3, 0, 1, 2))
	if got.String() != "{0, 2}" {
		t.Fatalf("Sparsity inferred %s, want {e1,e3} = {0, 2}", got)
	}
}

func TestSparsityMissesEdgeCongestion(t *testing.T) {
	// §3.1: when e2 and e3 are the congested links, all paths congest
	// and Sparsity still picks {e1, e3}: one miss, one false blame.
	top := topology.Fig1Case1()
	s := NewSparsity()
	_ = s.Prepare(context.Background(), top, observe.NewRecorder(top.NumPaths()))
	inferred := s.Infer(bitset.FromIndices(3, 0, 1, 2))
	actual := bitset.FromIndices(4, 1, 2)
	dr, _ := metrics.DetectionRate(inferred, actual)
	fpr, _ := metrics.FalsePositiveRate(inferred, actual)
	if dr != 0.5 || fpr != 0.5 {
		t.Fatalf("dr=%v fpr=%v, want 0.5, 0.5", dr, fpr)
	}
}

func TestExonerationBySeparability(t *testing.T) {
	// Links on good paths are never blamed, by any algorithm.
	top := topology.Fig1Case1()
	rec := recordCorrelated(top, 0.4, 600, 1)
	algs := []Algorithm{
		NewSparsity(),
		NewBayesianIndependence(probcalc.IndependenceConfig{}),
		NewBayesianCorrelation(core.Config{}),
	}
	for _, a := range algs {
		if err := a.Prepare(context.Background(), top, rec); err != nil {
			t.Fatalf("%s: %v", a.Name(), err)
		}
		// Only p1 congested: p2, p3 good exonerate e1, e3, e4.
		got := a.Infer(bitset.FromIndices(3, 0))
		if got.Contains(0) || got.Contains(2) || got.Contains(3) {
			t.Errorf("%s blamed an exonerated link: %s", a.Name(), got)
		}
		if !got.Contains(1) {
			t.Errorf("%s failed to blame the only possible culprit e2: %s", a.Name(), got)
		}
	}
}

// recordCorrelated simulates Fig. 1 Case 1 where e2 and e3 are
// perfectly correlated with congestion probability p and e1, e4 are
// always good (the §3.1 example that defeats Bayesian-Independence).
func recordCorrelated(top *topology.Topology, p float64, T int, seed int64) *observe.Recorder {
	rng := rand.New(rand.NewSource(seed))
	rec := observe.NewRecorder(top.NumPaths())
	for i := 0; i < T; i++ {
		congPaths := bitset.New(3)
		if rng.Float64() < p {
			congPaths.Add(0)
			congPaths.Add(1)
			congPaths.Add(2)
		}
		rec.Add(congPaths)
	}
	return rec
}

func TestBayesianCorrelationBeatsIndependenceUnderCorrelation(t *testing.T) {
	// The paper's §3.1 example: e2, e3 perfectly correlated. When all
	// paths congest, Bayesian-Independence mis-learns the probabilities
	// and picks {e1, e3}; Bayesian-Correlation identifies {e2, e3}.
	top := topology.Fig1Case1()
	rec := recordCorrelated(top, 0.4, 3000, 2)

	bi := NewBayesianIndependence(probcalc.IndependenceConfig{})
	if err := bi.Prepare(context.Background(), top, rec); err != nil {
		t.Fatal(err)
	}
	bc := NewBayesianCorrelation(core.Config{})
	if err := bc.Prepare(context.Background(), top, rec); err != nil {
		t.Fatal(err)
	}

	actual := bitset.FromIndices(4, 1, 2)
	obs := bitset.FromIndices(3, 0, 1, 2)

	gotBC := bc.Infer(obs)
	if !gotBC.Equal(actual) {
		t.Fatalf("Bayesian-Correlation inferred %s, want {e2,e3} = {1, 2}", gotBC)
	}
	// Bayesian-Independence mis-learns the probabilities: it must put
	// non-trivial congestion probability on the always-good links e1 or
	// e4 (the Fig. 2(a) system is inconsistent under correlation).
	if bi.probs.Prob[0] < 0.05 && bi.probs.Prob[3] < 0.05 {
		t.Fatalf("Bayesian-Independence learned probs %v; expected spurious mass on e1/e4", bi.probs.Prob)
	}
	_ = metrics.Mean{}
}

func TestBayesianIndependenceAccurateWhenIndependent(t *testing.T) {
	// With genuinely independent links the Bayesian machinery works:
	// average detection must be high over many intervals.
	top := topology.Fig1Case1()
	rng := rand.New(rand.NewSource(3))
	rec := observe.NewRecorder(top.NumPaths())
	type state struct{ links, paths *bitset.Set }
	var states []state
	probs := []float64{0.3, 0.15, 0.2, 0.25}
	for i := 0; i < 2000; i++ {
		cong := bitset.New(4)
		for e, p := range probs {
			if rng.Float64() < p {
				cong.Add(e)
			}
		}
		congPaths := bitset.New(3)
		for p := 0; p < 3; p++ {
			if top.PathLinks(p).Intersects(cong) {
				congPaths.Add(p)
			}
		}
		rec.Add(congPaths)
		states = append(states, state{links: cong, paths: congPaths})
	}
	bi := NewBayesianIndependence(probcalc.IndependenceConfig{})
	if err := bi.Prepare(context.Background(), top, rec); err != nil {
		t.Fatal(err)
	}
	var dr metrics.Mean
	for _, st := range states {
		inferred := bi.Infer(st.paths)
		r, ok := metrics.DetectionRate(inferred, st.links)
		dr.AddIf(r, ok)
	}
	if dr.Value() < 0.7 {
		t.Fatalf("Bayesian-Independence detection %.3f under independence, want ≥ 0.7", dr.Value())
	}
}

func TestInferEmptyObservation(t *testing.T) {
	top := topology.Fig1Case1()
	for _, a := range []Algorithm{
		NewSparsity(),
		NewBayesianIndependence(probcalc.IndependenceConfig{}),
		NewBayesianCorrelation(core.Config{}),
	} {
		if err := a.Prepare(context.Background(), top, recordCorrelated(top, 0.3, 200, 4)); err != nil {
			t.Fatal(err)
		}
		if got := a.Infer(bitset.New(3)); !got.IsEmpty() {
			t.Errorf("%s inferred %s from an all-good interval", a.Name(), got)
		}
	}
}

func TestAssumptionsMatchTable2(t *testing.T) {
	// Table 2's rows per algorithm.
	cases := []struct {
		alg  Algorithm
		want map[string]bool
	}{
		{NewSparsity(), map[string]bool{"Homogeneity": true, "Independence": false, "Correlation Sets": false}},
		{NewBayesianIndependence(probcalc.IndependenceConfig{}), map[string]bool{"Independence": true, "Homogeneity": false}},
		{NewBayesianCorrelation(core.Config{}), map[string]bool{"Correlation Sets": true, "Identifiability++": true, "Independence": false}},
	}
	for _, c := range cases {
		has := map[string]bool{}
		for _, a := range c.alg.Assumptions() {
			has[a] = true
		}
		if !has["Separability"] || !has["E2E Monitoring"] {
			t.Errorf("%s must list the universal assumptions", c.alg.Name())
		}
		for k, v := range c.want {
			if has[k] != v {
				t.Errorf("%s: assumption %q = %v, want %v", c.alg.Name(), k, has[k], v)
			}
		}
	}
}
