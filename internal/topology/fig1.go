package topology

// This file constructs the paper's toy topology of Figure 1:
//
//	Links E* = {e1, e2, e3, e4}; Paths P* = {p1, p2, p3}
//	p1 = {e1, e2}, p2 = {e1, e3}, p3 = {e4, e3}
//
// so that Paths({e1}) = {p1,p2}, Paths({e2}) = {p1},
// Paths({e3}) = {p2,p3}, Paths({e4}) = {p3}, matching the coverage
// table in §5.3. The two correlation-set cases of the figure are:
//
//	Case 1: C* = {{e1}, {e2,e3}, {e4}}   (Identifiability++ holds)
//	Case 2: C* = {{e1,e4}, {e2,e3}}      (Identifiability++ fails)

func fig1Links() []Link {
	return []Link{
		{ID: 0, Name: "e1", AS: 1},
		{ID: 1, Name: "e2", AS: 2},
		{ID: 2, Name: "e3", AS: 2},
		{ID: 3, Name: "e4", AS: 3},
	}
}

func fig1Paths() []Path {
	return []Path{
		{ID: 0, Name: "p1", Links: []int{0, 1}},
		{ID: 1, Name: "p2", Links: []int{0, 2}},
		{ID: 2, Name: "p3", Links: []int{3, 2}},
	}
}

// Fig1Case1 returns the toy topology with correlation sets
// {{e1}, {e2,e3}, {e4}}.
func Fig1Case1() *Topology {
	return New(fig1Links(), fig1Paths(), [][]int{{0}, {1, 2}, {3}})
}

// Fig1Case2 returns the toy topology with correlation sets
// {{e1,e4}, {e2,e3}}, for which Identifiability++ fails: the subsets
// {e1,e4} and {e2,e3} are traversed by the same paths {p1,p2,p3}.
func Fig1Case2() *Topology {
	return New(fig1Links(), fig1Paths(), [][]int{{0, 3}, {1, 2}})
}
