package topology

import "repro/internal/bitset"

// Partition groups the correlation sets of a topology into shards: the
// connected components of the bipartite incidence between correlation
// sets and paths. Two correlation sets land in the same shard exactly
// when some path traverses links of both, so a path's equation (Eq. 1
// factored per correlation set) only ever references subsets of its own
// shard, and the Correlation-complete linear system is block-diagonal
// across shards. That makes the shard the unit of independent solving:
// the streaming service runs one solver per shard, and a congestion
// burst confined to one shard never forces the others to re-derive
// their structure.
//
// Links whose correlation sets are traversed by no path at all form no
// shard: there is nothing to solve for them (every estimator reports
// the zero fallback), and keeping them out lets NumShards() == 1 mean
// "the whole solvable system is one block".
type Partition struct {
	top *Topology

	numShards int
	pathShard []int // path ID -> shard, always valid (paths are never orphaned)
	linkShard []int // link ID -> shard, -1 for links of path-less components
	corrShard []int // correlation set -> shard, -1 for path-less components

	shardCorrSets [][]int       // shard -> its correlation set indices, ascending
	shardPaths    []*bitset.Set // shard -> its path IDs
	shardLinks    []*bitset.Set // shard -> its link IDs (all links of its correlation sets)
}

// NewPartition computes the correlation-set partition of top.
func NewPartition(top *Topology) *Partition {
	nc := len(top.CorrSets)
	// Union-find over correlation sets: each path joins the correlation
	// sets of the links it traverses.
	parent := make([]int, nc)
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	union := func(a, b int) {
		ra, rb := find(a), find(b)
		if ra != rb {
			if rb < ra { // smallest root wins: shard numbering stays stable
				ra, rb = rb, ra
			}
			parent[rb] = ra
		}
	}
	for p := 0; p < top.NumPaths(); p++ {
		first := -1
		top.PathLinks(p).ForEach(func(li int) bool {
			c := top.CorrSetOf(li)
			if first == -1 {
				first = c
			} else {
				union(first, c)
			}
			return true
		})
	}
	// Components with at least one path become shards, numbered in
	// ascending order of their smallest correlation set so the numbering
	// is deterministic and independent of union order.
	hasPath := make([]bool, nc)
	for p := 0; p < top.NumPaths(); p++ {
		top.PathLinks(p).ForEach(func(li int) bool {
			hasPath[find(top.CorrSetOf(li))] = true
			return false // one link suffices: the whole path is one component
		})
	}
	part := &Partition{
		top:       top,
		pathShard: make([]int, top.NumPaths()),
		linkShard: make([]int, top.NumLinks()),
		corrShard: make([]int, nc),
	}
	rootShard := make([]int, nc)
	for i := range rootShard {
		rootShard[i] = -1
	}
	for c := 0; c < nc; c++ {
		r := find(c)
		if !hasPath[r] {
			part.corrShard[c] = -1
			continue
		}
		if rootShard[r] == -1 {
			rootShard[r] = part.numShards
			part.numShards++
			part.shardCorrSets = append(part.shardCorrSets, nil)
			part.shardPaths = append(part.shardPaths, bitset.New(top.NumPaths()))
			part.shardLinks = append(part.shardLinks, bitset.New(top.NumLinks()))
		}
		s := rootShard[r]
		part.corrShard[c] = s
		part.shardCorrSets[s] = append(part.shardCorrSets[s], c)
		for _, li := range top.CorrSets[c] {
			part.shardLinks[s].Add(li)
		}
	}
	for li := range part.linkShard {
		part.linkShard[li] = part.corrShard[top.CorrSetOf(li)]
	}
	for p := 0; p < top.NumPaths(); p++ {
		s := 0
		top.PathLinks(p).ForEach(func(li int) bool {
			s = part.linkShard[li] // all of p's links share one shard
			return false
		})
		part.pathShard[p] = s
		part.shardPaths[s].Add(p)
	}
	return part
}

// Topology returns the topology the partition was computed over.
func (pt *Partition) Topology() *Topology { return pt.top }

// NumShards returns the number of shards: the path-covered correlation
// components. A fully connected topology has exactly one.
func (pt *Partition) NumShards() int { return pt.numShards }

// PathShard returns the shard of path p.
func (pt *Partition) PathShard(p int) int { return pt.pathShard[p] }

// PathShards returns the full path→shard mapping; the slice must not be
// modified. It is what stream.NewSharded routes ingest with.
func (pt *Partition) PathShards() []int { return pt.pathShard }

// LinkShard returns the shard of link e, or -1 when e's correlation
// component is traversed by no path (nothing to solve).
func (pt *Partition) LinkShard(e int) int { return pt.linkShard[e] }

// ShardCorrSets returns the correlation set indices of shard s in
// ascending order; the slice must not be modified.
func (pt *Partition) ShardCorrSets(s int) []int { return pt.shardCorrSets[s] }

// ShardPaths returns the path set of shard s; it must not be modified.
func (pt *Partition) ShardPaths(s int) *bitset.Set { return pt.shardPaths[s] }

// ShardLinks returns the link set of shard s (every link of its
// correlation sets, covered or not); it must not be modified.
func (pt *Partition) ShardLinks(s int) *bitset.Set { return pt.shardLinks[s] }
