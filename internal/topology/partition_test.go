package topology

import (
	"math/rand"
	"testing"

	"repro/internal/bitset"
)

// chainTopology builds numChains disjoint two-link chains, each with
// one path per link and one path over both links, plus orphanSets
// correlation sets whose links no path traverses.
func chainTopology(t *testing.T, numChains, orphanSets int) *Topology {
	t.Helper()
	var links []Link
	var paths []Path
	var corrSets [][]int
	for c := 0; c < numChains; c++ {
		a, b := len(links), len(links)+1
		links = append(links,
			Link{ID: a, AS: 2 * c},
			Link{ID: b, AS: 2*c + 1},
		)
		paths = append(paths,
			Path{ID: len(paths), Links: []int{a}},
			Path{ID: len(paths) + 1, Links: []int{b}},
			Path{ID: len(paths) + 2, Links: []int{a, b}},
		)
		// Two correlation sets per chain, joined by the two-link path.
		corrSets = append(corrSets, []int{a}, []int{b})
	}
	for o := 0; o < orphanSets; o++ {
		e := len(links)
		links = append(links, Link{ID: e, AS: -1})
		corrSets = append(corrSets, []int{e})
	}
	top, err := NewChecked(links, paths, corrSets)
	if err != nil {
		t.Fatal(err)
	}
	return top
}

func TestPartitionChains(t *testing.T) {
	const chains, orphans = 4, 2
	top := chainTopology(t, chains, orphans)
	part := NewPartition(top)
	if part.NumShards() != chains {
		t.Fatalf("NumShards = %d, want %d (orphan sets must not become shards)", part.NumShards(), chains)
	}
	for c := 0; c < chains; c++ {
		wantPaths := bitset.FromIndices(top.NumPaths(), 3*c, 3*c+1, 3*c+2)
		wantLinks := bitset.FromIndices(top.NumLinks(), 2*c, 2*c+1)
		if !part.ShardPaths(c).Equal(wantPaths) {
			t.Fatalf("shard %d paths = %s, want %s", c, part.ShardPaths(c), wantPaths)
		}
		if !part.ShardLinks(c).Equal(wantLinks) {
			t.Fatalf("shard %d links = %s, want %s", c, part.ShardLinks(c), wantLinks)
		}
		if got := part.ShardCorrSets(c); len(got) != 2 || got[0] != 2*c || got[1] != 2*c+1 {
			t.Fatalf("shard %d corr sets = %v", c, got)
		}
		for _, p := range wantPaths.Indices() {
			if part.PathShard(p) != c {
				t.Fatalf("path %d in shard %d, want %d", p, part.PathShard(p), c)
			}
		}
	}
	// Orphan links map to no shard.
	for e := 2 * chains; e < top.NumLinks(); e++ {
		if part.LinkShard(e) != -1 {
			t.Fatalf("orphan link %d assigned to shard %d", e, part.LinkShard(e))
		}
	}
	if len(part.PathShards()) != top.NumPaths() {
		t.Fatalf("PathShards length %d", len(part.PathShards()))
	}
}

// Partition invariants on arbitrary topologies: shards partition the
// paths, every link of a path lands in the path's shard, and
// correlation sets never straddle shards.
func TestPartitionInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 30; trial++ {
		numAS := 3 + rng.Intn(8)
		linksPerAS := 1 + rng.Intn(3)
		var links []Link
		for a := 0; a < numAS; a++ {
			for l := 0; l < linksPerAS; l++ {
				links = append(links, Link{ID: len(links), AS: a})
			}
		}
		var paths []Path
		numPaths := 1 + rng.Intn(12)
		for p := 0; p < numPaths; p++ {
			n := 1 + rng.Intn(3)
			seen := map[int]bool{}
			var pl []int
			for len(pl) < n {
				li := rng.Intn(len(links))
				if !seen[li] {
					seen[li] = true
					pl = append(pl, li)
				}
			}
			paths = append(paths, Path{ID: p, Links: pl})
		}
		top, err := NewChecked(links, paths, CorrelationSetsByAS(links))
		if err != nil {
			t.Fatal(err)
		}
		part := NewPartition(top)
		seenPaths := bitset.New(top.NumPaths())
		for s := 0; s < part.NumShards(); s++ {
			part.ShardPaths(s).ForEach(func(p int) bool {
				if seenPaths.Contains(p) {
					t.Fatalf("trial %d: path %d in two shards", trial, p)
				}
				seenPaths.Add(p)
				if part.PathShard(p) != s {
					t.Fatalf("trial %d: PathShard(%d) = %d, want %d", trial, p, part.PathShard(p), s)
				}
				return true
			})
			for _, c := range part.ShardCorrSets(s) {
				for _, li := range top.CorrSetLinks(c) {
					if part.LinkShard(li) != s {
						t.Fatalf("trial %d: corr set %d straddles shards", trial, c)
					}
				}
			}
		}
		if seenPaths.Count() != top.NumPaths() {
			t.Fatalf("trial %d: %d of %d paths assigned", trial, seenPaths.Count(), top.NumPaths())
		}
		for p := 0; p < top.NumPaths(); p++ {
			s := part.PathShard(p)
			top.PathLinks(p).ForEach(func(li int) bool {
				if part.LinkShard(li) != s {
					t.Fatalf("trial %d: path %d (shard %d) traverses link %d (shard %d)",
						trial, p, s, li, part.LinkShard(li))
				}
				return true
			})
		}
	}
}
