package topology

import (
	"bytes"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"repro/internal/bitset"
)

// Coverage table from §5.2/§5.3 of the paper for the Fig. 1 topology.
func TestFig1CoverageFunctions(t *testing.T) {
	top := Fig1Case1()
	cases := []struct {
		links []int
		paths []int
	}{
		{[]int{0}, []int{0, 1}},       // Paths({e1}) = {p1, p2}
		{[]int{1}, []int{0}},          // Paths({e2}) = {p1}
		{[]int{2}, []int{1, 2}},       // Paths({e3}) = {p2, p3}
		{[]int{3}, []int{2}},          // Paths({e4}) = {p3}
		{[]int{0, 1}, []int{0, 1}},    // Paths({e1,e2}) = {p1, p2}
		{[]int{0, 2}, []int{0, 1, 2}}, // Paths({e1,e3}) = {p1, p2, p3}
		{[]int{1, 2}, []int{0, 1, 2}}, // Paths({e2,e3}) = {p1, p2, p3}
	}
	for _, c := range cases {
		got := top.PathsOfSlice(c.links).Indices()
		if !reflect.DeepEqual(got, c.paths) {
			t.Errorf("Paths(%v) = %v, want %v", c.links, got, c.paths)
		}
	}
	// Links({p1}) = {e1, e2}; Links({p1, p2}) = {e1, e2, e3}.
	if got := top.LinksOf(bitset.FromIndices(3, 0)).Indices(); !reflect.DeepEqual(got, []int{0, 1}) {
		t.Errorf("Links({p1}) = %v", got)
	}
	if got := top.LinksOf(bitset.FromIndices(3, 0, 1)).Indices(); !reflect.DeepEqual(got, []int{0, 1, 2}) {
		t.Errorf("Links({p1,p2}) = %v", got)
	}
}

// Complements from §5.2: in Case 1, {e1}‾ = ∅, {e2}‾ = {e3},
// {e3}‾ = {e2}, {e4}‾ = ∅, {e2,e3}‾ = ∅.
func TestFig1Complements(t *testing.T) {
	top := Fig1Case1()
	cases := []struct {
		subset []int
		want   []int
	}{
		{[]int{0}, nil},
		{[]int{1}, []int{2}},
		{[]int{2}, []int{1}},
		{[]int{3}, nil},
		{[]int{1, 2}, nil},
	}
	for _, c := range cases {
		got := top.Complement(bitset.FromIndices(4, c.subset...)).Indices()
		if len(got) == 0 && len(c.want) == 0 {
			continue
		}
		if !reflect.DeepEqual(got, c.want) {
			t.Errorf("Complement(%v) = %v, want %v", c.subset, got, c.want)
		}
	}
}

func TestComplementAcrossSetsPanics(t *testing.T) {
	top := Fig1Case1()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for cross-set subset")
		}
	}()
	top.Complement(bitset.FromIndices(4, 0, 1)) // e1 and e2 are in different sets
}

func TestEnumerateSubsets(t *testing.T) {
	top := Fig1Case1()
	// Case 1 subsets: {e1}, {e2}, {e3}, {e2,e3}, {e4} (§5.2).
	subs := top.EnumerateSubsets(0)
	if len(subs) != 5 {
		t.Fatalf("got %d subsets, want 5", len(subs))
	}
	var keys []string
	for _, s := range subs {
		keys = append(keys, s.Links.String())
	}
	want := []string{"{0}", "{1}", "{2}", "{1, 2}", "{3}"}
	if !reflect.DeepEqual(keys, want) {
		t.Fatalf("subsets = %v, want %v", keys, want)
	}

	// Case 2 adds {e1,e4}: 6 subsets total (§5.2).
	if n := len(Fig1Case2().EnumerateSubsets(0)); n != 6 {
		t.Fatalf("case 2: got %d subsets, want 6", n)
	}

	// Size bound.
	if n := len(top.EnumerateSubsets(1)); n != 4 {
		t.Fatalf("maxSize=1: got %d subsets, want 4", n)
	}
}

func TestIdentifiabilityCondition1(t *testing.T) {
	// Fig 1: all four links have distinct path coverage.
	if v := Fig1Case1().CheckIdentifiability(0); len(v) != 0 {
		t.Fatalf("unexpected condition-1 violations: %v", v)
	}
	// Two parallel links on the same single path violate it.
	links := []Link{{ID: 0, AS: 0}, {ID: 1, AS: 0}}
	paths := []Path{{ID: 0, Links: []int{0, 1}}}
	top := New(links, paths, nil)
	if v := top.CheckIdentifiability(0); len(v) != 1 {
		t.Fatalf("violations = %v, want exactly 1", v)
	}
}

func TestIdentifiabilityPlusPlus(t *testing.T) {
	// Case 1 satisfies Identifiability++ (§2).
	if v := Fig1Case1().CheckIdentifiabilityPlusPlus(0, 0); len(v) != 0 {
		t.Fatalf("case 1 should satisfy Identifiability++, got %v", v)
	}
	// Case 2 fails: {e1,e4} and {e2,e3} are both traversed by
	// {p1,p2,p3} (§2).
	v := Fig1Case2().CheckIdentifiabilityPlusPlus(0, 0)
	if len(v) != 1 {
		t.Fatalf("case 2 violations = %d, want 1", len(v))
	}
	a, b := v[0].A.Links.String(), v[0].B.Links.String()
	if !(a == "{0, 3}" && b == "{1, 2}" || a == "{1, 2}" && b == "{0, 3}") {
		t.Fatalf("violation pair = %s, %s", a, b)
	}
}

func TestBuildRejectsBadInput(t *testing.T) {
	badCases := []struct {
		name  string
		links []Link
		paths []Path
		sets  [][]int
	}{
		{"unknown link", []Link{{ID: 0}}, []Path{{ID: 0, Links: []int{5}}}, nil},
		{"loop", []Link{{ID: 0}}, []Path{{ID: 0, Links: []int{0, 0}}}, nil},
		{"empty path", []Link{{ID: 0}}, []Path{{ID: 0}}, nil},
		{"bad link ID", []Link{{ID: 7}}, nil, nil},
		{"bad path ID", []Link{{ID: 0}}, []Path{{ID: 3, Links: []int{0}}}, nil},
		{"empty corr set", []Link{{ID: 0}}, []Path{{ID: 0, Links: []int{0}}}, [][]int{{0}, {}}},
		{"dup corr membership", []Link{{ID: 0}}, []Path{{ID: 0, Links: []int{0}}}, [][]int{{0}, {0}}},
		{"uncovered link", []Link{{ID: 0}, {ID: 1}}, []Path{{ID: 0, Links: []int{0, 1}}}, [][]int{{0}}},
	}
	for _, c := range badCases {
		top := &Topology{Links: c.links, Paths: c.paths, CorrSets: c.sets}
		if err := top.Build(); err == nil {
			t.Errorf("%s: Build accepted invalid topology", c.name)
		}
	}
}

func TestDefaultCorrelationSetsAreSingletons(t *testing.T) {
	links := []Link{{ID: 0}, {ID: 1}}
	paths := []Path{{ID: 0, Links: []int{0, 1}}}
	top := New(links, paths, nil)
	if len(top.CorrSets) != 2 {
		t.Fatalf("CorrSets = %v", top.CorrSets)
	}
	if top.CorrSetOf(1) != 1 {
		t.Fatalf("CorrSetOf(1) = %d", top.CorrSetOf(1))
	}
}

func TestCorrelationSetsByAS(t *testing.T) {
	links := []Link{
		{ID: 0, AS: 10}, {ID: 1, AS: 20}, {ID: 2, AS: 10}, {ID: 3, AS: -1},
	}
	sets := CorrelationSetsByAS(links)
	want := [][]int{{0, 2}, {1}, {3}}
	if !reflect.DeepEqual(sets, want) {
		t.Fatalf("sets = %v, want %v", sets, want)
	}
}

func TestJSONRoundTrip(t *testing.T) {
	top := Fig1Case1()
	var buf bytes.Buffer
	if err := top.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumLinks() != 4 || got.NumPaths() != 3 {
		t.Fatalf("round trip lost structure: %d links, %d paths", got.NumLinks(), got.NumPaths())
	}
	if !reflect.DeepEqual(got.CorrSets, top.CorrSets) {
		t.Fatalf("corr sets = %v", got.CorrSets)
	}
	if got.PathsOfSlice([]int{0}).String() != "{0, 1}" {
		t.Fatal("indices not rebuilt")
	}
}

func TestJSONRejectsGarbage(t *testing.T) {
	if _, err := ReadJSON(bytes.NewBufferString("{nope")); err == nil {
		t.Fatal("expected decode error")
	}
	if _, err := ReadJSON(bytes.NewBufferString(`{"links":[{"ID":0}],"paths":[{"ID":0,"Links":[9]}]}`)); err == nil {
		t.Fatal("expected validation error")
	}
}

func TestMeanPathsPerLink(t *testing.T) {
	top := Fig1Case1()
	// Coverages: e1:2, e2:1, e3:2, e4:1 -> mean 1.5.
	if got := top.MeanPathsPerLink(); got != 1.5 {
		t.Fatalf("MeanPathsPerLink = %v, want 1.5", got)
	}
}

// randomTopology builds a valid random topology for property tests.
func randomTopology(rng *rand.Rand) *Topology {
	n := 2 + rng.Intn(15)
	m := 1 + rng.Intn(10)
	links := make([]Link, n)
	for i := range links {
		links[i] = Link{ID: i, AS: rng.Intn(4)}
	}
	paths := make([]Path, m)
	for p := range paths {
		// Random subset of links, at least one, no repeats.
		perm := rng.Perm(n)
		k := 1 + rng.Intn(min(n, 5))
		paths[p] = Path{ID: p, Links: append([]int(nil), perm[:k]...)}
	}
	return New(links, paths, CorrelationSetsByAS(links))
}

// Galois connection of the coverage functions: P ⊆ Paths(E) whenever
// every path in P traverses a link of E, and E ⊆ Links(Paths(E))
// whenever every link of E is covered by some path.
func TestQuickCoverageGaloisProperties(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		top := randomTopology(rng)
		// Random link subset E.
		e := bitset.New(top.NumLinks())
		for i := 0; i < top.NumLinks(); i++ {
			if rng.Intn(2) == 1 {
				e.Add(i)
			}
		}
		cover := top.PathsOf(e)
		// 1. Every path in Paths(E) must traverse some link of E.
		ok := true
		cover.ForEach(func(pi int) bool {
			if !top.PathLinks(pi).Intersects(e) {
				ok = false
				return false
			}
			return true
		})
		if !ok {
			return false
		}
		// 2. Covered links of E are within Links(Paths(E)).
		linksBack := top.LinksOf(cover)
		coveredE := bitset.New(top.NumLinks())
		e.ForEach(func(li int) bool {
			if !top.LinkPaths(li).IsEmpty() {
				coveredE.Add(li)
			}
			return true
		})
		return coveredE.SubsetOf(linksBack)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

// Monotonicity: E1 ⊆ E2 ⇒ Paths(E1) ⊆ Paths(E2).
func TestQuickCoverageMonotone(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		top := randomTopology(rng)
		e2 := bitset.New(top.NumLinks())
		for i := 0; i < top.NumLinks(); i++ {
			if rng.Intn(2) == 1 {
				e2.Add(i)
			}
		}
		e1 := bitset.New(top.NumLinks())
		e2.ForEach(func(li int) bool {
			if rng.Intn(2) == 1 {
				e1.Add(li)
			}
			return true
		})
		return top.PathsOf(e1).SubsetOf(top.PathsOf(e2))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}
