package topology

import (
	"encoding/json"
	"fmt"
	"io"
)

// wireTopology is the JSON representation written by cmd/topogen and
// consumed by cmd/tomo, so that generated topologies can be stored and
// experiments replayed.
type wireTopology struct {
	Links    []Link  `json:"links"`
	Paths    []Path  `json:"paths"`
	CorrSets [][]int `json:"correlation_sets,omitempty"`
}

// WriteJSON serializes the topology.
func (t *Topology) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(wireTopology{Links: t.Links, Paths: t.Paths, CorrSets: t.CorrSets})
}

// ReadJSON deserializes a topology and rebuilds its indices.
func ReadJSON(r io.Reader) (*Topology, error) {
	var wt wireTopology
	if err := json.NewDecoder(r).Decode(&wt); err != nil {
		return nil, fmt.Errorf("topology: decoding JSON: %w", err)
	}
	t := &Topology{Links: wt.Links, Paths: wt.Paths, CorrSets: wt.CorrSets}
	if err := t.Build(); err != nil {
		return nil, err
	}
	return t, nil
}

// CorrelationSetsByAS groups link IDs into one correlation set per AS
// number, the paper's default policy (§2). Links with AS = -1 each get
// their own singleton set.
func CorrelationSetsByAS(links []Link) [][]int {
	byAS := make(map[int][]int)
	var singletons [][]int
	var order []int
	for _, l := range links {
		if l.AS < 0 {
			singletons = append(singletons, []int{l.ID})
			continue
		}
		if _, ok := byAS[l.AS]; !ok {
			order = append(order, l.AS)
		}
		byAS[l.AS] = append(byAS[l.AS], l.ID)
	}
	out := make([][]int, 0, len(order)+len(singletons))
	for _, as := range order {
		out = append(out, byAS[as])
	}
	return append(out, singletons...)
}
