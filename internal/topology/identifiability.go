package topology

import (
	"repro/internal/bitset"
)

// Subset is a correlation subset: a non-empty subset of one correlation
// set, together with its coverage Paths(E).
type Subset struct {
	Links *bitset.Set // link IDs, all within one correlation set
	Set   int         // index of the correlation set
	Cover *bitset.Set // Paths(E)
}

// EnumerateSubsets lists all correlation subsets of size ≤ maxSize,
// in deterministic order (by correlation set, then by subset size, then
// lexicographically). maxSize ≤ 0 means no size bound. Correlation sets
// larger than 63 links are enumerated only up to maxSize (which must
// then be positive) to keep the enumeration tractable.
func (t *Topology) EnumerateSubsets(maxSize int) []Subset {
	var out []Subset
	for ci, set := range t.CorrSets {
		limit := maxSize
		if limit <= 0 || limit > len(set) {
			limit = len(set)
		}
		// Enumerate by size so small subsets (the cheap, most useful
		// probabilities, §4) come first.
		for size := 1; size <= limit; size++ {
			combos(len(set), size, func(idx []int) {
				links := bitset.New(t.NumLinks())
				for _, k := range idx {
					links.Add(set[k])
				}
				out = append(out, Subset{
					Links: links,
					Set:   ci,
					Cover: t.PathsOf(links),
				})
			})
		}
	}
	return out
}

// combos invokes fn with each k-combination of {0..n-1} in
// lexicographic order. The slice passed to fn is reused across calls.
func combos(n, k int, fn func(idx []int)) {
	if k > n || k <= 0 {
		return
	}
	idx := make([]int, k)
	for i := range idx {
		idx[i] = i
	}
	for {
		fn(idx)
		// Advance to the next combination.
		i := k - 1
		for i >= 0 && idx[i] == n-k+i {
			i--
		}
		if i < 0 {
			return
		}
		idx[i]++
		for j := i + 1; j < k; j++ {
			idx[j] = idx[j-1] + 1
		}
	}
}

// Violation records two distinct correlation subsets traversed by the
// same set of paths — a violation of Identifiability++ (Condition 2).
type Violation struct {
	A, B Subset
}

// CheckIdentifiability tests Condition 1: no two links are traversed by
// exactly the same paths. It returns the violating link ID pairs
// (possibly truncated to maxReport pairs; maxReport ≤ 0 means all).
func (t *Topology) CheckIdentifiability(maxReport int) [][2]int {
	byCover := make(map[string]int, t.NumLinks())
	var out [][2]int
	for li := range t.Links {
		key := t.linkPaths[li].Key()
		if prev, ok := byCover[key]; ok {
			out = append(out, [2]int{prev, li})
			if maxReport > 0 && len(out) >= maxReport {
				return out
			}
			continue
		}
		byCover[key] = li
	}
	return out
}

// CheckIdentifiabilityPlusPlus tests Condition 2 over all correlation
// subsets of size ≤ maxSize: any two correlation subsets must not be
// traversed by the same paths. Subsets covered by no path at all are
// excluded (they are trivially unidentifiable but also irrelevant: no
// equation can mention them). Violations are truncated to maxReport
// (≤ 0 means all).
func (t *Topology) CheckIdentifiabilityPlusPlus(maxSize, maxReport int) []Violation {
	subsets := t.EnumerateSubsets(maxSize)
	byCover := make(map[string]int, len(subsets))
	var out []Violation
	for i, s := range subsets {
		if s.Cover.IsEmpty() {
			continue
		}
		key := s.Cover.Key()
		if prev, ok := byCover[key]; ok {
			out = append(out, Violation{A: subsets[prev], B: s})
			if maxReport > 0 && len(out) >= maxReport {
				return out
			}
			continue
		}
		byCover[key] = i
	}
	return out
}
