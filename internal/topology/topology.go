// Package topology implements the network model of the paper: a set of
// directed logical links E*, a set of end-to-end paths P*, the coverage
// functions Paths(E) and Links(P), and correlation sets (Assumption 5).
//
// Two graph granularities coexist, mirroring §3.2 of the paper:
//
//   - the AS-level graph is what the tomography algorithms see: each
//     Link is an inter-domain link or an intra-domain path between
//     border routers, and each Path is an end-to-end AS-level path;
//   - the router-level graph is hidden from the algorithms but drives
//     the simulator's link correlations: every AS-level Link records the
//     underlying router-level link IDs it traverses, and AS-level links
//     that share a router-level link congest together.
//
// Correlation sets default to one per AS ("since we do not know which
// links of each AS are correlated, we assume that all links that belong
// to the same AS may be correlated", §2).
package topology

import (
	"fmt"

	"repro/internal/bitset"
)

// Link is a logical (AS-level) link.
type Link struct {
	ID   int    // index into Topology.Links
	Name string // human-readable label, e.g. "AS7018:3->AS1299:0"
	AS   int    // autonomous system owning the link; -1 if unknown

	// RouterLinks lists the router-level link IDs this logical link is
	// built from. Logical links sharing a router-level link are
	// correlated: if the shared router-level link congests, all of them
	// congest in the same interval (§3.2, "Topologies").
	RouterLinks []int
}

// Path is a loop-free end-to-end path: an ordered sequence of link IDs.
type Path struct {
	ID    int
	Name  string
	Links []int
}

// Topology bundles links, paths, and correlation sets, plus the derived
// coverage indices used heavily by every algorithm.
type Topology struct {
	Links []Link
	Paths []Path

	// CorrSets partitions link IDs into correlation sets (Assumption 5).
	// Links within a set may be correlated; links across sets are
	// independent. If empty, each link is its own correlation set.
	CorrSets [][]int

	linkPaths []*bitset.Set // link ID -> set of path IDs traversing it
	pathLinks []*bitset.Set // path ID -> set of link IDs it traverses
	linkSet   []int         // link ID -> index of its correlation set
	built     bool
}

// New assembles a topology and builds its indices. It panics on
// structurally invalid input; use NewChecked for an error-returning
// build.
func New(links []Link, paths []Path, corrSets [][]int) *Topology {
	t, err := NewChecked(links, paths, corrSets)
	if err != nil {
		panic(err)
	}
	return t
}

// NewChecked assembles a topology and builds its indices, reporting
// structurally invalid input as an error instead of panicking.
func NewChecked(links []Link, paths []Path, corrSets [][]int) (*Topology, error) {
	t := &Topology{Links: links, Paths: paths, CorrSets: corrSets}
	if err := t.Build(); err != nil {
		return nil, err
	}
	return t, nil
}

// Build (re)derives the coverage indices and validates the structure.
func (t *Topology) Build() error {
	n, m := len(t.Links), len(t.Paths)
	for i := range t.Links {
		if t.Links[i].ID != i {
			return fmt.Errorf("topology: link %d has ID %d; IDs must be dense indices", i, t.Links[i].ID)
		}
	}
	for i := range t.Paths {
		if t.Paths[i].ID != i {
			return fmt.Errorf("topology: path %d has ID %d; IDs must be dense indices", i, t.Paths[i].ID)
		}
	}
	t.linkPaths = make([]*bitset.Set, n)
	for i := range t.linkPaths {
		t.linkPaths[i] = bitset.New(m)
	}
	t.pathLinks = make([]*bitset.Set, m)
	for pi, p := range t.Paths {
		pl := bitset.New(n)
		for _, li := range p.Links {
			if li < 0 || li >= n {
				return fmt.Errorf("topology: path %d references unknown link %d", pi, li)
			}
			if pl.Contains(li) {
				return fmt.Errorf("topology: path %d traverses link %d twice (loops are not allowed)", pi, li)
			}
			pl.Add(li)
			t.linkPaths[li].Add(pi)
		}
		if len(p.Links) == 0 {
			return fmt.Errorf("topology: path %d is empty", pi)
		}
		t.pathLinks[pi] = pl
	}
	if len(t.CorrSets) == 0 {
		t.CorrSets = make([][]int, n)
		for i := 0; i < n; i++ {
			t.CorrSets[i] = []int{i}
		}
	}
	t.linkSet = make([]int, n)
	for i := range t.linkSet {
		t.linkSet[i] = -1
	}
	for ci, set := range t.CorrSets {
		if len(set) == 0 {
			return fmt.Errorf("topology: correlation set %d is empty", ci)
		}
		for _, li := range set {
			if li < 0 || li >= n {
				return fmt.Errorf("topology: correlation set %d references unknown link %d", ci, li)
			}
			if t.linkSet[li] != -1 {
				return fmt.Errorf("topology: link %d appears in correlation sets %d and %d", li, t.linkSet[li], ci)
			}
			t.linkSet[li] = ci
		}
	}
	for li, ci := range t.linkSet {
		if ci == -1 {
			return fmt.Errorf("topology: link %d belongs to no correlation set", li)
		}
	}
	t.built = true
	return nil
}

// NumLinks returns |E*|.
func (t *Topology) NumLinks() int { return len(t.Links) }

// NumPaths returns |P*|.
func (t *Topology) NumPaths() int { return len(t.Paths) }

// PathLinks returns the set of link IDs traversed by path p
// (Links({p})). The returned set must not be modified.
func (t *Topology) PathLinks(p int) *bitset.Set { return t.pathLinks[p] }

// LinkPaths returns the set of path IDs traversing link e
// (Paths({e})). The returned set must not be modified.
func (t *Topology) LinkPaths(e int) *bitset.Set { return t.linkPaths[e] }

// PathsOf implements the path coverage function Paths(E): the set of
// paths that traverse at least one link in E.
func (t *Topology) PathsOf(links *bitset.Set) *bitset.Set {
	out := bitset.New(len(t.Paths))
	links.ForEach(func(li int) bool {
		out.UnionWith(t.linkPaths[li])
		return true
	})
	return out
}

// PathsOfSlice is PathsOf for a slice of link IDs.
func (t *Topology) PathsOfSlice(links []int) *bitset.Set {
	out := bitset.New(len(t.Paths))
	for _, li := range links {
		out.UnionWith(t.linkPaths[li])
	}
	return out
}

// LinksOf implements the link coverage function Links(P): the set of
// links traversed by at least one path in P.
func (t *Topology) LinksOf(paths *bitset.Set) *bitset.Set {
	out := bitset.New(len(t.Links))
	paths.ForEach(func(pi int) bool {
		out.UnionWith(t.pathLinks[pi])
		return true
	})
	return out
}

// PotentiallyCongestedLinks returns the complement of goodLinks (the
// links traversed by an always-good path, from LinksOf): §5.2's
// potentially congested set, the shared evaluation universe of every
// estimator.
func (t *Topology) PotentiallyCongestedLinks(goodLinks *bitset.Set) *bitset.Set {
	out := bitset.New(len(t.Links))
	for e := 0; e < len(t.Links); e++ {
		if !goodLinks.Contains(e) {
			out.Add(e)
		}
	}
	return out
}

// CorrSetOf returns the index (into CorrSets) of the correlation set
// that link e belongs to.
func (t *Topology) CorrSetOf(e int) int { return t.linkSet[e] }

// CorrSetLinks returns the link IDs of correlation set c.
func (t *Topology) CorrSetLinks(c int) []int { return t.CorrSets[c] }

// Complement returns the complement Ē = C \ E of a correlation subset E
// inside its correlation set C. All links in E must belong to the same
// correlation set; otherwise Complement panics.
func (t *Topology) Complement(subset *bitset.Set) *bitset.Set {
	cs := -1
	subset.ForEach(func(li int) bool {
		if cs == -1 {
			cs = t.linkSet[li]
		} else if t.linkSet[li] != cs {
			panic("topology: Complement of a set spanning multiple correlation sets")
		}
		return true
	})
	out := bitset.New(len(t.Links))
	if cs == -1 {
		return out // complement of the empty subset is empty by convention
	}
	for _, li := range t.CorrSets[cs] {
		if !subset.Contains(li) {
			out.Add(li)
		}
	}
	return out
}

// PathLen returns d, the number of links traversed by path p; used for
// the path congestion threshold 1-(1-f)^d.
func (t *Topology) PathLen(p int) int { return len(t.Paths[p].Links) }

// MeanPathsPerLink reports the density measure used in the paper's
// discussion of sparse vs dense topologies: the average number of paths
// that traverse a link, over links traversed by at least one path.
func (t *Topology) MeanPathsPerLink() float64 {
	total, covered := 0, 0
	for _, lp := range t.linkPaths {
		if c := lp.Count(); c > 0 {
			total += c
			covered++
		}
	}
	if covered == 0 {
		return 0
	}
	return float64(total) / float64(covered)
}
