// Package traceroute synthesizes the paper's "Sparse topologies"
// (§3.2): the AS-level view a source ISP obtains by tracerouting from a
// few vantage points inside its own network toward many Internet
// end-hosts, and discarding every incomplete traceroute.
//
// The paper's Sparse topologies are proprietary operator data; this
// package is the substitution documented in DESIGN.md §5. It reproduces
// the structural property the paper blames for inference failure: few
// paths intersect one another, so the routing matrix has low rank
// relative to the number of unknowns. Sparsity arises here for the same
// reasons as in the real campaign: all measurements share a handful of
// vantage points, the probed Internet is much larger than the kept
// trace set, and unresponsive routers plus load-balancing noise force
// many traces to be discarded.
package traceroute

import (
	"fmt"
	"math/rand"

	"repro/internal/brite"
	"repro/internal/topology"
)

// Config parameterizes the traceroute campaign.
type Config struct {
	Internet brite.Config // ground-truth Internet to probe

	Vantages    int     // vantage routers inside the source AS
	TargetPaths int     // stop once this many complete traces are kept
	MaxProbes   int     // campaign budget: maximum traceroutes issued
	ResponseP   float64 // per-hop probability that a router answers probes
	MaxTTL      int     // traces longer than this are incomplete
	LoadBalance bool    // sample among equal-cost paths per traceroute
}

// DefaultConfig returns a campaign sized to yield a Sparse overlay of
// roughly the paper's proportions (≈2000 links seen by ≈1500 paths,
// i.e. more unknowns than observations, unlike the Brite overlays).
func DefaultConfig() Config {
	inet := brite.DefaultConfig()
	inet.NumAS = 300
	inet.RoutersPerAS = 7
	return Config{
		Internet:    inet,
		Vantages:    4,
		TargetPaths: 1500,
		MaxProbes:   60000,
		ResponseP:   0.92,
		MaxTTL:      30,
		LoadBalance: true,
	}
}

// Campaign is the outcome of a synthetic traceroute measurement run.
type Campaign struct {
	Topology *topology.Topology
	Internet *brite.Internet
	Issued   int // traceroutes sent
	Kept     int // complete traces kept
	SourceAS int
}

// Run generates the ground-truth Internet, executes the campaign, and
// builds the Sparse AS-level overlay from the kept traces.
func Run(cfg Config, rng *rand.Rand) (*Campaign, error) {
	if cfg.Vantages < 1 || cfg.TargetPaths < 1 || cfg.ResponseP <= 0 || cfg.ResponseP > 1 {
		return nil, fmt.Errorf("traceroute: invalid config %+v", cfg)
	}
	in, err := brite.Generate(cfg.Internet, rng)
	if err != nil {
		return nil, err
	}
	return RunOn(cfg, in, rng)
}

// RunOn executes the campaign over an existing Internet.
func RunOn(cfg Config, in *brite.Internet, rng *rand.Rand) (*Campaign, error) {
	// The source ISP is the highest-degree AS in the peering graph — a
	// Tier-1, like the paper's source ISP.
	sourceAS := 0
	for as := 1; as < in.NumAS; as++ {
		if in.ASGraph.Degree(as) > in.ASGraph.Degree(sourceAS) {
			sourceAS = as
		}
	}
	var vantages []int
	for r, as := range in.RouterAS {
		if as == sourceAS {
			vantages = append(vantages, r)
		}
	}
	rng.Shuffle(len(vantages), func(i, j int) { vantages[i], vantages[j] = vantages[j], vantages[i] })
	if len(vantages) > cfg.Vantages {
		vantages = vantages[:cfg.Vantages]
	}

	maxProbes := cfg.MaxProbes
	if maxProbes <= 0 {
		maxProbes = 40 * cfg.TargetPaths
	}
	var kept []brite.Route
	issued := 0
	seen := map[[2]int]bool{}
	for issued < maxProbes && len(kept) < cfg.TargetPaths {
		issued++
		src := vantages[rng.Intn(len(vantages))]
		dst := rng.Intn(in.Routers.N())
		if in.RouterAS[dst] == sourceAS || seen[[2]int{src, dst}] {
			continue
		}
		var vs, es []int
		var ok bool
		if cfg.LoadBalance {
			vs, es, ok = in.Routers.RandomizedShortestPath(src, dst, rng)
		} else {
			vs, es, ok = in.Routers.ShortestPath(src, dst)
		}
		if !ok || len(es) == 0 || len(es) > cfg.MaxTTL {
			continue // unreachable or TTL-exceeded: incomplete, discarded
		}
		// Each intermediate and final router must answer its probe for
		// the trace to be complete; otherwise the operator discards it.
		complete := true
		for h := 1; h < len(vs); h++ {
			if rng.Float64() >= cfg.ResponseP {
				complete = false
				break
			}
		}
		if !complete {
			continue
		}
		seen[[2]int{src, dst}] = true
		kept = append(kept, brite.Route{Vertices: vs, Edges: es})
	}
	if len(kept) == 0 {
		return nil, fmt.Errorf("traceroute: campaign kept no complete traces (issued %d)", issued)
	}
	top, err := brite.Overlay(in, kept)
	if err != nil {
		return nil, err
	}
	return &Campaign{Topology: top, Internet: in, Issued: issued, Kept: len(kept), SourceAS: sourceAS}, nil
}
