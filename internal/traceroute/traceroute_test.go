package traceroute

import (
	"math/rand"
	"testing"

	"repro/internal/brite"
)

// smallConfig keeps unit tests fast.
func smallConfig() Config {
	cfg := DefaultConfig()
	cfg.Internet.NumAS = 40
	cfg.Internet.RoutersPerAS = 5
	cfg.TargetPaths = 120
	cfg.MaxProbes = 8000
	return cfg
}

func TestRunProducesSparseOverlay(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	c, err := Run(smallConfig(), rng)
	if err != nil {
		t.Fatal(err)
	}
	if c.Kept == 0 || c.Topology.NumPaths() == 0 {
		t.Fatal("campaign kept no traces")
	}
	if c.Issued < c.Kept {
		t.Fatalf("issued %d < kept %d", c.Issued, c.Kept)
	}
}

func TestSparseIsSparserThanDense(t *testing.T) {
	// The defining properties of the Sparse topology (§3.2), measured at
	// the paper's scale (1500 paths): fewer paths intersect (lower mean
	// paths-per-link), more unknowns than observations (links ≈ or >
	// paths, unlike the Brite overlay), and far more links covered by a
	// single path.
	c, err := Run(DefaultConfig(), rand.New(rand.NewSource(2)))
	if err != nil {
		t.Fatal(err)
	}
	sparse := c.Topology
	dense, _, err := brite.DenseTopology(brite.DefaultConfig(), sparse.NumPaths(), rand.New(rand.NewSource(2)))
	if err != nil {
		t.Fatal(err)
	}
	if ds, dd := sparse.MeanPathsPerLink(), dense.MeanPathsPerLink(); ds >= dd/1.5 {
		t.Fatalf("sparse paths-per-link %.2f not well below dense %.2f", ds, dd)
	}
	ss, sd := 0, 0
	for i := 0; i < sparse.NumLinks(); i++ {
		if sparse.LinkPaths(i).Count() == 1 {
			ss++
		}
	}
	for i := 0; i < dense.NumLinks(); i++ {
		if dense.LinkPaths(i).Count() == 1 {
			sd++
		}
	}
	fs := float64(ss) / float64(sparse.NumLinks())
	fd := float64(sd) / float64(dense.NumLinks())
	if fs <= fd {
		t.Fatalf("sparse singleton-coverage %.2f <= dense %.2f", fs, fd)
	}
	if float64(sparse.NumLinks())/float64(sparse.NumPaths()) <= float64(dense.NumLinks())/float64(dense.NumPaths()) {
		t.Fatal("sparse should have more links per path than dense")
	}
}

func TestSourceASIsHighestDegree(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	in, err := brite.Generate(smallConfig().Internet, rng)
	if err != nil {
		t.Fatal(err)
	}
	c, err := RunOn(smallConfig(), in, rng)
	if err != nil {
		t.Fatal(err)
	}
	for as := 0; as < in.NumAS; as++ {
		if in.ASGraph.Degree(as) > in.ASGraph.Degree(c.SourceAS) {
			t.Fatalf("AS %d has higher degree than chosen source %d", as, c.SourceAS)
		}
	}
}

func TestUnresponsiveRoutersReduceKeptTraces(t *testing.T) {
	mk := func(p float64) int {
		cfg := smallConfig()
		cfg.ResponseP = p
		cfg.MaxProbes = 3000
		cfg.TargetPaths = 1 << 30 // never satisfied; probe budget binds
		c, err := Run(cfg, rand.New(rand.NewSource(4)))
		if err != nil {
			t.Fatal(err)
		}
		return c.Kept
	}
	high, low := mk(0.99), mk(0.6)
	if low >= high {
		t.Fatalf("kept(respP=0.6)=%d >= kept(respP=0.99)=%d", low, high)
	}
}

func TestRejectsBadConfig(t *testing.T) {
	cfg := smallConfig()
	cfg.Vantages = 0
	if _, err := Run(cfg, rand.New(rand.NewSource(5))); err == nil {
		t.Fatal("Vantages=0 should be rejected")
	}
	cfg = smallConfig()
	cfg.ResponseP = 0
	if _, err := Run(cfg, rand.New(rand.NewSource(5))); err == nil {
		t.Fatal("ResponseP=0 should be rejected")
	}
}

func TestDeterministicUnderSeed(t *testing.T) {
	gen := func() (int, int) {
		c, err := Run(smallConfig(), rand.New(rand.NewSource(6)))
		if err != nil {
			t.Fatal(err)
		}
		return c.Topology.NumLinks(), c.Topology.NumPaths()
	}
	l1, p1 := gen()
	l2, p2 := gen()
	if l1 != l2 || p1 != p2 {
		t.Fatal("campaign not deterministic under fixed seed")
	}
}
