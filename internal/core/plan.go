package core

import (
	"context"
	"fmt"
	"math"
	"time"

	"repro/internal/bitset"
	"repro/internal/linalg"
	"repro/internal/observe"
	"repro/internal/topology"
)

// Plan is the structural state of a Correlation-complete solve, carried
// across epochs by the streaming service's warm-start path. Everything
// the enumeration, seeding and augmentation phases derive — the unknown
// universe Ê, the selected path sets P̂, the null space, the
// identifiability verdicts and the QR factorization of the reduced
// system — is a pure function of (topology, config, always-good path
// set): the observations only enter through the right-hand sides of the
// final least-squares solve. So while a shard's always-good set is
// stable from one epoch to the next, the whole structural phase can be
// skipped and the carried-forward factorization re-solved against fresh
// frequencies; the moment the always-good set (or topology, or config)
// changes, the plan invalidates and the from-scratch path runs.
//
// A Plan is owned by one solver loop: it is not safe for concurrent
// use (ComputePlanned reuses its scratch buffers).
type Plan struct {
	top *topology.Topology
	cfg Config

	// goodKey identifies the always-good path set (restricted to the
	// plan's correlation-set restriction) the structure was derived
	// from; a mismatch invalidates the plan unless Repair can prove the
	// drift leaves the structure unchanged.
	goodKey string

	// Structural output of the builder.
	subsets    []subsetEntry
	index      map[string]int
	pathSets   []*bitset.Set
	rows       [][]int
	potLinks   *bitset.Set
	goodLinks  *bitset.Set
	restrict   *bitset.Set // paths of the restriction; nil when unrestricted
	shardLinks *bitset.Set // links of the restriction; nil when unrestricted

	// repairs counts how many times Repair patched this plan across an
	// always-good drift instead of rebuilding; numRepairs counts the
	// tier-2 frontier moves RepairNumeric absorbed.
	repairs    int
	numRepairs int

	// repairFailed records that this epoch's repair attempt lost — the
	// drift was outside every repair tier's class — so the caller can
	// distinguish "cold because drift was unrepairable" from "cold
	// because topology/config changed". Carried onto the fresh plan the
	// rebuild produces, together with the attempt's duration in
	// lastRepair.
	repairFailed bool

	// Per-epoch stage durations, reset at the top of each
	// ComputePlanned call and read back through StageTimes: how long
	// the structural rebuild, the Repair re-key and the shared solve
	// tail took for the epoch this plan just served. Telemetry-only —
	// nothing in the solve depends on them.
	lastBuild  time.Duration
	lastRepair time.Duration
	lastSolve  time.Duration

	// Solve plan: the surviving equations and unknowns after the
	// iterative identifiability reduction, and the retained QR
	// factorization of the reduced 0/1 system.
	activeRows []bool
	colMap     []int
	qr         *linalg.QR // nil when no column survived

	// Per-epoch solve scratch, reused so the warm path allocates only
	// the returned Result: rhs holds the right-hand sides, x the
	// solution, qtb the Qᵀ·b workspace; the batch slabs serve
	// SolveEpochBatch the same way.
	rhs []float64
	x   []float64
	qtb []float64

	batchSlab    []float64
	batchScratch []float64
}

// RepairCount returns how many always-good drifts this plan absorbed
// via Repair rather than a rebuild. Callers use it to distinguish a
// repaired epoch from a plainly warm one.
func (pl *Plan) RepairCount() int { return pl.repairs }

// NumericRepairCount returns how many frontier moves this plan absorbed
// via the tier-2 RepairNumeric patch rather than a rebuild.
func (pl *Plan) NumericRepairCount() int { return pl.numRepairs }

// RepairFailed reports whether the epoch this plan last served fell
// back to a cold rebuild after a repair attempt lost — as opposed to a
// cold epoch caused by a topology/config change, where no repair was
// attempted. On a fresh plan the flag (and the attempt's duration in
// StageTimes' repair slot) is carried over from the invalidated
// predecessor.
func (pl *Plan) RepairFailed() bool { return pl.repairFailed }

// StageTimes returns how long the last ComputePlanned epoch spent in
// each stage: the cold structural rebuild (zero on warm epochs), the
// Repair re-key (zero unless drift was absorbed), and the shared solve
// tail. Batched drains (ComputePlannedBatch) report the build of the
// last cold rebuild and the aggregate duration of the last flushed
// multi-RHS solve — per-epoch attribution doesn't exist there by
// construction.
func (pl *Plan) StageTimes() (build, repair, solve time.Duration) {
	return pl.lastBuild, pl.lastRepair, pl.lastSolve
}

// Compute runs the Correlation-complete algorithm over the recorded
// observations. rec may be any observation store — an observe.Recorder
// over a full monitoring period, or a stream.Window over the live
// sliding window of the streaming service.
//
// ctx cancels a long solve: the enumeration, augmentation and solving
// phases all check it between units of work and return ctx.Err()
// promptly, which is how the streaming service abandons an epoch solve
// that a newer window snapshot has superseded. A nil ctx means
// context.Background().
//
// Compute is ComputePlanned without a carried-forward plan.
func Compute(ctx context.Context, top *topology.Topology, rec observe.Store, cfg Config) (*Result, error) {
	res, _, err := ComputePlanned(ctx, top, rec, cfg, nil)
	return res, err
}

// ComputePlanned is Compute with warm starts: it returns the result
// together with the plan that produced it. When prev is still valid for
// this epoch — same topology, same config, and an unchanged always-good
// path set — the structural phases (enumeration, seeding, augmentation,
// identifiability, factorization) are skipped entirely and prev's
// factorization and null-space verdicts are carried forward; the
// returned plan is then prev itself, which is how callers observe that
// the warm path ran. When the always-good set has drifted, Repair is
// attempted first: a drift that provably leaves the structural phase
// unchanged is absorbed in O(Δ) and the retained factorization keeps
// serving (prev is again returned, with RepairCount incremented). With
// Config.NumericalPlanRepair set, a frontier move that tier-1 rejects
// is then offered to RepairNumeric, which patches the factorization
// column-by-column (NumericRepairCount increments; results are
// numerically, not bitwise, equivalent to the rebuild skipped).
// Otherwise the from-scratch path runs and a fresh plan is returned.
// Warm, tier-1-repaired and cold paths all share the final solve code,
// so their results are bit-identical by construction.
func ComputePlanned(ctx context.Context, top *topology.Topology, rec observe.Store, cfg Config, prev *Plan) (*Result, *Plan, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if rec.NumPaths() != top.NumPaths() {
		return nil, nil, fmt.Errorf("core: recorder has %d paths, topology has %d", rec.NumPaths(), top.NumPaths())
	}
	if prev != nil {
		prev.lastBuild, prev.lastRepair, prev.lastSolve = 0, 0, 0
		if prev.reusable(top, rec, cfg) {
			start := time.Now()
			res, err := prev.solveEpoch(ctx, rec)
			prev.lastSolve = time.Since(start)
			if err != nil {
				return nil, nil, err
			}
			return res, prev, nil
		}
	}
	start := time.Now()
	plan, err := buildPlan(ctx, top, rec, cfg)
	if err != nil {
		return nil, nil, err
	}
	plan.lastBuild = time.Since(start)
	if prev != nil {
		// The failed repair attempt's cost belongs to this epoch: carry
		// its duration (zero when no repair was attempted) and verdict
		// onto the plan that actually serves the epoch, so stage timing
		// doesn't silently drop exactly the epochs where repair was
		// tried and lost.
		plan.lastRepair = prev.lastRepair
		plan.repairFailed = prev.repairFailed
	}
	start = time.Now()
	res, err := plan.solveEpoch(ctx, rec)
	if err != nil {
		return nil, nil, err
	}
	plan.lastSolve = time.Since(start)
	return res, plan, nil
}

// buildPlan runs the full structural phase from scratch.
func buildPlan(ctx context.Context, top *topology.Topology, rec observe.Store, cfg Config) (*Plan, error) {
	b := newBuilder(top, rec, cfg)
	defer b.close()
	defer clearStage()
	if err := b.enumerate(ctx); err != nil {
		return nil, err
	}
	if err := b.seed(ctx); err != nil {
		return nil, err
	}
	if err := b.augment(ctx); err != nil {
		return nil, err
	}
	setStage(b, "qr")
	return b.plan(ctx)
}

// reusable reports whether the plan can serve this epoch: the
// topology and config must match, and the store's always-good path set
// (within the plan's restriction) must either be unchanged or drift
// within a repair tier's class — tier-1 Repair's provably
// structure-preserving (bit-identical) re-key first, then, when
// enabled, tier-2 RepairNumeric's factorization patch across frontier
// moves.
func (pl *Plan) reusable(top *topology.Topology, rec observe.Store, cfg Config) bool {
	pl.lastRepair, pl.repairFailed = 0, false
	if pl.top != top || !configsEqual(pl.cfg, cfg) {
		return false
	}
	good := rec.AlwaysGoodPaths(cfg.AlwaysGoodTol)
	if pl.restrict != nil {
		good = good.Intersect(pl.restrict)
	}
	if good.Key() == pl.goodKey {
		return true
	}
	if cfg.DisablePlanRepair {
		return false
	}
	start := time.Now()
	ok := pl.Repair(good)
	if !ok && cfg.NumericalPlanRepair {
		ok = pl.RepairNumeric(good)
	}
	pl.lastRepair = time.Since(start)
	pl.repairFailed = !ok
	return ok
}

// Repair attempts to absorb a drift of the always-good path set into
// the retained plan without rebuilding, reporting whether it did. The
// repairable class is exactly the drift that leaves the good-link
// frontier in place: LinksOf(newGood) == LinksOf(oldGood), i.e. every
// link of every drifted path is still covered by some always-good
// path. This is the common drift under congestion onset on redundantly
// monitored links — a path's measurements degrade while sibling paths
// keep vouching for its links.
//
// Under that single condition the from-scratch rebuild would reproduce
// the retained plan bit for bit, because the whole structural phase is
// a pure function of (topology, config, potentially-congested links,
// single-path registrations):
//
//   - the potentially congested set is the frontier's complement, so it
//     is unchanged, and with it the enumeration's eligible links, the
//     subset combos and their registration order;
//   - a drifted path's links all lie inside the (unchanged) good-link
//     frontier — a dropped path's because it was always good, an added
//     path's because it now is — so its equation has no potentially
//     congested group and its single-path registration registers
//     nothing in either run: the unknown universe is identical;
//   - seed sets, seed rows, the augmentation trajectory and the
//     identifiability reduction read only the universe and the
//     potentially congested set, so the selected path sets, surviving
//     rows/columns and the QR factorization are identical.
//
// Repair therefore just re-keys the plan to the new good set, at the
// cost of one LinksOf sweep — O(Δ) relative to the rebuild it avoids.
// Any frontier move (the delta too large to leave coverage intact, a
// potentially congested link going quiet, a good link losing its last
// vouching path) reports false and the caller rebuilds cold; rebuild
// also re-checks full column rank, which repair never degrades since
// it leaves the factorization untouched. good must already be
// restricted to the plan's shard.
func (pl *Plan) Repair(good *bitset.Set) bool {
	if !pl.top.LinksOf(good).Equal(pl.goodLinks) {
		return false
	}
	pl.goodKey = good.Key()
	pl.repairs++
	return true
}

// EpochInfo describes how one epoch of a batched solve used the
// carried-forward plan: Warm means the structural phase was skipped,
// Repaired that the plan additionally absorbed an always-good drift
// via the tier-1 re-key, RepairedNumeric that the tier-2 factorization
// patch absorbed a frontier move, and RepairFailed that a cold rebuild
// ran because a repair attempt lost (rather than because topology or
// config changed).
type EpochInfo struct {
	Warm            bool
	Repaired        bool
	RepairedNumeric bool
	RepairFailed    bool
}

// ComputePlannedBatch solves one epoch per store, carrying the plan
// across them exactly like sequential ComputePlanned calls would —
// warm-starting while the always-good set holds, repairing across
// structure-preserving drift, rebuilding otherwise — but draining each
// maximal run of plan-compatible stores through one batched multi-RHS
// solve. This is how a lag burst of queued window snapshots catches up:
// K epochs cost one set of right-hand sides plus a single batched
// back-substitution instead of K full solve tails. Results are
// bit-identical, store for store, to the sequential path; infos
// reports per store how the plan served it.
func ComputePlannedBatch(ctx context.Context, top *topology.Topology, recs []observe.Store, cfg Config, prev *Plan) ([]*Result, []EpochInfo, *Plan, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	results := make([]*Result, len(recs))
	infos := make([]EpochInfo, len(recs))
	plan := prev
	var pending []observe.Store // contiguous run reusing `plan`
	flush := func(end int) error {
		if len(pending) == 0 {
			return nil
		}
		// A tier-1 repair inside the pending run is sound: Repair only
		// re-keys the plan — structure, rows and factorization are
		// untouched — so earlier stores of the run still solve over
		// exactly the state their own sequential solve would have used.
		// A tier-2 repair is not (it rewrites the factorization), which
		// is why the loop below drains the run before attempting one.
		start := time.Now()
		batch, err := plan.SolveEpochBatch(ctx, pending)
		if err != nil {
			return err
		}
		plan.lastSolve = time.Since(start)
		copy(results[end-len(pending):end], batch)
		pending = pending[:0]
		return nil
	}
	for i, rec := range recs {
		if rec.NumPaths() != top.NumPaths() {
			return nil, nil, nil, fmt.Errorf("core: recorder has %d paths, topology has %d", rec.NumPaths(), top.NumPaths())
		}
		if plan != nil {
			// With tier-2 enabled, any always-good drift may rewrite the
			// retained factorization in place; the pending run must be
			// solved against the pre-repair state first, exactly as the
			// sequential chain would have.
			if cfg.NumericalPlanRepair && !cfg.DisablePlanRepair && len(pending) > 0 &&
				plan.top == top && configsEqual(plan.cfg, cfg) {
				good := rec.AlwaysGoodPaths(cfg.AlwaysGoodTol)
				if plan.restrict != nil {
					good = good.Intersect(plan.restrict)
				}
				if good.Key() != plan.goodKey {
					if err := flush(i); err != nil {
						return nil, nil, nil, err
					}
				}
			}
			repairs, numeric := plan.RepairCount(), plan.NumericRepairCount()
			if plan.reusable(top, rec, cfg) {
				infos[i] = EpochInfo{
					Warm:            true,
					Repaired:        plan.RepairCount() > repairs,
					RepairedNumeric: plan.NumericRepairCount() > numeric,
				}
				pending = append(pending, rec)
				continue
			}
		}
		if err := flush(i); err != nil {
			return nil, nil, nil, err
		}
		start := time.Now()
		fresh, err := buildPlan(ctx, top, rec, cfg)
		if err != nil {
			return nil, nil, nil, err
		}
		fresh.lastBuild = time.Since(start)
		if plan != nil {
			// Same carry as ComputePlanned: a failed repair attempt's
			// duration and verdict travel onto the fresh plan.
			fresh.lastRepair = plan.lastRepair
			fresh.repairFailed = plan.repairFailed
			infos[i].RepairFailed = plan.repairFailed
		}
		plan = fresh
		pending = append(pending, rec)
	}
	if err := flush(len(recs)); err != nil {
		return nil, nil, nil, err
	}
	return results, infos, plan, nil
}

// configsEqual compares two solver configurations field by field
// (RestrictCorrSets element-wise).
func configsEqual(a, b Config) bool {
	if a.MaxSubsetSize != b.MaxSubsetSize ||
		a.AlwaysGoodTol != b.AlwaysGoodTol ||
		a.MaxEnumPathSets != b.MaxEnumPathSets ||
		a.DisableSinglePathRegistration != b.DisableSinglePathRegistration ||
		a.Concurrency != b.Concurrency ||
		a.DisablePlanRepair != b.DisablePlanRepair ||
		a.NumericalPlanRepair != b.NumericalPlanRepair ||
		a.NumericalRepairMaxFrac != b.NumericalRepairMaxFrac ||
		len(a.RestrictCorrSets) != len(b.RestrictCorrSets) {
		return false
	}
	for i, c := range a.RestrictCorrSets {
		if b.RestrictCorrSets[i] != c {
			return false
		}
	}
	return true
}

// plan runs the structural half of the original solve phase: resolve
// identifiability by iteratively dropping unidentifiable columns and
// the rows that mention them, then factor the reduced 0/1 system once.
// The factorization and the surviving row/column selection are retained
// on the plan; only the right-hand sides remain per-epoch work.
func (b *builder) plan(ctx context.Context) (*Plan, error) {
	pl := &Plan{
		top:        b.top,
		cfg:        b.cfg,
		goodKey:    b.alwaysGoodPaths.Key(),
		subsets:    b.subsets,
		index:      b.index,
		pathSets:   b.pathSets,
		rows:       b.rows,
		potLinks:   b.potLinks,
		goodLinks:  b.goodLinks,
		restrict:   b.restrictPaths,
		shardLinks: b.shardLinks,
	}
	nCols := len(b.subsets)
	if len(b.rows) == 0 {
		return pl, nil
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}

	// Unidentifiable columns: rows of the final null space that are not
	// (numerically) zero. The null space is recomputed fresh here: the
	// incrementally maintained basis (Algorithm 2) is exact enough to
	// drive the selection loop, but hundreds of rank-one updates leave
	// numerical dirt that would falsely mark identifiable columns.
	finalM := linalg.NewMatrix(len(b.rows), nCols)
	for ri, cols := range b.rows {
		for _, c := range cols {
			finalM.Set(ri, c, 1)
		}
	}
	ns0 := linalg.NullSpaceBasis(finalM)
	identifiable := make([]bool, nCols)
	for i := 0; i < nCols; i++ {
		identifiable[i] = true
	}
	if ns0.Cols > 0 {
		for i := 0; i < nCols; i++ {
			for j := 0; j < ns0.Cols; j++ {
				if math.Abs(ns0.At(i, j)) > 1e-7 {
					identifiable[i] = false
					break
				}
			}
		}
	}

	// Iteratively drop unidentifiable columns and the rows that mention
	// them, re-deriving identifiability on the reduced system until it
	// has full column rank.
	activeRows := make([]bool, len(b.rows))
	for i := range activeRows {
		activeRows[i] = true
	}
	for {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		changed := false
		for ri, cols := range b.rows {
			if !activeRows[ri] {
				continue
			}
			for _, c := range cols {
				if !identifiable[c] {
					activeRows[ri] = false
					changed = true
					break
				}
			}
		}
		// Build the reduced system.
		var colMap []int
		colIdx := make([]int, nCols)
		for c := 0; c < nCols; c++ {
			colIdx[c] = -1
			if identifiable[c] {
				colIdx[c] = len(colMap)
				colMap = append(colMap, c)
			}
		}
		var mRows [][]float64
		for ri, cols := range b.rows {
			if !activeRows[ri] {
				continue
			}
			row := make([]float64, len(colMap))
			for _, c := range cols {
				row[colIdx[c]] = 1
			}
			mRows = append(mRows, row)
		}
		pl.activeRows = activeRows
		if len(colMap) == 0 {
			pl.colMap = nil
			return pl, nil
		}
		if len(mRows) >= len(colMap) {
			// FromRows copies mRows, so the in-place factorization may
			// destroy its result; the rank-deficient fallback below
			// rebuilds from mRows.
			f := linalg.FactorInPlace(linalg.FromRows(mRows))
			if f.FullColumnRank() {
				pl.colMap = colMap
				pl.qr = f
				return pl, nil
			}
		}
		// Rank fell after dropping rows (or the system is
		// under-determined): recompute identifiability on the reduced
		// system and iterate.
		ns := linalg.NullSpaceBasis(linalg.FromRows(mRows))
		for k, c := range colMap {
			for j := 0; j < ns.Cols; j++ {
				if math.Abs(ns.At(k, j)) > 1e-7 {
					identifiable[c] = false
					changed = true
					break
				}
			}
		}
		if !changed {
			// Should not happen: a full-column-rank system must solve.
			return nil, linalg.ErrRankDeficient
		}
	}
}

// MergeResults assembles per-shard restricted Results (one per
// topology.Partition shard, in shard order) into a single Result over
// the whole topology. The correlation-set partition makes the merge
// mechanical: shards share no correlation set, so the subset universes
// are disjoint and concatenate, and every joint query (SubsetGoodProb,
// CongestedProb, the per-link fallback chain) factors per correlation
// set and therefore resolves entirely within one shard's block. The
// global always-good/potentially-congested link sets are re-derived
// from rec with the given tolerance, exactly as an unrestricted run
// would. nil entries (shards without a result yet) contribute nothing.
func MergeResults(top *topology.Topology, rec observe.Store, shards []*Result, alwaysGoodTol float64) *Result {
	merged := &Result{
		index: map[string]int{},
		top:   top,
		rec:   rec,
	}
	merged.AlwaysGoodLinks = top.LinksOf(rec.AlwaysGoodPaths(alwaysGoodTol))
	merged.PotentiallyCongested = top.PotentiallyCongestedLinks(merged.AlwaysGoodLinks)
	for _, r := range shards {
		if r == nil {
			continue
		}
		base := len(merged.Subsets)
		merged.Subsets = append(merged.Subsets, r.Subsets...)
		for i, s := range r.Subsets {
			merged.index[s.Links.Key()] = base + i
		}
		merged.PathSets = append(merged.PathSets, r.PathSets...)
		merged.Rank += r.Rank
		merged.Nullity += r.Nullity
		merged.ClampedRows += r.ClampedRows
	}
	return merged
}

// resultShell allocates the Result skeleton every epoch shares: the
// subset universe with NaN probabilities, the link partitions, and the
// plan's path sets.
func (pl *Plan) resultShell(rec observe.Store) *Result {
	res := &Result{
		index:                pl.index,
		PathSets:             pl.pathSets,
		PotentiallyCongested: pl.potLinks,
		AlwaysGoodLinks:      pl.goodLinks,
		top:                  pl.top,
		rec:                  rec,
	}
	res.Subsets = make([]SubsetResult, len(pl.subsets))
	for i, s := range pl.subsets {
		res.Subsets[i] = SubsetResult{Links: s.links, CorrSet: s.corrSet, GoodProb: math.NaN()}
	}
	return res
}

// buildRHS fills dst with the epoch's right-hand sides — the empirical
// log good-frequencies of the surviving equations — returning the slice
// and the clamped-equation count.
func (pl *Plan) buildRHS(rec observe.Store, dst []float64) ([]float64, int) {
	dst = dst[:0]
	clamped := 0
	for ri := range pl.rows {
		if !pl.activeRows[ri] {
			continue
		}
		lp, cl := rec.LogGoodFreq(pl.pathSets[ri])
		if cl {
			clamped++
		}
		dst = append(dst, lp)
	}
	return dst, clamped
}

// fillSolution maps the least-squares solution back onto the result's
// identifiable subsets.
func (pl *Plan) fillSolution(res *Result, x []float64) {
	res.Rank = len(pl.colMap)
	res.Nullity = len(pl.subsets) - len(pl.colMap)
	for k, c := range pl.colMap {
		g := math.Exp(x[k])
		res.Subsets[c].GoodProb = clamp01(g)
		res.Subsets[c].Identifiable = true
	}
}

// solveScratch returns the plan's reusable solution and Qᵀb buffers,
// growing them on first use so the steady-state epoch solve allocates
// nothing beyond the returned Result.
func (pl *Plan) solveScratch() (x, qtb []float64) {
	m, n := pl.qr.Dims()
	if cap(pl.x) < n {
		pl.x = make([]float64, n)
	}
	if cap(pl.qtb) < m {
		pl.qtb = make([]float64, m)
	}
	return pl.x[:n], pl.qtb[:m]
}

// solveEpoch runs the data half of a solve against the plan: fresh
// empirical frequencies for the surviving equations, one least-squares
// solve over the retained factorization. It is the shared tail of the
// warm, repaired and cold paths.
func (pl *Plan) solveEpoch(ctx context.Context, rec observe.Store) (*Result, error) {
	setStage(nil, "solve")
	defer clearStage()
	res := pl.resultShell(rec)
	nCols := len(pl.subsets)
	if len(pl.rows) == 0 {
		res.Nullity = nCols
		return res, nil
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	rhs, clamped := pl.buildRHS(rec, pl.rhs)
	pl.rhs = rhs
	res.ClampedRows = clamped
	if len(pl.colMap) == 0 {
		res.Rank = 0
		res.Nullity = nCols
		return res, nil
	}
	x, qtb := pl.solveScratch()
	if err := pl.qr.SolveLeastSquaresInto(x, rhs, qtb); err != nil {
		return nil, err // unreachable: full column rank was verified at plan time
	}
	pl.fillSolution(res, x)
	return res, nil
}

// SolveEpochBatch solves one epoch per store against the retained
// factorization, draining all of them through a single batched
// multi-RHS back-substitution. Every store must describe the same
// always-good path set the plan was built (or repaired) for — the
// caller checks reusability per store, exactly as ComputePlanned would
// — and each result is bit-identical to a sequential solveEpoch over
// the same store (linalg guarantees the batched solve's per-vector
// arithmetic is the sequential solve's).
func (pl *Plan) SolveEpochBatch(ctx context.Context, recs []observe.Store) ([]*Result, error) {
	setStage(nil, "solve")
	defer clearStage()
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	results := make([]*Result, len(recs))
	if len(pl.rows) == 0 || len(pl.colMap) == 0 {
		for i, rec := range recs {
			res, err := pl.solveEpoch(ctx, rec)
			if err != nil {
				return nil, err
			}
			results[i] = res
		}
		return results, nil
	}
	m, n := pl.qr.Dims()
	K := len(recs)
	if cap(pl.batchSlab) < K*(m+n) {
		pl.batchSlab = make([]float64, K*(m+n))
	}
	if cap(pl.batchScratch) < K*m {
		pl.batchScratch = make([]float64, K*m)
	}
	slab := pl.batchSlab[:K*(m+n)]
	rhss := make([][]float64, K)
	xs := make([][]float64, K)
	for i, rec := range recs {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		results[i] = pl.resultShell(rec)
		rhs, clamped := pl.buildRHS(rec, slab[i*m:i*m:(i+1)*m])
		rhss[i] = rhs
		xs[i] = slab[K*m+i*n : K*m+(i+1)*n]
		results[i].ClampedRows = clamped
	}
	if err := pl.qr.SolveLeastSquaresBatchInto(xs, rhss, pl.batchScratch[:K*m]); err != nil {
		return nil, err // unreachable: full column rank was verified at plan time
	}
	for i := range recs {
		pl.fillSolution(results[i], xs[i])
	}
	return results, nil
}
