package core

import (
	"context"
	"fmt"
	"math"

	"repro/internal/bitset"
	"repro/internal/linalg"
	"repro/internal/observe"
	"repro/internal/topology"
)

// Plan is the structural state of a Correlation-complete solve, carried
// across epochs by the streaming service's warm-start path. Everything
// the enumeration, seeding and augmentation phases derive — the unknown
// universe Ê, the selected path sets P̂, the null space, the
// identifiability verdicts and the QR factorization of the reduced
// system — is a pure function of (topology, config, always-good path
// set): the observations only enter through the right-hand sides of the
// final least-squares solve. So while a shard's always-good set is
// stable from one epoch to the next, the whole structural phase can be
// skipped and the carried-forward factorization re-solved against fresh
// frequencies; the moment the always-good set (or topology, or config)
// changes, the plan invalidates and the from-scratch path runs.
//
// A Plan is owned by one solver loop: it is not safe for concurrent
// use (ComputePlanned reuses its scratch buffers).
type Plan struct {
	top *topology.Topology
	cfg Config

	// goodKey identifies the always-good path set (restricted to the
	// plan's correlation-set restriction) the structure was derived
	// from; a mismatch invalidates the plan.
	goodKey string

	// Structural output of the builder.
	subsets   []subsetEntry
	index     map[string]int
	pathSets  []*bitset.Set
	rows      [][]int
	potLinks  *bitset.Set
	goodLinks *bitset.Set
	restrict  *bitset.Set // paths of the restriction; nil when unrestricted

	// Solve plan: the surviving equations and unknowns after the
	// iterative identifiability reduction, and the retained QR
	// factorization of the reduced 0/1 system.
	activeRows []bool
	colMap     []int
	qr         *linalg.QR // nil when no column survived

	// rhs is the per-epoch right-hand-side scratch.
	rhs []float64
}

// Compute runs the Correlation-complete algorithm over the recorded
// observations. rec may be any observation store — an observe.Recorder
// over a full monitoring period, or a stream.Window over the live
// sliding window of the streaming service.
//
// ctx cancels a long solve: the enumeration, augmentation and solving
// phases all check it between units of work and return ctx.Err()
// promptly, which is how the streaming service abandons an epoch solve
// that a newer window snapshot has superseded. A nil ctx means
// context.Background().
//
// Compute is ComputePlanned without a carried-forward plan.
func Compute(ctx context.Context, top *topology.Topology, rec observe.Store, cfg Config) (*Result, error) {
	res, _, err := ComputePlanned(ctx, top, rec, cfg, nil)
	return res, err
}

// ComputePlanned is Compute with warm starts: it returns the result
// together with the plan that produced it. When prev is still valid for
// this epoch — same topology, same config, and an unchanged always-good
// path set — the structural phases (enumeration, seeding, augmentation,
// identifiability, factorization) are skipped entirely and prev's
// factorization and null-space verdicts are carried forward; the
// returned plan is then prev itself, which is how callers observe that
// the warm path ran. Otherwise the from-scratch path runs and a fresh
// plan is returned. Warm and cold paths share the final solve code, so
// their results are bit-identical by construction.
func ComputePlanned(ctx context.Context, top *topology.Topology, rec observe.Store, cfg Config, prev *Plan) (*Result, *Plan, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if rec.NumPaths() != top.NumPaths() {
		return nil, nil, fmt.Errorf("core: recorder has %d paths, topology has %d", rec.NumPaths(), top.NumPaths())
	}
	if prev != nil && prev.valid(top, rec, cfg) {
		res, err := prev.solveEpoch(ctx, rec)
		if err != nil {
			return nil, nil, err
		}
		return res, prev, nil
	}
	b := newBuilder(top, rec, cfg)
	if err := b.enumerate(ctx); err != nil {
		return nil, nil, err
	}
	if err := b.seed(ctx); err != nil {
		return nil, nil, err
	}
	if err := b.augment(ctx); err != nil {
		return nil, nil, err
	}
	plan, err := b.plan(ctx)
	if err != nil {
		return nil, nil, err
	}
	res, err := plan.solveEpoch(ctx, rec)
	if err != nil {
		return nil, nil, err
	}
	return res, plan, nil
}

// valid reports whether the plan's structural state still applies:
// same topology and config, and the store's always-good path set
// (within the plan's restriction) is unchanged since the plan was
// built.
func (pl *Plan) valid(top *topology.Topology, rec observe.Store, cfg Config) bool {
	if pl.top != top || !configsEqual(pl.cfg, cfg) {
		return false
	}
	good := rec.AlwaysGoodPaths(cfg.AlwaysGoodTol)
	if pl.restrict != nil {
		good = good.Intersect(pl.restrict)
	}
	return good.Key() == pl.goodKey
}

// configsEqual compares two solver configurations field by field
// (RestrictCorrSets element-wise).
func configsEqual(a, b Config) bool {
	if a.MaxSubsetSize != b.MaxSubsetSize ||
		a.AlwaysGoodTol != b.AlwaysGoodTol ||
		a.MaxEnumPathSets != b.MaxEnumPathSets ||
		a.DisableSinglePathRegistration != b.DisableSinglePathRegistration ||
		a.Concurrency != b.Concurrency ||
		len(a.RestrictCorrSets) != len(b.RestrictCorrSets) {
		return false
	}
	for i, c := range a.RestrictCorrSets {
		if b.RestrictCorrSets[i] != c {
			return false
		}
	}
	return true
}

// plan runs the structural half of the original solve phase: resolve
// identifiability by iteratively dropping unidentifiable columns and
// the rows that mention them, then factor the reduced 0/1 system once.
// The factorization and the surviving row/column selection are retained
// on the plan; only the right-hand sides remain per-epoch work.
func (b *builder) plan(ctx context.Context) (*Plan, error) {
	pl := &Plan{
		top:       b.top,
		cfg:       b.cfg,
		goodKey:   b.alwaysGoodPaths.Key(),
		subsets:   b.subsets,
		index:     b.index,
		pathSets:  b.pathSets,
		rows:      b.rows,
		potLinks:  b.potLinks,
		goodLinks: b.goodLinks,
		restrict:  b.restrictPaths,
	}
	nCols := len(b.subsets)
	if len(b.rows) == 0 {
		return pl, nil
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}

	// Unidentifiable columns: rows of the final null space that are not
	// (numerically) zero. The null space is recomputed fresh here: the
	// incrementally maintained basis (Algorithm 2) is exact enough to
	// drive the selection loop, but hundreds of rank-one updates leave
	// numerical dirt that would falsely mark identifiable columns.
	finalM := linalg.NewMatrix(len(b.rows), nCols)
	for ri, cols := range b.rows {
		for _, c := range cols {
			finalM.Set(ri, c, 1)
		}
	}
	ns0 := linalg.NullSpaceBasis(finalM)
	identifiable := make([]bool, nCols)
	for i := 0; i < nCols; i++ {
		identifiable[i] = true
	}
	if ns0.Cols > 0 {
		for i := 0; i < nCols; i++ {
			for j := 0; j < ns0.Cols; j++ {
				if math.Abs(ns0.At(i, j)) > 1e-7 {
					identifiable[i] = false
					break
				}
			}
		}
	}

	// Iteratively drop unidentifiable columns and the rows that mention
	// them, re-deriving identifiability on the reduced system until it
	// has full column rank.
	activeRows := make([]bool, len(b.rows))
	for i := range activeRows {
		activeRows[i] = true
	}
	for {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		changed := false
		for ri, cols := range b.rows {
			if !activeRows[ri] {
				continue
			}
			for _, c := range cols {
				if !identifiable[c] {
					activeRows[ri] = false
					changed = true
					break
				}
			}
		}
		// Build the reduced system.
		var colMap []int
		colIdx := make([]int, nCols)
		for c := 0; c < nCols; c++ {
			colIdx[c] = -1
			if identifiable[c] {
				colIdx[c] = len(colMap)
				colMap = append(colMap, c)
			}
		}
		var mRows [][]float64
		for ri, cols := range b.rows {
			if !activeRows[ri] {
				continue
			}
			row := make([]float64, len(colMap))
			for _, c := range cols {
				row[colIdx[c]] = 1
			}
			mRows = append(mRows, row)
		}
		pl.activeRows = activeRows
		if len(colMap) == 0 {
			pl.colMap = nil
			return pl, nil
		}
		if len(mRows) >= len(colMap) {
			// FromRows copies mRows, so the in-place factorization may
			// destroy its result; the rank-deficient fallback below
			// rebuilds from mRows.
			f := linalg.FactorInPlace(linalg.FromRows(mRows))
			if f.FullColumnRank() {
				pl.colMap = colMap
				pl.qr = f
				return pl, nil
			}
		}
		// Rank fell after dropping rows (or the system is
		// under-determined): recompute identifiability on the reduced
		// system and iterate.
		ns := linalg.NullSpaceBasis(linalg.FromRows(mRows))
		for k, c := range colMap {
			for j := 0; j < ns.Cols; j++ {
				if math.Abs(ns.At(k, j)) > 1e-7 {
					identifiable[c] = false
					changed = true
					break
				}
			}
		}
		if !changed {
			// Should not happen: a full-column-rank system must solve.
			return nil, linalg.ErrRankDeficient
		}
	}
}

// MergeResults assembles per-shard restricted Results (one per
// topology.Partition shard, in shard order) into a single Result over
// the whole topology. The correlation-set partition makes the merge
// mechanical: shards share no correlation set, so the subset universes
// are disjoint and concatenate, and every joint query (SubsetGoodProb,
// CongestedProb, the per-link fallback chain) factors per correlation
// set and therefore resolves entirely within one shard's block. The
// global always-good/potentially-congested link sets are re-derived
// from rec with the given tolerance, exactly as an unrestricted run
// would. nil entries (shards without a result yet) contribute nothing.
func MergeResults(top *topology.Topology, rec observe.Store, shards []*Result, alwaysGoodTol float64) *Result {
	merged := &Result{
		index: map[string]int{},
		top:   top,
		rec:   rec,
	}
	merged.AlwaysGoodLinks = top.LinksOf(rec.AlwaysGoodPaths(alwaysGoodTol))
	merged.PotentiallyCongested = top.PotentiallyCongestedLinks(merged.AlwaysGoodLinks)
	for _, r := range shards {
		if r == nil {
			continue
		}
		base := len(merged.Subsets)
		merged.Subsets = append(merged.Subsets, r.Subsets...)
		for i, s := range r.Subsets {
			merged.index[s.Links.Key()] = base + i
		}
		merged.PathSets = append(merged.PathSets, r.PathSets...)
		merged.Rank += r.Rank
		merged.Nullity += r.Nullity
		merged.ClampedRows += r.ClampedRows
	}
	return merged
}

// solveEpoch runs the data half of a solve against the plan: fresh
// empirical frequencies for the surviving equations, one least-squares
// solve over the retained factorization. It is the shared tail of the
// warm and cold paths.
func (pl *Plan) solveEpoch(ctx context.Context, rec observe.Store) (*Result, error) {
	res := &Result{
		index:                pl.index,
		PathSets:             pl.pathSets,
		PotentiallyCongested: pl.potLinks,
		AlwaysGoodLinks:      pl.goodLinks,
		top:                  pl.top,
		rec:                  rec,
	}
	nCols := len(pl.subsets)
	res.Subsets = make([]SubsetResult, nCols)
	for i, s := range pl.subsets {
		res.Subsets[i] = SubsetResult{Links: s.links, CorrSet: s.corrSet, GoodProb: math.NaN()}
	}
	if len(pl.rows) == 0 {
		res.Nullity = nCols
		return res, nil
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	rhs := pl.rhs[:0]
	clamped := 0
	for ri := range pl.rows {
		if !pl.activeRows[ri] {
			continue
		}
		lp, cl := rec.LogGoodFreq(pl.pathSets[ri])
		if cl {
			clamped++
		}
		rhs = append(rhs, lp)
	}
	pl.rhs = rhs
	res.ClampedRows = clamped
	if len(pl.colMap) == 0 {
		res.Rank = 0
		res.Nullity = nCols
		return res, nil
	}
	x, err := pl.qr.SolveLeastSquares(rhs)
	if err != nil {
		return nil, err // unreachable: full column rank was verified at plan time
	}
	res.Rank = len(pl.colMap)
	res.Nullity = nCols - len(pl.colMap)
	for k, c := range pl.colMap {
		g := math.Exp(x[k])
		res.Subsets[c].GoodProb = clamp01(g)
		res.Subsets[c].Identifiable = true
	}
	return res, nil
}
