package core

import (
	"context"
	"math"
	"math/rand"
	"testing"

	"repro/internal/bitset"
	"repro/internal/observe"
	"repro/internal/topology"
)

// simulateFig1Case1 produces T intervals of perfect path observations
// over the Fig. 1 topology (Case 1) with the given distribution:
// e1 congested w.p. p1, e4 w.p. p4, and {e2,e3} perfectly correlated,
// both congested together w.p. p23 (the paper's §3.1 example of
// correlation), all groups independent.
func simulateFig1Case1(t *testing.T, p1, p23, p4 float64, T int, seed int64) (*topology.Topology, *observe.Recorder) {
	t.Helper()
	top := topology.Fig1Case1()
	rng := rand.New(rand.NewSource(seed))
	rec := observe.NewRecorder(top.NumPaths())
	for i := 0; i < T; i++ {
		congLinks := bitset.New(4)
		if rng.Float64() < p1 {
			congLinks.Add(0)
		}
		if rng.Float64() < p23 {
			congLinks.Add(1)
			congLinks.Add(2)
		}
		if rng.Float64() < p4 {
			congLinks.Add(3)
		}
		congPaths := bitset.New(3)
		for p := 0; p < 3; p++ {
			if top.PathLinks(p).Intersects(congLinks) {
				congPaths.Add(p)
			}
		}
		rec.Add(congPaths)
	}
	return top, rec
}

func TestFig1Case1SeedPathSets(t *testing.T) {
	// §5.3's table: the seed path sets must be
	//   {e1} -> {p1,p2}, {e2} -> {p1}, {e3} -> {p2,p3},
	//   {e2,e3} -> {p1,p2,p3}, {e4} -> {p3}.
	top, rec := simulateFig1Case1(t, 0.3, 0.4, 0.2, 400, 1)
	b := newBuilder(top, rec, Config{})
	b.enumerate(context.Background())

	want := map[string]string{
		"{0}":    "{0, 1}",
		"{1}":    "{0}",
		"{2}":    "{1, 2}",
		"{1, 2}": "{0, 1, 2}",
		"{3}":    "{2}",
	}
	if len(b.subsets) != 5 {
		t.Fatalf("universe size = %d, want 5", len(b.subsets))
	}
	for _, s := range b.subsets {
		if got := s.seedSet.String(); got != want[s.links.String()] {
			t.Errorf("seed(%s) = %s, want %s", s.links, got, want[s.links.String()])
		}
	}
}

func TestFig1Case1EquationsMatchFig2b(t *testing.T) {
	// The seed system must be exactly the equations of Fig. 2(b):
	// every row pairs path sets with the right correlation subsets.
	top, rec := simulateFig1Case1(t, 0.3, 0.4, 0.2, 400, 2)
	b := newBuilder(top, rec, Config{})
	b.enumerate(context.Background())
	b.seed(context.Background())

	// Expected (path set -> subset names), from Fig. 2(b).
	type eq struct{ paths, subs string }
	want := map[string]string{
		"{0, 1}":    "[{0}]",            // P(Yp1=0,Yp2=0) = g(e1)·g(e2,e3) — wait, see below
		"{0}":       "[{0} {1}]",        // P(Yp1=0) = g(e1)·g(e2)
		"{1, 2}":    "[{0} {2} {3}]",    // P(Yp2=0,Yp3=0) = g(e1)·g(e3)·g(e4)
		"{2}":       "[{2} {3}]",        // P(Yp3=0) = g(e3)·g(e4)
		"{0, 1, 2}": "[{0} {1, 2} {3}]", // all paths: g(e1)·g(e2,e3)·g(e4)
	}
	// Correction for {p1,p2}: Links = {e1,e2,e3} -> g(e1)·g({e2,e3}).
	want["{0, 1}"] = "[{0} {1, 2}]"
	if len(b.rows) != 5 {
		t.Fatalf("seed equations = %d, want 5", len(b.rows))
	}
	for ri, cols := range b.rows {
		var subs []string
		for _, c := range cols {
			subs = append(subs, b.subsets[c].links.String())
		}
		got := "[" + joinStrings(subs, " ") + "]"
		key := b.pathSets[ri].String()
		if want[key] == "" {
			t.Errorf("unexpected seed path set %s", key)
			continue
		}
		if got != want[key] {
			t.Errorf("equation for %s = %s, want %s", key, got, want[key])
		}
	}
	_ = eq{}
}

func joinStrings(s []string, sep string) string {
	out := ""
	for i, x := range s {
		if i > 0 {
			out += sep
		}
		out += x
	}
	return out
}

func TestFig1Case1RecoversProbabilities(t *testing.T) {
	// With abundant noise-free observations the algorithm must recover
	// all five subset probabilities: the Fig. 2(b) system has full rank.
	p1, p23, p4 := 0.3, 0.4, 0.2
	top, rec := simulateFig1Case1(t, p1, p23, p4, 60000, 3)
	res, err := Compute(context.Background(), top, rec, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Nullity != 0 {
		t.Fatalf("nullity = %d, want 0 (Identifiability++ holds in Case 1)", res.Nullity)
	}
	checks := []struct {
		links []int
		want  float64 // g(E)
	}{
		{[]int{0}, 1 - p1},
		{[]int{1}, 1 - p23},
		{[]int{2}, 1 - p23},
		{[]int{3}, 1 - p4},
		{[]int{1, 2}, 1 - p23}, // perfectly correlated pair
	}
	for _, c := range checks {
		g, ok := res.SubsetGoodProb(bitset.FromIndices(4, c.links...))
		if !ok {
			t.Fatalf("subset %v not identifiable", c.links)
		}
		if math.Abs(g-c.want) > 0.03 {
			t.Errorf("g(%v) = %.3f, want ≈%.3f", c.links, g, c.want)
		}
	}
	// The joint probability that e2 and e3 are both congested must be
	// ≈ p23 (not p23², which Independence would report).
	pc, ok := res.CongestedProb(bitset.FromIndices(4, 1, 2))
	if !ok {
		t.Fatal("CongestedProb(e2,e3) unavailable")
	}
	if math.Abs(pc-p23) > 0.03 {
		t.Errorf("P(e2,e3 congested) = %.3f, want ≈%.3f", pc, p23)
	}
}

func TestFig1Case2Unidentifiable(t *testing.T) {
	// Case 2 violates Identifiability++: {e1,e4} and {e2,e3} are
	// traversed by the same paths, so their probabilities must be
	// reported unidentifiable, not guessed (§2, §5).
	top := topology.Fig1Case2()
	rng := rand.New(rand.NewSource(4))
	rec := observe.NewRecorder(top.NumPaths())
	for i := 0; i < 5000; i++ {
		congLinks := bitset.New(4)
		if rng.Float64() < 0.3 {
			congLinks.Add(0)
			congLinks.Add(3)
		}
		if rng.Float64() < 0.4 {
			congLinks.Add(1)
			congLinks.Add(2)
		}
		congPaths := bitset.New(3)
		for p := 0; p < 3; p++ {
			if top.PathLinks(p).Intersects(congLinks) {
				congPaths.Add(p)
			}
		}
		rec.Add(congPaths)
	}
	res, err := Compute(context.Background(), top, rec, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Nullity == 0 {
		t.Fatal("Case 2 must leave a non-trivial null space")
	}
	for _, links := range [][]int{{0, 3}, {1, 2}} {
		if _, ok := res.SubsetGoodProb(bitset.FromIndices(4, links...)); ok {
			t.Errorf("subset %v should be unidentifiable in Case 2", links)
		}
	}
}

func TestAlwaysGoodPathsPruneSubsets(t *testing.T) {
	// §5.2's example: if p3 is always good, e3 and e4 are always good,
	// and the potentially congested subsets are {e1} and {e2} only.
	top := topology.Fig1Case1()
	rng := rand.New(rand.NewSource(5))
	rec := observe.NewRecorder(top.NumPaths())
	for i := 0; i < 2000; i++ {
		congPaths := bitset.New(3)
		if rng.Float64() < 0.3 { // e1 congested -> p1, p2 congested
			congPaths.Add(0)
			congPaths.Add(1)
		}
		if rng.Float64() < 0.2 { // e2 congested -> p1 congested
			congPaths.Add(0)
		}
		rec.Add(congPaths)
	}
	b := newBuilder(top, rec, Config{})
	b.enumerate(context.Background())
	if got := b.potLinks.String(); got != "{0, 1}" {
		t.Fatalf("potentially congested links = %s, want {0, 1}", got)
	}
	if len(b.subsets) != 2 {
		t.Fatalf("universe = %d subsets, want 2 ({e1} and {e2})", len(b.subsets))
	}

	// And the full run recovers both probabilities.
	res, err := Compute(context.Background(), top, rec, Config{})
	if err != nil {
		t.Fatal(err)
	}
	g1, ok1 := res.LinkGoodProb(0)
	g2, ok2 := res.LinkGoodProb(1)
	if !ok1 || !ok2 {
		t.Fatal("e1/e2 should be identifiable")
	}
	if math.Abs(g1-0.7) > 0.04 || math.Abs(g2-0.8) > 0.04 {
		t.Errorf("g(e1)=%.3f (want .7), g(e2)=%.3f (want .8)", g1, g2)
	}
	// Always-good links report congestion probability 0 exactly.
	if p, exact := res.LinkCongestProbOrFallback(2); p != 0 || !exact {
		t.Errorf("e3 should have exact probability 0, got %v (exact=%v)", p, exact)
	}
}

func TestMaxSubsetSizeBound(t *testing.T) {
	top, rec := simulateFig1Case1(t, 0.3, 0.4, 0.2, 2000, 6)
	res, err := Compute(context.Background(), top, rec, Config{MaxSubsetSize: 1})
	if err != nil {
		t.Fatal(err)
	}
	// The pair {e2,e3} is not enumerated... but it can still appear in
	// equations (e.g. the all-paths equation) and therefore be
	// registered. The enumerated singles must all be present.
	for _, li := range []int{0, 1, 2, 3} {
		if _, ok := res.index[bitset.FromIndices(4, li).Key()]; !ok {
			t.Errorf("singleton {e%d} missing from universe", li+1)
		}
	}
}

func TestSubsetGoodProbOfAlwaysGoodIsOne(t *testing.T) {
	top, rec := simulateFig1Case1(t, 0.3, 0.4, 0.2, 1000, 7)
	res, err := Compute(context.Background(), top, rec, Config{})
	if err != nil {
		t.Fatal(err)
	}
	// The empty set is good with probability 1.
	if g, ok := res.SubsetGoodProb(bitset.New(4)); !ok || g != 1 {
		t.Fatalf("g(∅) = %v, ok=%v", g, ok)
	}
}

func TestComputeRejectsMismatchedRecorder(t *testing.T) {
	top := topology.Fig1Case1()
	rec := observe.NewRecorder(99)
	if _, err := Compute(context.Background(), top, rec, Config{}); err == nil {
		t.Fatal("mismatched recorder accepted")
	}
}

func TestCongestedProbConsistency(t *testing.T) {
	// P(e congested) computed via CongestedProb must equal
	// 1 − LinkGoodProb(e).
	top, rec := simulateFig1Case1(t, 0.3, 0.4, 0.2, 20000, 8)
	res, err := Compute(context.Background(), top, rec, Config{})
	if err != nil {
		t.Fatal(err)
	}
	for e := 0; e < 4; e++ {
		g, ok1 := res.LinkGoodProb(e)
		s := bitset.New(4)
		s.Add(e)
		pc, ok2 := res.CongestedProb(s)
		if ok1 != ok2 {
			t.Fatalf("link %d: identifiability disagreement", e)
		}
		if ok1 && math.Abs(pc-(1-g)) > 1e-9 {
			t.Fatalf("link %d: CongestedProb %.4f != 1-g %.4f", e, pc, 1-g)
		}
	}
	// Cross-correlation-set pair {e1, e4}: independent sets, so
	// P(both congested) = (1-g1)(1-g4).
	g1, _ := res.LinkGoodProb(0)
	g4, _ := res.LinkGoodProb(3)
	pc, ok := res.CongestedProb(bitset.FromIndices(4, 0, 3))
	if !ok {
		t.Fatal("cross-set pair should be computable")
	}
	if want := (1 - g1) * (1 - g4); math.Abs(pc-want) > 1e-9 {
		t.Fatalf("cross-set pair: %.4f, want %.4f", pc, want)
	}
}

func TestFallbackForUncoveredLink(t *testing.T) {
	// A link traversed by no path is potentially congested but carries
	// no information; the fallback must return 0 without claiming
	// exactness.
	links := []topology.Link{{ID: 0, AS: 0}, {ID: 1, AS: 1}}
	paths := []topology.Path{{ID: 0, Links: []int{0}}}
	top := topology.New(links, paths, nil)
	rec := observe.NewRecorder(1)
	rec.Add(bitset.FromIndices(1, 0)) // p0 congested once
	rec.Add(bitset.New(1))
	res, err := Compute(context.Background(), top, rec, Config{})
	if err != nil {
		t.Fatal(err)
	}
	p, exact := res.LinkCongestProbOrFallback(1)
	if p != 0 || exact {
		t.Fatalf("uncovered link: p=%v exact=%v, want 0,false", p, exact)
	}
	// The covered link e0 is identifiable: g = 0.5.
	if p, exact := res.LinkCongestProbOrFallback(0); !exact || math.Abs(p-0.5) > 1e-9 {
		t.Fatalf("covered link: p=%v exact=%v", p, exact)
	}
}

func TestComputeConcurrencyDeterministic(t *testing.T) {
	// The Concurrency knob must not change a single bit of the result:
	// workers only fill per-subset slots, and every ordering decision
	// (registration, selection, solving) stays serial.
	top, rec := simulateFig1Case1(t, 0.3, 0.4, 0.2, 800, 13)
	// Concurrency 1 is the explicit serial opt-out: 0 now defaults to
	// GOMAXPROCS, so the baseline must pin the true serial path.
	serial, err := Compute(context.Background(), top, rec, Config{MaxSubsetSize: 2, Concurrency: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{0, 2, 4, -1} {
		par, err := Compute(context.Background(), top, rec, Config{MaxSubsetSize: 2, Concurrency: workers})
		if err != nil {
			t.Fatal(err)
		}
		if len(par.Subsets) != len(serial.Subsets) || par.Rank != serial.Rank || par.Nullity != serial.Nullity {
			t.Fatalf("workers=%d: system shape diverged", workers)
		}
		for i := range serial.Subsets {
			s, p := serial.Subsets[i], par.Subsets[i]
			if !s.Links.Equal(p.Links) || s.Identifiable != p.Identifiable {
				t.Fatalf("workers=%d: subset %d diverged", workers, i)
			}
			if s.Identifiable && s.GoodProb != p.GoodProb {
				t.Fatalf("workers=%d: subset %d prob %v != %v", workers, i, p.GoodProb, s.GoodProb)
			}
		}
		if len(par.PathSets) != len(serial.PathSets) {
			t.Fatalf("workers=%d: selected %d path sets, serial %d", workers, len(par.PathSets), len(serial.PathSets))
		}
		for i := range serial.PathSets {
			if !par.PathSets[i].Equal(serial.PathSets[i]) {
				t.Fatalf("workers=%d: path set %d diverged", workers, i)
			}
		}
	}
}
