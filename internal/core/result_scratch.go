package core

import (
	"sync"

	"repro/internal/bitset"
)

// queryScratch is the pooled buffer set behind Result's per-link
// estimate queries. The figure drivers call LinkCongestProbOrFallback
// for every link of every trial, and the fallback chain decomposes
// equations per correlation set each time — without reuse that is
// hundreds of thousands of transient bitsets and maps per experiment.
// A pool (rather than scratch owned by the Result) keeps the query
// methods safe for concurrent readers, matching observe's mask
// scratch.
type queryScratch struct {
	numLinks, numPaths, numCorrSets int

	eff      *bitset.Set // intersection buffer (link universe)
	links    *bitset.Set // second link-universe buffer
	oneLink  *bitset.Set
	onePath  *bitset.Set
	paths    *bitset.Set // path-universe accumulator
	perSet   []*bitset.Set
	mark     []int
	stamp    int
	setOrder []int
	keyBuf   []byte
}

var queryPool = sync.Pool{New: func() any { return &queryScratch{} }}

// getQueryScratch checks a scratch sized for this result's topology out
// of the pool. Return it with putQueryScratch.
func (r *Result) getQueryScratch() *queryScratch {
	sc := queryPool.Get().(*queryScratch)
	nl, np, nc := r.top.NumLinks(), r.top.NumPaths(), len(r.top.CorrSets)
	if sc.numLinks != nl || sc.numPaths != np || sc.numCorrSets != nc {
		*sc = queryScratch{
			numLinks: nl, numPaths: np, numCorrSets: nc,
			eff:     bitset.New(nl),
			links:   bitset.New(nl),
			oneLink: bitset.New(nl),
			onePath: bitset.New(np),
			paths:   bitset.New(np),
			perSet:  make([]*bitset.Set, nc),
			mark:    make([]int, nc),
		}
	}
	return sc
}

func putQueryScratch(sc *queryScratch) { queryPool.Put(sc) }

// decomposePerSet splits the potentially congested links of `links`
// per correlation set into sc.perSet, recording first-encounter order
// (ascending link index) in sc.setOrder — the same deterministic
// decomposition the builder uses for rows.
func (sc *queryScratch) decomposePerSet(r *Result, links *bitset.Set) {
	sc.stamp++
	sc.setOrder = sc.setOrder[:0]
	links.ForEach(func(li int) bool {
		c := r.top.CorrSetOf(li)
		if sc.mark[c] != sc.stamp {
			sc.mark[c] = sc.stamp
			if sc.perSet[c] == nil {
				sc.perSet[c] = bitset.New(sc.numLinks)
			} else {
				sc.perSet[c].Clear()
			}
			sc.setOrder = append(sc.setOrder, c)
		}
		sc.perSet[c].Add(li)
		return true
	})
}

// lookup resolves a subset bitset to its index via the scratch key
// buffer, allocating nothing.
func (sc *queryScratch) lookup(r *Result, links *bitset.Set) (int, bool) {
	sc.keyBuf = links.AppendKey(sc.keyBuf[:0])
	i, ok := r.index[string(sc.keyBuf)]
	return i, ok
}
