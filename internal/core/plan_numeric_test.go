package core

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"testing"

	"repro/internal/bitset"
	"repro/internal/linalg"
	"repro/internal/observe"
	"repro/internal/stream"
	"repro/internal/topology"
)

// verifyPatchedFactorization asserts the tier-2 claim precisely: the
// patched factorization solves exactly the plan's re-derived reduced
// system — active rows × identifiable columns — to within tolerance of
// a from-scratch factorization of that same matrix.
func verifyPatchedFactorization(t *testing.T, label string, pl *Plan) {
	t.Helper()
	colIdx := make(map[int]int, len(pl.colMap))
	for j, c := range pl.colMap {
		colIdx[c] = j
	}
	var mRows [][]float64
	for ri, cols := range pl.rows {
		if !pl.activeRows[ri] {
			continue
		}
		row := make([]float64, len(pl.colMap))
		for _, c := range cols {
			j, ok := colIdx[c]
			if !ok {
				t.Fatalf("%s: active row %d references subset %d outside colMap", label, ri, c)
			}
			row[j] = 1
		}
		mRows = append(mRows, row)
	}
	m, n := pl.qr.Dims()
	if m != len(mRows) || n != len(pl.colMap) {
		t.Fatalf("%s: patched QR is %dx%d, re-derived system %dx%d", label, m, n, len(mRows), len(pl.colMap))
	}
	fresh := linalg.FactorInPlace(linalg.FromRows(mRows))
	if !fresh.FullColumnRank() {
		t.Fatalf("%s: re-derived system is rank deficient despite the incremental check", label)
	}
	rng := rand.New(rand.NewSource(7))
	b := make([]float64, m)
	for i := range b {
		b[i] = rng.NormFloat64()
	}
	want, err1 := fresh.SolveLeastSquares(b)
	got, err2 := pl.qr.SolveLeastSquares(b)
	if err1 != nil || err2 != nil {
		t.Fatalf("%s: solve errors %v / %v", label, err1, err2)
	}
	for k := range want {
		if math.Abs(want[k]-got[k]) > 1e-8*(1+math.Abs(want[k])) {
			t.Fatalf("%s: x[%d] patched %v vs refactor %v", label, k, got[k], want[k])
		}
	}
}

// looselyMatchesCold checks the relaxed tier-2 contract against the
// cold solve: the link partitions — a pure function of the data — must
// match exactly, and every subset identifiable under both structural
// selections must agree to solver tolerance. Cold's richer selection
// is allowed extra path sets and unknowns the retained plan never saw.
func looselyMatchesCold(t *testing.T, label string, res, cold *Result) {
	t.Helper()
	if !res.PotentiallyCongested.Equal(cold.PotentiallyCongested) ||
		!res.AlwaysGoodLinks.Equal(cold.AlwaysGoodLinks) {
		t.Fatalf("%s: link partitions differ from cold", label)
	}
	for _, sub := range res.Subsets {
		if !sub.Identifiable {
			continue
		}
		g, ok := cold.SubsetGoodProb(sub.Links)
		if !ok {
			continue
		}
		if math.Abs(g-sub.GoodProb) > 1e-6 {
			t.Fatalf("%s: subset %s retained %v vs cold %v", label, sub.Links, sub.GoodProb, g)
		}
	}
}

// Under randomized frontier-move drift with tier-2 enabled, the plan
// chain must exercise all three tiers; every tier-2 epoch's patched
// factorization must match a fresh factorization of its re-derived
// system and satisfy the loose contract against cold. Warm and tier-1
// epochs stay bit-identical to cold until the first tier-2 patch on
// the chain — after that the retained structural selection may
// legitimately differ from cold's until the next cold rebuild resets
// it, so post-patch epochs are held to the loose contract instead.
func TestNumericalRepairUnderFrontierDrift(t *testing.T) {
	top := driftTopology(t)
	cfg := Config{MaxSubsetSize: 2, AlwaysGoodTol: 0.02, NumericalPlanRepair: true, NumericalRepairMaxFrac: 0.6}
	var warm, repaired, numeric, rebuilt, bitIdentical int
	for seed := int64(1); seed <= 6; seed++ {
		rng := rand.New(rand.NewSource(seed))
		w := stream.NewWindow(top.NumPaths(), 400)
		var plan *Plan
		patched := false // chain has diverged from cold's selection
		for epoch := 0; epoch < 14; epoch++ {
			// Frontier moves both ways: congestion onset on path 2
			// (link 4 loses its last extra vouching path) and clearing.
			driftEpoch(w, rng, top.NumPaths(), 100, epoch%5 == 3 || epoch%7 == 5)
			prevRepairs, prevNumeric := 0, 0
			if plan != nil {
				prevRepairs, prevNumeric = plan.RepairCount(), plan.NumericRepairCount()
			}
			res, next, err := ComputePlanned(context.Background(), top, w, cfg, plan)
			if err != nil {
				t.Fatal(err)
			}
			cold, err := Compute(context.Background(), top, w, cfg)
			if err != nil {
				t.Fatal(err)
			}
			label := fmt.Sprintf("seed %d epoch %d", seed, epoch)
			switch {
			case plan == nil || next != plan:
				rebuilt++
				patched = false // fresh build: back in lockstep with cold
				resultsEqual(t, label+" (cold)", res, cold)
			case next.NumericRepairCount() > prevNumeric:
				numeric++
				patched = true
				verifyPatchedFactorization(t, label, next)
				looselyMatchesCold(t, label+" (tier-2)", res, cold)
			case next.RepairCount() > prevRepairs:
				repaired++
				if patched {
					looselyMatchesCold(t, label+" (tier-1, post-patch)", res, cold)
				} else {
					bitIdentical++
					resultsEqual(t, label+" (tier-1)", res, cold)
				}
			default:
				warm++
				if patched {
					looselyMatchesCold(t, label+" (warm, post-patch)", res, cold)
				} else {
					bitIdentical++
					resultsEqual(t, label+" (warm)", res, cold)
				}
			}
			plan = next
		}
	}
	if numeric == 0 {
		t.Fatal("drift schedule never exercised RepairNumeric")
	}
	if repaired == 0 {
		t.Fatal("drift schedule never exercised tier-1 Repair")
	}
	if warm == 0 {
		t.Fatal("drift schedule never warm-started")
	}
	if bitIdentical == 0 {
		t.Fatal("drift schedule never checked a pre-patch epoch bit-identically")
	}
	t.Logf("tiers: warm=%d repaired=%d numeric=%d rebuilt=%d (bit-identical checks: %d)",
		warm, repaired, numeric, rebuilt, bitIdentical)
}

// rankLossTopology builds the smallest fixture whose frontier move
// provably breaks identifiability for the retained selection: one
// always-good link vouched for by two dedicated paths, one congested
// link, and a spanning path. When the good link's dedicated paths both
// degrade, the retained single equation suddenly references two
// unknowns — an under-determined patch the incremental rank check must
// reject.
func rankLossTopology(t *testing.T) *topology.Topology {
	t.Helper()
	links := []topology.Link{{ID: 0, AS: 0}, {ID: 1, AS: 1}}
	paths := []topology.Path{
		{ID: 0, Links: []int{0, 1}},
		{ID: 1, Links: []int{0}},
		{ID: 2, Links: []int{1}},
		{ID: 3, Links: []int{1}},
	}
	top, err := topology.NewChecked(links, paths, [][]int{{0}, {1}})
	if err != nil {
		t.Fatal(err)
	}
	return top
}

// A frontier move that breaks identifiability of the retained system
// must fall back to the cold rebuild via the incremental rank check —
// with the failed attempt recorded on the fresh plan.
func TestNumericalRepairRankLossFallsBack(t *testing.T) {
	top := rankLossTopology(t)
	cfg := Config{MaxSubsetSize: 2, NumericalPlanRepair: true, NumericalRepairMaxFrac: 1}
	w := stream.NewWindow(top.NumPaths(), 200)
	rng := rand.New(rand.NewSource(3))
	addIntervals := func(p2Congests bool) {
		cong := bitset.New(top.NumPaths())
		for i := 0; i < 100; i++ {
			cong.Clear()
			if rng.Float64() < 0.5 { // link 0 congests
				cong.Add(0)
				cong.Add(1)
			}
			if p2Congests && rng.Float64() < 0.4 { // link 1 congests
				cong.Add(0)
				cong.Add(2)
				cong.Add(3)
			}
			w.Add(cong)
		}
	}
	addIntervals(false)
	_, plan, err := ComputePlanned(context.Background(), top, w, cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	if plan == nil || plan.qr == nil {
		t.Fatal("phase-1 plan has no factorization")
	}
	// Phase 2: link 1 starts congesting, so paths 2 and 3 leave the
	// always-good set and link 1 enters the potentially-congested set.
	// The retained equations now reference unknowns {0} and {1} with
	// fewer independent equations than unknowns.
	addIntervals(true)
	res, next, err := ComputePlanned(context.Background(), top, w, cfg, plan)
	if err != nil {
		t.Fatal(err)
	}
	if next == plan {
		t.Fatal("rank-breaking frontier move was absorbed instead of rebuilt")
	}
	if next.NumericRepairCount() != 0 {
		t.Fatal("fresh plan reports a numeric repair")
	}
	if !next.RepairFailed() {
		t.Fatal("fresh plan does not record the failed repair attempt")
	}
	if _, rep, _ := next.StageTimes(); rep <= 0 {
		t.Fatal("failed repair attempt's duration was discarded")
	}
	cold, err := Compute(context.Background(), top, w, cfg)
	if err != nil {
		t.Fatal(err)
	}
	resultsEqual(t, "rank-loss fallback", res, cold)
}

// The Δ gate: a frontier move larger than NumericalRepairMaxFrac of
// the link universe must decline the patch and rebuild cold.
func TestNumericalRepairDeltaGate(t *testing.T) {
	top := driftTopology(t)
	cfg := Config{MaxSubsetSize: 2, AlwaysGoodTol: 0.02, NumericalPlanRepair: true, NumericalRepairMaxFrac: 1e-9}
	rng := rand.New(rand.NewSource(1))
	w := stream.NewWindow(top.NumPaths(), 400)
	var plan *Plan
	declined := false
	for epoch := 0; epoch < 12; epoch++ {
		driftEpoch(w, rng, top.NumPaths(), 100, epoch%5 == 3)
		res, next, err := ComputePlanned(context.Background(), top, w, cfg, plan)
		if err != nil {
			t.Fatal(err)
		}
		if next.NumericRepairCount() != 0 {
			t.Fatalf("epoch %d: Δ gate of 1e-9 admitted a patch", epoch)
		}
		if plan != nil && next != plan && next.RepairFailed() {
			declined = true
		}
		cold, err := Compute(context.Background(), top, w, cfg)
		if err != nil {
			t.Fatal(err)
		}
		resultsEqual(t, fmt.Sprintf("epoch %d", epoch), res, cold)
		plan = next
	}
	if !declined {
		t.Fatal("schedule never presented a frontier move to the gate")
	}
}

// Without the option, a frontier move must keep rebuilding cold — and
// the failed tier-1 attempt's duration must now be carried onto the
// fresh plan (the satellite bugfix) while a config-change rebuild
// carries nothing.
func TestRepairFailureTimingCarried(t *testing.T) {
	top := driftTopology(t)
	cfg := Config{MaxSubsetSize: 2, AlwaysGoodTol: 0.02}
	rng := rand.New(rand.NewSource(1))
	w := stream.NewWindow(top.NumPaths(), 400)
	var plan *Plan
	sawFailedRepair := false
	for epoch := 0; epoch < 12; epoch++ {
		driftEpoch(w, rng, top.NumPaths(), 100, epoch%5 == 3)
		res, next, err := ComputePlanned(context.Background(), top, w, cfg, plan)
		if err != nil {
			t.Fatal(err)
		}
		if next.NumericRepairCount() != 0 {
			t.Fatal("numeric repair ran without the option")
		}
		if plan != nil && next != plan && next.RepairFailed() {
			sawFailedRepair = true
			if _, rep, _ := next.StageTimes(); rep <= 0 {
				t.Fatalf("epoch %d: failed repair duration missing from the fresh plan", epoch)
			}
		}
		cold, err := Compute(context.Background(), top, w, cfg)
		if err != nil {
			t.Fatal(err)
		}
		resultsEqual(t, fmt.Sprintf("epoch %d", epoch), res, cold)
		plan = next
	}
	if !sawFailedRepair {
		t.Fatal("schedule never exercised a failed repair attempt")
	}
	// A config change invalidates without attempting repair: no failed
	// flag, no carried duration.
	cfg2 := cfg
	cfg2.MaxSubsetSize = 1
	_, next, err := ComputePlanned(context.Background(), top, w, cfg2, plan)
	if err != nil {
		t.Fatal(err)
	}
	if next == plan {
		t.Fatal("plan survived a config change")
	}
	if next.RepairFailed() {
		t.Fatal("config-change rebuild reported a failed repair")
	}
	if _, rep, _ := next.StageTimes(); rep != 0 {
		t.Fatal("config-change rebuild carried a repair duration")
	}
}

// ComputePlannedBatch with tier-2 enabled must reproduce the
// sequential chain bit for bit: the batch drains every pending run
// before a tier-2 patch rewrites the factorization, so each store
// solves against exactly the plan state its sequential solve saw.
func TestComputePlannedBatchMatchesSequentialNumeric(t *testing.T) {
	top := driftTopology(t)
	cfg := Config{MaxSubsetSize: 2, AlwaysGoodTol: 0.02, NumericalPlanRepair: true, NumericalRepairMaxFrac: 0.6}
	rng := rand.New(rand.NewSource(2))
	w := stream.NewWindow(top.NumPaths(), 400)
	var stores []observe.Store
	for epoch := 0; epoch < 12; epoch++ {
		driftEpoch(w, rng, top.NumPaths(), 100, epoch%5 == 3)
		stores = append(stores, w.Clone())
	}
	var plan *Plan
	sequential := make([]*Result, len(stores))
	seqInfos := make([]EpochInfo, len(stores))
	for i, rec := range stores {
		prevRepairs, prevNumeric, prevPlan := 0, 0, plan
		if plan != nil {
			prevRepairs, prevNumeric = plan.RepairCount(), plan.NumericRepairCount()
		}
		res, next, err := ComputePlanned(context.Background(), top, rec, cfg, plan)
		if err != nil {
			t.Fatal(err)
		}
		if next == prevPlan && prevPlan != nil {
			seqInfos[i] = EpochInfo{
				Warm:            true,
				Repaired:        next.RepairCount() > prevRepairs,
				RepairedNumeric: next.NumericRepairCount() > prevNumeric,
			}
		} else {
			seqInfos[i] = EpochInfo{RepairFailed: next.RepairFailed()}
		}
		sequential[i], plan = res, next
	}
	batched, infos, batchPlan, err := ComputePlannedBatch(context.Background(), top, stores, cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	numericInfos := 0
	for i := range stores {
		resultsEqual(t, fmt.Sprintf("store %d", i), batched[i], sequential[i])
		if infos[i] != seqInfos[i] {
			t.Fatalf("store %d: batch info %+v vs sequential %+v", i, infos[i], seqInfos[i])
		}
		if infos[i].RepairedNumeric {
			numericInfos++
		}
	}
	if numericInfos == 0 {
		t.Fatal("batch schedule never exercised a tier-2 repair")
	}
	if batchPlan.NumericRepairCount() != plan.NumericRepairCount() {
		t.Fatalf("batch plan saw %d numeric repairs, sequential %d",
			batchPlan.NumericRepairCount(), plan.NumericRepairCount())
	}
}
