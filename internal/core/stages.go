package core

import (
	"context"
	"runtime/pprof"
)

// Profiler stage labels. Each solver stage tags its goroutine (and,
// through the build gang, its workers) with a stage=<name> pprof label
// so CPU profiles attribute rebuild time to the enumerate/seeds/augment
// /qr phases and epoch serving to solve, matching the stage split of
// Plan.StageTimes. The label contexts are built once and applied with
// SetGoroutineLabels directly — pprof.Do would allocate a labelled
// context per call, which the warm solve path cannot afford.
var stageCtx = func() map[string]context.Context {
	m := map[string]context.Context{}
	for _, s := range []string{"enumerate", "seeds", "augment", "qr", "solve"} {
		m[s] = pprof.WithLabels(context.Background(), pprof.Labels("stage", s))
	}
	return m
}()

var noStageCtx = context.Background()

// setStage tags the calling goroutine with a solver stage label.
func setStage(b *builder, name string) {
	ctx := stageCtx[name]
	pprof.SetGoroutineLabels(ctx)
	if b != nil {
		b.stage = ctx
		if b.gang != nil {
			b.gang.labels = ctx
		}
	}
}

// clearStage removes the stage label from the calling goroutine.
func clearStage() { pprof.SetGoroutineLabels(noStageCtx) }
