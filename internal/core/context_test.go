package core

import (
	"context"
	"errors"
	"math/rand"
	"testing"

	"repro/internal/bitset"
	"repro/internal/observe"
	"repro/internal/topology"
)

// A context cancelled before the solve starts must surface as ctx.Err()
// from every phase entry point, without computing anything.
func TestComputeCancelledContext(t *testing.T) {
	top := topology.Fig1Case1()
	rec := observe.NewRecorder(top.NumPaths())
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 200; i++ {
		cong := bitset.New(top.NumPaths())
		for p := 0; p < top.NumPaths(); p++ {
			if rng.Float64() < 0.3 {
				cong.Add(p)
			}
		}
		rec.Add(cong)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := Compute(ctx, top, rec, Config{MaxSubsetSize: 2})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if res != nil {
		t.Fatal("cancelled solve returned a result")
	}
	// A nil context means Background and must still solve.
	if _, err := Compute(nil, top, rec, Config{MaxSubsetSize: 2}); err != nil {
		t.Fatalf("nil ctx: %v", err)
	}
}
