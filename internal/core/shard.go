package core

import "repro/internal/bitset"

// NewShardResult reconstructs a per-shard Result from its exported
// fields, e.g. after decoding one from a wire format. The result is
// suitable as an input to MergeResults, which reads only the exported
// block fields (Subsets, PathSets, Rank, Nullity, ClampedRows) and
// re-derives the global link partitions itself; per-link queries on the
// shard result alone are not supported because it carries no observe
// store.
func NewShardResult(subsets []SubsetResult, pathSets []*bitset.Set, rank, nullity, clampedRows int) *Result {
	r := &Result{
		Subsets:     subsets,
		PathSets:    pathSets,
		Rank:        rank,
		Nullity:     nullity,
		ClampedRows: clampedRows,
		index:       make(map[string]int, len(subsets)),
	}
	for i, s := range subsets {
		r.index[s.Links.Key()] = i
	}
	return r
}
