package core

import (
	"context"
	"math"
	"math/rand"
	"testing"

	"repro/internal/bitset"
	"repro/internal/brite"
	"repro/internal/linalg"
	"repro/internal/netsim"
	"repro/internal/observe"
	"repro/internal/topology"
)

// buildRandomRun produces a small Brite overlay and a perfect-E2E
// monitoring record under correlated congestion.
func buildRandomRun(t *testing.T, seed int64) (*topology.Topology, *observe.Recorder) {
	t.Helper()
	cfg := brite.DefaultConfig()
	cfg.NumAS = 15
	cfg.RoutersPerAS = 4
	top, _, err := brite.DenseTopology(cfg, 70, rand.New(rand.NewSource(seed)))
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(seed + 1000))
	mc := netsim.DefaultConfig(netsim.NoIndependence)
	mc.PerfectE2E = true
	model, err := netsim.NewModel(top, mc, 400, rng)
	if err != nil {
		t.Fatal(err)
	}
	rec := observe.NewRecorder(top.NumPaths())
	for i := 0; i < 400; i++ {
		rec.Add(model.Interval(i, rng).CongestedPaths)
	}
	return top, rec
}

// The selected system must be consistent: every equation's row over the
// subset universe, and the final null space must annihilate all of them
// (the invariant Algorithm 2 maintains).
func TestAlgorithm1SystemInvariants(t *testing.T) {
	top, rec := buildRandomRun(t, 1)
	b := newBuilder(top, rec, Config{MaxSubsetSize: 2, AlwaysGoodTol: 0})
	b.enumerate(context.Background())
	b.seed(context.Background())
	seedRows := len(b.rows)
	b.augment(context.Background())
	if len(b.rows) < seedRows {
		t.Fatal("augmentation removed rows")
	}
	// Null space invariant: every selected row is annihilated by N.
	for _, cols := range b.rows {
		r := b.denseRow(cols)
		if !linalg.InRowSpace(b.nullspace, r) {
			t.Fatal("selected row not annihilated by the maintained null space")
		}
	}
	// Rank accounting: rank(selected matrix) + nullity == |Ê|.
	m := linalg.NewMatrix(len(b.rows), len(b.subsets))
	for ri, cols := range b.rows {
		for _, c := range cols {
			m.Set(ri, c, 1)
		}
	}
	rank := linalg.RankRREF(m)
	if rank+b.nullspace.Cols != len(b.subsets) {
		t.Fatalf("rank %d + nullity %d != universe %d", rank, b.nullspace.Cols, len(b.subsets))
	}
	// Selection economy: the number of selected path sets should not
	// wildly exceed the achieved rank (each augmentation row increases
	// rank by one; only seeds can be redundant).
	if len(b.rows) > seedRows+rank {
		t.Fatalf("selected %d rows for rank %d with %d seeds", len(b.rows), rank, seedRows)
	}
}

// Augmentation must never decrease identifiability: running the full
// algorithm identifies at least as many subsets as solving the seed
// system alone.
func TestAugmentationIncreasesIdentifiability(t *testing.T) {
	top, rec := buildRandomRun(t, 2)

	full, err := Compute(context.Background(), top, rec, Config{MaxSubsetSize: 2})
	if err != nil {
		t.Fatal(err)
	}
	countIdent := func(r *Result) int {
		n := 0
		for _, s := range r.Subsets {
			if s.Identifiable {
				n++
			}
		}
		return n
	}
	// Disable augmentation by capping the enumeration at one candidate
	// per subset (the seeds themselves are always tried first).
	b := newBuilder(top, rec, Config{MaxSubsetSize: 2})
	b.enumerate(context.Background())
	b.seed(context.Background())
	plan, err := b.plan(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	res, err := plan.solveEpoch(context.Background(), rec)
	if err != nil {
		t.Fatal(err)
	}
	if countIdent(full) < countIdent(res) {
		t.Fatalf("full run identified %d subsets, seeds alone %d", countIdent(full), countIdent(res))
	}
}

// The identified probabilities must be close to the ground truth on a
// noise-free (perfect E2E) run — the integration-level accuracy check.
func TestEndToEndAccuracyPerfectObservation(t *testing.T) {
	cfg := brite.DefaultConfig()
	cfg.NumAS = 15
	cfg.RoutersPerAS = 4
	top, _, err := brite.DenseTopology(cfg, 70, rand.New(rand.NewSource(3)))
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(33))
	mc := netsim.DefaultConfig(netsim.NoIndependence)
	mc.PerfectE2E = true
	const T = 6000
	model, err := netsim.NewModel(top, mc, T, rng)
	if err != nil {
		t.Fatal(err)
	}
	rec := observe.NewRecorder(top.NumPaths())
	for i := 0; i < T; i++ {
		rec.Add(model.Interval(i, rng).CongestedPaths)
	}
	res, err := Compute(context.Background(), top, rec, Config{MaxSubsetSize: 2})
	if err != nil {
		t.Fatal(err)
	}
	identified := 0
	for e := 0; e < top.NumLinks(); e++ {
		g, ok := res.LinkGoodProb(e)
		if !ok {
			continue
		}
		identified++
		truth := model.TrueLinkProb(e)
		if math.Abs((1-g)-truth) > 0.08 {
			t.Errorf("link %d: estimated %.3f, true %.3f", e, 1-g, truth)
		}
	}
	if identified < top.NumLinks()/3 {
		t.Fatalf("only %d/%d links identified on a dense overlay", identified, top.NumLinks())
	}
}

// Failure injection: a recorder in which every path is congested in
// every interval (e.g. a broken prober) must not crash the algorithm.
func TestAllCongestedObservations(t *testing.T) {
	top := topology.Fig1Case1()
	rec := observe.NewRecorder(top.NumPaths())
	all := bitset.FromIndices(3, 0, 1, 2)
	for i := 0; i < 50; i++ {
		rec.Add(all)
	}
	res, err := Compute(context.Background(), top, rec, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if res.ClampedRows == 0 {
		t.Fatal("expected clamped rows when nothing is ever good")
	}
	// Estimates, where identified, must be valid probabilities.
	for _, s := range res.Subsets {
		if s.Identifiable && (s.GoodProb < 0 || s.GoodProb > 1) {
			t.Fatalf("subset %s: invalid probability %v", s.Links, s.GoodProb)
		}
	}
}

// Failure injection: an all-good monitoring period must mark every link
// always-good and produce congestion probability 0 everywhere.
func TestAllGoodObservations(t *testing.T) {
	top := topology.Fig1Case1()
	rec := observe.NewRecorder(top.NumPaths())
	for i := 0; i < 50; i++ {
		rec.Add(bitset.New(3))
	}
	res, err := Compute(context.Background(), top, rec, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.PotentiallyCongested.IsEmpty() {
		t.Fatalf("potentially congested = %s, want empty", res.PotentiallyCongested)
	}
	for e := 0; e < 4; e++ {
		if p, exact := res.LinkCongestProbOrFallback(e); p != 0 || !exact {
			t.Fatalf("link %d: p=%v exact=%v", e, p, exact)
		}
	}
}

// The MaxEnumPathSets cap must bound the augmentation work without
// breaking the system invariants.
func TestMaxEnumPathSetsCap(t *testing.T) {
	top, rec := buildRandomRun(t, 4)
	res, err := Compute(context.Background(), top, rec, Config{MaxSubsetSize: 2, MaxEnumPathSets: 4})
	if err != nil {
		t.Fatal(err)
	}
	resFull, err := Compute(context.Background(), top, rec, Config{MaxSubsetSize: 2, MaxEnumPathSets: 512})
	if err != nil {
		t.Fatal(err)
	}
	count := func(r *Result) int {
		n := 0
		for _, s := range r.Subsets {
			if s.Identifiable {
				n++
			}
		}
		return n
	}
	if count(res) > count(resFull) {
		t.Fatalf("tighter cap identified more subsets (%d > %d)?", count(res), count(resFull))
	}
}
