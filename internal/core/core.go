// Package core implements the paper's primary contribution: the
// Correlation-complete algorithm for the Congestion Probability
// Computation problem (§5).
//
// Under Separability (Assumption 1), E2E Monitoring (Assumption 2) and
// Correlation Sets (Assumption 5), the probability that all paths of a
// path set P are simultaneously good factors per correlation set
// (Eq. 1):
//
//	P(∩_{p∈P} Y_p=0) = Π_{C∈C*} P(∩_{e∈Links(P)∩C} X_e=0)
//
// Taking logarithms turns each path set into a linear equation whose
// unknowns are log g(E), where g(E) is the probability that all links
// of the potentially congested correlation subset E are good. The
// algorithm:
//
//  1. determines the potentially congested links from the always-good
//     paths (§5.2);
//  2. seeds the system with one path set Paths(E) \ Paths(Ē) per
//     enumerated subset E (Algorithm 1, lines 1–5);
//  3. grows the system by scanning, in descending Hamming weight of the
//     null-space rows, for path sets whose equations leave the current
//     row space, updating the null space incrementally with the
//     rank-one projection of Algorithm 2 (lines 6–22);
//  4. solves the selected equations by least squares in the log domain
//     against the empirical frequencies, and reports each subset's
//     g(E); subsets whose direction remains in the final null space are
//     reported as unidentifiable rather than guessed.
//
// The MaxSubsetSize knob is the paper's resource control (§4): only
// subsets up to that size are enumerated and solved for.
package core

import (
	"math"
	"sort"

	"repro/internal/bitset"
	"repro/internal/linalg"
	"repro/internal/observe"
	"repro/internal/topology"
)

// Config tunes the Correlation-complete algorithm.
type Config struct {
	// MaxSubsetSize bounds the size of the correlation subsets whose
	// congestion probability is computed (the paper's "sets of one,
	// two, or three links"). 0 means unbounded.
	MaxSubsetSize int

	// AlwaysGoodTol is the congested-fraction tolerance under which a
	// path counts as always good. 0 is the paper's strict definition;
	// a small positive value absorbs probing false positives.
	AlwaysGoodTol float64

	// MaxEnumPathSets caps, per correlation subset, how many candidate
	// path sets the augmentation loop enumerates (the paper enumerates
	// all 2^n2; the cap bounds the inner loop on large topologies).
	// 0 means the default of 128.
	MaxEnumPathSets int

	// RegisterSinglePaths also registers the correlation subsets
	// appearing in per-path equations, enriching the unknown universe
	// that augmentation rows may reference. Default true (disable only
	// in tests).
	DisableSinglePathRegistration bool

	// Concurrency bounds the worker goroutines used for the per-subset
	// coverage and isolation-path-set computation of the enumeration
	// phase (the dominant topology-query cost on large instances). The
	// result is bit-identical to the serial path: workers write only
	// their own subset's slot. 0 (the default) and negative use
	// GOMAXPROCS; 1 is the explicit serial opt-out.
	Concurrency int

	// RestrictCorrSets restricts the solve to the listed correlation
	// sets (ascending indices) and the paths covering their links —
	// one shard of a topology.Partition. The restriction must be closed
	// under path coverage (no path may straddle the boundary), which is
	// exactly what a partition shard guarantees; the solved equations
	// and subset probabilities are then the shard's block of the full
	// system. nil means the whole topology.
	RestrictCorrSets []int

	// DisablePlanRepair turns off the O(Δ) structural-plan repair that
	// ComputePlanned attempts when the always-good path set drifts (see
	// Plan.Repair): with it set, any drift falls back to the
	// from-scratch rebuild. Results are bit-identical either way; the
	// knob exists as an operational escape hatch and for the repair ≡
	// rebuild property tests.
	DisablePlanRepair bool

	// NumericalPlanRepair enables the tier-2 repair (Plan.RepairNumeric)
	// for drift that moves the good-link frontier: the retained QR
	// factorization is patched column-by-column instead of rebuilt.
	// Off by default because it trades the bit-identity contract for
	// coverage — a patched epoch is numerically, not bitwise, equivalent
	// to the rebuild it skipped (see DESIGN.md "Plan repair"). Tier-1
	// repair still runs first and stays bit-identical.
	NumericalPlanRepair bool

	// NumericalRepairMaxFrac caps how large a frontier move the tier-2
	// repair absorbs: when the potentially-congested link set's
	// symmetric difference exceeds this fraction of the (union) link
	// universe, the repair declines and the cold rebuild runs — past
	// that point patching costs more than it saves and drifts further
	// from the rebuild's structural selection. 0 means the default
	// (DefaultNumericalRepairMaxFrac).
	NumericalRepairMaxFrac float64
}

// DefaultNumericalRepairMaxFrac is the Δ gate used when
// Config.NumericalRepairMaxFrac is zero: frontier moves touching more
// than a quarter of the potentially-congested universe rebuild cold.
const DefaultNumericalRepairMaxFrac = 0.25

// DefaultConfig returns the configuration used by the experiments:
// subsets up to size 2, strict always-good definition.
func DefaultConfig() Config {
	return Config{MaxSubsetSize: 2}
}

// SubsetResult is the computed probability of one correlation subset.
type SubsetResult struct {
	Links        *bitset.Set // the subset E
	CorrSet      int         // its correlation set
	GoodProb     float64     // g(E) = P(all links in E good); NaN if not identifiable
	Identifiable bool
}

// Result is the output of the Correlation-complete algorithm.
type Result struct {
	Subsets []SubsetResult
	index   map[string]int // subset key -> index into Subsets

	// PathSets are the selected path sets P̂, in selection order; one
	// equation per entry.
	PathSets []*bitset.Set

	// Rank and Nullity describe the final system: Nullity > 0 means
	// Identifiability++ failed for some subsets.
	Rank, Nullity int

	// PotentiallyCongested holds the links not traversed by any
	// always-good path; AlwaysGoodLinks is its complement among links
	// covered by at least one path.
	PotentiallyCongested *bitset.Set
	AlwaysGoodLinks      *bitset.Set

	// ClampedRows counts equations whose empirical good frequency was
	// zero and had to be clamped before taking the logarithm.
	ClampedRows int

	top *topology.Topology
	rec observe.Store
}

// SubsetGoodProb returns g(E) for the subset with exactly the given
// links. ok is false when the subset is unknown or unidentifiable.
func (r *Result) SubsetGoodProb(links *bitset.Set) (float64, bool) {
	sc := r.getQueryScratch()
	defer putQueryScratch(sc)
	return r.subsetGoodProb(sc, links)
}

func (r *Result) subsetGoodProb(sc *queryScratch, links *bitset.Set) (float64, bool) {
	// Links on always-good paths contribute a factor of 1: strip them.
	eff := links.IntersectInto(r.PotentiallyCongested, sc.eff)
	if eff.IsEmpty() {
		return 1, true
	}
	i, ok := sc.lookup(r, eff)
	if !ok || !r.Subsets[i].Identifiable {
		return math.NaN(), false
	}
	return r.Subsets[i].GoodProb, true
}

// LinkGoodProb returns g({e}).
func (r *Result) LinkGoodProb(e int) (float64, bool) {
	sc := r.getQueryScratch()
	defer putQueryScratch(sc)
	return r.linkGoodProb(sc, e)
}

func (r *Result) linkGoodProb(sc *queryScratch, e int) (float64, bool) {
	sc.oneLink.Clear()
	sc.oneLink.Add(e)
	return r.subsetGoodProb(sc, sc.oneLink)
}

// CongestedProb returns P(all links in E congested) for an arbitrary
// link set E (possibly spanning correlation sets), via
// inclusion–exclusion over E's subsets:
//
//	P(∩ X_e=1) = Σ_{S⊆E} (−1)^{|S|} P(∩_{e∈S} X_e=0)
//
// where each P(∩_{e∈S} X_e=0) factors per correlation set. ok is false
// if any required sub-subset probability is unavailable. E must have at
// most 20 links.
func (r *Result) CongestedProb(links *bitset.Set) (float64, bool) {
	ids := links.Indices()
	if len(ids) > 20 {
		return math.NaN(), false
	}
	sc := r.getQueryScratch()
	defer putQueryScratch(sc)
	total := 0.0
	for mask := 0; mask < 1<<len(ids); mask++ {
		sc.links.Clear()
		bits := 0
		for b, li := range ids {
			if mask&(1<<b) != 0 {
				sc.links.Add(li)
				bits++
			}
		}
		g, ok := r.goodProbFactored(sc, sc.links)
		if !ok {
			return math.NaN(), false
		}
		if bits%2 == 0 {
			total += g
		} else {
			total -= g
		}
	}
	// Inclusion–exclusion over noisy estimates can drift slightly
	// outside [0,1].
	return clamp01(total), true
}

// goodProbFactored evaluates P(all links in S good) by factoring S per
// correlation set and multiplying the per-set subset probabilities.
// The factoring runs in first-encounter order so the float
// multiplication order — and hence the exact result bits — never
// depends on iteration order.
func (r *Result) goodProbFactored(sc *queryScratch, s *bitset.Set) (float64, bool) {
	eff := s.IntersectInto(r.PotentiallyCongested, sc.eff)
	if eff.IsEmpty() {
		return 1, true
	}
	sc.decomposePerSet(r, eff)
	g := 1.0
	for _, c := range sc.setOrder {
		i, ok := sc.lookup(r, sc.perSet[c])
		if !ok || !r.Subsets[i].Identifiable {
			return math.NaN(), false
		}
		g *= r.Subsets[i].GoodProb
	}
	return g, true
}

// LinkCongestProbOrFallback returns the best available estimate of
// P(X_e = 1) for every link: the identified 1−g({e}) when available,
// 0 for links on always-good paths, and otherwise the observable
// fallback FallbackLinkProb. exact reports whether the identified value
// was used.
func (r *Result) LinkCongestProbOrFallback(e int) (p float64, exact bool) {
	if !r.PotentiallyCongested.Contains(e) {
		return 0, true
	}
	sc := r.getQueryScratch()
	defer putQueryScratch(sc)
	if g, ok := r.linkGoodProb(sc, e); ok {
		return clamp01(1 - g), true
	}
	// The singleton is unidentifiable; fall back along a chain of
	// weaker observables.
	//
	// Common-cause evidence: when e is covered by three or more paths,
	// the only plausible reason for ALL of them to congest in the same
	// intervals repeatedly is a shared cause. The joint frequency,
	// discounted by the strongest *identified* shared cause (an
	// identified subset whose coverage contains e's), estimates e's own
	// contribution; for an innocent e with no congested co-cover it is
	// ≈0 because its paths congest independently of one another.
	if cover := r.top.LinkPaths(e); cover.Count() >= 8 {
		ub := r.rec.AllCongestedFreq(cover)
		explained := 0.0
		if ub > 0 {
			for _, s := range r.Subsets {
				if !s.Identifiable || s.Links.Contains(e) {
					continue
				}
				if p := 1 - s.GoodProb; p > explained {
					sc.paths.Clear()
					s.Links.ForEach(func(li int) bool {
						sc.paths.UnionWith(r.top.LinkPaths(li))
						return true
					})
					if cover.SubsetOf(sc.paths) {
						explained = p
					}
				}
			}
		}
		return clamp01(ub - explained), false
	}
	if p, ok := r.subsetInformedFallback(sc, e); ok {
		return p, false
	}
	if p, ok := r.residualFallback(sc, e); ok {
		return p, false
	}
	return FallbackLinkProb(r.top, r.rec, r.PotentiallyCongested, e), false
}

// residualFallback estimates P(X_e=1) for a link none of whose subsets
// were identified, by discounting each covering path's observed
// congestion by the identified factors of its equation: from Eq. 1,
// P̂(p good) = Π identified g(E) · Π unidentified g(E), so the
// unidentified subsets of p jointly account for a residual congestion
// mass 1 − P̂(p good)/Π_identified g(E); that residual is split
// uniformly across the links of p's unidentified subsets (Homogeneity
// prior), and the tightest covering path wins.
func (r *Result) residualFallback(sc *queryScratch, e int) (float64, bool) {
	cover := r.top.LinkPaths(e)
	if cover.IsEmpty() {
		return 0, false
	}
	best, found := 1.0, false
	one := sc.onePath
	cover.ForEach(func(pi int) bool {
		one.Clear()
		one.Add(pi)
		links := r.top.PathLinks(pi).IntersectInto(r.PotentiallyCongested, sc.links)
		// Decompose the path's equation per correlation set, in
		// first-encounter order for a deterministic product.
		sc.decomposePerSet(r, links)
		prodKnown := 1.0
		unknownLinks := 0
		for _, c := range sc.setOrder {
			sub := sc.perSet[c]
			if j, ok := sc.lookup(r, sub); ok && r.Subsets[j].Identifiable {
				prodKnown *= r.Subsets[j].GoodProb
			} else {
				unknownLinks += sub.Count()
			}
		}
		if unknownLinks == 0 || prodKnown < 1e-6 {
			return true
		}
		residual := clamp01(1 - r.rec.GoodFreq(one)/prodKnown)
		split := residual / float64(unknownLinks)
		if split < best {
			best, found = split, true
		}
		return true
	})
	if !found {
		return 0, false
	}
	return best, true
}

// subsetInformedFallback estimates P(X_e=1) from the smallest
// identified correlation subset S containing e. When the complement
// part S∖{e} is itself identified, the conditional estimate
// 1 − g(S)/g(S∖{e}) is exact whenever e is independent of its subset
// siblings (and correctly ≈0 when e is always good); otherwise the
// subset's congestion mass 1 − g(S) is split uniformly over its
// members.
func (r *Result) subsetInformedFallback(sc *queryScratch, e int) (float64, bool) {
	best := -1
	for i, s := range r.Subsets {
		if !s.Identifiable || !s.Links.Contains(e) || s.Links.Count() < 2 {
			continue
		}
		if best < 0 || s.Links.Count() < r.Subsets[best].Links.Count() {
			best = i
		}
	}
	if best < 0 {
		return 0, false
	}
	s := r.Subsets[best]
	rest := s.Links.IntersectInto(s.Links, sc.links)
	rest.Remove(e)
	if j, ok := sc.lookup(r, rest); ok && r.Subsets[j].Identifiable && r.Subsets[j].GoodProb > 1e-9 {
		return clamp01(1 - s.GoodProb/r.Subsets[j].GoodProb), true
	}
	return clamp01((1 - s.GoodProb) / float64(s.Links.Count())), true
}

// FallbackLinkProb is the shared estimator for links no algorithm can
// identify: the frequency with which all of e's covering paths were
// simultaneously congested (an upper bound on P(X_e=1), since e
// congested forces them all congested by Separability), split uniformly
// across the potentially congested links of e's tightest covering path
// — a Homogeneity-style prior that avoids blaming every link on a
// congested path for the whole path's congestion.
func FallbackLinkProb(top *topology.Topology, rec observe.Store, potentiallyCongested *bitset.Set, e int) float64 {
	cover := top.LinkPaths(e)
	if cover.IsEmpty() {
		return 0
	}
	upper := rec.AllCongestedFreq(cover)
	if upper == 0 {
		return 0
	}
	minCand := top.NumLinks()
	cover.ForEach(func(pi int) bool {
		c := top.PathLinks(pi).IntersectCount(potentiallyCongested)
		if c < minCand {
			minCand = c
		}
		return true
	})
	if minCand < 1 {
		minCand = 1
	}
	return upper / float64(minCand)
}

func clamp01(x float64) float64 {
	if x < 0 {
		return 0
	}
	if x > 1 {
		return 1
	}
	return x
}

// sortSubsetsByNullWeight returns subset indices ordered by descending
// Hamming weight of the corresponding rows of N (the paper's
// SortByHammingWeight): subsets whose null-space row has many non-zero
// entries are most likely to yield a rank-increasing path set.
// Both output slices are caller-provided (len == count) so the
// augmentation loop can reuse its arena buffers round after round.
func sortSubsetsByNullWeight(n *linalg.Matrix, count int, order, weights []int) []int {
	for i := 0; i < count; i++ {
		weights[i] = 0
	}
	for i := 0; i < count && i < n.Rows; i++ {
		w := 0
		row := n.Row(i)
		for _, v := range row {
			if math.Abs(v) > 1e-9 {
				w++
			}
		}
		weights[i] = w
	}
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool { return weights[order[a]] > weights[order[b]] })
	return order
}
