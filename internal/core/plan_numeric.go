package core

import (
	"sort"

	"repro/internal/bitset"
)

// RepairNumeric is the tier-2 repair: it absorbs always-good drift
// that *moves* the good-link frontier — the class tier-1 Repair
// rejects — by patching the retained factorization instead of
// rebuilding. good must already be restricted to the plan's shard.
//
// Holding the selected path sets P̂ and the active-row verdicts fixed,
// a frontier move transforms the reduced system purely by column
// operations: each path set's equation re-decomposes under the new
// potentially-congested link set (links entering the set add unknowns
// to its groups, links leaving it drop out), while the right-hand
// sides — the empirical log good-frequencies of the path sets — do not
// depend on the frontier at all. So the repair:
//
//  1. re-derives the potentially-congested set from the drifted good
//     set (intersected with the shard's links when restricted) and
//     declines if the symmetric difference exceeds
//     Config.NumericalRepairMaxFrac of the link universe — past that
//     the patch costs more than it saves;
//  2. rebuilds the unknown universe Ê as the surviving old subsets
//     (those still inside the new potentially-congested set, keeping
//     their relative order) plus any new subsets the re-decomposed
//     equations reference, appended in encounter order;
//  3. re-derives every selected path set's row under the new frontier
//     (the same deterministic per-correlation-set decomposition the
//     builder uses) and diffs each retained QR column's support over
//     the active rows: unchanged columns stay in place, changed or
//     dissolved ones are deleted (QR.DeleteCol), and new or reshaped
//     ones are appended (QR.AppendCol) as 0/1 indicators;
//  4. re-verifies full column rank incrementally on the patched
//     factorization and falls back to the cold rebuild on any rank
//     loss — the incremental identifiability check.
//
// All staging happens on a clone of the factorization, so a failed
// repair (returning false) leaves the plan untouched and still valid
// for the batch path's pending flush. On success the plan is committed
// to the new frontier and NumericRepairCount increments.
//
// The repaired epoch is numerically — not bitwise — equivalent to the
// rebuild it skipped: the patched factorization solves exactly the
// re-derived system to within factorization tolerance
// (property-tested), but a cold rebuild may additionally select path
// sets and enumerate unknowns the retained plan never saw, so
// estimates agree to solver tolerance only where the two structural
// selections coincide. That relaxation is why the tier sits behind
// Config.NumericalPlanRepair.
func (pl *Plan) RepairNumeric(good *bitset.Set) bool {
	if pl.qr == nil || len(pl.colMap) == 0 || len(pl.rows) == 0 {
		// Trivial retained system: nothing worth patching, and the
		// rebuild is cheap in exactly these cases.
		return false
	}
	newGoodLinks := pl.top.LinksOf(good)
	newPot := pl.top.PotentiallyCongestedLinks(newGoodLinks)
	if pl.shardLinks != nil {
		newPot = newPot.Intersect(pl.shardLinks)
	}
	frac := pl.cfg.NumericalRepairMaxFrac
	if frac <= 0 {
		frac = DefaultNumericalRepairMaxFrac
	}
	delta := pl.potLinks.SymmetricDifferenceCount(newPot)
	universe := pl.potLinks.UnionCount(newPot)
	if universe == 0 || float64(delta) > frac*float64(universe) {
		return false
	}

	// Rebuild the unknown universe: survivors keep their relative
	// order, new subsets from the re-decomposed rows append behind.
	oldToNew := make([]int, len(pl.subsets))
	newSubsets := make([]subsetEntry, 0, len(pl.subsets))
	newIndex := make(map[string]int, len(pl.subsets))
	for i, s := range pl.subsets {
		if !s.links.SubsetOf(newPot) {
			oldToNew[i] = -1
			continue
		}
		oldToNew[i] = len(newSubsets)
		newIndex[s.links.Key()] = len(newSubsets)
		newSubsets = append(newSubsets, s)
	}

	// Re-derive every selected path set's row under the new frontier,
	// with the builder's deterministic first-encounter decomposition.
	newRows := make([][]int, len(pl.rows))
	for ri, ps := range pl.pathSets {
		links := pl.top.LinksOf(ps)
		bySet := map[int]*bitset.Set{}
		var setOrder []int
		links.ForEach(func(li int) bool {
			if !newPot.Contains(li) {
				return true // good link: factor 1, drops out
			}
			c := pl.top.CorrSetOf(li)
			if bySet[c] == nil {
				bySet[c] = bitset.New(pl.top.NumLinks())
				setOrder = append(setOrder, c)
			}
			bySet[c].Add(li)
			return true
		})
		var cols []int
		for _, c := range setOrder {
			sub := bySet[c]
			key := sub.Key()
			idx, ok := newIndex[key]
			if !ok {
				idx = len(newSubsets)
				newIndex[key] = idx
				newSubsets = append(newSubsets, subsetEntry{links: sub.Clone(), corrSet: c})
			}
			cols = append(cols, idx)
		}
		sort.Ints(cols)
		newRows[ri] = cols
	}

	// Column support over the active rows, old and new: the retained QR
	// column for a subset is its 0/1 indicator over the active rows, so
	// equal support means the column — and its factorization state —
	// carries over untouched.
	oldSup := pl.activeSupport(pl.rows)
	newSup := pl.activeSupport(newRows)

	m, _ := pl.qr.Dims()
	rowPos := make([]int, len(pl.rows))
	active := 0
	for ri := range pl.rows {
		rowPos[ri] = -1
		if pl.activeRows[ri] {
			rowPos[ri] = active
			active++
		}
	}
	if active != m {
		return false // retained state inconsistent; let the rebuild re-derive it
	}

	keep := make([]bool, len(pl.colMap))
	covered := make(map[int]bool, len(newSup))
	newColMap := make([]int, 0, len(newSup))
	for j, oi := range pl.colMap {
		ni := oldToNew[oi]
		if ni < 0 {
			continue
		}
		if sup, ok := newSup[ni]; ok && intsEqual(oldSup[oi], sup) {
			keep[j] = true
			covered[ni] = true
			newColMap = append(newColMap, ni)
		}
	}
	var appends []int
	for ni := range newSup {
		if !covered[ni] {
			appends = append(appends, ni)
		}
	}
	sort.Ints(appends)

	// Patch a clone: deletions first (descending, so indices stay
	// valid), then the appended indicator columns, then the incremental
	// rank re-verification. Any failure discards the clone.
	qr := pl.qr.Clone()
	for j := len(pl.colMap) - 1; j >= 0; j-- {
		if !keep[j] {
			qr.DeleteCol(j)
		}
	}
	col := make([]float64, m)
	for _, ni := range appends {
		for i := range col {
			col[i] = 0
		}
		for _, ri := range newSup[ni] {
			col[rowPos[ri]] = 1
		}
		qr.AppendCol(col)
		newColMap = append(newColMap, ni)
	}
	if !qr.FullColumnRank() {
		return false // rank loss: the drift broke identifiability; rebuild cold
	}

	pl.subsets = newSubsets
	pl.index = newIndex
	pl.rows = newRows
	pl.potLinks = newPot
	pl.goodLinks = newGoodLinks
	pl.goodKey = good.Key()
	pl.colMap = newColMap
	pl.qr = qr
	pl.numRepairs++
	return true
}

// activeSupport maps each subset index referenced by an active row to
// the ascending list of active row indices referencing it — the
// support signature of its QR column.
func (pl *Plan) activeSupport(rows [][]int) map[int][]int {
	sup := map[int][]int{}
	for ri, cols := range rows {
		if !pl.activeRows[ri] {
			continue
		}
		for _, c := range cols {
			sup[c] = append(sup[c], ri)
		}
	}
	return sup
}

func intsEqual(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i, v := range a {
		if b[i] != v {
			return false
		}
	}
	return true
}
