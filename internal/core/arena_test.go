package core

import (
	"fmt"
	"sync/atomic"
	"testing"
)

// comboIter must stream candidates in exactly the order of
// enumerateSubsetsOfPaths — the augmentation loop's selection depends
// on it.
func TestComboIterMatchesEnumerateSubsetsOfPaths(t *testing.T) {
	for _, paths := range [][]int{
		{},
		{7},
		{3, 9},
		{1, 4, 6},
		{2, 3, 5, 8, 13},
		{0, 1, 2, 3, 4, 5},
	} {
		var want [][]int
		enumerateSubsetsOfPaths(paths, func(chosen []int) bool {
			want = append(want, append([]int(nil), chosen...))
			return true
		})
		var it comboIter
		it.reset(paths, nil)
		var got [][]int
		for it.next() {
			got = append(got, it.appendChosen(nil))
		}
		if len(got) != len(want) {
			t.Fatalf("paths %v: %d subsets, want %d", paths, len(got), len(want))
		}
		for i := range want {
			if fmt.Sprint(got[i]) != fmt.Sprint(want[i]) {
				t.Fatalf("paths %v: subset %d = %v, want %v", paths, i, got[i], want[i])
			}
		}
	}
}

// The gang must run every index exactly once per dispatch, with worker
// ids inside [0, n), across repeated rounds on the same workers.
func TestGangRunsEveryIndexOnce(t *testing.T) {
	g := newGang(4)
	defer g.stop()
	for round := 0; round < 50; round++ {
		hits := make([]atomic.Int32, 37)
		g.run(0, len(hits), func(w, i int) {
			if w < 0 || w >= 4 {
				panic("worker id out of range")
			}
			hits[i].Add(1)
		})
		for i := range hits {
			if n := hits[i].Load(); n != 1 {
				t.Fatalf("round %d: index %d ran %d times", round, i, n)
			}
		}
	}
	// Empty and single-index dispatches must also terminate.
	g.run(5, 5, func(w, i int) { t.Fatal("empty range dispatched") })
	ran := false
	g.run(3, 4, func(w, i int) { ran = i == 3 })
	if !ran {
		t.Fatal("single-index dispatch did not run")
	}
}
