package core

import (
	"context"
	"sort"

	"repro/internal/bitset"
	"repro/internal/linalg"
	"repro/internal/observe"
	"repro/internal/parallel"
	"repro/internal/topology"
)

// builder carries the state of one Correlation-complete run.
type builder struct {
	top *topology.Topology
	rec observe.Store
	cfg Config

	alwaysGoodPaths *bitset.Set
	goodLinks       *bitset.Set // links on an always-good path
	potLinks        *bitset.Set // potentially congested links

	// corrSets is the correlation-set universe of this run: the
	// restriction from cfg.RestrictCorrSets, or every set. When
	// restricted, restrictPaths holds the shard's paths and shardLinks
	// its links (nil otherwise) and alwaysGoodPaths/goodLinks/potLinks
	// are confined to the shard.
	corrSets      []int
	restrictPaths *bitset.Set
	shardLinks    *bitset.Set

	// The unknown universe Ê: potentially congested correlation
	// subsets, each identified by its bitset key.
	subsets []subsetEntry
	index   map[string]int
	frozen  bool // once frozen, rows referencing unseen subsets are invalid

	// Selected path sets P̂ and their rows.
	pathSets []*bitset.Set
	usedKeys map[string]bool
	rows     [][]int // per path set: sorted subset indices appearing in its equation

	nullspace *linalg.Matrix
	rowBuf    []float64 // reusable dense-row scratch for the augmentation loop
}

type subsetEntry struct {
	links   *bitset.Set
	corrSet int
	cover   *bitset.Set // Paths(E)
	seedSet *bitset.Set // Paths(E) \ Paths(Ē), the isolation path set
}

func newBuilder(top *topology.Topology, rec observe.Store, cfg Config) *builder {
	b := &builder{
		top:      top,
		rec:      rec,
		cfg:      cfg,
		index:    map[string]int{},
		usedKeys: map[string]bool{},
	}
	b.alwaysGoodPaths = rec.AlwaysGoodPaths(cfg.AlwaysGoodTol)
	if cfg.RestrictCorrSets == nil {
		b.corrSets = make([]int, len(top.CorrSets))
		for i := range b.corrSets {
			b.corrSets[i] = i
		}
		b.goodLinks = top.LinksOf(b.alwaysGoodPaths)
		b.potLinks = top.PotentiallyCongestedLinks(b.goodLinks)
		return b
	}
	// Restricted run: confine the universe to the shard's links and the
	// paths covering them. Links of the shard are covered only by shard
	// paths (the restriction is closed under path coverage), so the
	// shard's good/potentially-congested links come out exactly as in an
	// unrestricted run.
	b.corrSets = cfg.RestrictCorrSets
	shardLinks := bitset.New(top.NumLinks())
	for _, c := range b.corrSets {
		for _, li := range top.CorrSetLinks(c) {
			shardLinks.Add(li)
		}
	}
	b.shardLinks = shardLinks
	b.restrictPaths = top.PathsOf(shardLinks)
	b.alwaysGoodPaths = b.alwaysGoodPaths.Intersect(b.restrictPaths)
	b.goodLinks = top.LinksOf(b.alwaysGoodPaths)
	b.potLinks = top.PotentiallyCongestedLinks(b.goodLinks).Intersect(shardLinks)
	return b
}

// register adds a correlation subset to Ê if new, returning its index.
// After freezing, unseen subsets are rejected.
func (b *builder) register(links *bitset.Set, corrSet int) (int, bool) {
	key := links.Key()
	if i, ok := b.index[key]; ok {
		return i, true
	}
	if b.frozen {
		return -1, false
	}
	i := len(b.subsets)
	b.index[key] = i
	b.subsets = append(b.subsets, subsetEntry{
		links:   links.Clone(),
		corrSet: corrSet,
		cover:   b.top.PathsOf(links),
	})
	return i, true
}

// rowFor decomposes the equation of path set P into the indices of the
// correlation subsets appearing in it: for each correlation set C, the
// potentially congested part of Links(P) ∩ C. ok is false when the
// system is frozen and the equation references an unregistered subset.
func (b *builder) rowFor(pathSet *bitset.Set) (cols []int, ok bool) {
	links := b.top.LinksOf(pathSet)
	// Register in first-encounter order (ascending link index), not map
	// iteration order: the index a fresh subset receives feeds the
	// augmentation loop's tie-breaking, so it must be deterministic.
	bySet := map[int]*bitset.Set{}
	var setOrder []int
	links.ForEach(func(li int) bool {
		if !b.potLinks.Contains(li) {
			return true // always-good link: factor 1, drops out
		}
		c := b.top.CorrSetOf(li)
		if bySet[c] == nil {
			bySet[c] = bitset.New(b.top.NumLinks())
			setOrder = append(setOrder, c)
		}
		bySet[c].Add(li)
		return true
	})
	for _, c := range setOrder {
		i, regOK := b.register(bySet[c], c)
		if !regOK {
			return nil, false
		}
		cols = append(cols, i)
	}
	sort.Ints(cols)
	return cols, true
}

// parallelFor runs fn(i) for i in [start, end) on the configured number
// of workers (cfg.Concurrency). fn must only write state owned by
// index i so that the parallel path is bit-identical to the serial one.
func (b *builder) parallelFor(start, end int, fn func(i int)) {
	parallel.For(b.cfg.Concurrency, start, end, fn)
}

// enumerate builds the unknown universe Ê: all potentially congested
// correlation subsets of size ≤ MaxSubsetSize over covered links
// (Algorithm 1's input list), enriched with every subset appearing in a
// seed or single-path equation so those rows stay expressible.
func (b *builder) enumerate(ctx context.Context) error {
	covered := bitset.New(b.top.NumLinks())
	for e := 0; e < b.top.NumLinks(); e++ {
		if !b.top.LinkPaths(e).IsEmpty() {
			covered.Add(e)
		}
	}
	for _, ci := range b.corrSets {
		set := b.top.CorrSets[ci]
		if err := ctx.Err(); err != nil {
			return err
		}
		var eligible []int
		for _, li := range set {
			if b.potLinks.Contains(li) && covered.Contains(li) {
				eligible = append(eligible, li)
			}
		}
		if len(eligible) == 0 {
			continue
		}
		limit := b.cfg.MaxSubsetSize
		if limit <= 0 || limit > len(eligible) {
			limit = len(eligible)
		}
		for size := 1; size <= limit; size++ {
			enumCombos(len(eligible), size, func(idx []int) {
				links := bitset.New(b.top.NumLinks())
				for _, k := range idx {
					links.Add(eligible[k])
				}
				b.register(links, ci)
			})
		}
	}
	// Register the subsets of the per-path equations so the
	// augmentation loop can use single-path rows (cheap and low-noise).
	if !b.cfg.DisableSinglePathRegistration {
		one := bitset.New(b.top.NumPaths())
		for p := 0; p < b.top.NumPaths(); p++ {
			if b.restrictPaths != nil && !b.restrictPaths.Contains(p) {
				continue // another shard's path
			}
			if b.alwaysGoodPaths.Contains(p) {
				continue
			}
			one.Clear()
			one.Add(p)
			b.rowFor(one)
		}
	}
	// Compute each subset's isolation path set Paths(E) \ Paths(Ē),
	// where Ē is the potentially congested complement within E's
	// correlation set. Seed equations may reference further subsets,
	// which in turn need their own seed sets; iterate to a fixpoint
	// (bounded: each round can only add subsets that appear in some
	// equation).
	// The per-subset seed-set computation only reads the immutable
	// topology and potLinks and writes its own slot, so each round fans
	// out across the configured workers (cfg.Concurrency); the serial
	// rowFor sweep that follows keeps registration order — and thus the
	// whole run — deterministic.
	for round, done := 0, 0; done < len(b.subsets) && round < 8; round++ {
		if err := ctx.Err(); err != nil {
			return err
		}
		start := done
		done = len(b.subsets)
		b.parallelFor(start, done, b.computeSeedSet)
		for i := start; i < done; i++ {
			if !b.subsets[i].seedSet.IsEmpty() {
				b.rowFor(b.subsets[i].seedSet) // may register new subsets
			}
		}
	}
	// Any subsets registered in the final round still need a seed set.
	b.parallelFor(0, len(b.subsets), func(i int) {
		if b.subsets[i].seedSet == nil {
			b.computeSeedSet(i)
		}
	})
	b.frozen = true
	return ctx.Err()
}

// computeSeedSet fills subset i's isolation path set
// Paths(E) \ Paths(Ē), where Ē is the potentially congested complement
// within E's correlation set.
func (b *builder) computeSeedSet(i int) {
	s := &b.subsets[i]
	comp := bitset.New(b.top.NumLinks())
	for _, li := range b.top.CorrSetLinks(s.corrSet) {
		if b.potLinks.Contains(li) && !s.links.Contains(li) {
			comp.Add(li)
		}
	}
	s.seedSet = s.cover.Difference(b.top.PathsOf(comp))
}

// addPathSet appends a selected path set and its row.
func (b *builder) addPathSet(p *bitset.Set, cols []int) {
	b.pathSets = append(b.pathSets, p.Clone())
	b.usedKeys[p.Key()] = true
	b.rows = append(b.rows, cols)
}

// denseRow expands a column-index row into a dense vector over Ê. The
// returned slice aliases a scratch buffer owned by the builder — it is
// valid only until the next denseRow call and must not be retained
// (the augmentation loop only hands it to InRowSpace and
// NullSpaceUpdateInPlace, neither of which keeps it).
func (b *builder) denseRow(cols []int) []float64 {
	if cap(b.rowBuf) < len(b.subsets) {
		b.rowBuf = make([]float64, len(b.subsets))
	}
	r := b.rowBuf[:len(b.subsets)]
	for i := range r {
		r[i] = 0
	}
	for _, c := range cols {
		r[c] = 1
	}
	return r
}

// seed performs Algorithm 1 lines 1–7: one path set per subset, then
// the initial null space.
func (b *builder) seed(ctx context.Context) error {
	for i := range b.subsets {
		s := &b.subsets[i]
		if s.seedSet.IsEmpty() || b.usedKeys[s.seedSet.Key()] {
			continue
		}
		cols, ok := b.rowFor(s.seedSet)
		if !ok {
			continue
		}
		b.addPathSet(s.seedSet, cols)
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	m := linalg.NewMatrix(len(b.rows), len(b.subsets))
	for ri, cols := range b.rows {
		for _, c := range cols {
			m.Set(ri, c, 1)
		}
	}
	b.nullspace = linalg.NullSpaceBasis(m)
	return nil
}

// augment performs Algorithm 1 lines 8–22: repeatedly find a path set
// whose row leaves the current row space, preferring subsets whose
// null-space row has the largest Hamming weight, and update the null
// space with Algorithm 2 after each addition. The candidate loop —
// the hot path of large solves — checks ctx once per candidate, so
// cancellation returns within one InRowSpace evaluation.
func (b *builder) augment(ctx context.Context) error {
	maxEnum := b.cfg.MaxEnumPathSets
	if maxEnum <= 0 {
		maxEnum = 128
	}
	for b.nullspace.Cols > 0 {
		if err := ctx.Err(); err != nil {
			return err
		}
		found := false
		order := sortSubsetsByNullWeight(b.nullspace, len(b.subsets))
		for _, si := range order {
			s := &b.subsets[si]
			if s.seedSet.IsEmpty() {
				continue
			}
			paths := s.seedSet.Indices()
			budget := maxEnum
			enumerateSubsetsOfPaths(paths, func(chosen []int) bool {
				budget--
				if budget < 0 || ctx.Err() != nil {
					return false
				}
				p := bitset.FromIndices(b.top.NumPaths(), chosen...)
				if b.usedKeys[p.Key()] {
					return true
				}
				cols, ok := b.rowFor(p)
				if !ok {
					return true
				}
				r := b.denseRow(cols)
				if linalg.InRowSpace(b.nullspace, r) {
					return true
				}
				// ‖r×N‖ > 0: this equation increases the rank; the
				// update compacts the basis within its own storage.
				b.addPathSet(p, cols)
				linalg.NullSpaceUpdateInPlace(b.nullspace, r)
				found = true
				return false
			})
			if found {
				break
			}
		}
		if !found {
			break // r = 0: no remaining path set increases the rank
		}
	}
	return ctx.Err()
}

// enumerateSubsetsOfPaths yields the non-empty subsets of the given
// path IDs in increasing size (single paths first, then pairs, …).
// fn returns false to stop.
func enumerateSubsetsOfPaths(paths []int, fn func(chosen []int) bool) {
	n := len(paths)
	stop := false
	for size := 1; size <= n && !stop; size++ {
		enumCombos(n, size, func(idx []int) {
			if stop {
				return
			}
			chosen := make([]int, size)
			for k, i := range idx {
				chosen[k] = paths[i]
			}
			if !fn(chosen) {
				stop = true
			}
		})
	}
}

// enumCombos invokes fn with each k-combination of {0..n-1}.
func enumCombos(n, k int, fn func(idx []int)) {
	if k > n || k <= 0 {
		return
	}
	idx := make([]int, k)
	for i := range idx {
		idx[i] = i
	}
	for {
		fn(idx)
		i := k - 1
		for i >= 0 && idx[i] == n-k+i {
			i--
		}
		if i < 0 {
			return
		}
		idx[i]++
		for j := i + 1; j < k; j++ {
			idx[j] = idx[j-1] + 1
		}
	}
}
