package core

import (
	"context"
	"sort"

	"repro/internal/bitset"
	"repro/internal/linalg"
	"repro/internal/observe"
	"repro/internal/parallel"
	"repro/internal/topology"
)

// builder carries the state of one Correlation-complete run.
//
// The structural phase is parallel-inside-one-shard: subset enumeration
// and cover computation fan per correlation set, seed-set isolation and
// seed-row decomposition fan per subset, and the augmentation loop
// evaluates candidate path sets speculatively in chunks — all against
// round-start state, with a serial merge/commit step preserving the
// exact registration and selection order of the serial run. The result
// is bit-identical at every Config.Concurrency; the metamorphic suite
// in core_test.go pins the full plan (subset universe, path sets, rows,
// QR) across worker counts.
type builder struct {
	top *topology.Topology
	rec observe.Store
	cfg Config

	alwaysGoodPaths *bitset.Set
	goodLinks       *bitset.Set // links on an always-good path
	potLinks        *bitset.Set // potentially congested links

	// corrSets is the correlation-set universe of this run: the
	// restriction from cfg.RestrictCorrSets, or every set. When
	// restricted, restrictPaths holds the shard's paths and shardLinks
	// its links (nil otherwise) and alwaysGoodPaths/goodLinks/potLinks
	// are confined to the shard.
	corrSets      []int
	restrictPaths *bitset.Set
	shardLinks    *bitset.Set

	// The unknown universe Ê: potentially congested correlation
	// subsets, each identified by its bitset key.
	subsets []subsetEntry
	index   map[string]int
	frozen  bool // once frozen, rows referencing unseen subsets are invalid

	// Selected path sets P̂ and their rows.
	pathSets []*bitset.Set
	usedKeys map[string]bool
	rows     [][]int // per path set: sorted subset indices appearing in its equation

	nullspace *linalg.Matrix

	// Parallel build machinery: the resolved worker count, the pooled
	// scratch arena (per-worker slabs plus owner buffers) and the
	// lazily started worker gang. close() releases both; only buildPlan
	// calls it — builders driven phase-by-phase in tests simply don't
	// recycle.
	workers int
	arena   *buildArena
	gang    *gang
	stage   context.Context
	closed  bool
}

type subsetEntry struct {
	links   *bitset.Set
	corrSet int
	cover   *bitset.Set // Paths(E)
	seedSet *bitset.Set // Paths(E) \ Paths(Ē), the isolation path set
}

func newBuilder(top *topology.Topology, rec observe.Store, cfg Config) *builder {
	b := &builder{
		top:     top,
		rec:     rec,
		cfg:     cfg,
		index:   map[string]int{},
		workers: parallel.Resolve(cfg.Concurrency),
	}
	b.arena = arenaPool.Get().(*buildArena)
	b.arena.prepare(top.NumLinks(), top.NumPaths(), len(top.CorrSets), b.workers)
	b.usedKeys = b.arena.usedKeys
	b.alwaysGoodPaths = rec.AlwaysGoodPaths(cfg.AlwaysGoodTol)
	if cfg.RestrictCorrSets == nil {
		b.corrSets = make([]int, len(top.CorrSets))
		for i := range b.corrSets {
			b.corrSets[i] = i
		}
		b.goodLinks = top.LinksOf(b.alwaysGoodPaths)
		b.potLinks = top.PotentiallyCongestedLinks(b.goodLinks)
		return b
	}
	// Restricted run: confine the universe to the shard's links and the
	// paths covering them. Links of the shard are covered only by shard
	// paths (the restriction is closed under path coverage), so the
	// shard's good/potentially-congested links come out exactly as in an
	// unrestricted run.
	b.corrSets = cfg.RestrictCorrSets
	shardLinks := bitset.New(top.NumLinks())
	for _, c := range b.corrSets {
		for _, li := range top.CorrSetLinks(c) {
			shardLinks.Add(li)
		}
	}
	b.shardLinks = shardLinks
	b.restrictPaths = top.PathsOf(shardLinks)
	b.alwaysGoodPaths = b.alwaysGoodPaths.Intersect(b.restrictPaths)
	b.goodLinks = top.LinksOf(b.alwaysGoodPaths)
	b.potLinks = top.PotentiallyCongestedLinks(b.goodLinks).Intersect(shardLinks)
	return b
}

// close stops the worker gang and returns the scratch arena to the
// pool. Idempotent; nothing the built plan retains lives in either.
func (b *builder) close() {
	if b.closed {
		return
	}
	b.closed = true
	if b.gang != nil {
		b.gang.stop()
		b.gang = nil
	}
	b.usedKeys = nil
	b.arena.release()
	b.arena = nil
}

// dispatch fans fn(w, i) over [lo, hi) with w identifying the executing
// worker's scratch slab. Serial builders run a plain loop as worker 0;
// parallel builders use the gang (started on first use), whose channel
// handshake makes everything the owner wrote before dispatch visible to
// fn and everything fn wrote visible after.
func (b *builder) dispatch(lo, hi int, fn func(w, i int)) {
	if hi <= lo {
		return
	}
	if b.workers <= 1 {
		for i := lo; i < hi; i++ {
			fn(0, i)
		}
		return
	}
	if b.gang == nil {
		b.gang = newGang(b.workers)
		b.gang.labels = b.stage
	}
	b.gang.run(lo, hi, fn)
}

// lookupOrRegister resolves a correlation subset to its index in Ê,
// registering it if new (and not frozen). The lookup goes through the
// worker's key buffer so the common post-freeze case allocates nothing.
func (b *builder) lookupOrRegister(sc *rowScratch, links *bitset.Set, corrSet int) (int, bool) {
	sc.keyBuf = links.AppendKey(sc.keyBuf[:0])
	if i, ok := b.index[string(sc.keyBuf)]; ok {
		return i, true
	}
	if b.frozen {
		return -1, false
	}
	i := len(b.subsets)
	b.index[string(sc.keyBuf)] = i
	b.subsets = append(b.subsets, subsetEntry{
		links:   links.Clone(),
		corrSet: corrSet,
		cover:   b.top.PathsOf(links),
	})
	return i, true
}

// decompose splits the equation of a path set with link coverage
// `links` into the indices of the correlation subsets appearing in it:
// for each correlation set C, the potentially congested part of
// Links(P) ∩ C. The per-set groups are collected in first-encounter
// order (ascending link index), not map iteration order: the index a
// fresh subset receives feeds the augmentation loop's tie-breaking, so
// it must be deterministic. ok is false when the system is frozen and
// the equation references an unregistered subset. The returned slice
// aliases sc.cols.
func (b *builder) decompose(sc *rowScratch, links *bitset.Set) (cols []int, ok bool) {
	sc.stamp++
	sc.setOrder = sc.setOrder[:0]
	sc.cols = sc.cols[:0]
	links.ForEach(func(li int) bool {
		if !b.potLinks.Contains(li) {
			return true // always-good link: factor 1, drops out
		}
		c := b.top.CorrSetOf(li)
		if sc.mark[c] != sc.stamp {
			sc.mark[c] = sc.stamp
			if sc.perSet[c] == nil {
				sc.perSet[c] = bitset.New(b.top.NumLinks())
			} else {
				sc.perSet[c].Clear()
			}
			sc.setOrder = append(sc.setOrder, c)
		}
		sc.perSet[c].Add(li)
		return true
	})
	for _, c := range sc.setOrder {
		i, regOK := b.lookupOrRegister(sc, sc.perSet[c], c)
		if !regOK {
			return nil, false
		}
		sc.cols = append(sc.cols, i)
	}
	sort.Ints(sc.cols)
	return sc.cols, true
}

// rowForSet decomposes the equation of path set P (as a bitset).
func (b *builder) rowForSet(sc *rowScratch, pathSet *bitset.Set) ([]int, bool) {
	sc.links.Clear()
	pathSet.ForEach(func(pi int) bool {
		sc.links.UnionWith(b.top.PathLinks(pi))
		return true
	})
	return b.decompose(sc, sc.links)
}

// rowForPaths decomposes the equation of a path set given as explicit
// path IDs, skipping the path-bitset detour of rowForSet.
func (b *builder) rowForPaths(sc *rowScratch, chosen []int) ([]int, bool) {
	sc.links.Clear()
	for _, p := range chosen {
		sc.links.UnionWith(b.top.PathLinks(p))
	}
	return b.decompose(sc, sc.links)
}

// rowFor is the single-caller convenience over worker 0's scratch,
// kept for the serial registration sweeps.
func (b *builder) rowFor(pathSet *bitset.Set) (cols []int, ok bool) {
	return b.rowForSet(&b.arena.workers[0], pathSet)
}

// enumerate builds the unknown universe Ê: all potentially congested
// correlation subsets of size ≤ MaxSubsetSize over covered links
// (Algorithm 1's input list), enriched with every subset appearing in a
// seed or single-path equation so those rows stay expressible.
//
// The per-correlation-set enumeration — combo generation plus each
// subset's Paths(E) cover, the dominant topology-query cost — fans
// across the gang into per-set output lists; the serial merge then
// registers them in correlation-set order, which is exactly the
// first-encounter order of the serial loop (correlation sets partition
// the links, so no subset can appear under two sets).
func (b *builder) enumerate(ctx context.Context) error {
	setStage(b, "enumerate")
	covered := b.arena.covered
	covered.Clear()
	for e := 0; e < b.top.NumLinks(); e++ {
		if !b.top.LinkPaths(e).IsEmpty() {
			covered.Add(e)
		}
	}
	entries := b.arena.entries
	b.dispatch(0, len(b.corrSets), func(w, k int) {
		out := entries[k][:0]
		defer func() { entries[k] = out }()
		if ctx.Err() != nil {
			return
		}
		sc := &b.arena.workers[w]
		ci := b.corrSets[k]
		sc.eligible = sc.eligible[:0]
		for _, li := range b.top.CorrSetLinks(ci) {
			if b.potLinks.Contains(li) && covered.Contains(li) {
				sc.eligible = append(sc.eligible, li)
			}
		}
		if len(sc.eligible) == 0 {
			return
		}
		limit := b.cfg.MaxSubsetSize
		if limit <= 0 || limit > len(sc.eligible) {
			limit = len(sc.eligible)
		}
		for size := 1; size <= limit; size++ {
			sc.comboIdx = sc.comboIdx[:0]
			for j := 0; j < size; j++ {
				sc.comboIdx = append(sc.comboIdx, j)
			}
			for {
				links := bitset.New(b.top.NumLinks())
				for _, x := range sc.comboIdx {
					links.Add(sc.eligible[x])
				}
				out = append(out, subsetEntry{links: links, corrSet: ci, cover: b.top.PathsOf(links)})
				if !nextCombo(sc.comboIdx, len(sc.eligible)) {
					break
				}
			}
		}
	})
	if err := ctx.Err(); err != nil {
		return err
	}
	for k := range b.corrSets {
		for _, e := range entries[k] {
			key := e.links.Key()
			if _, dup := b.index[key]; dup {
				continue // unreachable: correlation sets partition the links
			}
			b.index[key] = len(b.subsets)
			b.subsets = append(b.subsets, e)
		}
	}
	// Register the subsets of the per-path equations so the
	// augmentation loop can use single-path rows (cheap and low-noise).
	if !b.cfg.DisableSinglePathRegistration {
		one := b.arena.one
		for p := 0; p < b.top.NumPaths(); p++ {
			if b.restrictPaths != nil && !b.restrictPaths.Contains(p) {
				continue // another shard's path
			}
			if b.alwaysGoodPaths.Contains(p) {
				continue
			}
			one.Clear()
			one.Add(p)
			b.rowFor(one)
		}
	}
	// Compute each subset's isolation path set Paths(E) \ Paths(Ē),
	// where Ē is the potentially congested complement within E's
	// correlation set. Seed equations may reference further subsets,
	// which in turn need their own seed sets; iterate to a fixpoint
	// (bounded: each round can only add subsets that appear in some
	// equation).
	// The per-subset seed-set computation only reads the immutable
	// topology and potLinks and writes its own slot, so each round fans
	// out across the gang; the serial rowFor sweep that follows keeps
	// registration order — and thus the whole run — deterministic.
	setStage(b, "seeds")
	for round, done := 0, 0; done < len(b.subsets) && round < 8; round++ {
		if err := ctx.Err(); err != nil {
			return err
		}
		start := done
		done = len(b.subsets)
		b.dispatch(start, done, b.computeSeedSet)
		for i := start; i < done; i++ {
			if !b.subsets[i].seedSet.IsEmpty() {
				b.rowFor(b.subsets[i].seedSet) // may register new subsets
			}
		}
	}
	// Any subsets registered in the final round still need a seed set.
	b.dispatch(0, len(b.subsets), func(w, i int) {
		if b.subsets[i].seedSet == nil {
			b.computeSeedSet(w, i)
		}
	})
	b.frozen = true
	return ctx.Err()
}

// computeSeedSet fills subset i's isolation path set
// Paths(E) \ Paths(Ē), where Ē is the potentially congested complement
// within E's correlation set. Scratch-backed: only the retained seedSet
// itself is allocated.
func (b *builder) computeSeedSet(w, i int) {
	sc := &b.arena.workers[w]
	s := &b.subsets[i]
	sc.comp.Clear()
	for _, li := range b.top.CorrSetLinks(s.corrSet) {
		if b.potLinks.Contains(li) && !s.links.Contains(li) {
			sc.comp.Add(li)
		}
	}
	sc.paths.Clear()
	sc.comp.ForEach(func(li int) bool {
		sc.paths.UnionWith(b.top.LinkPaths(li))
		return true
	})
	s.seedSet = s.cover.Difference(sc.paths)
}

// addPathSet appends a selected path set and its row. cols must be
// owned by the caller (not scratch).
func (b *builder) addPathSet(p *bitset.Set, cols []int) {
	b.pathSets = append(b.pathSets, p.Clone())
	b.usedKeys[p.Key()] = true
	b.rows = append(b.rows, cols)
}

// denseRow expands a column-index row into a dense vector over Ê. The
// returned slice aliases a scratch buffer owned by the builder — it is
// valid only until the next denseRow call and must not be retained
// (the augmentation loop only hands it to NullSpaceUpdateInPlace, which
// doesn't keep it).
func (b *builder) denseRow(cols []int) []float64 {
	ar := b.arena
	if cap(ar.rowBuf) < len(b.subsets) {
		ar.rowBuf = make([]float64, len(b.subsets))
	}
	r := ar.rowBuf[:len(b.subsets)]
	for i := range r {
		r[i] = 0
	}
	for _, c := range cols {
		r[c] = 1
	}
	return r
}

// seed performs Algorithm 1 lines 1–7: one path set per subset, then
// the initial null space. The per-subset row decompositions are
// precomputed across the gang — after the freeze they are pure reads —
// and committed serially in subset order, identical to the serial loop.
func (b *builder) seed(ctx context.Context) error {
	setStage(b, "seeds")
	ar := b.arena
	if cap(ar.seedRefs) < len(b.subsets) {
		ar.seedRefs = make([]colsRef, len(b.subsets))
	}
	refs := ar.seedRefs[:len(b.subsets)]
	for w := range ar.workers {
		ar.workers[w].colsSlab = ar.workers[w].colsSlab[:0]
	}
	b.dispatch(0, len(b.subsets), func(w, i int) {
		refs[i] = colsRef{}
		s := &b.subsets[i]
		if s.seedSet.IsEmpty() {
			return
		}
		sc := &ar.workers[w]
		cols, ok := b.rowForSet(sc, s.seedSet)
		if !ok {
			return
		}
		lo := len(sc.colsSlab)
		sc.colsSlab = append(sc.colsSlab, cols...)
		refs[i] = colsRef{worker: w, lo: lo, hi: len(sc.colsSlab), ok: true}
	})
	sc0 := &ar.workers[0]
	for i := range b.subsets {
		s := &b.subsets[i]
		if s.seedSet.IsEmpty() {
			continue
		}
		sc0.keyBuf = s.seedSet.AppendKey(sc0.keyBuf[:0])
		if b.usedKeys[string(sc0.keyBuf)] || !refs[i].ok {
			continue
		}
		ws := &ar.workers[refs[i].worker]
		cols := append([]int(nil), ws.colsSlab[refs[i].lo:refs[i].hi]...)
		b.addPathSet(s.seedSet, cols)
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	m := linalg.NewMatrix(len(b.rows), len(b.subsets))
	for ri, cols := range b.rows {
		for _, c := range cols {
			m.Set(ri, c, 1)
		}
	}
	b.nullspace = linalg.NullSpaceBasis(m)
	return nil
}

// augment performs Algorithm 1 lines 8–22: repeatedly find a path set
// whose row leaves the current row space, preferring subsets whose
// null-space row has the largest Hamming weight, and update the null
// space with Algorithm 2 after each addition.
//
// Candidate evaluation — the hot path of large solves — is
// speculative: chunks of upcoming candidates are decomposed and
// rank-checked in parallel against round-start state (the frozen
// universe, the used-set, the current null space), then a serial scan
// commits the first passing candidate in enumeration order. Until a
// commit nothing the evaluation reads changes, and a commit ends the
// round, so the candidate chosen — and with it pathSets, rows and the
// eventual QR — is exactly the serial run's.
func (b *builder) augment(ctx context.Context) error {
	setStage(b, "augment")
	ar := b.arena
	maxEnum := b.cfg.MaxEnumPathSets
	if maxEnum <= 0 {
		maxEnum = 128
	}
	for b.nullspace.Cols > 0 {
		if err := ctx.Err(); err != nil {
			return err
		}
		found := false
		if cap(ar.order) < len(b.subsets) {
			ar.order = make([]int, len(b.subsets))
			ar.weights = make([]int, len(b.subsets))
		}
		order := sortSubsetsByNullWeight(b.nullspace, len(b.subsets), ar.order[:len(b.subsets)], ar.weights[:len(b.subsets)])
		for _, si := range order {
			s := &b.subsets[si]
			if s.seedSet.IsEmpty() {
				continue
			}
			committed, err := b.augmentSubset(ctx, s, maxEnum)
			if err != nil {
				return err
			}
			if committed {
				found = true
				break
			}
		}
		if !found {
			break // r = 0: no remaining path set increases the rank
		}
	}
	return ctx.Err()
}

// augmentSubset scans one subset's candidate path sets (subsets of its
// isolation paths, in increasing size, capped at maxEnum) for the first
// whose equation leaves the current row space, and commits it. Serial
// builders stream candidates one at a time; parallel builders evaluate
// them speculatively in growing chunks.
func (b *builder) augmentSubset(ctx context.Context, s *subsetEntry, maxEnum int) (bool, error) {
	ar := b.arena
	ar.pathsBuf = s.seedSet.AppendIndices(ar.pathsBuf[:0])
	var it comboIter
	it.reset(ar.pathsBuf, ar.iterIdx)
	defer func() { ar.iterIdx = it.idx[:0] }()

	if b.workers <= 1 {
		sc := &ar.workers[0]
		sc.colsSlab = sc.colsSlab[:0]
		for budget := maxEnum; budget > 0 && it.next(); budget-- {
			if err := ctx.Err(); err != nil {
				return false, err
			}
			sc.chosen = it.appendChosen(sc.chosen[:0])
			var c candidate
			sc.colsSlab = sc.colsSlab[:0]
			b.evalCandidate(sc, 0, &c, sc.chosen)
			if c.used || !c.ref.ok || c.inSpan {
				continue
			}
			b.commit(sc.chosen, &c)
			return true, nil
		}
		return false, nil
	}

	// Speculative chunks: small first (an early hit wastes little),
	// doubling while the subset keeps missing.
	chunk := b.workers
	for produced := 0; produced < maxEnum; {
		if err := ctx.Err(); err != nil {
			return false, err
		}
		ar.cands = ar.cands[:0]
		ar.chosenSlab = ar.chosenSlab[:0]
		for len(ar.cands) < chunk && produced < maxEnum && it.next() {
			lo := len(ar.chosenSlab)
			ar.chosenSlab = it.appendChosen(ar.chosenSlab)
			ar.cands = append(ar.cands, candidate{choLo: lo, choHi: len(ar.chosenSlab)})
			produced++
		}
		if len(ar.cands) == 0 {
			return false, nil
		}
		for w := range ar.workers {
			ar.workers[w].colsSlab = ar.workers[w].colsSlab[:0]
		}
		cands := ar.cands
		b.dispatch(0, len(cands), func(w, i int) {
			c := &cands[i]
			b.evalCandidate(&ar.workers[w], w, c, ar.chosenSlab[c.choLo:c.choHi])
		})
		for i := range cands {
			c := &cands[i]
			if c.used || !c.ref.ok || c.inSpan {
				continue
			}
			b.commit(ar.chosenSlab[c.choLo:c.choHi], c)
			return true, nil
		}
		if chunk < 8*b.workers {
			chunk *= 2
		}
	}
	return false, nil
}

// evalCandidate computes one candidate's verdicts against round-start
// state: is its path set already selected, does its equation decompose
// within the frozen universe, and does its row stay inside the current
// row space. Pure reads on builder state; writes only worker scratch
// and the candidate's own slot.
func (b *builder) evalCandidate(sc *rowScratch, w int, c *candidate, chosen []int) {
	sc.pathBuf.Clear()
	for _, p := range chosen {
		sc.pathBuf.Add(p)
	}
	sc.keyBuf = sc.pathBuf.AppendKey(sc.keyBuf[:0])
	if b.usedKeys[string(sc.keyBuf)] {
		c.used = true
		return
	}
	cols, ok := b.rowForPaths(sc, chosen)
	if !ok {
		return
	}
	lo := len(sc.colsSlab)
	sc.colsSlab = append(sc.colsSlab, cols...)
	c.ref = colsRef{worker: w, lo: lo, hi: len(sc.colsSlab), ok: true}
	if len(sc.rn) < b.nullspace.Cols {
		sc.rn = make([]float64, b.nullspace.Cols)
	}
	c.inSpan = linalg.InRowSpaceSparse(b.nullspace, cols, sc.rn)
}

// commit selects a candidate: append its path set and row, mark it
// used, and fold its equation into the null space (Algorithm 2). The
// commit order is the serial enumeration order by construction.
func (b *builder) commit(chosen []int, c *candidate) {
	ws := &b.arena.workers[c.ref.worker]
	cols := append([]int(nil), ws.colsSlab[c.ref.lo:c.ref.hi]...)
	p := bitset.FromIndices(b.top.NumPaths(), chosen...)
	b.pathSets = append(b.pathSets, p)
	b.usedKeys[p.Key()] = true
	b.rows = append(b.rows, cols)
	linalg.NullSpaceUpdateInPlace(b.nullspace, b.denseRow(cols))
}

// enumerateSubsetsOfPaths yields the non-empty subsets of the given
// path IDs in increasing size (single paths first, then pairs, …).
// fn returns false to stop. comboIter streams the same order without
// allocating; this closure form remains as its executable
// specification (the equivalence is unit-tested).
func enumerateSubsetsOfPaths(paths []int, fn func(chosen []int) bool) {
	n := len(paths)
	stop := false
	for size := 1; size <= n && !stop; size++ {
		enumCombos(n, size, func(idx []int) {
			if stop {
				return
			}
			chosen := make([]int, size)
			for k, i := range idx {
				chosen[k] = paths[i]
			}
			if !fn(chosen) {
				stop = true
			}
		})
	}
}

// enumCombos invokes fn with each k-combination of {0..n-1}.
func enumCombos(n, k int, fn func(idx []int)) {
	if k > n || k <= 0 {
		return
	}
	idx := make([]int, k)
	for i := range idx {
		idx[i] = i
	}
	for {
		fn(idx)
		if !nextCombo(idx, n) {
			return
		}
	}
}
