package core

import (
	"context"
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/stream"
)

// plansBitIdentical compares every structural field of two plans: the
// subset universe (contents and order), the key index, the selected
// path sets and their rows, and the solve plan (surviving rows,
// column map). The QR factorization is a pure function of
// (rows, activeRows, colMap), so identity here plus the bitwise result
// comparison downstream pins the factorization too.
func plansBitIdentical(t *testing.T, label string, a, b *Plan) {
	t.Helper()
	if len(a.subsets) != len(b.subsets) {
		t.Fatalf("%s: %d vs %d subsets", label, len(a.subsets), len(b.subsets))
	}
	for i := range a.subsets {
		sa, sb := a.subsets[i], b.subsets[i]
		if !sa.links.Equal(sb.links) || sa.corrSet != sb.corrSet {
			t.Fatalf("%s: subset %d diverged", label, i)
		}
		if !sa.cover.Equal(sb.cover) || !sa.seedSet.Equal(sb.seedSet) {
			t.Fatalf("%s: subset %d cover/seed diverged", label, i)
		}
	}
	if len(a.index) != len(b.index) {
		t.Fatalf("%s: index size %d vs %d", label, len(a.index), len(b.index))
	}
	for k, v := range a.index {
		if bv, ok := b.index[k]; !ok || bv != v {
			t.Fatalf("%s: index key mapped to %d vs %d", label, v, bv)
		}
	}
	if len(a.pathSets) != len(b.pathSets) {
		t.Fatalf("%s: %d vs %d path sets", label, len(a.pathSets), len(b.pathSets))
	}
	for i := range a.pathSets {
		if !a.pathSets[i].Equal(b.pathSets[i]) {
			t.Fatalf("%s: path set %d diverged", label, i)
		}
		ra, rb := a.rows[i], b.rows[i]
		if len(ra) != len(rb) {
			t.Fatalf("%s: row %d length diverged", label, i)
		}
		for j := range ra {
			if ra[j] != rb[j] {
				t.Fatalf("%s: row %d col %d: %d vs %d", label, i, j, ra[j], rb[j])
			}
		}
	}
	if len(a.activeRows) != len(b.activeRows) || len(a.colMap) != len(b.colMap) {
		t.Fatalf("%s: solve plan shape diverged", label)
	}
	for i := range a.activeRows {
		if a.activeRows[i] != b.activeRows[i] {
			t.Fatalf("%s: activeRows[%d] diverged", label, i)
		}
	}
	for i := range a.colMap {
		if a.colMap[i] != b.colMap[i] {
			t.Fatalf("%s: colMap[%d] diverged", label, i)
		}
	}
	if (a.qr == nil) != (b.qr == nil) {
		t.Fatalf("%s: qr presence diverged", label)
	}
}

// TestBuildPlanConcurrencyMetamorphic is the full-plan extension of
// TestComputeConcurrencyDeterministic: at every worker count the cold
// build must produce the plan of the serial run bit for bit — the
// subset universe in registration order, the selected path sets and
// rows in selection order, and the reduced system handed to QR — on
// both an unrestricted and a shard-restricted build. Run under -race
// this also proves the gang's speculative evaluation never races the
// serial commits.
func TestBuildPlanConcurrencyMetamorphic(t *testing.T) {
	top, rec := simulateFig1Case1(t, 0.3, 0.4, 0.2, 800, 13)
	dtop := driftTopology(t)
	rng := rand.New(rand.NewSource(5))
	w := stream.NewWindow(dtop.NumPaths(), 400)
	driftEpoch(w, rng, dtop.NumPaths(), 400, false)

	cases := []struct {
		name string
		run  func(conc int) (*Plan, *Result, error)
	}{
		{"fig1", func(conc int) (*Plan, *Result, error) {
			cfg := Config{MaxSubsetSize: 2, Concurrency: conc}
			pl, err := buildPlan(context.Background(), top, rec, cfg)
			if err != nil {
				return nil, nil, err
			}
			res, err := pl.solveEpoch(context.Background(), rec)
			return pl, res, err
		}},
		{"drift-topology", func(conc int) (*Plan, *Result, error) {
			cfg := Config{MaxSubsetSize: 2, AlwaysGoodTol: 0.02, Concurrency: conc}
			pl, err := buildPlan(context.Background(), dtop, w, cfg)
			if err != nil {
				return nil, nil, err
			}
			res, err := pl.solveEpoch(context.Background(), w)
			return pl, res, err
		}},
		{"restricted-shard", func(conc int) (*Plan, *Result, error) {
			cfg := Config{MaxSubsetSize: 2, AlwaysGoodTol: 0.02, Concurrency: conc,
				RestrictCorrSets: []int{0, 1}}
			pl, err := buildPlan(context.Background(), dtop, w, cfg)
			if err != nil {
				return nil, nil, err
			}
			res, err := pl.solveEpoch(context.Background(), w)
			return pl, res, err
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			serialPlan, serialRes, err := tc.run(1)
			if err != nil {
				t.Fatal(err)
			}
			for _, conc := range []int{2, 4, 8} {
				pl, res, err := tc.run(conc)
				if err != nil {
					t.Fatal(err)
				}
				label := fmt.Sprintf("workers=%d", conc)
				plansBitIdentical(t, label, serialPlan, pl)
				resultsEqual(t, label, serialRes, res)
			}
		})
	}
}

// TestConcurrencyDeterministicUnderRepairDrift interleaves the repair
// tiers with parallel cold rebuilds: each concurrency level carries its
// own plan through the randomized drift schedule (warm epochs, tier-1
// re-keys, tier-2 frontier moves, forced rebuilds) and must take the
// same tier decisions and produce the serial plan's results bit for bit
// at every epoch.
func TestConcurrencyDeterministicUnderRepairDrift(t *testing.T) {
	top := driftTopology(t)
	concs := []int{1, 2, 4, 8}
	for seed := int64(1); seed <= 2; seed++ {
		plans := make([]*Plan, len(concs))
		// One shared observation stream; every concurrency level sees
		// the identical window state each epoch.
		rng := rand.New(rand.NewSource(seed))
		w := stream.NewWindow(top.NumPaths(), 400)
		for epoch := 0; epoch < 12; epoch++ {
			driftEpoch(w, rng, top.NumPaths(), 100, epoch%5 == 3)
			var serialRes *Result
			var serialTier [3]int
			for ci, conc := range concs {
				cfg := Config{MaxSubsetSize: 2, AlwaysGoodTol: 0.02, Concurrency: conc,
					NumericalPlanRepair: true, NumericalRepairMaxFrac: 0.6}
				res, next, err := ComputePlanned(context.Background(), top, w, cfg, plans[ci])
				if err != nil {
					t.Fatal(err)
				}
				rebuilt := 0
				if next != plans[ci] {
					rebuilt = 1
				}
				tier := [3]int{rebuilt, next.RepairCount(), next.NumericRepairCount()}
				plans[ci] = next
				if ci == 0 {
					serialRes, serialTier = res, tier
					continue
				}
				if tier != serialTier {
					t.Fatalf("seed %d epoch %d workers=%d: tier path %v vs serial %v",
						seed, epoch, conc, tier, serialTier)
				}
				resultsEqual(t, fmt.Sprintf("seed %d epoch %d workers=%d", seed, epoch, conc), serialRes, res)
			}
		}
	}
}
