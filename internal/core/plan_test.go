package core

import (
	"context"
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/bitset"
	"repro/internal/observe"
	"repro/internal/stream"
	"repro/internal/topology"
)

// resultsEqual asserts two results are bit-identical in every published
// field.
func resultsEqual(t *testing.T, label string, a, b *Result) {
	t.Helper()
	if len(a.Subsets) != len(b.Subsets) {
		t.Fatalf("%s: %d vs %d subsets", label, len(a.Subsets), len(b.Subsets))
	}
	for i := range a.Subsets {
		sa, sb := a.Subsets[i], b.Subsets[i]
		if !sa.Links.Equal(sb.Links) || sa.CorrSet != sb.CorrSet || sa.Identifiable != sb.Identifiable {
			t.Fatalf("%s: subset %d structure mismatch", label, i)
		}
		if sa.Identifiable && sa.GoodProb != sb.GoodProb {
			t.Fatalf("%s: subset %d GoodProb %v != %v", label, i, sa.GoodProb, sb.GoodProb)
		}
	}
	if a.Rank != b.Rank || a.Nullity != b.Nullity || a.ClampedRows != b.ClampedRows {
		t.Fatalf("%s: rank/nullity/clamped (%d,%d,%d) vs (%d,%d,%d)",
			label, a.Rank, a.Nullity, a.ClampedRows, b.Rank, b.Nullity, b.ClampedRows)
	}
	if !a.PotentiallyCongested.Equal(b.PotentiallyCongested) || !a.AlwaysGoodLinks.Equal(b.AlwaysGoodLinks) {
		t.Fatalf("%s: link partitions differ", label)
	}
	if len(a.PathSets) != len(b.PathSets) {
		t.Fatalf("%s: %d vs %d path sets", label, len(a.PathSets), len(b.PathSets))
	}
	for i := range a.PathSets {
		if !a.PathSets[i].Equal(b.PathSets[i]) {
			t.Fatalf("%s: path set %d differs", label, i)
		}
	}
}

// fig1Window streams correlated congestion over the Fig. 1 topology
// into a sliding window; congestible selects which links may congest.
func fig1Window(top *topology.Topology, capacity, intervals int, seed int64, congestible *bitset.Set) *stream.Window {
	w := stream.NewWindow(top.NumPaths(), capacity)
	rng := rand.New(rand.NewSource(seed))
	for i := 0; i < intervals; i++ {
		cong := bitset.New(top.NumLinks())
		if congestible.Contains(0) && rng.Float64() < 0.3 {
			cong.Add(0)
		}
		if congestible.Contains(1) && rng.Float64() < 0.4 { // correlated pair {e2, e3}
			cong.Add(1)
			cong.Add(2)
		}
		if congestible.Contains(3) && rng.Float64() < 0.2 {
			cong.Add(3)
		}
		congPaths := bitset.New(top.NumPaths())
		for p := 0; p < top.NumPaths(); p++ {
			if top.PathLinks(p).Intersects(cong) {
				congPaths.Add(p)
			}
		}
		w.Add(congPaths)
	}
	return w
}

// A warm-started solve over a shifted window must be bit-identical to a
// from-scratch solve over the same window, epoch after epoch, as long
// as the always-good path set stays put.
func TestPlanWarmSolveMatchesCold(t *testing.T) {
	top := topology.Fig1Case1()
	cfg := Config{MaxSubsetSize: 2, AlwaysGoodTol: 0.02}
	congestible := bitset.FromIndices(top.NumLinks(), 0, 1, 2, 3)
	w := fig1Window(top, 500, 600, 1, congestible)

	res, plan, err := ComputePlanned(context.Background(), top, w, cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	if plan == nil {
		t.Fatal("cold solve returned no plan")
	}
	cold0, err := Compute(context.Background(), top, w, cfg)
	if err != nil {
		t.Fatal(err)
	}
	resultsEqual(t, "epoch 0 planned vs Compute", res, cold0)

	rng := rand.New(rand.NewSource(99))
	warmEpochs := 0
	for epoch := 1; epoch <= 8; epoch++ {
		// Shift the window: more correlated congestion, same always-good
		// set (every link keeps congesting somewhere in the window).
		for i := 0; i < 120; i++ {
			cong := bitset.New(top.NumLinks())
			if rng.Float64() < 0.35 {
				cong.Add(1)
				cong.Add(2)
			}
			if rng.Float64() < 0.25 {
				cong.Add(0)
			}
			if rng.Float64() < 0.15 {
				cong.Add(3)
			}
			congPaths := bitset.New(top.NumPaths())
			for p := 0; p < top.NumPaths(); p++ {
				if top.PathLinks(p).Intersects(cong) {
					congPaths.Add(p)
				}
			}
			w.Add(congPaths)
		}
		warm, nextPlan, err := ComputePlanned(context.Background(), top, w, cfg, plan)
		if err != nil {
			t.Fatal(err)
		}
		cold, err := Compute(context.Background(), top, w, cfg)
		if err != nil {
			t.Fatal(err)
		}
		resultsEqual(t, "warm vs cold", warm, cold)
		if nextPlan == plan {
			warmEpochs++
		}
		plan = nextPlan
	}
	if warmEpochs == 0 {
		t.Fatal("no epoch reused the plan: the warm path never ran")
	}
}

// Changing the always-good path set must invalidate the plan (a fresh
// structural build), and a stale plan must never leak stale structure
// into the result.
func TestPlanInvalidatedByAlwaysGoodChange(t *testing.T) {
	top := topology.Fig1Case1()
	cfg := Config{MaxSubsetSize: 2}
	// Phase 1: only e1 congests — p3 = {e4, e3} stays always good.
	w := fig1Window(top, 400, 400, 5, bitset.FromIndices(top.NumLinks(), 0))
	_, plan, err := ComputePlanned(context.Background(), top, w, cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	if plan == nil {
		t.Fatal("no plan")
	}
	// Phase 2: e4 starts congesting too — p3 loses its always-good
	// status, so the carried-forward structure no longer applies.
	for i := 0; i < 400; i++ {
		w.Add(fig1Window(top, 1, 1, int64(100+i), bitset.FromIndices(top.NumLinks(), 0, 3)).CongestedAt(0))
	}
	res, nextPlan, err := ComputePlanned(context.Background(), top, w, cfg, plan)
	if err != nil {
		t.Fatal(err)
	}
	if nextPlan == plan {
		t.Fatal("plan survived an always-good change")
	}
	cold, err := Compute(context.Background(), top, w, cfg)
	if err != nil {
		t.Fatal(err)
	}
	resultsEqual(t, "rebuilt vs cold", res, cold)

	// A different config must also invalidate.
	_, p2, err := ComputePlanned(context.Background(), top, w, Config{MaxSubsetSize: 1}, nextPlan)
	if err != nil {
		t.Fatal(err)
	}
	if p2 == nextPlan {
		t.Fatal("plan survived a config change")
	}
}

// driftTopology is a fixture engineered for always-good drift: links
// 0–5 are redundantly covered by stable paths (the good-link frontier
// holds while the flappy paths 6/7/8 drift in and out of the
// always-good set — Plan.Repair's class), links 6–7 are covered only by
// permanently congested paths (the stable potentially congested
// universe), and path 2 is the sole extra cover of link 4 (its flaps
// move the frontier and force rebuilds).
func driftTopology(t *testing.T) *topology.Topology {
	t.Helper()
	links := make([]topology.Link, 8)
	for i := range links {
		links[i] = topology.Link{ID: i, AS: i / 2}
	}
	paths := []topology.Path{
		{ID: 0, Links: []int{0, 1}},    // stable good
		{ID: 1, Links: []int{2, 3}},    // stable good
		{ID: 2, Links: []int{4, 5}},    // flaps only in frontier-move phases
		{ID: 3, Links: []int{1, 3, 5}}, // stable good
		{ID: 4, Links: []int{6, 7}},    // permanently congested
		{ID: 5, Links: []int{6}},       // permanently congested
		{ID: 6, Links: []int{0, 2}},    // flappy within the good frontier
		{ID: 7, Links: []int{1, 4, 5}}, // flappy within the good frontier
		{ID: 8, Links: []int{3}},       // flappy within the good frontier
		{ID: 9, Links: []int{7}},       // permanently congested
	}
	corrSets := [][]int{{0, 1}, {2, 3}, {4, 5}, {6, 7}}
	top, err := topology.NewChecked(links, paths, corrSets)
	if err != nil {
		t.Fatal(err)
	}
	return top
}

// driftEpoch streams one epoch of observations: stable paths stay
// clean, the permanently congested paths keep their base rates, and
// each flappy path (plus, in frontier-move epochs, path 2) is in a
// congested or clean phase chosen by the rng.
func driftEpoch(w *stream.Window, rng *rand.Rand, numPaths, intervals int, frontierMove bool) {
	prob := make([]float64, numPaths)
	prob[4], prob[5], prob[9] = 0.5, 0.4, 0.45
	for _, p := range []int{6, 7, 8} {
		if rng.Intn(2) == 0 {
			prob[p] = 0.3
		}
	}
	if frontierMove {
		prob[2] = 0.3
	}
	cong := bitset.New(numPaths)
	for i := 0; i < intervals; i++ {
		cong.Clear()
		for p := 0; p < numPaths; p++ {
			if prob[p] > 0 && rng.Float64() < prob[p] {
				cong.Add(p)
			}
		}
		w.Add(cong)
	}
}

// Under randomized always-good drift, a plan carried through
// ComputePlanned — warm-started, repaired, or rebuilt as each epoch
// demands — must stay bit-identical to a from-scratch solve, and the
// drift schedule must exercise all three paths.
func TestPlanRepairMatchesColdUnderDrift(t *testing.T) {
	top := driftTopology(t)
	cfg := Config{MaxSubsetSize: 2, AlwaysGoodTol: 0.02}
	var warm, repaired, rebuilt int
	for seed := int64(1); seed <= 4; seed++ {
		rng := rand.New(rand.NewSource(seed))
		w := stream.NewWindow(top.NumPaths(), 400)
		var plan *Plan
		for epoch := 0; epoch < 12; epoch++ {
			driftEpoch(w, rng, top.NumPaths(), 100, epoch%5 == 3)
			prevRepairs := 0
			if plan != nil {
				prevRepairs = plan.RepairCount()
			}
			res, next, err := ComputePlanned(context.Background(), top, w, cfg, plan)
			if err != nil {
				t.Fatal(err)
			}
			cold, err := Compute(context.Background(), top, w, cfg)
			if err != nil {
				t.Fatal(err)
			}
			resultsEqual(t, fmt.Sprintf("seed %d epoch %d", seed, epoch), res, cold)
			switch {
			case plan == nil || next != plan:
				rebuilt++
			case next.RepairCount() > prevRepairs:
				repaired++
			default:
				warm++
			}
			plan = next
		}
	}
	if repaired == 0 {
		t.Fatal("drift schedule never exercised Plan.Repair")
	}
	if rebuilt <= 4 { // 4 first epochs are inherently cold
		t.Fatal("drift schedule never forced a rebuild")
	}
	if warm == 0 {
		t.Fatal("drift schedule never warm-started")
	}
}

// With DisablePlanRepair, a repairable drift must fall back to the
// rebuild path (and still match cold bit for bit).
func TestPlanRepairDisabled(t *testing.T) {
	top := driftTopology(t)
	cfg := Config{MaxSubsetSize: 2, AlwaysGoodTol: 0.02, DisablePlanRepair: true}
	rng := rand.New(rand.NewSource(1))
	w := stream.NewWindow(top.NumPaths(), 400)
	var plan *Plan
	sawDrift := false
	lastGood := ""
	for epoch := 0; epoch < 12; epoch++ {
		driftEpoch(w, rng, top.NumPaths(), 100, false)
		good := w.AlwaysGoodPaths(cfg.AlwaysGoodTol).Key()
		drifted := lastGood != "" && good != lastGood
		lastGood = good
		res, next, err := ComputePlanned(context.Background(), top, w, cfg, plan)
		if err != nil {
			t.Fatal(err)
		}
		if drifted {
			sawDrift = true
			if next == plan {
				t.Fatalf("epoch %d: plan survived drift with repair disabled", epoch)
			}
		}
		if next.RepairCount() != 0 {
			t.Fatal("repair ran despite DisablePlanRepair")
		}
		cold, err := Compute(context.Background(), top, w, cfg)
		if err != nil {
			t.Fatal(err)
		}
		resultsEqual(t, fmt.Sprintf("epoch %d", epoch), res, cold)
		plan = next
	}
	if !sawDrift {
		t.Fatal("schedule produced no drift; test is vacuous")
	}
}

// ComputePlannedBatch must reproduce the sequential ComputePlanned
// chain store for store — warm runs drained through the batched
// multi-RHS solve included — under the same drift schedule.
func TestComputePlannedBatchMatchesSequential(t *testing.T) {
	top := driftTopology(t)
	cfg := Config{MaxSubsetSize: 2, AlwaysGoodTol: 0.02}
	rng := rand.New(rand.NewSource(2))
	w := stream.NewWindow(top.NumPaths(), 400)
	var stores []observe.Store
	for epoch := 0; epoch < 10; epoch++ {
		driftEpoch(w, rng, top.NumPaths(), 100, epoch == 5)
		stores = append(stores, w.Clone())
	}
	var plan *Plan
	sequential := make([]*Result, len(stores))
	for i, rec := range stores {
		res, next, err := ComputePlanned(context.Background(), top, rec, cfg, plan)
		if err != nil {
			t.Fatal(err)
		}
		sequential[i], plan = res, next
	}
	batched, infos, batchPlan, err := ComputePlannedBatch(context.Background(), top, stores, cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	warmInfos, repairedInfos := 0, 0
	for i := range stores {
		resultsEqual(t, fmt.Sprintf("store %d", i), batched[i], sequential[i])
		if infos[i].Warm {
			warmInfos++
		}
		if infos[i].Repaired {
			repairedInfos++
		}
	}
	if infos[0].Warm {
		t.Fatal("first store reported warm with no prior plan")
	}
	if warmInfos == 0 {
		t.Fatal("no store drained warm: the batch never amortized a solve")
	}
	if batchPlan == nil {
		t.Fatal("batch returned no plan")
	}
	// The batch must have reused a plan across stores rather than
	// rebuilding each one (the whole point): the final plans of both
	// chains absorbed the same number of repairs, and every repair is
	// visible in the per-store infos.
	if batchPlan.RepairCount() != plan.RepairCount() {
		t.Fatalf("batch plan saw %d repairs, sequential %d", batchPlan.RepairCount(), plan.RepairCount())
	}
	if batchPlan.RepairCount() > 0 && repairedInfos == 0 {
		t.Fatal("plan repaired but no store reported Repaired")
	}
}

// A restricted solve over one partition shard must reproduce exactly
// the shard's slice of the full system: same subsets in the same
// relative order, same probabilities, same identifiability.
func TestRestrictedSolveMatchesShardSlice(t *testing.T) {
	// Two disjoint copies of Fig. 1 glued into one topology.
	base := topology.Fig1Case1()
	n, m := base.NumLinks(), base.NumPaths()
	var links []topology.Link
	var paths []topology.Path
	var corrSets [][]int
	for copyi := 0; copyi < 2; copyi++ {
		lo := copyi * n
		for _, l := range base.Links {
			links = append(links, topology.Link{ID: lo + l.ID, AS: copyi*10 + l.AS})
		}
		for _, p := range base.Paths {
			shifted := make([]int, len(p.Links))
			for i, li := range p.Links {
				shifted[i] = lo + li
			}
			paths = append(paths, topology.Path{ID: copyi*m + p.ID, Links: shifted})
		}
		for _, cs := range base.CorrSets {
			shifted := make([]int, len(cs))
			for i, li := range cs {
				shifted[i] = lo + li
			}
			corrSets = append(corrSets, shifted)
		}
	}
	top, err := topology.NewChecked(links, paths, corrSets)
	if err != nil {
		t.Fatal(err)
	}
	part := topology.NewPartition(top)
	if part.NumShards() != 2 {
		t.Fatalf("glued topology has %d shards, want 2", part.NumShards())
	}

	// Stream congestion that touches both halves.
	rec := observe.NewRecorder(top.NumPaths())
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 800; i++ {
		cong := bitset.New(top.NumLinks())
		for copyi := 0; copyi < 2; copyi++ {
			lo := copyi * n
			if rng.Float64() < 0.35 {
				cong.Add(lo + 1)
				cong.Add(lo + 2)
			}
			if rng.Float64() < 0.2 {
				cong.Add(lo)
			}
		}
		congPaths := bitset.New(top.NumPaths())
		for p := 0; p < top.NumPaths(); p++ {
			if top.PathLinks(p).Intersects(cong) {
				congPaths.Add(p)
			}
		}
		rec.Add(congPaths)
	}

	cfg := Config{MaxSubsetSize: 2, AlwaysGoodTol: 0.02}
	full, err := Compute(context.Background(), top, rec, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for s := 0; s < part.NumShards(); s++ {
		restricted := cfg
		restricted.RestrictCorrSets = part.ShardCorrSets(s)
		shard, err := Compute(context.Background(), top, rec, restricted)
		if err != nil {
			t.Fatal(err)
		}
		// Every shard subset must appear in the full result with the
		// same probability and identifiability.
		for _, sub := range shard.Subsets {
			g, ok := full.SubsetGoodProb(sub.Links)
			if sub.Identifiable {
				if !ok || g != sub.GoodProb {
					t.Fatalf("shard %d subset %s: restricted %v vs full (%v,%v)", s, sub.Links, sub.GoodProb, g, ok)
				}
			} else if ok {
				t.Fatalf("shard %d subset %s identifiable only in full run", s, sub.Links)
			}
		}
		// And per-link estimates over the shard's links must agree.
		part.ShardLinks(s).ForEach(func(e int) bool {
			pf, xf := full.LinkCongestProbOrFallback(e)
			ps, xs := shard.LinkCongestProbOrFallback(e)
			if pf != ps || xf != xs {
				t.Fatalf("shard %d link %d: restricted (%v,%v) vs full (%v,%v)", s, e, ps, xs, pf, xf)
			}
			return true
		})
	}
	// Merging the shard blocks reproduces the full run's totals.
	blocks := make([]*Result, part.NumShards())
	for s := range blocks {
		restricted := cfg
		restricted.RestrictCorrSets = part.ShardCorrSets(s)
		if blocks[s], err = Compute(context.Background(), top, rec, restricted); err != nil {
			t.Fatal(err)
		}
	}
	merged := MergeResults(top, rec, blocks, cfg.AlwaysGoodTol)
	if merged.Rank != full.Rank || merged.Nullity != full.Nullity || merged.ClampedRows != full.ClampedRows {
		t.Fatalf("merged totals (%d,%d,%d) vs full (%d,%d,%d)",
			merged.Rank, merged.Nullity, merged.ClampedRows, full.Rank, full.Nullity, full.ClampedRows)
	}
	if !merged.PotentiallyCongested.Equal(full.PotentiallyCongested) {
		t.Fatal("merged potentially-congested set differs from full run")
	}
	for e := 0; e < top.NumLinks(); e++ {
		pm, xm := merged.LinkCongestProbOrFallback(e)
		pf, xf := full.LinkCongestProbOrFallback(e)
		if pm != pf || xm != xf {
			t.Fatalf("link %d: merged (%v,%v) vs full (%v,%v)", e, pm, xm, pf, xf)
		}
	}
}
