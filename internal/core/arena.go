package core

import (
	"context"
	"runtime/pprof"
	"sync"
	"sync/atomic"

	"repro/internal/bitset"
)

// rowScratch is one worker's slab of reusable buffers for the
// structural phase: everything a row decomposition, a seed-set
// computation or a candidate evaluation needs that is not retained by
// the plan. Each worker of the build gang owns exactly one rowScratch,
// so the parallel phases run without synchronization or per-candidate
// allocation; the serial phases use worker 0's.
type rowScratch struct {
	links    *bitset.Set   // Links(P) accumulator (link universe)
	perSet   []*bitset.Set // corrSet -> per-set subset scratch, stamped
	mark     []int         // stamp marks for perSet first-encounter
	stamp    int
	setOrder []int
	cols     []int
	rn       []float64 // InRowSpaceSparse accumulator
	keyBuf   []byte
	pathBuf  *bitset.Set // candidate path set (path universe)
	chosen   []int
	colsSlab []int // per-chunk decomposition storage, offsets in colsRef
	eligible []int
	comboIdx []int
	comp     *bitset.Set // seed-set complement Ē (link universe)
	paths    *bitset.Set // Paths(Ē) accumulator (path universe)
}

// colsRef locates one precomputed row decomposition inside a worker's
// colsSlab. ok is false when the decomposition referenced a subset
// outside the frozen universe.
type colsRef struct {
	worker, lo, hi int
	ok             bool
}

// candidate is one speculative augmentation candidate: the chosen path
// IDs (a slice of the arena's chosenSlab), the precomputed row
// decomposition, and the verdicts evaluated against round-start state.
type candidate struct {
	choLo, choHi int
	ref          colsRef
	used         bool // path set already selected at round start
	inSpan       bool // row already in the row space at round start
}

// buildArena pools every scratch allocation of a cold plan build. It is
// taken from a process-wide pool per build and returned when the build
// completes, so a steady-state rebuild allocates (almost) only the
// retained plan. Nothing in a released arena may alias plan state.
type buildArena struct {
	numLinks, numPaths, numCorrSets int

	workers    []rowScratch
	covered    *bitset.Set
	one        *bitset.Set
	entries    [][]subsetEntry // per-corrSet enumeration output
	seedRefs   []colsRef
	cands      []candidate
	chosenSlab []int
	pathsBuf   []int
	iterIdx    []int
	order      []int
	weights    []int
	rowBuf     []float64
	usedKeys   map[string]bool
}

var arenaPool = sync.Pool{New: func() any { return &buildArena{usedKeys: map[string]bool{}} }}

// prepare sizes the arena for a topology and worker count, reusing
// buffers whenever the dimensions match the previous build.
func (ar *buildArena) prepare(numLinks, numPaths, numCorrSets, workers int) {
	if ar.numLinks != numLinks || ar.numPaths != numPaths || ar.numCorrSets != numCorrSets {
		ar.numLinks, ar.numPaths, ar.numCorrSets = numLinks, numPaths, numCorrSets
		ar.workers = nil
		ar.covered = bitset.New(numLinks)
		ar.one = bitset.New(numPaths)
		ar.entries = make([][]subsetEntry, numCorrSets)
	}
	for len(ar.workers) < workers {
		ar.workers = append(ar.workers, rowScratch{
			links:   bitset.New(numLinks),
			comp:    bitset.New(numLinks),
			pathBuf: bitset.New(numPaths),
			paths:   bitset.New(numPaths),
			perSet:  make([]*bitset.Set, numCorrSets),
			mark:    make([]int, numCorrSets),
		})
	}
}

// release returns the arena to the pool, dropping references to
// anything the just-built plan retains.
func (ar *buildArena) release() {
	for i := range ar.entries {
		es := ar.entries[i]
		for j := range es {
			es[j] = subsetEntry{}
		}
		ar.entries[i] = es[:0]
	}
	clear(ar.usedKeys)
	arenaPool.Put(ar)
}

// gang is a phase-scoped pool of build workers. Unlike parallel.For it
// amortizes goroutine startup across the many small dispatches of the
// augmentation loop: workers park between rounds and pull indices off a
// shared atomic counter, so a dispatch costs two channel operations per
// worker instead of a spawn. The owner participates as the last worker.
// Dispatches establish happens-before via the kick/done channels, so
// fn(w, i) may freely read state written by the owner between rounds as
// long as it only writes state owned by index i or by worker w.
type gang struct {
	n      int // total workers, including the owner
	kick   chan struct{}
	done   chan struct{}
	next   atomic.Int64
	hi     int64
	fn     func(w, i int)
	labels context.Context // current stage labels, applied per round
}

func newGang(n int) *gang {
	g := &gang{n: n, kick: make(chan struct{}, n-1), done: make(chan struct{}, n-1)}
	for w := 0; w < n-1; w++ {
		go func(w int) {
			for range g.kick {
				if g.labels != nil {
					pprof.SetGoroutineLabels(g.labels)
				}
				g.loop(w)
				g.done <- struct{}{}
			}
		}(w)
	}
	return g
}

func (g *gang) loop(w int) {
	fn, hi := g.fn, g.hi
	for {
		i := g.next.Add(1) - 1
		if i >= hi {
			return
		}
		fn(w, int(i))
	}
}

// run executes fn(w, i) for every i in [lo, hi) across the gang, with w
// in [0, n) identifying the executing worker. It returns when all
// indices have completed. Which worker runs which index is
// scheduling-dependent; fn's observable output must depend only on i.
func (g *gang) run(lo, hi int, fn func(w, i int)) {
	g.fn = fn
	g.hi = int64(hi)
	g.next.Store(int64(lo))
	for w := 0; w < g.n-1; w++ {
		g.kick <- struct{}{}
	}
	g.loop(g.n - 1) // the owner works too
	for w := 0; w < g.n-1; w++ {
		<-g.done
	}
	g.fn = nil
}

func (g *gang) stop() { close(g.kick) }

// comboIter streams the non-empty subsets of a path list in exactly the
// order of enumerateSubsetsOfPaths — increasing size, lexicographic
// combinations within a size — without allocating per candidate.
type comboIter struct {
	paths []int
	size  int
	idx   []int
}

func (it *comboIter) reset(paths []int, idxScratch []int) {
	it.paths = paths
	it.size = 0
	it.idx = idxScratch[:0]
}

// next advances to the next subset, reporting false when exhausted.
func (it *comboIter) next() bool {
	n := len(it.paths)
	if it.size == 0 {
		if n == 0 {
			return false
		}
		it.size = 1
		it.idx = append(it.idx[:0], 0)
		return true
	}
	if nextCombo(it.idx, n) {
		return true
	}
	it.size++
	if it.size > n {
		return false
	}
	it.idx = it.idx[:0]
	for k := 0; k < it.size; k++ {
		it.idx = append(it.idx, k)
	}
	return true
}

// appendChosen appends the current subset's path IDs to dst.
func (it *comboIter) appendChosen(dst []int) []int {
	for _, k := range it.idx {
		dst = append(dst, it.paths[k])
	}
	return dst
}

// nextCombo advances idx to the next k-combination of {0..n-1} in the
// order of enumCombos, reporting false after the last one.
func nextCombo(idx []int, n int) bool {
	k := len(idx)
	i := k - 1
	for i >= 0 && idx[i] == n-k+i {
		i--
	}
	if i < 0 {
		return false
	}
	idx[i]++
	for j := i + 1; j < k; j++ {
		idx[j] = idx[j-1] + 1
	}
	return true
}
