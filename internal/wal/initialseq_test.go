package wal_test

import (
	"reflect"
	"testing"

	"repro/internal/wal"
)

// InitialSeq re-bases an empty log (a cluster worker reset mid-stream
// must keep numbering in the coordinator's sequence space), persists
// across reopen, and never overrides sequences recovered from disk.
func TestInitialSeqRebase(t *testing.T) {
	dir := t.TempDir()
	w := openT(t, wal.Options{Dir: dir, InitialSeq: 42})
	rec := w.Recovered()
	if rec.Records != 0 || rec.FirstSeq != 42 || rec.LastSeq != 42 {
		t.Fatalf("re-based empty log reports %+v, want first/last 42", rec)
	}
	batch := mkBatch([]int{1, 5})
	if got, err := w.AppendBatch(batch); err != nil || got != 43 {
		t.Fatalf("append after re-base returned (%d, %v), want 43", got, err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	// The re-based numbering is durable: a plain reopen recovers it.
	w2 := openT(t, wal.Options{Dir: dir})
	rec = w2.Recovered()
	if rec.Records != 1 || rec.FirstSeq != 42 || rec.LastSeq != 43 {
		t.Fatalf("reopen recovered %+v, want one record at base 42", rec)
	}
	want := []replayed{{42, flatten(batch)}}
	if got := replayAll(t, w2); !reflect.DeepEqual(got, want) {
		t.Fatalf("replay after re-base:\n got %v\nwant %v", got, want)
	}
	if err := w2.Close(); err != nil {
		t.Fatal(err)
	}

	// A conflicting InitialSeq on a non-empty log is ignored: recovery
	// wins, so a stale reset request cannot renumber real data.
	w3 := openT(t, wal.Options{Dir: dir, InitialSeq: 7})
	defer w3.Close()
	rec = w3.Recovered()
	if rec.FirstSeq != 42 || rec.LastSeq != 43 {
		t.Fatalf("InitialSeq overrode recovery: %+v", rec)
	}
}
