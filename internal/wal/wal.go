// Package wal implements a segment-file write-ahead log for the
// streaming service's observation batches, making the sliding window
// durable across daemon restarts: ingest logs every batch before it is
// applied to the in-memory window, and a restarted daemon replays the
// retained tail of the log instead of starting from an empty window.
//
// Layout. The log is a directory of segment files named
// "<base>.wal" (base = the number of intervals logged before the
// segment, 16 hex digits so names sort chronologically). A segment is
// an 8-byte magic followed by length-prefixed records:
//
//	record  := u32 payloadLen | u32 crc32c(payload) | payload
//	payload := u64 baseSeq | u32 n | n × interval
//	interval:= u32 count | count × u32 pathIndex
//
// One record is one committed ingest batch; baseSeq is the total
// number of intervals logged before the batch, so records carry the
// exact commit order of the store they mirror (stream.Window /
// stream.Sharded sequence numbers). All integers are little-endian;
// the checksum is CRC-32C (Castagnoli).
//
// Durability policies. SyncPerBatch fsyncs inside every append (the
// batch is on stable storage before ingest acknowledges); SyncInterval
// (the default) marks the log dirty and a background goroutine fsyncs
// at most every SyncEvery, bounding loss to one interval's worth of
// batches; SyncOff leaves flushing to the OS except at rotation and
// Close. Appends encode into a reused slab and issue one Write, so the
// steady-state ingest hot path allocates nothing.
//
// Recovery contract. Open scans the segments oldest-first, validating
// framing, checksums and sequence continuity. A torn tail — an
// incomplete or checksum-failing suffix of the *final* segment with no
// valid record after it, exactly what a crash mid-write leaves — is
// truncated at the last valid record and recovery proceeds; the
// truncated byte count is reported. Corruption anywhere else (a
// non-final segment, or a bad record with valid records after it) is
// NOT silently dropped: Open fails loudly with ErrCorrupt, because
// truncating there would discard acknowledged data. Replay then
// streams the recovered batches oldest-first so the caller can rebuild
// its window; appends resume from the recovered high-water mark.
//
// Degradation contract. A failed write or fsync latches the log into a
// failed state: every later append returns the latched error (the
// server maps this to 503 + Retry-After on ingest) while queries keep
// being served from memory. A write or fsync that stalls past
// StallTimeout makes concurrent appends fail fast with ErrStalled
// instead of queueing behind the hung operation.
package wal

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/bitset"
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

var magic = []byte("TOMOWAL1")

const (
	frameHeaderSize = 8  // u32 len + u32 crc
	payloadMinSize  = 12 // u64 baseSeq + u32 n
	segmentSuffix   = ".wal"

	// maxRecordPayload is a framing sanity bound: a length prefix past
	// it can only be garbage (the HTTP ingest body is capped far below).
	maxRecordPayload = 1 << 30
)

// Sentinel errors of the append/recovery surface.
var (
	// ErrCorrupt reports unrecoverable log damage: corruption outside
	// the torn tail, where truncating would silently discard
	// acknowledged records. Requires operator intervention.
	ErrCorrupt = errors.New("wal: corrupt log")

	// ErrStalled reports an append that gave up because a file
	// operation has been stuck past StallTimeout; ingest should back
	// off and retry rather than queue behind the hung disk.
	ErrStalled = errors.New("wal: disk stalled")

	// ErrClosed reports an append after Close.
	ErrClosed = errors.New("wal: closed")
)

// SyncPolicy selects when appended records reach stable storage.
type SyncPolicy int

const (
	// SyncInterval (the default) fsyncs from a background goroutine at
	// most every SyncEvery while the log is dirty.
	SyncInterval SyncPolicy = iota
	// SyncPerBatch fsyncs inside every append, before it returns.
	SyncPerBatch
	// SyncOff never fsyncs on the append path (only at segment
	// rotation and Close).
	SyncOff
)

// String returns the flag spelling of the policy.
func (p SyncPolicy) String() string {
	switch p {
	case SyncPerBatch:
		return "batch"
	case SyncOff:
		return "off"
	default:
		return "interval"
	}
}

// ParseSyncPolicy parses the flag spelling: batch, interval or off.
func ParseSyncPolicy(s string) (SyncPolicy, error) {
	switch s {
	case "batch":
		return SyncPerBatch, nil
	case "interval", "":
		return SyncInterval, nil
	case "off":
		return SyncOff, nil
	default:
		return 0, fmt.Errorf("wal: unknown fsync policy %q (want batch, interval or off)", s)
	}
}

// Options parameterizes Open.
type Options struct {
	// Dir is the log directory (created if missing).
	Dir string

	// FS overrides the filesystem; nil means the real one. Tests
	// inject fault-laden filesystems here.
	FS FS

	// Policy is the fsync policy (default SyncInterval).
	Policy SyncPolicy

	// SyncEvery is the background fsync cadence under SyncInterval
	// (default 100ms).
	SyncEvery time.Duration

	// SegmentBytes rotates the active segment once it grows past this
	// size (default 8 MiB). Records are never split across segments.
	SegmentBytes int64

	// Horizon is the replay window in intervals: retention pruning
	// deletes a closed segment once every interval in it has aged past
	// the newest Horizon intervals, so the log never outgrows what a
	// restart needs to replay. 0 retains everything.
	Horizon int

	// StallTimeout bounds how long an append waits behind an in-flight
	// file operation before failing fast with ErrStalled (default 2s).
	StallTimeout time.Duration

	// InitialSeq re-bases an empty log: when the directory holds no
	// records, the first appended record carries this base sequence
	// instead of 0, so a store fast-forwarded with ResetSeq and its log
	// agree on numbering. Cluster workers use it when a shard is reset
	// past the coordinator's window (the old log is discarded and a
	// fresh one starts at the resync base). Ignored when recovery finds
	// any records.
	InitialSeq uint64
}

func (o Options) withDefaults() Options {
	if o.FS == nil {
		o.FS = OSFS{}
	}
	if o.SyncEvery <= 0 {
		o.SyncEvery = 100 * time.Millisecond
	}
	if o.SegmentBytes <= 0 {
		o.SegmentBytes = 8 << 20
	}
	if o.StallTimeout <= 0 {
		o.StallTimeout = 2 * time.Second
	}
	return o
}

// RecoveryStats describes what Open found in the log directory.
type RecoveryStats struct {
	// Records and Intervals are the valid records (= logged batches)
	// and the intervals they carry that survived recovery.
	Records   int
	Intervals int

	// FirstSeq is the sequence number before the first retained record
	// (> 0 once retention has pruned the head); LastSeq the recovered
	// high-water mark. Replay covers intervals (FirstSeq, LastSeq].
	FirstSeq uint64
	LastSeq  uint64

	// TruncatedBytes is the torn-tail suffix dropped from the final
	// segment (0 on a clean shutdown).
	TruncatedBytes int64
}

// segmentMeta is one retained segment. base is the interval count
// before the segment's first record; closed segments also know the
// count after their last record (the next segment's base).
type segmentMeta struct {
	name  string
	base  uint64
	bytes int64
}

// WAL is a write-ahead log open for appending. One goroutine may
// append at a time (the server serializes ingest anyway); Stats, Err
// and SeqHigh are safe from any goroutine and never block behind a
// stalled disk.
type WAL struct {
	opts      Options
	fs        FS
	recovered RecoveryStats

	mu       sync.Mutex // serializes file operations (append, sync, rotate, close)
	file     File
	segs     []segmentMeta // retained segments, oldest first; the last is active
	segBytes int64         // active segment size
	slab     []byte        // reused append encode buffer
	closed   bool

	seq      atomic.Uint64 // intervals logged (high-water mark)
	bytes    atomic.Int64  // total retained bytes across segments
	segCount atomic.Int32  // mirrors len(segs) for lock-free Stats
	dirty    atomic.Bool   // unsynced appends pending (SyncInterval)
	opStart  atomic.Int64  // unix nanos when the in-flight file op began; 0 when idle
	failure  atomic.Value  // latched error (type error)
	syncStop chan struct{}
	syncDone chan struct{}
}

// Open scans (and, for a torn tail, repairs) the log directory and
// returns a WAL positioned to append after the recovered high-water
// mark. Call Replay before the first append to rebuild state, and
// Close on shutdown.
func Open(opts Options) (*WAL, error) {
	opts = opts.withDefaults()
	if opts.Dir == "" {
		return nil, errors.New("wal: Options.Dir is required")
	}
	w := &WAL{opts: opts, fs: opts.FS}
	if err := w.fs.MkdirAll(opts.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("wal: creating %s: %w", opts.Dir, err)
	}
	if err := w.scan(); err != nil {
		return nil, err
	}
	if w.recovered.Records == 0 && opts.InitialSeq > 0 {
		// Empty log: re-base the numbering before the active segment is
		// created, so the segment name and first record base agree.
		w.seq.Store(opts.InitialSeq)
		w.recovered.FirstSeq = opts.InitialSeq
		w.recovered.LastSeq = opts.InitialSeq
	}
	if err := w.openActive(); err != nil {
		return nil, err
	}
	if opts.Policy == SyncInterval {
		w.syncStop = make(chan struct{})
		w.syncDone = make(chan struct{})
		go w.syncLoop()
	}
	return w, nil
}

// Recovered returns what Open found.
func (w *WAL) Recovered() RecoveryStats { return w.recovered }

// SeqHigh returns the total number of intervals logged.
func (w *WAL) SeqHigh() uint64 { return w.seq.Load() }

// Err returns the latched failure, if a write or fsync has failed.
// Once latched the log stops accepting appends until the process
// restarts and recovers; see the degradation contract in the package
// comment.
func (w *WAL) Err() error {
	if err, ok := w.failure.Load().(error); ok {
		return err
	}
	return nil
}

func (w *WAL) fail(err error) error {
	w.failure.CompareAndSwap(nil, err)
	metricDegraded.Set(1)
	return err
}

// Stats is the live state surfaced on /v1/status.
type Stats struct {
	LastSeq  uint64
	Segments int
	Bytes    int64
	Policy   SyncPolicy
	Recovery RecoveryStats
}

// Stats returns the log's live counters without taking the writer
// lock, so a stalled disk never blocks a status probe.
func (w *WAL) Stats() Stats {
	return Stats{
		LastSeq:  w.seq.Load(),
		Segments: int(w.segCount.Load()),
		Bytes:    w.bytes.Load(),
		Policy:   w.opts.Policy,
		Recovery: w.recovered,
	}
}

// segmentName renders the canonical file name for a segment starting
// after base intervals.
func segmentName(base uint64) string {
	return fmt.Sprintf("%016x%s", base, segmentSuffix)
}

// parseSegmentName extracts the base from a segment file name.
func parseSegmentName(name string) (uint64, bool) {
	if len(name) != 16+len(segmentSuffix) || name[16:] != segmentSuffix {
		return 0, false
	}
	base, err := strconv.ParseUint(name[:16], 16, 64)
	if err != nil {
		return 0, false
	}
	return base, true
}

// scan validates every retained segment, truncates a torn tail, and
// initializes the sequence, segment list and recovery stats.
func (w *WAL) scan() error {
	entries, err := w.fs.ReadDir(w.opts.Dir)
	if err != nil {
		return fmt.Errorf("wal: reading %s: %w", w.opts.Dir, err)
	}
	type seg struct {
		name string
		base uint64
	}
	var found []seg
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		if base, ok := parseSegmentName(e.Name()); ok {
			found = append(found, seg{e.Name(), base})
		}
	}
	// ReadDir sorts by name and the zero-padded hex base sorts
	// numerically, so found is oldest-first already; verify anyway.
	for i := 1; i < len(found); i++ {
		if found[i].base <= found[i-1].base {
			return fmt.Errorf("%w: segment order %s after %s", ErrCorrupt, found[i].name, found[i-1].name)
		}
	}

	first := true
	var runningSeq uint64
	for i, sg := range found {
		final := i == len(found)-1
		path := filepath.Join(w.opts.Dir, sg.name)
		data, err := w.readFile(path)
		if err != nil {
			return fmt.Errorf("wal: reading %s: %w", sg.name, err)
		}
		if !first && sg.base != runningSeq {
			return fmt.Errorf("%w: segment %s starts at seq %d, want %d (missing segment?)",
				ErrCorrupt, sg.name, sg.base, runningSeq)
		}
		res, err := scanSegment(data, sg.base, !first, runningSeq, final)
		if err != nil {
			return fmt.Errorf("%s: %w", sg.name, err)
		}
		if res.truncateAt >= 0 {
			w.recovered.TruncatedBytes += int64(len(data)) - int64(res.truncateAt)
			if err := w.fs.Truncate(path, int64(res.truncateAt)); err != nil {
				return fmt.Errorf("wal: truncating torn tail of %s: %w", sg.name, err)
			}
			data = data[:res.truncateAt]
		}
		if res.records > 0 && first {
			w.recovered.FirstSeq = res.firstBase
			runningSeq = res.firstBase
			first = false
		}
		runningSeq += uint64(res.intervals)
		w.recovered.Records += res.records
		w.recovered.Intervals += res.intervals
		w.segs = append(w.segs, segmentMeta{name: sg.name, base: sg.base, bytes: int64(len(data))})
		w.bytes.Add(int64(len(data)))
	}
	w.recovered.LastSeq = runningSeq
	if len(found) == 0 {
		w.recovered.FirstSeq = 0
		w.recovered.LastSeq = 0
	}
	w.seq.Store(w.recovered.LastSeq)
	w.segCount.Store(int32(len(w.segs)))
	return nil
}

// readFile slurps one segment through the FS.
func (w *WAL) readFile(path string) ([]byte, error) {
	f, err := w.fs.OpenFile(path, os.O_RDONLY, 0)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return io.ReadAll(f)
}

// segScan is scanSegment's result. truncateAt < 0 means the segment is
// intact; otherwise it is the byte offset at which the torn tail
// starts.
type segScan struct {
	records    int
	intervals  int
	firstBase  uint64
	truncateAt int
}

// scanSegment walks one segment's records. haveSeq/expectSeq carry the
// cross-segment continuity check (haveSeq false on the very first
// record of the log, whose base seeds the sequence). final marks the
// last segment, the only one where a broken suffix may legally be a
// torn tail.
func scanSegment(data []byte, nameBase uint64, haveSeq bool, expectSeq uint64, final bool) (segScan, error) {
	res := segScan{truncateAt: -1}
	if len(data) < len(magic) {
		// A crash can tear the very creation of a segment: the final
		// segment may end up shorter than its magic, holding no
		// records. Anywhere else that's corruption.
		if final {
			res.truncateAt = 0
			return res, nil
		}
		return res, fmt.Errorf("%w: segment shorter than its header", ErrCorrupt)
	}
	if !bytes.Equal(data[:len(magic)], magic) {
		return res, fmt.Errorf("%w: bad segment magic", ErrCorrupt)
	}
	off := len(magic)
	seq := expectSeq
	for off < len(data) {
		rec, ok := parseRecord(data, off)
		if !ok {
			if !final {
				return res, fmt.Errorf("%w: invalid record at offset %d", ErrCorrupt, off)
			}
			// Final segment: a broken record is a torn tail only if
			// nothing valid follows it — truncating past valid
			// acknowledged records must fail loudly instead.
			if nextOffCandidate(data, off) >= 0 && anyValidRecordFrom(data, nextOffCandidate(data, off)) {
				return res, fmt.Errorf("%w: invalid record at offset %d with valid records after it", ErrCorrupt, off)
			}
			res.truncateAt = off
			return res, nil
		}
		if haveSeq && rec.base != seq {
			return res, fmt.Errorf("%w: record at offset %d has base seq %d, want %d", ErrCorrupt, off, rec.base, seq)
		}
		if !haveSeq {
			if rec.base != nameBase {
				return res, fmt.Errorf("%w: first record base %d does not match segment name base %d", ErrCorrupt, rec.base, nameBase)
			}
			seq = rec.base
			haveSeq = true
			res.firstBase = rec.base
		}
		seq = rec.base + uint64(rec.n)
		res.records++
		res.intervals += rec.n
		off = rec.end
	}
	return res, nil
}

// parsedRecord is one framed record's geometry and header.
type parsedRecord struct {
	base       uint64
	n          int
	payloadOff int
	end        int
}

// parseRecord validates the frame, checksum and payload structure of
// the record at off. ok is false on any defect — framing overrun, CRC
// mismatch, or a payload whose interval lists do not tile its length.
func parseRecord(data []byte, off int) (parsedRecord, bool) {
	var rec parsedRecord
	if off+frameHeaderSize > len(data) {
		return rec, false
	}
	plen := int(binary.LittleEndian.Uint32(data[off:]))
	if plen < payloadMinSize || plen > maxRecordPayload || off+frameHeaderSize+plen > len(data) {
		return rec, false
	}
	wantCRC := binary.LittleEndian.Uint32(data[off+4:])
	payload := data[off+frameHeaderSize : off+frameHeaderSize+plen]
	if crc32.Checksum(payload, castagnoli) != wantCRC {
		return rec, false
	}
	rec.base = binary.LittleEndian.Uint64(payload)
	rec.n = int(binary.LittleEndian.Uint32(payload[8:]))
	rec.payloadOff = off + frameHeaderSize
	rec.end = off + frameHeaderSize + plen
	// Structural check: the n interval lists must tile the payload.
	p := payloadMinSize
	for i := 0; i < rec.n; i++ {
		if p+4 > plen {
			return rec, false
		}
		count := int(binary.LittleEndian.Uint32(payload[p:]))
		p += 4 + 4*count
		if count < 0 || p > plen {
			return rec, false
		}
	}
	if p != plen {
		return rec, false
	}
	return rec, true
}

// nextOffCandidate returns where the record after the (broken) one at
// off would start if its length prefix were trusted, or -1 when the
// prefix itself is implausible.
func nextOffCandidate(data []byte, off int) int {
	if off+frameHeaderSize > len(data) {
		return -1
	}
	plen := int(binary.LittleEndian.Uint32(data[off:]))
	if plen < payloadMinSize || plen > maxRecordPayload || off+frameHeaderSize+plen > len(data) {
		return -1
	}
	return off + frameHeaderSize + plen
}

// anyValidRecordFrom reports whether a fully valid record parses at
// any frame boundary reachable from off.
func anyValidRecordFrom(data []byte, off int) bool {
	for off >= 0 && off < len(data) {
		if _, ok := parseRecord(data, off); ok {
			return true
		}
		off = nextOffCandidate(data, off)
	}
	return false
}

// openActive opens the newest segment for appending, creating the
// first segment (or re-writing the magic of a fully-torn one) as
// needed.
func (w *WAL) openActive() error {
	if len(w.segs) == 0 {
		return w.newSegmentLocked()
	}
	last := &w.segs[len(w.segs)-1]
	path := filepath.Join(w.opts.Dir, last.name)
	f, err := w.fs.OpenFile(path, os.O_WRONLY|os.O_APPEND|os.O_CREATE, 0o644)
	if err != nil {
		return fmt.Errorf("wal: opening %s for append: %w", last.name, err)
	}
	w.file = f
	w.segBytes = last.bytes
	if w.segBytes == 0 {
		// The tail segment was torn down to nothing: restore its header.
		if _, err := f.Write(magic); err != nil {
			f.Close()
			return fmt.Errorf("wal: rewriting magic of %s: %w", last.name, err)
		}
		w.segBytes = int64(len(magic))
		last.bytes = w.segBytes
		w.bytes.Add(w.segBytes)
	}
	return nil
}

// newSegmentLocked creates and activates a fresh segment at the
// current sequence; the caller holds mu (or is still single-threaded
// in Open).
func (w *WAL) newSegmentLocked() error {
	base := w.seq.Load()
	name := segmentName(base)
	f, err := w.fs.OpenFile(filepath.Join(w.opts.Dir, name), os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("wal: creating segment %s: %w", name, err)
	}
	if _, err := f.Write(magic); err != nil {
		f.Close()
		return fmt.Errorf("wal: writing magic of %s: %w", name, err)
	}
	w.file = f
	w.segBytes = int64(len(magic))
	w.segs = append(w.segs, segmentMeta{name: name, base: base, bytes: w.segBytes})
	w.bytes.Add(w.segBytes)
	w.segCount.Store(int32(len(w.segs)))
	return nil
}

// Replay streams the recovered batches oldest-first: fn is called once
// per record with the sequence number before the batch and the decoded
// congested-path sets. Call it before the first append.
func (w *WAL) Replay(fn func(baseSeq uint64, batch []*bitset.Set) error) error {
	w.mu.Lock()
	segs := make([]segmentMeta, len(w.segs))
	copy(segs, w.segs)
	w.mu.Unlock()
	for _, sg := range segs {
		data, err := w.readFile(filepath.Join(w.opts.Dir, sg.name))
		if err != nil {
			return fmt.Errorf("wal: replaying %s: %w", sg.name, err)
		}
		off := len(magic)
		if len(data) < off {
			continue // fully-torn tail segment, already truncated
		}
		for off < len(data) {
			rec, ok := parseRecord(data, off)
			if !ok {
				return fmt.Errorf("%w: replay found invalid record in %s at offset %d", ErrCorrupt, sg.name, off)
			}
			batch := make([]*bitset.Set, rec.n)
			p := rec.payloadOff + payloadMinSize
			for i := range batch {
				count := int(binary.LittleEndian.Uint32(data[p:]))
				p += 4
				set := bitset.New(0)
				for j := 0; j < count; j++ {
					set.Add(int(binary.LittleEndian.Uint32(data[p:])))
					p += 4
				}
				batch[i] = set
			}
			if err := fn(rec.base, batch); err != nil {
				return err
			}
			off = rec.end
		}
	}
	return nil
}

// AppendBatch logs one committed ingest batch, returning the sequence
// number after it. It implements stream.BatchLog, so a Window or
// Sharded store with this log attached journals every batch before
// applying it. The append fails fast — without queueing behind a hung
// disk — when a previous operation has stalled past StallTimeout, and
// permanently once a write or fsync has failed (see Err).
func (w *WAL) AppendBatch(batch []*bitset.Set) (uint64, error) {
	if len(batch) == 0 {
		return w.seq.Load(), nil
	}
	if err := w.Err(); err != nil {
		return w.seq.Load(), err
	}
	if !w.lockWithDeadline() {
		return w.seq.Load(), ErrStalled
	}
	defer w.mu.Unlock()
	if w.closed {
		return w.seq.Load(), ErrClosed
	}
	if err := w.Err(); err != nil {
		return w.seq.Load(), err
	}
	base := w.seq.Load()
	buf := w.encode(base, batch)
	w.opStart.Store(time.Now().UnixNano())
	_, err := w.file.Write(buf)
	w.opStart.Store(0)
	if err != nil {
		// The segment may now hold a partial frame; appending more would
		// bury valid-looking garbage mid-segment, so latch instead.
		return base, w.fail(fmt.Errorf("wal: appending record at seq %d: %w", base, err))
	}
	w.segBytes += int64(len(buf))
	w.segs[len(w.segs)-1].bytes = w.segBytes
	w.bytes.Add(int64(len(buf)))
	w.seq.Add(uint64(len(batch)))
	metricAppends.Inc()
	metricBytesWritten.Add(uint64(len(buf)))
	switch w.opts.Policy {
	case SyncPerBatch:
		if err := w.syncLocked(); err != nil {
			return w.seq.Load(), err
		}
	case SyncInterval:
		w.dirty.Store(true)
	}
	if w.segBytes >= w.opts.SegmentBytes {
		if err := w.rotateLocked(); err != nil {
			return w.seq.Load(), err
		}
	}
	return w.seq.Load(), nil
}

// encode frames the batch into the reused slab and returns the record
// bytes. Steady state allocates nothing: the slab only grows.
func (w *WAL) encode(base uint64, batch []*bitset.Set) []byte {
	size := frameHeaderSize + payloadMinSize
	for _, s := range batch {
		size += 4 + 4*s.Count()
	}
	if cap(w.slab) < size {
		w.slab = make([]byte, size, size+size/2)
	}
	buf := w.slab[:size]
	binary.LittleEndian.PutUint64(buf[frameHeaderSize:], base)
	binary.LittleEndian.PutUint32(buf[frameHeaderSize+8:], uint32(len(batch)))
	off := frameHeaderSize + payloadMinSize
	for _, s := range batch {
		countOff := off
		off += 4
		n := 0
		s.ForEach(func(p int) bool {
			binary.LittleEndian.PutUint32(buf[off:], uint32(p))
			off += 4
			n++
			return true
		})
		binary.LittleEndian.PutUint32(buf[countOff:], uint32(n))
	}
	payload := buf[frameHeaderSize:off]
	binary.LittleEndian.PutUint32(buf, uint32(len(payload)))
	binary.LittleEndian.PutUint32(buf[4:], crc32.Checksum(payload, castagnoli))
	return buf[:off]
}

// lockWithDeadline acquires mu unless the current holder's file
// operation has been in flight past StallTimeout (then false — the
// disk is stalled and the caller must not queue behind it).
func (w *WAL) lockWithDeadline() bool {
	if w.mu.TryLock() {
		return true
	}
	deadline := time.Now().Add(w.opts.StallTimeout)
	for {
		if w.stalledNow() {
			return false
		}
		if w.mu.TryLock() {
			return true
		}
		if time.Now().After(deadline) {
			return false
		}
		time.Sleep(time.Millisecond)
	}
}

// stalledNow reports whether the in-flight file operation (if any) has
// exceeded StallTimeout.
func (w *WAL) stalledNow() bool {
	start := w.opStart.Load()
	return start != 0 && time.Since(time.Unix(0, start)) > w.opts.StallTimeout
}

// Sync forces an fsync of the active segment (the background syncer
// and Close call it; tests use it to make interval-policy failures
// deterministic).
func (w *WAL) Sync() error {
	if err := w.Err(); err != nil {
		return err
	}
	if !w.lockWithDeadline() {
		return ErrStalled
	}
	defer w.mu.Unlock()
	return w.syncLocked()
}

func (w *WAL) syncLocked() error {
	if w.file == nil {
		return nil
	}
	w.dirty.Store(false)
	start := time.Now()
	w.opStart.Store(start.UnixNano())
	err := w.file.Sync()
	w.opStart.Store(0)
	metricFsyncSeconds.Observe(time.Since(start).Seconds())
	if err != nil {
		return w.fail(fmt.Errorf("wal: fsync: %w", err))
	}
	return nil
}

// syncLoop is the SyncInterval background fsync goroutine.
func (w *WAL) syncLoop() {
	defer close(w.syncDone)
	ticker := time.NewTicker(w.opts.SyncEvery)
	defer ticker.Stop()
	for {
		select {
		case <-w.syncStop:
			return
		case <-ticker.C:
			if !w.dirty.Load() {
				continue
			}
			if w.mu.TryLock() {
				w.syncLocked()
				w.mu.Unlock()
			}
		}
	}
}

// rotateLocked closes the active segment (fsyncing it so rotation is a
// durability point under every policy), opens a fresh one, and prunes
// segments the replay horizon no longer needs. Caller holds mu.
func (w *WAL) rotateLocked() error {
	if err := w.syncLocked(); err != nil {
		return err
	}
	if err := w.file.Close(); err != nil {
		return w.fail(fmt.Errorf("wal: closing rotated segment: %w", err))
	}
	w.file = nil
	if err := w.newSegmentLocked(); err != nil {
		return w.fail(err)
	}
	metricRotations.Inc()
	w.pruneLocked()
	return nil
}

// pruneLocked deletes closed segments every interval of which has aged
// out of the replay horizon: segment i is prunable once segment i+1
// starts at or before seq−horizon. Caller holds mu.
func (w *WAL) pruneLocked() {
	if w.opts.Horizon <= 0 {
		return
	}
	seq := w.seq.Load()
	horizon := uint64(w.opts.Horizon)
	for len(w.segs) >= 2 && seq >= horizon && w.segs[1].base <= seq-horizon {
		old := w.segs[0]
		if err := w.fs.Remove(filepath.Join(w.opts.Dir, old.name)); err != nil {
			// Pruning is best-effort: a leftover segment only costs
			// disk, never correctness — recovery re-derives retention.
			break
		}
		w.segs = w.segs[1:]
		w.bytes.Add(-old.bytes)
	}
	w.segCount.Store(int32(len(w.segs)))
}

// Close flushes and closes the log. Appends after Close fail with
// ErrClosed.
func (w *WAL) Close() error {
	if w.syncStop != nil {
		select {
		case <-w.syncStop:
		default:
			close(w.syncStop)
			<-w.syncDone
		}
	}
	if !w.lockWithDeadline() {
		return ErrStalled
	}
	defer w.mu.Unlock()
	if w.closed {
		return nil
	}
	w.closed = true
	err := w.syncLocked()
	if w.file != nil {
		if cerr := w.file.Close(); err == nil {
			err = cerr
		}
		w.file = nil
	}
	return err
}
