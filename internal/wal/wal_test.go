package wal_test

import (
	"errors"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"repro/internal/bitset"
	"repro/internal/wal"
	"repro/internal/wal/faultfs"
)

// mkBatch builds one batch of congested-path sets.
func mkBatch(intervals ...[]int) []*bitset.Set {
	out := make([]*bitset.Set, len(intervals))
	for i, iv := range intervals {
		out[i] = bitset.FromIndices(64, iv...)
	}
	return out
}

// flatten renders a batch as index slices for comparison.
func flatten(batch []*bitset.Set) [][]int {
	out := make([][]int, len(batch))
	for i, s := range batch {
		out[i] = s.Indices()
	}
	return out
}

// replayAll collects every replayed record.
type replayed struct {
	base  uint64
	batch [][]int
}

func replayAll(t *testing.T, w *wal.WAL) []replayed {
	t.Helper()
	var out []replayed
	if err := w.Replay(func(base uint64, batch []*bitset.Set) error {
		out = append(out, replayed{base, flatten(batch)})
		return nil
	}); err != nil {
		t.Fatalf("replay: %v", err)
	}
	return out
}

// openT opens a WAL with test-friendly defaults (no background sync
// goroutine unless the test opts in).
func openT(t *testing.T, opts wal.Options) *wal.WAL {
	t.Helper()
	if opts.Policy == wal.SyncInterval {
		opts.Policy = wal.SyncOff
	}
	w, err := wal.Open(opts)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	return w
}

// recordSize is the on-disk size of one record holding the batch.
func recordSize(batch []*bitset.Set) int {
	size := wal.FrameHeaderSize + wal.PayloadMinSize
	for _, s := range batch {
		size += 4 + 4*s.Count()
	}
	return size
}

func TestRoundTripAndSeqResume(t *testing.T) {
	dir := t.TempDir()
	batches := [][]*bitset.Set{
		mkBatch([]int{0, 3, 17}),
		mkBatch([]int{5}, []int{}, []int{1, 2, 3}),
		mkBatch([]int{63}),
	}
	w := openT(t, wal.Options{Dir: dir})
	var want []replayed
	var seq uint64
	for _, b := range batches {
		got, err := w.AppendBatch(b)
		if err != nil {
			t.Fatalf("append: %v", err)
		}
		want = append(want, replayed{seq, flatten(b)})
		seq += uint64(len(b))
		if got != seq {
			t.Fatalf("append returned seq %d, want %d", got, seq)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}

	w2 := openT(t, wal.Options{Dir: dir})
	defer w2.Close()
	rec := w2.Recovered()
	if rec.Records != 3 || rec.Intervals != 5 || rec.FirstSeq != 0 || rec.LastSeq != 5 || rec.TruncatedBytes != 0 {
		t.Fatalf("recovery stats: %+v", rec)
	}
	if got := replayAll(t, w2); !reflect.DeepEqual(got, want) {
		t.Fatalf("replay mismatch:\n got %v\nwant %v", got, want)
	}
	// Appends resume from the recovered high-water mark.
	got, err := w2.AppendBatch(mkBatch([]int{9}))
	if err != nil {
		t.Fatalf("append after recovery: %v", err)
	}
	if got != 6 {
		t.Fatalf("seq after recovery append = %d, want 6", got)
	}
}

func TestEmptyLog(t *testing.T) {
	dir := t.TempDir()
	w := openT(t, wal.Options{Dir: dir})
	defer w.Close()
	if rec := w.Recovered(); rec != (wal.RecoveryStats{}) {
		t.Fatalf("fresh dir recovered %+v, want zero", rec)
	}
	if got := replayAll(t, w); len(got) != 0 {
		t.Fatalf("fresh dir replayed %d records", len(got))
	}
	if _, err := w.AppendBatch(mkBatch([]int{1})); err != nil {
		t.Fatalf("append on fresh log: %v", err)
	}
	// An opened-but-never-written log recovers as empty, not torn.
	dir2 := t.TempDir()
	w2 := openT(t, wal.Options{Dir: dir2})
	if err := w2.Close(); err != nil {
		t.Fatal(err)
	}
	w3 := openT(t, wal.Options{Dir: dir2})
	defer w3.Close()
	if rec := w3.Recovered(); rec.Records != 0 || rec.TruncatedBytes != 0 {
		t.Fatalf("empty segment recovered %+v", rec)
	}
}

// onlySegment returns the path of the single segment file in dir.
func onlySegment(t *testing.T, dir string) string {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Fatalf("want exactly one segment, have %d", len(entries))
	}
	return filepath.Join(dir, entries[0].Name())
}

func TestTornTailTruncation(t *testing.T) {
	full := []replayed{
		{0, [][]int{{0, 1}}},
		{1, [][]int{{2}, {3}}},
		{3, [][]int{{4, 5, 6}}},
	}
	lastLen := recordSize(mkBatch([]int{4, 5, 6}))
	for _, cut := range []int{1, 7, 8, lastLen - 1} {
		t.Run(fmt.Sprintf("cut=%d", cut), func(t *testing.T) {
			dir := t.TempDir()
			w := openT(t, wal.Options{Dir: dir})
			for _, r := range full {
				sets := make([]*bitset.Set, len(r.batch))
				for i, iv := range r.batch {
					sets[i] = bitset.FromIndices(64, iv...)
				}
				if _, err := w.AppendBatch(sets); err != nil {
					t.Fatal(err)
				}
			}
			if err := w.Close(); err != nil {
				t.Fatal(err)
			}
			seg := onlySegment(t, dir)
			fi, err := os.Stat(seg)
			if err != nil {
				t.Fatal(err)
			}
			if err := os.Truncate(seg, fi.Size()-int64(cut)); err != nil {
				t.Fatal(err)
			}

			w2 := openT(t, wal.Options{Dir: dir})
			defer w2.Close()
			rec := w2.Recovered()
			if rec.Records != 2 || rec.LastSeq != 3 {
				t.Fatalf("recovery after cut %d: %+v", cut, rec)
			}
			if rec.TruncatedBytes != int64(lastLen-cut) {
				t.Fatalf("truncated %d bytes, want %d", rec.TruncatedBytes, lastLen-cut)
			}
			if got := replayAll(t, w2); !reflect.DeepEqual(got, full[:2]) {
				t.Fatalf("replay after cut: %v", got)
			}
			// The log is clean again: append, close, reopen.
			if _, err := w2.AppendBatch(mkBatch([]int{7})); err != nil {
				t.Fatal(err)
			}
			if err := w2.Close(); err != nil {
				t.Fatal(err)
			}
			w3 := openT(t, wal.Options{Dir: dir})
			defer w3.Close()
			if rec := w3.Recovered(); rec.Records != 3 || rec.LastSeq != 4 || rec.TruncatedBytes != 0 {
				t.Fatalf("recovery after repair: %+v", rec)
			}
		})
	}
}

// corruptAt flips one byte of the file at off.
func corruptAt(t *testing.T, path string, off int64) {
	t.Helper()
	f, err := os.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	var b [1]byte
	if _, err := f.ReadAt(b[:], off); err != nil {
		t.Fatal(err)
	}
	b[0] ^= 0xff
	if _, err := f.WriteAt(b[:], off); err != nil {
		t.Fatal(err)
	}
}

// A checksum failure with valid records after it must fail loudly:
// truncating there would silently discard acknowledged data.
func TestCorruptMidSegmentFailsLoudly(t *testing.T) {
	dir := t.TempDir()
	w := openT(t, wal.Options{Dir: dir})
	r0 := mkBatch([]int{0, 1})
	for _, b := range [][]*bitset.Set{r0, mkBatch([]int{2}), mkBatch([]int{3})} {
		if _, err := w.AppendBatch(b); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	// Flip a payload byte of the middle record.
	off := int64(len(wal.Magic()) + recordSize(r0) + wal.FrameHeaderSize + wal.PayloadMinSize)
	corruptAt(t, onlySegment(t, dir), off)
	if _, err := wal.Open(wal.Options{Dir: dir, Policy: wal.SyncOff}); !errors.Is(err, wal.ErrCorrupt) {
		t.Fatalf("open over mid-segment corruption: %v, want wal.ErrCorrupt", err)
	}
}

// The same checksum failure in the final record IS the torn tail and
// must be truncated, not fatal.
func TestCorruptFinalRecordTruncates(t *testing.T) {
	dir := t.TempDir()
	w := openT(t, wal.Options{Dir: dir})
	for _, b := range [][]*bitset.Set{mkBatch([]int{0, 1}), mkBatch([]int{2})} {
		if _, err := w.AppendBatch(b); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	seg := onlySegment(t, dir)
	fi, err := os.Stat(seg)
	if err != nil {
		t.Fatal(err)
	}
	corruptAt(t, seg, fi.Size()-1)
	w2 := openT(t, wal.Options{Dir: dir})
	defer w2.Close()
	rec := w2.Recovered()
	if rec.Records != 1 || rec.LastSeq != 1 || rec.TruncatedBytes == 0 {
		t.Fatalf("recovery over corrupt final record: %+v", rec)
	}
}

// Corruption in a non-final segment is never a torn tail.
func TestCorruptOlderSegmentFailsLoudly(t *testing.T) {
	dir := t.TempDir()
	// Tiny segments force rotation after every record.
	w := openT(t, wal.Options{Dir: dir, SegmentBytes: 16})
	for i := 0; i < 4; i++ {
		if _, err := w.AppendBatch(mkBatch([]int{i})); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) < 2 {
		t.Fatalf("want several segments, have %d", len(entries))
	}
	corruptAt(t, filepath.Join(dir, entries[0].Name()), int64(len(wal.Magic())+wal.FrameHeaderSize))
	if _, err := wal.Open(wal.Options{Dir: dir, Policy: wal.SyncOff}); !errors.Is(err, wal.ErrCorrupt) {
		t.Fatalf("open over old-segment corruption: %v, want wal.ErrCorrupt", err)
	}
}

func TestRetentionPruning(t *testing.T) {
	dir := t.TempDir()
	const horizon = 50
	w := openT(t, wal.Options{Dir: dir, SegmentBytes: 256, Horizon: horizon})
	const total = 400
	for i := 0; i < total; i++ {
		if _, err := w.AppendBatch(mkBatch([]int{i % 64})); err != nil {
			t.Fatal(err)
		}
	}
	st := w.Stats()
	if st.LastSeq != total {
		t.Fatalf("seq = %d, want %d", st.LastSeq, total)
	}
	// 256-byte segments hold ~9 one-interval records each; without
	// pruning there would be ~40 segments.
	if st.Segments > 12 {
		t.Fatalf("retention left %d segments", st.Segments)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	// Recovery with the head already pruned: replay starts past zero
	// but still covers at least the horizon.
	w2 := openT(t, wal.Options{Dir: dir, Horizon: horizon})
	defer w2.Close()
	rec := w2.Recovered()
	if rec.FirstSeq == 0 || rec.LastSeq != total {
		t.Fatalf("pruned recovery: %+v", rec)
	}
	if covered := rec.LastSeq - rec.FirstSeq; covered < horizon {
		t.Fatalf("replay covers %d intervals, want >= %d", covered, horizon)
	}
	// Replayed records are contiguous from FirstSeq to LastSeq.
	seq := rec.FirstSeq
	for _, r := range replayAll(t, w2) {
		if r.base != seq {
			t.Fatalf("replay gap: record base %d, want %d", r.base, seq)
		}
		seq += uint64(len(r.batch))
	}
	if seq != rec.LastSeq {
		t.Fatalf("replay ended at %d, want %d", seq, rec.LastSeq)
	}
}

func TestFsyncErrorPropagation(t *testing.T) {
	t.Run("per-batch", func(t *testing.T) {
		ffs := faultfs.New(nil)
		w, err := wal.Open(wal.Options{Dir: t.TempDir(), FS: ffs, Policy: wal.SyncPerBatch})
		if err != nil {
			t.Fatal(err)
		}
		ffs.FailSync(faultfs.ErrInjectedSync)
		if _, err := w.AppendBatch(mkBatch([]int{1})); !errors.Is(err, faultfs.ErrInjectedSync) {
			t.Fatalf("append under failing fsync: %v", err)
		}
		// The failure latches: later appends fail without touching disk.
		ffs.FailSync(nil)
		if _, err := w.AppendBatch(mkBatch([]int{2})); !errors.Is(err, faultfs.ErrInjectedSync) {
			t.Fatalf("append after latched failure: %v", err)
		}
		if w.Err() == nil {
			t.Fatal("Err() not latched")
		}
	})
	t.Run("interval", func(t *testing.T) {
		ffs := faultfs.New(nil)
		// Manual Sync keeps the failure deterministic (no background
		// goroutine: wal.SyncOff appends + explicit Sync models one tick).
		w, err := wal.Open(wal.Options{Dir: t.TempDir(), FS: ffs, Policy: wal.SyncOff})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := w.AppendBatch(mkBatch([]int{1})); err != nil {
			t.Fatal(err)
		}
		ffs.FailSync(faultfs.ErrInjectedSync)
		if err := w.Sync(); !errors.Is(err, faultfs.ErrInjectedSync) {
			t.Fatalf("sync: %v", err)
		}
		if _, err := w.AppendBatch(mkBatch([]int{2})); !errors.Is(err, faultfs.ErrInjectedSync) {
			t.Fatalf("append after failed sync: %v", err)
		}
	})
}

func TestWriteBudgetENOSPC(t *testing.T) {
	ffs := faultfs.New(nil)
	w, err := wal.Open(wal.Options{Dir: t.TempDir(), FS: ffs, Policy: wal.SyncOff})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.AppendBatch(mkBatch([]int{1})); err != nil {
		t.Fatal(err)
	}
	ffs.LimitWrites(4)
	if _, err := w.AppendBatch(mkBatch([]int{2})); !errors.Is(err, faultfs.ErrInjectedFull) {
		t.Fatalf("append past budget: %v", err)
	}
	ffs.UnlimitWrites()
	if _, err := w.AppendBatch(mkBatch([]int{3})); !errors.Is(err, faultfs.ErrInjectedFull) {
		t.Fatalf("append after latched ENOSPC: %v", err)
	}
}

// A hung fsync must not queue appenders forever: concurrent appends
// fail fast with wal.ErrStalled once the in-flight op exceeds the stall
// timeout, and Stats stays responsive throughout.
func TestStallFailFast(t *testing.T) {
	ffs := faultfs.New(nil)
	w, err := wal.Open(wal.Options{
		Dir: t.TempDir(), FS: ffs,
		Policy:       wal.SyncPerBatch,
		StallTimeout: 30 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	release := ffs.BlockSync()
	firstDone := make(chan error, 1)
	go func() {
		_, err := w.AppendBatch(mkBatch([]int{1}))
		firstDone <- err
	}()
	// Wait until the first append is provably inside the hung fsync.
	deadline := time.Now().Add(2 * time.Second)
	for w.OpStartNanos() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("first append never reached fsync")
		}
		time.Sleep(time.Millisecond)
	}
	time.Sleep(40 * time.Millisecond) // exceed the stall timeout
	if _, err := w.AppendBatch(mkBatch([]int{2})); !errors.Is(err, wal.ErrStalled) {
		t.Fatalf("append behind hung fsync: %v, want wal.ErrStalled", err)
	}
	if st := w.Stats(); st.LastSeq != 1 {
		t.Fatalf("stats during stall: %+v", st)
	}
	release()
	if err := <-firstDone; err != nil {
		t.Fatalf("first append after release: %v", err)
	}
	if _, err := w.AppendBatch(mkBatch([]int{3})); err != nil {
		t.Fatalf("append after stall cleared: %v", err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestCrashPointRecoveryProperty is the exactly-once property: crash
// the log at a random byte (torn writes via the fault FS), recover,
// and the replay must be exactly the batches whose records fully hit
// disk before the crash — nothing lost before the torn tail, nothing
// duplicated, nothing invented after it.
func TestCrashPointRecoveryProperty(t *testing.T) {
	for seed := int64(0); seed < 25; seed++ {
		rng := rand.New(rand.NewSource(seed))
		nBatches := 1 + rng.Intn(12)
		batches := make([][]*bitset.Set, nBatches)
		for i := range batches {
			n := 1 + rng.Intn(4)
			sets := make([]*bitset.Set, n)
			for j := range sets {
				s := bitset.New(64)
				for p := 0; p < 64; p++ {
					if rng.Intn(6) == 0 {
						s.Add(p)
					}
				}
				sets[j] = s
			}
			batches[i] = sets
		}
		// Record byte ranges: magic, then one record per batch.
		total := int64(len(wal.Magic()))
		ends := make([]int64, nBatches)
		for i, b := range batches {
			total += int64(recordSize(b))
			ends[i] = total
		}
		budget := rng.Int63n(total + 1)

		dir := t.TempDir()
		ffs := faultfs.New(nil)
		ffs.LimitWrites(budget)
		w, err := wal.Open(wal.Options{Dir: dir, FS: ffs, Policy: wal.SyncOff})
		if err == nil {
			for _, b := range batches {
				if _, err := w.AppendBatch(b); err != nil {
					break // crashed mid-stream
				}
			}
			w.Close()
		}

		// Recover with a healthy filesystem.
		w2, err := wal.Open(wal.Options{Dir: dir, Policy: wal.SyncOff})
		if err != nil {
			t.Fatalf("seed %d budget %d/%d: recovery failed: %v", seed, budget, total, err)
		}
		var want []replayed
		var seq uint64
		for i, b := range batches {
			if ends[i] > budget {
				break // this record did not fully reach disk
			}
			want = append(want, replayed{seq, flatten(b)})
			seq += uint64(len(b))
		}
		got := replayAll(t, w2)
		if len(want) == 0 {
			want = nil
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("seed %d budget %d/%d: replay mismatch\n got %v\nwant %v", seed, budget, total, got, want)
		}
		if w2.Recovered().LastSeq != seq {
			t.Fatalf("seed %d: recovered seq %d, want %d", seed, w2.Recovered().LastSeq, seq)
		}
		// The recovered log accepts appends and survives another cycle.
		if _, err := w2.AppendBatch(mkBatch([]int{42})); err != nil {
			t.Fatalf("seed %d: append after recovery: %v", seed, err)
		}
		if err := w2.Close(); err != nil {
			t.Fatalf("seed %d: close: %v", seed, err)
		}
		w3, err := wal.Open(wal.Options{Dir: dir, Policy: wal.SyncOff})
		if err != nil {
			t.Fatalf("seed %d: second recovery: %v", seed, err)
		}
		if w3.Recovered().LastSeq != seq+1 || w3.Recovered().TruncatedBytes != 0 {
			t.Fatalf("seed %d: second recovery stats %+v", seed, w3.Recovered())
		}
		w3.Close()
	}
}

// The background interval syncer flushes dirty appends without help.
func TestIntervalSyncLoop(t *testing.T) {
	ffs := faultfs.New(nil)
	w, err := wal.Open(wal.Options{Dir: t.TempDir(), FS: ffs, Policy: wal.SyncInterval, SyncEvery: 5 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	if _, err := w.AppendBatch(mkBatch([]int{1})); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for w.Dirty() {
		if time.Now().After(deadline) {
			t.Fatal("interval syncer never flushed")
		}
		time.Sleep(time.Millisecond)
	}
}
