package wal

import (
	"io"
	"io/fs"
	"os"
)

// FS is the filesystem surface the WAL needs. The default is the real
// OS filesystem (OSFS); tests inject fault-laden implementations (see
// internal/wal/faultfs) to exercise torn writes, short writes, fsync
// errors, ENOSPC and disk stalls without touching real hardware.
type FS interface {
	// MkdirAll creates the directory and any missing parents.
	MkdirAll(dir string, perm fs.FileMode) error
	// OpenFile opens a file with os.OpenFile semantics.
	OpenFile(name string, flag int, perm fs.FileMode) (File, error)
	// ReadDir lists the directory, sorted by filename.
	ReadDir(dir string) ([]fs.DirEntry, error)
	// Remove deletes a file.
	Remove(name string) error
	// Truncate resizes the named file.
	Truncate(name string, size int64) error
}

// File is the per-file surface: sequential reads during recovery,
// appends and fsync during normal operation.
type File interface {
	io.Reader
	io.Writer
	io.Closer
	// Sync flushes the file to stable storage (fsync).
	Sync() error
}

// OSFS is the real filesystem.
type OSFS struct{}

func (OSFS) MkdirAll(dir string, perm fs.FileMode) error { return os.MkdirAll(dir, perm) }

func (OSFS) OpenFile(name string, flag int, perm fs.FileMode) (File, error) {
	f, err := os.OpenFile(name, flag, perm)
	if err != nil {
		return nil, err
	}
	return f, nil
}

func (OSFS) ReadDir(dir string) ([]fs.DirEntry, error) { return os.ReadDir(dir) }

func (OSFS) Remove(name string) error { return os.Remove(name) }

func (OSFS) Truncate(name string, size int64) error { return os.Truncate(name, size) }
