package wal

import "repro/internal/telemetry"

// WAL operational metrics, process-wide (every log in the process
// shares them; a daemon runs one). All hot-path observations are
// single atomic ops so the 0-alloc append contract holds through the
// instrumented path — the bench alloc gate pins it.
var (
	metricAppends = telemetry.Default().Counter("tomod_wal_appends_total",
		"Batches appended to the write-ahead log.")
	metricBytesWritten = telemetry.Default().Counter("tomod_wal_bytes_written_total",
		"Record bytes written to WAL segments (excludes segment headers).")
	// fsync spans ~100µs (page cache hit / fast NVMe) to multi-second
	// stalls; the top buckets are where StallTimeout territory begins.
	metricFsyncSeconds = telemetry.Default().Histogram("tomod_wal_fsync_duration_seconds",
		"Wall time of WAL fsync calls.", telemetry.ExpBuckets(1e-4, 4, 10))
	metricRotations = telemetry.Default().Counter("tomod_wal_segment_rotations_total",
		"Segment rotations (each is a durability point and may prune the retention head).")
	metricDegraded = telemetry.Default().Gauge("tomod_wal_degraded",
		"1 once a write or fsync failure has latched the log into the failed state (clears only on restart).")
)
