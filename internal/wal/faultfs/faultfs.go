// Package faultfs is a fault-injecting wal.FS for robustness tests:
// it forwards to a real filesystem while injecting torn writes, short
// writes, fsync errors, ENOSPC and disk stalls at precise points, so
// the WAL's recovery and degradation contracts can be property-tested
// without real hardware faults.
//
// The injected crash model matches what the WAL must survive: a "torn
// write" persists a prefix of the requested bytes (as a crashed kernel
// would) and then reports failure; a write budget models a disk
// filling up mid-stream; BlockSync models an fsync that hangs on a
// dying device.
package faultfs

import (
	"errors"
	"io/fs"
	"sync"

	"repro/internal/wal"
)

// ErrInjectedFull is the error surfaced once the write budget is
// exhausted (the injected ENOSPC).
var ErrInjectedFull = errors.New("faultfs: no space left on device (injected)")

// ErrInjectedSync is the default injected fsync error.
var ErrInjectedSync = errors.New("faultfs: fsync failed (injected)")

// FS wraps an inner wal.FS (defaults to the real one) with injectable
// faults. All knobs are safe to adjust concurrently with use.
type FS struct {
	Inner wal.FS

	mu sync.Mutex
	// writeBudget is the number of bytes writes may still persist; -1
	// means unlimited. When a write crosses the budget, the prefix
	// that fits is persisted (a torn write) and the write fails.
	writeBudget int64
	// syncErr, when non-nil, makes every Sync fail with it.
	syncErr error
	// syncBlock, when non-nil, makes Sync block until the channel is
	// closed — an injected disk stall.
	syncBlock chan struct{}
	// written counts bytes actually persisted through this FS.
	written int64
}

// New returns a pass-through FS over inner (nil means the real
// filesystem) with no faults armed.
func New(inner wal.FS) *FS {
	if inner == nil {
		inner = wal.OSFS{}
	}
	return &FS{Inner: inner, writeBudget: -1}
}

// LimitWrites arms the write budget: after n more persisted bytes,
// writes tear (persist a prefix) and fail with ErrInjectedFull.
func (f *FS) LimitWrites(n int64) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.writeBudget = n
}

// UnlimitWrites disarms the write budget.
func (f *FS) UnlimitWrites() {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.writeBudget = -1
}

// FailSync makes every subsequent Sync fail with err (nil restores
// normal fsync).
func (f *FS) FailSync(err error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.syncErr = err
}

// BlockSync makes every subsequent Sync block until the returned
// release function is called — an injected disk stall.
func (f *FS) BlockSync() (release func()) {
	f.mu.Lock()
	defer f.mu.Unlock()
	ch := make(chan struct{})
	f.syncBlock = ch
	var once sync.Once
	return func() {
		once.Do(func() {
			f.mu.Lock()
			if f.syncBlock == ch {
				f.syncBlock = nil
			}
			f.mu.Unlock()
			close(ch)
		})
	}
}

// Written returns the bytes persisted through this FS so far.
func (f *FS) Written() int64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.written
}

func (f *FS) MkdirAll(dir string, perm fs.FileMode) error { return f.Inner.MkdirAll(dir, perm) }

func (f *FS) ReadDir(dir string) ([]fs.DirEntry, error) { return f.Inner.ReadDir(dir) }

func (f *FS) Remove(name string) error { return f.Inner.Remove(name) }

func (f *FS) Truncate(name string, size int64) error { return f.Inner.Truncate(name, size) }

func (f *FS) OpenFile(name string, flag int, perm fs.FileMode) (wal.File, error) {
	inner, err := f.Inner.OpenFile(name, flag, perm)
	if err != nil {
		return nil, err
	}
	return &file{fs: f, inner: inner}, nil
}

// file wraps one open file with the owning FS's fault knobs.
type file struct {
	fs    *FS
	inner wal.File
}

func (fl *file) Read(p []byte) (int, error) { return fl.inner.Read(p) }

func (fl *file) Close() error { return fl.inner.Close() }

// Write persists as much of p as the budget allows. A write that
// crosses the budget is torn: the prefix that fits reaches the inner
// file (as after a crash mid-write) and the call fails.
func (fl *file) Write(p []byte) (int, error) {
	fl.fs.mu.Lock()
	budget := fl.fs.writeBudget
	allowed := len(p)
	if budget >= 0 && int64(allowed) > budget {
		allowed = int(budget)
	}
	if budget >= 0 {
		fl.fs.writeBudget = budget - int64(allowed)
	}
	fl.fs.mu.Unlock()

	n := 0
	var err error
	if allowed > 0 {
		n, err = fl.inner.Write(p[:allowed])
	}
	fl.fs.mu.Lock()
	fl.fs.written += int64(n)
	fl.fs.mu.Unlock()
	if err != nil {
		return n, err
	}
	if allowed < len(p) {
		return n, ErrInjectedFull
	}
	return n, nil
}

func (fl *file) Sync() error {
	fl.fs.mu.Lock()
	block := fl.fs.syncBlock
	serr := fl.fs.syncErr
	fl.fs.mu.Unlock()
	if block != nil {
		<-block
	}
	if serr != nil {
		return serr
	}
	return fl.inner.Sync()
}
