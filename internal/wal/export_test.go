package wal

// Test-only exports so the external wal_test package (which must live
// outside this package to use faultfs without an import cycle) can
// reach the on-disk framing constants and in-flight state.

const (
	FrameHeaderSize = frameHeaderSize
	PayloadMinSize  = payloadMinSize
)

// Magic returns the segment-file magic bytes.
func Magic() []byte { return append([]byte(nil), magic...) }

// OpStartNanos reports the start time of the in-flight file op (0 if
// none) — used to detect that an append reached the injected stall.
func (w *WAL) OpStartNanos() int64 { return w.opStart.Load() }

// Dirty reports whether appended bytes are awaiting fsync.
func (w *WAL) Dirty() bool { return w.dirty.Load() }
