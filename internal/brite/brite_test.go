package brite

import (
	"math/rand"
	"testing"

	"repro/internal/topology"
)

func TestGenerateConnected(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, model := range []ASModel{BarabasiAlbert, Waxman} {
		cfg := DefaultConfig()
		cfg.Model = model
		in, err := Generate(cfg, rng)
		if err != nil {
			t.Fatalf("model %d: %v", model, err)
		}
		if !in.Routers.Connected() {
			t.Fatalf("model %d: router graph disconnected", model)
		}
		if in.Routers.N() != cfg.NumAS*cfg.RoutersPerAS {
			t.Fatalf("router count = %d", in.Routers.N())
		}
		for r, as := range in.RouterAS {
			if as != r/cfg.RoutersPerAS {
				t.Fatalf("router %d mapped to AS %d", r, as)
			}
		}
	}
}

func TestGenerateRejectsBadConfig(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	bad := DefaultConfig()
	bad.NumAS = 1
	if _, err := Generate(bad, rng); err == nil {
		t.Fatal("NumAS=1 should be rejected")
	}
	bad = DefaultConfig()
	bad.Model = ASModel(99)
	if _, err := Generate(bad, rng); err == nil {
		t.Fatal("unknown model should be rejected")
	}
}

func TestRandomRoutesCrossAS(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	in, err := Generate(DefaultConfig(), rng)
	if err != nil {
		t.Fatal(err)
	}
	routes := in.RandomRoutes(50, rng)
	if len(routes) != 50 {
		t.Fatalf("got %d routes", len(routes))
	}
	for _, rt := range routes {
		if len(rt.Vertices) != len(rt.Edges)+1 {
			t.Fatal("malformed route")
		}
		src, dst := rt.Vertices[0], rt.Vertices[len(rt.Vertices)-1]
		if in.RouterAS[src] == in.RouterAS[dst] {
			t.Fatal("route endpoints in the same AS")
		}
	}
}

func TestOverlayStructure(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	top, in, err := DenseTopology(DefaultConfig(), 200, rng)
	if err != nil {
		t.Fatal(err)
	}
	if top.NumPaths() == 0 || top.NumLinks() == 0 {
		t.Fatal("empty overlay")
	}
	// Every link must carry at least one router-level link and a valid AS.
	for _, l := range top.Links {
		if len(l.RouterLinks) == 0 {
			t.Fatalf("link %d has no router links", l.ID)
		}
		if l.AS < 0 || l.AS >= in.NumAS {
			t.Fatalf("link %d has AS %d", l.ID, l.AS)
		}
		for _, re := range l.RouterLinks {
			if re < 0 || re >= in.Routers.M() {
				t.Fatalf("link %d references router link %d out of range", l.ID, re)
			}
		}
	}
	// Correlation sets must follow AS boundaries.
	for _, set := range top.CorrSets {
		as := top.Links[set[0]].AS
		for _, li := range set {
			if top.Links[li].AS != as {
				t.Fatal("correlation set spans multiple ASes")
			}
		}
	}
	// Intra-domain links of one AS must only contain router links whose
	// endpoints are in that AS.
	for _, l := range top.Links {
		if len(l.RouterLinks) > 1 { // definitely intra-domain
			for _, re := range l.RouterLinks {
				ep := in.Routers.Endpoints(re)
				if in.RouterAS[ep[0]] != l.AS || in.RouterAS[ep[1]] != l.AS {
					t.Fatalf("intra link %d (%s) crosses AS boundary", l.ID, l.Name)
				}
			}
		}
	}
}

func TestOverlayPathsAreLoopFree(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	top, _, err := DenseTopology(DefaultConfig(), 300, rng)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range top.Paths {
		seen := map[int]bool{}
		for _, li := range p.Links {
			if seen[li] {
				t.Fatalf("path %d repeats link %d", p.ID, li)
			}
			seen[li] = true
		}
	}
}

func TestOverlayDeterministicWithSeed(t *testing.T) {
	gen := func() *topology.Topology {
		rng := rand.New(rand.NewSource(7))
		top, _, err := DenseTopology(DefaultConfig(), 100, rng)
		if err != nil {
			t.Fatal(err)
		}
		return top
	}
	a, b := gen(), gen()
	if a.NumLinks() != b.NumLinks() || a.NumPaths() != b.NumPaths() {
		t.Fatal("generation is not deterministic under a fixed seed")
	}
}

func TestDenseTopologyIsDense(t *testing.T) {
	// The Brite overlay must be markedly denser (more paths per link)
	// than one path per link — this is what makes inference easy on it.
	rng := rand.New(rand.NewSource(5))
	top, _, err := DenseTopology(DefaultConfig(), 500, rng)
	if err != nil {
		t.Fatal(err)
	}
	if d := top.MeanPathsPerLink(); d < 2 {
		t.Fatalf("MeanPathsPerLink = %.2f, expected a dense overlay (≥2)", d)
	}
}

func TestOverlayRejectsNoRoutes(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	in, err := Generate(DefaultConfig(), rng)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Overlay(in, nil); err == nil {
		t.Fatal("expected error for empty route set")
	}
}
