package brite

import (
	"math/rand"
	"testing"
)

func TestASLevelTopologyStructure(t *testing.T) {
	cfg := DefaultConfig()
	cfg.NumAS = 60
	cfg.RoutersPerAS = 4
	top, in, err := ASLevelTopology(cfg, 200, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	// One link per AS-graph edge.
	if top.NumLinks() != in.ASGraph.M() {
		t.Fatalf("links = %d, AS edges = %d", top.NumLinks(), in.ASGraph.M())
	}
	// Every link is owned by one of its endpoints and carries 1-2
	// router links (the synthetic inter-domain link plus possibly one
	// trunk of the owner).
	for e, l := range top.Links {
		ep := in.ASGraph.Endpoints(e)
		if l.AS != ep[0] && l.AS != ep[1] {
			t.Fatalf("link %d owned by AS %d, endpoints %v", e, l.AS, ep)
		}
		if len(l.RouterLinks) < 1 || len(l.RouterLinks) > 2 {
			t.Fatalf("link %d has %d router links", e, len(l.RouterLinks))
		}
		// A trunk, when present, must belong to the owner AS.
		for _, rl := range l.RouterLinks {
			if rl < in.Routers.M() { // real (intra) router link
				rep := in.Routers.Endpoints(rl)
				if in.RouterAS[rep[0]] != l.AS || in.RouterAS[rep[1]] != l.AS {
					t.Fatalf("link %d trunk %d outside owner AS %d", e, rl, l.AS)
				}
			}
		}
	}
	// Paths are valid AS-graph walks (consecutive links share an AS).
	for _, p := range top.Paths {
		if len(p.Links) == 0 {
			t.Fatal("empty path")
		}
	}
}

func TestASLevelCorrelationWithinOwnerOnly(t *testing.T) {
	cfg := DefaultConfig()
	cfg.NumAS = 60
	cfg.RoutersPerAS = 4
	top, _, err := ASLevelTopology(cfg, 200, rand.New(rand.NewSource(2)))
	if err != nil {
		t.Fatal(err)
	}
	// Links sharing a router link must belong to the same correlation
	// set (the Correlation Sets assumption must hold exactly in the
	// ground truth).
	byRouter := map[int][]int{}
	for _, l := range top.Links {
		for _, rl := range l.RouterLinks {
			byRouter[rl] = append(byRouter[rl], l.ID)
		}
	}
	shared := 0
	for _, lis := range byRouter {
		if len(lis) < 2 {
			continue
		}
		shared++
		set := top.CorrSetOf(lis[0])
		for _, li := range lis[1:] {
			if top.CorrSetOf(li) != set {
				t.Fatalf("links %v share a router link across correlation sets", lis)
			}
		}
	}
	if shared == 0 {
		t.Fatal("no correlated link groups generated (NoIndependence scenario would be impossible)")
	}
}

func TestASLevelIdentifiabilityMostlyHolds(t *testing.T) {
	// §3.2: "The Identifiability++ condition holds only for the Brite
	// topologies". Violations must be rare relative to the subset count.
	cfg := DefaultConfig()
	cfg.NumAS = 150
	cfg.RoutersPerAS = 4
	top, _, err := ASLevelTopology(cfg, 700, rand.New(rand.NewSource(3)))
	if err != nil {
		t.Fatal(err)
	}
	viol := top.CheckIdentifiabilityPlusPlus(2, 0)
	subsets := top.EnumerateSubsets(2)
	if frac := float64(len(viol)) / float64(len(subsets)); frac > 0.05 {
		t.Fatalf("Identifiability++ violation rate %.3f (%d/%d), want < 0.05", frac, len(viol), len(subsets))
	}
}

func TestASLevelDeterministic(t *testing.T) {
	gen := func() (int, int) {
		cfg := DefaultConfig()
		cfg.NumAS = 40
		top, _, err := ASLevelTopology(cfg, 100, rand.New(rand.NewSource(4)))
		if err != nil {
			t.Fatal(err)
		}
		return top.NumLinks(), top.NumPaths()
	}
	l1, p1 := gen()
	l2, p2 := gen()
	if l1 != l2 || p1 != p2 {
		t.Fatal("AS-level generation not deterministic under a fixed seed")
	}
}
