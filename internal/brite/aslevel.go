package brite

import (
	"fmt"
	"math/rand"

	"repro/internal/topology"
)

// ASLevelTopology builds the paper's "Brite topology" the way the paper
// does (§3.2): the AS-level graph comes directly from the generator's
// AS-level module — one logical link per AS-AS edge — and the
// router-level graph only determines which AS-level links are
// correlated.
//
// Each AS-level link is owned by (assigned to) its higher-degree
// endpoint AS — the provider side — and its router-level footprint is
// the inter-domain router link plus one trunk router link inside the
// owner AS. Links owned by the same AS that happen to pick the same
// trunk are correlated (they congest together when the trunk congests);
// links owned by different ASes never share router links, so the
// Correlation Sets assumption holds exactly, and — unlike the
// traceroute-derived Sparse overlays — the coverage of distinct links
// is almost always distinct, so Identifiability++ holds in practice
// ("The Identifiability++ condition holds only for the Brite
// topologies", §3.2).
//
// Paths are shortest AS-level routes between random AS pairs, sampled
// over equal-cost alternatives.
func ASLevelTopology(cfg Config, numPaths int, rng *rand.Rand) (*topology.Topology, *Internet, error) {
	in, err := Generate(cfg, rng)
	if err != nil {
		return nil, nil, err
	}
	top, err := ASLevelOverlay(in, numPaths, rng)
	if err != nil {
		return nil, nil, err
	}
	return top, in, nil
}

// ASLevelOverlay derives the AS-level measurement topology from an
// existing Internet (see ASLevelTopology).
func ASLevelOverlay(in *Internet, numPaths int, rng *rand.Rand) (*topology.Topology, error) {
	ag := in.ASGraph
	if ag.M() == 0 {
		return nil, fmt.Errorf("brite: AS graph has no edges")
	}
	// Collect, per AS, its intra-domain router links (the trunks).
	trunks := make([][]int, in.NumAS)
	for e := 0; e < in.Routers.M(); e++ {
		ep := in.Routers.Endpoints(e)
		a, b := in.RouterAS[ep[0]], in.RouterAS[ep[1]]
		if a == b {
			trunks[a] = append(trunks[a], e)
		}
	}
	// Inter-domain router links per AS edge: recorded implicitly during
	// generation in edge-insertion order; rather than recover them, give
	// each AS edge a unique synthetic inter-domain router-link ID above
	// the real range (IDs only need to be distinct for correlation
	// purposes).
	interBase := in.Routers.M()

	links := make([]topology.Link, ag.M())
	for e := 0; e < ag.M(); e++ {
		ep := ag.Endpoints(e)
		owner := ep[0]
		if ag.Degree(ep[1]) > ag.Degree(ep[0]) || (ag.Degree(ep[1]) == ag.Degree(ep[0]) && ep[1] < ep[0]) {
			owner = ep[1]
		}
		rl := []int{interBase + e}
		if len(trunks[owner]) > 0 {
			rl = append(rl, trunks[owner][rng.Intn(len(trunks[owner]))])
		}
		links[e] = topology.Link{
			ID:          e,
			Name:        fmt.Sprintf("AS%d-AS%d@AS%d", ep[0], ep[1], owner),
			AS:          owner,
			RouterLinks: rl,
		}
	}

	var paths []topology.Path
	seen := map[[2]int]bool{}
	for attempts := 0; len(paths) < numPaths && attempts < 60*numPaths; attempts++ {
		src, dst := rng.Intn(in.NumAS), rng.Intn(in.NumAS)
		if src == dst || seen[[2]int{src, dst}] {
			continue
		}
		_, edges, ok := ag.RandomizedShortestPath(src, dst, rng)
		if !ok || len(edges) == 0 {
			continue
		}
		seen[[2]int{src, dst}] = true
		paths = append(paths, topology.Path{
			ID:    len(paths),
			Name:  fmt.Sprintf("p%d:AS%d->AS%d", len(paths), src, dst),
			Links: append([]int(nil), edges...),
		})
	}
	if len(paths) == 0 {
		return nil, fmt.Errorf("brite: no AS-level paths sampled")
	}
	top := &topology.Topology{
		Links:    links,
		Paths:    paths,
		CorrSets: topology.CorrelationSetsByAS(links),
	}
	if err := top.Build(); err != nil {
		return nil, err
	}
	return top, nil
}
