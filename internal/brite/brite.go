// Package brite generates the synthetic two-tier Internet topologies
// the paper's evaluation uses ("Brite topologies", §3.2): a top-down
// model in the style of the BRITE topology generator [1], with an
// AS-level graph grown by Barabási–Albert preferential attachment (or a
// Waxman model) and a router-level graph inside each AS.
//
// The package also builds the AS-level measurement overlay on which the
// tomography algorithms operate: given end-to-end router-level routes,
// it derives the AS-level links (inter-domain links between border
// routers, and intra-domain paths between border routers of one AS),
// records which router-level links each AS-level link is built from —
// the source of link correlations — and groups links into one
// correlation set per AS.
package brite

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/graph"
	"repro/internal/topology"
)

// ASModel selects the AS-level generative model.
type ASModel int

const (
	// BarabasiAlbert grows the AS graph by preferential attachment
	// (heavy-tailed degrees, like the Internet's AS graph).
	BarabasiAlbert ASModel = iota
	// Waxman connects ASes placed uniformly in the plane with
	// probability α·exp(−d/βL).
	Waxman
)

// Config parameterizes the generator. The zero value is not usable; see
// DefaultConfig.
type Config struct {
	NumAS        int     // number of autonomous systems
	RoutersPerAS int     // routers inside each AS
	ASDegree     int     // edges added per new AS (BA) / target mean degree (Waxman)
	IntraExtra   int     // extra random intra-AS edges beyond the spanning tree
	InterLinks   int     // parallel inter-domain router links per AS peering
	Model        ASModel // AS-level model
	WaxmanAlpha  float64 // Waxman α (only used when Model == Waxman)
	WaxmanBeta   float64 // Waxman β
}

// DefaultConfig returns the parameters used throughout the evaluation:
// they yield AS-level overlays of roughly the paper's scale (a Brite
// topology of ≈1000 links once 1500 paths are routed).
func DefaultConfig() Config {
	return Config{
		NumAS:        60,
		RoutersPerAS: 6,
		ASDegree:     2,
		IntraExtra:   2,
		InterLinks:   1,
		Model:        BarabasiAlbert,
		WaxmanAlpha:  0.4,
		WaxmanBeta:   0.2,
	}
}

// Internet is the generated two-tier ground-truth network. The router
// graph is what "really exists"; the tomography algorithms never see
// it directly.
type Internet struct {
	Routers  *graph.Graph // router-level graph; edge IDs are router-link IDs
	RouterAS []int        // router -> AS number
	NumAS    int
	ASGraph  *graph.Graph // AS-level peering graph (one vertex per AS)
}

// Generate builds an Internet from cfg using rng. The router graph is
// guaranteed connected.
func Generate(cfg Config, rng *rand.Rand) (*Internet, error) {
	if cfg.NumAS < 2 || cfg.RoutersPerAS < 1 || cfg.ASDegree < 1 || cfg.InterLinks < 1 {
		return nil, fmt.Errorf("brite: invalid config %+v", cfg)
	}
	asGraph, err := generateASGraph(cfg, rng)
	if err != nil {
		return nil, err
	}

	nRouters := cfg.NumAS * cfg.RoutersPerAS
	routers := graph.New(nRouters)
	routerAS := make([]int, nRouters)
	routerOf := func(as, k int) int { return as*cfg.RoutersPerAS + k }
	for as := 0; as < cfg.NumAS; as++ {
		for k := 0; k < cfg.RoutersPerAS; k++ {
			routerAS[routerOf(as, k)] = as
		}
		// Intra-AS: random spanning tree plus extra edges.
		for k := 1; k < cfg.RoutersPerAS; k++ {
			routers.AddEdge(routerOf(as, rng.Intn(k)), routerOf(as, k))
		}
		for x := 0; x < cfg.IntraExtra && cfg.RoutersPerAS > 2; x++ {
			u, v := rng.Intn(cfg.RoutersPerAS), rng.Intn(cfg.RoutersPerAS)
			if u != v && !routers.HasEdge(routerOf(as, u), routerOf(as, v)) {
				routers.AddEdge(routerOf(as, u), routerOf(as, v))
			}
		}
	}
	// Inter-AS peering links between random border routers.
	for e := 0; e < asGraph.M(); e++ {
		ep := asGraph.Endpoints(e)
		for k := 0; k < cfg.InterLinks; k++ {
			u := routerOf(ep[0], rng.Intn(cfg.RoutersPerAS))
			v := routerOf(ep[1], rng.Intn(cfg.RoutersPerAS))
			routers.AddEdge(u, v)
		}
	}
	inet := &Internet{Routers: routers, RouterAS: routerAS, NumAS: cfg.NumAS, ASGraph: asGraph}
	if !routers.Connected() {
		return nil, fmt.Errorf("brite: generated router graph is disconnected (config %+v)", cfg)
	}
	return inet, nil
}

// generateASGraph builds the AS-level peering graph.
func generateASGraph(cfg Config, rng *rand.Rand) (*graph.Graph, error) {
	g := graph.New(cfg.NumAS)
	switch cfg.Model {
	case BarabasiAlbert:
		// Preferential attachment: each new AS connects to ASDegree
		// existing ASes chosen ∝ degree+1.
		for v := 1; v < cfg.NumAS; v++ {
			chosen := make(map[int]bool)
			var targets []int // kept ordered for deterministic edge IDs
			for len(targets) < cfg.ASDegree && len(targets) < v {
				// Roulette-wheel over degree+1.
				total := 0
				for u := 0; u < v; u++ {
					total += g.Degree(u) + 1
				}
				pick := rng.Intn(total)
				for u := 0; u < v; u++ {
					pick -= g.Degree(u) + 1
					if pick < 0 {
						if !chosen[u] {
							chosen[u] = true
							targets = append(targets, u)
						}
						break
					}
				}
			}
			for _, u := range targets {
				g.AddEdge(u, v)
			}
		}
	case Waxman:
		xs := make([]float64, cfg.NumAS)
		ys := make([]float64, cfg.NumAS)
		for i := range xs {
			xs[i], ys[i] = rng.Float64(), rng.Float64()
		}
		l := math.Sqrt2 // max distance in the unit square
		for u := 0; u < cfg.NumAS; u++ {
			for v := u + 1; v < cfg.NumAS; v++ {
				d := math.Hypot(xs[u]-xs[v], ys[u]-ys[v])
				if rng.Float64() < cfg.WaxmanAlpha*math.Exp(-d/(cfg.WaxmanBeta*l)) {
					g.AddEdge(u, v)
				}
			}
		}
		// Stitch any disconnected components with a spanning chain.
		for v := 1; v < cfg.NumAS; v++ {
			if _, _, ok := g.ShortestPath(0, v); !ok {
				g.AddEdge(rng.Intn(v), v)
			}
		}
	default:
		return nil, fmt.Errorf("brite: unknown AS model %d", cfg.Model)
	}
	return g, nil
}

// Route is a router-level end-to-end route: the ordered router vertices
// and router-link edge IDs of one measured path.
type Route struct {
	Vertices []int
	Edges    []int
}

// RandomRoutes samples n distinct shortest routes between random router
// pairs whose endpoints sit in different ASes. It gives up (returns
// fewer) after a bounded number of attempts, which only happens on
// degenerate configurations.
func (in *Internet) RandomRoutes(n int, rng *rand.Rand) []Route {
	var out []Route
	seen := map[[2]int]bool{}
	for attempts := 0; len(out) < n && attempts < 50*n; attempts++ {
		src := rng.Intn(in.Routers.N())
		dst := rng.Intn(in.Routers.N())
		if src == dst || in.RouterAS[src] == in.RouterAS[dst] || seen[[2]int{src, dst}] {
			continue
		}
		vs, es, ok := in.Routers.RandomizedShortestPath(src, dst, rng)
		if !ok || len(es) == 0 {
			continue
		}
		seen[[2]int{src, dst}] = true
		out = append(out, Route{Vertices: vs, Edges: es})
	}
	return out
}

// Overlay converts router-level routes into the AS-level measurement
// topology the tomography algorithms see. Consecutive route hops inside
// one AS collapse into a single intra-domain AS-level link (identified
// by its border-router pair), and each inter-domain router link becomes
// an inter-domain AS-level link. Every AS-level link records its
// underlying router-link IDs; correlation sets are one per AS.
//
// Routes whose AS-level rendering would traverse the same AS-level link
// twice (possible when a route re-enters an AS) are dropped, matching
// the paper's loop-free path model.
func Overlay(in *Internet, routes []Route) (*topology.Topology, error) {
	type linkKey struct {
		a, b  int // normalized endpoint router IDs
		intra bool
	}
	linkID := map[linkKey]int{}
	var links []topology.Link
	var paths []topology.Path

	getLink := func(key linkKey, as int, routerLinks []int) int {
		if id, ok := linkID[key]; ok {
			return id
		}
		id := len(links)
		linkID[key] = id
		kind := "inter"
		if key.intra {
			kind = "intra"
		}
		links = append(links, topology.Link{
			ID:          id,
			Name:        fmt.Sprintf("%s:AS%d:%d-%d", kind, as, key.a, key.b),
			AS:          as,
			RouterLinks: append([]int(nil), routerLinks...),
		})
		return id
	}
	norm := func(a, b int) (int, int) {
		if a > b {
			return b, a
		}
		return a, b
	}

	for _, rt := range routes {
		var pathLinks []int
		i := 0
		valid := true
		for i < len(rt.Edges) {
			u := rt.Vertices[i]
			if in.RouterAS[u] == in.RouterAS[rt.Vertices[i+1]] {
				// Collapse the maximal intra-AS run starting at i.
				as := in.RouterAS[u]
				j := i
				var segEdges []int
				for j < len(rt.Edges) && in.RouterAS[rt.Vertices[j+1]] == as {
					segEdges = append(segEdges, rt.Edges[j])
					j++
				}
				a, b := norm(u, rt.Vertices[j])
				pathLinks = append(pathLinks, getLink(linkKey{a: a, b: b, intra: true}, as, segEdges))
				i = j
			} else {
				// Inter-domain hop; attribute the link to the peer
				// (destination-side) AS, which is the network being
				// monitored from the source side.
				v := rt.Vertices[i+1]
				a, b := norm(u, v)
				pathLinks = append(pathLinks, getLink(linkKey{a: a, b: b, intra: false}, in.RouterAS[v], []int{rt.Edges[i]}))
				i++
			}
		}
		// Enforce loop-freedom at the AS-link level.
		dup := map[int]bool{}
		for _, li := range pathLinks {
			if dup[li] {
				valid = false
				break
			}
			dup[li] = true
		}
		if !valid || len(pathLinks) == 0 {
			continue
		}
		paths = append(paths, topology.Path{
			ID:    len(paths),
			Name:  fmt.Sprintf("p%d:%d->%d", len(paths), rt.Vertices[0], rt.Vertices[len(rt.Vertices)-1]),
			Links: pathLinks,
		})
	}
	if len(paths) == 0 {
		return nil, fmt.Errorf("brite: no valid paths in overlay")
	}
	top := &topology.Topology{Links: links, Paths: paths, CorrSets: topology.CorrelationSetsByAS(links)}
	if err := top.Build(); err != nil {
		return nil, err
	}
	return top, nil
}

// DenseTopology generates the paper's "Brite topology": a dense
// AS-level overlay obtained by routing numPaths random end-to-end
// routes over a generated Internet. It returns both the overlay and the
// ground-truth Internet (needed by the simulator for router-level
// correlations).
func DenseTopology(cfg Config, numPaths int, rng *rand.Rand) (*topology.Topology, *Internet, error) {
	in, err := Generate(cfg, rng)
	if err != nil {
		return nil, nil, err
	}
	top, err := Overlay(in, in.RandomRoutes(numPaths, rng))
	if err != nil {
		return nil, nil, err
	}
	return top, in, nil
}
