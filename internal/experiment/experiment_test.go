package experiment

import (
	"strings"
	"testing"
)

func TestBuildTopologyKinds(t *testing.T) {
	scale := Small()
	brite, err := BuildTopology(Brite, scale, 1)
	if err != nil {
		t.Fatal(err)
	}
	sparse, err := BuildTopology(Sparse, scale, 1)
	if err != nil {
		t.Fatal(err)
	}
	if brite.NumPaths() == 0 || sparse.NumPaths() == 0 {
		t.Fatal("empty topologies")
	}
	if _, err := BuildTopology(TopologyKind(9), scale, 1); err == nil {
		t.Fatal("unknown kind accepted")
	}
}

func TestFigure3SmallScale(t *testing.T) {
	if testing.Short() {
		t.Skip("figure runs are slow")
	}
	cfg := DefaultConfig(Small())
	rows, err := Figure3(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("got %d scenario rows, want 5", len(rows))
	}
	for _, r := range rows {
		for _, alg := range Fig3AlgorithmNames {
			d, okD := r.Detection[alg]
			f, okF := r.FalsePositive[alg]
			if !okD || !okF {
				t.Fatalf("%s: missing results for %s", r.Scenario, alg)
			}
			if d < 0 || d > 1 || f < 0 || f > 1 {
				t.Fatalf("%s/%s: rates out of range: %v %v", r.Scenario, alg, d, f)
			}
		}
		// Sanity: in every scenario, some detection happens.
		if r.Detection["Sparsity"] == 0 && r.Detection["Bayesian-Independence"] == 0 {
			t.Fatalf("%s: no algorithm detected anything", r.Scenario)
		}
	}
	out := RenderFigure3(rows)
	if !strings.Contains(out, "Figure 3(a)") || !strings.Contains(out, "Sparse Topology") {
		t.Fatalf("render missing sections:\n%s", out)
	}
}

func TestFigure4SmallScale(t *testing.T) {
	if testing.Short() {
		t.Skip("figure runs are slow")
	}
	cfg := DefaultConfig(Small())
	for _, kind := range []TopologyKind{Brite, Sparse} {
		rows, err := Figure4(cfg, kind)
		if err != nil {
			t.Fatal(err)
		}
		if len(rows) != 3 {
			t.Fatalf("%v: got %d rows, want 3", kind, len(rows))
		}
		for _, r := range rows {
			for _, alg := range Fig4AlgorithmNames {
				errs, ok := r.Errors[alg]
				if !ok || len(errs) == 0 {
					t.Fatalf("%v/%s: no errors recorded for %s", kind, r.Scenario, alg)
				}
				m := r.MeanErr(alg)
				if m < 0 || m > 1 {
					t.Fatalf("%v/%s/%s: mean abs error %v out of range", kind, r.Scenario, alg, m)
				}
			}
		}
		out := RenderFigure4(rows, kind)
		if !strings.Contains(out, "Mean absolute error") {
			t.Fatal("render missing header")
		}
	}
}

func TestFigure4CDFSmallScale(t *testing.T) {
	if testing.Short() {
		t.Skip("figure runs are slow")
	}
	cfg := DefaultConfig(Small())
	points := []float64{0, 0.1, 0.2, 0.5, 1}
	curves, err := Figure4CDF(cfg, points)
	if err != nil {
		t.Fatal(err)
	}
	for _, alg := range Fig4AlgorithmNames {
		curve, ok := curves[alg]
		if !ok || len(curve) != len(points) {
			t.Fatalf("missing curve for %s", alg)
		}
		for i := 1; i < len(curve); i++ {
			if curve[i] < curve[i-1] {
				t.Fatalf("%s: CDF not monotone: %v", alg, curve)
			}
		}
		if curve[len(curve)-1] != 1 {
			t.Fatalf("%s: CDF does not reach 1 at abs.err=1: %v", alg, curve)
		}
	}
	if out := RenderFigure4CDF(points, curves); !strings.Contains(out, "Figure 4(c)") {
		t.Fatal("render missing header")
	}
}

func TestFigure4SubsetsSmallScale(t *testing.T) {
	if testing.Short() {
		t.Skip("figure runs are slow")
	}
	cfg := DefaultConfig(Small())
	cells, err := Figure4Subsets(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 2 {
		t.Fatalf("got %d cells, want 2 (Brite, Sparse)", len(cells))
	}
	for _, c := range cells {
		if c.LinkErr < 0 || c.LinkErr > 1 || c.SubsetErr < 0 || c.SubsetErr > 1 {
			t.Fatalf("%v: errors out of range: %+v", c.Topology, c)
		}
	}
	if out := RenderFigure4d(cells); !strings.Contains(out, "Figure 4(d)") {
		t.Fatal("render missing header")
	}
}

func TestTable2Matrix(t *testing.T) {
	cols, cells := Table2()
	if len(cols) != 3 {
		t.Fatalf("cols = %v", cols)
	}
	// The paper's Table 2: Sparsity assumes Homogeneity, CLINK assumes
	// Independence, Bayesian-Correlation assumes Correlation Sets and
	// needs Identifiability++.
	if !cells["Sparsity"]["Homogeneity"] {
		t.Fatal("Sparsity must list Homogeneity")
	}
	if !cells["Bayesian-Independence"]["Independence"] {
		t.Fatal("Bayesian-Independence must list Independence")
	}
	if !cells["Bayesian-Correlation"]["Correlation Sets"] || !cells["Bayesian-Correlation"]["Identifiability++"] {
		t.Fatal("Bayesian-Correlation must list Correlation Sets and Identifiability++")
	}
	for _, c := range cols {
		if !cells[c]["Separability"] || !cells[c]["E2E Monitoring"] {
			t.Fatalf("%s missing universal assumptions", c)
		}
	}
	out := RenderTable2()
	for _, row := range Table2Rows {
		if !strings.Contains(out, row) {
			t.Fatalf("render missing row %q", row)
		}
	}
}

func TestScalesAreOrdered(t *testing.T) {
	s, m, p := Small(), Medium(), Paper()
	if !(s.BritePaths < m.BritePaths && m.BritePaths <= p.BritePaths) {
		t.Fatal("scales not ordered by path count")
	}
	if !(s.Intervals <= m.Intervals && m.Intervals <= p.Intervals) {
		t.Fatal("scales not ordered by interval count")
	}
}
