package experiment

import (
	"reflect"
	"testing"
)

// tinyScale keeps the serial-vs-parallel comparison runs fast: the
// determinism guarantee is structural (per-trial seeds, per-slot
// writes), not scale-dependent.
func tinyScale() Scale {
	return Scale{
		BriteNumAS: 12, BriteRoutersPerAS: 3, BritePaths: 40,
		SparseNumAS: 20, SparseRoutersPerAS: 4, SparsePaths: 30,
		Intervals: 60, PacketsPerPath: 400,
	}
}

// The parallel experiment engine must produce bit-identical rows to
// the serial engine for the same seed, for every worker count.
func TestFigure3ParallelMatchesSerial(t *testing.T) {
	cfg := DefaultConfig(tinyScale())
	cfg.Workers = 1 // explicit serial opt-out (0 now defaults to all CPUs)
	serial, err := Figure3(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{0, 2, 4, -1} {
		pcfg := cfg
		pcfg.Workers = workers
		par, err := Figure3(pcfg)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(serial, par) {
			t.Fatalf("workers=%d: Figure3 rows diverge from serial\nserial:   %+v\nparallel: %+v",
				workers, serial, par)
		}
	}
}

func TestFigure4ParallelMatchesSerial(t *testing.T) {
	cfg := DefaultConfig(tinyScale())
	cfg.Workers = 1 // explicit serial opt-out
	for _, kind := range []TopologyKind{Brite, Sparse} {
		serial, err := Figure4(cfg, kind)
		if err != nil {
			t.Fatal(err)
		}
		pcfg := cfg
		pcfg.Workers = 0 // the new default: all CPUs
		par, err := Figure4(pcfg, kind)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(serial, par) {
			t.Fatalf("%v: Figure4 rows diverge from serial", kind)
		}
	}
}

func TestFigure4SubsetsParallelMatchesSerial(t *testing.T) {
	cfg := DefaultConfig(tinyScale())
	cfg.Workers = 1 // explicit serial opt-out
	serial, err := Figure4Subsets(cfg)
	if err != nil {
		t.Fatal(err)
	}
	pcfg := cfg
	pcfg.Workers = 0 // the new default: all CPUs
	par, err := Figure4Subsets(pcfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(serial, par) {
		t.Fatalf("Figure4Subsets cells diverge from serial\nserial:   %+v\nparallel: %+v", serial, par)
	}
}
