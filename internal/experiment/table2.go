package experiment

import (
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/inference"
	"repro/internal/probcalc"
)

// Table2Rows are the sources of inaccuracy in the paper's Table 2, in
// row order.
var Table2Rows = []string{
	"Separability",
	"E2E Monitoring",
	"Homogeneity",
	"Independence",
	"Correlation Sets",
	"Identifiability",
	"Identifiability++",
	"Other approx./heuristic",
}

// Table2 regenerates the assumption matrix from the algorithms' own
// metadata: each cell is true when the algorithm relies on that
// assumption/condition/approximation.
func Table2() (cols []string, cells map[string]map[string]bool) {
	algs := []inference.Algorithm{
		inference.NewSparsity(),
		inference.NewBayesianIndependence(probcalc.IndependenceConfig{}),
		inference.NewBayesianCorrelation(core.Config{}),
	}
	cells = map[string]map[string]bool{}
	for _, a := range algs {
		cols = append(cols, a.Name())
		m := map[string]bool{}
		for _, s := range a.Assumptions() {
			m[s] = true
		}
		cells[a.Name()] = m
	}
	return cols, cells
}

// RenderTable2 formats the matrix like the paper's Table 2.
func RenderTable2() string {
	cols, cells := Table2()
	var b strings.Builder
	b.WriteString("Table 2: Sources of inaccuracy for Boolean Inference algorithms\n")
	fmt.Fprintf(&b, "%-26s", "")
	for _, c := range cols {
		fmt.Fprintf(&b, " %22s", c)
	}
	b.WriteByte('\n')
	for _, row := range Table2Rows {
		fmt.Fprintf(&b, "%-26s", row)
		for _, c := range cols {
			mark := ""
			if cells[c][row] {
				mark = "X"
			}
			fmt.Fprintf(&b, " %22s", mark)
		}
		b.WriteByte('\n')
	}
	return b.String()
}
