package experiment

import (
	"context"
	"fmt"
	"strings"

	"repro/internal/bitset"
	"repro/internal/core"
	"repro/internal/estimator"
	"repro/internal/metrics"
	"repro/internal/netsim"
)

// Fig4AlgorithmNames lists the Probability Computation algorithms in
// the paper's legend order.
var Fig4AlgorithmNames = []string{"Independence", "Correlation-heuristic", "Correlation-complete"}

// fig4Registry maps the paper's legend names onto estimator registry
// names: the figure drivers select algorithms by name like every other
// surface.
var fig4Registry = map[string]string{
	"Independence":          estimator.Independence,
	"Correlation-heuristic": estimator.CorrelationHeuristic,
	"Correlation-complete":  estimator.CorrelationComplete,
}

// fig4Scenarios are the three x-axis groups of Figures 4(a) and 4(b).
// Per §5.4, the No-Stationarity behaviour is layered on top of each
// scenario ("the congestion probability of each link changes every few
// time intervals").
func fig4Scenarios() []fig3Scenario {
	return []fig3Scenario{
		{"Random Congestion", Brite, netsim.RandomCongestion, true},
		{"Concentrated Congestion", Brite, netsim.ConcentratedCongestion, true},
		{"No Independence", Brite, netsim.NoIndependence, true},
	}
}

// Fig4Row holds, for one scenario, the per-link absolute errors of each
// algorithm (the mean is the bar of Figure 4(a)/(b); the raw values
// feed the CDF of Figure 4(c)).
type Fig4Row struct {
	Scenario string
	Topology TopologyKind
	// Errors[alg] lists |estimated − true| over the evaluated links.
	Errors map[string][]float64
}

// MeanErr returns the mean absolute error for one algorithm.
func (r Fig4Row) MeanErr(alg string) float64 { return metrics.MeanOf(r.Errors[alg]) }

// estimatorOptions maps the experiment configuration onto the shared
// functional options every estimator accepts.
func (c Config) estimatorOptions() []estimator.Option {
	return []estimator.Option{
		estimator.WithMaxSubsetSize(c.MaxSubsetSize),
		estimator.WithAlwaysGoodTol(c.AlwaysGoodTol),
		estimator.WithConcurrency(c.solverConcurrency()),
		estimator.WithSeed(c.Seed),
	}
}

// linkEstimates runs the three Probability Computation algorithms —
// selected from the estimator registry by name — over one simulated
// monitoring period and returns per-algorithm per-link estimates of
// P(X_e = 1).
func linkEstimates(cfg Config, run *simRun) (map[string][]float64, *bitset.Set, error) {
	n := run.top.NumLinks()
	out := map[string][]float64{}
	opts := cfg.estimatorOptions()

	var pot *bitset.Set
	for _, legend := range Fig4AlgorithmNames {
		est, err := estimator.New(fig4Registry[legend])
		if err != nil {
			return nil, nil, err
		}
		res, err := est.Estimate(context.Background(), run.top, run.rec, opts...)
		if err != nil {
			return nil, nil, err
		}
		out[legend] = res.LinkProb
		if legend == "Correlation-complete" {
			pot = res.PotentiallyCongested
		}
	}

	// Evaluation set: potentially congested links covered by at least
	// one path (the links for which "computing the probability" is a
	// meaningful ask; uncovered links carry no signal for any
	// algorithm).
	eval := bitset.New(n)
	pot.ForEach(func(e int) bool {
		if !run.top.LinkPaths(e).IsEmpty() {
			eval.Add(e)
		}
		return true
	})
	return out, eval, nil
}

// Figure4 regenerates one panel of Figure 4(a)/(b): the mean absolute
// error of each algorithm's per-link congestion probabilities under the
// three scenarios, on the given topology kind. Scenario rows fan out
// over cfg.Workers goroutines with per-trial seeds (cfg.Seed+200+i), so
// the output is bit-identical to the serial run.
func Figure4(cfg Config, kind TopologyKind) ([]Fig4Row, error) {
	top, err := BuildTopology(kind, cfg.Scale, cfg.Seed)
	if err != nil {
		return nil, err
	}
	scenarios := fig4Scenarios()
	rows := make([]Fig4Row, len(scenarios))
	err = forEachTrial(cfg.Workers, len(scenarios), func(i int) error {
		sc := scenarios[i]
		run, err := runSim(cfg, top, sc.scen, sc.nonStationary, cfg.Seed+int64(200+i))
		if err != nil {
			return err
		}
		ests, eval, err := linkEstimates(cfg, run)
		if err != nil {
			return fmt.Errorf("figure4 %s: %w", sc.name, err)
		}
		truth := make([]float64, run.top.NumLinks())
		for e := range truth {
			truth[e] = run.model.TrueLinkProb(e)
		}
		row := Fig4Row{Scenario: sc.name, Topology: kind, Errors: map[string][]float64{}}
		for alg, est := range ests {
			row.Errors[alg] = metrics.AbsErrors(est, truth, eval.Contains)
		}
		rows[i] = row
		return nil
	})
	if err != nil {
		return nil, err
	}
	return rows, nil
}

// Figure4CDF regenerates Figure 4(c): the CDF of the absolute error in
// the No-Independence scenario on the Sparse topology. points are the
// x-axis values; the returned map holds one curve per algorithm.
func Figure4CDF(cfg Config, points []float64) (map[string][]float64, error) {
	top, err := BuildTopology(Sparse, cfg.Scale, cfg.Seed)
	if err != nil {
		return nil, err
	}
	run, err := runSim(cfg, top, netsim.NoIndependence, true, cfg.Seed+300)
	if err != nil {
		return nil, err
	}
	ests, eval, err := linkEstimates(cfg, run)
	if err != nil {
		return nil, err
	}
	truth := make([]float64, run.top.NumLinks())
	for e := range truth {
		truth[e] = run.model.TrueLinkProb(e)
	}
	out := map[string][]float64{}
	for alg, est := range ests {
		out[alg] = metrics.CDF(metrics.AbsErrors(est, truth, eval.Contains), points)
	}
	return out, nil
}

// Fig4dCell is one bar of Figure 4(d): the Correlation-complete mean
// absolute error over individual links and over identifiable
// correlation subsets (size ≥ 2), per topology kind, in the
// No-Independence scenario.
type Fig4dCell struct {
	Topology   TopologyKind
	LinkErr    float64
	SubsetErr  float64
	NumSubsets int // identifiable multi-link subsets evaluated
}

// Figure4Subsets regenerates Figure 4(d). The two topology kinds run
// as independent trials on the cfg.Workers pool.
func Figure4Subsets(cfg Config) ([]Fig4dCell, error) {
	kinds := []TopologyKind{Brite, Sparse}
	out := make([]Fig4dCell, len(kinds))
	err := forEachTrial(cfg.Workers, len(kinds), func(ki int) error {
		kind := kinds[ki]
		top, err := BuildTopology(kind, cfg.Scale, cfg.Seed)
		if err != nil {
			return err
		}
		run, err := runSim(cfg, top, netsim.NoIndependence, true, cfg.Seed+400)
		if err != nil {
			return err
		}
		complete, err := core.Compute(context.Background(), run.top, run.rec, run.coreCf)
		if err != nil {
			return err
		}
		var linkErr, subsetErr metrics.Mean
		for e := 0; e < run.top.NumLinks(); e++ {
			if !complete.PotentiallyCongested.Contains(e) || run.top.LinkPaths(e).IsEmpty() {
				continue
			}
			est, _ := complete.LinkCongestProbOrFallback(e)
			linkErr.Add(absDiff(est, run.model.TrueLinkProb(e)))
		}
		nsubs := 0
		for _, s := range complete.Subsets {
			if !s.Identifiable || s.Links.Count() < 2 {
				continue
			}
			est, ok := complete.CongestedProb(s.Links)
			if !ok {
				continue
			}
			subsetErr.Add(absDiff(est, run.model.TrueCongestedProb(s.Links)))
			nsubs++
		}
		out[ki] = Fig4dCell{
			Topology:   kind,
			LinkErr:    linkErr.Value(),
			SubsetErr:  subsetErr.Value(),
			NumSubsets: nsubs,
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

func absDiff(a, b float64) float64 {
	if a > b {
		return a - b
	}
	return b - a
}

// RenderFigure4 formats one panel of Figure 4(a)/(b).
func RenderFigure4(rows []Fig4Row, kind TopologyKind) string {
	var b strings.Builder
	panel := "(a)"
	if kind == Sparse {
		panel = "(b)"
	}
	fmt.Fprintf(&b, "Figure 4%s: Mean absolute error, %s topologies\n", panel, kind)
	fmt.Fprintf(&b, "%-26s", "scenario")
	for _, alg := range Fig4AlgorithmNames {
		fmt.Fprintf(&b, " %22s", alg)
	}
	b.WriteByte('\n')
	for _, r := range rows {
		fmt.Fprintf(&b, "%-26s", r.Scenario)
		for _, alg := range Fig4AlgorithmNames {
			fmt.Fprintf(&b, " %22.4f", r.MeanErr(alg))
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// RenderFigure4CDF formats Figure 4(c).
func RenderFigure4CDF(points []float64, curves map[string][]float64) string {
	var b strings.Builder
	b.WriteString("Figure 4(c): CDF of absolute error, No Independence, Sparse topologies\n")
	fmt.Fprintf(&b, "%-10s", "abs.err")
	for _, alg := range Fig4AlgorithmNames {
		fmt.Fprintf(&b, " %22s", alg)
	}
	b.WriteByte('\n')
	for i, p := range points {
		fmt.Fprintf(&b, "%-10.2f", p)
		for _, alg := range Fig4AlgorithmNames {
			fmt.Fprintf(&b, " %22.3f", curves[alg][i])
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// RenderFigure4d formats Figure 4(d).
func RenderFigure4d(cells []Fig4dCell) string {
	var b strings.Builder
	b.WriteString("Figure 4(d): Correlation-complete mean absolute error, No Independence\n")
	fmt.Fprintf(&b, "%-10s %12s %20s %12s\n", "topology", "links", "correlation subsets", "#subsets")
	for _, c := range cells {
		fmt.Fprintf(&b, "%-10s %12.4f %20.4f %12d\n", c.Topology, c.LinkErr, c.SubsetErr, c.NumSubsets)
	}
	return b.String()
}
