package experiment

import (
	"context"
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/inference"
	"repro/internal/metrics"
	"repro/internal/netsim"
	"repro/internal/probcalc"
)

// Fig3AlgorithmNames lists the inference algorithms in the paper's
// legend order.
var Fig3AlgorithmNames = []string{"Sparsity", "Bayesian-Independence", "Bayesian-Correlation"}

// Fig3Row is one scenario group of Figure 3: the average detection rate
// and false-positive rate of each algorithm over the monitoring period.
type Fig3Row struct {
	Scenario      string
	Topology      TopologyKind
	Detection     map[string]float64
	FalsePositive map[string]float64
}

// fig3Scenarios are the five x-axis groups of Figure 3.
type fig3Scenario struct {
	name          string
	kind          TopologyKind
	scen          netsim.Scenario
	nonStationary bool
}

func fig3Scenarios() []fig3Scenario {
	return []fig3Scenario{
		{"Random Congestion", Brite, netsim.RandomCongestion, false},
		{"Concentrated Congestion", Brite, netsim.ConcentratedCongestion, false},
		{"No Independence", Brite, netsim.NoIndependence, false},
		{"No Stationarity", Brite, netsim.NoIndependence, true},
		{"Sparse Topology", Sparse, netsim.RandomCongestion, false},
	}
}

// newInferenceAlgorithms instantiates the three algorithms under the
// shared configuration. BayesianCorrelation's inner solver concurrency
// goes through the same resolution as every other per-trial solve so a
// parallel trial fan-out does not oversubscribe the CPUs.
func newInferenceAlgorithms(cfg Config) []inference.Algorithm {
	return []inference.Algorithm{
		inference.NewSparsity(),
		inference.NewBayesianIndependence(probcalc.IndependenceConfig{
			AlwaysGoodTol: cfg.AlwaysGoodTol,
			Seed:          cfg.Seed,
		}),
		inference.NewBayesianCorrelation(core.Config{
			MaxSubsetSize: cfg.MaxSubsetSize,
			AlwaysGoodTol: cfg.AlwaysGoodTol,
			Concurrency:   cfg.solverConcurrency(),
		}),
	}
}

// Figure3 regenerates both panels of Figure 3: for each of the five
// scenarios, the per-algorithm average detection rate (panel a) and
// false-positive rate (panel b). Scenario rows fan out over
// cfg.Workers goroutines; each scenario seeds its own RNG
// (cfg.Seed+100+i) and owns its simulator, recorder and algorithm
// instances, so the rows are bit-identical to the serial run. The two
// topologies are built once up front and shared read-only.
func Figure3(cfg Config) ([]Fig3Row, error) {
	briteTop, err := BuildTopology(Brite, cfg.Scale, cfg.Seed)
	if err != nil {
		return nil, err
	}
	sparseTop, err := BuildTopology(Sparse, cfg.Scale, cfg.Seed)
	if err != nil {
		return nil, err
	}
	scenarios := fig3Scenarios()
	rows := make([]Fig3Row, len(scenarios))
	err = forEachTrial(cfg.Workers, len(scenarios), func(i int) error {
		sc := scenarios[i]
		top := briteTop
		if sc.kind == Sparse {
			top = sparseTop
		}
		run, err := runSim(cfg, top, sc.scen, sc.nonStationary, cfg.Seed+int64(100+i))
		if err != nil {
			return err
		}
		row := Fig3Row{
			Scenario:      sc.name,
			Topology:      sc.kind,
			Detection:     map[string]float64{},
			FalsePositive: map[string]float64{},
		}
		for _, alg := range newInferenceAlgorithms(cfg) {
			if err := alg.Prepare(context.Background(), run.top, run.rec); err != nil {
				return fmt.Errorf("figure3 %s/%s: %w", sc.name, alg.Name(), err)
			}
			var dr, fpr metrics.Mean
			for t := range run.truth {
				inferred := alg.Infer(run.truth[t].CongestedPaths)
				actual := run.truth[t].CongestedLinks
				r, ok := metrics.DetectionRate(inferred, actual)
				dr.AddIf(r, ok)
				f, ok := metrics.FalsePositiveRate(inferred, actual)
				fpr.AddIf(f, ok)
			}
			row.Detection[alg.Name()] = dr.Value()
			row.FalsePositive[alg.Name()] = fpr.Value()
		}
		rows[i] = row
		return nil
	})
	if err != nil {
		return nil, err
	}
	return rows, nil
}

// RenderFigure3 formats the rows like the paper's two panels.
func RenderFigure3(rows []Fig3Row) string {
	var b strings.Builder
	b.WriteString("Figure 3(a): Detection Rate\n")
	renderFig3Panel(&b, rows, func(r Fig3Row, alg string) float64 { return r.Detection[alg] })
	b.WriteString("\nFigure 3(b): False Positive Rate\n")
	renderFig3Panel(&b, rows, func(r Fig3Row, alg string) float64 { return r.FalsePositive[alg] })
	return b.String()
}

func renderFig3Panel(b *strings.Builder, rows []Fig3Row, get func(Fig3Row, string) float64) {
	fmt.Fprintf(b, "%-26s", "scenario")
	for _, alg := range Fig3AlgorithmNames {
		fmt.Fprintf(b, " %22s", alg)
	}
	b.WriteByte('\n')
	for _, r := range rows {
		fmt.Fprintf(b, "%-26s", r.Scenario)
		for _, alg := range Fig3AlgorithmNames {
			fmt.Fprintf(b, " %22.3f", get(r, alg))
		}
		b.WriteByte('\n')
	}
}
