// Package experiment regenerates the paper's evaluation: the five
// Boolean-Inference scenarios of Figure 3 and the Probability
// Computation comparisons of Figure 4, plus the assumption matrix of
// Table 2. Each figure has a function returning structured rows and an
// ASCII renderer used by cmd/tomo and the benchmark harness.
package experiment

import (
	"fmt"
	"math/rand"
	"runtime"

	"repro/internal/brite"
	"repro/internal/core"
	"repro/internal/netsim"
	"repro/internal/observe"
	"repro/internal/parallel"
	"repro/internal/topology"
	"repro/internal/traceroute"
)

// TopologyKind selects between the paper's two topology families.
type TopologyKind int

const (
	// Brite is the dense synthetic AS-level overlay (§3.2).
	Brite TopologyKind = iota
	// Sparse is the traceroute-campaign overlay of the source ISP.
	Sparse
)

// String names the kind as in the paper.
func (k TopologyKind) String() string {
	if k == Sparse {
		return "Sparse"
	}
	return "Brite"
}

// Scale sizes an experiment. The paper's topologies are ≈1000 links /
// 1500 paths (Brite) and ≈2000 links / 1500 paths (Sparse) over 1000
// intervals; Paper() reproduces that, Medium() keeps full-figure runs
// in CLI range, Small() keeps tests and benchmarks fast.
type Scale struct {
	BriteNumAS, BriteRoutersPerAS, BritePaths    int
	SparseNumAS, SparseRoutersPerAS, SparsePaths int
	Intervals                                    int
	PacketsPerPath                               int
}

// Small is the test/bench scale.
func Small() Scale {
	return Scale{
		BriteNumAS: 40, BriteRoutersPerAS: 4, BritePaths: 150,
		SparseNumAS: 60, SparseRoutersPerAS: 5, SparsePaths: 120,
		Intervals: 200, PacketsPerPath: 800,
	}
}

// Medium is the default CLI scale: the same qualitative regime as the
// paper (Sparse has more links than paths, Brite far fewer) at a size
// each full figure regenerates in minutes on a laptop.
func Medium() Scale {
	return Scale{
		BriteNumAS: 150, BriteRoutersPerAS: 4, BritePaths: 700,
		SparseNumAS: 140, SparseRoutersPerAS: 6, SparsePaths: 700,
		Intervals: 1000, PacketsPerPath: 1000,
	}
}

// Paper is the paper's full scale.
func Paper() Scale {
	return Scale{
		BriteNumAS: 250, BriteRoutersPerAS: 5, BritePaths: 1500,
		SparseNumAS: 300, SparseRoutersPerAS: 7, SparsePaths: 1500,
		Intervals: 1000, PacketsPerPath: 1000,
	}
}

// Config parameterizes a figure run.
type Config struct {
	Scale Scale
	Seed  int64

	// AlwaysGoodTol is passed to every algorithm: with probe-based E2E
	// monitoring, false positives make the paper's strict always-good
	// definition vacuous, so a small tolerance is used instead (see
	// EXPERIMENTS.md).
	AlwaysGoodTol float64

	// MaxSubsetSize is the Correlation-complete resource knob.
	MaxSubsetSize int

	// Workers bounds the goroutines the figure drivers fan scenario
	// rows out to. Every trial derives its RNG from the scenario index
	// (rand.NewSource(Seed+trial)) and owns its simulator and recorder,
	// so the output is bit-identical to the serial run regardless of
	// scheduling. 0 (the default) and negative use all CPUs; 1 is the
	// explicit serial opt-out.
	Workers int

	// Concurrency is passed through to core.Config.Concurrency: the
	// worker count inside each Correlation-complete run (bit-identical
	// to serial). It multiplies with Workers, so when it is left at 0
	// and trials fan out in parallel, each trial's solver runs serially
	// instead of oversubscribing every CPU per trial; with a serial
	// trial loop (Workers = 1) the 0 default resolves to all CPUs.
	// 1 is the explicit serial opt-out; negative forces all CPUs.
	Concurrency int
}

// DefaultConfig returns the configuration used by EXPERIMENTS.md.
func DefaultConfig(scale Scale) Config {
	return Config{Scale: scale, Seed: 1, AlwaysGoodTol: 0.02, MaxSubsetSize: 2}
}

// BuildTopology generates one of the two topology families at the
// configured scale.
func BuildTopology(kind TopologyKind, scale Scale, seed int64) (*topology.Topology, error) {
	rng := rand.New(rand.NewSource(seed))
	switch kind {
	case Brite:
		// The paper uses BRITE's AS-level module directly: links are
		// AS-AS edges, and the router level only induces correlations.
		// Identifiability++ holds on these overlays (§3.2).
		cfg := brite.DefaultConfig()
		cfg.NumAS = scale.BriteNumAS
		cfg.RoutersPerAS = scale.BriteRoutersPerAS
		top, _, err := brite.ASLevelTopology(cfg, scale.BritePaths, rng)
		return top, err
	case Sparse:
		cfg := traceroute.DefaultConfig()
		cfg.Internet.NumAS = scale.SparseNumAS
		cfg.Internet.RoutersPerAS = scale.SparseRoutersPerAS
		cfg.TargetPaths = scale.SparsePaths
		c, err := traceroute.Run(cfg, rng)
		if err != nil {
			return nil, err
		}
		return c.Topology, nil
	default:
		return nil, fmt.Errorf("experiment: unknown topology kind %d", kind)
	}
}

// forEachTrial runs fn(i) for every trial index in [0, n), fanned out
// over a bounded worker pool of workers goroutines (serial when ≤ 1).
// Each fn owns slot i of its output slice and seeds its own RNG from
// the trial index, so results are bit-identical to the serial loop.
// The error of the lowest failing trial is returned — the serial
// path's error precedence — and no new trials start after a failure.
func forEachTrial(workers, n int, fn func(i int) error) error {
	return parallel.ForErr(workers, n, fn)
}

// simRun is one simulated monitoring period: the model, the recorded
// path observations, and the per-interval ground truth.
type simRun struct {
	top    *topology.Topology
	model  *netsim.Model
	rec    *observe.Recorder
	truth  []netsim.Observation
	coreCf core.Config
}

// runSim executes the monitoring period for one scenario.
func runSim(cfg Config, top *topology.Topology, scen netsim.Scenario, nonStationary bool, seed int64) (*simRun, error) {
	mc := netsim.DefaultConfig(scen)
	mc.NonStationary = nonStationary
	mc.PacketsPerPath = cfg.Scale.PacketsPerPath
	rng := rand.New(rand.NewSource(seed))
	model, err := netsim.NewModel(top, mc, cfg.Scale.Intervals, rng)
	if err != nil {
		return nil, err
	}
	rec := observe.NewRecorder(top.NumPaths())
	truth := make([]netsim.Observation, cfg.Scale.Intervals)
	for t := 0; t < cfg.Scale.Intervals; t++ {
		obs := model.Interval(t, rng)
		rec.Add(obs.CongestedPaths)
		truth[t] = obs
	}
	return &simRun{
		top:   top,
		model: model,
		rec:   rec,
		truth: truth,
		coreCf: core.Config{
			MaxSubsetSize: cfg.MaxSubsetSize,
			AlwaysGoodTol: cfg.AlwaysGoodTol,
			Concurrency:   cfg.solverConcurrency(),
		},
	}, nil
}

// solverConcurrency resolves the per-trial solver worker count: an
// explicit setting wins; the 0 default becomes serial when the trial
// loop itself is parallel (Workers != 1 means all CPUs are already
// busy running trials) and all-CPUs when the trial loop is serial.
func (c Config) solverConcurrency() int {
	if c.Concurrency != 0 {
		return c.Concurrency
	}
	if c.Workers != 1 {
		return 1
	}
	return runtime.GOMAXPROCS(0)
}
