// Package telemetry is the daemon's dependency-free metrics kernel: a
// registry of atomic counters, gauges and fixed-bucket histograms —
// optionally labeled — that renders the Prometheus text exposition
// format for GET /metrics and exposes a Snapshot view so tests assert
// on metric values without scraping.
//
// Design constraints, in order:
//
//   - stdlib only (the module has an empty go.mod and keeps it);
//   - the observation hot path — Counter.Add, Gauge.Set,
//     Histogram.Observe — is lock-free, allocation-free and safe from
//     any goroutine, because it runs inside the epoch solver loop and
//     the ingest path, both of which the bench alloc gate pins at
//     0 allocs/op;
//   - registration is init-time work: instrumented packages declare
//     package-level metric vars against Default(), and hot paths hold
//     pre-resolved *Counter/*Histogram handles rather than calling
//     Vec.With per observation (With takes a lock and builds a key).
//
// Rendering is deliberately boring: families sorted by name, children
// sorted by label string, histograms expanded to cumulative _bucket /
// _sum / _count series — byte-stable across scrapes of the same state,
// which the golden tests rely on.
package telemetry

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing value.
type Counter struct {
	v atomic.Uint64
}

// Inc adds 1.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is an integer value that can go up and down (in-flight
// requests, backlog depth, lag, 0/1 state flags).
type Gauge struct {
	v atomic.Int64
}

// Set replaces the value.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add adds delta (negative to decrement).
func (g *Gauge) Add(delta int64) { g.v.Add(delta) }

// Inc adds 1.
func (g *Gauge) Inc() { g.v.Add(1) }

// Dec subtracts 1.
func (g *Gauge) Dec() { g.v.Add(-1) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Histogram is a fixed-bucket distribution. Buckets are upper bounds in
// ascending order; an implicit +Inf bucket catches the rest. Observe is
// lock-free: one atomic add on the bucket, one on the count, and a CAS
// loop on the float sum.
type Histogram struct {
	bounds []float64
	counts []atomic.Uint64 // len(bounds)+1; counts[len(bounds)] is +Inf
	count  atomic.Uint64
	sum    atomic.Uint64 // float64 bits
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		s := math.Float64frombits(old) + v
		if h.sum.CompareAndSwap(old, math.Float64bits(s)) {
			return
		}
	}
}

// Count returns the total number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sum.Load()) }

// ExpBuckets returns count upper bounds growing geometrically from
// start by factor: the standard shape for latency histograms.
func ExpBuckets(start, factor float64, count int) []float64 {
	if start <= 0 || factor <= 1 || count < 1 {
		panic("telemetry: ExpBuckets needs start > 0, factor > 1, count >= 1")
	}
	b := make([]float64, count)
	for i := range b {
		b[i] = start
		start *= factor
	}
	return b
}

// metricKind discriminates a family's value type.
type metricKind int

const (
	kindCounter metricKind = iota
	kindGauge
	kindGaugeFunc
	kindHistogram
)

func (k metricKind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindHistogram:
		return "histogram"
	default:
		return "gauge"
	}
}

// child is one label combination's metric instance.
type child struct {
	labels  string // rendered {a="b",c="d"}, "" when unlabeled
	counter *Counter
	gauge   *Gauge
	hist    *Histogram
}

// family is one registered metric name: its metadata and children.
type family struct {
	name   string
	help   string
	kind   metricKind
	labels []string
	bounds []float64 // histogram families

	fn func() float64 // kindGaugeFunc

	mu       sync.Mutex
	children map[string]*child
}

// getChild returns (creating if needed) the child for the given label
// values.
func (f *family) getChild(values []string) *child {
	if len(values) != len(f.labels) {
		panic(fmt.Sprintf("telemetry: metric %s has %d labels, got %d values", f.name, len(f.labels), len(values)))
	}
	key := renderLabels(f.labels, values)
	f.mu.Lock()
	defer f.mu.Unlock()
	c := f.children[key]
	if c == nil {
		c = &child{labels: key}
		switch f.kind {
		case kindCounter:
			c.counter = &Counter{}
		case kindGauge:
			c.gauge = &Gauge{}
		case kindHistogram:
			c.hist = &Histogram{bounds: f.bounds, counts: make([]atomic.Uint64, len(f.bounds)+1)}
		}
		f.children[key] = c
	}
	return c
}

// sortedChildren returns the children ordered by label string, the
// render and snapshot order.
func (f *family) sortedChildren() []*child {
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make([]*child, 0, len(f.children))
	for _, c := range f.children {
		out = append(out, c)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].labels < out[j].labels })
	return out
}

// Registry is a set of metric families. The zero value is not usable;
// call NewRegistry, or use Default for the process-wide registry every
// instrumented package registers against.
type Registry struct {
	mu   sync.Mutex
	fams map[string]*family
}

// NewRegistry returns an empty registry. Tests use private registries
// for golden rendering; production code uses Default.
func NewRegistry() *Registry { return &Registry{fams: map[string]*family{}} }

var defaultRegistry = NewRegistry()

// Default returns the process-wide registry, the one GET /metrics
// serves.
func Default() *Registry { return defaultRegistry }

// register installs (or re-resolves) a family. Registering the same
// name again with the same kind and labels returns the existing family,
// so package-level registration is idempotent across tests; a kind or
// label-shape conflict panics — it is a programmer error caught at
// init.
func (r *Registry) register(name, help string, kind metricKind, labels []string, bounds []float64, fn func() float64) *family {
	checkName(name)
	for _, l := range labels {
		checkName(l)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if f := r.fams[name]; f != nil {
		if f.kind != kind || len(f.labels) != len(labels) {
			panic(fmt.Sprintf("telemetry: metric %s re-registered as %s with %d labels (have %s with %d)",
				name, kind, len(labels), f.kind, len(f.labels)))
		}
		for i := range labels {
			if f.labels[i] != labels[i] {
				panic(fmt.Sprintf("telemetry: metric %s re-registered with label %q, have %q", name, labels[i], f.labels[i]))
			}
		}
		return f
	}
	f := &family{name: name, help: help, kind: kind, labels: labels, bounds: bounds, fn: fn, children: map[string]*child{}}
	r.fams[name] = f
	return f
}

// Counter registers (or returns) an unlabeled counter.
func (r *Registry) Counter(name, help string) *Counter {
	return r.register(name, help, kindCounter, nil, nil, nil).getChild(nil).counter
}

// Gauge registers (or returns) an unlabeled gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	return r.register(name, help, kindGauge, nil, nil, nil).getChild(nil).gauge
}

// GaugeFunc registers a gauge whose value is computed at scrape time
// (uptime, GOMAXPROCS). fn must be safe to call from any goroutine.
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	r.register(name, help, kindGaugeFunc, nil, nil, fn)
}

// Histogram registers (or returns) an unlabeled histogram with the
// given upper bounds (ascending; +Inf implicit).
func (r *Registry) Histogram(name, help string, buckets []float64) *Histogram {
	f := r.register(name, help, kindHistogram, nil, buckets, nil)
	return f.getChild(nil).hist
}

// CounterVec registers (or returns) a labeled counter family.
func (r *Registry) CounterVec(name, help string, labels ...string) *CounterVec {
	return &CounterVec{f: r.register(name, help, kindCounter, labels, nil, nil)}
}

// GaugeVec registers (or returns) a labeled gauge family.
func (r *Registry) GaugeVec(name, help string, labels ...string) *GaugeVec {
	return &GaugeVec{f: r.register(name, help, kindGauge, labels, nil, nil)}
}

// HistogramVec registers (or returns) a labeled histogram family.
func (r *Registry) HistogramVec(name, help string, buckets []float64, labels ...string) *HistogramVec {
	return &HistogramVec{f: r.register(name, help, kindHistogram, labels, buckets, nil)}
}

// CounterVec is a counter family with labels; With resolves one label
// combination's counter. Hot paths resolve once and hold the handle.
type CounterVec struct{ f *family }

// With returns the counter for the given label values (in declaration
// order), creating it on first use.
func (v *CounterVec) With(values ...string) *Counter { return v.f.getChild(values).counter }

// GaugeVec is a gauge family with labels.
type GaugeVec struct{ f *family }

// With returns the gauge for the given label values.
func (v *GaugeVec) With(values ...string) *Gauge { return v.f.getChild(values).gauge }

// HistogramVec is a histogram family with labels.
type HistogramVec struct{ f *family }

// With returns the histogram for the given label values.
func (v *HistogramVec) With(values ...string) *Histogram { return v.f.getChild(values).hist }

// Snapshot flattens every metric into a map keyed by the exposition
// series name — `name` or `name{a="b"}`; histograms contribute
// `name_count…`, `name_sum…` and cumulative `name_bucket{…,le="…"}`
// entries — so tests assert on values without scraping and parsing.
func (r *Registry) Snapshot() map[string]float64 {
	out := map[string]float64{}
	for _, f := range r.sortedFamilies() {
		if f.kind == kindGaugeFunc {
			out[f.name] = f.fn()
			continue
		}
		for _, c := range f.sortedChildren() {
			switch f.kind {
			case kindCounter:
				out[f.name+c.labels] = float64(c.counter.Value())
			case kindGauge:
				out[f.name+c.labels] = float64(c.gauge.Value())
			case kindHistogram:
				out[f.name+"_count"+c.labels] = float64(c.hist.Count())
				out[f.name+"_sum"+c.labels] = c.hist.Sum()
				cum := uint64(0)
				for i, b := range c.hist.bounds {
					cum += c.hist.counts[i].Load()
					out[f.name+"_bucket"+mergeLabels(c.labels, "le", formatFloat(b))] = float64(cum)
				}
				cum += c.hist.counts[len(c.hist.bounds)].Load()
				out[f.name+"_bucket"+mergeLabels(c.labels, "le", "+Inf")] = float64(cum)
			}
		}
	}
	return out
}

// sortedFamilies returns the families in name order, the render order.
func (r *Registry) sortedFamilies() []*family {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]*family, 0, len(r.fams))
	for _, f := range r.fams {
		out = append(out, f)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].name < out[j].name })
	return out
}

// labelEscaper escapes label values for the exposition format.
var labelEscaper = strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)

// helpEscaper escapes HELP text.
var helpEscaper = strings.NewReplacer(`\`, `\\`, "\n", `\n`)

// renderLabels renders {a="x",b="y"} for the given names and values;
// "" when unlabeled.
func renderLabels(names, values []string) string {
	if len(names) == 0 {
		return ""
	}
	var sb strings.Builder
	sb.WriteByte('{')
	for i, n := range names {
		if i > 0 {
			sb.WriteByte(',')
		}
		sb.WriteString(n)
		sb.WriteString(`="`)
		sb.WriteString(labelEscaper.Replace(values[i]))
		sb.WriteString(`"`)
	}
	sb.WriteByte('}')
	return sb.String()
}

// mergeLabels appends one extra label to an already-rendered label
// string (used for histograms' le).
func mergeLabels(rendered, name, value string) string {
	extra := name + `="` + labelEscaper.Replace(value) + `"`
	if rendered == "" {
		return "{" + extra + "}"
	}
	return rendered[:len(rendered)-1] + "," + extra + "}"
}

// checkName panics unless name is a valid exposition metric/label name.
func checkName(name string) {
	if name == "" {
		panic("telemetry: empty metric or label name")
	}
	for i, r := range name {
		alpha := (r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') || r == '_' || r == ':'
		if !alpha && !(i > 0 && r >= '0' && r <= '9') {
			panic(fmt.Sprintf("telemetry: invalid metric or label name %q", name))
		}
	}
}
