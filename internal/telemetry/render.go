package telemetry

import (
	"bufio"
	"io"
	"math"
	"net/http"
	"strconv"
)

// contentType is the Prometheus text exposition format content type.
const contentType = "text/plain; version=0.0.4; charset=utf-8"

// WritePrometheus renders every family in the text exposition format:
// families sorted by name, children by label string, histograms as
// cumulative _bucket series plus _sum and _count. The output is
// byte-stable for a given metric state.
func (r *Registry) WritePrometheus(w io.Writer) error {
	bw := bufio.NewWriter(w)
	for _, f := range r.sortedFamilies() {
		if f.help != "" {
			bw.WriteString("# HELP ")
			bw.WriteString(f.name)
			bw.WriteByte(' ')
			bw.WriteString(helpEscaper.Replace(f.help))
			bw.WriteByte('\n')
		}
		bw.WriteString("# TYPE ")
		bw.WriteString(f.name)
		bw.WriteByte(' ')
		bw.WriteString(f.kind.String())
		bw.WriteByte('\n')
		if f.kind == kindGaugeFunc {
			writeSeries(bw, f.name, "", f.fn())
			continue
		}
		for _, c := range f.sortedChildren() {
			switch f.kind {
			case kindCounter:
				writeSeries(bw, f.name, c.labels, float64(c.counter.Value()))
			case kindGauge:
				writeSeries(bw, f.name, c.labels, float64(c.gauge.Value()))
			case kindHistogram:
				cum := uint64(0)
				for i, b := range c.hist.bounds {
					cum += c.hist.counts[i].Load()
					writeSeries(bw, f.name+"_bucket", mergeLabels(c.labels, "le", formatFloat(b)), float64(cum))
				}
				cum += c.hist.counts[len(c.hist.bounds)].Load()
				writeSeries(bw, f.name+"_bucket", mergeLabels(c.labels, "le", "+Inf"), float64(cum))
				writeSeries(bw, f.name+"_sum", c.labels, c.hist.Sum())
				writeSeries(bw, f.name+"_count", c.labels, float64(c.hist.Count()))
			}
		}
	}
	return bw.Flush()
}

// writeSeries writes one `name{labels} value` line.
func writeSeries(bw *bufio.Writer, name, labels string, v float64) {
	bw.WriteString(name)
	bw.WriteString(labels)
	bw.WriteByte(' ')
	bw.WriteString(formatFloat(v))
	bw.WriteByte('\n')
}

// formatFloat renders a sample or bucket-bound value: integers without
// a decimal point, everything else in shortest round-trip form.
func formatFloat(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return strconv.FormatInt(int64(v), 10)
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// Handler returns an http.Handler serving r in the text exposition
// format — mount it at GET /metrics.
func Handler(r *Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", contentType)
		r.WritePrometheus(w)
	})
}
