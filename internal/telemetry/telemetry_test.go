package telemetry

import (
	"math"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

// TestGoldenRender pins the full exposition output: family ordering by
// name, child ordering by label string, HELP/TYPE lines, cumulative
// histogram buckets, and the +Inf tail.
func TestGoldenRender(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("test_requests_total", "Total requests.")
	c.Add(3)
	g := r.Gauge("test_in_flight", "In-flight requests.")
	g.Set(2)
	cv := r.CounterVec("test_codes_total", "Responses by code.", "route", "code")
	cv.With("/v1/status", "200").Add(5)
	cv.With("/v1/status", "404").Inc()
	cv.With("/v1/epochs", "200").Add(2)
	h := r.Histogram("test_latency_seconds", "Latency.", []float64{0.1, 0.5})
	h.Observe(0.05)
	h.Observe(0.3)
	h.Observe(0.3)
	h.Observe(2)
	r.GaugeFunc("test_uptime_seconds", "Uptime.", func() float64 { return 42.5 })

	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	want := `# HELP test_codes_total Responses by code.
# TYPE test_codes_total counter
test_codes_total{route="/v1/epochs",code="200"} 2
test_codes_total{route="/v1/status",code="200"} 5
test_codes_total{route="/v1/status",code="404"} 1
# HELP test_in_flight In-flight requests.
# TYPE test_in_flight gauge
test_in_flight 2
# HELP test_latency_seconds Latency.
# TYPE test_latency_seconds histogram
test_latency_seconds_bucket{le="0.1"} 1
test_latency_seconds_bucket{le="0.5"} 3
test_latency_seconds_bucket{le="+Inf"} 4
test_latency_seconds_sum 2.65
test_latency_seconds_count 4
# HELP test_requests_total Total requests.
# TYPE test_requests_total counter
test_requests_total 3
# HELP test_uptime_seconds Uptime.
# TYPE test_uptime_seconds gauge
test_uptime_seconds 42.5
`
	if got := sb.String(); got != want {
		t.Errorf("render mismatch:\ngot:\n%s\nwant:\n%s", got, want)
	}

	// Rendering twice must be byte-identical (stable ordering).
	var sb2 strings.Builder
	r.WritePrometheus(&sb2)
	if sb2.String() != sb.String() {
		t.Error("render is not byte-stable across calls")
	}
}

func TestSnapshot(t *testing.T) {
	r := NewRegistry()
	r.Counter("snap_total", "").Add(7)
	r.GaugeVec("snap_lag", "", "shard").With("3").Set(11)
	h := r.Histogram("snap_dur", "", []float64{1, 10})
	h.Observe(0.5)
	h.Observe(5)
	h.Observe(50)

	s := r.Snapshot()
	for k, want := range map[string]float64{
		"snap_total":                 7,
		`snap_lag{shard="3"}`:        11,
		"snap_dur_count":             3,
		"snap_dur_sum":               55.5,
		`snap_dur_bucket{le="1"}`:    1,
		`snap_dur_bucket{le="10"}`:   2,
		`snap_dur_bucket{le="+Inf"}`: 3,
	} {
		if got := s[k]; got != want {
			t.Errorf("Snapshot[%q] = %v, want %v", k, got, want)
		}
	}
}

func TestLabelEscaping(t *testing.T) {
	r := NewRegistry()
	r.CounterVec("esc_total", "", "path").With("a\"b\\c\nd").Inc()
	var sb strings.Builder
	r.WritePrometheus(&sb)
	want := `esc_total{path="a\"b\\c\nd"} 1`
	if !strings.Contains(sb.String(), want) {
		t.Errorf("escaped series %q not found in:\n%s", want, sb.String())
	}
}

// TestIdempotentRegistration: registering the same name with the same
// shape returns the same underlying metric (package-level vars must
// survive repeated Server construction); a shape conflict panics.
func TestIdempotentRegistration(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("idem_total", "")
	b := r.Counter("idem_total", "")
	a.Inc()
	if b.Value() != 1 {
		t.Error("re-registration did not return the same counter")
	}
	v1 := r.CounterVec("idem_vec_total", "", "k")
	v2 := r.CounterVec("idem_vec_total", "", "k")
	v1.With("x").Add(2)
	if v2.With("x").Value() != 2 {
		t.Error("re-registered vec did not share children")
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("kind conflict did not panic")
			}
		}()
		r.Gauge("idem_total", "")
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("label conflict did not panic")
			}
		}()
		r.CounterVec("idem_vec_total", "", "other")
	}()
}

func TestNameValidation(t *testing.T) {
	r := NewRegistry()
	for _, bad := range []string{"", "9starts_with_digit", "has-dash", "has space"} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("name %q did not panic", bad)
				}
			}()
			r.Counter(bad, "")
		}()
	}
	// Valid names must not panic.
	r.Counter("ok_name_total", "")
	r.Counter("Also:OK_123", "")
}

func TestExpBuckets(t *testing.T) {
	b := ExpBuckets(0.001, 10, 4)
	want := []float64{0.001, 0.01, 0.1, 1}
	for i := range want {
		if math.Abs(b[i]-want[i]) > 1e-12 {
			t.Errorf("bucket %d = %v, want %v", i, b[i], want[i])
		}
	}
}

func TestHandler(t *testing.T) {
	r := NewRegistry()
	r.Counter("handler_total", "").Inc()
	rec := httptest.NewRecorder()
	Handler(r).ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if ct := rec.Header().Get("Content-Type"); ct != contentType {
		t.Errorf("Content-Type = %q", ct)
	}
	if !strings.Contains(rec.Body.String(), "handler_total 1") {
		t.Errorf("body missing series:\n%s", rec.Body.String())
	}
}

// TestConcurrentHotPath hammers counters, gauges and histograms from
// many goroutines while a reader renders and snapshots — run under
// -race in CI. Totals must come out exact: these are atomics, not
// approximations.
func TestConcurrentHotPath(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("conc_total", "")
	g := r.Gauge("conc_gauge", "")
	h := r.Histogram("conc_hist", "", []float64{1, 2, 4})
	cv := r.CounterVec("conc_vec_total", "", "w")

	const workers, perWorker = 8, 5000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			child := cv.With("shared")
			for i := 0; i < perWorker; i++ {
				c.Inc()
				g.Add(1)
				g.Add(-1)
				h.Observe(float64(i % 5))
				child.Inc()
			}
		}(w)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 50; i++ {
			var sb strings.Builder
			r.WritePrometheus(&sb)
			r.Snapshot()
		}
	}()
	wg.Wait()
	<-done

	const n = workers * perWorker
	if c.Value() != n {
		t.Errorf("counter = %d, want %d", c.Value(), n)
	}
	if g.Value() != 0 {
		t.Errorf("gauge = %d, want 0", g.Value())
	}
	if h.Count() != n {
		t.Errorf("histogram count = %d, want %d", h.Count(), n)
	}
	wantSum := float64(workers) * perWorker / 5 * (0 + 1 + 2 + 3 + 4)
	if math.Abs(h.Sum()-wantSum) > 1e-6 {
		t.Errorf("histogram sum = %v, want %v", h.Sum(), wantSum)
	}
	if cv.With("shared").Value() != n {
		t.Errorf("vec counter = %d, want %d", cv.With("shared").Value(), n)
	}
}
