//go:build !race

package telemetry

import "testing"

// Alloc assertions are skipped under -race: the race runtime's
// instrumentation allocates and would make these flaky, and the alloc
// gate in CI runs without -race anyway (same split as
// internal/stream).

func TestCounterIncZeroAlloc(t *testing.T) {
	c := NewRegistry().Counter("alloc_total", "")
	if n := testing.AllocsPerRun(1000, func() { c.Inc() }); n != 0 {
		t.Errorf("Counter.Inc allocates %v/op, want 0", n)
	}
}

func TestGaugeSetZeroAlloc(t *testing.T) {
	g := NewRegistry().Gauge("alloc_gauge", "")
	if n := testing.AllocsPerRun(1000, func() { g.Set(7) }); n != 0 {
		t.Errorf("Gauge.Set allocates %v/op, want 0", n)
	}
}

func TestHistogramObserveZeroAlloc(t *testing.T) {
	h := NewRegistry().Histogram("alloc_seconds", "", ExpBuckets(1e-6, 4, 12))
	v := 0.0
	if n := testing.AllocsPerRun(1000, func() { h.Observe(v); v += 1e-7 }); n != 0 {
		t.Errorf("Histogram.Observe allocates %v/op, want 0", n)
	}
}
