package bitset

import (
	"math/rand"
	"testing"
)

// randSet draws a set over a universe of up to maxN elements, with a
// random density, deliberately varying word counts so the kernels see
// mismatched lengths.
func randSet(rng *rand.Rand, maxN int) *Set {
	n := 1 + rng.Intn(maxN)
	s := New(n)
	density := rng.Float64()
	for i := 0; i < n; i++ {
		if rng.Float64() < density {
			s.Add(i)
		}
	}
	return s
}

func TestFusedCountsMatchComposedForms(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 2000; trial++ {
		s := randSet(rng, 300)
		u := randSet(rng, 300)
		if got, want := s.UnionCount(u), s.Union(u).Count(); got != want {
			t.Fatalf("trial %d: UnionCount = %d, Union().Count() = %d\ns=%v\nt=%v", trial, got, want, s, u)
		}
		if got, want := s.IntersectCount(u), s.Intersect(u).Count(); got != want {
			t.Fatalf("trial %d: IntersectCount = %d, Intersect().Count() = %d", trial, got, want)
		}
		if got, want := s.DifferenceCount(u), s.Difference(u).Count(); got != want {
			t.Fatalf("trial %d: DifferenceCount = %d, Difference().Count() = %d", trial, got, want)
		}
		if got, want := s.SymmetricDifferenceCount(u), s.SymmetricDifference(u).Count(); got != want {
			t.Fatalf("trial %d: SymmetricDifferenceCount = %d, SymmetricDifference().Count() = %d", trial, got, want)
		}
	}
}

func TestIntoKernelsMatchComposedForms(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	dst := New(0) // reused across trials to exercise storage reuse
	for trial := 0; trial < 2000; trial++ {
		s := randSet(rng, 300)
		u := randSet(rng, 300)
		if got, want := s.AndNotInto(u, dst), s.Difference(u); !got.Equal(want) {
			t.Fatalf("trial %d: AndNotInto = %v, Difference = %v", trial, got, want)
		}
		if got, want := s.UnionInto(u, dst), s.Union(u); !got.Equal(want) {
			t.Fatalf("trial %d: UnionInto = %v, Union = %v", trial, got, want)
		}
		if got, want := s.IntersectInto(u, dst), s.Intersect(u); !got.Equal(want) {
			t.Fatalf("trial %d: IntersectInto = %v, Intersect = %v", trial, got, want)
		}
	}
}

func TestIntoKernelsAliasing(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 500; trial++ {
		s := randSet(rng, 200)
		u := randSet(rng, 200)
		want := s.Difference(u)
		sc := s.Clone()
		if got := sc.AndNotInto(u, sc); !got.Equal(want) {
			t.Fatalf("trial %d: AndNotInto dst aliasing s: got %v, want %v", trial, got, want)
		}
		wantU := s.Union(u)
		sc = s.Clone()
		if got := sc.UnionInto(u, sc); !got.Equal(wantU) {
			t.Fatalf("trial %d: UnionInto dst aliasing s: got %v, want %v", trial, got, wantU)
		}
		wantI := s.Intersect(u)
		sc = s.Clone()
		if got := sc.IntersectInto(u, sc); !got.Equal(wantI) {
			t.Fatalf("trial %d: IntersectInto dst aliasing s: got %v, want %v", trial, got, wantI)
		}
	}
}

func TestWordKernels(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 1000; trial++ {
		nd := 1 + rng.Intn(9)
		ns := 1 + rng.Intn(nd) // src never longer than dst for OR
		dst := make([]uint64, nd)
		src := make([]uint64, ns)
		for i := range dst {
			dst[i] = rng.Uint64()
		}
		for i := range src {
			src[i] = rng.Uint64()
		}
		wantOr := make([]uint64, nd)
		copy(wantOr, dst)
		for i := range src {
			wantOr[i] |= src[i]
		}
		gotOr := make([]uint64, nd)
		copy(gotOr, dst)
		OrWordsInto(gotOr, src)
		for i := range wantOr {
			if gotOr[i] != wantOr[i] {
				t.Fatalf("trial %d: OrWordsInto word %d = %x, want %x", trial, i, gotOr[i], wantOr[i])
			}
		}
		wantAnd := make([]uint64, nd)
		for i := range wantAnd {
			if i < ns {
				wantAnd[i] = dst[i] & src[i]
			}
		}
		gotAnd := make([]uint64, nd)
		copy(gotAnd, dst)
		AndWordsInto(gotAnd, src)
		for i := range wantAnd {
			if gotAnd[i] != wantAnd[i] {
				t.Fatalf("trial %d: AndWordsInto word %d = %x, want %x", trial, i, gotAnd[i], wantAnd[i])
			}
		}
		wantPop := 0
		for _, w := range dst {
			wantPop += popcountRef(w)
		}
		if got := PopCountWords(dst); got != wantPop {
			t.Fatalf("trial %d: PopCountWords = %d, want %d", trial, got, wantPop)
		}
	}
}

func popcountRef(w uint64) int {
	c := 0
	for ; w != 0; w &= w - 1 {
		c++
	}
	return c
}

func TestAppendKeyMatchesKey(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	var buf []byte
	for trial := 0; trial < 1000; trial++ {
		s := randSet(rng, 300)
		buf = s.AppendKey(buf[:0])
		if string(buf) != s.Key() {
			t.Fatalf("trial %d: AppendKey diverges from Key for %v", trial, s)
		}
	}
}

// TestAddInRangeDoesNotAllocate pins the Add fast path: inserting
// within the constructed universe must never reallocate the word slice.
func TestAddInRangeDoesNotAllocate(t *testing.T) {
	s := New(257)
	allocs := testing.AllocsPerRun(100, func() {
		for i := 0; i < 257; i++ {
			s.Add(i)
		}
		s.Clear()
	})
	if allocs != 0 {
		t.Fatalf("in-range Add allocated %.1f times per run, want 0", allocs)
	}
}

func TestFusedCountsDoNotAllocate(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	s := randSet(rng, 500)
	u := randSet(rng, 500)
	dst := New(500)
	allocs := testing.AllocsPerRun(100, func() {
		_ = s.UnionCount(u)
		_ = s.IntersectCount(u)
		_ = s.DifferenceCount(u)
		_ = s.SymmetricDifferenceCount(u)
		s.AndNotInto(u, dst)
		s.UnionInto(u, dst)
	})
	if allocs != 0 {
		t.Fatalf("fused kernels allocated %.1f times per run, want 0", allocs)
	}
}
