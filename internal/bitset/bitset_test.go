package bitset

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestAddContainsRemove(t *testing.T) {
	s := New(10)
	if s.Contains(3) {
		t.Fatal("empty set should not contain 3")
	}
	s.Add(3)
	s.Add(9)
	if !s.Contains(3) || !s.Contains(9) {
		t.Fatal("missing added elements")
	}
	if s.Contains(4) {
		t.Fatal("should not contain 4")
	}
	s.Remove(3)
	if s.Contains(3) {
		t.Fatal("3 should have been removed")
	}
	if got := s.Count(); got != 1 {
		t.Fatalf("Count = %d, want 1", got)
	}
}

func TestGrowOnAdd(t *testing.T) {
	s := New(1)
	s.Add(130) // beyond two words
	if !s.Contains(130) {
		t.Fatal("grow on Add failed")
	}
	if s.Contains(129) || s.Contains(131) {
		t.Fatal("grow set unexpected bits")
	}
}

func TestRemoveOutOfRangeIsNoop(t *testing.T) {
	s := New(4)
	s.Remove(1000) // must not panic
	s.Remove(-1)
	if !s.IsEmpty() {
		t.Fatal("set should remain empty")
	}
}

func TestUnionIntersectDifference(t *testing.T) {
	a := FromIndices(10, 1, 2, 3)
	b := FromIndices(10, 3, 4)
	if got := a.Union(b).Indices(); !reflect.DeepEqual(got, []int{1, 2, 3, 4}) {
		t.Fatalf("union = %v", got)
	}
	if got := a.Intersect(b).Indices(); !reflect.DeepEqual(got, []int{3}) {
		t.Fatalf("intersect = %v", got)
	}
	if got := a.Difference(b).Indices(); !reflect.DeepEqual(got, []int{1, 2}) {
		t.Fatalf("difference = %v", got)
	}
	if !a.Intersects(b) {
		t.Fatal("a and b should intersect")
	}
	c := FromIndices(10, 7)
	if a.Intersects(c) {
		t.Fatal("a and c should not intersect")
	}
}

func TestUnionWithDifferentSizes(t *testing.T) {
	a := FromIndices(4, 0)
	b := FromIndices(200, 199)
	a.UnionWith(b)
	if !a.Contains(0) || !a.Contains(199) {
		t.Fatal("UnionWith across sizes failed")
	}
}

func TestSubsetEqual(t *testing.T) {
	a := FromIndices(10, 1, 2)
	b := FromIndices(10, 1, 2, 3)
	if !a.SubsetOf(b) {
		t.Fatal("a ⊆ b")
	}
	if b.SubsetOf(a) {
		t.Fatal("b ⊄ a")
	}
	if !a.SubsetOf(a) {
		t.Fatal("a ⊆ a")
	}
	c := FromIndices(300, 1, 2) // different universe size, same contents
	if !a.Equal(c) || !c.Equal(a) {
		t.Fatal("Equal must ignore universe size")
	}
}

func TestIndicesAndForEach(t *testing.T) {
	s := FromIndices(130, 0, 63, 64, 129)
	want := []int{0, 63, 64, 129}
	if got := s.Indices(); !reflect.DeepEqual(got, want) {
		t.Fatalf("Indices = %v, want %v", got, want)
	}
	var seen []int
	s.ForEach(func(i int) bool {
		seen = append(seen, i)
		return len(seen) < 2 // early stop
	})
	if !reflect.DeepEqual(seen, []int{0, 63}) {
		t.Fatalf("ForEach early-stop = %v", seen)
	}
}

func TestKeyUniqueness(t *testing.T) {
	a := FromIndices(10, 1, 2)
	b := FromIndices(500, 1, 2)
	if a.Key() != b.Key() {
		t.Fatal("Key must not depend on trailing zero words")
	}
	c := FromIndices(10, 1, 3)
	if a.Key() == c.Key() {
		t.Fatal("different sets must have different keys")
	}
}

func TestCloneIndependence(t *testing.T) {
	a := FromIndices(10, 1)
	b := a.Clone()
	b.Add(5)
	if a.Contains(5) {
		t.Fatal("Clone must be independent")
	}
}

func TestClear(t *testing.T) {
	a := FromIndices(10, 1, 2, 3)
	a.Clear()
	if !a.IsEmpty() || a.Count() != 0 {
		t.Fatal("Clear failed")
	}
}

func TestString(t *testing.T) {
	if got := FromIndices(5, 0, 2).String(); got != "{0, 2}" {
		t.Fatalf("String = %q", got)
	}
	if got := New(5).String(); got != "{}" {
		t.Fatalf("String(empty) = %q", got)
	}
}

// randomSet builds a set from a seed for property tests.
func randomSet(rng *rand.Rand, n int) *Set {
	s := New(n)
	for i := 0; i < n; i++ {
		if rng.Intn(2) == 1 {
			s.Add(i)
		}
	}
	return s
}

func TestQuickDeMorgan(t *testing.T) {
	// |A ∪ B| + |A ∩ B| == |A| + |B|
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(200)
		a, b := randomSet(rng, n), randomSet(rng, n)
		return a.Union(b).Count()+a.Intersect(b).Count() == a.Count()+b.Count()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuickDifferencePartition(t *testing.T) {
	// A = (A \ B) ∪ (A ∩ B), disjointly.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(200)
		a, b := randomSet(rng, n), randomSet(rng, n)
		diff, inter := a.Difference(b), a.Intersect(b)
		if diff.Intersects(inter) {
			return false
		}
		return diff.Union(inter).Equal(a)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuickSubsetViaIntersect(t *testing.T) {
	// A ⊆ B  ⇔  A ∩ B = A.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(200)
		a, b := randomSet(rng, n), randomSet(rng, n)
		return a.SubsetOf(b) == a.Intersect(b).Equal(a)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuickIndicesRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(200)
		a := randomSet(rng, n)
		b := FromIndices(n, a.Indices()...)
		return a.Equal(b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuickSymmetricDifference(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a, b := randomSet(rng, 1+rng.Intn(200)), randomSet(rng, 1+rng.Intn(200))
		got := a.SymmetricDifference(b)
		want := a.Difference(b).Union(b.Difference(a))
		return got.Equal(want) && b.SymmetricDifference(a).Equal(want)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuickIntersectWith(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a, b := randomSet(rng, 1+rng.Intn(200)), randomSet(rng, 1+rng.Intn(200))
		want := a.Intersect(b)
		a.IntersectWith(b)
		return a.Equal(want)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
