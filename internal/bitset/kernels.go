// Fused word-algebra kernels. The solvers and the windowed stores
// repeatedly need "combine two sets and count" or "combine into an
// existing buffer" — composing the primitive ops (Union then Count,
// Clone then IntersectWith) allocates an intermediate set per call on
// hot paths. The kernels below fuse the word loop, allocate nothing,
// and unroll four words per iteration; each is property-tested against
// its composed form.
package bitset

import "math/bits"

// UnionCount returns |s ∪ t| without materializing the union.
func (s *Set) UnionCount(t *Set) int {
	a, b := s.words, t.words
	if len(b) > len(a) {
		a, b = b, a
	}
	n := len(b)
	c := 0
	i := 0
	for ; i+4 <= n; i += 4 {
		c += bits.OnesCount64(a[i] | b[i])
		c += bits.OnesCount64(a[i+1] | b[i+1])
		c += bits.OnesCount64(a[i+2] | b[i+2])
		c += bits.OnesCount64(a[i+3] | b[i+3])
	}
	for ; i < n; i++ {
		c += bits.OnesCount64(a[i] | b[i])
	}
	return c + PopCountWords(a[n:])
}

// IntersectCount returns |s ∩ t| without materializing the
// intersection.
func (s *Set) IntersectCount(t *Set) int {
	a, b := s.words, t.words
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	c := 0
	i := 0
	for ; i+4 <= n; i += 4 {
		c += bits.OnesCount64(a[i] & b[i])
		c += bits.OnesCount64(a[i+1] & b[i+1])
		c += bits.OnesCount64(a[i+2] & b[i+2])
		c += bits.OnesCount64(a[i+3] & b[i+3])
	}
	for ; i < n; i++ {
		c += bits.OnesCount64(a[i] & b[i])
	}
	return c
}

// DifferenceCount returns |s \ t| without materializing the difference.
func (s *Set) DifferenceCount(t *Set) int {
	a, b := s.words, t.words
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	c := 0
	i := 0
	for ; i+4 <= n; i += 4 {
		c += bits.OnesCount64(a[i] &^ b[i])
		c += bits.OnesCount64(a[i+1] &^ b[i+1])
		c += bits.OnesCount64(a[i+2] &^ b[i+2])
		c += bits.OnesCount64(a[i+3] &^ b[i+3])
	}
	for ; i < n; i++ {
		c += bits.OnesCount64(a[i] &^ b[i])
	}
	return c + PopCountWords(a[n:])
}

// SymmetricDifferenceCount returns |s △ t| without materializing the
// symmetric difference.
func (s *Set) SymmetricDifferenceCount(t *Set) int {
	a, b := s.words, t.words
	if len(b) > len(a) {
		a, b = b, a
	}
	n := len(b)
	c := 0
	i := 0
	for ; i+4 <= n; i += 4 {
		c += bits.OnesCount64(a[i] ^ b[i])
		c += bits.OnesCount64(a[i+1] ^ b[i+1])
		c += bits.OnesCount64(a[i+2] ^ b[i+2])
		c += bits.OnesCount64(a[i+3] ^ b[i+3])
	}
	for ; i < n; i++ {
		c += bits.OnesCount64(a[i] ^ b[i])
	}
	return c + PopCountWords(a[n:])
}

// reuse resizes s to w words and universe n, reusing the backing array
// when it is large enough. The caller must overwrite every word.
func (s *Set) reuse(w, n int) {
	if cap(s.words) < w {
		s.words = make([]uint64, w)
	} else {
		s.words = s.words[:w]
	}
	s.n = n
}

// AndNotInto computes dst = s \ t, reusing dst's storage (growing it
// only when too small). dst may alias s or t. Returns dst.
func (s *Set) AndNotInto(t, dst *Set) *Set {
	a, b := s.words, t.words
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	dst.reuse(len(a), s.n)
	d := dst.words
	i := 0
	for ; i+4 <= n; i += 4 {
		d[i] = a[i] &^ b[i]
		d[i+1] = a[i+1] &^ b[i+1]
		d[i+2] = a[i+2] &^ b[i+2]
		d[i+3] = a[i+3] &^ b[i+3]
	}
	for ; i < n; i++ {
		d[i] = a[i] &^ b[i]
	}
	copy(d[n:], a[n:])
	return dst
}

// IntersectInto computes dst = s ∩ t, reusing dst's storage (growing
// it only when too small). dst may alias s or t. Returns dst.
func (s *Set) IntersectInto(t, dst *Set) *Set {
	a, b := s.words, t.words
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	un := s.n
	if t.n < un {
		un = t.n
	}
	dst.reuse(n, un)
	d := dst.words
	i := 0
	for ; i+4 <= n; i += 4 {
		d[i] = a[i] & b[i]
		d[i+1] = a[i+1] & b[i+1]
		d[i+2] = a[i+2] & b[i+2]
		d[i+3] = a[i+3] & b[i+3]
	}
	for ; i < n; i++ {
		d[i] = a[i] & b[i]
	}
	return dst
}

// UnionInto computes dst = s ∪ t, reusing dst's storage (growing it
// only when too small). dst may alias s or t. Returns dst.
func (s *Set) UnionInto(t, dst *Set) *Set {
	a, b := s.words, t.words
	if len(b) > len(a) {
		a, b = b, a
	}
	n := len(b)
	un := s.n
	if t.n > un {
		un = t.n
	}
	dst.reuse(len(a), un)
	d := dst.words
	i := 0
	for ; i+4 <= n; i += 4 {
		d[i] = a[i] | b[i]
		d[i+1] = a[i+1] | b[i+1]
		d[i+2] = a[i+2] | b[i+2]
		d[i+3] = a[i+3] | b[i+3]
	}
	for ; i < n; i++ {
		d[i] = a[i] | b[i]
	}
	copy(d[n:], a[n:])
	return dst
}

// PopCountWords returns the total population count of a raw word slice.
func PopCountWords(ws []uint64) int {
	c := 0
	i := 0
	for ; i+4 <= len(ws); i += 4 {
		c += bits.OnesCount64(ws[i])
		c += bits.OnesCount64(ws[i+1])
		c += bits.OnesCount64(ws[i+2])
		c += bits.OnesCount64(ws[i+3])
	}
	for ; i < len(ws); i++ {
		c += bits.OnesCount64(ws[i])
	}
	return c
}

// OrWordsInto ORs src into dst word-wise: dst[i] |= src[i]. dst must be
// at least as long as src; extra dst words are left untouched. This is
// the mask-merge kernel of the windowed observation stores.
func OrWordsInto(dst, src []uint64) {
	_ = dst[:len(src)] // bounds hint: dst must cover src
	i := 0
	for ; i+4 <= len(src); i += 4 {
		dst[i] |= src[i]
		dst[i+1] |= src[i+1]
		dst[i+2] |= src[i+2]
		dst[i+3] |= src[i+3]
	}
	for ; i < len(src); i++ {
		dst[i] |= src[i]
	}
}

// AndWordsInto ANDs src into dst word-wise, treating src words beyond
// its length as zero: dst[i] &= src[i] for i < len(src), dst[i] = 0
// beyond.
func AndWordsInto(dst, src []uint64) {
	n := len(src)
	if len(dst) < n {
		n = len(dst)
	}
	i := 0
	for ; i+4 <= n; i += 4 {
		dst[i] &= src[i]
		dst[i+1] &= src[i+1]
		dst[i+2] &= src[i+2]
		dst[i+3] &= src[i+3]
	}
	for ; i < n; i++ {
		dst[i] &= src[i]
	}
	for ; i < len(dst); i++ {
		dst[i] = 0
	}
}
