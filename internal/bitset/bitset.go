// Package bitset provides a compact, allocation-conscious set of
// non-negative integers backed by a []uint64.
//
// The tomography code manipulates very many small sets of link and path
// indices (coverage functions, path sets, correlation subsets); bitsets
// make intersection, union, subset and popcount operations cheap and
// make set values usable as map keys via Key().
package bitset

import (
	"encoding/binary"
	"fmt"
	"math/bits"
	"strings"
)

const wordBits = 64

// Set is a bitset over the universe [0, n). The zero value is an empty
// set over an empty universe; use New to pre-size.
type Set struct {
	words []uint64
	n     int // universe size (highest addressable bit + 1 at construction)
}

// New returns an empty set over the universe [0, n).
func New(n int) *Set {
	if n < 0 {
		panic("bitset: negative universe size")
	}
	return &Set{words: make([]uint64, (n+wordBits-1)/wordBits), n: n}
}

// FromIndices returns a set over [0, n) containing the given indices.
func FromIndices(n int, indices ...int) *Set {
	s := New(n)
	for _, i := range indices {
		s.Add(i)
	}
	return s
}

// Len returns the universe size the set was created with.
func (s *Set) Len() int { return s.n }

// grow ensures bit i is addressable.
func (s *Set) grow(i int) {
	w := i/wordBits + 1
	if w > len(s.words) {
		nw := make([]uint64, w)
		copy(nw, s.words)
		s.words = nw
	}
	if i+1 > s.n {
		s.n = i + 1
	}
}

// Add inserts i into the set, growing the universe if needed. An Add
// within the universe the set was created with never reallocates — the
// fast path below avoids even the grow call, since Add sits on the
// solver's subset-construction hot loop.
func (s *Set) Add(i int) {
	if i < 0 {
		panic("bitset: negative index")
	}
	if w := i / wordBits; w < len(s.words) {
		s.words[w] |= 1 << uint(i%wordBits)
		if i+1 > s.n {
			s.n = i + 1
		}
		return
	}
	s.grow(i)
	s.words[i/wordBits] |= 1 << uint(i%wordBits)
}

// Remove deletes i from the set. Removing an absent element is a no-op.
func (s *Set) Remove(i int) {
	if i < 0 || i/wordBits >= len(s.words) {
		return
	}
	s.words[i/wordBits] &^= 1 << uint(i%wordBits)
}

// Contains reports whether i is in the set.
func (s *Set) Contains(i int) bool {
	if i < 0 || i/wordBits >= len(s.words) {
		return false
	}
	return s.words[i/wordBits]&(1<<uint(i%wordBits)) != 0
}

// Count returns the number of elements in the set.
func (s *Set) Count() int {
	c := 0
	for _, w := range s.words {
		c += bits.OnesCount64(w)
	}
	return c
}

// IsEmpty reports whether the set has no elements.
func (s *Set) IsEmpty() bool {
	for _, w := range s.words {
		if w != 0 {
			return false
		}
	}
	return true
}

// Clone returns an independent copy of s.
func (s *Set) Clone() *Set {
	c := &Set{words: make([]uint64, len(s.words)), n: s.n}
	copy(c.words, s.words)
	return c
}

// Clear removes all elements, keeping the universe size.
func (s *Set) Clear() {
	for i := range s.words {
		s.words[i] = 0
	}
}

// Union returns a new set containing elements of s or t.
func (s *Set) Union(t *Set) *Set {
	long, short := s, t
	if len(t.words) > len(s.words) {
		long, short = t, s
	}
	r := long.Clone()
	for i, w := range short.words {
		r.words[i] |= w
	}
	return r
}

// UnionWith adds all elements of t to s in place.
func (s *Set) UnionWith(t *Set) {
	if t.n > s.n {
		s.grow(t.n - 1)
	}
	for i, w := range t.words {
		if w != 0 {
			s.words[i] |= w
		}
	}
}

// Intersect returns a new set containing elements in both s and t.
func (s *Set) Intersect(t *Set) *Set {
	n := len(s.words)
	if len(t.words) < n {
		n = len(t.words)
	}
	r := &Set{words: make([]uint64, n), n: min(s.n, t.n)}
	for i := 0; i < n; i++ {
		r.words[i] = s.words[i] & t.words[i]
	}
	return r
}

// Intersects reports whether s and t share at least one element.
func (s *Set) Intersects(t *Set) bool {
	n := len(s.words)
	if len(t.words) < n {
		n = len(t.words)
	}
	for i := 0; i < n; i++ {
		if s.words[i]&t.words[i] != 0 {
			return true
		}
	}
	return false
}

// Difference returns a new set with the elements of s not in t.
func (s *Set) Difference(t *Set) *Set {
	r := s.Clone()
	n := len(r.words)
	if len(t.words) < n {
		n = len(t.words)
	}
	for i := 0; i < n; i++ {
		r.words[i] &^= t.words[i]
	}
	return r
}

// IntersectWith removes from s every element not in t, in place.
func (s *Set) IntersectWith(t *Set) {
	for i := range s.words {
		if i < len(t.words) {
			s.words[i] &= t.words[i]
		} else {
			s.words[i] = 0
		}
	}
}

// SymmetricDifference returns a new set with the elements in exactly
// one of s and t.
func (s *Set) SymmetricDifference(t *Set) *Set {
	long, short := s, t
	if len(short.words) > len(long.words) {
		long, short = short, long
	}
	r := long.Clone()
	for i, w := range short.words {
		r.words[i] ^= w
	}
	return r
}

// SubsetOf reports whether every element of s is in t.
func (s *Set) SubsetOf(t *Set) bool {
	for i, w := range s.words {
		var tw uint64
		if i < len(t.words) {
			tw = t.words[i]
		}
		if w&^tw != 0 {
			return false
		}
	}
	return true
}

// Equal reports whether s and t contain exactly the same elements
// (universe sizes are ignored).
func (s *Set) Equal(t *Set) bool {
	long, short := s.words, t.words
	if len(short) > len(long) {
		long, short = short, long
	}
	for i, w := range short {
		if w != long[i] {
			return false
		}
	}
	for _, w := range long[len(short):] {
		if w != 0 {
			return false
		}
	}
	return true
}

// Indices returns the elements of s in increasing order.
func (s *Set) Indices() []int {
	out := make([]int, 0, s.Count())
	for wi, w := range s.words {
		for w != 0 {
			b := bits.TrailingZeros64(w)
			out = append(out, wi*wordBits+b)
			w &= w - 1
		}
	}
	return out
}

// AppendIndices appends the elements of s in increasing order to dst
// and returns the extended slice — the allocation-free companion of
// Indices for callers with a reusable buffer.
func (s *Set) AppendIndices(dst []int) []int {
	for wi, w := range s.words {
		for w != 0 {
			b := bits.TrailingZeros64(w)
			dst = append(dst, wi*wordBits+b)
			w &= w - 1
		}
	}
	return dst
}

// ForEach calls fn for each element in increasing order. If fn returns
// false, iteration stops.
func (s *Set) ForEach(fn func(i int) bool) {
	for wi, w := range s.words {
		for w != 0 {
			b := bits.TrailingZeros64(w)
			if !fn(wi*wordBits + b) {
				return
			}
			w &= w - 1
		}
	}
}

// Key returns a string usable as a map key that uniquely identifies the
// set's contents (trailing zero words are not significant). The
// encoding is opaque — raw little-endian words, 8 bytes each — chosen
// over a printable form because Key sits on the solvers' subset
// registration and lookup hot path.
func (s *Set) Key() string {
	end := len(s.words)
	for end > 0 && s.words[end-1] == 0 {
		end--
	}
	buf := make([]byte, end*8)
	for i := 0; i < end; i++ {
		binary.LittleEndian.PutUint64(buf[i*8:], s.words[i])
	}
	return string(buf)
}

// AppendKey appends the Key encoding to dst and returns the extended
// slice. Combined with a map lookup through a string conversion
// (m[string(buf)]), it makes key-based lookups allocation-free on the
// solver's candidate-evaluation hot path.
func (s *Set) AppendKey(dst []byte) []byte {
	end := len(s.words)
	for end > 0 && s.words[end-1] == 0 {
		end--
	}
	for i := 0; i < end; i++ {
		dst = binary.LittleEndian.AppendUint64(dst, s.words[i])
	}
	return dst
}

// String renders the set as "{a, b, c}".
func (s *Set) String() string {
	var b strings.Builder
	b.WriteByte('{')
	first := true
	s.ForEach(func(i int) bool {
		if !first {
			b.WriteString(", ")
		}
		first = false
		fmt.Fprintf(&b, "%d", i)
		return true
	})
	b.WriteByte('}')
	return b.String()
}
