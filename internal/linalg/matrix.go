// Package linalg implements the dense linear algebra the tomography
// algorithms need: Householder QR factorization, least-squares solves,
// rank and null-space computation, reduced row-echelon form, and the
// incremental null-space update of the paper's Algorithm 2.
//
// Everything is built on a simple row-major dense Matrix. The systems
// solved here are 0/1 routing matrices with at most a few thousand rows
// and columns, so a straightforward dense implementation with partial
// pivoting is both adequate and predictable.
package linalg

import (
	"fmt"
	"math"
	"strings"
)

// Matrix is a dense row-major matrix of float64.
type Matrix struct {
	Rows, Cols int
	Data       []float64 // len == Rows*Cols
}

// NewMatrix returns a zero matrix with the given shape.
func NewMatrix(rows, cols int) *Matrix {
	if rows < 0 || cols < 0 {
		panic("linalg: negative dimension")
	}
	return &Matrix{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// FromRows builds a matrix from row slices, which must all have equal
// length. The data is copied.
func FromRows(rows [][]float64) *Matrix {
	if len(rows) == 0 {
		return NewMatrix(0, 0)
	}
	cols := len(rows[0])
	m := NewMatrix(len(rows), cols)
	for i, r := range rows {
		if len(r) != cols {
			panic(fmt.Sprintf("linalg: ragged rows: row %d has %d cols, want %d", i, len(r), cols))
		}
		copy(m.Data[i*cols:(i+1)*cols], r)
	}
	return m
}

// Identity returns the n×n identity matrix.
func Identity(n int) *Matrix {
	m := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		m.Set(i, i, 1)
	}
	return m
}

// At returns element (i, j).
func (m *Matrix) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set assigns element (i, j).
func (m *Matrix) Set(i, j int, v float64) { m.Data[i*m.Cols+j] = v }

// Row returns a view (not a copy) of row i.
func (m *Matrix) Row(i int) []float64 { return m.Data[i*m.Cols : (i+1)*m.Cols] }

// Col returns a copy of column j.
func (m *Matrix) Col(j int) []float64 {
	out := make([]float64, m.Rows)
	for i := 0; i < m.Rows; i++ {
		out[i] = m.At(i, j)
	}
	return out
}

// Clone returns a deep copy.
func (m *Matrix) Clone() *Matrix {
	c := NewMatrix(m.Rows, m.Cols)
	copy(c.Data, m.Data)
	return c
}

// AppendRow returns a new matrix with row r appended. m is unchanged.
func (m *Matrix) AppendRow(r []float64) *Matrix {
	if m.Rows > 0 && len(r) != m.Cols {
		panic("linalg: AppendRow dimension mismatch")
	}
	cols := m.Cols
	if m.Rows == 0 {
		cols = len(r)
	}
	out := &Matrix{Rows: m.Rows + 1, Cols: cols, Data: make([]float64, 0, (m.Rows+1)*cols)}
	out.Data = append(out.Data, m.Data...)
	out.Data = append(out.Data, r...)
	return out
}

// Mul returns m × b.
func (m *Matrix) Mul(b *Matrix) *Matrix {
	if m.Cols != b.Rows {
		panic(fmt.Sprintf("linalg: Mul shape mismatch %dx%d × %dx%d", m.Rows, m.Cols, b.Rows, b.Cols))
	}
	out := NewMatrix(m.Rows, b.Cols)
	for i := 0; i < m.Rows; i++ {
		mi := m.Row(i)
		oi := out.Row(i)
		for k, mik := range mi {
			if mik == 0 {
				continue
			}
			bk := b.Row(k)
			for j, bkj := range bk {
				oi[j] += mik * bkj
			}
		}
	}
	return out
}

// MulVec returns m × v as a vector.
func (m *Matrix) MulVec(v []float64) []float64 {
	if m.Cols != len(v) {
		panic("linalg: MulVec dimension mismatch")
	}
	out := make([]float64, m.Rows)
	for i := 0; i < m.Rows; i++ {
		out[i] = Dot(m.Row(i), v)
	}
	return out
}

// VecMul returns vᵀ × m as a vector of length m.Cols.
func (m *Matrix) VecMul(v []float64) []float64 {
	if m.Rows != len(v) {
		panic("linalg: VecMul dimension mismatch")
	}
	out := make([]float64, m.Cols)
	for i, vi := range v {
		if vi == 0 {
			continue
		}
		row := m.Row(i)
		for j, rij := range row {
			out[j] += vi * rij
		}
	}
	return out
}

// Transpose returns mᵀ.
func (m *Matrix) Transpose() *Matrix {
	t := NewMatrix(m.Cols, m.Rows)
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			t.Set(j, i, m.At(i, j))
		}
	}
	return t
}

// SwapCols exchanges columns a and b in place.
func (m *Matrix) SwapCols(a, b int) {
	if a == b {
		return
	}
	for i := 0; i < m.Rows; i++ {
		r := m.Row(i)
		r[a], r[b] = r[b], r[a]
	}
}

// DropCol returns a copy of m without column j.
func (m *Matrix) DropCol(j int) *Matrix {
	out := NewMatrix(m.Rows, m.Cols-1)
	for i := 0; i < m.Rows; i++ {
		src := m.Row(i)
		dst := out.Row(i)
		copy(dst[:j], src[:j])
		copy(dst[j:], src[j+1:])
	}
	return out
}

// String renders the matrix for debugging.
func (m *Matrix) String() string {
	var b strings.Builder
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			fmt.Fprintf(&b, "%8.4f ", m.At(i, j))
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// Dot returns the inner product of two equal-length vectors.
func Dot(a, b []float64) float64 {
	if len(a) != len(b) {
		panic("linalg: Dot length mismatch")
	}
	var s float64
	for i, ai := range a {
		s += ai * b[i]
	}
	return s
}

// Norm2 returns the Euclidean norm of v.
func Norm2(v []float64) float64 {
	// Scaled computation to avoid overflow; vectors here are small-valued
	// but this keeps the helper generally correct.
	var scale, ssq float64 = 0, 1
	for _, x := range v {
		if x == 0 {
			continue
		}
		ax := math.Abs(x)
		if scale < ax {
			r := scale / ax
			ssq = 1 + ssq*r*r
			scale = ax
		} else {
			r := ax / scale
			ssq += r * r
		}
	}
	return scale * math.Sqrt(ssq)
}
