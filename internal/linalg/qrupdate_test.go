package linalg

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// qrStateEqual asserts two factorizations are bitwise identical in
// every field a solve can observe.
func qrStateEqual(t *testing.T, label string, a, b *QR) {
	t.Helper()
	if a.m != b.m || a.n != b.n {
		t.Fatalf("%s: shape (%d,%d) vs (%d,%d)", label, a.m, a.n, b.m, b.n)
	}
	if len(a.rdiag) != len(b.rdiag) {
		t.Fatalf("%s: rdiag lengths %d vs %d", label, len(a.rdiag), len(b.rdiag))
	}
	for k := range a.rdiag {
		if a.rdiag[k] != b.rdiag[k] {
			t.Fatalf("%s: rdiag[%d] %v != %v", label, k, a.rdiag[k], b.rdiag[k])
		}
	}
	for i := range a.qr.Data {
		if a.qr.Data[i] != b.qr.Data[i] {
			t.Fatalf("%s: qr data at %d: %v != %v", label, i, a.qr.Data[i], b.qr.Data[i])
		}
	}
}

// AppendCol must reproduce, bit for bit, the factorization of the
// widened matrix: the whole point of the append update is that the
// warm path stays on the cold path's arithmetic.
func TestQuickAppendColBitIdenticalToRefactor(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m, n := 2+rng.Intn(12), 1+rng.Intn(8)
		if n >= m {
			n = m - 1
		}
		a := random01Matrix(rng, m, n)
		col := make([]float64, m)
		for i := range col {
			if rng.Intn(2) == 1 {
				col[i] = 1
			}
		}
		incr := FactorInPlace(a.Clone())
		incr.AppendCol(col)
		wide := NewMatrix(m, n+1)
		for i := 0; i < m; i++ {
			copy(wide.Row(i)[:n], a.Row(i))
			wide.Set(i, n, col[i])
		}
		scratch := FactorInPlace(wide)
		if incr.n != scratch.n || len(incr.rdiag) != len(scratch.rdiag) {
			return false
		}
		for k := range incr.rdiag {
			if incr.rdiag[k] != scratch.rdiag[k] {
				return false
			}
		}
		for i := range incr.qr.Data {
			if incr.qr.Data[i] != scratch.qr.Data[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

// A chain of appends starting from a single column must land on the
// same factorization (and the same least-squares solutions) as one
// from-scratch factorization of the final matrix.
func TestAppendColChainMatchesRefactor(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	const m, n = 20, 8
	a := randomMatrix(rng, m, n)
	incr := FactorInPlace(a.Clone().DropCol(n - 1).DropCol(n - 2).DropCol(n - 3))
	for j := n - 3; j < n; j++ {
		incr.AppendCol(a.Col(j))
	}
	full := Factor(a)
	qrStateEqual(t, "append chain", incr, full)
	b := make([]float64, m)
	for i := range b {
		b[i] = rng.NormFloat64()
	}
	xi, err1 := incr.SolveLeastSquares(b)
	xf, err2 := full.SolveLeastSquares(b)
	if err1 != nil || err2 != nil {
		t.Fatalf("solve errors: %v, %v", err1, err2)
	}
	for k := range xi {
		if xi[k] != xf[k] {
			t.Fatalf("x[%d]: incremental %v != refactor %v", k, xi[k], xf[k])
		}
	}
}

// DeleteCol is a numerical (not bitwise) update: the patched
// factorization must solve the narrowed system to within tolerance of
// a from-scratch factorization, for any deletion position and for
// repeated deletions.
func TestQuickDeleteColMatchesRefactor(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m, n := 3+rng.Intn(12), 2+rng.Intn(6)
		if n >= m {
			n = m - 1
		}
		a := randomMatrix(rng, m, n)
		b := make([]float64, m)
		for i := range b {
			b[i] = rng.NormFloat64()
		}
		del := FactorInPlace(a.Clone())
		deleted := 0
		for a.Cols > 1 && deleted < 3 {
			j := rng.Intn(a.Cols)
			del.DeleteCol(j)
			a = a.DropCol(j)
			deleted++
			want, errW := SolveLeastSquares(a, b)
			got, errG := del.SolveLeastSquares(b)
			if (errW == nil) != (errG == nil) {
				return false
			}
			if errW != nil {
				continue
			}
			for k := range want {
				if !almostEqual(want[k], got[k], 1e-8) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

// Deleting down to a rank-deficient system must surface
// ErrRankDeficient, the repair-path fallback trigger.
func TestDeleteColRankDeficient(t *testing.T) {
	// Two identical columns plus one independent: deleting the
	// independent one leaves a rank-1 two-column system.
	a := FromRows([][]float64{
		{1, 1, 0},
		{1, 1, 1},
		{1, 1, 0},
		{1, 1, 1},
	})
	f := Factor(a)
	f.DeleteCol(2)
	if f.FullColumnRank() {
		t.Fatal("duplicate-column system reported full column rank after delete")
	}
	if _, err := f.SolveLeastSquares([]float64{1, 2, 3, 4}); err != ErrRankDeficient {
		t.Fatalf("want ErrRankDeficient, got %v", err)
	}
}

// The batched multi-RHS solve must agree bit for bit with sequential
// SolveLeastSquares calls: batching reorders the loops, never the
// per-vector arithmetic.
func TestQuickSolveBatchBitIdenticalToSequential(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m, n := 3+rng.Intn(14), 1+rng.Intn(8)
		if n >= m {
			n = m - 1
		}
		fac := FactorInPlace(randomMatrix(rng, m, n))
		K := 1 + rng.Intn(6)
		bs := make([][]float64, K)
		for k := range bs {
			bs[k] = make([]float64, m)
			for i := range bs[k] {
				bs[k][i] = rng.NormFloat64()
			}
		}
		xs, err := fac.SolveLeastSquaresBatch(bs)
		if err == ErrRankDeficient {
			return true // a random singular draw; nothing to compare
		}
		if err != nil {
			return false
		}
		for k := range bs {
			want, err := fac.SolveLeastSquares(bs[k])
			if err != nil {
				return false
			}
			for j := range want {
				if xs[k][j] != want[j] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// The batch solve must also run against a column-deleted (patched)
// factorization, agreeing with the patched sequential solve.
func TestSolveBatchOnPatchedFactorization(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	a := randomMatrix(rng, 16, 6)
	f := Factor(a)
	f.DeleteCol(2)
	bs := make([][]float64, 4)
	for k := range bs {
		bs[k] = make([]float64, 16)
		for i := range bs[k] {
			bs[k][i] = rng.NormFloat64()
		}
	}
	xs, err := f.SolveLeastSquaresBatch(bs)
	if err != nil {
		t.Fatal(err)
	}
	for k := range bs {
		want, err := f.SolveLeastSquares(bs[k])
		if err != nil {
			t.Fatal(err)
		}
		for j := range want {
			if xs[k][j] != want[j] {
				t.Fatalf("rhs %d x[%d]: batch %v != sequential %v", k, j, xs[k][j], want[j])
			}
		}
	}
}

// SolveLeastSquaresInto and the batch Into variant must not allocate:
// they are the steady-state epoch-solve tail.
func TestSolveIntoAllocationFree(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	const m, n, K = 40, 12, 5
	f := FactorInPlace(randomMatrix(rng, m, n))
	b := make([]float64, m)
	for i := range b {
		b[i] = rng.NormFloat64()
	}
	x := make([]float64, n)
	scratch := make([]float64, K*m)
	if avg := testing.AllocsPerRun(50, func() {
		if err := f.SolveLeastSquaresInto(x, b, scratch); err != nil {
			t.Fatal(err)
		}
	}); avg != 0 {
		t.Fatalf("SolveLeastSquaresInto allocates %.1f/op", avg)
	}
	xs := make([][]float64, K)
	bs := make([][]float64, K)
	for k := range xs {
		xs[k] = make([]float64, n)
		bs[k] = b
	}
	if avg := testing.AllocsPerRun(50, func() {
		if err := f.SolveLeastSquaresBatchInto(xs, bs, scratch); err != nil {
			t.Fatal(err)
		}
	}); avg != 0 {
		t.Fatalf("SolveLeastSquaresBatchInto allocates %.1f/op", avg)
	}
}

// Interleaved DeleteCol/AppendCol chains — the edit sequence the
// tier-2 plan repair issues — must keep solving the current system to
// within tolerance of a from-scratch factorization, and the rank
// checks must stay in sync across every edit.
func TestQuickDeleteAppendInterleavedMatchesRefactor(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := 6 + rng.Intn(12)
		n := 2 + rng.Intn(m-3)
		a := randomMatrix(rng, m, n)
		b := make([]float64, m)
		for i := range b {
			b[i] = rng.NormFloat64()
		}
		fac := FactorInPlace(a.Clone())
		for step := 0; step < 6; step++ {
			if a.Cols > 1 && (rng.Intn(2) == 0 || a.Cols >= m) {
				j := rng.Intn(a.Cols)
				fac.DeleteCol(j)
				a = a.DropCol(j)
			} else {
				col := make([]float64, m)
				for i := range col {
					col[i] = rng.NormFloat64()
				}
				fac.AppendCol(col)
				wide := NewMatrix(m, a.Cols+1)
				for i := 0; i < m; i++ {
					copy(wide.Row(i)[:a.Cols], a.Row(i))
					wide.Set(i, a.Cols, col[i])
				}
				a = wide
			}
			ref := Factor(a)
			if fac.FullColumnRank() != ref.FullColumnRank() {
				return false
			}
			want, errW := ref.SolveLeastSquares(b)
			got, errG := fac.SolveLeastSquares(b)
			if (errW == nil) != (errG == nil) {
				return false
			}
			if errW != nil {
				continue
			}
			for k := range want {
				if !almostEqual(want[k], got[k], 1e-8) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Appending a duplicate of a surviving column onto a column-deleted
// factorization must be reported as rank loss, not solved: this is the
// incremental identifiability check the tier-2 repair falls back on.
func TestAppendColAfterDeleteRankLoss(t *testing.T) {
	a := FromRows([][]float64{
		{1, 0, 1},
		{0, 1, 1},
		{1, 1, 0},
		{0, 0, 1},
	})
	f := Factor(a)
	f.DeleteCol(1)
	f.AppendCol([]float64{1, 0, 1, 0}) // duplicates surviving column 0
	if f.FullColumnRank() {
		t.Fatal("duplicate appended column reported full column rank")
	}
	if _, err := f.SolveLeastSquares([]float64{1, 2, 3, 4}); err != ErrRankDeficient {
		t.Fatalf("want ErrRankDeficient, got %v", err)
	}
}

// The batch solve must agree with the sequential solve on a
// factorization that has been both column-deleted and column-appended
// (reflector trailing transforms, not just Givens rotations).
func TestSolveBatchOnDeleteAppendFactorization(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	a := randomMatrix(rng, 16, 6)
	f := Factor(a)
	f.DeleteCol(4)
	f.DeleteCol(1)
	for j := 0; j < 2; j++ {
		col := make([]float64, 16)
		for i := range col {
			col[i] = rng.NormFloat64()
		}
		f.AppendCol(col)
	}
	bs := make([][]float64, 4)
	for k := range bs {
		bs[k] = make([]float64, 16)
		for i := range bs[k] {
			bs[k][i] = rng.NormFloat64()
		}
	}
	xs, err := f.SolveLeastSquaresBatch(bs)
	if err != nil {
		t.Fatal(err)
	}
	for k := range bs {
		want, err := f.SolveLeastSquares(bs[k])
		if err != nil {
			t.Fatal(err)
		}
		for j := range want {
			if xs[k][j] != want[j] {
				t.Fatalf("rhs %d x[%d]: batch %v != sequential %v", k, j, xs[k][j], want[j])
			}
		}
	}
}

// Clone must be deep: edits on the clone leave the original's
// solutions bit-identical, in both the pure and patched forms.
func TestCloneIsolatesEdits(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for _, patch := range []bool{false, true} {
		a := randomMatrix(rng, 12, 5)
		f := Factor(a)
		if patch {
			f.DeleteCol(3)
		}
		b := make([]float64, 12)
		for i := range b {
			b[i] = rng.NormFloat64()
		}
		before, err := f.SolveLeastSquares(b)
		if err != nil {
			t.Fatal(err)
		}
		g := f.Clone()
		g.DeleteCol(0)
		col := make([]float64, 12)
		for i := range col {
			col[i] = rng.NormFloat64()
		}
		g.AppendCol(col)
		after, err := f.SolveLeastSquares(b)
		if err != nil {
			t.Fatal(err)
		}
		for k := range before {
			if before[k] != after[k] {
				t.Fatalf("patched=%v: clone edit disturbed original x[%d]: %v != %v",
					patch, k, before[k], after[k])
			}
		}
	}
}

// NullSpaceInsertColumn must produce exactly the null space of the
// system with a zero column spliced in.
func TestQuickNullSpaceInsertColumn(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := random01Matrix(rng, 1+rng.Intn(8), 1+rng.Intn(8))
		at := rng.Intn(a.Cols + 1)
		grownN := NullSpaceInsertColumn(NullSpaceBasis(a), at)
		// Build the widened system with an explicit zero column at `at`.
		wide := NewMatrix(a.Rows, a.Cols+1)
		for i := 0; i < a.Rows; i++ {
			for j := 0; j < a.Cols; j++ {
				dst := j
				if j >= at {
					dst = j + 1
				}
				wide.Set(i, dst, a.At(i, j))
			}
		}
		if grownN.Cols != wide.Cols-RankRREF(wide) {
			return false
		}
		if grownN.Cols == 0 {
			return true
		}
		prod := wide.Mul(grownN)
		for _, v := range prod.Data {
			if math.Abs(v) > 1e-8 {
				return false
			}
		}
		return RankRREF(grownN) == grownN.Cols
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}
