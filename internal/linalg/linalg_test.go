package linalg

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func randomMatrix(rng *rand.Rand, rows, cols int) *Matrix {
	m := NewMatrix(rows, cols)
	for i := range m.Data {
		m.Data[i] = rng.NormFloat64()
	}
	return m
}

func random01Matrix(rng *rand.Rand, rows, cols int) *Matrix {
	m := NewMatrix(rows, cols)
	for i := range m.Data {
		if rng.Intn(2) == 1 {
			m.Data[i] = 1
		}
	}
	return m
}

func TestMatrixBasics(t *testing.T) {
	m := FromRows([][]float64{{1, 2}, {3, 4}})
	if m.At(1, 0) != 3 {
		t.Fatalf("At(1,0) = %v", m.At(1, 0))
	}
	m.Set(1, 0, 7)
	if m.At(1, 0) != 7 {
		t.Fatal("Set failed")
	}
	if got := m.Col(1); got[0] != 2 || got[1] != 4 {
		t.Fatalf("Col = %v", got)
	}
	c := m.Clone()
	c.Set(0, 0, 99)
	if m.At(0, 0) == 99 {
		t.Fatal("Clone not independent")
	}
}

func TestMul(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {3, 4}})
	b := FromRows([][]float64{{5, 6}, {7, 8}})
	p := a.Mul(b)
	want := FromRows([][]float64{{19, 22}, {43, 50}})
	for i := range p.Data {
		if p.Data[i] != want.Data[i] {
			t.Fatalf("Mul = %v", p)
		}
	}
}

func TestMulVecVecMul(t *testing.T) {
	a := FromRows([][]float64{{1, 2, 3}, {4, 5, 6}})
	if got := a.MulVec([]float64{1, 1, 1}); got[0] != 6 || got[1] != 15 {
		t.Fatalf("MulVec = %v", got)
	}
	if got := a.VecMul([]float64{1, 1}); got[0] != 5 || got[1] != 7 || got[2] != 9 {
		t.Fatalf("VecMul = %v", got)
	}
}

func TestTransposeDropColSwapCols(t *testing.T) {
	a := FromRows([][]float64{{1, 2, 3}, {4, 5, 6}})
	at := a.Transpose()
	if at.Rows != 3 || at.Cols != 2 || at.At(2, 1) != 6 {
		t.Fatalf("Transpose = %v", at)
	}
	d := a.DropCol(1)
	if d.Cols != 2 || d.At(0, 1) != 3 || d.At(1, 0) != 4 {
		t.Fatalf("DropCol = %v", d)
	}
	s := a.Clone()
	s.SwapCols(0, 2)
	if s.At(0, 0) != 3 || s.At(0, 2) != 1 {
		t.Fatalf("SwapCols = %v", s)
	}
}

func TestAppendRow(t *testing.T) {
	m := NewMatrix(0, 0)
	m = m.AppendRow([]float64{1, 2})
	m = m.AppendRow([]float64{3, 4})
	if m.Rows != 2 || m.Cols != 2 || m.At(1, 1) != 4 {
		t.Fatalf("AppendRow = %v", m)
	}
}

func TestLeastSquaresExact(t *testing.T) {
	// Square non-singular system: exact solve.
	a := FromRows([][]float64{{2, 1}, {1, 3}})
	b := []float64{5, 10}
	x, err := SolveLeastSquares(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(x[0], 1, 1e-9) || !almostEqual(x[1], 3, 1e-9) {
		t.Fatalf("x = %v, want [1 3]", x)
	}
}

func TestLeastSquaresOverdetermined(t *testing.T) {
	// Fit y = 2x + 1 with noise-free points: LS must recover it.
	a := FromRows([][]float64{{0, 1}, {1, 1}, {2, 1}, {3, 1}})
	b := []float64{1, 3, 5, 7}
	x, err := SolveLeastSquares(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(x[0], 2, 1e-9) || !almostEqual(x[1], 1, 1e-9) {
		t.Fatalf("x = %v, want [2 1]", x)
	}
}

func TestLeastSquaresRankDeficient(t *testing.T) {
	a := FromRows([][]float64{{1, 1}, {2, 2}, {3, 3}})
	if _, err := SolveLeastSquares(a, []float64{1, 2, 3}); err != ErrRankDeficient {
		t.Fatalf("err = %v, want ErrRankDeficient", err)
	}
}

func TestLeastSquaresUnderdetermined(t *testing.T) {
	a := FromRows([][]float64{{1, 0, 1}})
	if _, err := SolveLeastSquares(a, []float64{1}); err != ErrRankDeficient {
		t.Fatalf("err = %v, want ErrRankDeficient", err)
	}
}

func TestQuickLeastSquaresResidualOrthogonality(t *testing.T) {
	// At the LS optimum, the residual is orthogonal to the column space:
	// Aᵀ(Ax − b) = 0.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		rows := 3 + rng.Intn(10)
		cols := 1 + rng.Intn(3)
		a := randomMatrix(rng, rows, cols)
		b := make([]float64, rows)
		for i := range b {
			b[i] = rng.NormFloat64()
		}
		x, err := SolveLeastSquares(a, b)
		if err != nil {
			return true // rank-deficient draw; nothing to check
		}
		res := a.MulVec(x)
		for i := range res {
			res[i] -= b[i]
		}
		g := a.Transpose().MulVec(res)
		for _, v := range g {
			if math.Abs(v) > 1e-7 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestRREFKnown(t *testing.T) {
	a := FromRows([][]float64{
		{1, 2, 3},
		{2, 4, 6},
		{1, 0, 1},
	})
	rref, pivots := RREF(a)
	if len(pivots) != 2 || pivots[0] != 0 || pivots[1] != 1 {
		t.Fatalf("pivots = %v", pivots)
	}
	// Row 2 must be eliminated to zero.
	for j := 0; j < 3; j++ {
		if math.Abs(rref.At(2, j)) > 1e-9 {
			t.Fatalf("rref row 2 not zero: %v", rref.Row(2))
		}
	}
}

func TestRankRREF(t *testing.T) {
	cases := []struct {
		m    *Matrix
		want int
	}{
		{Identity(4), 4},
		{FromRows([][]float64{{1, 1}, {2, 2}}), 1},
		{NewMatrix(3, 3), 0},
		{FromRows([][]float64{{1, 0, 0}, {0, 1, 0}}), 2},
	}
	for i, c := range cases {
		if got := RankRREF(c.m); got != c.want {
			t.Errorf("case %d: rank = %d, want %d", i, got, c.want)
		}
	}
}

func TestQuickRankTransposeInvariant(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := random01Matrix(rng, 1+rng.Intn(12), 1+rng.Intn(12))
		return RankRREF(a) == RankRREF(a.Transpose())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestNullSpaceBasisProperties(t *testing.T) {
	a := FromRows([][]float64{
		{1, 1, 0, 0},
		{0, 0, 1, 1},
	})
	ns := NullSpaceBasis(a)
	if ns.Cols != 2 {
		t.Fatalf("nullity = %d, want 2", ns.Cols)
	}
	prod := a.Mul(ns)
	for _, v := range prod.Data {
		if math.Abs(v) > 1e-9 {
			t.Fatalf("A·N != 0: %v", prod)
		}
	}
}

func TestNullSpaceEmptyMatrix(t *testing.T) {
	ns := NullSpaceBasis(NewMatrix(0, 3))
	if ns.Rows != 3 || ns.Cols != 3 {
		t.Fatalf("null space of empty system should be identity, got %dx%d", ns.Rows, ns.Cols)
	}
}

func TestQuickNullSpaceSpansKernel(t *testing.T) {
	// rank(A) + nullity(A) == cols(A), and A·N == 0, and N has full
	// column rank.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := random01Matrix(rng, 1+rng.Intn(10), 1+rng.Intn(10))
		ns := NullSpaceBasis(a)
		if RankRREF(a)+ns.Cols != a.Cols {
			return false
		}
		if ns.Cols > 0 {
			prod := a.Mul(ns)
			for _, v := range prod.Data {
				if math.Abs(v) > 1e-8 {
					return false
				}
			}
			if RankRREF(ns) != ns.Cols {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestNullSpaceUpdateMatchesRecompute(t *testing.T) {
	// Incrementally adding rows via NullSpaceUpdate must keep N spanning
	// the exact null space of the grown matrix.
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 30; trial++ {
		cols := 4 + rng.Intn(6)
		base := random01Matrix(rng, 1+rng.Intn(3), cols)
		N := NullSpaceBasis(base)
		acc := base.Clone()
		for step := 0; step < 8; step++ {
			r := make([]float64, cols)
			for j := range r {
				if rng.Intn(2) == 1 {
					r[j] = 1
				}
			}
			inSpace := InRowSpace(N, r)
			N2 := NullSpaceUpdate(N, r)
			acc = acc.AppendRow(r)
			if inSpace {
				if N2.Cols != N.Cols {
					t.Fatalf("in-row-space update changed nullity %d -> %d", N.Cols, N2.Cols)
				}
			} else if N2.Cols != N.Cols-1 {
				t.Fatalf("update nullity %d -> %d, want -1", N.Cols, N2.Cols)
			}
			N = N2
			// Invariant: acc·N == 0 and nullity matches recomputation.
			want := NullSpaceBasis(acc)
			if want.Cols != N.Cols {
				t.Fatalf("nullity drift: incremental %d, recomputed %d", N.Cols, want.Cols)
			}
			if N.Cols > 0 {
				prod := acc.Mul(N)
				for _, v := range prod.Data {
					if math.Abs(v) > 1e-7 {
						t.Fatalf("acc·N != 0 after update")
					}
				}
			}
		}
	}
}

func TestNullSpaceUpdateInPlaceMatchesImmutable(t *testing.T) {
	// The in-place update must produce exactly the matrix the immutable
	// API returns, and must leave N untouched when the row is already in
	// the row space.
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 40; trial++ {
		cols := 3 + rng.Intn(8)
		base := random01Matrix(rng, 1+rng.Intn(3), cols)
		N := NullSpaceBasis(base)
		r := make([]float64, cols)
		for j := range r {
			if rng.Intn(2) == 1 {
				r[j] = 1
			}
		}
		want := NullSpaceUpdate(N, r)
		got := N.Clone()
		removed := NullSpaceUpdateInPlace(got, r)
		if removed != !InRowSpace(N, r) {
			t.Fatalf("removed = %v, InRowSpace = %v", removed, InRowSpace(N, r))
		}
		if got.Rows != want.Rows || got.Cols != want.Cols {
			t.Fatalf("shape %dx%d, want %dx%d", got.Rows, got.Cols, want.Rows, want.Cols)
		}
		for i := range want.Data {
			if got.Data[i] != want.Data[i] {
				t.Fatalf("trial %d: in-place result diverges at %d: %v vs %v",
					trial, i, got.Data[i], want.Data[i])
			}
		}
	}
}

func TestNullSpaceUpdateDoesNotMutateInput(t *testing.T) {
	base := FromRows([][]float64{{1, 1, 0, 0}})
	N := NullSpaceBasis(base)
	snapshot := N.Clone()
	NullSpaceUpdate(N, []float64{0, 0, 1, 1})
	for i := range N.Data {
		if N.Data[i] != snapshot.Data[i] {
			t.Fatal("NullSpaceUpdate mutated its input")
		}
	}
}

func TestSolveLeastSquaresInPlaceMatchesFactor(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 30; trial++ {
		rows := 3 + rng.Intn(8)
		cols := 1 + rng.Intn(3)
		a := randomMatrix(rng, rows, cols)
		b := make([]float64, rows)
		for i := range b {
			b[i] = rng.NormFloat64()
		}
		bCopy := append([]float64(nil), b...)
		want, errWant := SolveLeastSquares(a, b)
		got, errGot := SolveLeastSquaresInPlace(a.Clone(), b)
		if (errWant == nil) != (errGot == nil) {
			t.Fatalf("error mismatch: %v vs %v", errWant, errGot)
		}
		if errWant != nil {
			continue
		}
		for i := range want {
			if want[i] != got[i] {
				t.Fatalf("x diverges: %v vs %v", want, got)
			}
		}
		for i := range b {
			if b[i] != bCopy[i] {
				t.Fatal("SolveLeastSquaresInPlace mutated b")
			}
		}
	}
}

func TestNullSpaceUpdateNoColumns(t *testing.T) {
	N := NewMatrix(3, 0)
	if got := NullSpaceUpdate(N, []float64{1, 0, 0}); got.Cols != 0 {
		t.Fatal("update of empty null space must stay empty")
	}
}

func TestInRowSpace(t *testing.T) {
	a := FromRows([][]float64{{1, 1, 0}})
	N := NullSpaceBasis(a)
	if !InRowSpace(N, []float64{2, 2, 0}) {
		t.Fatal("scaled row should be in row space")
	}
	if InRowSpace(N, []float64{1, 0, 0}) {
		t.Fatal("independent row should not be in row space")
	}
}

func TestNorm2(t *testing.T) {
	if !almostEqual(Norm2([]float64{3, 4}), 5, 1e-12) {
		t.Fatal("Norm2(3,4) != 5")
	}
	if Norm2(nil) != 0 {
		t.Fatal("Norm2(nil) != 0")
	}
}

func TestQRRankFullRankGaussian(t *testing.T) {
	// Random Gaussian matrices are full rank almost surely; the QR
	// diagonal count must agree.
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 40; trial++ {
		rows := 1 + rng.Intn(10)
		cols := 1 + rng.Intn(rows) // cols <= rows
		a := randomMatrix(rng, rows, cols)
		if got := Factor(a).Rank(); got != cols {
			t.Fatalf("QR rank = %d, want %d", got, cols)
		}
	}
}
