package linalg

import "math"

// rrefTol is the pivot tolerance for reduced row-echelon elimination.
// The systems handled here are 0/1 indicator matrices, so pivots are
// well separated from rounding noise.
const rrefTol = 1e-9

// RREF returns the reduced row-echelon form of a together with the
// indices of the pivot columns. a is not modified.
func RREF(a *Matrix) (*Matrix, []int) {
	m := a.Clone()
	var pivots []int
	row := 0
	for col := 0; col < m.Cols && row < m.Rows; col++ {
		// Partial pivoting: find the largest entry in this column at or
		// below `row`.
		best, bestAbs := -1, rrefTol
		for i := row; i < m.Rows; i++ {
			if v := math.Abs(m.At(i, col)); v > bestAbs {
				best, bestAbs = i, v
			}
		}
		if best < 0 {
			continue // free column
		}
		// Swap into position and normalize.
		if best != row {
			br, rr := m.Row(best), m.Row(row)
			for j := range br {
				br[j], rr[j] = rr[j], br[j]
			}
		}
		p := m.At(row, col)
		rr := m.Row(row)
		for j := range rr {
			rr[j] /= p
		}
		// Eliminate the column everywhere else.
		for i := 0; i < m.Rows; i++ {
			if i == row {
				continue
			}
			f := m.At(i, col)
			if f == 0 {
				continue
			}
			ir := m.Row(i)
			for j := range ir {
				ir[j] -= f * rr[j]
			}
		}
		pivots = append(pivots, col)
		row++
	}
	return m, pivots
}

// RankRREF returns the rank of a computed by Gaussian elimination.
func RankRREF(a *Matrix) int {
	if a.Rows == 0 || a.Cols == 0 {
		return 0
	}
	_, pivots := RREF(a)
	return len(pivots)
}

// NullSpaceBasis returns an n×k matrix N whose columns form a basis of
// the null space of a (a·N = 0), with k = n − rank(a). If the null
// space is trivial, the returned matrix has zero columns.
func NullSpaceBasis(a *Matrix) *Matrix {
	n := a.Cols
	if a.Rows == 0 {
		return Identity(n)
	}
	rref, pivots := RREF(a)
	isPivot := make([]bool, n)
	for _, p := range pivots {
		isPivot[p] = true
	}
	free := make([]int, 0, n-len(pivots))
	for j := 0; j < n; j++ {
		if !isPivot[j] {
			free = append(free, j)
		}
	}
	ns := NewMatrix(n, len(free))
	for k, fc := range free {
		ns.Set(fc, k, 1)
		// For each pivot row, the pivot variable equals minus the free
		// column's coefficient in that row.
		for r, pc := range pivots {
			ns.Set(pc, k, -rref.At(r, fc))
		}
	}
	return ns
}

// NullSpaceUpdate implements the paper's Algorithm 2: given N (n×p)
// whose columns span the null space of the current system matrix R, and
// a new row r (length n) with ‖r×N‖ > 0, it returns an n×(p−1) matrix
// whose columns span the null space of R with r appended:
//
//	N' = (I_n − N_{*1}·r / (r·N_{*1})) · N_{*2:p}
//
// For numerical safety we first permute the column of N with the
// largest |r·N_j| into position 1 (the paper leaves the choice of
// pivot column implicit; any column with nonzero product is valid).
// If r·N = 0 (the row is already in the row space), N is returned
// unchanged. N itself is never modified; the hot path uses
// NullSpaceUpdateInPlace instead.
func NullSpaceUpdate(N *Matrix, r []float64) *Matrix {
	out := N.Clone()
	if !NullSpaceUpdateInPlace(out, r) {
		return N // r is in the row space already; nothing to remove
	}
	return out
}

// NullSpaceUpdateInPlace is NullSpaceUpdate mutating N: the projected
// basis is compacted into N's own backing array (each new column is
// written left of the data it reads, so no second matrix is allocated)
// and N shrinks by one column. It reports whether a column was removed;
// when r is already in the row space N is left untouched and false is
// returned.
func NullSpaceUpdateInPlace(N *Matrix, r []float64) bool {
	if N.Cols == 0 {
		return false
	}
	if len(r) != N.Rows {
		panic("linalg: NullSpaceUpdate dimension mismatch")
	}
	rn := N.VecMul(r) // r × N, length p
	best, bestAbs := -1, rrefTol
	for j, v := range rn {
		if a := math.Abs(v); a > bestAbs {
			best, bestAbs = j, a
		}
	}
	if best < 0 {
		return false
	}
	if best != 0 {
		N.SwapCols(0, best)
		rn[0], rn[best] = rn[best], rn[0]
	}
	// N' columns: for j = 1..p−1, N'_j = N_j − N_0 · (r·N_j)/(r·N_0).
	// This is the expanded form of (I − N_0 r/(r N_0)) N_{*2:p}: each
	// new column stays in span(N) and is orthogonal to r. Turn rn into
	// the per-column factors once.
	p := N.Cols
	pivot := rn[0]
	for j := 1; j < p; j++ {
		rn[j] /= pivot
	}
	// Compact row by row. Destination index i*(p−1)+(j−1) is strictly
	// smaller than source index i*p+j for every i, j ≥ 1, and the
	// pivot entry of each row is saved before the row is overwritten,
	// so the rewrite is safe within the shared backing array.
	data := N.Data
	for i := 0; i < N.Rows; i++ {
		src := data[i*p : i*p+p]
		n0 := src[0]
		dst := data[i*(p-1):]
		for j := 1; j < p; j++ {
			dst[j-1] = src[j] - rn[j]*n0
		}
	}
	N.Cols = p - 1
	N.Data = data[:N.Rows*(p-1)]
	return true
}

// NullSpaceInsertColumn returns the null-space basis of the system
// after inserting an all-zero column at index `at`: the existing basis
// gains a zero row at that index (no equation constrains the new
// unknown through the old ones) plus one fresh basis column e_at for
// the unconstrained unknown itself. N is not modified. This is the
// column-direction companion of NullSpaceUpdate: together they repair
// a retained basis as the system drifts — a new unknown inserts a
// column here, a new equation removes a basis column there.
func NullSpaceInsertColumn(N *Matrix, at int) *Matrix {
	if at < 0 || at > N.Rows {
		panic("linalg: NullSpaceInsertColumn index out of range")
	}
	out := NewMatrix(N.Rows+1, N.Cols+1)
	for i := 0; i < N.Rows; i++ {
		dst := i
		if i >= at {
			dst = i + 1
		}
		copy(out.Row(dst)[:N.Cols], N.Row(i))
	}
	out.Set(at, N.Cols, 1)
	return out
}

// InRowSpace reports whether row r is in the row space of the matrix
// whose null space is spanned by the columns of N, i.e. whether
// r × N == 0 within tolerance.
func InRowSpace(N *Matrix, r []float64) bool {
	if N.Cols == 0 {
		return true
	}
	rn := N.VecMul(r)
	for _, v := range rn {
		if math.Abs(v) > rrefTol {
			return false
		}
	}
	return true
}

// InRowSpaceSparse is InRowSpace for a 0/1 row with ones exactly at the
// ascending indices in cols, accumulating r×N into scratch (len ≥
// N.Cols) instead of allocating. The accumulation visits rows in the
// same ascending order as VecMul over the equivalent dense row and adds
// the same addends (1·row), so the float results — and therefore the
// verdict — are bit-identical to InRowSpace on that dense row. This is
// the rank-check kernel of the solver's augmentation loop.
func InRowSpaceSparse(N *Matrix, cols []int, scratch []float64) bool {
	if N.Cols == 0 {
		return true
	}
	rn := scratch[:N.Cols]
	for j := range rn {
		rn[j] = 0
	}
	for _, i := range cols {
		row := N.Row(i)
		for j, rij := range row {
			rn[j] += rij
		}
	}
	for _, v := range rn {
		if math.Abs(v) > rrefTol {
			return false
		}
	}
	return true
}
