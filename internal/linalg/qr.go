package linalg

import (
	"errors"
	"math"
)

// ErrRankDeficient is returned by solvers when the system matrix does
// not have full column rank and a unique solution therefore does not
// exist.
var ErrRankDeficient = errors.New("linalg: matrix is rank deficient")

// QR holds a Householder QR factorization A = Q·R (LINPACK storage:
// the Householder vectors live in the lower trapezoid of qr including
// the diagonal, and the diagonal of R is kept separately in rdiag).
type QR struct {
	qr    *Matrix
	rdiag []float64
	m, n  int
}

// Factor computes the Householder QR factorization of a. a is not
// modified (it is cloned; callers that own a freshly built matrix and
// do not need it afterwards should use FactorInPlace, which skips the
// full copy).
func Factor(a *Matrix) *QR {
	return FactorInPlace(a.Clone())
}

// FactorInPlace computes the Householder QR factorization using a's own
// storage: a is overwritten with the factored form and must not be used
// afterwards except through the returned QR. This is the
// allocation-light path for solvers that rebuild their system matrix on
// every call.
func FactorInPlace(a *Matrix) *QR {
	m, n := a.Rows, a.Cols
	f := &QR{qr: a, m: m, n: n, rdiag: make([]float64, n)}
	for k := 0; k < n && k < m; k++ {
		// 2-norm of column k below (and including) the diagonal.
		nrm := 0.0
		for i := k; i < m; i++ {
			nrm = math.Hypot(nrm, f.qr.At(i, k))
		}
		if nrm == 0 {
			f.rdiag[k] = 0
			continue
		}
		if f.qr.At(k, k) < 0 {
			nrm = -nrm
		}
		for i := k; i < m; i++ {
			f.qr.Set(i, k, f.qr.At(i, k)/nrm)
		}
		f.qr.Set(k, k, f.qr.At(k, k)+1)
		// Apply the reflector to the remaining columns.
		for j := k + 1; j < n; j++ {
			var s float64
			for i := k; i < m; i++ {
				s += f.qr.At(i, k) * f.qr.At(i, j)
			}
			s = -s / f.qr.At(k, k)
			for i := k; i < m; i++ {
				f.qr.Set(i, j, f.qr.At(i, j)+s*f.qr.At(i, k))
			}
		}
		f.rdiag[k] = -nrm
	}
	return f
}

// rankTol returns the tolerance under which an R diagonal entry is
// treated as zero, scaled by the magnitude of the matrix.
func (f *QR) rankTol() float64 {
	maxDiag := 0.0
	for k := 0; k < min(f.m, f.n); k++ {
		if d := math.Abs(f.rdiag[k]); d > maxDiag {
			maxDiag = d
		}
	}
	if maxDiag == 0 {
		return 0
	}
	return maxDiag * 1e-10 * float64(max(f.m, f.n))
}

// Rank returns the count of non-negligible diagonal entries of R. Note
// that unpivoted QR is not a fully reliable rank revealer for general
// matrices; use RankRREF for the robust variant (used throughout the
// tomography code).
func (f *QR) Rank() int {
	tol := f.rankTol()
	r := 0
	for k := 0; k < min(f.m, f.n); k++ {
		if math.Abs(f.rdiag[k]) > tol {
			r++
		}
	}
	return r
}

// FullColumnRank reports whether every column of A carries a
// non-negligible R diagonal entry — the condition under which
// SolveLeastSquares yields the unique minimizer. The warm-start plan of
// the Correlation-complete solver checks it once at factorization time
// and then reuses the factorization across epochs.
func (f *QR) FullColumnRank() bool {
	if f.m < f.n {
		return false
	}
	tol := f.rankTol()
	for k := 0; k < f.n; k++ {
		if math.Abs(f.rdiag[k]) <= tol {
			return false
		}
	}
	return true
}

// applyQT overwrites b (length m) with Qᵀ·b.
func (f *QR) applyQT(b []float64) {
	for k := 0; k < min(f.m, f.n); k++ {
		if f.rdiag[k] == 0 {
			continue
		}
		var s float64
		for i := k; i < f.m; i++ {
			s += f.qr.At(i, k) * b[i]
		}
		s = -s / f.qr.At(k, k)
		for i := k; i < f.m; i++ {
			b[i] += s * f.qr.At(i, k)
		}
	}
}

// SolveLeastSquares returns x minimizing ‖A·x − b‖₂. It requires A to
// have full column rank; otherwise ErrRankDeficient is returned.
func (f *QR) SolveLeastSquares(b []float64) ([]float64, error) {
	if len(b) != f.m {
		panic("linalg: SolveLeastSquares dimension mismatch")
	}
	if !f.FullColumnRank() {
		return nil, ErrRankDeficient
	}
	qtb := make([]float64, f.m)
	copy(qtb, b)
	f.applyQT(qtb)
	// Back substitution on R x = (Qᵀ b)[:n].
	x := make([]float64, f.n)
	for i := f.n - 1; i >= 0; i-- {
		s := qtb[i]
		for j := i + 1; j < f.n; j++ {
			s -= f.qr.At(i, j) * x[j]
		}
		x[i] = s / f.rdiag[i]
	}
	return x, nil
}

// SolveLeastSquares factors a and solves min ‖a·x − b‖₂. a is not
// modified.
func SolveLeastSquares(a *Matrix, b []float64) ([]float64, error) {
	return Factor(a).SolveLeastSquares(b)
}

// SolveLeastSquaresInPlace solves min ‖a·x − b‖₂ factoring a in its own
// storage; a is destroyed. b is not modified.
func SolveLeastSquaresInPlace(a *Matrix, b []float64) ([]float64, error) {
	return FactorInPlace(a).SolveLeastSquares(b)
}

// Rank returns the numerical rank of a (computed by Gaussian
// elimination, which is robust for the 0/1 indicator matrices used by
// the tomography algorithms).
func Rank(a *Matrix) int { return RankRREF(a) }
