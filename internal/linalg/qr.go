package linalg

import (
	"errors"
	"math"
)

// ErrRankDeficient is returned by solvers when the system matrix does
// not have full column rank and a unique solution therefore does not
// exist.
var ErrRankDeficient = errors.New("linalg: matrix is rank deficient")

// QR holds a Householder QR factorization A = Q·R (LINPACK storage:
// the Householder vectors live in the lower trapezoid of qr including
// the diagonal, and the diagonal of R is kept separately in rdiag).
//
// The factorization supports incremental column edits. AppendCol
// widens the system by one column — bit-identically to a from-scratch
// refactor of the widened matrix while the factorization is in pure
// Householder form. DeleteCol narrows it by chasing the introduced
// subdiagonal with Givens rotations, which switches the factorization
// into a patched form: R is materialized densely and Qᵀ gains a
// chronological list of trailing transforms (the Givens rotations, and
// one fresh dense reflector per subsequent AppendCol). Deletes and
// appends interleave freely in the patched form; its solves are
// numerically equivalent — not bit-identical — to a refactor. Both
// forms solve through the same entry points.
type QR struct {
	qr    *Matrix
	rdiag []float64
	m, n  int

	// Patched form, populated by the first DeleteCol: r is the dense
	// current R, hrdiag the original rdiag (reflector k exists iff
	// hrdiag[k] != 0), nhh the original reflector count, and ops the
	// trailing Qᵀ transforms in chronological order. All zero in pure
	// Householder form.
	r      *Matrix
	hrdiag []float64
	nhh    int
	ops    []qtOp
}

// qtOp is one trailing transform of the implicit Qᵀ: a plane rotation
// on rows (k, k+1) when house is nil, otherwise a dense Householder
// reflector over rows k..k+len(house)-1 stored in the LINPACK
// convention (house[0] = w_k/nrm + 1, house[i] = w_{k+i}/nrm).
type qtOp struct {
	k     int
	c, s  float64
	house []float64
}

// patched reports whether columns have been deleted, switching solves
// to the dense-R + Givens representation.
func (f *QR) patched() bool { return f.r != nil }

// Dims returns the factored system's row and column counts — the
// right-hand-side and solution lengths callers sizing their own solve
// buffers need.
func (f *QR) Dims() (m, n int) { return f.m, f.n }

// Factor computes the Householder QR factorization of a. a is not
// modified (it is cloned; callers that own a freshly built matrix and
// do not need it afterwards should use FactorInPlace, which skips the
// full copy).
func Factor(a *Matrix) *QR {
	return FactorInPlace(a.Clone())
}

// FactorInPlace computes the Householder QR factorization using a's own
// storage: a is overwritten with the factored form and must not be used
// afterwards except through the returned QR. This is the
// allocation-light path for solvers that rebuild their system matrix on
// every call.
func FactorInPlace(a *Matrix) *QR {
	m, n := a.Rows, a.Cols
	f := &QR{qr: a, m: m, n: n, rdiag: make([]float64, n)}
	for k := 0; k < n && k < m; k++ {
		// 2-norm of column k below (and including) the diagonal.
		nrm := 0.0
		for i := k; i < m; i++ {
			nrm = math.Hypot(nrm, f.qr.At(i, k))
		}
		if nrm == 0 {
			f.rdiag[k] = 0
			continue
		}
		if f.qr.At(k, k) < 0 {
			nrm = -nrm
		}
		for i := k; i < m; i++ {
			f.qr.Set(i, k, f.qr.At(i, k)/nrm)
		}
		f.qr.Set(k, k, f.qr.At(k, k)+1)
		// Apply the reflector to the remaining columns.
		for j := k + 1; j < n; j++ {
			var s float64
			for i := k; i < m; i++ {
				s += f.qr.At(i, k) * f.qr.At(i, j)
			}
			s = -s / f.qr.At(k, k)
			for i := k; i < m; i++ {
				f.qr.Set(i, j, f.qr.At(i, j)+s*f.qr.At(i, k))
			}
		}
		f.rdiag[k] = -nrm
	}
	return f
}

// AppendCol widens the factored system by one column: the retained
// reflectors are applied to it in factorization order and one new
// reflector is computed — exactly the operations FactorInPlace would
// have performed had the column been present, so in pure Householder
// form the result is bit-identical to refactoring the widened matrix
// from scratch (property-tested). Cost is O(m·n) against O(m·n²) for
// the refactor. On a column-deleted (patched) factorization the append
// routes through appendColPatched: still O(m·n), numerically
// equivalent to the refactor but not bitwise (the transform sequences
// differ).
func (f *QR) AppendCol(col []float64) {
	if len(col) != f.m {
		panic("linalg: AppendCol dimension mismatch")
	}
	if f.patched() {
		f.appendColPatched(col)
		return
	}
	m, n := f.m, f.n
	grown := NewMatrix(m, n+1)
	for i := 0; i < m; i++ {
		copy(grown.Row(i)[:n], f.qr.Row(i))
		grown.Set(i, n, col[i])
	}
	f.qr = grown
	f.n = n + 1
	f.rdiag = append(f.rdiag, 0)
	// Apply the existing reflectors to the new column, mirroring
	// FactorInPlace's skip of zero-norm columns (rdiag[k] == 0).
	for k := 0; k < n && k < m; k++ {
		if f.rdiag[k] == 0 {
			continue
		}
		var s float64
		for i := k; i < m; i++ {
			s += f.qr.At(i, k) * f.qr.At(i, n)
		}
		s = -s / f.qr.At(k, k)
		for i := k; i < m; i++ {
			f.qr.Set(i, n, f.qr.At(i, n)+s*f.qr.At(i, k))
		}
	}
	if n >= m {
		return // no row left to reflect on; rdiag stays 0
	}
	// The new column's own reflector, verbatim FactorInPlace.
	k := n
	nrm := 0.0
	for i := k; i < m; i++ {
		nrm = math.Hypot(nrm, f.qr.At(i, k))
	}
	if nrm == 0 {
		f.rdiag[k] = 0
		return
	}
	if f.qr.At(k, k) < 0 {
		nrm = -nrm
	}
	for i := k; i < m; i++ {
		f.qr.Set(i, k, f.qr.At(i, k)/nrm)
	}
	f.qr.Set(k, k, f.qr.At(k, k)+1)
	f.rdiag[k] = -nrm
}

// materializeR switches the factorization into the patched form:
// R is copied out of the LINPACK storage into a dense matrix so column
// deletions can restructure it without disturbing the Householder
// vectors that still define Qᵀ.
func (f *QR) materializeR() {
	if f.patched() {
		return
	}
	rRows := min(f.m, f.n)
	r := NewMatrix(rRows, f.n)
	for k := 0; k < rRows; k++ {
		r.Set(k, k, f.rdiag[k])
		for j := k + 1; j < f.n; j++ {
			r.Set(k, j, f.qr.At(k, j))
		}
	}
	f.r = r
	f.hrdiag = append([]float64(nil), f.rdiag...)
	f.nhh = rRows
}

// DeleteCol narrows the factored system by removing column j. The
// retained reflectors still triangularize the surviving columns up to
// one subdiagonal per shifted column, which is chased out with Givens
// rotations appended to the implicit Qᵀ. Unlike AppendCol the result
// is numerically equivalent — not bit-identical — to refactoring the
// narrowed matrix (the reflector/rotation sequences differ), so
// callers that need bitwise reproducibility against a from-scratch
// factorization must refactor instead. Cost is O(n²) against O(m·n²).
func (f *QR) DeleteCol(j int) {
	if j < 0 || j >= f.n {
		panic("linalg: DeleteCol index out of range")
	}
	f.materializeR()
	r := f.r
	for i := 0; i < r.Rows; i++ {
		row := r.Row(i)
		copy(row[j:], row[j+1:])
	}
	f.n--
	r.Cols = f.n
	// Compact the rows to the narrower stride.
	for i := 1; i < r.Rows; i++ {
		copy(r.Data[i*f.n:(i+1)*f.n], r.Data[i*(f.n+1):i*(f.n+1)+f.n])
	}
	r.Data = r.Data[:r.Rows*f.n]
	// Chase the subdiagonal entries the shift introduced in columns
	// j..n-1: rotate rows (k, k+1) to zero R[k+1][k].
	for k := j; k < f.n && k+1 < r.Rows; k++ {
		a, b := r.At(k, k), r.At(k+1, k)
		if b == 0 {
			continue
		}
		h := math.Hypot(a, b)
		c, s := a/h, b/h
		for jj := k; jj < f.n; jj++ {
			x, y := r.At(k, jj), r.At(k+1, jj)
			r.Set(k, jj, c*x+s*y)
			r.Set(k+1, jj, -s*x+c*y)
		}
		f.ops = append(f.ops, qtOp{k: k, c: c, s: s})
	}
	f.syncRdiag()
}

// appendColPatched widens a column-deleted factorization: the new
// column is rotated into the current Q basis (Qᵀ·col), its top n
// entries become R's new column, and one fresh dense reflector —
// appended to the trailing transform list — zeroes the remaining mass
// below the new diagonal. Existing R columns are untouched: they are
// zero in rows ≥ n, where the new reflector acts.
func (f *QR) appendColPatched(col []float64) {
	w := make([]float64, f.m)
	copy(w, col)
	f.applyQT(w)
	n, r := f.n, f.r
	rows := r.Rows
	if n < f.m && rows < n+1 {
		rows = n + 1 // room for the new diagonal entry
	}
	grown := NewMatrix(rows, n+1)
	for i := 0; i < r.Rows; i++ {
		copy(grown.Row(i)[:n], r.Row(i))
	}
	for i := 0; i < rows && i < n; i++ {
		grown.Set(i, n, w[i])
	}
	if n < f.m {
		nrm := 0.0
		for i := n; i < f.m; i++ {
			nrm = math.Hypot(nrm, w[i])
		}
		if nrm != 0 {
			if w[n] < 0 {
				nrm = -nrm
			}
			v := make([]float64, f.m-n)
			for i := range v {
				v[i] = w[n+i] / nrm
			}
			v[0]++
			f.ops = append(f.ops, qtOp{k: n, house: v})
			grown.Set(n, n, -nrm)
		}
		// nrm == 0 leaves the diagonal entry 0: the appended column is
		// linearly dependent and the rank checks will report it.
	}
	f.r = grown
	f.n = n + 1
	f.syncRdiag()
}

// syncRdiag re-derives rdiag from the dense R diagonal so the rank
// checks stay valid across patched-form edits.
func (f *QR) syncRdiag() {
	f.rdiag = f.rdiag[:0]
	for k := 0; k < min(f.r.Rows, f.n); k++ {
		f.rdiag = append(f.rdiag, f.r.At(k, k))
	}
}

// Clone returns an independent deep copy of the factorization: edits
// and solves on the clone never touch the original. The plan-repair
// path stages its column edits on a clone so a failed repair leaves
// the retained factorization intact.
func (f *QR) Clone() *QR {
	g := &QR{qr: f.qr.Clone(), m: f.m, n: f.n, nhh: f.nhh}
	g.rdiag = append([]float64(nil), f.rdiag...)
	if f.r != nil {
		g.r = f.r.Clone()
	}
	if f.hrdiag != nil {
		g.hrdiag = append([]float64(nil), f.hrdiag...)
	}
	if len(f.ops) > 0 {
		// Exact-capacity copy: appends on either copy reallocate
		// instead of sharing the backing array. The house vectors are
		// immutable once created, so sharing them is safe.
		g.ops = make([]qtOp, len(f.ops))
		copy(g.ops, f.ops)
	}
	return g
}

// rankTol returns the tolerance under which an R diagonal entry is
// treated as zero, scaled by the magnitude of the matrix.
func (f *QR) rankTol() float64 {
	maxDiag := 0.0
	for k := 0; k < min(f.m, f.n); k++ {
		if d := math.Abs(f.rdiag[k]); d > maxDiag {
			maxDiag = d
		}
	}
	if maxDiag == 0 {
		return 0
	}
	return maxDiag * 1e-10 * float64(max(f.m, f.n))
}

// Rank returns the count of non-negligible diagonal entries of R. Note
// that unpivoted QR is not a fully reliable rank revealer for general
// matrices; use RankRREF for the robust variant (used throughout the
// tomography code).
func (f *QR) Rank() int {
	tol := f.rankTol()
	r := 0
	for k := 0; k < min(f.m, f.n); k++ {
		if math.Abs(f.rdiag[k]) > tol {
			r++
		}
	}
	return r
}

// FullColumnRank reports whether every column of A carries a
// non-negligible R diagonal entry — the condition under which
// SolveLeastSquares yields the unique minimizer. The warm-start plan of
// the Correlation-complete solver checks it once at factorization time
// and then reuses the factorization across epochs.
func (f *QR) FullColumnRank() bool {
	if f.m < f.n {
		return false
	}
	tol := f.rankTol()
	for k := 0; k < f.n; k++ {
		if math.Abs(f.rdiag[k]) <= tol {
			return false
		}
	}
	return true
}

// applyQT overwrites b (length m) with Qᵀ·b: the Householder
// reflectors in factorization order, then — in the patched form — the
// trailing transforms the column edits appended, in chronological
// order.
func (f *QR) applyQT(b []float64) {
	diag, kmax := f.rdiag, min(f.m, f.n)
	if f.patched() {
		diag, kmax = f.hrdiag, f.nhh
	}
	for k := 0; k < kmax; k++ {
		if diag[k] == 0 {
			continue
		}
		var s float64
		for i := k; i < f.m; i++ {
			s += f.qr.At(i, k) * b[i]
		}
		s = -s / f.qr.At(k, k)
		for i := k; i < f.m; i++ {
			b[i] += s * f.qr.At(i, k)
		}
	}
	for _, op := range f.ops {
		op.apply(b)
	}
}

// apply applies the trailing transform to b in place.
func (op qtOp) apply(b []float64) {
	if op.house == nil {
		x, y := b[op.k], b[op.k+1]
		b[op.k] = op.c*x + op.s*y
		b[op.k+1] = -op.s*x + op.c*y
		return
	}
	var s float64
	for i, vi := range op.house {
		s += vi * b[op.k+i]
	}
	s = -s / op.house[0]
	for i, vi := range op.house {
		b[op.k+i] += s * vi
	}
}

// backSubstitute solves R·x = qtb[:n] into x. qtb is not modified.
func (f *QR) backSubstitute(x, qtb []float64) {
	if f.patched() {
		for i := f.n - 1; i >= 0; i-- {
			s := qtb[i]
			for j := i + 1; j < f.n; j++ {
				s -= f.r.At(i, j) * x[j]
			}
			x[i] = s / f.r.At(i, i)
		}
		return
	}
	for i := f.n - 1; i >= 0; i-- {
		s := qtb[i]
		for j := i + 1; j < f.n; j++ {
			s -= f.qr.At(i, j) * x[j]
		}
		x[i] = s / f.rdiag[i]
	}
}

// SolveLeastSquares returns x minimizing ‖A·x − b‖₂. It requires A to
// have full column rank; otherwise ErrRankDeficient is returned.
func (f *QR) SolveLeastSquares(b []float64) ([]float64, error) {
	x := make([]float64, f.n)
	if err := f.SolveLeastSquaresInto(x, b, make([]float64, f.m)); err != nil {
		return nil, err
	}
	return x, nil
}

// SolveLeastSquaresInto is SolveLeastSquares writing the minimizer
// into x (length n) using scratch (length ≥ m) for Qᵀ·b, so the warm
// solve path allocates nothing. b is not modified. The result is
// bit-identical to SolveLeastSquares.
func (f *QR) SolveLeastSquaresInto(x, b, scratch []float64) error {
	if len(b) != f.m {
		panic("linalg: SolveLeastSquares dimension mismatch")
	}
	if len(x) != f.n || len(scratch) < f.m {
		panic("linalg: SolveLeastSquaresInto buffer size mismatch")
	}
	if !f.FullColumnRank() {
		return ErrRankDeficient
	}
	qtb := scratch[:f.m]
	copy(qtb, b)
	f.applyQT(qtb)
	f.backSubstitute(x, qtb)
	return nil
}

// SolveLeastSquaresBatch solves min ‖A·x_k − b_k‖₂ for K right-hand
// sides against the one retained factorization. Each solution is
// bit-identical to a separate SolveLeastSquares call (the per-vector
// arithmetic is untouched; property-tested), but the reflector loop
// runs outermost so every Householder column is streamed through the
// cache once per batch instead of once per right-hand side — the
// amortization behind draining an epoch backlog in one call.
func (f *QR) SolveLeastSquaresBatch(bs [][]float64) ([][]float64, error) {
	xs := make([][]float64, len(bs))
	slab := make([]float64, len(bs)*f.n)
	for k := range xs {
		xs[k], slab = slab[:f.n:f.n], slab[f.n:]
	}
	if err := f.SolveLeastSquaresBatchInto(xs, bs, make([]float64, len(bs)*f.m)); err != nil {
		return nil, err
	}
	return xs, nil
}

// SolveLeastSquaresBatchInto is SolveLeastSquaresBatch writing into
// caller-owned solution vectors xs (each length n) using scratch
// (length ≥ len(bs)·m), allocating nothing.
func (f *QR) SolveLeastSquaresBatchInto(xs, bs [][]float64, scratch []float64) error {
	if len(xs) != len(bs) {
		panic("linalg: SolveLeastSquaresBatchInto length mismatch")
	}
	if len(scratch) < len(bs)*f.m {
		panic("linalg: SolveLeastSquaresBatchInto scratch too small")
	}
	if !f.FullColumnRank() {
		return ErrRankDeficient
	}
	for k, b := range bs {
		if len(b) != f.m {
			panic("linalg: SolveLeastSquares dimension mismatch")
		}
		copy(scratch[k*f.m:(k+1)*f.m], b)
	}
	// Reflectors outermost: each factor column is read once per batch.
	diag, kmax := f.rdiag, min(f.m, f.n)
	if f.patched() {
		diag, kmax = f.hrdiag, f.nhh
	}
	for k := 0; k < kmax; k++ {
		if diag[k] == 0 {
			continue
		}
		pivot := f.qr.At(k, k)
		for v := range bs {
			qtb := scratch[v*f.m : (v+1)*f.m]
			var s float64
			for i := k; i < f.m; i++ {
				s += f.qr.At(i, k) * qtb[i]
			}
			s = -s / pivot
			for i := k; i < f.m; i++ {
				qtb[i] += s * f.qr.At(i, k)
			}
		}
	}
	for v := range bs {
		qtb := scratch[v*f.m : (v+1)*f.m]
		for _, op := range f.ops {
			op.apply(qtb)
		}
		if len(xs[v]) != f.n {
			panic("linalg: SolveLeastSquaresBatchInto solution size mismatch")
		}
		f.backSubstitute(xs[v], qtb)
	}
	return nil
}

// SolveLeastSquares factors a and solves min ‖a·x − b‖₂. a is not
// modified.
func SolveLeastSquares(a *Matrix, b []float64) ([]float64, error) {
	return Factor(a).SolveLeastSquares(b)
}

// SolveLeastSquaresInPlace solves min ‖a·x − b‖₂ factoring a in its own
// storage; a is destroyed. b is not modified.
func SolveLeastSquaresInPlace(a *Matrix, b []float64) ([]float64, error) {
	return FactorInPlace(a).SolveLeastSquares(b)
}

// Rank returns the numerical rank of a (computed by Gaussian
// elimination, which is robust for the 0/1 indicator matrices used by
// the tomography algorithms).
func Rank(a *Matrix) int { return RankRREF(a) }
