//go:build !race

package observe

const raceEnabled = false
