package observe

import (
	"math"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"testing/quick"

	"repro/internal/bitset"
)

// record builds a recorder for 3 paths from per-interval congested sets.
func record(intervals ...[]int) *Recorder {
	r := NewRecorder(3)
	for _, iv := range intervals {
		r.Add(bitset.FromIndices(3, iv...))
	}
	return r
}

func TestCountsAndFrequencies(t *testing.T) {
	r := record([]int{0}, []int{0, 1}, nil, []int{2})
	if r.T() != 4 || r.NumPaths() != 3 {
		t.Fatal("T/NumPaths wrong")
	}
	if got := r.CongestedFraction(0); got != 0.5 {
		t.Fatalf("CongestedFraction(0) = %v", got)
	}
	// Path set {0}: good in intervals 3, 4 -> 2/4.
	if got := r.GoodFreq(bitset.FromIndices(3, 0)); got != 0.5 {
		t.Fatalf("GoodFreq({0}) = %v", got)
	}
	// Path set {0,1}: good in intervals 3, 4 -> 2/4.
	if got := r.GoodFreq(bitset.FromIndices(3, 0, 1)); got != 0.5 {
		t.Fatalf("GoodFreq({0,1}) = %v", got)
	}
	// Path set {0,2}: good only in interval 3 -> 1/4.
	if got := r.GoodFreq(bitset.FromIndices(3, 0, 2)); got != 0.25 {
		t.Fatalf("GoodFreq({0,2}) = %v", got)
	}
	// All congested: {0,1} simultaneously congested only in interval 2.
	if got := r.AllCongestedFreq(bitset.FromIndices(3, 0, 1)); got != 0.25 {
		t.Fatalf("AllCongestedFreq = %v", got)
	}
	if got := r.AllCongestedCount(bitset.New(3)); got != 4 {
		t.Fatalf("AllCongestedCount(empty) = %v", got)
	}
}

func TestLogGoodFreqClamping(t *testing.T) {
	r := record([]int{0}, []int{0})
	lp, clamped := r.LogGoodFreq(bitset.FromIndices(3, 0))
	if !clamped {
		t.Fatal("expected clamping for a never-good path")
	}
	if want := math.Log(0.5 / 2); lp != want {
		t.Fatalf("clamped log = %v, want %v", lp, want)
	}
	lp, clamped = r.LogGoodFreq(bitset.FromIndices(3, 1))
	if clamped || lp != 0 {
		t.Fatalf("always-good path: log = %v clamped=%v", lp, clamped)
	}
}

func TestAlwaysGoodPaths(t *testing.T) {
	r := record([]int{0}, []int{0}, []int{1}, nil)
	if got := r.AlwaysGoodPaths(0).String(); got != "{2}" {
		t.Fatalf("strict always-good = %s", got)
	}
	// Path 1 congested 25% of the time: tolerance 0.3 admits it.
	if got := r.AlwaysGoodPaths(0.3).String(); got != "{1, 2}" {
		t.Fatalf("tolerant always-good = %s", got)
	}
}

func TestEmptyRecorder(t *testing.T) {
	r := NewRecorder(2)
	if r.GoodFreq(bitset.FromIndices(2, 0)) != 1 {
		t.Fatal("empty recorder GoodFreq should be 1")
	}
	if r.CongestedFraction(0) != 0 {
		t.Fatal("empty recorder CongestedFraction should be 0")
	}
	if lp, _ := r.LogGoodFreq(bitset.FromIndices(2, 0)); lp != 0 {
		t.Fatal("empty recorder LogGoodFreq should be 0")
	}
	if !r.AlwaysGoodPaths(0).Equal(bitset.FromIndices(2, 0, 1)) {
		t.Fatal("all paths always good on empty recorder")
	}
}

func TestAddClonesInput(t *testing.T) {
	r := NewRecorder(3)
	s := bitset.FromIndices(3, 0)
	r.Add(s)
	s.Add(1) // mutating the caller's set must not affect the record
	if r.GoodFreq(bitset.FromIndices(3, 1)) != 1 {
		t.Fatal("Add did not clone its input")
	}
}

// Property test for the columnar store: on random recorders, the
// mask-based GoodCount / AllCongestedCount / AlwaysGoodPaths must
// exactly match the retained naive row-scan reference, including for
// query sets with out-of-universe indices and for interval counts that
// straddle the 64-bit word boundary.
func TestQuickColumnarMatchesNaive(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		nPaths := 1 + rng.Intn(100)
		r := NewRecorder(nPaths)
		T := rng.Intn(200)
		for i := 0; i < T; i++ {
			s := bitset.New(nPaths + 4)
			for p := 0; p < nPaths+4; p++ {
				if rng.Intn(4) == 0 {
					s.Add(p) // indices ≥ nPaths exercise the clamping
				}
			}
			r.Add(s)
		}
		for q := 0; q < 20; q++ {
			paths := bitset.New(nPaths + 4)
			for p := 0; p < nPaths+4; p++ {
				if rng.Intn(6) == 0 {
					paths.Add(p)
				}
			}
			if r.GoodCount(paths) != r.GoodCountNaive(paths) {
				t.Logf("seed %d: GoodCount %d != naive %d for %s",
					seed, r.GoodCount(paths), r.GoodCountNaive(paths), paths)
				return false
			}
			if r.AllCongestedCount(paths) != r.AllCongestedCountNaive(paths) {
				t.Logf("seed %d: AllCongestedCount %d != naive %d for %s",
					seed, r.AllCongestedCount(paths), r.AllCongestedCountNaive(paths), paths)
				return false
			}
		}
		for _, tol := range []float64{0, 0.05, 0.3, 1} {
			if !r.AlwaysGoodPaths(tol).Equal(r.AlwaysGoodPathsNaive(tol)) {
				t.Logf("seed %d: AlwaysGoodPaths(%v) mismatch", seed, tol)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// The columnar queries must stay allocation-free once the shared
// scratch pool is warm (the hot-path contract the solver relies on).
func TestColumnarQueriesAllocationFree(t *testing.T) {
	if raceEnabled {
		t.Skip("sync.Pool drops items at random under -race")
	}
	rng := rand.New(rand.NewSource(7))
	r := NewRecorder(64)
	for i := 0; i < 130; i++ {
		s := bitset.New(64)
		for p := 0; p < 64; p++ {
			if rng.Intn(5) == 0 {
				s.Add(p)
			}
		}
		r.Add(s)
	}
	paths := bitset.FromIndices(64, 3, 17, 40, 63)
	r.GoodCount(paths) // warm the scratch buffer
	if avg := testing.AllocsPerRun(50, func() {
		r.GoodCount(paths)
		r.AllCongestedCount(paths)
	}); avg != 0 {
		t.Fatalf("columnar queries allocate %v times per run, want 0", avg)
	}
}

// A recorder must serve many concurrent readers: the streaming
// server's snapshot queries rely on this (run under -race in CI).
func TestConcurrentReaders(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	r := NewRecorder(80)
	for i := 0; i < 150; i++ {
		s := bitset.New(80)
		for p := 0; p < 80; p++ {
			if rng.Intn(4) == 0 {
				s.Add(p)
			}
		}
		r.Add(s)
	}
	queries := make([]*bitset.Set, 6)
	wantGood := make([]int, len(queries))
	wantAll := make([]int, len(queries))
	for i := range queries {
		q := bitset.New(80)
		for p := 0; p < 80; p++ {
			if rng.Intn(7) == 0 {
				q.Add(p)
			}
		}
		queries[i] = q
		wantGood[i] = r.GoodCount(q)
		wantAll[i] = r.AllCongestedCount(q)
	}
	var wg sync.WaitGroup
	var failed atomic.Bool
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for rep := 0; rep < 200; rep++ {
				i := (g + rep) % len(queries)
				if r.GoodCount(queries[i]) != wantGood[i] || r.AllCongestedCount(queries[i]) != wantAll[i] {
					failed.Store(true)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	if failed.Load() {
		t.Fatal("concurrent readers observed inconsistent counts")
	}
}

// Monotonicity: adding paths to a set can only reduce its good
// frequency, and GoodFreq(P) ≥ 1 − Σ congested fractions (union bound).
func TestQuickGoodFreqMonotoneAndBounded(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		nPaths := 2 + rng.Intn(6)
		r := NewRecorder(nPaths)
		T := 1 + rng.Intn(40)
		for i := 0; i < T; i++ {
			s := bitset.New(nPaths)
			for p := 0; p < nPaths; p++ {
				if rng.Intn(3) == 0 {
					s.Add(p)
				}
			}
			r.Add(s)
		}
		small := bitset.New(nPaths)
		big := bitset.New(nPaths)
		for p := 0; p < nPaths; p++ {
			if rng.Intn(2) == 0 {
				big.Add(p)
				if rng.Intn(2) == 0 {
					small.Add(p)
				}
			}
		}
		if r.GoodFreq(small) < r.GoodFreq(big) {
			return false
		}
		sum := 0.0
		big.ForEach(func(p int) bool {
			sum += r.CongestedFraction(p)
			return true
		})
		return r.GoodFreq(big) >= 1-sum-1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}
