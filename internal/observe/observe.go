// Package observe stores per-interval path observations and computes
// the empirical joint statistics every tomography algorithm consumes:
// the frequency with which a *set* of paths was simultaneously good
// over the measurement period (the left-hand sides of Eq. 1), and the
// set of always-good paths that determines which correlation subsets
// are potentially congested (§5.2).
//
// The store is columnar: besides the per-interval congested-path sets
// (the row view, kept for CongestedAt and as the naive reference), the
// recorder maintains one congested-interval bitmask per path, updated
// incrementally on Add. GoodCount over a path set P then reduces to
// OR-ing |P| masks and popcounting — O(|P|·T/64) words instead of a
// scan over all T row sets — and AllCongestedCount to the analogous
// AND. Both queries draw their word buffer from a shared scratch pool,
// staying allocation-free on the steady-state path while remaining safe
// for any number of concurrent readers; only Add requires external
// serialization against the queries.
package observe

import (
	"math"
	"sync"

	"repro/internal/bitset"
)

const wordBits = 64

// Store is the read side of an observation store: the empirical joint
// statistics every tomography algorithm consumes. *Recorder implements
// it over a monotonically growing record; stream.Window implements it
// over a sliding window. Implementations must support concurrent
// readers (writes still need external serialization against reads).
type Store interface {
	// NumPaths returns the path universe size.
	NumPaths() int
	// T returns the number of observed intervals.
	T() int
	// CongestedFraction returns the fraction of intervals in which
	// path p was observed congested.
	CongestedFraction(p int) float64
	// GoodCount returns the number of intervals in which every path in
	// the set was good.
	GoodCount(paths *bitset.Set) int
	// GoodFreq is GoodCount normalized by T (1 on an empty store).
	GoodFreq(paths *bitset.Set) float64
	// LogGoodFreq returns log P̂(∩ Y_p = 0), clamping a zero count to
	// half an observation; clamped reports whether it did.
	LogGoodFreq(paths *bitset.Set) (logp float64, clamped bool)
	// AllCongestedCount returns the number of intervals in which every
	// path in the set was simultaneously congested.
	AllCongestedCount(paths *bitset.Set) int
	// AllCongestedFreq is AllCongestedCount normalized by T.
	AllCongestedFreq(paths *bitset.Set) float64
	// AlwaysGoodPaths returns the paths whose congested fraction is
	// ≤ tol.
	AlwaysGoodPaths(tol float64) *bitset.Set
}

// IntervalSource is the optional row view of a Store: per-interval
// access to the congested-path sets, indexed oldest-first in [0, T()).
// The Boolean-inference estimators need it (they diagnose one interval
// at a time); both Recorder and stream.Window implement it. The
// returned sets must not be modified and are valid only until the next
// write to the store.
type IntervalSource interface {
	CongestedAt(t int) *bitset.Set
}

var (
	_ Store          = (*Recorder)(nil)
	_ IntervalSource = (*Recorder)(nil)
)

// scratchPool holds the word buffers used by the mask queries. A pool
// (rather than a buffer owned by each store) is what makes the queries
// safe for concurrent readers while staying allocation-free once warm:
// each query checks a buffer out for its own use and returns it before
// finishing.
var scratchPool = sync.Pool{New: func() any { return new([]uint64) }}

// GetScratch returns a pooled word buffer of length nw with
// unspecified contents. Callers must hand it back with PutScratch.
// It is shared with stream.Window, which uses the same columnar mask
// layout.
func GetScratch(nw int) *[]uint64 {
	p := scratchPool.Get().(*[]uint64)
	if cap(*p) < nw {
		*p = make([]uint64, nw)
	}
	*p = (*p)[:nw]
	return p
}

// PutScratch returns a buffer obtained from GetScratch to the pool.
func PutScratch(p *[]uint64) { scratchPool.Put(p) }

// Recorder accumulates the observed congestion status of all paths over
// a sequence of measurement intervals (Assumption 2: E2E Monitoring).
type Recorder struct {
	numPaths  int
	intervals []*bitset.Set // row view: congested paths per interval
	congCount []int         // per path: intervals observed congested

	// cong is the columnar view: cong[p] is a bitmask over intervals,
	// bit t set iff path p was congested in interval t. Masks are
	// ragged — trailing zero words are not stored — so a path that was
	// never congested costs nothing.
	cong [][]uint64
}

// NewRecorder returns an empty recorder for numPaths paths.
func NewRecorder(numPaths int) *Recorder {
	return &Recorder{
		numPaths:  numPaths,
		congCount: make([]int, numPaths),
		cong:      make([][]uint64, numPaths),
	}
}

// Add appends one interval's set of congested paths. The set is
// cloned; indices outside the path universe are dropped so that the row
// and columnar views stay consistent.
func (r *Recorder) Add(congestedPaths *bitset.Set) {
	t := len(r.intervals)
	c := congestedPaths.Clone()
	r.intervals = append(r.intervals, c)
	wi, bit := t/wordBits, uint64(1)<<uint(t%wordBits)
	c.ForEach(func(pi int) bool {
		if pi >= r.numPaths {
			c.Remove(pi)
			return true
		}
		r.congCount[pi]++
		m := r.cong[pi]
		for len(m) <= wi {
			m = append(m, 0)
		}
		m[wi] |= bit
		r.cong[pi] = m
		return true
	})
}

// T returns the number of recorded intervals.
func (r *Recorder) T() int { return len(r.intervals) }

// NumPaths returns the path universe size.
func (r *Recorder) NumPaths() int { return r.numPaths }

// CongestedAt returns the congested-path set of interval t. The result
// must not be modified.
func (r *Recorder) CongestedAt(t int) *bitset.Set { return r.intervals[t] }

// CongestedFraction returns the fraction of intervals in which path p
// was observed congested.
func (r *Recorder) CongestedFraction(p int) float64 {
	if r.T() == 0 {
		return 0
	}
	return float64(r.congCount[p]) / float64(r.T())
}

// words returns the number of mask words covering the recorded
// intervals.
func (r *Recorder) words() int { return (len(r.intervals) + wordBits - 1) / wordBits }

// GoodCount returns the number of intervals in which *every* path in
// the set was good: the raw count behind P̂(∩_{p∈P} Y_p = 0).
//
// Columnar evaluation: an interval fails iff at least one path of the
// set was congested in it, so the answer is T minus the popcount of
// the OR of the per-path congestion masks.
func (r *Recorder) GoodCount(paths *bitset.Set) int {
	T := len(r.intervals)
	if T == 0 {
		return 0
	}
	sp := GetScratch(r.words())
	sc := *sp
	for i := range sc {
		sc[i] = 0
	}
	paths.ForEach(func(pi int) bool {
		if pi < r.numPaths {
			bitset.OrWordsInto(sc, r.cong[pi])
		}
		return true
	})
	bad := bitset.PopCountWords(sc)
	PutScratch(sp)
	return T - bad
}

// GoodCountNaive is the retained reference implementation of GoodCount:
// a full scan over the row view. It is used by the property tests and
// benchmarks that validate the columnar store.
func (r *Recorder) GoodCountNaive(paths *bitset.Set) int {
	n := 0
	for _, cong := range r.intervals {
		if !paths.Intersects(cong) {
			n++
		}
	}
	return n
}

// GoodFreq returns the empirical probability that all paths in the set
// were simultaneously good.
func (r *Recorder) GoodFreq(paths *bitset.Set) float64 {
	if r.T() == 0 {
		return 1
	}
	return float64(r.GoodCount(paths)) / float64(r.T())
}

// LogGoodFreq returns log P̂(∩ Y_p = 0), the observable side of the
// log-linear equations. A zero count is clamped to half an observation
// (the usual continuity correction) so that the logarithm stays finite;
// the second return reports whether clamping occurred.
func (r *Recorder) LogGoodFreq(paths *bitset.Set) (logp float64, clamped bool) {
	if r.T() == 0 {
		return 0, false
	}
	c := r.GoodCount(paths)
	if c == 0 {
		return math.Log(0.5 / float64(r.T())), true
	}
	return math.Log(float64(c) / float64(r.T())), false
}

// AllCongestedCount returns the number of intervals in which every path
// in the set was simultaneously congested. For a single path {p} whose
// link e is congested, separability forces p congested, so the
// frequency over the paths through e upper-bounds e's congestion
// probability; the fallback estimators use this.
//
// Columnar evaluation: the popcount of the AND of the per-path
// congestion masks (a mask's missing trailing words are zero, so a
// shorter mask zeroes the tail).
func (r *Recorder) AllCongestedCount(paths *bitset.Set) int {
	if paths.IsEmpty() {
		return r.T()
	}
	T := len(r.intervals)
	if T == 0 {
		return 0
	}
	nw := r.words()
	sp := GetScratch(nw)
	sc := *sp
	for i := range sc {
		sc[i] = ^uint64(0)
	}
	if rem := T % wordBits; rem != 0 {
		sc[nw-1] = (uint64(1) << uint(rem)) - 1
	}
	empty := false
	paths.ForEach(func(pi int) bool {
		if pi >= r.numPaths {
			// A path outside the universe was never observed congested.
			empty = true
			return false
		}
		bitset.AndWordsInto(sc, r.cong[pi])
		return true
	})
	n := 0
	if !empty {
		n = bitset.PopCountWords(sc)
	}
	PutScratch(sp)
	return n
}

// AllCongestedCountNaive is the retained reference implementation of
// AllCongestedCount (row-view scan).
func (r *Recorder) AllCongestedCountNaive(paths *bitset.Set) int {
	if paths.IsEmpty() {
		return r.T()
	}
	n := 0
	for _, cong := range r.intervals {
		if paths.SubsetOf(cong) {
			n++
		}
	}
	return n
}

// AllCongestedFreq is AllCongestedCount normalized by T.
func (r *Recorder) AllCongestedFreq(paths *bitset.Set) float64 {
	if r.T() == 0 {
		return 0
	}
	return float64(r.AllCongestedCount(paths)) / float64(r.T())
}

// AlwaysGoodPaths returns the paths observed good in every interval,
// within tolerance: a path counts as always good when its congested
// fraction is ≤ tol (tol = 0 is the paper's strict definition; a small
// tol absorbs probing false positives). The per-path congestion
// counters make this O(numPaths) with no interval scan.
func (r *Recorder) AlwaysGoodPaths(tol float64) *bitset.Set {
	out := bitset.New(r.numPaths)
	if r.T() == 0 {
		// No observation contradicts goodness yet: vacuously all good.
		for p := 0; p < r.numPaths; p++ {
			out.Add(p)
		}
		return out
	}
	for p := 0; p < r.numPaths; p++ {
		if r.CongestedFraction(p) <= tol {
			out.Add(p)
		}
	}
	return out
}

// AlwaysGoodPathsNaive is the retained reference implementation of
// AlwaysGoodPaths: it re-derives each path's congested fraction from a
// full scan of the row view.
func (r *Recorder) AlwaysGoodPathsNaive(tol float64) *bitset.Set {
	out := bitset.New(r.numPaths)
	if r.T() == 0 {
		for p := 0; p < r.numPaths; p++ {
			out.Add(p)
		}
		return out
	}
	for p := 0; p < r.numPaths; p++ {
		c := 0
		for _, cong := range r.intervals {
			if cong.Contains(p) {
				c++
			}
		}
		if float64(c)/float64(r.T()) <= tol {
			out.Add(p)
		}
	}
	return out
}
