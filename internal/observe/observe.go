// Package observe stores per-interval path observations and computes
// the empirical joint statistics every tomography algorithm consumes:
// the frequency with which a *set* of paths was simultaneously good
// over the measurement period (the left-hand sides of Eq. 1), and the
// set of always-good paths that determines which correlation subsets
// are potentially congested (§5.2).
package observe

import (
	"math"

	"repro/internal/bitset"
)

// Recorder accumulates the observed congestion status of all paths over
// a sequence of measurement intervals (Assumption 2: E2E Monitoring).
type Recorder struct {
	numPaths  int
	intervals []*bitset.Set // congested paths per interval
	congCount []int         // per path: intervals observed congested
}

// NewRecorder returns an empty recorder for numPaths paths.
func NewRecorder(numPaths int) *Recorder {
	return &Recorder{numPaths: numPaths, congCount: make([]int, numPaths)}
}

// Add appends one interval's set of congested paths. The set is cloned.
func (r *Recorder) Add(congestedPaths *bitset.Set) {
	c := congestedPaths.Clone()
	r.intervals = append(r.intervals, c)
	c.ForEach(func(pi int) bool {
		if pi < r.numPaths {
			r.congCount[pi]++
		}
		return true
	})
}

// T returns the number of recorded intervals.
func (r *Recorder) T() int { return len(r.intervals) }

// NumPaths returns the path universe size.
func (r *Recorder) NumPaths() int { return r.numPaths }

// CongestedAt returns the congested-path set of interval t. The result
// must not be modified.
func (r *Recorder) CongestedAt(t int) *bitset.Set { return r.intervals[t] }

// CongestedFraction returns the fraction of intervals in which path p
// was observed congested.
func (r *Recorder) CongestedFraction(p int) float64 {
	if r.T() == 0 {
		return 0
	}
	return float64(r.congCount[p]) / float64(r.T())
}

// GoodCount returns the number of intervals in which *every* path in
// the set was good: the raw count behind P̂(∩_{p∈P} Y_p = 0).
func (r *Recorder) GoodCount(paths *bitset.Set) int {
	n := 0
	for _, cong := range r.intervals {
		if !paths.Intersects(cong) {
			n++
		}
	}
	return n
}

// GoodFreq returns the empirical probability that all paths in the set
// were simultaneously good.
func (r *Recorder) GoodFreq(paths *bitset.Set) float64 {
	if r.T() == 0 {
		return 1
	}
	return float64(r.GoodCount(paths)) / float64(r.T())
}

// LogGoodFreq returns log P̂(∩ Y_p = 0), the observable side of the
// log-linear equations. A zero count is clamped to half an observation
// (the usual continuity correction) so that the logarithm stays finite;
// the second return reports whether clamping occurred.
func (r *Recorder) LogGoodFreq(paths *bitset.Set) (logp float64, clamped bool) {
	if r.T() == 0 {
		return 0, false
	}
	c := r.GoodCount(paths)
	if c == 0 {
		return math.Log(0.5 / float64(r.T())), true
	}
	return math.Log(float64(c) / float64(r.T())), false
}

// AllCongestedCount returns the number of intervals in which every path
// in the set was simultaneously congested. For a single path {p} whose
// link e is congested, separability forces p congested, so the
// frequency over the paths through e upper-bounds e's congestion
// probability; the fallback estimators use this.
func (r *Recorder) AllCongestedCount(paths *bitset.Set) int {
	if paths.IsEmpty() {
		return r.T()
	}
	n := 0
	for _, cong := range r.intervals {
		if paths.SubsetOf(cong) {
			n++
		}
	}
	return n
}

// AllCongestedFreq is AllCongestedCount normalized by T.
func (r *Recorder) AllCongestedFreq(paths *bitset.Set) float64 {
	if r.T() == 0 {
		return 0
	}
	return float64(r.AllCongestedCount(paths)) / float64(r.T())
}

// AlwaysGoodPaths returns the paths observed good in every interval,
// within tolerance: a path counts as always good when its congested
// fraction is ≤ tol (tol = 0 is the paper's strict definition; a small
// tol absorbs probing false positives).
func (r *Recorder) AlwaysGoodPaths(tol float64) *bitset.Set {
	out := bitset.New(r.numPaths)
	if r.T() == 0 {
		// No observation contradicts goodness yet: vacuously all good.
		for p := 0; p < r.numPaths; p++ {
			out.Add(p)
		}
		return out
	}
	for p := 0; p < r.numPaths; p++ {
		if r.CongestedFraction(p) <= tol {
			out.Add(p)
		}
	}
	return out
}
