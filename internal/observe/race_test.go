//go:build race

package observe

// raceEnabled gates the allocation-count assertions: under the race
// detector sync.Pool intentionally drops items at random, so the
// pooled-scratch queries are not allocation-free there.
const raceEnabled = true
