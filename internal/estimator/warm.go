package estimator

import (
	"context"

	"repro/internal/core"
	"repro/internal/observe"
	"repro/internal/topology"
)

// WarmSolver drives unsharded Correlation-complete solves over a fixed
// topology, carrying the structural plan (enumeration, selected path
// sets, identifiability, QR factorization) from epoch to epoch exactly
// like ShardedSolver does per shard. While the always-good path set is
// unchanged — or drifts within core.Plan.Repair's structure-preserving
// class — an epoch solve skips the structural phases and re-solves the
// retained factorization against fresh frequencies. Estimates are
// bit-identical to the stateless "correlation-complete" registry
// estimator by construction (warm, repaired and cold solves share the
// same solve tail).
//
// A WarmSolver is owned by one solver loop; it is not safe for
// concurrent use.
type WarmSolver struct {
	top      *topology.Topology
	settings Settings
	plan     *core.Plan
}

// NewWarmSolver validates the options and returns a solver with no
// plan yet (the first Estimate builds one).
func NewWarmSolver(top *topology.Topology, opts ...Option) (*WarmSolver, error) {
	s, err := Apply(opts...)
	if err != nil {
		return nil, err
	}
	return &WarmSolver{top: top, settings: s}, nil
}

// Estimate computes one epoch over obs, reusing the carried-forward
// plan when it can. info reports whether the structural phase was
// skipped and whether the plan was repaired across an always-good
// drift.
func (ws *WarmSolver) Estimate(ctx context.Context, obs observe.Store) (*Estimate, SolveInfo, error) {
	if err := checkUniverse(CorrelationComplete, ws.top, obs); err != nil {
		return nil, SolveInfo{}, err
	}
	prev := ws.plan
	prevRepairs, prevNumeric := 0, 0
	if prev != nil {
		prevRepairs, prevNumeric = prev.RepairCount(), prev.NumericRepairCount()
	}
	res, plan, err := core.ComputePlanned(ctx, ws.top, obs, ws.settings.coreConfig(), prev)
	if err != nil {
		return nil, SolveInfo{}, err
	}
	ws.plan = plan
	return estimateFromResult(CorrelationComplete, ws.top, res), solveInfoFor(prev, plan, prevRepairs, prevNumeric), nil
}

// EstimateBatch computes one epoch per store, draining every maximal
// run of plan-compatible stores through a single batched multi-RHS
// solve (core.ComputePlannedBatch) — the catch-up path for a backlog
// of queued window snapshots. Each estimate is bit-identical to a
// sequential Estimate over the same store; infos reports per store how
// the carried plan served it.
func (ws *WarmSolver) EstimateBatch(ctx context.Context, stores []observe.Store) ([]*Estimate, []SolveInfo, error) {
	for _, obs := range stores {
		if err := checkUniverse(CorrelationComplete, ws.top, obs); err != nil {
			return nil, nil, err
		}
	}
	results, epochInfos, plan, err := core.ComputePlannedBatch(ctx, ws.top, stores, ws.settings.coreConfig(), ws.plan)
	if err != nil {
		return nil, nil, err
	}
	ws.plan = plan
	out := make([]*Estimate, len(results))
	infos := make([]SolveInfo, len(results))
	for i, res := range results {
		out[i] = estimateFromResult(CorrelationComplete, ws.top, res)
		infos[i] = SolveInfo{
			Warm:            epochInfos[i].Warm,
			Repaired:        epochInfos[i].Repaired,
			RepairedNumeric: epochInfos[i].RepairedNumeric,
			RepairFailed:    epochInfos[i].RepairFailed,
		}
	}
	return out, infos, nil
}
