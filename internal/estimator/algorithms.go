package estimator

import (
	"context"
	"fmt"

	"repro/internal/bitset"
	"repro/internal/core"
	"repro/internal/inference"
	"repro/internal/observe"
	"repro/internal/probcalc"
	"repro/internal/topology"
)

// Registry names. The three probability algorithms come first in the
// paper's order of increasing assumption strength; the three
// Boolean-inference adapters follow.
const (
	CorrelationComplete  = "correlation-complete"
	Independence         = "independence"
	CorrelationHeuristic = "correlation-heuristic"
	Sparsity             = "sparsity"
	BayesianIndependence = "bayesian-independence"
	BayesianCorrelation  = "bayesian-correlation"
)

func init() {
	register(correlationComplete{})
	register(independence{})
	register(correlationHeuristic{})
	register(inferenceAdapter{
		name: Sparsity,
		desc: "Boolean-inference adapter: greedy Homogeneity-based per-interval diagnosis (Tomo), reported as per-link blame frequency",
		build: func(Settings) inference.Algorithm {
			return inference.NewSparsity()
		},
	})
	register(inferenceAdapter{
		name: BayesianIndependence,
		desc: "Boolean-inference adapter: CLINK's Bayesian MAP diagnosis under link independence, reported as per-link blame frequency",
		build: func(s Settings) inference.Algorithm {
			return inference.NewBayesianIndependence(s.independenceConfig())
		},
	})
	register(inferenceAdapter{
		name: BayesianCorrelation,
		desc: "Boolean-inference adapter: correlation-aware Bayesian diagnosis over Correlation-complete probabilities, reported as per-link blame frequency",
		build: func(s Settings) inference.Algorithm {
			return inference.NewBayesianCorrelation(s.coreConfig())
		},
	})
}

// coreConfig maps the shared settings onto the Correlation-complete
// solver configuration.
func (s Settings) coreConfig() core.Config {
	return core.Config{
		MaxSubsetSize:          s.MaxSubsetSize,
		AlwaysGoodTol:          s.AlwaysGoodTol,
		MaxEnumPathSets:        s.MaxEnumPathSets,
		Concurrency:            s.Concurrency,
		DisablePlanRepair:      s.DisablePlanRepair,
		NumericalPlanRepair:    s.NumericalPlanRepair,
		NumericalRepairMaxFrac: s.NumericalRepairMaxFrac,
	}
}

// independenceConfig maps the shared settings onto the Independence
// baseline configuration.
func (s Settings) independenceConfig() probcalc.IndependenceConfig {
	return probcalc.IndependenceConfig{
		PairsPerLink:  s.PairsPerLink,
		GlobalPairs:   s.GlobalPairs,
		AlwaysGoodTol: s.AlwaysGoodTol,
		Seed:          s.Seed,
	}
}

// checkUniverse rejects a store whose path universe does not match the
// topology before any computation starts.
func checkUniverse(name string, top *topology.Topology, obs observe.Store) error {
	if obs.NumPaths() != top.NumPaths() {
		return fmt.Errorf("estimator: %s: store has %d paths, topology has %d", name, obs.NumPaths(), top.NumPaths())
	}
	return nil
}

// ---------------------------------------------------------------------
// Correlation-complete
// ---------------------------------------------------------------------

type correlationComplete struct{}

func (correlationComplete) Name() string { return CorrelationComplete }

func (correlationComplete) Description() string {
	return "the paper's Correlation-complete algorithm: exact subset-level congestion probabilities under the Correlation Sets assumption"
}

func (correlationComplete) Estimate(ctx context.Context, top *topology.Topology, obs observe.Store, opts ...Option) (*Estimate, error) {
	s, err := Apply(opts...)
	if err != nil {
		return nil, err
	}
	if err := checkUniverse(CorrelationComplete, top, obs); err != nil {
		return nil, err
	}
	res, err := core.Compute(ctx, top, obs, s.coreConfig())
	if err != nil {
		return nil, err
	}
	return estimateFromResult(CorrelationComplete, top, res), nil
}

// estimateFromResult flattens a Correlation-complete result (a full run
// or a merge of per-shard blocks) into the unified estimate shape.
func estimateFromResult(name string, top *topology.Topology, res *core.Result) *Estimate {
	est := &Estimate{
		Algorithm:            name,
		LinkProb:             make([]float64, top.NumLinks()),
		LinkExact:            make([]bool, top.NumLinks()),
		PotentiallyCongested: res.PotentiallyCongested,
		Subsets:              make([]SubsetEstimate, len(res.Subsets)),
		Rank:                 res.Rank,
		Nullity:              res.Nullity,
		ClampedRows:          res.ClampedRows,
		Detail:               res,
	}
	for e := 0; e < top.NumLinks(); e++ {
		est.LinkProb[e], est.LinkExact[e] = res.LinkCongestProbOrFallback(e)
	}
	for i, sub := range res.Subsets {
		est.Subsets[i] = SubsetEstimate{
			ID:           i,
			Links:        sub.Links,
			CorrSet:      sub.CorrSet,
			GoodProb:     sub.GoodProb,
			Identifiable: sub.Identifiable,
		}
	}
	return est
}

// ---------------------------------------------------------------------
// Independence and Correlation-heuristic baselines
// ---------------------------------------------------------------------

// fromLinkResult flattens a baseline's per-link result into an
// Estimate.
func fromLinkResult(name string, res *probcalc.LinkResult) *Estimate {
	return &Estimate{
		Algorithm:            name,
		LinkProb:             res.Prob,
		LinkExact:            res.Exact,
		PotentiallyCongested: res.PotentiallyCongested,
	}
}

type independence struct{}

func (independence) Name() string { return Independence }

func (independence) Description() string {
	return "CLINK's probability-computation baseline: per-link probabilities assuming all links are independent"
}

func (independence) Estimate(ctx context.Context, top *topology.Topology, obs observe.Store, opts ...Option) (*Estimate, error) {
	s, err := Apply(opts...)
	if err != nil {
		return nil, err
	}
	if err := checkUniverse(Independence, top, obs); err != nil {
		return nil, err
	}
	res, err := probcalc.Independence(ctx, top, obs, s.independenceConfig())
	if err != nil {
		return nil, err
	}
	return fromLinkResult(Independence, res), nil
}

type correlationHeuristic struct{}

func (correlationHeuristic) Name() string { return CorrelationHeuristic }

func (correlationHeuristic) Description() string {
	return "the earlier correlation heuristic: per-link probabilities from conditional-ratio substitution under the Correlation Sets assumption"
}

func (correlationHeuristic) Estimate(ctx context.Context, top *topology.Topology, obs observe.Store, opts ...Option) (*Estimate, error) {
	s, err := Apply(opts...)
	if err != nil {
		return nil, err
	}
	if err := checkUniverse(CorrelationHeuristic, top, obs); err != nil {
		return nil, err
	}
	res, err := probcalc.CorrelationHeuristic(ctx, top, obs, probcalc.HeuristicConfig{
		AlwaysGoodTol: s.AlwaysGoodTol,
		Sweeps:        s.Sweeps,
	})
	if err != nil {
		return nil, err
	}
	return fromLinkResult(CorrelationHeuristic, res), nil
}

// ---------------------------------------------------------------------
// Boolean-inference adapters
// ---------------------------------------------------------------------

// inferenceAdapter lifts a per-interval Boolean-inference algorithm to
// the Estimator interface: after the algorithm's preparation step, it
// replays every interval of the store through Infer and reports each
// link's blame frequency — the fraction of intervals the algorithm
// inferred the link congested — as that link's congestion probability.
// This is exactly the estimate an operator would derive from a Boolean
// inferencer's output, which is what makes the adapters comparable to
// the probability algorithms on the paper's terms.
type inferenceAdapter struct {
	name  string
	desc  string
	build func(Settings) inference.Algorithm
}

func (a inferenceAdapter) Name() string { return a.name }

func (a inferenceAdapter) Description() string { return a.desc }

func (a inferenceAdapter) Estimate(ctx context.Context, top *topology.Topology, obs observe.Store, opts ...Option) (*Estimate, error) {
	s, err := Apply(opts...)
	if err != nil {
		return nil, err
	}
	if err := checkUniverse(a.name, top, obs); err != nil {
		return nil, err
	}
	if ctx == nil {
		ctx = context.Background()
	}
	src, ok := obs.(observe.IntervalSource)
	if !ok {
		return nil, fmt.Errorf("estimator: %s diagnoses one interval at a time and needs the store's row view (observe.IntervalSource); %T does not provide it", a.name, obs)
	}
	alg := a.build(s)
	if err := alg.Prepare(ctx, top, obs); err != nil {
		return nil, err
	}
	counts := make([]int, top.NumLinks())
	T := obs.T()
	for t := 0; t < T; t++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		alg.Infer(src.CongestedAt(t)).ForEach(func(e int) bool {
			counts[e]++
			return true
		})
	}
	est := &Estimate{
		Algorithm:            a.name,
		LinkProb:             make([]float64, top.NumLinks()),
		LinkExact:            make([]bool, top.NumLinks()),
		PotentiallyCongested: potentiallyCongested(top, obs, s.AlwaysGoodTol),
	}
	for e := range counts {
		if T > 0 {
			est.LinkProb[e] = float64(counts[e]) / float64(T)
		}
		est.LinkExact[e] = true // blame frequency is the algorithm's direct output
	}
	return est, nil
}

// potentiallyCongested derives the links not covered by an always-good
// path, the shared evaluation set of every algorithm.
func potentiallyCongested(top *topology.Topology, obs observe.Store, tol float64) *bitset.Set {
	return top.PotentiallyCongestedLinks(top.LinksOf(obs.AlwaysGoodPaths(tol)))
}
