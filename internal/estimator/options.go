package estimator

import "fmt"

// Settings is the resolved option set shared by every estimator. One
// flat knob space keeps option lists portable: callers build a single
// []Option from their configuration and pass it to whichever algorithm
// the user selected; each estimator reads the knobs relevant to it and
// ignores the rest.
type Settings struct {
	// MaxSubsetSize bounds the correlation subsets Correlation-complete
	// enumerates and solves for (the paper's resource knob, §4).
	MaxSubsetSize int
	// AlwaysGoodTol is the congested-fraction tolerance under which a
	// path counts as always good.
	AlwaysGoodTol float64
	// MaxEnumPathSets caps the per-subset candidate enumeration of the
	// augmentation loop; 0 means the solver default.
	MaxEnumPathSets int
	// Concurrency bounds solver worker goroutines: 0 and negative mean
	// all CPUs, 1 is the explicit serial opt-out.
	Concurrency int
	// PairsPerLink and GlobalPairs size the Independence baseline's
	// sampled path-pair equations; 0 means the algorithm defaults.
	PairsPerLink int
	GlobalPairs  int
	// Sweeps is the Correlation-heuristic substitution sweep count;
	// 0 means the algorithm default.
	Sweeps int
	// Seed drives the random sampling of the algorithms that sample
	// (Independence's path pairs).
	Seed int64
	// DisablePlanRepair turns off structural-plan repair across
	// always-good drift in the Correlation-complete solvers (see
	// core.Plan.Repair); results are bit-identical either way.
	DisablePlanRepair bool
	// NumericalPlanRepair additionally enables the tier-2 numerical
	// repair (core.Plan.RepairNumeric): frontier-moving drift patches
	// the retained factorization in place instead of rebuilding.
	// Repaired epochs are numerically — not bitwise — equivalent to the
	// rebuild they skip, which is why this is off by default.
	NumericalPlanRepair bool
	// NumericalRepairMaxFrac caps the frontier delta a tier-2 repair
	// absorbs, as a fraction of the potentially-congested link universe;
	// 0 means core.DefaultNumericalRepairMaxFrac.
	NumericalRepairMaxFrac float64
}

// DefaultSettings mirrors the configuration of the paper's experiments:
// subsets up to size two, strict always-good definition, solver
// parallelism across all CPUs.
func DefaultSettings() Settings {
	return Settings{MaxSubsetSize: 2}
}

// Option tunes one knob of Settings, validating its argument eagerly:
// an out-of-range value surfaces as an error from Estimate (or from
// Apply) before any computation starts, never as a panic mid-solve.
type Option func(*Settings) error

// Apply resolves an option list over DefaultSettings, failing on the
// first invalid option.
func Apply(opts ...Option) (Settings, error) {
	s := DefaultSettings()
	for _, opt := range opts {
		if opt == nil {
			continue
		}
		if err := opt(&s); err != nil {
			return s, err
		}
	}
	return s, nil
}

// WithMaxSubsetSize bounds the enumerated correlation-subset size
// (the paper's resource knob). 0 means unbounded; negative is invalid.
func WithMaxSubsetSize(n int) Option {
	return func(s *Settings) error {
		if n < 0 {
			return fmt.Errorf("estimator: WithMaxSubsetSize(%d): size must be ≥ 0 (0 = unbounded)", n)
		}
		s.MaxSubsetSize = n
		return nil
	}
}

// WithAlwaysGoodTol sets the congested-fraction tolerance under which
// a path counts as always good; it must lie in [0, 1).
func WithAlwaysGoodTol(tol float64) Option {
	return func(s *Settings) error {
		if tol < 0 || tol >= 1 {
			return fmt.Errorf("estimator: WithAlwaysGoodTol(%v): tolerance must be in [0,1)", tol)
		}
		s.AlwaysGoodTol = tol
		return nil
	}
}

// WithMaxEnumPathSets caps the per-subset candidate path sets the
// Correlation-complete augmentation loop enumerates. 0 means the
// solver default; negative is invalid.
func WithMaxEnumPathSets(n int) Option {
	return func(s *Settings) error {
		if n < 0 {
			return fmt.Errorf("estimator: WithMaxEnumPathSets(%d): cap must be ≥ 0 (0 = default)", n)
		}
		s.MaxEnumPathSets = n
		return nil
	}
}

// WithConcurrency bounds the solver's worker goroutines. 0 and -1 mean
// all CPUs, 1 means serial, n > 1 means exactly n workers; other
// negative values are invalid. Results are bit-identical at every
// setting.
func WithConcurrency(n int) Option {
	return func(s *Settings) error {
		if n < -1 {
			return fmt.Errorf("estimator: WithConcurrency(%d): use -1 or 0 for all CPUs, 1 for serial, or a positive worker count", n)
		}
		s.Concurrency = n
		return nil
	}
}

// WithPairsPerLink sets how many path pairs per link the Independence
// baseline samples. 0 means the algorithm default; negative is invalid.
func WithPairsPerLink(n int) Option {
	return func(s *Settings) error {
		if n < 0 {
			return fmt.Errorf("estimator: WithPairsPerLink(%d): count must be ≥ 0 (0 = default)", n)
		}
		s.PairsPerLink = n
		return nil
	}
}

// WithGlobalPairs sets how many uniformly random path pairs the
// Independence baseline adds. 0 means the algorithm default, -1
// disables them; other negative values are invalid.
func WithGlobalPairs(n int) Option {
	return func(s *Settings) error {
		if n < -1 {
			return fmt.Errorf("estimator: WithGlobalPairs(%d): use -1 to disable, 0 for the default, or a positive count", n)
		}
		s.GlobalPairs = n
		return nil
	}
}

// WithSweeps sets the Correlation-heuristic's substitution sweep
// count. 0 means the algorithm default; negative is invalid.
func WithSweeps(n int) Option {
	return func(s *Settings) error {
		if n < 0 {
			return fmt.Errorf("estimator: WithSweeps(%d): count must be ≥ 0 (0 = default)", n)
		}
		s.Sweeps = n
		return nil
	}
}

// WithSeed seeds the random sampling of estimators that sample.
func WithSeed(seed int64) Option {
	return func(s *Settings) error {
		s.Seed = seed
		return nil
	}
}

// WithPlanRepair enables or disables structural-plan repair across
// always-good drift in the warm Correlation-complete solvers
// (WarmSolver, ShardedSolver, and the streaming server's epoch loops).
// Repair is on by default and never changes results — a drift either
// provably preserves the plan bit for bit or falls back to the rebuild
// — so false is an operational escape hatch, not a correctness knob.
func WithPlanRepair(enabled bool) Option {
	return func(s *Settings) error {
		s.DisablePlanRepair = !enabled
		return nil
	}
}

// WithNumericalPlanRepair enables the tier-2 numerical plan repair in
// the warm Correlation-complete solvers: drift that moves the
// good-link frontier — which tier-1 repair must reject — patches the
// retained factorization in place (core.Plan.RepairNumeric) instead of
// forcing a cold rebuild. Unlike tier-1, a tier-2-served epoch is
// numerically rather than bitwise equivalent to the rebuild it
// skipped, so this is opt-in and off by default.
func WithNumericalPlanRepair(enabled bool) Option {
	return func(s *Settings) error {
		s.NumericalPlanRepair = enabled
		return nil
	}
}

// WithNumericalRepairMaxFrac caps how large a frontier move the tier-2
// repair absorbs, as a fraction of the potentially-congested link
// universe; larger drifts rebuild cold. 0 means the solver default
// (core.DefaultNumericalRepairMaxFrac); the fraction must lie in [0, 1].
func WithNumericalRepairMaxFrac(frac float64) Option {
	return func(s *Settings) error {
		if frac < 0 || frac > 1 {
			return fmt.Errorf("estimator: WithNumericalRepairMaxFrac(%v): fraction must be in [0,1]", frac)
		}
		s.NumericalRepairMaxFrac = frac
		return nil
	}
}
