package estimator_test

import (
	"context"
	"errors"
	"math"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/bitset"
	"repro/internal/core"
	"repro/internal/estimator"
	"repro/internal/experiment"
	"repro/internal/inference"
	"repro/internal/netsim"
	"repro/internal/observe"
	"repro/internal/probcalc"
	"repro/internal/stream"
	"repro/internal/topology"
)

// fixture is one topology plus a recorded monitoring period.
type fixture struct {
	name string
	top  *topology.Topology
	rec  *observe.Recorder
}

// fig1Fixture records correlated congestion on the paper's toy
// topology.
func fig1Fixture(name string, top *topology.Topology) fixture {
	rec := observe.NewRecorder(top.NumPaths())
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 2000; i++ {
		cong := bitset.New(top.NumLinks())
		if rng.Float64() < 0.3 {
			cong.Add(0)
		}
		if rng.Float64() < 0.4 { // correlated pair {e2, e3}
			cong.Add(1)
			cong.Add(2)
		}
		if rng.Float64() < 0.2 {
			cong.Add(3)
		}
		congPaths := bitset.New(top.NumPaths())
		for p := 0; p < top.NumPaths(); p++ {
			if top.PathLinks(p).Intersects(cong) {
				congPaths.Add(p)
			}
		}
		rec.Add(congPaths)
	}
	return fixture{name: name, top: top, rec: rec}
}

// briteFixture simulates one Random-Congestion monitoring period over a
// small Brite overlay (the acceptance scenario).
func briteFixture(t *testing.T) fixture {
	t.Helper()
	scale := experiment.Small()
	scale.BriteNumAS = 15
	scale.BritePaths = 60
	top, err := experiment.BuildTopology(experiment.Brite, scale, 1)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	mc := netsim.DefaultConfig(netsim.RandomCongestion)
	mc.PerfectE2E = true
	model, err := netsim.NewModel(top, mc, 300, rng)
	if err != nil {
		t.Fatal(err)
	}
	rec := observe.NewRecorder(top.NumPaths())
	for ti := 0; ti < 300; ti++ {
		rec.Add(model.Interval(ti, rng).CongestedPaths)
	}
	return fixture{name: "brite", top: top, rec: rec}
}

func fixtures(t *testing.T) []fixture {
	t.Helper()
	return []fixture{
		fig1Fixture("fig1-case1", topology.Fig1Case1()),
		fig1Fixture("fig1-case2", topology.Fig1Case2()),
		briteFixture(t),
	}
}

const tol = 0.02

func opts() []estimator.Option {
	return []estimator.Option{
		estimator.WithMaxSubsetSize(2),
		estimator.WithAlwaysGoodTol(tol),
		estimator.WithSeed(5),
	}
}

func TestRegistry(t *testing.T) {
	want := []string{
		estimator.BayesianCorrelation,
		estimator.BayesianIndependence,
		estimator.CorrelationComplete,
		estimator.CorrelationCompleteSharded,
		estimator.CorrelationHeuristic,
		estimator.Independence,
		estimator.Sparsity,
	}
	if got := estimator.Names(); !reflect.DeepEqual(got, want) {
		t.Fatalf("Names() = %v, want %v", got, want)
	}
	for _, name := range estimator.Names() {
		est, err := estimator.New(name)
		if err != nil {
			t.Fatal(err)
		}
		if est.Name() != name {
			t.Fatalf("estimator %q reports name %q", name, est.Name())
		}
		if est.Description() == "" {
			t.Fatalf("estimator %q has no description", name)
		}
	}
	if _, err := estimator.New("no-such-algorithm"); err == nil {
		t.Fatal("unknown name accepted")
	}
}

// Every estimator, selected by registry name, must reproduce the
// pre-redesign output of the function/algorithm it wraps, bit for bit.
func TestEstimatorsMatchDirectCalls(t *testing.T) {
	ctx := context.Background()
	for _, fx := range fixtures(t) {
		t.Run(fx.name, func(t *testing.T) {
			// Correlation-complete vs core.Compute.
			res, err := core.Compute(ctx, fx.top, fx.rec, core.Config{MaxSubsetSize: 2, AlwaysGoodTol: tol})
			if err != nil {
				t.Fatal(err)
			}
			est := estimateByName(t, estimator.CorrelationComplete, fx, opts())
			for e := 0; e < fx.top.NumLinks(); e++ {
				wantP, wantX := res.LinkCongestProbOrFallback(e)
				if est.LinkProb[e] != wantP || est.LinkExact[e] != wantX {
					t.Fatalf("correlation-complete link %d: (%v,%v) != direct (%v,%v)",
						e, est.LinkProb[e], est.LinkExact[e], wantP, wantX)
				}
			}
			if len(est.Subsets) != len(res.Subsets) {
				t.Fatalf("subset count %d != %d", len(est.Subsets), len(res.Subsets))
			}
			for i, sub := range est.Subsets {
				want := res.Subsets[i]
				if sub.ID != i || sub.CorrSet != want.CorrSet || sub.Identifiable != want.Identifiable {
					t.Fatalf("subset %d metadata diverges", i)
				}
				if sub.Identifiable && sub.GoodProb != want.GoodProb {
					t.Fatalf("subset %d: good prob %v != %v", i, sub.GoodProb, want.GoodProb)
				}
				if !sub.Identifiable && !math.IsNaN(sub.GoodProb) {
					t.Fatalf("subset %d: unidentifiable but GoodProb %v", i, sub.GoodProb)
				}
			}
			if est.Rank != res.Rank || est.Nullity != res.Nullity || est.Detail == nil {
				t.Fatalf("diagnostics diverge")
			}

			// Independence vs probcalc.Independence.
			indep, err := probcalc.Independence(ctx, fx.top, fx.rec,
				probcalc.IndependenceConfig{AlwaysGoodTol: tol, Seed: 5})
			if err != nil {
				t.Fatal(err)
			}
			checkLinkResult(t, estimator.Independence, estimateByName(t, estimator.Independence, fx, opts()), indep)

			// Correlation-heuristic vs probcalc.CorrelationHeuristic.
			heur, err := probcalc.CorrelationHeuristic(ctx, fx.top, fx.rec,
				probcalc.HeuristicConfig{AlwaysGoodTol: tol})
			if err != nil {
				t.Fatal(err)
			}
			checkLinkResult(t, estimator.CorrelationHeuristic, estimateByName(t, estimator.CorrelationHeuristic, fx, opts()), heur)

			// The three inference adapters vs a manual Prepare/Infer
			// replay.
			algs := map[string]inference.Algorithm{
				estimator.Sparsity: inference.NewSparsity(),
				estimator.BayesianIndependence: inference.NewBayesianIndependence(
					probcalc.IndependenceConfig{AlwaysGoodTol: tol, Seed: 5}),
				estimator.BayesianCorrelation: inference.NewBayesianCorrelation(
					core.Config{MaxSubsetSize: 2, AlwaysGoodTol: tol}),
			}
			for name, alg := range algs {
				if err := alg.Prepare(ctx, fx.top, fx.rec); err != nil {
					t.Fatal(err)
				}
				counts := make([]int, fx.top.NumLinks())
				for ti := 0; ti < fx.rec.T(); ti++ {
					alg.Infer(fx.rec.CongestedAt(ti)).ForEach(func(e int) bool {
						counts[e]++
						return true
					})
				}
				est := estimateByName(t, name, fx, opts())
				for e := range counts {
					want := float64(counts[e]) / float64(fx.rec.T())
					if est.LinkProb[e] != want {
						t.Fatalf("%s link %d: %v != blame frequency %v", name, e, est.LinkProb[e], want)
					}
				}
			}
		})
	}
}

func estimateByName(t *testing.T, name string, fx fixture, o []estimator.Option) *estimator.Estimate {
	t.Helper()
	est, err := estimator.New(name)
	if err != nil {
		t.Fatal(err)
	}
	out, err := est.Estimate(context.Background(), fx.top, fx.rec, o...)
	if err != nil {
		t.Fatalf("%s: %v", name, err)
	}
	return out
}

func checkLinkResult(t *testing.T, name string, est *estimator.Estimate, want *probcalc.LinkResult) {
	t.Helper()
	for e := range want.Prob {
		if est.LinkProb[e] != want.Prob[e] || est.LinkExact[e] != want.Exact[e] {
			t.Fatalf("%s link %d: (%v,%v) != direct (%v,%v)",
				name, e, est.LinkProb[e], est.LinkExact[e], want.Prob[e], want.Exact[e])
		}
	}
	if est.Subsets != nil {
		t.Fatalf("%s: per-link estimator reported subsets", name)
	}
}

// Every estimator must run over a live sliding window exactly as over a
// Recorder holding the same intervals.
func TestEstimatorsOverSlidingWindow(t *testing.T) {
	fx := briteFixture(t)
	win := stream.NewWindow(fx.top.NumPaths(), fx.rec.T())
	for ti := 0; ti < fx.rec.T(); ti++ {
		win.Add(fx.rec.CongestedAt(ti))
	}
	for _, name := range estimator.Names() {
		est, err := estimator.New(name)
		if err != nil {
			t.Fatal(err)
		}
		fromRec, err := est.Estimate(context.Background(), fx.top, fx.rec, opts()...)
		if err != nil {
			t.Fatal(err)
		}
		fromWin, err := est.Estimate(context.Background(), fx.top, win, opts()...)
		if err != nil {
			t.Fatalf("%s over window: %v", name, err)
		}
		if !reflect.DeepEqual(fromRec.LinkProb, fromWin.LinkProb) ||
			!reflect.DeepEqual(fromRec.LinkExact, fromWin.LinkExact) {
			t.Fatalf("%s: window run diverges from recorder run", name)
		}
	}
}

// Options validate eagerly: a bad value is an error from Estimate
// before any computation, never a panic.
func TestOptionValidation(t *testing.T) {
	bad := []estimator.Option{
		estimator.WithMaxSubsetSize(-1),
		estimator.WithAlwaysGoodTol(-0.1),
		estimator.WithAlwaysGoodTol(1),
		estimator.WithMaxEnumPathSets(-1),
		estimator.WithConcurrency(-2),
		estimator.WithPairsPerLink(-1),
		estimator.WithGlobalPairs(-2),
		estimator.WithSweeps(-1),
	}
	for i, opt := range bad {
		if _, err := estimator.Apply(opt); err == nil {
			t.Fatalf("bad option %d accepted", i)
		}
	}
	fx := fig1Fixture("fig1", topology.Fig1Case1())
	est, err := estimator.New(estimator.CorrelationComplete)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := est.Estimate(context.Background(), fx.top, fx.rec, estimator.WithMaxSubsetSize(-3)); err == nil {
		t.Fatal("Estimate accepted an invalid option")
	}
	// Valid edge values pass.
	if _, err := estimator.Apply(
		estimator.WithMaxSubsetSize(0),
		estimator.WithAlwaysGoodTol(0),
		estimator.WithConcurrency(-1),
		estimator.WithConcurrency(1),
		estimator.WithGlobalPairs(-1),
	); err != nil {
		t.Fatal(err)
	}
}

// A cancelled context surfaces as ctx.Err() from every estimator.
func TestEstimateCancelledContext(t *testing.T) {
	fx := briteFixture(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, name := range estimator.Names() {
		est, err := estimator.New(name)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := est.Estimate(ctx, fx.top, fx.rec, opts()...); !errors.Is(err, context.Canceled) {
			t.Fatalf("%s: err = %v, want context.Canceled", name, err)
		}
	}
}

// A mismatched store is rejected before computation.
func TestEstimateUniverseMismatch(t *testing.T) {
	fx := fig1Fixture("fig1", topology.Fig1Case1())
	bad := observe.NewRecorder(fx.top.NumPaths() + 1)
	for _, name := range estimator.Names() {
		est, err := estimator.New(name)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := est.Estimate(context.Background(), fx.top, bad); err == nil {
			t.Fatalf("%s accepted a mismatched store", name)
		}
	}
}
