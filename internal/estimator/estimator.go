// Package estimator defines the unified estimation API: one Estimator
// interface implemented by every probability-computation algorithm of
// the paper (Correlation-complete, Independence, Correlation-heuristic)
// and, via adapters, by the three Boolean-inference algorithms whose
// limitations the paper demonstrates. Callers select algorithms by
// registry name, tune them with shared functional options, run them
// over any observation store (a full-period Recorder or a live
// stream.Window), and cancel long solves through context.Context.
//
// The package is the seam between the measurement substrate and the
// inference engines: scenarios, benchmarks and the streaming daemon all
// pick estimators by name, so adding an algorithm means registering one
// implementation here and every surface — CLI, HTTP API, experiments —
// can run it.
package estimator

import (
	"context"
	"fmt"
	"sort"

	"repro/internal/bitset"
	"repro/internal/core"
	"repro/internal/observe"
	"repro/internal/topology"
)

// Estimator is one congestion-probability estimation algorithm.
// Implementations are stateless and safe for concurrent use: all
// per-run state lives in the call.
type Estimator interface {
	// Name is the registry name, e.g. "correlation-complete".
	Name() string
	// Description is a one-line human-readable summary.
	Description() string
	// Estimate runs the algorithm over the observations. ctx cancels a
	// long solve (the implementations check it in their hot loops and
	// return ctx.Err() promptly); nil means context.Background().
	Estimate(ctx context.Context, top *topology.Topology, obs observe.Store, opts ...Option) (*Estimate, error)
}

// SubsetEstimate is the estimated good probability of one correlation
// subset (the paper's primary output): g(E) = P(all links in E good).
type SubsetEstimate struct {
	// ID indexes the subset within Estimate.Subsets; the HTTP API uses
	// it as the stable per-epoch subset identifier.
	ID int
	// Links is the subset E. It must not be modified.
	Links *bitset.Set
	// CorrSet is the index of E's correlation set.
	CorrSet int
	// GoodProb is g(E); NaN when not Identifiable.
	GoodProb float64
	// Identifiable reports whether the solve determined g(E).
	Identifiable bool
}

// Estimate is the unified output of every estimator: per-link
// congestion probabilities, plus subset-level probabilities and solver
// diagnostics for the algorithms that produce them.
type Estimate struct {
	// Algorithm is the registry name of the estimator that produced
	// this estimate.
	Algorithm string

	// LinkProb[e] estimates P(X_e = 1); never NaN. LinkExact[e] reports
	// whether the value came from the algorithm proper (true) or from
	// the shared observable fallback (false).
	LinkProb  []float64
	LinkExact []bool

	// PotentiallyCongested marks the links not traversed by an
	// always-good path — the links whose probability is a meaningful
	// question. It must not be modified.
	PotentiallyCongested *bitset.Set

	// Subsets holds the correlation-subset probabilities, nil for
	// estimators that only produce per-link output.
	Subsets []SubsetEstimate

	// Rank and Nullity describe the solved system when the algorithm
	// solves one (Correlation-complete); Nullity > 0 means some subsets
	// were unidentifiable. ClampedRows counts equations whose empirical
	// frequency was zero-clamped before the logarithm.
	Rank, Nullity int
	ClampedRows   int

	// Detail is the full Correlation-complete result when that
	// algorithm produced this estimate, enabling joint-probability
	// queries (CongestedProb) beyond the flattened fields above. Nil
	// for the other estimators.
	Detail *core.Result
}

// LinkCongestProb returns the estimated P(link congested) and whether
// the algorithm identified it (vs a fallback estimate).
func (e *Estimate) LinkCongestProb(link int) (p float64, exact bool) {
	return e.LinkProb[link], e.LinkExact[link]
}

// ---------------------------------------------------------------------
// Registry
// ---------------------------------------------------------------------

// registry holds the known estimators by name. It is populated at init
// time and read-only afterwards, so lookups need no locking.
var registry = map[string]Estimator{}

func register(e Estimator) {
	if _, dup := registry[e.Name()]; dup {
		panic("estimator: duplicate registration of " + e.Name())
	}
	registry[e.Name()] = e
}

// Names returns the registered estimator names, sorted.
func Names() []string {
	names := make([]string, 0, len(registry))
	for n := range registry {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// New returns the estimator registered under name. The error lists the
// known names, so it is directly presentable to a user.
func New(name string) (Estimator, error) {
	if e, ok := registry[name]; ok {
		return e, nil
	}
	return nil, fmt.Errorf("estimator: unknown algorithm %q (known: %v)", name, Names())
}
