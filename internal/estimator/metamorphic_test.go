package estimator_test

import (
	"context"
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/bitset"
	"repro/internal/core"
	"repro/internal/estimator"
	"repro/internal/experiment"
	"repro/internal/netsim"
	"repro/internal/observe"
	"repro/internal/stream"
	"repro/internal/topology"
)

// metamorphicOpts is the shared option list of the cross-algorithm
// suite; Seed pins the sampling estimators so reruns are comparable.
func metamorphicOpts() []estimator.Option {
	return []estimator.Option{
		estimator.WithMaxSubsetSize(2),
		estimator.WithAlwaysGoodTol(0.02),
		estimator.WithConcurrency(1),
		estimator.WithSeed(11),
	}
}

// metamorphicFixtures draws randomized topologies of both families
// (the generation path of cmd/topogen) with simulated monitoring
// periods across scenarios.
func metamorphicFixtures(t *testing.T) []fixture {
	t.Helper()
	var out []fixture
	scenarios := []netsim.Scenario{netsim.RandomCongestion, netsim.ConcentratedCongestion, netsim.NoIndependence}
	for _, kind := range []experiment.TopologyKind{experiment.Brite, experiment.Sparse} {
		for seed := int64(1); seed <= 3; seed++ {
			fx := kindFixture(t, kind, seed, scenarios[seed%int64(len(scenarios))])
			fx.name = fmt.Sprintf("%s-%d", fx.name, seed)
			out = append(out, fx)
		}
	}
	return out
}

// Every registry estimator must agree on the always-good set: the
// potentially congested links are derived from the observations alone
// (§5.2), before any algorithm-specific inference, so disagreement
// means an estimator is not honoring the shared definition.
func TestMetamorphicAlwaysGoodAgreement(t *testing.T) {
	for _, fx := range metamorphicFixtures(t) {
		var refName string
		var ref *estimator.Estimate
		for _, name := range estimator.Names() {
			est, err := estimator.New(name)
			if err != nil {
				t.Fatal(err)
			}
			res, err := est.Estimate(context.Background(), fx.top, fx.rec, metamorphicOpts()...)
			if err != nil {
				t.Fatalf("%s/%s: %v", fx.name, name, err)
			}
			if ref == nil {
				refName, ref = name, res
				continue
			}
			if !res.PotentiallyCongested.Equal(ref.PotentiallyCongested) {
				t.Fatalf("%s: %s and %s disagree on the always-good set:\n%s\nvs\n%s",
					fx.name, name, refName, res.PotentiallyCongested, ref.PotentiallyCongested)
			}
		}
	}
}

// Permuting the observation order must leave every estimator's output
// bit-identical: the algorithms consume only windowed joint statistics
// (and per-interval diagnoses aggregated order-independently), never
// the arrival order.
func TestMetamorphicObservationOrderInvariance(t *testing.T) {
	for _, fx := range metamorphicFixtures(t) {
		perm := rand.New(rand.NewSource(17)).Perm(fx.rec.T())
		shuffled := observe.NewRecorder(fx.top.NumPaths())
		for _, ti := range perm {
			shuffled.Add(fx.rec.CongestedAt(ti))
		}
		for _, name := range estimator.Names() {
			est, err := estimator.New(name)
			if err != nil {
				t.Fatal(err)
			}
			a, err := est.Estimate(context.Background(), fx.top, fx.rec, metamorphicOpts()...)
			if err != nil {
				t.Fatalf("%s/%s: %v", fx.name, name, err)
			}
			b, err := est.Estimate(context.Background(), fx.top, shuffled, metamorphicOpts()...)
			if err != nil {
				t.Fatalf("%s/%s (shuffled): %v", fx.name, name, err)
			}
			assertEstimatesMatch(t, fx.name+"/"+name+" permuted", a, b)
		}
	}
}

// Warm-started shard solves must be bit-identical to from-scratch
// solves on every randomized topology: solve twice with a retained
// ShardedSolver (the second pass reuses every shard's plan) and once
// with the stateless registry estimator, and require all three to
// match.
func TestMetamorphicWarmShardSolves(t *testing.T) {
	for _, fx := range metamorphicFixtures(t) {
		sv, err := estimator.NewShardedSolver(fx.top, metamorphicOpts()...)
		if err != nil {
			t.Fatal(err)
		}
		solve := func() *estimator.Estimate {
			blocks := make([]*core.Result, sv.NumShards())
			for s := range blocks {
				res, _, err := sv.SolveShard(context.Background(), s, fx.rec)
				if err != nil {
					t.Fatalf("%s shard %d: %v", fx.name, s, err)
				}
				blocks[s] = res
			}
			return sv.Merge(blocks, fx.rec)
		}
		coldEst := solve()
		warmEst := solve() // identical store: every shard must warm-start
		assertEstimatesMatch(t, fx.name+" warm vs cold", coldEst, warmEst)

		registry, err := estimator.New(estimator.CorrelationCompleteSharded)
		if err != nil {
			t.Fatal(err)
		}
		ref, err := registry.Estimate(context.Background(), fx.top, fx.rec, metamorphicOpts()...)
		if err != nil {
			t.Fatal(err)
		}
		assertEstimatesMatch(t, fx.name+" solver vs registry", warmEst, ref)
	}
}

// Epoch chains over a sliding window must stay bit-identical to the
// stateless estimators no matter how the always-good set drifts
// between epochs: the warm solvers (unsharded WarmSolver and
// per-shard ShardedSolver) carry their plans across every epoch,
// warm-starting, repairing, or rebuilding as the drift demands, and
// every epoch's estimate is checked against a from-scratch registry
// solve over the same frozen window.
func TestMetamorphicDriftEpochChains(t *testing.T) {
	for _, fx := range metamorphicFixtures(t) {
		ws, err := estimator.NewWarmSolver(fx.top, metamorphicOpts()...)
		if err != nil {
			t.Fatal(err)
		}
		sv, err := estimator.NewShardedSolver(fx.top, metamorphicOpts()...)
		if err != nil {
			t.Fatal(err)
		}
		plain, err := estimator.New(estimator.CorrelationComplete)
		if err != nil {
			t.Fatal(err)
		}
		shardedRef, err := estimator.New(estimator.CorrelationCompleteSharded)
		if err != nil {
			t.Fatal(err)
		}
		const capacity = 120 // well under the 300 recorded intervals: epochs drift as bursts evict
		w := stream.NewWindow(fx.top.NumPaths(), capacity)
		for ti := 0; ti < fx.rec.T(); ti++ {
			w.Add(fx.rec.CongestedAt(ti))
			if (ti+1)%40 != 0 {
				continue
			}
			frozen := w.Clone()
			warmEst, _, err := ws.Estimate(context.Background(), frozen)
			if err != nil {
				t.Fatalf("%s: warm: %v", fx.name, err)
			}
			coldEst, err := plain.Estimate(context.Background(), fx.top, frozen, metamorphicOpts()...)
			if err != nil {
				t.Fatalf("%s: cold: %v", fx.name, err)
			}
			assertEstimatesMatch(t, fx.name+" warm-chain vs cold", warmEst, coldEst)

			blocks := make([]*core.Result, sv.NumShards())
			for s := range blocks {
				if blocks[s], _, err = sv.SolveShard(context.Background(), s, frozen); err != nil {
					t.Fatalf("%s: shard %d: %v", fx.name, s, err)
				}
			}
			shardEst := sv.Merge(blocks, frozen)
			refEst, err := shardedRef.Estimate(context.Background(), fx.top, frozen, metamorphicOpts()...)
			if err != nil {
				t.Fatalf("%s: sharded ref: %v", fx.name, err)
			}
			assertEstimatesMatch(t, fx.name+" sharded-chain vs registry", shardEst, refEst)
		}
	}
}

// assertEstimatesAgreeLoosely is the tier-2 contract between a chain
// that has patched its plan numerically and a from-scratch solve: the
// always-good partition — a pure function of the data — must match
// exactly, and every subset identifiable under both structural
// selections must agree to solver tolerance. The selections themselves
// may differ (a cold solve can pick path sets the retained plan never
// saw), so no bitwise comparison applies.
func assertEstimatesAgreeLoosely(t *testing.T, label string, a, b *estimator.Estimate) {
	t.Helper()
	if !a.PotentiallyCongested.Equal(b.PotentiallyCongested) {
		t.Fatalf("%s: potentially-congested sets differ", label)
	}
	bm := subsetMap(t, b)
	for _, sub := range a.Subsets {
		if !sub.Identifiable {
			continue
		}
		other, ok := bm[sub.Links.Key()]
		if !ok || !other.Identifiable {
			continue
		}
		if diff := sub.GoodProb - other.GoodProb; diff > 1e-6 || diff < -1e-6 {
			t.Fatalf("%s: subset %s GoodProb %v vs %v", label, sub.Links, sub.GoodProb, other.GoodProb)
		}
	}
}

// driftFixture hand-builds a topology whose always-good set drifts
// both within and across the good-link frontier (the estimator-level
// twin of the core package's drift schedule): stable paths pin most of
// the frontier, three flappy paths drift inside it (tier-1 territory),
// and path 2 — the sole extra cover of links 4 and 5 — flaps only in
// designated epochs, moving the frontier itself (tier-2 territory).
func driftFixture(t *testing.T) (*topology.Topology, func(*stream.Window, *rand.Rand, bool)) {
	t.Helper()
	links := make([]topology.Link, 8)
	for i := range links {
		links[i] = topology.Link{ID: i, AS: i / 2}
	}
	paths := []topology.Path{
		{ID: 0, Links: []int{0, 1}},
		{ID: 1, Links: []int{2, 3}},
		{ID: 2, Links: []int{4, 5}},
		{ID: 3, Links: []int{1, 3, 5}},
		{ID: 4, Links: []int{6, 7}},
		{ID: 5, Links: []int{6}},
		{ID: 6, Links: []int{0, 2}},
		{ID: 7, Links: []int{1, 4, 5}},
		{ID: 8, Links: []int{3}},
		{ID: 9, Links: []int{7}},
	}
	top, err := topology.NewChecked(links, paths, [][]int{{0, 1}, {2, 3}, {4, 5}, {6, 7}})
	if err != nil {
		t.Fatal(err)
	}
	epoch := func(w *stream.Window, rng *rand.Rand, frontierMove bool) {
		prob := make([]float64, len(paths))
		prob[4], prob[5], prob[9] = 0.5, 0.4, 0.45
		for _, p := range []int{6, 7, 8} {
			if rng.Intn(2) == 0 {
				prob[p] = 0.3
			}
		}
		if frontierMove {
			prob[2] = 0.3
		}
		cong := bitset.New(len(paths))
		for i := 0; i < 100; i++ {
			cong.Clear()
			for p := range prob {
				if prob[p] > 0 && rng.Float64() < prob[p] {
					cong.Add(p)
				}
			}
			w.Add(cong)
		}
	}
	return top, epoch
}

// Epoch chains with tier-2 numerical plan repair enabled interleave
// all three plan tiers — warm reuse, the tier-1 re-key, and the tier-2
// factorization patch — across sliding-window drift. Until the chain's
// first tier-2 patch, every epoch must stay bit-identical to the
// stateless solve (tier-1 never trades bit-identity); from the first
// patch until the next cold rebuild, epochs satisfy the loose numeric
// contract instead. The randomized Brite/Sparse chains mostly exercise
// warm/tier-2/cold; the hand-built drift fixture below adds chains
// where frontier-stable drift keeps tier-1 in the mix.
func TestMetamorphicNumericRepairDriftChains(t *testing.T) {
	opts := append(metamorphicOpts(),
		estimator.WithNumericalPlanRepair(true),
		estimator.WithNumericalRepairMaxFrac(0.6))
	var warm, repaired, numeric, failed, cold int
	classify := func(info estimator.SolveInfo, patched bool) bool {
		switch {
		case info.RepairedNumeric:
			numeric++
			return true
		case info.Repaired:
			repaired++
			return patched
		case info.Warm:
			warm++
			return patched
		default:
			cold++
			if info.RepairFailed {
				failed++
			}
			return false // fresh build: back in lockstep with cold
		}
	}

	top, driftEpoch := driftFixture(t)
	plainDrift, err := estimator.New(estimator.CorrelationComplete)
	if err != nil {
		t.Fatal(err)
	}
	for seed := int64(1); seed <= 4; seed++ {
		ws, err := estimator.NewWarmSolver(top, opts...)
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(seed))
		w := stream.NewWindow(top.NumPaths(), 400)
		patched := false
		for ep := 0; ep < 12; ep++ {
			driftEpoch(w, rng, ep%5 == 3)
			frozen := w.Clone()
			warmEst, info, err := ws.Estimate(context.Background(), frozen)
			if err != nil {
				t.Fatalf("drift seed %d epoch %d: %v", seed, ep, err)
			}
			coldEst, err := plainDrift.Estimate(context.Background(), top, frozen, metamorphicOpts()...)
			if err != nil {
				t.Fatal(err)
			}
			patched = classify(info, patched)
			label := fmt.Sprintf("drift seed %d epoch %d", seed, ep)
			if patched {
				assertEstimatesAgreeLoosely(t, label+" (post-patch)", warmEst, coldEst)
			} else {
				assertEstimatesMatch(t, label, warmEst, coldEst)
			}
		}
	}
	if repaired == 0 {
		t.Fatal("drift fixture never exercised the tier-1 re-key")
	}

	for _, fx := range metamorphicFixtures(t) {
		ws, err := estimator.NewWarmSolver(fx.top, opts...)
		if err != nil {
			t.Fatal(err)
		}
		plain, err := estimator.New(estimator.CorrelationComplete)
		if err != nil {
			t.Fatal(err)
		}
		const capacity = 120
		w := stream.NewWindow(fx.top.NumPaths(), capacity)
		patched := false
		for ti := 0; ti < fx.rec.T(); ti++ {
			w.Add(fx.rec.CongestedAt(ti))
			// A tighter cadence than the bit-identical chain test above:
			// small inter-epoch drifts are likelier to hold the frontier,
			// so all three tiers get exercised, not just warm and tier-2.
			if (ti+1)%20 != 0 {
				continue
			}
			frozen := w.Clone()
			warmEst, info, err := ws.Estimate(context.Background(), frozen)
			if err != nil {
				t.Fatalf("%s: warm: %v", fx.name, err)
			}
			coldEst, err := plain.Estimate(context.Background(), fx.top, frozen, metamorphicOpts()...)
			if err != nil {
				t.Fatalf("%s: cold: %v", fx.name, err)
			}
			label := fmt.Sprintf("%s t=%d", fx.name, ti+1)
			patched = classify(info, patched)
			if patched {
				assertEstimatesAgreeLoosely(t, label+" (post-patch)", warmEst, coldEst)
			} else {
				assertEstimatesMatch(t, label, warmEst, coldEst)
			}
		}
	}
	if numeric == 0 {
		t.Fatal("no fixture's drift chain exercised a tier-2 repair")
	}
	if warm == 0 || cold == 0 {
		t.Fatalf("drift chains did not interleave tiers: warm=%d cold=%d", warm, cold)
	}
	t.Logf("tiers: warm=%d repaired=%d numeric=%d cold=%d (failed repairs: %d)",
		warm, repaired, numeric, cold, failed)
}
