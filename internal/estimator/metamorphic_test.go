package estimator_test

import (
	"context"
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/estimator"
	"repro/internal/experiment"
	"repro/internal/netsim"
	"repro/internal/observe"
	"repro/internal/stream"
)

// metamorphicOpts is the shared option list of the cross-algorithm
// suite; Seed pins the sampling estimators so reruns are comparable.
func metamorphicOpts() []estimator.Option {
	return []estimator.Option{
		estimator.WithMaxSubsetSize(2),
		estimator.WithAlwaysGoodTol(0.02),
		estimator.WithConcurrency(1),
		estimator.WithSeed(11),
	}
}

// metamorphicFixtures draws randomized topologies of both families
// (the generation path of cmd/topogen) with simulated monitoring
// periods across scenarios.
func metamorphicFixtures(t *testing.T) []fixture {
	t.Helper()
	var out []fixture
	scenarios := []netsim.Scenario{netsim.RandomCongestion, netsim.ConcentratedCongestion, netsim.NoIndependence}
	for _, kind := range []experiment.TopologyKind{experiment.Brite, experiment.Sparse} {
		for seed := int64(1); seed <= 3; seed++ {
			fx := kindFixture(t, kind, seed, scenarios[seed%int64(len(scenarios))])
			fx.name = fmt.Sprintf("%s-%d", fx.name, seed)
			out = append(out, fx)
		}
	}
	return out
}

// Every registry estimator must agree on the always-good set: the
// potentially congested links are derived from the observations alone
// (§5.2), before any algorithm-specific inference, so disagreement
// means an estimator is not honoring the shared definition.
func TestMetamorphicAlwaysGoodAgreement(t *testing.T) {
	for _, fx := range metamorphicFixtures(t) {
		var refName string
		var ref *estimator.Estimate
		for _, name := range estimator.Names() {
			est, err := estimator.New(name)
			if err != nil {
				t.Fatal(err)
			}
			res, err := est.Estimate(context.Background(), fx.top, fx.rec, metamorphicOpts()...)
			if err != nil {
				t.Fatalf("%s/%s: %v", fx.name, name, err)
			}
			if ref == nil {
				refName, ref = name, res
				continue
			}
			if !res.PotentiallyCongested.Equal(ref.PotentiallyCongested) {
				t.Fatalf("%s: %s and %s disagree on the always-good set:\n%s\nvs\n%s",
					fx.name, name, refName, res.PotentiallyCongested, ref.PotentiallyCongested)
			}
		}
	}
}

// Permuting the observation order must leave every estimator's output
// bit-identical: the algorithms consume only windowed joint statistics
// (and per-interval diagnoses aggregated order-independently), never
// the arrival order.
func TestMetamorphicObservationOrderInvariance(t *testing.T) {
	for _, fx := range metamorphicFixtures(t) {
		perm := rand.New(rand.NewSource(17)).Perm(fx.rec.T())
		shuffled := observe.NewRecorder(fx.top.NumPaths())
		for _, ti := range perm {
			shuffled.Add(fx.rec.CongestedAt(ti))
		}
		for _, name := range estimator.Names() {
			est, err := estimator.New(name)
			if err != nil {
				t.Fatal(err)
			}
			a, err := est.Estimate(context.Background(), fx.top, fx.rec, metamorphicOpts()...)
			if err != nil {
				t.Fatalf("%s/%s: %v", fx.name, name, err)
			}
			b, err := est.Estimate(context.Background(), fx.top, shuffled, metamorphicOpts()...)
			if err != nil {
				t.Fatalf("%s/%s (shuffled): %v", fx.name, name, err)
			}
			assertEstimatesMatch(t, fx.name+"/"+name+" permuted", a, b)
		}
	}
}

// Warm-started shard solves must be bit-identical to from-scratch
// solves on every randomized topology: solve twice with a retained
// ShardedSolver (the second pass reuses every shard's plan) and once
// with the stateless registry estimator, and require all three to
// match.
func TestMetamorphicWarmShardSolves(t *testing.T) {
	for _, fx := range metamorphicFixtures(t) {
		sv, err := estimator.NewShardedSolver(fx.top, metamorphicOpts()...)
		if err != nil {
			t.Fatal(err)
		}
		solve := func() *estimator.Estimate {
			blocks := make([]*core.Result, sv.NumShards())
			for s := range blocks {
				res, _, err := sv.SolveShard(context.Background(), s, fx.rec)
				if err != nil {
					t.Fatalf("%s shard %d: %v", fx.name, s, err)
				}
				blocks[s] = res
			}
			return sv.Merge(blocks, fx.rec)
		}
		coldEst := solve()
		warmEst := solve() // identical store: every shard must warm-start
		assertEstimatesMatch(t, fx.name+" warm vs cold", coldEst, warmEst)

		registry, err := estimator.New(estimator.CorrelationCompleteSharded)
		if err != nil {
			t.Fatal(err)
		}
		ref, err := registry.Estimate(context.Background(), fx.top, fx.rec, metamorphicOpts()...)
		if err != nil {
			t.Fatal(err)
		}
		assertEstimatesMatch(t, fx.name+" solver vs registry", warmEst, ref)
	}
}

// Epoch chains over a sliding window must stay bit-identical to the
// stateless estimators no matter how the always-good set drifts
// between epochs: the warm solvers (unsharded WarmSolver and
// per-shard ShardedSolver) carry their plans across every epoch,
// warm-starting, repairing, or rebuilding as the drift demands, and
// every epoch's estimate is checked against a from-scratch registry
// solve over the same frozen window.
func TestMetamorphicDriftEpochChains(t *testing.T) {
	for _, fx := range metamorphicFixtures(t) {
		ws, err := estimator.NewWarmSolver(fx.top, metamorphicOpts()...)
		if err != nil {
			t.Fatal(err)
		}
		sv, err := estimator.NewShardedSolver(fx.top, metamorphicOpts()...)
		if err != nil {
			t.Fatal(err)
		}
		plain, err := estimator.New(estimator.CorrelationComplete)
		if err != nil {
			t.Fatal(err)
		}
		shardedRef, err := estimator.New(estimator.CorrelationCompleteSharded)
		if err != nil {
			t.Fatal(err)
		}
		const capacity = 120 // well under the 300 recorded intervals: epochs drift as bursts evict
		w := stream.NewWindow(fx.top.NumPaths(), capacity)
		for ti := 0; ti < fx.rec.T(); ti++ {
			w.Add(fx.rec.CongestedAt(ti))
			if (ti+1)%40 != 0 {
				continue
			}
			frozen := w.Clone()
			warmEst, _, err := ws.Estimate(context.Background(), frozen)
			if err != nil {
				t.Fatalf("%s: warm: %v", fx.name, err)
			}
			coldEst, err := plain.Estimate(context.Background(), fx.top, frozen, metamorphicOpts()...)
			if err != nil {
				t.Fatalf("%s: cold: %v", fx.name, err)
			}
			assertEstimatesMatch(t, fx.name+" warm-chain vs cold", warmEst, coldEst)

			blocks := make([]*core.Result, sv.NumShards())
			for s := range blocks {
				if blocks[s], _, err = sv.SolveShard(context.Background(), s, frozen); err != nil {
					t.Fatalf("%s: shard %d: %v", fx.name, s, err)
				}
			}
			shardEst := sv.Merge(blocks, frozen)
			refEst, err := shardedRef.Estimate(context.Background(), fx.top, frozen, metamorphicOpts()...)
			if err != nil {
				t.Fatalf("%s: sharded ref: %v", fx.name, err)
			}
			assertEstimatesMatch(t, fx.name+" sharded-chain vs registry", shardEst, refEst)
		}
	}
}
