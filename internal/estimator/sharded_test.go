package estimator_test

import (
	"context"
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/core"

	"repro/internal/estimator"
	"repro/internal/experiment"
	"repro/internal/netsim"
	"repro/internal/observe"
	"repro/internal/stream"
	"repro/internal/topology"
)

// subsetMap flattens an estimate's subsets keyed by link set, so
// estimates whose subset IDs are ordered differently (the merged
// sharded layout groups by shard) can still be compared value-for-value.
func subsetMap(t *testing.T, est *estimator.Estimate) map[string]estimator.SubsetEstimate {
	t.Helper()
	out := make(map[string]estimator.SubsetEstimate, len(est.Subsets))
	for _, sub := range est.Subsets {
		key := sub.Links.Key()
		if _, dup := out[key]; dup {
			t.Fatalf("duplicate subset %s", sub.Links)
		}
		out[key] = sub
	}
	return out
}

// assertEstimatesMatch asserts two estimates are bit-identical in every
// per-link and per-subset value (subset order may differ).
func assertEstimatesMatch(t *testing.T, label string, a, b *estimator.Estimate) {
	t.Helper()
	for e := range a.LinkProb {
		if a.LinkProb[e] != b.LinkProb[e] || a.LinkExact[e] != b.LinkExact[e] {
			t.Fatalf("%s: link %d: (%v,%v) vs (%v,%v)",
				label, e, a.LinkProb[e], a.LinkExact[e], b.LinkProb[e], b.LinkExact[e])
		}
	}
	if !a.PotentiallyCongested.Equal(b.PotentiallyCongested) {
		t.Fatalf("%s: potentially-congested sets differ", label)
	}
	if a.Rank != b.Rank || a.Nullity != b.Nullity || a.ClampedRows != b.ClampedRows {
		t.Fatalf("%s: rank/nullity/clamped (%d,%d,%d) vs (%d,%d,%d)",
			label, a.Rank, a.Nullity, a.ClampedRows, b.Rank, b.Nullity, b.ClampedRows)
	}
	sa, sb := subsetMap(t, a), subsetMap(t, b)
	if len(sa) != len(sb) {
		t.Fatalf("%s: %d vs %d subsets", label, len(sa), len(sb))
	}
	for key, subA := range sa {
		subB, ok := sb[key]
		if !ok {
			t.Fatalf("%s: subset %s missing from second estimate", label, subA.Links)
		}
		if subA.Identifiable != subB.Identifiable || subA.CorrSet != subB.CorrSet {
			t.Fatalf("%s: subset %s flags differ", label, subA.Links)
		}
		if subA.Identifiable && subA.GoodProb != subB.GoodProb {
			t.Fatalf("%s: subset %s GoodProb %v vs %v", label, subA.Links, subA.GoodProb, subB.GoodProb)
		}
	}
}

// kindFixture simulates a monitoring period over a generated topology
// (the same generation path cmd/topogen uses).
func kindFixture(t *testing.T, kind experiment.TopologyKind, seed int64, scenario netsim.Scenario) fixture {
	t.Helper()
	scale := experiment.Small()
	top, err := experiment.BuildTopology(kind, scale, seed)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(seed))
	mc := netsim.DefaultConfig(scenario)
	mc.PerfectE2E = true
	model, err := netsim.NewModel(top, mc, 300, rng)
	if err != nil {
		t.Fatal(err)
	}
	rec := observe.NewRecorder(top.NumPaths())
	for ti := 0; ti < 300; ti++ {
		rec.Add(model.Interval(ti, rng).CongestedPaths)
	}
	return fixture{name: kind.String(), top: top, rec: rec}
}

// The acceptance pin: correlation-complete-sharded must be bit-identical
// to correlation-complete on the Fig. 1 topologies, a Brite scenario,
// and on genuinely multi-shard topologies (Brite seed 4 and Sparse
// seed 1 partition into two shards at this scale).
func TestShardedBitIdenticalToPlain(t *testing.T) {
	fixtures := []fixture{
		fig1Fixture("fig1-case1", topology.Fig1Case1()),
		fig1Fixture("fig1-case2", topology.Fig1Case2()),
		kindFixture(t, experiment.Brite, 1, netsim.RandomCongestion),
		kindFixture(t, experiment.Brite, 4, netsim.RandomCongestion),
		kindFixture(t, experiment.Sparse, 1, netsim.RandomCongestion),
	}
	multiShard := 0
	for _, fx := range fixtures {
		if topology.NewPartition(fx.top).NumShards() > 1 {
			multiShard++
		}
		plain, err := estimator.New(estimator.CorrelationComplete)
		if err != nil {
			t.Fatal(err)
		}
		sharded, err := estimator.New(estimator.CorrelationCompleteSharded)
		if err != nil {
			t.Fatal(err)
		}
		opts := []estimator.Option{estimator.WithMaxSubsetSize(2), estimator.WithAlwaysGoodTol(0.02)}
		a, err := plain.Estimate(context.Background(), fx.top, fx.rec, opts...)
		if err != nil {
			t.Fatalf("%s: %v", fx.name, err)
		}
		b, err := sharded.Estimate(context.Background(), fx.top, fx.rec, opts...)
		if err != nil {
			t.Fatalf("%s: %v", fx.name, err)
		}
		assertEstimatesMatch(t, fx.name, a, b)
		// Joint queries must survive the merge: every identifiable
		// subset's congestion probability agrees with the plain Detail.
		if b.Detail == nil {
			t.Fatalf("%s: merged estimate lost Detail", fx.name)
		}
		for _, sub := range b.Subsets {
			if !sub.Identifiable {
				continue
			}
			cp, ok := b.Detail.CongestedProb(sub.Links)
			cpWant, okWant := a.Detail.CongestedProb(sub.Links)
			if ok != okWant || (ok && cp != cpWant) {
				t.Fatalf("%s: CongestedProb(%s) = (%v,%v), plain (%v,%v)", fx.name, sub.Links, cp, ok, cpWant, okWant)
			}
		}
	}
	if multiShard == 0 {
		t.Fatal("no fixture exercised a multi-shard partition")
	}
}

// A retained ShardedSolver solving shard rings epoch after epoch (warm)
// must keep producing estimates bit-identical to the stateless registry
// estimator run from scratch over the same data.
func TestShardedSolverWarmMatchesRegistry(t *testing.T) {
	fx := kindFixture(t, experiment.Sparse, 1, netsim.RandomCongestion)
	part := topology.NewPartition(fx.top)
	if part.NumShards() < 2 {
		t.Fatalf("fixture has %d shards, want ≥ 2", part.NumShards())
	}
	opts := []estimator.Option{estimator.WithMaxSubsetSize(2), estimator.WithAlwaysGoodTol(0.02)}
	sv, err := estimator.NewShardedSolver(fx.top, opts...)
	if err != nil {
		t.Fatal(err)
	}
	cold, err := estimator.New(estimator.CorrelationCompleteSharded)
	if err != nil {
		t.Fatal(err)
	}

	// Stream the recorded intervals into a partitioned window and solve
	// an epoch every 60 intervals, each shard from its own ring; verify
	// each merged estimate against the stateless estimator run from
	// scratch over a fresh Recorder holding exactly the surviving
	// intervals.
	const capacity = 200
	win := stream.NewSharded(fx.top.NumPaths(), capacity, part.PathShards(), part.NumShards())
	warmEpochs := 0
	for ti := 0; ti < fx.rec.T(); ti++ {
		win.Add(fx.rec.CongestedAt(ti))
		if (ti+1)%60 != 0 {
			continue
		}
		blocks := make([]*core.Result, sv.NumShards())
		warm := false
		for s := range blocks {
			res, info, err := sv.SolveShard(context.Background(), s, win.Shard(s))
			if err != nil {
				t.Fatal(err)
			}
			blocks[s] = res
			warm = warm || info.Warm
		}
		if warm {
			warmEpochs++
		}
		got := sv.Merge(blocks, win)
		ref := observe.NewRecorder(fx.top.NumPaths())
		lo := 0
		if ti+1 > capacity {
			lo = ti + 1 - capacity
		}
		for k := lo; k <= ti; k++ {
			ref.Add(fx.rec.CongestedAt(k))
		}
		want, err := cold.Estimate(context.Background(), fx.top, ref, opts...)
		if err != nil {
			t.Fatal(err)
		}
		assertEstimatesMatch(t, "warm epoch", got, want)
	}
	if warmEpochs == 0 {
		t.Fatal("no epoch warm-started: the carried-forward plans never applied")
	}
}

// SolveShardBatch must reproduce sequential SolveShard calls block for
// block — the batched multi-RHS drain is a pure catch-up optimization.
func TestShardedSolverBatchMatchesSequential(t *testing.T) {
	fx := kindFixture(t, experiment.Sparse, 1, netsim.RandomCongestion)
	part := topology.NewPartition(fx.top)
	if part.NumShards() < 2 {
		t.Fatalf("fixture has %d shards, want ≥ 2", part.NumShards())
	}
	opts := []estimator.Option{estimator.WithMaxSubsetSize(2), estimator.WithAlwaysGoodTol(0.02)}
	seqSv, err := estimator.NewShardedSolver(fx.top, opts...)
	if err != nil {
		t.Fatal(err)
	}
	batchSv, err := estimator.NewShardedSolver(fx.top, opts...)
	if err != nil {
		t.Fatal(err)
	}

	// Freeze a checkpoint of every shard's ring each 60 intervals,
	// mimicking the server's stride backlog.
	const capacity = 200
	win := stream.NewSharded(fx.top.NumPaths(), capacity, part.PathShards(), part.NumShards())
	checkpoints := make([][]observe.Store, part.NumShards())
	var fullCks []*stream.Sharded
	for ti := 0; ti < fx.rec.T(); ti++ {
		win.Add(fx.rec.CongestedAt(ti))
		if (ti+1)%60 != 0 {
			continue
		}
		ck := win.Clone()
		fullCks = append(fullCks, ck)
		for s := range checkpoints {
			checkpoints[s] = append(checkpoints[s], ck.Shard(s))
		}
	}
	if len(fullCks) < 3 {
		t.Fatalf("only %d checkpoints", len(fullCks))
	}
	for s := 0; s < part.NumShards(); s++ {
		batchRes, batchInfos, err := batchSv.SolveShardBatch(context.Background(), s, checkpoints[s])
		if err != nil {
			t.Fatal(err)
		}
		for k, obs := range checkpoints[s] {
			wantRes, wantInfo, err := seqSv.SolveShard(context.Background(), s, obs)
			if err != nil {
				t.Fatal(err)
			}
			if batchInfos[k].Warm != wantInfo.Warm || batchInfos[k].Repaired != wantInfo.Repaired {
				t.Fatalf("shard %d ck %d: info (%+v) != sequential (%+v)", s, k, batchInfos[k], wantInfo)
			}
			got := batchSv.Merge([]*core.Result{batchRes[k]}, fullCks[k])
			want := seqSv.Merge([]*core.Result{wantRes}, fullCks[k])
			assertEstimatesMatch(t, fmt.Sprintf("shard %d ck %d", s, k), got, want)
		}
	}
}
