package estimator

import (
	"context"
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/observe"
	"repro/internal/topology"
)

// CorrelationCompleteSharded is the registry name of the sharded
// Correlation-complete estimator.
const CorrelationCompleteSharded = "correlation-complete-sharded"

func init() {
	register(correlationCompleteSharded{})
}

// correlationCompleteSharded is the stateless registry form: each call
// partitions the topology, solves every shard from scratch, and merges.
// The streaming server keeps a ShardedSolver instead, which adds
// warm-started per-shard plans across epochs; both produce identical
// estimates.
type correlationCompleteSharded struct{}

func (correlationCompleteSharded) Name() string { return CorrelationCompleteSharded }

func (correlationCompleteSharded) Description() string {
	return "Correlation-complete solved independently per correlation-set shard (the connected components of the correlation-set/path incidence) and merged; identical output, block-wise cost"
}

func (correlationCompleteSharded) Estimate(ctx context.Context, top *topology.Topology, obs observe.Store, opts ...Option) (*Estimate, error) {
	sv, err := NewShardedSolver(top, opts...)
	if err != nil {
		return nil, err
	}
	if err := checkUniverse(CorrelationCompleteSharded, top, obs); err != nil {
		return nil, err
	}
	results := make([]*core.Result, sv.NumShards())
	for s := range results {
		res, _, err := sv.SolveShard(ctx, s, obs)
		if err != nil {
			return nil, err
		}
		results[s] = res
	}
	return sv.Merge(results, obs), nil
}

// SolveInfo describes how an epoch solve used its carried-forward
// structural plan.
type SolveInfo struct {
	// Warm reports that the structural phase was skipped entirely: the
	// previous plan's factorization served this epoch (whether the
	// always-good set held or Repair absorbed its drift).
	Warm bool
	// Repaired reports that the always-good set drifted within the
	// good-link frontier and the plan was re-keyed across it rather
	// than rebuilt (tier-1, core.Plan.Repair; bit-identical).
	Repaired bool
	// RepairedNumeric reports that the drift moved the frontier and the
	// plan's factorization was patched in place (tier-2,
	// core.Plan.RepairNumeric; numerically equivalent). Only ever set
	// when the solver runs with WithNumericalPlanRepair(true).
	RepairedNumeric bool
	// RepairFailed reports that this epoch rebuilt cold after a repair
	// attempt failed — the drift was unrepairable — as opposed to a
	// rebuild forced by a config or topology change, where no attempt
	// was made. RepairTime then holds the failed attempt's duration.
	RepairFailed bool

	// Per-stage wall time of the epoch (core.Plan.StageTimes):
	// BuildTime is the cold structural rebuild (zero on warm epochs),
	// RepairTime the repair attempt — tier-1 re-key, tier-2 patch, or a
	// failed probe that fell back cold — and SolveTime the shared solve
	// tail. Zero on batched drains, where per-epoch attribution doesn't
	// exist.
	BuildTime  time.Duration
	RepairTime time.Duration
	SolveTime  time.Duration
}

// solveInfoFor derives how a ComputePlanned call used prev from the
// returned plan and prev's repair counts snapshotted before the call —
// the one place this pattern lives for every warm solver.
func solveInfoFor(prev, next *core.Plan, prevRepairs, prevNumeric int) SolveInfo {
	info := SolveInfo{}
	if prev != nil && next == prev {
		info.Warm = true
		info.Repaired = next.RepairCount() > prevRepairs
		info.RepairedNumeric = next.NumericRepairCount() > prevNumeric
	} else {
		info.RepairFailed = next.RepairFailed()
	}
	info.BuildTime, info.RepairTime, info.SolveTime = next.StageTimes()
	return info
}

// ShardedSolver drives per-shard Correlation-complete solves over a
// fixed topology, carrying each shard's structural plan (enumeration,
// selected path sets, null space, QR factorization) from epoch to
// epoch. While a shard's always-good path set is unchanged, its solve
// skips the structural phases entirely and re-solves the retained
// factorization against fresh frequencies; a change invalidates only
// that shard's plan. This is the engine behind both the
// "correlation-complete-sharded" registry estimator (which discards the
// solver after one estimate) and the streaming server's per-shard
// solver loops (which retain it).
//
// Distinct shards may be solved from distinct goroutines concurrently;
// calls for the same shard must be serialized by the caller.
type ShardedSolver struct {
	top      *topology.Topology
	part     *topology.Partition
	settings Settings
	plans    []*core.Plan
}

// NewShardedSolver partitions the topology and validates the options.
func NewShardedSolver(top *topology.Topology, opts ...Option) (*ShardedSolver, error) {
	s, err := Apply(opts...)
	if err != nil {
		return nil, err
	}
	part := topology.NewPartition(top)
	return &ShardedSolver{
		top:      top,
		part:     part,
		settings: s,
		plans:    make([]*core.Plan, max(part.NumShards(), 1)),
	}, nil
}

// Partition returns the correlation-set partition the solver shards by.
func (sv *ShardedSolver) Partition() *topology.Partition { return sv.part }

// NumShards returns the number of independent solves per epoch (at
// least 1: a topology with no shardable structure degrades to one
// unrestricted solve).
func (sv *ShardedSolver) NumShards() int { return max(sv.part.NumShards(), 1) }

// ShardSize returns one shard's slice of the universe: its path and
// link counts (the whole universe when the partition is degenerate).
func (sv *ShardedSolver) ShardSize(shard int) (paths, links int) {
	if shard < sv.part.NumShards() {
		return sv.part.ShardPaths(shard).Count(), sv.part.ShardLinks(shard).Count()
	}
	return sv.top.NumPaths(), sv.top.NumLinks()
}

// shardConfig returns the core configuration of one shard's solve: the
// shared settings, restricted to the shard's correlation sets when
// there is more than one shard. With a single shard the solve runs
// unrestricted and is the plain Correlation-complete computation,
// bit for bit.
func (sv *ShardedSolver) shardConfig(shard int) core.Config {
	cfg := sv.settings.coreConfig()
	if sv.part.NumShards() > 1 {
		cfg.RestrictCorrSets = sv.part.ShardCorrSets(shard)
	}
	return cfg
}

// SolveShard computes shard's block of the system over obs, warm-
// starting from the shard's previous plan when its always-good path set
// is unchanged — or repairing the plan across the drift when the
// good-link frontier held (core.Plan.Repair). obs may be the full
// observation store or just the shard's own ring of a stream.Sharded —
// the solve only reads the shard's paths, whose statistics are
// identical in both. info reports how the carried-forward plan served.
func (sv *ShardedSolver) SolveShard(ctx context.Context, shard int, obs observe.Store) (res *core.Result, info SolveInfo, err error) {
	if shard < 0 || shard >= len(sv.plans) {
		return nil, SolveInfo{}, fmt.Errorf("estimator: shard %d outside [0,%d)", shard, len(sv.plans))
	}
	prev := sv.plans[shard]
	prevRepairs, prevNumeric := 0, 0
	if prev != nil {
		prevRepairs, prevNumeric = prev.RepairCount(), prev.NumericRepairCount()
	}
	res, plan, err := core.ComputePlanned(ctx, sv.top, obs, sv.shardConfig(shard), prev)
	if err != nil {
		return nil, SolveInfo{}, err
	}
	sv.plans[shard] = plan
	return res, solveInfoFor(prev, plan, prevRepairs, prevNumeric), nil
}

// SolveShardBatch computes one block of shard per store, carrying the
// shard's plan across them exactly like sequential SolveShard calls
// would, but draining every maximal run of plan-compatible stores
// through one batched multi-RHS solve (core.ComputePlannedBatch). This
// is the catch-up path for a backlog of queued shard-ring snapshots:
// each block is bit-identical to a sequential SolveShard over the same
// store. infos reports per store how the carried plan served it (stage
// times are zero on batched solves, as in WarmSolver.EstimateBatch).
func (sv *ShardedSolver) SolveShardBatch(ctx context.Context, shard int, stores []observe.Store) ([]*core.Result, []SolveInfo, error) {
	if shard < 0 || shard >= len(sv.plans) {
		return nil, nil, fmt.Errorf("estimator: shard %d outside [0,%d)", shard, len(sv.plans))
	}
	results, epochInfos, plan, err := core.ComputePlannedBatch(ctx, sv.top, stores, sv.shardConfig(shard), sv.plans[shard])
	if err != nil {
		return nil, nil, err
	}
	sv.plans[shard] = plan
	infos := make([]SolveInfo, len(results))
	for i := range results {
		infos[i] = SolveInfo{
			Warm:            epochInfos[i].Warm,
			Repaired:        epochInfos[i].Repaired,
			RepairedNumeric: epochInfos[i].RepairedNumeric,
			RepairFailed:    epochInfos[i].RepairFailed,
		}
	}
	return results, infos, nil
}

// Merge assembles the per-shard results (in shard order; nil entries
// are skipped) into one Estimate over obs. The merged core.Result keeps
// every joint query working — the correlation-set partition guarantees
// each factors within a single shard's block — so the estimate carries
// full Detail exactly like the unsharded estimator's.
func (sv *ShardedSolver) Merge(results []*core.Result, obs observe.Store) *Estimate {
	merged := core.MergeResults(sv.top, obs, results, sv.settings.AlwaysGoodTol)
	return estimateFromResult(CorrelationCompleteSharded, sv.top, merged)
}
