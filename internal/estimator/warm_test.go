package estimator_test

import (
	"context"
	"math/rand"
	"testing"

	"repro/internal/bitset"
	"repro/internal/estimator"
	"repro/internal/observe"
	"repro/internal/stream"
	"repro/internal/topology"
)

// repairDriftTopology mirrors the core package's drift fixture: links
// 0–5 redundantly covered by stable paths so the flappy paths 6/7/8
// drift in and out of the always-good set without moving the good-link
// frontier (Plan.Repair's class), links 6–7 covered only by
// permanently congested paths.
func repairDriftTopology(t *testing.T) *topology.Topology {
	t.Helper()
	links := make([]topology.Link, 8)
	for i := range links {
		links[i] = topology.Link{ID: i, AS: i / 2}
	}
	paths := []topology.Path{
		{ID: 0, Links: []int{0, 1}},
		{ID: 1, Links: []int{2, 3}},
		{ID: 2, Links: []int{4, 5}},
		{ID: 3, Links: []int{1, 3, 5}},
		{ID: 4, Links: []int{6, 7}},
		{ID: 5, Links: []int{6}},
		{ID: 6, Links: []int{0, 2}},
		{ID: 7, Links: []int{1, 4, 5}},
		{ID: 8, Links: []int{3}},
		{ID: 9, Links: []int{7}},
	}
	top, err := topology.NewChecked(links, paths, [][]int{{0, 1}, {2, 3}, {4, 5}, {6, 7}})
	if err != nil {
		t.Fatal(err)
	}
	return top
}

// driftStream appends one epoch of observations with per-epoch flappy
// phases (mirrors the core drift generator).
func driftStream(w *stream.Window, rng *rand.Rand, numPaths, intervals int) {
	prob := make([]float64, numPaths)
	prob[4], prob[5], prob[9] = 0.5, 0.4, 0.45
	for _, p := range []int{6, 7, 8} {
		if rng.Intn(2) == 0 {
			prob[p] = 0.3
		}
	}
	cong := bitset.New(numPaths)
	for i := 0; i < intervals; i++ {
		cong.Clear()
		for p := 0; p < numPaths; p++ {
			if prob[p] > 0 && rng.Float64() < prob[p] {
				cong.Add(p)
			}
		}
		w.Add(cong)
	}
}

func warmOpts() []estimator.Option {
	return []estimator.Option{estimator.WithMaxSubsetSize(2), estimator.WithAlwaysGoodTol(0.02)}
}

// A WarmSolver chain over frontier-stable drift must repair (not
// rebuild) at least once, report it in SolveInfo, and stay
// bit-identical to the stateless registry estimator on every epoch.
func TestWarmSolverRepairsAcrossDrift(t *testing.T) {
	top := repairDriftTopology(t)
	registry, err := estimator.New(estimator.CorrelationComplete)
	if err != nil {
		t.Fatal(err)
	}
	repaired, warm := 0, 0
	for seed := int64(1); seed <= 4; seed++ {
		ws, err := estimator.NewWarmSolver(top, warmOpts()...)
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(seed))
		w := stream.NewWindow(top.NumPaths(), 400)
		for epoch := 0; epoch < 12; epoch++ {
			driftStream(w, rng, top.NumPaths(), 100)
			frozen := w.Clone()
			got, info, err := ws.Estimate(context.Background(), frozen)
			if err != nil {
				t.Fatal(err)
			}
			if info.Repaired {
				repaired++
			}
			if info.Warm {
				warm++
			}
			want, err := registry.Estimate(context.Background(), top, frozen, warmOpts()...)
			if err != nil {
				t.Fatal(err)
			}
			assertEstimatesMatch(t, "warm-solver epoch", got, want)
		}
	}
	if repaired == 0 {
		t.Fatal("no epoch repaired the plan: the drift class never applied")
	}
	if warm <= repaired {
		t.Fatal("no plainly warm epoch: the schedule is degenerate")
	}
}

// EstimateBatch must reproduce sequential Estimate calls epoch for
// epoch while draining plan-compatible runs through the batched
// multi-RHS solve.
func TestWarmSolverBatchMatchesSequential(t *testing.T) {
	top := repairDriftTopology(t)
	rng := rand.New(rand.NewSource(3))
	w := stream.NewWindow(top.NumPaths(), 400)
	var stores []observe.Store
	for epoch := 0; epoch < 10; epoch++ {
		driftStream(w, rng, top.NumPaths(), 100)
		stores = append(stores, w.Clone())
	}
	seq, err := estimator.NewWarmSolver(top, warmOpts()...)
	if err != nil {
		t.Fatal(err)
	}
	var want []*estimator.Estimate
	var wantInfos []estimator.SolveInfo
	for _, obs := range stores {
		est, info, err := seq.Estimate(context.Background(), obs)
		if err != nil {
			t.Fatal(err)
		}
		want = append(want, est)
		wantInfos = append(wantInfos, info)
	}
	batch, err := estimator.NewWarmSolver(top, warmOpts()...)
	if err != nil {
		t.Fatal(err)
	}
	got, infos, err := batch.EstimateBatch(context.Background(), stores)
	if err != nil {
		t.Fatal(err)
	}
	for i := range stores {
		assertEstimatesMatch(t, "batch epoch", got[i], want[i])
		// Stage times are wall-clock telemetry and differ run to run;
		// the contract is on how the plan served each epoch.
		if infos[i].Warm != wantInfos[i].Warm || infos[i].Repaired != wantInfos[i].Repaired {
			t.Fatalf("epoch %d info = %+v, sequential %+v", i, infos[i], wantInfos[i])
		}
	}
}
