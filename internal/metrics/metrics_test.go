package metrics

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/bitset"
)

func TestDetectionRate(t *testing.T) {
	actual := bitset.FromIndices(10, 1, 2, 3, 4)
	inferred := bitset.FromIndices(10, 2, 3, 9)
	dr, ok := DetectionRate(inferred, actual)
	if !ok || dr != 0.5 {
		t.Fatalf("dr=%v ok=%v, want 0.5,true", dr, ok)
	}
	if _, ok := DetectionRate(inferred, bitset.New(10)); ok {
		t.Fatal("empty actual set must not contribute")
	}
	if dr, _ := DetectionRate(bitset.New(10), actual); dr != 0 {
		t.Fatal("nothing inferred -> detection 0")
	}
}

func TestFalsePositiveRate(t *testing.T) {
	actual := bitset.FromIndices(10, 1, 2)
	inferred := bitset.FromIndices(10, 1, 8, 9)
	fpr, ok := FalsePositiveRate(inferred, actual)
	if !ok || math.Abs(fpr-2.0/3.0) > 1e-12 {
		t.Fatalf("fpr=%v ok=%v", fpr, ok)
	}
	if _, ok := FalsePositiveRate(bitset.New(10), actual); ok {
		t.Fatal("nothing inferred must not contribute")
	}
}

func TestMean(t *testing.T) {
	var m Mean
	if m.Value() != 0 || m.N() != 0 {
		t.Fatal("empty mean wrong")
	}
	m.Add(1)
	m.Add(3)
	m.AddIf(100, false)
	m.AddIf(2, true)
	if m.N() != 3 || m.Value() != 2 {
		t.Fatalf("mean=%v n=%d", m.Value(), m.N())
	}
}

func TestAbsErrors(t *testing.T) {
	est := []float64{0.1, 0.5, 0.9}
	truth := []float64{0.2, 0.5, 0.4}
	all := AbsErrors(est, truth, nil)
	if len(all) != 3 || math.Abs(all[0]-0.1) > 1e-12 || all[1] != 0 || math.Abs(all[2]-0.5) > 1e-12 {
		t.Fatalf("errors = %v", all)
	}
	some := AbsErrors(est, truth, func(i int) bool { return i != 1 })
	if len(some) != 2 {
		t.Fatalf("filtered = %v", some)
	}
}

func TestMeanOf(t *testing.T) {
	if MeanOf(nil) != 0 {
		t.Fatal("MeanOf(nil) != 0")
	}
	if MeanOf([]float64{1, 2, 3}) != 2 {
		t.Fatal("MeanOf wrong")
	}
}

func TestCDF(t *testing.T) {
	xs := []float64{0.1, 0.2, 0.2, 0.9}
	got := CDF(xs, []float64{0, 0.1, 0.2, 0.5, 1})
	want := []float64{0, 0.25, 0.75, 0.75, 1}
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-12 {
			t.Fatalf("CDF = %v, want %v", got, want)
		}
	}
	if out := CDF(nil, []float64{0.5}); out[0] != 0 {
		t.Fatal("CDF of empty sample should be 0")
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{3, 1, 2, 4}
	if Quantile(xs, 0.5) != 2 {
		t.Fatalf("median = %v", Quantile(xs, 0.5))
	}
	if Quantile(xs, 0) != 1 || Quantile(xs, 1) != 4 {
		t.Fatal("extreme quantiles wrong")
	}
	if Quantile(nil, 0.5) != 0 {
		t.Fatal("empty quantile should be 0")
	}
}

// Properties: rates are always within [0,1]; detection uses actual as
// denominator, FPR uses inferred.
func TestQuickRatesBounded(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(50)
		inferred, actual := bitset.New(n), bitset.New(n)
		for i := 0; i < n; i++ {
			if rng.Intn(2) == 0 {
				inferred.Add(i)
			}
			if rng.Intn(2) == 0 {
				actual.Add(i)
			}
		}
		if dr, ok := DetectionRate(inferred, actual); ok && (dr < 0 || dr > 1) {
			return false
		}
		if fpr, ok := FalsePositiveRate(inferred, actual); ok && (fpr < 0 || fpr > 1) {
			return false
		}
		// Perfect inference: dr = 1, fpr = 0.
		if !actual.IsEmpty() {
			dr, _ := DetectionRate(actual, actual)
			fpr, _ := FalsePositiveRate(actual, actual)
			if dr != 1 || fpr != 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// CDF is monotone non-decreasing in the evaluation points.
func TestQuickCDFMonotone(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		xs := make([]float64, 1+rng.Intn(40))
		for i := range xs {
			xs[i] = rng.Float64()
		}
		points := []float64{0, 0.25, 0.5, 0.75, 1}
		cdf := CDF(xs, points)
		for i := 1; i < len(cdf); i++ {
			if cdf[i] < cdf[i-1] {
				return false
			}
		}
		return cdf[len(cdf)-1] == 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
