// Package metrics implements the evaluation metrics of the paper:
// per-interval detection rate and false-positive rate for Boolean
// Inference (§3.2), absolute error and its mean/CDF for Probability
// Computation (§5.4).
package metrics

import (
	"math"
	"sort"

	"repro/internal/bitset"
)

// DetectionRate returns the fraction of actually congested links that
// were inferred congested during the interval. ok is false when no link
// was actually congested (the interval does not contribute to the
// average, as in the paper's definition).
func DetectionRate(inferred, actual *bitset.Set) (rate float64, ok bool) {
	total := actual.Count()
	if total == 0 {
		return 0, false
	}
	return float64(inferred.Intersect(actual).Count()) / float64(total), true
}

// FalsePositiveRate returns the fraction of links inferred congested
// that were actually good. ok is false when nothing was inferred.
func FalsePositiveRate(inferred, actual *bitset.Set) (rate float64, ok bool) {
	total := inferred.Count()
	if total == 0 {
		return 0, false
	}
	return float64(inferred.Difference(actual).Count()) / float64(total), true
}

// Mean accumulates a running average over contributing samples.
type Mean struct {
	sum float64
	n   int
}

// Add records one sample.
func (m *Mean) Add(x float64) { m.sum += x; m.n++ }

// AddIf records x only when ok (convenient with DetectionRate et al.).
func (m *Mean) AddIf(x float64, ok bool) {
	if ok {
		m.Add(x)
	}
}

// Value returns the average (0 with no samples).
func (m *Mean) Value() float64 {
	if m.n == 0 {
		return 0
	}
	return m.sum / float64(m.n)
}

// N returns the number of recorded samples.
func (m *Mean) N() int { return m.n }

// AbsErrors returns |est[i] − truth[i]| for the indices where
// include(i) is true (pass nil to include all).
func AbsErrors(est, truth []float64, include func(i int) bool) []float64 {
	if len(est) != len(truth) {
		panic("metrics: AbsErrors length mismatch")
	}
	var out []float64
	for i := range est {
		if include != nil && !include(i) {
			continue
		}
		out = append(out, math.Abs(est[i]-truth[i]))
	}
	return out
}

// MeanOf returns the arithmetic mean of xs (0 for empty input).
func MeanOf(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// CDF evaluates the empirical cumulative distribution of xs at each of
// the given points: the fraction of samples ≤ point.
func CDF(xs, points []float64) []float64 {
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	out := make([]float64, len(points))
	if len(sorted) == 0 {
		return out
	}
	for i, p := range points {
		// Upper bound: first index with value > p.
		k := sort.SearchFloat64s(sorted, math.Nextafter(p, math.Inf(1)))
		out[i] = float64(k) / float64(len(sorted))
	}
	return out
}

// Quantile returns the q-quantile (0 ≤ q ≤ 1) of xs by the
// nearest-rank method; 0 for empty input.
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	k := int(math.Ceil(q*float64(len(sorted)))) - 1
	if k < 0 {
		k = 0
	}
	if k >= len(sorted) {
		k = len(sorted) - 1
	}
	return sorted[k]
}
