package stream

import (
	"errors"
	"testing"

	"repro/internal/bitset"
)

// captureLog records AppendBatch calls and can inject failures.
type captureLog struct {
	calls   [][][]int // one entry per AppendBatch: the batch's index slices
	seq     uint64
	failErr error
}

func (l *captureLog) AppendBatch(batch []*bitset.Set) (uint64, error) {
	if l.failErr != nil {
		return l.seq, l.failErr
	}
	rec := make([][]int, len(batch))
	for i, s := range batch {
		rec[i] = s.Indices()
	}
	l.calls = append(l.calls, rec)
	l.seq += uint64(len(batch))
	return l.seq, nil
}

func obs(paths ...int) *bitset.Set { return bitset.FromIndices(8, paths...) }

func TestWindowAddBatchLogsBeforeApply(t *testing.T) {
	w := NewWindow(8, 4)
	log := &captureLog{}
	w.SetLog(log)
	seq, err := w.AddBatch([]*bitset.Set{obs(1), obs(2, 3)})
	if err != nil {
		t.Fatalf("AddBatch: %v", err)
	}
	if seq != 2 || w.Seq() != 2 || w.T() != 2 {
		t.Fatalf("seq=%d w.Seq=%d T=%d, want 2/2/2", seq, w.Seq(), w.T())
	}
	if len(log.calls) != 1 || len(log.calls[0]) != 2 {
		t.Fatalf("log captured %v, want one 2-interval record", log.calls)
	}
	if got := log.calls[0][1]; len(got) != 2 || got[0] != 2 || got[1] != 3 {
		t.Fatalf("logged second interval %v, want [2 3]", got)
	}
}

func TestWindowAddBatchLogErrorLeavesWindowUnchanged(t *testing.T) {
	w := NewWindow(8, 4)
	if _, err := w.AddBatch([]*bitset.Set{obs(0)}); err != nil {
		t.Fatal(err)
	}
	boom := errors.New("disk gone")
	w.SetLog(&captureLog{failErr: boom})
	seq, err := w.AddBatch([]*bitset.Set{obs(1), obs(2)})
	if !errors.Is(err, boom) {
		t.Fatalf("AddBatch error = %v, want injected", err)
	}
	if seq != 1 || w.Seq() != 1 || w.T() != 1 {
		t.Fatalf("window advanced past failed log: seq=%d T=%d", w.Seq(), w.T())
	}
	if w.CongestedFraction(1) != 0 {
		t.Fatal("rejected batch leaked into the window")
	}
}

// Add is the replay path: it must never touch the log.
func TestWindowAddBypassesLog(t *testing.T) {
	w := NewWindow(8, 4)
	log := &captureLog{}
	w.SetLog(log)
	w.Add(obs(1))
	if len(log.calls) != 0 {
		t.Fatalf("raw Add logged %v", log.calls)
	}
	if w.Seq() != 1 {
		t.Fatalf("Seq = %d, want 1", w.Seq())
	}
}

// The sharded store logs each batch exactly once — not once per shard
// — so replay reproduces commit order without duplication.
func TestShardedLogsOncePerBatch(t *testing.T) {
	shardOf := []int{0, 0, 1, 1, 2, 2, 0, 1}
	sh := NewSharded(8, 4, shardOf, 3)
	log := &captureLog{}
	sh.SetLog(log)
	if _, err := sh.AddBatch([]*bitset.Set{obs(0, 2, 4), obs(7)}); err != nil {
		t.Fatal(err)
	}
	if _, err := sh.AddBatch([]*bitset.Set{obs(5)}); err != nil {
		t.Fatal(err)
	}
	if len(log.calls) != 2 {
		t.Fatalf("logged %d records for 2 batches", len(log.calls))
	}
	// The record holds the full (unrouted) congested sets.
	if got := log.calls[0][0]; len(got) != 3 {
		t.Fatalf("first logged interval %v, want the unrouted [0 2 4]", got)
	}
	if sh.Seq() != 3 {
		t.Fatalf("Seq = %d, want 3", sh.Seq())
	}
}

func TestShardedAddBatchLogErrorLeavesStoreUnchanged(t *testing.T) {
	sh := NewSharded(8, 4, []int{0, 0, 1, 1, 0, 0, 1, 1}, 2)
	if _, err := sh.AddBatch([]*bitset.Set{obs(0)}); err != nil {
		t.Fatal(err)
	}
	boom := errors.New("disk gone")
	sh.SetLog(&captureLog{failErr: boom})
	seq, err := sh.AddBatch([]*bitset.Set{obs(1)})
	if !errors.Is(err, boom) {
		t.Fatalf("AddBatch error = %v, want injected", err)
	}
	if seq != 1 || sh.Seq() != 1 || sh.T() != 1 {
		t.Fatalf("store advanced past failed log: seq=%d T=%d", sh.Seq(), sh.T())
	}
}

// A window fast-forwarded to a recovered base sequence lays out
// intervals bit-identically to one grown from zero: ring positions
// are seq mod ringBits, independent of the base.
func TestResetSeqEquivalence(t *testing.T) {
	const numPaths, capacity = 8, 5
	const base = uint64(12345)
	a := NewWindow(numPaths, capacity)
	b := NewWindow(numPaths, capacity)
	b.ResetSeq(base)
	sets := []*bitset.Set{
		obs(0, 1), obs(2), obs(), obs(1, 3, 5), obs(7),
		obs(0), obs(4, 6), obs(2, 2), obs(5),
	}
	for _, s := range sets {
		a.Add(s)
		b.Add(s)
	}
	if b.Seq() != base+uint64(len(sets)) {
		t.Fatalf("b.Seq = %d", b.Seq())
	}
	if a.T() != b.T() {
		t.Fatalf("T mismatch: %d vs %d", a.T(), b.T())
	}
	probe := []*bitset.Set{obs(0), obs(1, 3), obs(5, 7), obs(0, 1, 2, 3, 4, 5, 6, 7)}
	for _, q := range probe {
		if ga, gb := a.GoodCount(q), b.GoodCount(q); ga != gb {
			t.Fatalf("GoodCount(%v): %d vs %d", q.Indices(), ga, gb)
		}
		if ca, cb := a.AllCongestedCount(q), b.AllCongestedCount(q); ca != cb {
			t.Fatalf("AllCongestedCount(%v): %d vs %d", q.Indices(), ca, cb)
		}
	}
	for t2 := 0; t2 < a.T(); t2++ {
		if !a.CongestedAt(t2).Equal(b.CongestedAt(t2)) {
			t.Fatalf("row %d differs", t2)
		}
	}
}

func TestResetSeqPanicsOnNonEmpty(t *testing.T) {
	w := NewWindow(8, 4)
	w.Add(obs(1))
	defer func() {
		if recover() == nil {
			t.Fatal("ResetSeq on a written window did not panic")
		}
	}()
	w.ResetSeq(7)
}
