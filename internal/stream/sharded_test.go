package stream

import (
	"math/rand"
	"sort"
	"sync"
	"testing"
	"testing/quick"

	"repro/internal/bitset"
)

// randomShardMap draws a path→shard mapping with numShards shards.
func randomShardMap(rng *rand.Rand, numPaths, numShards int) []int {
	m := make([]int, numPaths)
	for p := range m {
		m[p] = rng.Intn(numShards)
	}
	return m
}

// checkShardedAgainstWindow asserts every observe.Store query of sh is
// bit-identical to the single ring w (both fed the same intervals).
func checkShardedAgainstWindow(t *testing.T, rng *rand.Rand, sh *Sharded, w *Window, numPaths int) bool {
	t.Helper()
	if sh.T() != w.T() || sh.Seq() != w.Seq() || sh.Cap() != w.Cap() {
		t.Logf("T/Seq/Cap = %d/%d/%d, want %d/%d/%d", sh.T(), sh.Seq(), sh.Cap(), w.T(), w.Seq(), w.Cap())
		return false
	}
	for p := 0; p < numPaths; p++ {
		if sh.CongestedFraction(p) != w.CongestedFraction(p) {
			t.Logf("CongestedFraction(%d) = %v, want %v", p, sh.CongestedFraction(p), w.CongestedFraction(p))
			return false
		}
	}
	for q := 0; q < 12; q++ {
		// Query sets cross shards and include out-of-universe indices.
		paths := bitset.New(numPaths + 3)
		for p := 0; p < numPaths+3; p++ {
			if rng.Intn(4) == 0 {
				paths.Add(p)
			}
		}
		if got, want := sh.GoodCount(paths), w.GoodCount(paths); got != want {
			t.Logf("GoodCount(%s) = %d, want %d", paths, got, want)
			return false
		}
		if got, want := sh.AllCongestedCount(paths), w.AllCongestedCount(paths); got != want {
			t.Logf("AllCongestedCount(%s) = %d, want %d", paths, got, want)
			return false
		}
		lg, lc := sh.LogGoodFreq(paths)
		wg, wc := w.LogGoodFreq(paths)
		if lg != wg || lc != wc {
			t.Logf("LogGoodFreq(%s) = (%v,%v), want (%v,%v)", paths, lg, lc, wg, wc)
			return false
		}
	}
	for _, tol := range []float64{0, 0.05, 0.3, 1} {
		if !sh.AlwaysGoodPaths(tol).Equal(w.AlwaysGoodPaths(tol)) {
			t.Logf("AlwaysGoodPaths(%v) mismatch", tol)
			return false
		}
	}
	for tt := 0; tt < sh.T(); tt++ {
		if !sh.CongestedAt(tt).Equal(w.CongestedAt(tt)) {
			t.Logf("CongestedAt(%d) = %s, want %s", tt, sh.CongestedAt(tt), w.CongestedAt(tt))
			return false
		}
	}
	return true
}

// The partitioned window under randomized interleaved ingest and
// eviction must be query-for-query bit-identical to a single Window fed
// the same intervals — including after a shard remap (the topology
// changed, a fresh Sharded with a different mapping is rebuilt from the
// same stream). This is the property that lets the server swap the
// sharded layout in without touching any query semantics.
func TestQuickShardedMatchesSingleWindow(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		numPaths := 1 + rng.Intn(60)
		capacity := 1 + rng.Intn(120)
		numShards := 1 + rng.Intn(5)
		steps := rng.Intn(3*capacity + 20)
		sh := NewSharded(numPaths, capacity, randomShardMap(rng, numPaths, numShards), numShards)
		w := NewWindow(numPaths, capacity)
		var history []*bitset.Set
		for i := 0; i < steps; i++ {
			s := bitset.New(numPaths + 3)
			for p := 0; p < numPaths+3; p++ {
				if rng.Intn(4) == 0 {
					s.Add(p) // indices ≥ numPaths exercise the universe clamp
				}
			}
			sh.Add(s)
			w.Add(s)
			history = append(history, s)
			if i == steps-1 || rng.Intn(40) == 0 {
				if !checkShardedAgainstWindow(t, rng, sh, w, numPaths) {
					t.Logf("seed %d: mismatch after %d adds (cap %d, paths %d, shards %d)",
						seed, i+1, capacity, numPaths, numShards)
					return false
				}
			}
			// Occasionally remap: rebuild with a fresh random partition
			// (as after a topology change) and replay the whole stream.
			if rng.Intn(60) == 0 {
				numShards = 1 + rng.Intn(5)
				sh = NewSharded(numPaths, capacity, randomShardMap(rng, numPaths, numShards), numShards)
				for _, past := range history {
					sh.Add(past)
				}
				if !checkShardedAgainstWindow(t, rng, sh, w, numPaths) {
					t.Logf("seed %d: mismatch after remap to %d shards at step %d", seed, numShards, i+1)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestShardedSingleShardFallback(t *testing.T) {
	sh := NewSharded(5, 10, nil, 3) // nil mapping: partition unknown
	if sh.NumShards() != 1 {
		t.Fatalf("nil mapping should fall back to one shard, got %d", sh.NumShards())
	}
	sh = NewSharded(5, 10, []int{0, 0, 0, 0, 0}, 1)
	if sh.NumShards() != 1 {
		t.Fatalf("NumShards = %d, want 1", sh.NumShards())
	}
	sh.Add(bitset.FromIndices(5, 1, 3))
	if sh.T() != 1 || sh.GoodCount(bitset.FromIndices(5, 1)) != 0 {
		t.Fatal("single-shard fallback does not record")
	}
	if sh.ShardOf(4) != 0 {
		t.Fatal("ShardOf on fallback")
	}
}

// A cloned Sharded must be fully independent of the original.
func TestShardedCloneIndependent(t *testing.T) {
	shardOf := []int{0, 1, 0, 1}
	sh := NewSharded(4, 3, shardOf, 2)
	for i := 0; i < 5; i++ {
		sh.Add(bitset.FromIndices(4, i%4))
	}
	c := sh.Clone()
	q := bitset.FromIndices(4, 0, 1)
	before := c.GoodCount(q)
	sh.Add(bitset.FromIndices(4, 0, 1, 2, 3))
	sh.Add(bitset.FromIndices(4, 0, 1, 2, 3))
	if got := c.GoodCount(q); got != before {
		t.Fatalf("clone changed under mutation of the original: %d != %d", got, before)
	}
	if c.Seq() == sh.Seq() {
		t.Fatal("original did not advance")
	}
	if cs := sh.CloneStore(); cs.NumPaths() != 4 {
		t.Fatal("CloneStore")
	}
}

// AddBatch must be observationally identical to interval-by-interval
// Add: batching changes lock granularity, never ring contents.
func TestShardedAddBatchMatchesAdd(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	const numPaths, capacity, shards = 40, 64, 3
	mapping := randomShardMap(rng, numPaths, shards)
	a := NewSharded(numPaths, capacity, mapping, shards)
	b := NewSharded(numPaths, capacity, mapping, shards)
	w := NewWindow(numPaths, capacity)
	var batch []*bitset.Set
	for i := 0; i < 150; i++ {
		s := bitset.New(numPaths)
		for p := 0; p < numPaths; p++ {
			if rng.Intn(4) == 0 {
				s.Add(p)
			}
		}
		batch = append(batch, s)
		a.Add(s)
		w.Add(s)
		if len(batch) == 16 || i == 149 {
			b.AddBatch(batch)
			batch = batch[:0]
		}
	}
	if !checkShardedAgainstWindow(t, rng, a, w, numPaths) {
		t.Fatal("per-interval Add diverged from single window")
	}
	if !checkShardedAgainstWindow(t, rng, b, w, numPaths) {
		t.Fatal("AddBatch diverged from single window")
	}
}

// Concurrent ingest batches, per-shard clones and whole-store clones
// must neither race (run under -race in CI) nor break the lockstep
// invariant: every snapshot — per-shard or whole — observes a
// batch-atomic state, and the final store equals a serial replay of
// the batches in commit order.
func TestShardedConcurrentIngestAndClones(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	const numPaths, capacity, shards, batches, perBatch = 30, 128, 3, 40, 8
	mapping := randomShardMap(rng, numPaths, shards)
	sh := NewSharded(numPaths, capacity, mapping, shards)

	all := make([][]*bitset.Set, batches)
	for i := range all {
		all[i] = make([]*bitset.Set, perBatch)
		for j := range all[i] {
			s := bitset.New(numPaths)
			for p := 0; p < numPaths; p++ {
				if rng.Intn(5) == 0 {
					s.Add(p)
				}
			}
			all[i][j] = s
		}
	}

	var wg sync.WaitGroup
	commitSeq := make([]uint64, batches) // batch -> ingest seq after commit
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := g; i < batches; i += 4 {
				commitSeq[i], _ = sh.AddBatch(all[i])
			}
		}(g)
	}
	stop := make(chan struct{})
	var readers sync.WaitGroup
	for g := 0; g < 3; g++ {
		readers.Add(1)
		go func(g int) {
			defer readers.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				// Whole-store snapshots must be batch-atomic: every ring in
				// lockstep and the live count a multiple of the batch size
				// (until eviction pins it at capacity).
				c := sh.Clone()
				seq := c.Shard(0).Seq()
				for s := 1; s < shards; s++ {
					if c.Shard(s).Seq() != seq {
						t.Errorf("clone rings out of lockstep: %d vs %d", c.Shard(s).Seq(), seq)
						return
					}
				}
				if seq%perBatch != 0 {
					t.Errorf("clone split a batch: seq %d", seq)
					return
				}
				// Per-shard clones must also be batch-atomic.
				if got := sh.CloneShard(g % shards).Seq(); got%perBatch != 0 {
					t.Errorf("shard clone split a batch: seq %d", got)
					return
				}
				_ = sh.Seq()
			}
		}(g)
	}
	wg.Wait()
	close(stop)
	readers.Wait()
	if t.Failed() {
		t.FailNow()
	}

	// The final state equals a serial replay in commit order (the
	// post-batch sequence each AddBatch returned orders the commits).
	order := make([]int, batches)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool { return commitSeq[order[a]] < commitSeq[order[b]] })
	want := NewWindow(numPaths, capacity)
	for _, i := range order {
		for _, s := range all[i] {
			want.Add(s)
		}
	}
	if !checkShardedAgainstWindow(t, rng, sh, want, numPaths) {
		t.Fatal("concurrent ingest diverged from serial replay in commit order")
	}
}
