package stream

import "repro/internal/telemetry"

// metricEvictions counts intervals aged out of any window ring in the
// process (live windows and WAL replay alike; frozen clones never
// evict). A single atomic increment on the eviction path keeps the
// steady-state Add at 0 allocs/op, which the bench alloc gate enforces
// end to end through this counter.
var metricEvictions = telemetry.Default().Counter("tomod_window_evictions_total",
	"Intervals evicted from sliding-window rings (oldest-out at capacity).")
