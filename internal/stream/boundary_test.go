package stream

import (
	"fmt"
	"testing"

	"repro/internal/bitset"
	"repro/internal/observe"
)

// goodSet is the store surface the boundary cases probe.
type goodSet interface {
	AlwaysGoodPaths(tol float64) *bitset.Set
	CongestedFraction(p int) float64
}

// The always-good definition is an inclusive threshold: a path whose
// congested fraction lands exactly on the tolerance is always good.
// Recorder, Window and Sharded must all draw the boundary identically
// — they feed the same §5.2 frontier, and a one-store disagreement
// would split the estimators' shared universe.
func TestAlwaysGoodToleranceBoundary(t *testing.T) {
	const numPaths = 2 // path 0 is probed; path 1 keeps the stream non-trivial
	cases := []struct {
		tol       float64
		intervals int
		congested int // intervals in which path 0 is congested
		want      bool
	}{
		{0.25, 4, 1, true},   // fraction == tol exactly (representable)
		{0.25, 4, 2, false},  // just above
		{0.25, 4, 0, true},   // below
		{0.1, 10, 1, true},   // fraction == tol under rounding (1/10)
		{0.1, 10, 2, false},  // above
		{0, 10, 0, true},     // strict definition
		{0, 10, 1, false},    // strict definition violated once
		{0.5, 8, 4, true},    // == tol at the midpoint
		{0.5, 8, 5, false},   // above the midpoint
		{0.125, 8, 1, true},  // == tol, exact eighth
		{0.125, 8, 2, false}, // above
	}
	for _, tc := range cases {
		tc := tc
		name := fmt.Sprintf("tol=%v/%dof%d", tc.tol, tc.congested, tc.intervals)
		feed := func(add func(*bitset.Set)) {
			for i := 0; i < tc.intervals; i++ {
				s := bitset.New(numPaths)
				if i < tc.congested {
					s.Add(0)
				}
				if i%2 == 0 {
					s.Add(1)
				}
				add(s)
			}
		}
		check := func(t *testing.T, label string, st goodSet) {
			t.Helper()
			got := st.AlwaysGoodPaths(tc.tol).Contains(0)
			if got != tc.want {
				t.Fatalf("%s: fraction %v vs tol %v: always-good = %v, want %v",
					label, st.CongestedFraction(0), tc.tol, got, tc.want)
			}
		}
		t.Run(name, func(t *testing.T) {
			rec := observe.NewRecorder(numPaths)
			feed(rec.Add)
			check(t, "Recorder", rec)

			// A window exactly the stream's size: no eviction.
			w := NewWindow(numPaths, tc.intervals)
			feed(w.Add)
			check(t, "Window", w)

			// A window half the stream's size, fed the stream twice: the
			// boundary must hold on the surviving intervals only. The
			// second pass replays the same pattern, so the live window's
			// congested count for path 0 is min(congested, capacity)…
			// except the fraction now runs over `capacity` intervals, so
			// only streams whose pattern fits the window keep the exact
			// boundary; feeding the identical pattern twice does.
			evicting := NewWindow(numPaths, tc.intervals)
			feed(evicting.Add)
			feed(evicting.Add)
			check(t, "Window(evicting)", evicting)

			// Sharded: paths 0 and 1 on different rings.
			sh := NewSharded(numPaths, tc.intervals, []int{0, 1}, 2)
			feed(sh.Add)
			check(t, "Sharded", sh)

			// And the three must agree set-for-set, not just on path 0.
			if !rec.AlwaysGoodPaths(tc.tol).Equal(w.AlwaysGoodPaths(tc.tol)) ||
				!rec.AlwaysGoodPaths(tc.tol).Equal(sh.AlwaysGoodPaths(tc.tol)) {
				t.Fatal("stores disagree on the always-good set")
			}
		})
	}
}
