package stream

import (
	"math"
	"sync"

	"repro/internal/bitset"
	"repro/internal/observe"
)

// Store is the live ingest store of the streaming service: an
// observation store with ring semantics. Window implements it directly;
// Sharded implements it over one ring per correlation-set shard. The
// server programs against this interface so the sharded and single-ring
// layouts are interchangeable.
type Store interface {
	observe.Store
	observe.IntervalSource
	// Add appends one interval's congested-path set, evicting the
	// oldest interval when the window is full. Add bypasses any
	// attached BatchLog — it is the replay path.
	Add(congested *bitset.Set)
	// AddBatch appends a batch of intervals as one commit, logging it
	// to the attached BatchLog (if any) before applying. It returns
	// the sequence after the batch; on log failure nothing is applied.
	AddBatch(batch []*bitset.Set) (uint64, error)
	// SetLog attaches a write-ahead log; call only after replay, with
	// no ingest in flight.
	SetLog(l BatchLog)
	// ResetSeq fast-forwards an empty store to sequence number seq so
	// replay of a pruned log lands at the right ring positions.
	ResetSeq(seq uint64)
	// Seq returns the total number of intervals ever added.
	Seq() uint64
	// Cap returns the window capacity in intervals.
	Cap() int
	// CloneStore returns an independent deep copy (a frozen snapshot
	// safe for concurrent readers).
	CloneStore() Store
}

// CloneStore implements Store for Window.
func (w *Window) CloneStore() Store { return w.Clone() }

var (
	_ Store = (*Window)(nil)
	_ Store = (*Sharded)(nil)
)

// Sharded is a sliding-window observation store partitioned by a
// path→shard mapping (one ring per shard, all advancing in lockstep):
// every interval is routed to every shard, each shard's ring recording
// only the congestion of its own paths. Whole-universe queries combine
// the per-shard masks — ring geometry and sequence numbers are shared,
// so positions align across shards and the combined answers are
// bit-identical to a single Window fed the same intervals (property
// tested). Per-shard solver loops read one ring each through Shard,
// so a solve over shard A never touches shard B's masks.
//
// Ingest and snapshotting are internally synchronized with shard-aware
// granularity: AddBatch serializes batches on one ingest lock (batches
// stay atomic and ring lockstep holds) but applies each shard's column
// of the batch under that shard's own ring lock, and CloneShard takes
// only its shard's ring lock — so a shard solver cloning its ring
// waits for at most its own shard's slice of an in-flight batch, never
// for the whole multi-shard application. Whole-store reads (Clone,
// Seq, T) coordinate on the ingest lock. The remaining query surface
// (GoodCount, CongestedAt, …) stays caller-synchronized: the server
// only issues those against frozen clones.
//
// When the partition is unknown (a nil mapping or a single shard),
// Sharded degrades to exactly one ring and delegates to it.
type Sharded struct {
	numPaths int
	shardOf  []int // path -> shard; nil means everything in shard 0
	shards   []*Window

	// ingestMu serializes writers (and whole-store snapshots against
	// them); ringMu[s] guards shard s's ring state. Writers take
	// ingestMu then each ringMu in turn; readers take exactly one.
	ingestMu sync.Mutex
	ringMu   []sync.Mutex

	// pathMask[s] is the path universe owned by shard s; routing holds
	// one reusable congested-path scratch per shard, filled under
	// ingestMu (Window.Add copies its input, so reuse is safe). one is
	// Add's single-interval batch header, also guarded by ingestMu.
	pathMask []*bitset.Set
	routing  []*bitset.Set
	one      [1]*bitset.Set

	// log, when set, persists each batch once (under ingestMu, so log
	// order is commit order) before the shard fan-out applies it.
	log BatchLog
}

// NewSharded returns an empty sharded window over numPaths paths
// retaining at most capacity intervals per shard, routed by shardOf
// (length numPaths, values in [0, numShards)). A nil shardOf or
// numShards ≤ 1 falls back to a single shard.
func NewSharded(numPaths, capacity int, shardOf []int, numShards int) *Sharded {
	if numShards <= 1 || shardOf == nil {
		shardOf = nil
		numShards = 1
	} else {
		if len(shardOf) != numPaths {
			panic("stream: shard mapping length does not match path universe")
		}
		for _, s := range shardOf {
			if s < 0 || s >= numShards {
				panic("stream: shard index out of range")
			}
		}
	}
	sh := &Sharded{
		numPaths: numPaths,
		shardOf:  shardOf,
		shards:   make([]*Window, numShards),
		ringMu:   make([]sync.Mutex, numShards),
		pathMask: make([]*bitset.Set, numShards),
		routing:  make([]*bitset.Set, numShards),
	}
	for i := range sh.shards {
		sh.shards[i] = NewWindow(numPaths, capacity)
		sh.pathMask[i] = bitset.New(numPaths)
		sh.routing[i] = bitset.New(numPaths)
	}
	for p, s := range shardOf {
		sh.pathMask[s].Add(p)
	}
	if shardOf == nil {
		for p := 0; p < numPaths; p++ {
			sh.pathMask[0].Add(p)
		}
	}
	return sh
}

// NumShards returns the number of rings.
func (sh *Sharded) NumShards() int { return len(sh.shards) }

// ShardOf returns the shard of path p.
func (sh *Sharded) ShardOf(p int) int {
	if sh.shardOf == nil {
		return 0
	}
	return sh.shardOf[p]
}

// Shard returns shard s's ring. It implements observe.Store over the
// full path universe with only shard s's paths ever congested, which is
// exactly what a per-shard solve reads. The result must only be
// mutated through the Sharded's own Add/AddBatch; live reads of it
// must hold the shard's ring lock (use CloneShard for a frozen copy).
func (sh *Sharded) Shard(s int) *Window { return sh.shards[s] }

// CloneShard returns a frozen deep copy of shard s's ring, taking only
// that shard's ring lock: a shard solver snapshotting its input waits
// for at most its own shard's slice of an in-flight ingest batch.
func (sh *Sharded) CloneShard(s int) *Window {
	sh.ringMu[s].Lock()
	defer sh.ringMu[s].Unlock()
	return sh.shards[s].Clone()
}

// windowOf returns the ring owning path p.
func (sh *Sharded) windowOf(p int) *Window { return sh.shards[sh.ShardOf(p)] }

// Add appends one interval's congested-path set to every shard: each
// ring records the subset of congested paths it owns (possibly none —
// an all-good interval still advances every shard's frequencies).
// Indices outside the path universe are dropped, matching Window.
func (sh *Sharded) Add(congested *bitset.Set) {
	sh.ingestMu.Lock()
	defer sh.ingestMu.Unlock()
	sh.one[0] = congested
	sh.addBatchLocked(sh.one[:])
	sh.one[0] = nil
}

// AddBatch appends a batch of intervals to every shard, returning the
// ingest sequence after the batch. Batches are serialized on the
// ingest lock (so every ring sees every batch in the same order and
// lockstep holds), but each shard's column of the batch is applied
// under that shard's own ring lock — per-shard cloners (CloneShard)
// contend only with their own shard's application, never with the
// whole fan-out. With a log attached, the batch is persisted exactly
// once before the fan-out; on log failure nothing is applied and the
// pre-batch sequence is returned with the error.
func (sh *Sharded) AddBatch(batch []*bitset.Set) (uint64, error) {
	sh.ingestMu.Lock()
	defer sh.ingestMu.Unlock()
	if sh.log != nil {
		if _, err := sh.log.AppendBatch(batch); err != nil {
			return sh.shards[0].Seq(), err
		}
	}
	sh.addBatchLocked(batch)
	return sh.shards[0].Seq(), nil
}

// addBatchLocked applies the batch shard by shard; the caller holds
// ingestMu.
func (sh *Sharded) addBatchLocked(batch []*bitset.Set) {
	for s, w := range sh.shards {
		routed := sh.routing[s]
		sh.ringMu[s].Lock()
		for _, congested := range batch {
			if len(sh.shards) == 1 {
				w.Add(congested)
				continue
			}
			routed.Clear()
			routed.UnionWith(congested)
			routed.IntersectWith(sh.pathMask[s])
			w.Add(routed)
		}
		sh.ringMu[s].Unlock()
	}
}

// T returns the number of live intervals (identical across shards).
func (sh *Sharded) T() int {
	sh.ingestMu.Lock()
	defer sh.ingestMu.Unlock()
	return sh.shards[0].T()
}

// Cap returns the per-shard window capacity in intervals.
func (sh *Sharded) Cap() int { return sh.shards[0].Cap() }

// Seq returns the total number of intervals ever added.
func (sh *Sharded) Seq() uint64 {
	sh.ringMu[0].Lock()
	defer sh.ringMu[0].Unlock()
	return sh.shards[0].Seq()
}

// NumPaths returns the path universe size.
func (sh *Sharded) NumPaths() int { return sh.numPaths }

// CongestedFraction returns the fraction of live intervals in which
// path p was observed congested, read from p's own ring.
func (sh *Sharded) CongestedFraction(p int) float64 {
	return sh.windowOf(p).CongestedFraction(p)
}

// CongestedAt returns the congested-path set of the t-th live interval,
// oldest first: the union of the per-shard rows at that position. The
// result is freshly allocated (unlike Window's zero-copy row view) and
// reflects the store only until the next Add.
func (sh *Sharded) CongestedAt(t int) *bitset.Set {
	if len(sh.shards) == 1 {
		return sh.shards[0].CongestedAt(t)
	}
	out := bitset.New(sh.numPaths)
	for _, w := range sh.shards {
		out.UnionWith(w.CongestedAt(t))
	}
	return out
}

// GoodCount returns the number of live intervals in which every path in
// the set was good. Exactly Window.GoodCount, except each path's mask
// is read from its owning ring: rings share geometry and sequence, so
// the OR spans shards position-for-position.
func (sh *Sharded) GoodCount(paths *bitset.Set) int {
	w0 := sh.shards[0]
	if w0.count == 0 {
		return 0
	}
	sp := observe.GetScratch(w0.ringWords)
	sc := *sp
	for i := range sc {
		sc[i] = 0
	}
	paths.ForEach(func(p int) bool {
		if p < sh.numPaths {
			bitset.OrWordsInto(sc, sh.windowOf(p).cong[p])
		}
		return true
	})
	bad := bitset.PopCountWords(sc)
	observe.PutScratch(sp)
	return w0.count - bad
}

// GoodFreq returns the empirical probability that all paths in the set
// were simultaneously good within the window.
func (sh *Sharded) GoodFreq(paths *bitset.Set) float64 {
	if sh.T() == 0 {
		return 1
	}
	return float64(sh.GoodCount(paths)) / float64(sh.T())
}

// LogGoodFreq returns log P̂(∩ Y_p = 0) over the window, clamping a
// zero count to half an observation exactly like Window and Recorder.
func (sh *Sharded) LogGoodFreq(paths *bitset.Set) (logp float64, clamped bool) {
	if sh.T() == 0 {
		return 0, false
	}
	c := sh.GoodCount(paths)
	if c == 0 {
		return math.Log(0.5 / float64(sh.T())), true
	}
	return math.Log(float64(c) / float64(sh.T())), false
}

// AllCongestedCount returns the number of live intervals in which every
// path in the set was simultaneously congested: Window.AllCongestedCount
// with each mask read from its owning ring.
func (sh *Sharded) AllCongestedCount(paths *bitset.Set) int {
	w0 := sh.shards[0]
	if paths.IsEmpty() {
		return w0.count
	}
	if w0.count == 0 {
		return 0
	}
	sp := observe.GetScratch(w0.ringWords)
	sc := *sp
	w0.liveMask(sc)
	empty := false
	paths.ForEach(func(p int) bool {
		if p >= sh.numPaths {
			// A path outside the universe was never observed congested.
			empty = true
			return false
		}
		bitset.AndWordsInto(sc, sh.windowOf(p).cong[p])
		return true
	})
	n := 0
	if !empty {
		n = bitset.PopCountWords(sc)
	}
	observe.PutScratch(sp)
	return n
}

// AllCongestedFreq is AllCongestedCount normalized by T.
func (sh *Sharded) AllCongestedFreq(paths *bitset.Set) float64 {
	if sh.T() == 0 {
		return 0
	}
	return float64(sh.AllCongestedCount(paths)) / float64(sh.T())
}

// AlwaysGoodPaths returns the paths whose congested fraction within the
// window is ≤ tol; on an empty window all paths are vacuously good.
func (sh *Sharded) AlwaysGoodPaths(tol float64) *bitset.Set {
	out := bitset.New(sh.numPaths)
	if sh.T() == 0 {
		for p := 0; p < sh.numPaths; p++ {
			out.Add(p)
		}
		return out
	}
	for p := 0; p < sh.numPaths; p++ {
		if sh.CongestedFraction(p) <= tol {
			out.Add(p)
		}
	}
	return out
}

// Clone returns an independent deep copy of every ring, taken under
// the ingest lock so the copy observes a batch-atomic lockstep state.
func (sh *Sharded) Clone() *Sharded {
	sh.ingestMu.Lock()
	defer sh.ingestMu.Unlock()
	c := &Sharded{
		numPaths: sh.numPaths,
		shardOf:  sh.shardOf, // immutable after construction
		shards:   make([]*Window, len(sh.shards)),
		ringMu:   make([]sync.Mutex, len(sh.shards)),
		pathMask: sh.pathMask, // immutable after construction
		routing:  make([]*bitset.Set, len(sh.shards)),
	}
	for i, w := range sh.shards {
		c.shards[i] = w.Clone()
		c.routing[i] = bitset.New(sh.numPaths)
	}
	return c
}

// CloneStore implements Store.
func (sh *Sharded) CloneStore() Store { return sh.Clone() }
