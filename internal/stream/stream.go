// Package stream provides the sliding-window observation store behind
// the streaming tomography service: an observe.Store over only the most
// recent intervals, with O(words) add and evict.
//
// The layout is the columnar bitmask layout of observe.Recorder bent
// into a ring: each path keeps one congestion bitmask over *ring
// positions* rather than over absolute interval numbers. The ring spans
// ringWords = ⌈capacity/64⌉ whole words, so an interval with sequence
// number s occupies bit position s mod (ringWords·64); because at most
// `capacity` intervals are live at once, live intervals never collide,
// and evicting the oldest interval just clears its bit in the masks of
// the paths that were congested in it (found via the retained row
// view). The invariant that makes the queries cheap is that every dead
// ring position is zero in every mask:
//
//   - GoodCount is, exactly as in the Recorder, T − popcount(OR of the
//     per-path masks) — dead positions contribute nothing to the OR;
//   - AllCongestedCount ANDs the masks into a live-position mask
//     (a cyclic bit range, built in O(words));
//   - AlwaysGoodPaths reads per-path congestion counters maintained by
//     Add and evict.
//
// Like the Recorder, queries draw scratch from the shared pool in
// observe and are therefore allocation-free on the steady-state path
// and safe for concurrent readers; Add must be serialized against them
// by the caller (the server does so with a mutex, publishing frozen
// Clones for query traffic).
package stream

import (
	"math"

	"repro/internal/bitset"
	"repro/internal/observe"
)

const wordBits = 64

// Window is a sliding-window observation store over the most recent
// intervals. It implements observe.Store, so the Correlation-complete
// solver runs over it directly.
type Window struct {
	numPaths  int
	capacity  int // max live intervals
	ringWords int // words spanned by the ring: ⌈capacity/64⌉

	// rows is the row-view ring: rows[s mod capacity] is the congested
	// path set of the interval with sequence number s. Slots are reused
	// across laps, so steady-state Add does not allocate.
	rows []*bitset.Set

	congCount []int // per path: live intervals observed congested

	// cong[p] is the columnar mask of path p over ring positions,
	// ragged like the Recorder's: trailing zero words are not stored,
	// so a never-congested path costs nothing.
	cong [][]uint64

	count int    // live intervals, ≤ capacity
	seq   uint64 // total intervals ever added

	// log, when set, persists batches before AddBatch applies them.
	// Clones do not carry it: a frozen snapshot must never re-log.
	log BatchLog
}

var (
	_ observe.Store          = (*Window)(nil)
	_ observe.IntervalSource = (*Window)(nil)
)

// NewWindow returns an empty window over numPaths paths retaining at
// most capacity intervals.
func NewWindow(numPaths, capacity int) *Window {
	if numPaths < 0 {
		panic("stream: negative path count")
	}
	if capacity <= 0 {
		panic("stream: window capacity must be positive")
	}
	return &Window{
		numPaths:  numPaths,
		capacity:  capacity,
		ringWords: (capacity + wordBits - 1) / wordBits,
		rows:      make([]*bitset.Set, capacity),
		congCount: make([]int, numPaths),
		cong:      make([][]uint64, numPaths),
	}
}

// ringBits is the number of bit positions in the ring.
func (w *Window) ringBits() int { return w.ringWords * wordBits }

// slotOf returns the ring bit position of the interval with sequence
// number s.
func (w *Window) slotOf(s uint64) int { return int(s % uint64(w.ringBits())) }

// Add appends one interval's congested-path set, evicting the oldest
// interval when the window is full. Indices outside the path universe
// are dropped, matching observe.Recorder. The set is copied; steady
// state (after the first lap of the ring) allocates nothing.
func (w *Window) Add(congested *bitset.Set) {
	if w.count == w.capacity {
		w.evict()
	}
	row := w.rows[w.seq%uint64(w.capacity)]
	if row == nil {
		row = bitset.New(w.numPaths)
		w.rows[w.seq%uint64(w.capacity)] = row
	} else {
		row.Clear()
	}
	slot := w.slotOf(w.seq)
	wi, bit := slot/wordBits, uint64(1)<<uint(slot%wordBits)
	congested.ForEach(func(p int) bool {
		if p >= w.numPaths {
			return true
		}
		row.Add(p)
		w.congCount[p]++
		m := w.cong[p]
		for len(m) <= wi {
			m = append(m, 0)
		}
		m[wi] |= bit
		w.cong[p] = m
		return true
	})
	w.count++
	w.seq++
}

// evict removes the oldest interval: its bit is cleared in the mask of
// every path congested in it (good paths never had the bit set), which
// restores the dead-positions-are-zero invariant.
func (w *Window) evict() {
	s := w.seq - uint64(w.count)
	slot := w.slotOf(s)
	wi, bit := slot/wordBits, uint64(1)<<uint(slot%wordBits)
	w.rows[s%uint64(w.capacity)].ForEach(func(p int) bool {
		w.congCount[p]--
		w.cong[p][wi] &^= bit
		return true
	})
	w.count--
	metricEvictions.Inc()
}

// T returns the number of live intervals (≤ Cap).
func (w *Window) T() int { return w.count }

// Cap returns the window capacity in intervals.
func (w *Window) Cap() int { return w.capacity }

// NumPaths returns the path universe size.
func (w *Window) NumPaths() int { return w.numPaths }

// Seq returns the total number of intervals ever added; the live window
// covers sequence numbers [Seq−T, Seq).
func (w *Window) Seq() uint64 { return w.seq }

// SeqLow returns the sequence number of the oldest live interval, i.e.
// Seq−T. Intervals below SeqLow have been evicted from the ring and can
// no longer be replayed from this window.
func (w *Window) SeqLow() uint64 { return w.seq - uint64(w.count) }

// CongestedAt returns the congested-path set of the t-th live interval,
// oldest first (t in [0, T())). The result must not be modified and is
// valid only until the next Add, which may reuse the row's storage; the
// server only calls this on frozen clones.
func (w *Window) CongestedAt(t int) *bitset.Set {
	if t < 0 || t >= w.count {
		panic("stream: CongestedAt index out of window")
	}
	s := w.seq - uint64(w.count) + uint64(t)
	return w.rows[s%uint64(w.capacity)]
}

// CongestedFraction returns the fraction of live intervals in which
// path p was observed congested.
func (w *Window) CongestedFraction(p int) float64 {
	if w.count == 0 {
		return 0
	}
	return float64(w.congCount[p]) / float64(w.count)
}

// GoodCount returns the number of live intervals in which every path in
// the set was good: T minus the popcount of the OR of the per-path
// masks (dead ring positions are zero in every mask).
func (w *Window) GoodCount(paths *bitset.Set) int {
	if w.count == 0 {
		return 0
	}
	sp := observe.GetScratch(w.ringWords)
	sc := *sp
	for i := range sc {
		sc[i] = 0
	}
	paths.ForEach(func(p int) bool {
		if p < w.numPaths {
			bitset.OrWordsInto(sc, w.cong[p])
		}
		return true
	})
	bad := bitset.PopCountWords(sc)
	observe.PutScratch(sp)
	return w.count - bad
}

// GoodFreq returns the empirical probability that all paths in the set
// were simultaneously good within the window.
func (w *Window) GoodFreq(paths *bitset.Set) float64 {
	if w.count == 0 {
		return 1
	}
	return float64(w.GoodCount(paths)) / float64(w.count)
}

// LogGoodFreq returns log P̂(∩ Y_p = 0) over the window, clamping a
// zero count to half an observation exactly like observe.Recorder.
func (w *Window) LogGoodFreq(paths *bitset.Set) (logp float64, clamped bool) {
	if w.count == 0 {
		return 0, false
	}
	c := w.GoodCount(paths)
	if c == 0 {
		return math.Log(0.5 / float64(w.count)), true
	}
	return math.Log(float64(c) / float64(w.count)), false
}

// AllCongestedCount returns the number of live intervals in which every
// path in the set was simultaneously congested: the popcount of the AND
// of the per-path masks restricted to live ring positions.
func (w *Window) AllCongestedCount(paths *bitset.Set) int {
	if paths.IsEmpty() {
		return w.count
	}
	if w.count == 0 {
		return 0
	}
	sp := observe.GetScratch(w.ringWords)
	sc := *sp
	w.liveMask(sc)
	empty := false
	paths.ForEach(func(p int) bool {
		if p >= w.numPaths {
			// A path outside the universe was never observed congested.
			empty = true
			return false
		}
		bitset.AndWordsInto(sc, w.cong[p])
		return true
	})
	n := 0
	if !empty {
		n = bitset.PopCountWords(sc)
	}
	observe.PutScratch(sp)
	return n
}

// AllCongestedFreq is AllCongestedCount normalized by T.
func (w *Window) AllCongestedFreq(paths *bitset.Set) float64 {
	if w.count == 0 {
		return 0
	}
	return float64(w.AllCongestedCount(paths)) / float64(w.count)
}

// AlwaysGoodPaths returns the paths whose congested fraction within the
// window is ≤ tol; on an empty window all paths are vacuously good.
func (w *Window) AlwaysGoodPaths(tol float64) *bitset.Set {
	out := bitset.New(w.numPaths)
	if w.count == 0 {
		for p := 0; p < w.numPaths; p++ {
			out.Add(p)
		}
		return out
	}
	for p := 0; p < w.numPaths; p++ {
		if w.CongestedFraction(p) <= tol {
			out.Add(p)
		}
	}
	return out
}

// liveMask fills sc (ringWords words) with a 1 at every live ring
// position: the cyclic bit range of the window's count positions
// starting at the oldest interval's slot.
func (w *Window) liveMask(sc []uint64) {
	for i := range sc {
		sc[i] = 0
	}
	a := w.slotOf(w.seq - uint64(w.count))
	if end := a + w.count; end <= w.ringBits() {
		setBitRange(sc, a, end)
	} else {
		setBitRange(sc, a, w.ringBits())
		setBitRange(sc, 0, end-w.ringBits())
	}
}

// setBitRange sets bits [lo, hi) in sc.
func setBitRange(sc []uint64, lo, hi int) {
	if lo >= hi {
		return
	}
	lw, hw := lo/wordBits, (hi-1)/wordBits
	loMask := ^uint64(0) << uint(lo%wordBits)
	hiMask := ^uint64(0) >> uint(wordBits-1-(hi-1)%wordBits)
	if lw == hw {
		sc[lw] |= loMask & hiMask
		return
	}
	sc[lw] |= loMask
	for i := lw + 1; i < hw; i++ {
		sc[i] = ^uint64(0)
	}
	sc[hw] |= hiMask
}

// Clone returns an independent deep copy of the window. The server's
// solver loop clones the live window under the ingest lock and computes
// over the frozen copy, so queries and ingest never contend with the
// solver.
func (w *Window) Clone() *Window {
	c := &Window{
		numPaths:  w.numPaths,
		capacity:  w.capacity,
		ringWords: w.ringWords,
		rows:      make([]*bitset.Set, len(w.rows)),
		congCount: append([]int(nil), w.congCount...),
		cong:      make([][]uint64, len(w.cong)),
		count:     w.count,
		seq:       w.seq,
	}
	for i, r := range w.rows {
		if r != nil {
			c.rows[i] = r.Clone()
		}
	}
	for p, m := range w.cong {
		if m != nil {
			c.cong[p] = append([]uint64(nil), m...)
		}
	}
	return c
}
