package stream

import "repro/internal/bitset"

// BatchLog is the durability hook of the ingest path: a write-ahead
// log that persists an observation batch before it is applied to the
// window. *wal.WAL implements it; the interface lives here so stream
// does not import the wal package.
//
// AppendBatch must persist the batch as one atomic record and return
// the sequence number after it (base seq + len(batch)). An error means
// nothing may be applied: the caller drops the batch so the store never
// runs ahead of the log.
type BatchLog interface {
	AppendBatch(batch []*bitset.Set) (uint64, error)
}

// SetLog attaches a write-ahead log to the window. Every subsequent
// AddBatch logs before applying; Add stays raw (it is the replay path,
// which must not re-log recovered records). Attach the log only after
// replay, and only while no ingest is in flight.
func (w *Window) SetLog(l BatchLog) { w.log = l }

// AddBatch appends a batch of intervals, logging it first when a log
// is attached. On log failure nothing is applied and the pre-batch
// sequence is returned with the error: the window never runs ahead of
// the durable log.
func (w *Window) AddBatch(batch []*bitset.Set) (uint64, error) {
	if w.log != nil {
		if _, err := w.log.AppendBatch(batch); err != nil {
			return w.seq, err
		}
	}
	for _, congested := range batch {
		w.Add(congested)
	}
	return w.seq, nil
}

// ResetSeq fast-forwards an empty window to sequence number seq, so a
// store rebuilt from a pruned log resumes at the log's first retained
// record. Ring positions are seq mod ringBits, so a window based at any
// seq lays out intervals bit-identically to one grown from zero. Panics
// if the window has ever been written.
func (w *Window) ResetSeq(seq uint64) {
	if w.seq != 0 || w.count != 0 {
		panic("stream: ResetSeq on a non-empty window")
	}
	w.seq = seq
}

// SetLog attaches a write-ahead log to the sharded store. AddBatch
// logs each batch exactly once (under the ingest lock, so the log
// order is the commit order) before fanning it out to the shards; Add
// stays raw for replay. Attach only after replay, with no ingest in
// flight.
func (sh *Sharded) SetLog(l BatchLog) {
	sh.ingestMu.Lock()
	defer sh.ingestMu.Unlock()
	sh.log = l
}

// ResetSeq fast-forwards every (empty) shard ring to sequence number
// seq; see Window.ResetSeq.
func (sh *Sharded) ResetSeq(seq uint64) {
	sh.ingestMu.Lock()
	defer sh.ingestMu.Unlock()
	for _, w := range sh.shards {
		w.ResetSeq(seq)
	}
}
