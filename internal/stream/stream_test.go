package stream

import (
	"math/rand"
	"sync"
	"testing"
	"testing/quick"

	"repro/internal/bitset"
	"repro/internal/observe"
)

// rebuild returns a fresh Recorder holding exactly the given intervals.
func rebuild(numPaths int, intervals []*bitset.Set) *observe.Recorder {
	r := observe.NewRecorder(numPaths)
	for _, s := range intervals {
		r.Add(s)
	}
	return r
}

// checkAgainst asserts that every query of w matches a fresh Recorder
// built from the surviving intervals.
func checkAgainst(t *testing.T, rng *rand.Rand, w *Window, numPaths int, history []*bitset.Set) bool {
	t.Helper()
	live := len(history)
	if live > w.Cap() {
		live = w.Cap()
	}
	ref := rebuild(numPaths, history[len(history)-live:])
	if w.T() != ref.T() {
		t.Logf("T = %d, want %d", w.T(), ref.T())
		return false
	}
	for p := 0; p < numPaths; p++ {
		if w.CongestedFraction(p) != ref.CongestedFraction(p) {
			t.Logf("CongestedFraction(%d) = %v, want %v", p, w.CongestedFraction(p), ref.CongestedFraction(p))
			return false
		}
	}
	for q := 0; q < 15; q++ {
		// Query sets include out-of-universe indices to exercise the
		// clamping, exactly like the Recorder's own property test.
		paths := bitset.New(numPaths + 3)
		for p := 0; p < numPaths+3; p++ {
			if rng.Intn(5) == 0 {
				paths.Add(p)
			}
		}
		if got, want := w.GoodCount(paths), ref.GoodCount(paths); got != want {
			t.Logf("GoodCount(%s) = %d, want %d (T=%d cap=%d)", paths, got, want, w.T(), w.Cap())
			return false
		}
		if got, want := w.AllCongestedCount(paths), ref.AllCongestedCount(paths); got != want {
			t.Logf("AllCongestedCount(%s) = %d, want %d (T=%d cap=%d)", paths, got, want, w.T(), w.Cap())
			return false
		}
	}
	for _, tol := range []float64{0, 0.05, 0.3, 1} {
		if !w.AlwaysGoodPaths(tol).Equal(ref.AlwaysGoodPaths(tol)) {
			t.Logf("AlwaysGoodPaths(%v) = %s, want %s", tol, w.AlwaysGoodPaths(tol), ref.AlwaysGoodPaths(tol))
			return false
		}
	}
	return true
}

// The sliding window after N adds (and however many evictions those
// imply) must be indistinguishable from a Recorder rebuilt from scratch
// over the surviving intervals, across randomized window sizes, path
// counts, and interval counts that straddle word boundaries and ring
// wrap-around.
func TestQuickWindowMatchesFreshRecorder(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		numPaths := 1 + rng.Intn(70)
		capacity := 1 + rng.Intn(140)
		steps := rng.Intn(3*capacity + 20)
		w := NewWindow(numPaths, capacity)
		var history []*bitset.Set
		for i := 0; i < steps; i++ {
			s := bitset.New(numPaths + 3)
			for p := 0; p < numPaths+3; p++ {
				if rng.Intn(4) == 0 {
					s.Add(p) // indices ≥ numPaths exercise the universe clamp
				}
			}
			w.Add(s)
			history = append(history, s)
			// Spot-check a few intermediate states, always the final one.
			if i == steps-1 || rng.Intn(40) == 0 {
				if !checkAgainst(t, rng, w, numPaths, history) {
					t.Logf("seed %d: mismatch after %d adds (cap %d, paths %d)", seed, i+1, capacity, numPaths)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestWindowEviction(t *testing.T) {
	w := NewWindow(3, 2)
	w.Add(bitset.FromIndices(3, 0))
	w.Add(bitset.FromIndices(3, 0, 1))
	if w.T() != 2 || w.Seq() != 2 {
		t.Fatalf("T=%d Seq=%d", w.T(), w.Seq())
	}
	// Path 0 congested in both live intervals.
	if got := w.CongestedFraction(0); got != 1 {
		t.Fatalf("CongestedFraction(0) = %v", got)
	}
	// Third add evicts the first interval.
	w.Add(bitset.New(3))
	if w.T() != 2 || w.Seq() != 3 {
		t.Fatalf("after evict: T=%d Seq=%d", w.T(), w.Seq())
	}
	if got := w.CongestedFraction(0); got != 0.5 {
		t.Fatalf("after evict: CongestedFraction(0) = %v", got)
	}
	// Window now holds {0,1} and {}: both paths good only in the last.
	if got := w.GoodCount(bitset.FromIndices(3, 0, 1)); got != 1 {
		t.Fatalf("GoodCount = %d", got)
	}
	if got := w.AllCongestedCount(bitset.FromIndices(3, 0, 1)); got != 1 {
		t.Fatalf("AllCongestedCount = %d", got)
	}
}

func TestWindowAddCopiesInput(t *testing.T) {
	w := NewWindow(3, 4)
	s := bitset.FromIndices(3, 0)
	w.Add(s)
	s.Add(1) // mutating the caller's set must not affect the window
	if w.GoodCount(bitset.FromIndices(3, 1)) != 1 {
		t.Fatal("Add did not copy its input")
	}
}

func TestWindowEmpty(t *testing.T) {
	w := NewWindow(2, 5)
	if w.GoodFreq(bitset.FromIndices(2, 0)) != 1 {
		t.Fatal("empty window GoodFreq should be 1")
	}
	if w.AllCongestedFreq(bitset.FromIndices(2, 0)) != 0 {
		t.Fatal("empty window AllCongestedFreq should be 0")
	}
	if lp, clamped := w.LogGoodFreq(bitset.FromIndices(2, 0)); lp != 0 || clamped {
		t.Fatal("empty window LogGoodFreq should be 0, unclamped")
	}
	if !w.AlwaysGoodPaths(0).Equal(bitset.FromIndices(2, 0, 1)) {
		t.Fatal("all paths always good on empty window")
	}
}

func TestWindowCloneIndependent(t *testing.T) {
	w := NewWindow(4, 3)
	for i := 0; i < 5; i++ {
		w.Add(bitset.FromIndices(4, i%4))
	}
	c := w.Clone()
	before := c.GoodCount(bitset.FromIndices(4, 0, 1))
	w.Add(bitset.FromIndices(4, 0, 1, 2, 3))
	w.Add(bitset.FromIndices(4, 0, 1, 2, 3))
	if got := c.GoodCount(bitset.FromIndices(4, 0, 1)); got != before {
		t.Fatalf("clone changed under mutation of the original: %d != %d", got, before)
	}
	if c.Seq() == w.Seq() {
		t.Fatal("original did not advance")
	}
}

// Steady-state adds (with eviction) and queries must not allocate: the
// contract that keeps ingest throughput flat once the ring has wrapped.
func TestWindowSteadyStateAllocationFree(t *testing.T) {
	if raceEnabled {
		t.Skip("sync.Pool drops items at random under -race")
	}
	const numPaths, capacity = 64, 100 // capacity deliberately not a word multiple
	rng := rand.New(rand.NewSource(11))
	pool := make([]*bitset.Set, 16)
	for i := range pool {
		s := bitset.New(numPaths)
		for p := 0; p < numPaths; p++ {
			if rng.Intn(5) == 0 {
				s.Add(p)
			}
		}
		pool[i] = s
	}
	w := NewWindow(numPaths, capacity)
	for i := 0; i < 3*capacity; i++ { // wrap the ring: all slots and masks warm
		w.Add(pool[i%len(pool)])
	}
	paths := bitset.FromIndices(numPaths, 1, 17, 40, 63)
	w.GoodCount(paths) // warm the shared scratch pool
	i := 0
	if avg := testing.AllocsPerRun(100, func() {
		w.Add(pool[i%len(pool)])
		i++
		w.GoodCount(paths)
		w.AllCongestedCount(paths)
	}); avg != 0 {
		t.Fatalf("steady-state add+query allocates %v times per run, want 0", avg)
	}
}

// A frozen window must serve many concurrent readers: this is the
// snapshot query path of the streaming server (run under -race in CI).
func TestWindowConcurrentReaders(t *testing.T) {
	const numPaths, capacity = 80, 90
	rng := rand.New(rand.NewSource(5))
	w := NewWindow(numPaths, capacity)
	for i := 0; i < 2*capacity; i++ {
		s := bitset.New(numPaths)
		for p := 0; p < numPaths; p++ {
			if rng.Intn(4) == 0 {
				s.Add(p)
			}
		}
		w.Add(s)
	}
	queries := make([]*bitset.Set, 8)
	want := make([]int, len(queries))
	wantAll := make([]int, len(queries))
	for i := range queries {
		q := bitset.New(numPaths)
		for p := 0; p < numPaths; p++ {
			if rng.Intn(6) == 0 {
				q.Add(p)
			}
		}
		queries[i] = q
		want[i] = w.GoodCount(q)
		wantAll[i] = w.AllCongestedCount(q)
	}
	var wg sync.WaitGroup
	errs := make(chan string, 64)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for rep := 0; rep < 200; rep++ {
				i := (g + rep) % len(queries)
				if got := w.GoodCount(queries[i]); got != want[i] {
					errs <- "GoodCount raced"
					return
				}
				if got := w.AllCongestedCount(queries[i]); got != wantAll[i] {
					errs <- "AllCongestedCount raced"
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for msg := range errs {
		t.Fatal(msg)
	}
}
