package server

import (
	"runtime"
	"runtime/debug"
	"time"

	"repro/internal/estimator"
	"repro/internal/telemetry"
)

// The server's operational metrics, registered once against the
// process-wide telemetry registry (package-level so the epoch solver
// loop and the ingest path observe through pre-resolved handles —
// never a Vec.With lookup — keeping those hot paths at 0 allocs/op).
// Naming follows Prometheus conventions: tomod_ prefix, _total for
// counters, base-unit suffixes (_seconds), constant-cardinality labels
// only (route, code, stage, path, shard, reason).
var (
	metricIngestBatches = telemetry.Default().Counter("tomod_ingest_batches_total",
		"Ingest batches committed to the window (one POST /v1/observations may split at checkpoint strides; this counts caller batches).")
	metricIngestIntervals = telemetry.Default().Counter("tomod_ingest_intervals_total",
		"Intervals committed to the sliding window.")
	metricIngestRejected = telemetry.Default().CounterVec("tomod_ingest_rejected_total",
		"Rejected ingest requests by reason.", "reason")
	rejBadRequest = metricIngestRejected.With("bad_request")
	rejBadPath    = metricIngestRejected.With("bad_path")
	rejTooLarge   = metricIngestRejected.With("payload_too_large")
	rejWAL        = metricIngestRejected.With("wal_unavailable")
	rejShard      = metricIngestRejected.With("shard_unavailable")

	metricHTTPRequests = telemetry.Default().CounterVec("tomod_http_requests_total",
		"HTTP requests served, by route pattern and response code.", "route", "code")
	metricHTTPInFlight = telemetry.Default().Gauge("tomod_http_in_flight_requests",
		"HTTP requests currently being served.")
	metricHTTPDuration = telemetry.Default().HistogramVec("tomod_http_request_duration_seconds",
		"HTTP request latency by route pattern.", telemetry.ExpBuckets(1e-4, 4, 10), "route")

	metricEpochSolves = telemetry.Default().CounterVec("tomod_epoch_solves_total",
		"Published epoch solves by plan path: cold (structural rebuild), warm (carried-forward plan), repaired (warm after the tier-1 Plan.Repair re-key), repaired_numeric (warm after the tier-2 Plan.RepairNumeric factorization patch).", "path")
	solvesCold            = metricEpochSolves.With("cold")
	solvesWarm            = metricEpochSolves.With("warm")
	solvesRepaired        = metricEpochSolves.With("repaired")
	solvesRepairedNumeric = metricEpochSolves.With("repaired_numeric")

	metricRepairFailed = telemetry.Default().Counter("tomod_plan_repair_failed_total",
		"Cold epoch solves that first attempted a plan repair and failed — the drift was unrepairable — as opposed to cold solves forced by a config or topology change.")

	// Stage buckets span ~1µs (a Plan.Repair re-key) to ~4s (a large
	// cold rebuild): repair lives in the first buckets, warm solve
	// tails mid-range, cold rebuilds at the top.
	metricStageSeconds = telemetry.Default().HistogramVec("tomod_epoch_compute_seconds",
		"Epoch solve wall time by stage: rebuild (cold structural phase), repair (Plan.Repair re-key), solve (shared solve tail).",
		telemetry.ExpBuckets(1e-6, 4, 12), "stage")
	stageRebuild = metricStageSeconds.With("rebuild")
	stageRepair  = metricStageSeconds.With("repair")
	stageSolve   = metricStageSeconds.With("solve")

	metricEpochLag = telemetry.Default().Gauge("tomod_epoch_lag_intervals",
		"Intervals ingested past the latest published snapshot's SeqHigh (staleness of the served estimate).")
	metricShardLag = telemetry.Default().GaugeVec("tomod_shard_lag_intervals",
		"Per-shard intervals ingested past the shard's last solved SeqHigh (sharded mode).", "shard")
	metricBacklog = telemetry.Default().Gauge("tomod_epoch_backlog",
		"Interval-stride checkpoints queued for the solver (Config.EpochEvery).")
	metricCheckpointsDropped = telemetry.Default().Counter("tomod_epoch_checkpoints_dropped_total",
		"Queued checkpoints discarded past MaxEpochBacklog or after a failed drain.")
	metricSolverPanics = telemetry.Default().Counter("tomod_solver_panics_total",
		"Solver panics contained by the supervision guards (each also sets degraded_reason).")
)

// processStart anchors tomod_uptime_seconds and /v1/status uptime.
var processStart = time.Now()

func init() {
	goVersion, revision := BuildInfo()
	telemetry.Default().GaugeVec("tomod_build_info",
		"Build metadata; always 1. Labels carry the Go version and VCS revision.",
		"goversion", "revision").With(goVersion, revision).Set(1)
	telemetry.Default().GaugeFunc("tomod_uptime_seconds",
		"Seconds since process start.",
		func() float64 { return time.Since(processStart).Seconds() })
	telemetry.Default().GaugeFunc("tomod_gomaxprocs",
		"Value of GOMAXPROCS.",
		func() float64 { return float64(runtime.GOMAXPROCS(0)) })
}

// BuildInfo returns the running binary's Go version and VCS revision
// ("unknown" when the build carries no VCS stamp, e.g. `go test`
// binaries); /v1/status and tomod_build_info report it.
func BuildInfo() (goVersion, revision string) {
	goVersion = runtime.Version()
	revision = "unknown"
	if bi, ok := debug.ReadBuildInfo(); ok {
		for _, s := range bi.Settings {
			if s.Key == "vcs.revision" {
				revision = s.Value
			}
		}
	}
	return goVersion, revision
}

// Uptime returns how long the process has been up.
func Uptime() time.Duration { return time.Since(processStart) }

// observeSolveMetrics records one published epoch's plan path and
// per-stage wall time from its SolveInfo. Stage times of zero are
// skipped rather than observed: a warm epoch has no rebuild and an
// unrepaired one no repair, and batched drains carry no per-epoch
// attribution at all.
func observeSolveMetrics(info estimator.SolveInfo) {
	switch {
	case info.RepairedNumeric:
		solvesRepairedNumeric.Inc()
	case info.Repaired:
		solvesRepaired.Inc()
	case info.Warm:
		solvesWarm.Inc()
	default:
		solvesCold.Inc()
	}
	if info.RepairFailed {
		metricRepairFailed.Inc()
	}
	if info.BuildTime > 0 {
		stageRebuild.Observe(info.BuildTime.Seconds())
	}
	if info.RepairTime > 0 {
		stageRepair.Observe(info.RepairTime.Seconds())
	}
	if info.SolveTime > 0 {
		stageSolve.Observe(info.SolveTime.Seconds())
	}
}
