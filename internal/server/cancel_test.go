package server

import (
	"context"
	"errors"
	"math/rand"
	"testing"
	"time"

	"repro/internal/bitset"
	"repro/internal/estimator"
	"repro/internal/experiment"
	"repro/internal/netsim"
	"repro/internal/topology"
)

// bigTopology builds a Sparse overlay large enough that one epoch solve
// at MaxSubsetSize 3 takes hundreds of milliseconds, so a mid-solve
// cancellation is unambiguous.
func bigTopology(t testing.TB) *topology.Topology {
	t.Helper()
	scale := experiment.Small()
	scale.SparseNumAS = 160
	scale.SparsePaths = 800
	top, err := experiment.BuildTopology(experiment.Sparse, scale, 1)
	if err != nil {
		t.Fatal(err)
	}
	return top
}

func ingestSimulated(t testing.TB, s *Server, top *topology.Topology, intervals int) {
	t.Helper()
	rng := rand.New(rand.NewSource(2))
	mc := netsim.DefaultConfig(netsim.RandomCongestion)
	mc.PerfectE2E = true
	model, err := netsim.NewModel(top, mc, intervals, rng)
	if err != nil {
		t.Fatal(err)
	}
	batch := make([]*bitset.Set, 0, intervals)
	for ti := 0; ti < intervals; ti++ {
		batch = append(batch, model.Interval(ti, rng).CongestedPaths)
	}
	s.Ingest(batch)
}

// A mid-solve context cancellation must return promptly with ctx.Err(),
// leave the previously published snapshot current, and not consume an
// epoch.
func TestEpochSolveCancellation(t *testing.T) {
	top := bigTopology(t)
	s := newServer(t, top, Config{
		WindowSize: 600,
		SolverOpts: []estimator.Option{
			estimator.WithMaxSubsetSize(3),
			estimator.WithAlwaysGoodTol(0.02),
			estimator.WithConcurrency(1),
		},
	})
	defer s.Close()
	ingestSimulated(t, s, top, 600)

	// Reference epoch: the uncancelled solve, which also calibrates the
	// cancellation timing to this machine.
	start := time.Now()
	first := s.Recompute(context.Background())
	full := time.Since(start)
	if first.Err != nil {
		t.Fatal(first.Err)
	}
	if first.Epoch != 1 {
		t.Fatalf("first epoch = %d, want 1", first.Epoch)
	}
	if full < 50*time.Millisecond {
		t.Fatalf("solve finished in %v; topology too small to test mid-solve cancellation", full)
	}

	// A re-solve over the unchanged window warm-starts off the carried
	// plan and finishes orders of magnitude faster than the structural
	// build it skips.
	start = time.Now()
	warm := s.Recompute(context.Background())
	warmTime := time.Since(start)
	if warm.Err != nil || warm.Epoch != 2 {
		t.Fatalf("warm epoch = %d (err %v), want 2", warm.Epoch, warm.Err)
	}
	if !warm.Warm {
		t.Fatal("re-solve over the unchanged window did not warm-start")
	}
	if warmTime > full/2 {
		t.Fatalf("warm solve took %v, cold %v — plan not reused", warmTime, full)
	}

	// Cancel a tenth of the way into a cold structural solve: a fresh
	// server (no carried plan) over the same stream.
	s2 := newServer(t, top, Config{
		WindowSize: 600,
		SolverOpts: []estimator.Option{
			estimator.WithMaxSubsetSize(3),
			estimator.WithAlwaysGoodTol(0.02),
			estimator.WithConcurrency(1),
		},
	})
	defer s2.Close()
	ingestSimulated(t, s2, top, 600)
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(full / 10)
		cancel()
	}()
	start = time.Now()
	snap := s2.Recompute(ctx)
	elapsed := time.Since(start)
	if !errors.Is(snap.Err, context.Canceled) {
		t.Fatalf("cancelled solve: err = %v, want context.Canceled", snap.Err)
	}
	if snap.Epoch != 0 {
		t.Fatalf("cancelled solve consumed epoch %d", snap.Epoch)
	}
	if elapsed > full/2 {
		t.Fatalf("cancelled solve returned after %v; full solve takes %v — not prompt", elapsed, full)
	}
	if got := s2.Latest(); got != nil {
		t.Fatalf("cancelled solve published a snapshot")
	}

	// The next solve publishes normally: epochs skip nothing.
	second := s2.Recompute(context.Background())
	if second.Err != nil || second.Epoch != 1 {
		t.Fatalf("post-cancellation epoch = %d (err %v), want 1", second.Epoch, second.Err)
	}
}

// Close must abort an in-flight epoch solve through the server's
// lifetime context rather than waiting it out.
func TestCloseCancelsInflightSolve(t *testing.T) {
	top := bigTopology(t)
	s := newServer(t, top, Config{
		WindowSize: 600,
		SolverOpts: []estimator.Option{
			estimator.WithMaxSubsetSize(3),
			estimator.WithAlwaysGoodTol(0.02),
			estimator.WithConcurrency(1),
		},
	})
	ingestSimulated(t, s, top, 600)

	done := make(chan *Snapshot, 1)
	go func() { done <- s.Recompute(nil) }() // nil ctx = server lifetime
	time.Sleep(20 * time.Millisecond)
	s.Close()
	select {
	case snap := <-done:
		if snap.Err == nil {
			t.Skip("solve completed before Close on this machine; nothing to abort")
		}
		if !errors.Is(snap.Err, context.Canceled) {
			t.Fatalf("err = %v, want context.Canceled", snap.Err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("solve did not abort on Close")
	}
}
