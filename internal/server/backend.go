package server

import (
	"context"
	"errors"

	"repro/internal/bitset"
	"repro/internal/core"
	"repro/internal/estimator"
	"repro/internal/observe"
	"repro/internal/stream"
)

// ErrShardUnavailable reports that a shard's owner cannot serve right
// now — in cluster mode, the worker holding the shard is unreachable or
// timing out. The HTTP layer maps it to 503 shard_unavailable with
// Retry-After, mirroring the wal_unavailable ingest path: the client
// should back off and retry rather than treat the batch as accepted.
var ErrShardUnavailable = errors.New("server: shard unavailable")

// ShardSolve is one shard's block as produced by a ShardBackend: the
// restricted result plus the ingest sequence and live interval count it
// was solved at. A local backend solves the ring it is handed, so
// SeqHigh/T echo the ring; a cluster backend returns the owning
// worker's solve, which may run slightly ahead of the coordinator's
// clone.
type ShardSolve struct {
	Res     *core.Result
	SeqHigh uint64
	T       int
	Info    estimator.SolveInfo
}

// ShardBackend is where per-shard solves happen. The server's sharded
// machinery (per-shard loops, stale-guarded publication, merged
// snapshots) programs against this seam, so in-process warm solvers and
// the cluster coordinator's scatter-gather are interchangeable: the
// default backend wraps estimator.ShardedSolver; internal/cluster
// implements the same interface over worker RPCs.
type ShardBackend interface {
	// NumShards returns the number of independent shard solves per
	// epoch (at least 1).
	NumShards() int

	// PathShards returns the path→shard mapping the ingest window
	// routes by (nil means a single shard).
	PathShards() []int

	// ShardSize returns one shard's slice of the universe.
	ShardSize(shard int) (paths, links int)

	// SolveShard computes shard's block. ring is the coordinator's
	// frozen clone of the shard's ring: a local backend solves it
	// directly; a remote backend may ignore it and fetch the owning
	// worker's solve instead. Errors wrap ErrShardUnavailable when the
	// shard's owner cannot serve.
	SolveShard(ctx context.Context, shard int, ring *stream.Window) (ShardSolve, error)

	// Merge assembles the per-shard blocks (in shard order; nil entries
	// skipped) into one estimate over obs.
	Merge(results []*core.Result, obs observe.Store) *estimator.Estimate
}

// ShardBatchSolver is the optional batched drain seam of a
// ShardBackend: solve one block of shard per ring, carrying the
// shard's warm plan across the whole run. The server's interval-stride
// checkpoint drain (Config.EpochEvery in sharded mode) uses it when
// available — K queued checkpoints cost one set of right-hand sides
// plus a single batched back-substitution per shard — and falls back
// to sequential SolveShard calls otherwise (the cluster coordinator,
// whose workers solve their own live rings).
type ShardBatchSolver interface {
	SolveShardBatch(ctx context.Context, shard int, rings []*stream.Window) ([]ShardSolve, error)
}

// BatchForwarder is implemented by backends that replicate ingest to
// remote shard owners. When the configured backend implements it, every
// ingest batch is forwarded — keyed by the coordinator's pre-batch
// sequence so workers can deduplicate retries — before it is applied
// locally; a forwarding failure rejects the batch without applying it
// anywhere the client could not safely retry.
type BatchForwarder interface {
	Forward(baseSeq uint64, batch []*bitset.Set) error
}

// ShardSource is the view of the live ingest window a backend's
// background machinery (health checking, worker catch-up) reads:
// the current sequence and frozen per-shard clones to replay from.
// *stream.Sharded implements it.
type ShardSource interface {
	Seq() uint64
	CloneShard(shard int) *stream.Window
}

// BackendLifecycle is implemented by backends with background work
// (health loops, reconnection). Start is called once from Server.Start
// with the live window as the catch-up source; Close once from
// Server.Close, after the solver loops have exited. Close must be safe
// without a prior Start.
type BackendLifecycle interface {
	Start(src ShardSource)
	Close()
}

// ClusterReporter is implemented by backends that track remote workers;
// /v1/status surfaces the report and readiness degrades while any
// shard is unreachable.
type ClusterReporter interface {
	ClusterStatus() *ClusterStatus
}

// ClusterStatus is the cluster{} block of GET /v1/status.
type ClusterStatus struct {
	Role              string        `json:"role"`
	Workers           []WorkerState `json:"workers"`
	UnreachableShards []int         `json:"unreachable_shards,omitempty"`
}

// WorkerState is one worker's row in the cluster status: its shard
// placement, health-state machine position and acknowledged sequence.
type WorkerState struct {
	ID      string `json:"id"`
	Addr    string `json:"addr"`
	Shards  []int  `json:"shards"`
	State   string `json:"state"` // connecting | healthy | unreachable | rejoining
	SeqHigh uint64 `json:"seq_high"`
	// LastError is the most recent RPC failure ("" when healthy).
	LastError string `json:"last_error,omitempty"`
}

// localBackend is the in-process ShardBackend: estimator.ShardedSolver
// solving the coordinator's own rings with warm per-shard plans.
type localBackend struct {
	sv *estimator.ShardedSolver
}

func (b *localBackend) NumShards() int { return b.sv.NumShards() }

func (b *localBackend) PathShards() []int { return b.sv.Partition().PathShards() }

func (b *localBackend) ShardSize(shard int) (paths, links int) { return b.sv.ShardSize(shard) }

func (b *localBackend) SolveShard(ctx context.Context, shard int, ring *stream.Window) (ShardSolve, error) {
	res, info, err := b.sv.SolveShard(ctx, shard, ring)
	if err != nil {
		return ShardSolve{}, err
	}
	return ShardSolve{Res: res, SeqHigh: ring.Seq(), T: ring.T(), Info: info}, nil
}

func (b *localBackend) SolveShardBatch(ctx context.Context, shard int, rings []*stream.Window) ([]ShardSolve, error) {
	stores := make([]observe.Store, len(rings))
	for i, ring := range rings {
		stores[i] = ring
	}
	results, infos, err := b.sv.SolveShardBatch(ctx, shard, stores)
	if err != nil {
		return nil, err
	}
	out := make([]ShardSolve, len(results))
	for i, res := range results {
		out[i] = ShardSolve{Res: res, SeqHigh: rings[i].Seq(), T: rings[i].T(), Info: infos[i]}
	}
	return out, nil
}

func (b *localBackend) Merge(results []*core.Result, obs observe.Store) *estimator.Estimate {
	return b.sv.Merge(results, obs)
}
