package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"

	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/estimator"
	"repro/internal/netsim"
	"repro/internal/observe"
	"repro/internal/topology"
	"repro/internal/wal"
	"repro/internal/wal/faultfs"
)

// postObservations POSTs one ingest batch (slices of congested path
// IDs) and returns the HTTP status and decoded envelope.
func postObservations(t testing.TB, client *http.Client, base string, paths [][]int) (int, Envelope) {
	t.Helper()
	req := ObservationsRequest{Intervals: make([]IntervalObs, len(paths))}
	for i, p := range paths {
		req.Intervals[i] = IntervalObs{CongestedPaths: p}
	}
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := client.Post(base+"/v1/observations", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var env Envelope
	if err := json.NewDecoder(resp.Body).Decode(&env); err != nil {
		t.Fatalf("POST /v1/observations: decoding envelope: %v", err)
	}
	return resp.StatusCode, env
}

// simStream renders the deterministic simulated observation stream as
// congested-path index slices, one per interval.
func simStream(t testing.TB, top *topology.Topology, intervals int, seed int64) [][]int {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	mc := netsim.DefaultConfig(netsim.RandomCongestion)
	mc.PerfectE2E = true
	model, err := netsim.NewModel(top, mc, intervals, rng)
	if err != nil {
		t.Fatal(err)
	}
	out := make([][]int, intervals)
	for ti := range out {
		out[ti] = model.Interval(ti, rng).CongestedPaths.Indices()
	}
	return out
}

// TestWALRecoveryRestoresWindow is the in-process recovery property:
// a restart on the same WAL dir rebuilds the exact sliding window —
// the recovered server's epoch solve is bit-identical to the one the
// crashed server would have published.
func TestWALRecoveryRestoresWindow(t *testing.T) {
	for _, algo := range []string{estimator.CorrelationComplete, estimator.CorrelationCompleteSharded} {
		t.Run(algo, func(t *testing.T) {
			top := testTopology(t)
			cfg := Config{
				WindowSize: 300,
				Algo:       algo,
				SolverOpts: solverOpts(),
				WAL:        wal.Options{Dir: t.TempDir(), Policy: wal.SyncOff},
			}
			a := newServer(t, top, cfg)
			ingestSimulated(t, a, top, 450) // wraps the ring
			snapA := a.Recompute(nil)
			if snapA.Err != nil {
				t.Fatal(snapA.Err)
			}
			a.Close()

			b := newServer(t, top, cfg)
			defer b.Close()
			if b.Seq() != 450 {
				t.Fatalf("recovered seq %d, want 450", b.Seq())
			}
			if _, rec, ok := b.WALStats(); !ok || rec.Records == 0 {
				t.Fatalf("recovery stats missing: ok=%v rec=%+v", ok, rec)
			}
			snapB := b.Recompute(nil)
			if snapB.Err != nil {
				t.Fatal(snapB.Err)
			}
			if snapB.T != snapA.T || snapB.SeqHigh != snapA.SeqHigh {
				t.Fatalf("window shape differs: T %d/%d seq %d/%d", snapA.T, snapB.T, snapA.SeqHigh, snapB.SeqHigh)
			}
			for e := 0; e < top.NumLinks(); e++ {
				pa, xa := snapA.Est.LinkCongestProb(e)
				pb, xb := snapB.Est.LinkCongestProb(e)
				if pa != pb || xa != xb {
					t.Fatalf("link %d: pre-crash (%v,%v) != recovered (%v,%v)", e, pa, xa, pb, xb)
				}
			}
		})
	}
}

// A WAL that cannot persist (failed fsync here) must turn ingest into
// 503 + Retry-After with a machine-readable code, mark the service
// degraded on /v1/status, and never apply the unlogged batch.
func TestIngestWALUnavailable(t *testing.T) {
	top := testTopology(t)
	ffs := faultfs.New(nil)
	s := newServer(t, top, Config{
		WindowSize: 100,
		SolverOpts: solverOpts(),
		WAL:        wal.Options{Dir: t.TempDir(), FS: ffs, Policy: wal.SyncPerBatch},
	})
	defer s.Close()
	h := s.Handler()

	body := `{"intervals":[{"congested_paths":[0]}]}`
	rw := httptest.NewRecorder()
	h.ServeHTTP(rw, httptest.NewRequest(http.MethodPost, "/v1/observations", strings.NewReader(body)))
	if rw.Code != http.StatusOK {
		t.Fatalf("healthy ingest returned %d: %s", rw.Code, rw.Body)
	}

	ffs.FailSync(faultfs.ErrInjectedSync)
	rw = httptest.NewRecorder()
	h.ServeHTTP(rw, httptest.NewRequest(http.MethodPost, "/v1/observations", strings.NewReader(body)))
	if rw.Code != http.StatusServiceUnavailable {
		t.Fatalf("ingest with failing WAL returned %d: %s", rw.Code, rw.Body)
	}
	if got := rw.Header().Get("Retry-After"); got == "" {
		t.Fatal("503 without Retry-After")
	}
	var env Envelope
	if err := json.Unmarshal(rw.Body.Bytes(), &env); err != nil {
		t.Fatal(err)
	}
	if env.Error == nil || env.Error.Code != CodeWALUnavailable {
		t.Fatalf("error envelope %+v, want code %q", env.Error, CodeWALUnavailable)
	}
	if s.Seq() != 1 {
		t.Fatalf("unlogged batch applied: seq %d, want 1", s.Seq())
	}

	// The failure latches and the service reports itself degraded.
	code, env, _ := get(t, h, "/v1/status")
	if code != http.StatusOK {
		t.Fatalf("status returned %d", code)
	}
	var st StatusResponse
	decodeData(t, env, &st)
	if !st.Degraded || st.DegradedReason == "" {
		t.Fatalf("status not degraded: %+v", st)
	}
	if st.WAL == nil || st.WAL.Error == "" {
		t.Fatalf("wal block missing the latched error: %+v", st.WAL)
	}
	if st.WAL.FsyncPolicy != "batch" {
		t.Fatalf("fsync_policy %q", st.WAL.FsyncPolicy)
	}
}

// panicEstimator stands in for a solver with a crashing bug.
type panicEstimator struct{}

func (panicEstimator) Name() string        { return "panic" }
func (panicEstimator) Description() string { return "always panics" }
func (panicEstimator) Estimate(context.Context, *topology.Topology, observe.Store, ...estimator.Option) (*estimator.Estimate, error) {
	panic("estimator bug")
}

// A panicking solver must not kill the daemon: the panic surfaces as
// an ErrSolverPanic error snapshot plus degraded_reason on status, and
// the next clean epoch clears the degradation.
func TestSolverPanicContainment(t *testing.T) {
	top := testTopology(t)
	s := newServer(t, top, Config{
		WindowSize: 200,
		Algo:       estimator.Independence, // no warm solver: s.est drives the epoch
		SolverOpts: solverOpts(),
	})
	defer s.Close()
	ingestSimulated(t, s, top, 200)
	good := s.est
	s.est = panicEstimator{}

	snap := s.Recompute(nil)
	if !errors.Is(snap.Err, ErrSolverPanic) {
		t.Fatalf("snapshot error %v, want ErrSolverPanic", snap.Err)
	}
	if s.DegradedReason() == "" {
		t.Fatal("panic did not mark the service degraded")
	}
	code, env, _ := get(t, s.Handler(), "/v1/status")
	if code != http.StatusOK {
		t.Fatalf("status returned %d", code)
	}
	var st StatusResponse
	decodeData(t, env, &st)
	if !st.Degraded || !strings.Contains(st.DegradedReason, "panicked") {
		t.Fatalf("status after panic: degraded=%v reason=%q", st.Degraded, st.DegradedReason)
	}
	if st.SolverError == "" {
		t.Fatal("panic epoch published without solver_error")
	}

	// Recovery: a clean epoch clears the degradation.
	s.est = good
	if snap := s.Recompute(nil); snap.Err != nil {
		t.Fatalf("clean recompute: %v", snap.Err)
	}
	if r := s.DegradedReason(); r != "" {
		t.Fatalf("degradation not cleared by clean epoch: %q", r)
	}
}

// Liveness and readiness probes: healthz is always 200; readyz flips
// to 200 once the first snapshot is published (WAL recovery, when
// enabled, completed synchronously in New). Both payloads are golden.
func TestHealthzReadyz(t *testing.T) {
	top := testTopology(t)
	s := newServer(t, top, Config{WindowSize: 200, SolverOpts: solverOpts()})
	defer s.Close()
	h := s.Handler()

	code, _, body := get(t, h, "/v1/healthz")
	if code != http.StatusOK {
		t.Fatalf("healthz returned %d", code)
	}
	if want := `{"api_version":"v1","data":{"status":"ok"}}`; body != want {
		t.Fatalf("healthz golden mismatch:\n got: %s\nwant: %s", body, want)
	}

	code, env, _ := get(t, h, "/v1/readyz")
	if code != http.StatusServiceUnavailable {
		t.Fatalf("readyz before first epoch returned %d", code)
	}
	if env.Error == nil || env.Error.Code != CodeNotReady {
		t.Fatalf("readyz error envelope %+v, want code %q", env.Error, CodeNotReady)
	}

	ingestSimulated(t, s, top, 200)
	if snap := s.Recompute(nil); snap.Err != nil {
		t.Fatal(snap.Err)
	}
	code, _, body = get(t, h, "/v1/readyz")
	if code != http.StatusOK {
		t.Fatalf("readyz after first epoch returned %d", code)
	}
	if want := `{"api_version":"v1","data":{"status":"ready"}}`; body != want {
		t.Fatalf("readyz golden mismatch:\n got: %s\nwant: %s", body, want)
	}
}

// An oversized ingest body gets the structured 413 envelope, not a
// generic decode error.
func TestIngestPayloadTooLarge(t *testing.T) {
	top := testTopology(t)
	s := newServer(t, top, Config{WindowSize: 100, SolverOpts: solverOpts(), MaxIngestBytes: 96})
	defer s.Close()
	h := s.Handler()

	rw := httptest.NewRecorder()
	h.ServeHTTP(rw, httptest.NewRequest(http.MethodPost, "/v1/observations",
		strings.NewReader(`{"intervals":[{"congested_paths":[0]}]}`)))
	if rw.Code != http.StatusOK {
		t.Fatalf("small body returned %d: %s", rw.Code, rw.Body)
	}

	big := `{"intervals":[` + strings.Repeat(`{"congested_paths":[0]},`, 20) + `{"congested_paths":[0]}]}`
	rw = httptest.NewRecorder()
	h.ServeHTTP(rw, httptest.NewRequest(http.MethodPost, "/v1/observations", strings.NewReader(big)))
	if rw.Code != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized body returned %d: %s", rw.Code, rw.Body)
	}
	var env Envelope
	if err := json.Unmarshal(rw.Body.Bytes(), &env); err != nil {
		t.Fatal(err)
	}
	if env.Error == nil || env.Error.Code != CodePayloadTooLarge {
		t.Fatalf("error envelope %+v, want code %q", env.Error, CodePayloadTooLarge)
	}
	want := `{"api_version":"v1","error":{"code":"payload_too_large","message":"body exceeds the 96-byte ingest limit; split the batch"}}`
	if got := strings.TrimSpace(rw.Body.String()); got != want {
		t.Fatalf("413 golden mismatch:\n got: %s\nwant: %s", got, want)
	}
}

// TestCrashRecoveryE2E is the headline durability test: stream 10k
// intervals at the daemon over HTTP, kill it at a random point (the
// process dies without a clean WAL close and the page cache loses a
// random suffix of the active segment — simulated by truncating it),
// restart on the same -wal-dir, resume the stream from the recovered
// high-water mark, and finish. The final estimate must be bit-identical
// to an uninterrupted run (here: the offline solve over exactly the
// last windowSize intervals, the same oracle the uninterrupted e2e
// pins).
func TestCrashRecoveryE2E(t *testing.T) {
	const totalIntervals, windowSize, batchSize = 10000, 2000, 250
	const streamSeed = 7
	top := testTopology(t)
	dir := t.TempDir()
	cfg := Config{
		WindowSize:     windowSize,
		RecomputeEvery: 20 * time.Millisecond,
		SolverOpts:     solverOpts(),
		WAL:            wal.Options{Dir: dir, Policy: wal.SyncInterval, SyncEvery: 5 * time.Millisecond},
	}
	stream := simStream(t, top, totalIntervals, streamSeed)
	crashRng := rand.New(rand.NewSource(11))
	crashAt := windowSize + crashRng.Intn(totalIntervals-windowSize)

	// Phase 1: ingest over HTTP until the crash point, solver running.
	a := newServer(t, top, cfg)
	a.Start()
	tsA := httptest.NewServer(a.Handler())
	for lo := 0; lo < crashAt; lo += batchSize {
		hi := min(lo+batchSize, crashAt)
		if code, env := postObservations(t, tsA.Client(), tsA.URL, stream[lo:hi]); code != http.StatusOK {
			t.Fatalf("ingest [%d,%d) returned %d: %+v", lo, hi, code, env.Error)
		}
	}
	tsA.Close()
	a.Close()

	// The kill: tear a random suffix off the newest segment, as a
	// crash between fsyncs would.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) == 0 {
		t.Fatal("no WAL segments written")
	}
	tail := filepath.Join(dir, entries[len(entries)-1].Name())
	fi, err := os.Stat(tail)
	if err != nil {
		t.Fatal(err)
	}
	cut := int64(crashRng.Intn(4096))
	if cut > fi.Size() {
		cut = fi.Size()
	}
	if err := os.Truncate(tail, fi.Size()-cut); err != nil {
		t.Fatal(err)
	}

	// Phase 2: restart on the same dir; the client reads the recovered
	// high-water mark from /v1/status and resumes the stream there.
	b := newServer(t, top, cfg)
	b.Start()
	tsB := httptest.NewServer(b.Handler())
	defer tsB.Close()
	defer b.Close()
	var st StatusResponse
	if code := getJSON(t, tsB.Client(), tsB.URL+"/v1/status", &st); code != http.StatusOK {
		t.Fatalf("status returned %d", code)
	}
	if st.WAL == nil {
		t.Fatal("status missing wal block")
	}
	resume := st.IngestedSeq
	if resume > uint64(crashAt) {
		t.Fatalf("recovered seq %d past the crash point %d", resume, crashAt)
	}
	if st.WAL.RecoveredRecords == 0 || st.WAL.LastSeq != resume {
		t.Fatalf("wal status inconsistent with recovery: %+v at seq %d", st.WAL, resume)
	}
	t.Logf("crash at %d, torn %d bytes, recovered to %d (%d records)",
		crashAt, cut, resume, st.WAL.RecoveredRecords)
	for lo := int(resume); lo < totalIntervals; lo += batchSize {
		hi := min(lo+batchSize, totalIntervals)
		if code, env := postObservations(t, tsB.Client(), tsB.URL, stream[lo:hi]); code != http.StatusOK {
			t.Fatalf("resumed ingest [%d,%d) returned %d: %+v", lo, hi, code, env.Error)
		}
	}

	snap := b.Recompute(nil)
	if snap.Err != nil {
		t.Fatal(snap.Err)
	}
	if snap.SeqHigh != totalIntervals || snap.T != windowSize {
		t.Fatalf("final snapshot seq=%d T=%d, want %d/%d", snap.SeqHigh, snap.T, totalIntervals, windowSize)
	}

	// Oracle: the offline solve over exactly the last windowSize
	// intervals of the same stream — what an uninterrupted run pins.
	rng := rand.New(rand.NewSource(streamSeed))
	mc := netsim.DefaultConfig(netsim.RandomCongestion)
	mc.PerfectE2E = true
	model, err := netsim.NewModel(top, mc, totalIntervals, rng)
	if err != nil {
		t.Fatal(err)
	}
	rec := observe.NewRecorder(top.NumPaths())
	for ti := 0; ti < totalIntervals; ti++ {
		obs := model.Interval(ti, rng)
		if ti >= totalIntervals-windowSize {
			rec.Add(obs.CongestedPaths)
		}
	}
	ref, err := core.Compute(context.Background(), top, rec, solverConfig())
	if err != nil {
		t.Fatal(err)
	}
	for e := 0; e < top.NumLinks(); e++ {
		want, wantExact := ref.LinkCongestProbOrFallback(e)
		got, gotExact := snap.Est.LinkCongestProb(e)
		if got != want || gotExact != wantExact {
			t.Fatalf("link %d: crash-recovered run (%v,%v) != uninterrupted oracle (%v,%v)",
				e, got, gotExact, want, wantExact)
		}
	}
}
