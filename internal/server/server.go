// Package server implements the streaming tomography service: a
// sliding-window observation store fed by batched ingest, an
// epoch-versioned solver loop that recomputes the Correlation-complete
// result over the live window on a fixed cadence, and the HTTP/JSON API
// served by cmd/tomod.
//
// Concurrency contract (see DESIGN.md):
//
//   - Ingest serializes on one mutex guarding the live stream.Window;
//     batches are applied atomically with respect to snapshots.
//   - The solver loop clones the window under that mutex (cheap, O(state))
//     and runs core.Compute on the frozen clone off-lock, so a slow
//     solve never blocks ingest.
//   - Each solve publishes an immutable Snapshot — the core.Result, the
//     frozen window it was computed over, and a monotonically increasing
//     epoch — via an atomic pointer swap. Queries load the pointer once
//     and answer entirely from that snapshot, so every response is
//     internally consistent with exactly one epoch and queries never
//     block ingest or the solver.
package server

import (
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/bitset"
	"repro/internal/core"
	"repro/internal/stream"
	"repro/internal/topology"
)

// Config parameterizes the streaming service.
type Config struct {
	// WindowSize is the sliding-window capacity in intervals
	// (default 1000, the paper's monitoring-period length).
	WindowSize int

	// RecomputeEvery is the solver cadence (default 2s). A tick with no
	// new observations since the last epoch is skipped.
	RecomputeEvery time.Duration

	// Solver tunes the Correlation-complete run of each epoch,
	// including its Concurrency knob.
	Solver core.Config
}

// withDefaults fills the zero values.
func (c Config) withDefaults() Config {
	if c.WindowSize <= 0 {
		c.WindowSize = 1000
	}
	if c.RecomputeEvery <= 0 {
		c.RecomputeEvery = 2 * time.Second
	}
	return c
}

// Snapshot is one epoch of solver output. It is immutable once
// published: Result and Window are never mutated again, so any number
// of queries may read them concurrently.
type Snapshot struct {
	// Epoch increases by one per solve; queries report it so clients
	// can correlate answers.
	Epoch uint64

	// Result is the Correlation-complete output over Window; nil when
	// Err is non-nil.
	Result *core.Result

	// Window is the frozen clone of the live window the result was
	// computed over.
	Window *stream.Window

	// SeqHigh is the sequence number of the newest interval included:
	// the window covers [SeqHigh−T, SeqHigh).
	SeqHigh uint64

	// T is the number of intervals in the window at solve time.
	T int

	ComputedAt  time.Time
	ComputeTime time.Duration

	// Err is the solver error, if the solve failed.
	Err error
}

// Server is the streaming tomography service.
type Server struct {
	top *topology.Topology
	cfg Config

	mu  sync.Mutex // guards win (ingest and snapshot cloning)
	win *stream.Window

	computeMu sync.Mutex // serializes solver runs
	epoch     atomic.Uint64
	snap      atomic.Pointer[Snapshot]

	stop      chan struct{}
	wg        sync.WaitGroup
	startOnce sync.Once
	closeOnce sync.Once
}

// New assembles a server over the topology. Call Start to launch the
// recompute loop and Close to stop it.
func New(top *topology.Topology, cfg Config) *Server {
	cfg = cfg.withDefaults()
	return &Server{
		top:  top,
		cfg:  cfg,
		win:  stream.NewWindow(top.NumPaths(), cfg.WindowSize),
		stop: make(chan struct{}),
	}
}

// Topology returns the topology the server monitors.
func (s *Server) Topology() *topology.Topology { return s.top }

// Start launches the background recompute loop.
func (s *Server) Start() {
	s.startOnce.Do(func() {
		s.wg.Add(1)
		go s.run()
	})
}

// Close stops the recompute loop and waits for it to exit.
func (s *Server) Close() {
	s.closeOnce.Do(func() { close(s.stop) })
	s.wg.Wait()
}

// Ingest appends a batch of interval observations to the live window,
// atomically with respect to snapshot cloning, and returns the sequence
// number after the batch. Sets may contain indices outside the path
// universe; they are dropped (observe.Recorder semantics).
func (s *Server) Ingest(batch []*bitset.Set) uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, obs := range batch {
		s.win.Add(obs)
	}
	return s.win.Seq()
}

// Seq returns the total number of intervals ingested.
func (s *Server) Seq() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.win.Seq()
}

// Latest returns the most recently published snapshot, or nil before
// the first solve completes.
func (s *Server) Latest() *Snapshot { return s.snap.Load() }

// Recompute clones the live window, runs the solver over the frozen
// clone, publishes the new snapshot, and returns it. It is what the
// background loop calls each tick; tests and the daemon's shutdown path
// call it directly for a synchronous epoch.
func (s *Server) Recompute() *Snapshot {
	s.computeMu.Lock()
	defer s.computeMu.Unlock()
	s.mu.Lock()
	w := s.win.Clone()
	s.mu.Unlock()
	start := time.Now()
	res, err := core.Compute(s.top, w, s.cfg.Solver)
	snap := &Snapshot{
		Epoch:       s.epoch.Add(1),
		Result:      res,
		Window:      w,
		SeqHigh:     w.Seq(),
		T:           w.T(),
		ComputedAt:  time.Now(),
		ComputeTime: time.Since(start),
		Err:         err,
	}
	s.snap.Store(snap)
	return snap
}

// run is the solver loop: one potential epoch per tick, skipped when
// nothing was ingested since the last one.
func (s *Server) run() {
	defer s.wg.Done()
	ticker := time.NewTicker(s.cfg.RecomputeEvery)
	defer ticker.Stop()
	for {
		select {
		case <-s.stop:
			return
		case <-ticker.C:
			if last := s.snap.Load(); last != nil && last.SeqHigh == s.Seq() {
				continue // window unchanged since the last epoch
			}
			s.Recompute()
		}
	}
}
