// Package server implements the streaming tomography service: a
// sliding-window observation store fed by batched ingest, an
// epoch-versioned solver loop that recomputes the configured
// estimator's result over the live window on a fixed cadence, and the
// versioned HTTP/JSON API served by cmd/tomod.
//
// Concurrency contract (see DESIGN.md):
//
//   - Ingest serializes on one mutex guarding the live stream.Window;
//     batches are applied atomically with respect to snapshots.
//   - The solver loop clones the window under that mutex (cheap, O(state))
//     and runs the estimator on the frozen clone off-lock, so a slow
//     solve never blocks ingest.
//   - Each solve publishes an immutable Snapshot — the estimate, the
//     frozen window it was computed over, and a monotonically increasing
//     epoch — via an atomic pointer swap. Queries load the pointer once
//     and answer entirely from that snapshot, so every response is
//     internally consistent with exactly one epoch and queries never
//     block ingest or the solver.
//   - Epoch solves are cancellable: shutdown cancels the in-flight
//     solve, and a solve whose frozen window has been entirely evicted
//     by newer ingest (superseded) is abandoned rather than published.
//     Cancelled solves return ctx.Err() promptly and never publish.
package server

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/bitset"
	"repro/internal/estimator"
	"repro/internal/stream"
	"repro/internal/topology"
)

// Config parameterizes the streaming service.
type Config struct {
	// WindowSize is the sliding-window capacity in intervals
	// (default 1000, the paper's monitoring-period length).
	WindowSize int

	// RecomputeEvery is the solver cadence (default 2s). A tick with no
	// new observations since the last epoch is skipped.
	RecomputeEvery time.Duration

	// Algo selects the epoch solver from the estimator registry
	// (default estimator.CorrelationComplete). Queries may still select
	// other algorithms per request with ?algo=.
	Algo string

	// SolverOpts tunes every estimate the server computes — epoch
	// solves and per-request ?algo= runs alike. Invalid options are
	// reported by New, before the service starts.
	SolverOpts []estimator.Option
}

// withDefaults fills the zero values.
func (c Config) withDefaults() Config {
	if c.WindowSize <= 0 {
		c.WindowSize = 1000
	}
	if c.RecomputeEvery <= 0 {
		c.RecomputeEvery = 2 * time.Second
	}
	if c.Algo == "" {
		c.Algo = estimator.CorrelationComplete
	}
	return c
}

// Snapshot is one epoch of solver output. The published fields are
// immutable: Est and Window are never mutated again, so any number of
// queries may read them concurrently. Estimates for other algorithms
// over the same frozen window are computed lazily per request and
// cached on the snapshot.
type Snapshot struct {
	// Epoch increases by one per published solve; queries report it so
	// clients can correlate answers. 0 on an unpublished (cancelled)
	// snapshot.
	Epoch uint64

	// Algo is the registry name of the epoch solver.
	Algo string

	// Est is the epoch estimate over Window; nil when Err is non-nil.
	Est *estimator.Estimate

	// Window is the frozen clone of the live window the estimate was
	// computed over.
	Window *stream.Window

	// SeqHigh is the sequence number of the newest interval included:
	// the window covers [SeqHigh−T, SeqHigh).
	SeqHigh uint64

	// T is the number of intervals in the window at solve time.
	T int

	ComputedAt  time.Time
	ComputeTime time.Duration

	// Err is the solver error, if the solve failed; ctx.Err() when the
	// solve was cancelled (shutdown or supersession), in which case the
	// snapshot was not published.
	Err error

	top  *topology.Topology
	opts []estimator.Option

	// lifetime is the server's lifetime context: per-request solves run
	// under it (not the request's context), so a slow solve outlives an
	// impatient client, completes once, and serves every later request
	// from the cache. Shutdown still aborts it.
	lifetime context.Context

	// mu guards byAlgo, the lazy per-request estimate cache. Each
	// algorithm gets its own cell so a slow solve for one algorithm
	// never blocks cache hits (or solves) for another.
	mu     sync.Mutex
	byAlgo map[string]*algoCell
}

// algoCell is one algorithm's slot in the snapshot's lazy cache. The
// solve starts once (once) and runs detached from any single request;
// done closes when est/err are final.
type algoCell struct {
	once sync.Once
	done chan struct{}
	est  *estimator.Estimate
	err  error
}

// EstimateFor returns this snapshot's estimate for the named algorithm
// ("" means the epoch solver's). Estimates for other algorithms are
// computed over the frozen window on first request and cached, so every
// algorithm answers about the same epoch. The solve itself runs under
// the server's lifetime context; the request's ctx only bounds how long
// this caller waits for it — an abandoned request does not waste the
// solve, which completes and serves the next caller from the cache.
func (s *Snapshot) EstimateFor(ctx context.Context, algo string) (*estimator.Estimate, error) {
	if algo == "" || algo == s.Algo {
		if s.Err != nil {
			return nil, s.Err
		}
		return s.Est, nil
	}
	est, err := estimator.New(algo)
	if err != nil {
		return nil, err
	}
	// A request that is already dead neither starts nor waits for a
	// solve; this also keeps the cancelled-solve error deterministic.
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	s.mu.Lock()
	cell := s.byAlgo[algo]
	if cell == nil {
		cell = &algoCell{}
		s.byAlgo[algo] = cell
	}
	s.mu.Unlock()
	cell.once.Do(func() {
		cell.done = make(chan struct{})
		go func() {
			defer close(cell.done)
			cell.est, cell.err = est.Estimate(s.lifetime, s.top, s.Window, s.opts...)
		}()
	})
	// Prefer a finished solve over a dead request context: both may be
	// ready at once and select would pick randomly.
	select {
	case <-cell.done:
		return cell.est, cell.err
	default:
	}
	select {
	case <-cell.done:
		return cell.est, cell.err
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// Server is the streaming tomography service.
type Server struct {
	top *topology.Topology
	cfg Config
	est estimator.Estimator // the epoch solver, resolved from cfg.Algo

	mu  sync.Mutex // guards win (ingest and snapshot cloning)
	win *stream.Window

	computeMu sync.Mutex // serializes solver runs
	epoch     atomic.Uint64
	snap      atomic.Pointer[Snapshot]

	// baseCtx is the lifetime context of the service: Close cancels it,
	// which aborts any in-flight epoch solve promptly.
	baseCtx    context.Context
	baseCancel context.CancelFunc

	stop      chan struct{}
	wg        sync.WaitGroup
	startOnce sync.Once
	closeOnce sync.Once
}

// New assembles a server over the topology, resolving the configured
// estimator and validating the solver options eagerly so a bad
// configuration fails here rather than on the first epoch. Call Start
// to launch the recompute loop and Close to stop it.
func New(top *topology.Topology, cfg Config) (*Server, error) {
	cfg = cfg.withDefaults()
	est, err := estimator.New(cfg.Algo)
	if err != nil {
		return nil, err
	}
	if _, err := estimator.Apply(cfg.SolverOpts...); err != nil {
		return nil, err
	}
	ctx, cancel := context.WithCancel(context.Background())
	return &Server{
		top:        top,
		cfg:        cfg,
		est:        est,
		win:        stream.NewWindow(top.NumPaths(), cfg.WindowSize),
		baseCtx:    ctx,
		baseCancel: cancel,
		stop:       make(chan struct{}),
	}, nil
}

// Topology returns the topology the server monitors.
func (s *Server) Topology() *topology.Topology { return s.top }

// Algo returns the registry name of the configured epoch solver.
func (s *Server) Algo() string { return s.cfg.Algo }

// Start launches the background recompute loop.
func (s *Server) Start() {
	s.startOnce.Do(func() {
		s.wg.Add(1)
		go s.run()
	})
}

// Close stops the recompute loop, cancelling any in-flight epoch solve,
// and waits for the loop to exit.
func (s *Server) Close() {
	s.closeOnce.Do(func() {
		s.baseCancel()
		close(s.stop)
	})
	s.wg.Wait()
}

// Ingest appends a batch of interval observations to the live window,
// atomically with respect to snapshot cloning, and returns the sequence
// number after the batch. Sets may contain indices outside the path
// universe; they are dropped (observe.Recorder semantics).
func (s *Server) Ingest(batch []*bitset.Set) uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, obs := range batch {
		s.win.Add(obs)
	}
	return s.win.Seq()
}

// Seq returns the total number of intervals ingested.
func (s *Server) Seq() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.win.Seq()
}

// Latest returns the most recently published snapshot, or nil before
// the first solve completes.
func (s *Server) Latest() *Snapshot { return s.snap.Load() }

// Recompute clones the live window, runs the configured estimator over
// the frozen clone, publishes the new snapshot, and returns it. It is
// what the background loop calls each tick; tests and the daemon's
// shutdown path call it directly for a synchronous epoch.
//
// ctx cancels the solve mid-flight: the returned snapshot then carries
// ctx.Err() (wrapped) in Err, is NOT published, and does not consume an
// epoch — the previously published snapshot stays current. A nil ctx
// means the server's lifetime context.
func (s *Server) Recompute(ctx context.Context) *Snapshot {
	if ctx == nil {
		ctx = s.baseCtx
	}
	s.computeMu.Lock()
	defer s.computeMu.Unlock()
	s.mu.Lock()
	w := s.win.Clone()
	s.mu.Unlock()
	start := time.Now()
	est, err := s.est.Estimate(ctx, s.top, w, s.cfg.SolverOpts...)
	snap := &Snapshot{
		Algo:        s.cfg.Algo,
		Est:         est,
		Window:      w,
		SeqHigh:     w.Seq(),
		T:           w.T(),
		ComputedAt:  time.Now(),
		ComputeTime: time.Since(start),
		Err:         err,
		top:         s.top,
		opts:        s.cfg.SolverOpts,
		lifetime:    s.baseCtx,
		byAlgo:      map[string]*algoCell{},
	}
	if err != nil && (errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)) {
		return snap // cancelled: do not publish, do not consume an epoch
	}
	snap.Epoch = s.epoch.Add(1)
	s.snap.Store(snap)
	return snap
}

// run is the solver loop: one potential epoch per tick, skipped when
// nothing was ingested since the last one. Solves normally run under
// supersession supervision; after a superseded cancellation the next
// solve runs unsupervised (shutdown can still abort it), guaranteeing
// forward progress — when ingest permanently outruns the solver, every
// other solve still completes and publishes, so queries see a bounded-
// stale snapshot instead of starving on 503s.
func (s *Server) run() {
	defer s.wg.Done()
	ticker := time.NewTicker(s.cfg.RecomputeEvery)
	defer ticker.Stop()
	superseded := false
	for {
		select {
		case <-s.stop:
			return
		case <-ticker.C:
			if last := s.snap.Load(); last != nil && last.SeqHigh == s.Seq() {
				continue // window unchanged since the last epoch
			}
			if superseded {
				s.Recompute(s.baseCtx) // backstop: run to completion
				superseded = false
				continue
			}
			superseded = s.recomputeSupervised()
		}
	}
}

// recomputeSupervised runs one epoch solve under supervision,
// cancelling it early in two cases: the server is closing, or the solve
// has been superseded — ingest has advanced a full window capacity past
// the solve's base, so the frozen clone being solved shares no interval
// with the live window and its result could only describe evicted data.
// A superseded solve is abandoned (never published); the return value
// reports whether that happened so the loop can back-stop the next one.
func (s *Server) recomputeSupervised() (superseded bool) {
	base := s.Seq()
	ctx, cancel := context.WithCancel(s.baseCtx)
	defer cancel()
	done := make(chan struct{})
	go func() {
		defer close(done)
		s.Recompute(ctx)
	}()
	pollEvery := s.cfg.RecomputeEvery / 4
	if pollEvery < 10*time.Millisecond {
		pollEvery = 10 * time.Millisecond
	}
	poll := time.NewTicker(pollEvery)
	defer poll.Stop()
	for {
		select {
		case <-done:
			return false
		case <-s.stop:
			cancel()
			<-done
			return false
		case <-poll.C:
			if s.Seq() >= base+uint64(s.cfg.WindowSize) {
				cancel() // superseded: the solved window is fully evicted
				<-done
				return true
			}
		}
	}
}
