// Package server implements the streaming tomography service: a
// sliding-window observation store fed by batched ingest, an
// epoch-versioned solver loop that recomputes the configured
// estimator's result over the live window on a fixed cadence, and the
// versioned HTTP/JSON API served by cmd/tomod.
//
// Concurrency contract (see DESIGN.md):
//
//   - Ingest serializes on one mutex guarding the live stream.Window;
//     batches are applied atomically with respect to snapshots.
//   - The solver loop clones the window under that mutex (cheap, O(state))
//     and runs the estimator on the frozen clone off-lock, so a slow
//     solve never blocks ingest.
//   - Each solve publishes an immutable Snapshot — the estimate, the
//     frozen window it was computed over, and a monotonically increasing
//     epoch — via an atomic pointer swap. Queries load the pointer once
//     and answer entirely from that snapshot, so every response is
//     internally consistent with exactly one epoch and queries never
//     block ingest or the solver.
//   - Epoch solves are cancellable: shutdown cancels the in-flight
//     solve, and a solve whose frozen window has been entirely evicted
//     by newer ingest (superseded) is abandoned rather than published.
//     Cancelled solves return ctx.Err() promptly and never publish.
//
// Sharded mode (Algo = "correlation-complete-sharded") replaces the
// single solver loop with one goroutine per correlation-set shard (see
// topology.Partition): ingest routes each interval into one ring per
// shard (stream.Sharded), each shard loop clones and solves only its
// own ring — warm-starting the structural plan while its always-good
// set is stable — and every shard epoch publishes a fresh merged
// snapshot assembled from the latest per-shard blocks. A congestion
// burst confined to one shard therefore re-derives one block's
// structure while the others keep re-solving their carried-forward
// factorizations; per-shard epochs and lag are exposed on /v1/status.
// Shard solves are not supersession-supervised (warm solves are far
// faster than a window turnover); shutdown still cancels them.
package server

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/bitset"
	"repro/internal/core"
	"repro/internal/estimator"
	"repro/internal/stream"
	"repro/internal/topology"
)

// Config parameterizes the streaming service.
type Config struct {
	// WindowSize is the sliding-window capacity in intervals
	// (default 1000, the paper's monitoring-period length).
	WindowSize int

	// RecomputeEvery is the solver cadence (default 2s). A tick with no
	// new observations since the last epoch is skipped.
	RecomputeEvery time.Duration

	// Algo selects the epoch solver from the estimator registry
	// (default estimator.CorrelationComplete). Queries may still select
	// other algorithms per request with ?algo=.
	Algo string

	// SolverOpts tunes every estimate the server computes — epoch
	// solves and per-request ?algo= runs alike. Invalid options are
	// reported by New, before the service starts.
	SolverOpts []estimator.Option
}

// withDefaults fills the zero values.
func (c Config) withDefaults() Config {
	if c.WindowSize <= 0 {
		c.WindowSize = 1000
	}
	if c.RecomputeEvery <= 0 {
		c.RecomputeEvery = 2 * time.Second
	}
	if c.Algo == "" {
		c.Algo = estimator.CorrelationComplete
	}
	return c
}

// Snapshot is one epoch of solver output. The published fields are
// immutable: Est and Window are never mutated again, so any number of
// queries may read them concurrently. Estimates for other algorithms
// over the same frozen window are computed lazily per request and
// cached on the snapshot.
type Snapshot struct {
	// Epoch increases by one per published solve; queries report it so
	// clients can correlate answers. 0 on an unpublished (cancelled)
	// snapshot.
	Epoch uint64

	// Algo is the registry name of the epoch solver.
	Algo string

	// Est is the epoch estimate over Window; nil when Err is non-nil.
	Est *estimator.Estimate

	// Window is the frozen clone of the live store the estimate was
	// computed over (a single ring, or a stream.Sharded in sharded
	// mode). In sharded mode it is cloned at publish time and may be
	// slightly newer than the per-shard blocks merged into Est; a
	// quiescent Recompute resolves every shard from one clone.
	Window stream.Store

	// Shards describes the per-shard blocks merged into Est; nil
	// outside sharded mode.
	Shards []ShardInfo

	// SeqHigh is the sequence number of the newest interval included:
	// the window covers [SeqHigh−T, SeqHigh).
	SeqHigh uint64

	// T is the number of intervals in the window at solve time.
	T int

	ComputedAt  time.Time
	ComputeTime time.Duration

	// Err is the solver error, if the solve failed; ctx.Err() when the
	// solve was cancelled (shutdown or supersession), in which case the
	// snapshot was not published.
	Err error

	top  *topology.Topology
	opts []estimator.Option

	// lifetime is the server's lifetime context: per-request solves run
	// under it (not the request's context), so a slow solve outlives an
	// impatient client, completes once, and serves every later request
	// from the cache. Shutdown still aborts it.
	lifetime context.Context

	// mu guards byAlgo, the lazy per-request estimate cache. Each
	// algorithm gets its own cell so a slow solve for one algorithm
	// never blocks cache hits (or solves) for another.
	mu     sync.Mutex
	byAlgo map[string]*algoCell
}

// algoCell is one algorithm's slot in the snapshot's lazy cache. The
// solve starts once (once) and runs detached from any single request;
// done closes when est/err are final.
type algoCell struct {
	once sync.Once
	done chan struct{}
	est  *estimator.Estimate
	err  error
}

// EstimateFor returns this snapshot's estimate for the named algorithm
// ("" means the epoch solver's). Estimates for other algorithms are
// computed over the frozen window on first request and cached, so every
// algorithm answers about the same epoch. The solve itself runs under
// the server's lifetime context; the request's ctx only bounds how long
// this caller waits for it — an abandoned request does not waste the
// solve, which completes and serves the next caller from the cache.
func (s *Snapshot) EstimateFor(ctx context.Context, algo string) (*estimator.Estimate, error) {
	if algo == "" || algo == s.Algo {
		if s.Err != nil {
			return nil, s.Err
		}
		return s.Est, nil
	}
	est, err := estimator.New(algo)
	if err != nil {
		return nil, err
	}
	// A request that is already dead neither starts nor waits for a
	// solve; this also keeps the cancelled-solve error deterministic.
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	s.mu.Lock()
	cell := s.byAlgo[algo]
	if cell == nil {
		cell = &algoCell{}
		s.byAlgo[algo] = cell
	}
	s.mu.Unlock()
	cell.once.Do(func() {
		cell.done = make(chan struct{})
		go func() {
			defer close(cell.done)
			cell.est, cell.err = est.Estimate(s.lifetime, s.top, s.Window, s.opts...)
		}()
	})
	// Prefer a finished solve over a dead request context: both may be
	// ready at once and select would pick randomly.
	select {
	case <-cell.done:
		return cell.est, cell.err
	default:
	}
	select {
	case <-cell.done:
		return cell.est, cell.err
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// ShardInfo describes one shard's contribution to a merged snapshot.
type ShardInfo struct {
	Shard int

	// Epoch is the shard's own epoch counter (independent per shard).
	Epoch uint64

	// SeqHigh is the ingest sequence the shard's block was solved at;
	// T the live intervals of its ring at that point.
	SeqHigh uint64
	T       int

	// Warm reports whether the structural plan was carried forward from
	// the shard's previous epoch (see core.ComputePlanned).
	Warm bool

	ComputeTime time.Duration

	// Paths and Links are the shard's slice of the universe.
	Paths, Links int
}

// shardState is one shard's solver state. mu serializes the shard's
// solves (the background loop and synchronous Recompute); the published
// fields below it are guarded by the server's publishMu.
type shardState struct {
	mu sync.Mutex

	res         *core.Result
	seqHigh     uint64
	t           int
	epoch       uint64
	warm        bool
	computeTime time.Duration
	err         error
}

// Server is the streaming tomography service.
type Server struct {
	top *topology.Topology
	cfg Config
	est estimator.Estimator // the epoch solver, resolved from cfg.Algo

	// Sharded mode: the warm-start solver, the partitioned window
	// (aliasing win) and one state per shard. All nil/empty otherwise.
	sharded     *estimator.ShardedSolver
	shardedWin  *stream.Sharded
	shardStates []*shardState
	publishMu   sync.Mutex // guards shardStates' published fields + snapshot assembly

	mu  sync.Mutex // guards win (ingest and snapshot cloning)
	win stream.Store

	computeMu sync.Mutex // serializes solver runs
	epoch     atomic.Uint64
	snap      atomic.Pointer[Snapshot]

	// baseCtx is the lifetime context of the service: Close cancels it,
	// which aborts any in-flight epoch solve promptly.
	baseCtx    context.Context
	baseCancel context.CancelFunc

	stop      chan struct{}
	wg        sync.WaitGroup
	startOnce sync.Once
	closeOnce sync.Once
}

// New assembles a server over the topology, resolving the configured
// estimator and validating the solver options eagerly so a bad
// configuration fails here rather than on the first epoch. Call Start
// to launch the recompute loop and Close to stop it.
func New(top *topology.Topology, cfg Config) (*Server, error) {
	cfg = cfg.withDefaults()
	est, err := estimator.New(cfg.Algo)
	if err != nil {
		return nil, err
	}
	if _, err := estimator.Apply(cfg.SolverOpts...); err != nil {
		return nil, err
	}
	ctx, cancel := context.WithCancel(context.Background())
	s := &Server{
		top:        top,
		cfg:        cfg,
		est:        est,
		baseCtx:    ctx,
		baseCancel: cancel,
		stop:       make(chan struct{}),
	}
	if cfg.Algo == estimator.CorrelationCompleteSharded {
		sv, err := estimator.NewShardedSolver(top, cfg.SolverOpts...)
		if err != nil {
			cancel()
			return nil, err
		}
		part := sv.Partition()
		s.sharded = sv
		s.shardedWin = stream.NewSharded(top.NumPaths(), cfg.WindowSize, part.PathShards(), part.NumShards())
		s.win = s.shardedWin
		s.shardStates = make([]*shardState, sv.NumShards())
		for i := range s.shardStates {
			s.shardStates[i] = &shardState{}
		}
	} else {
		s.win = stream.NewWindow(top.NumPaths(), cfg.WindowSize)
	}
	return s, nil
}

// NumShards returns the number of independent shard solvers (0 outside
// sharded mode).
func (s *Server) NumShards() int { return len(s.shardStates) }

// Topology returns the topology the server monitors.
func (s *Server) Topology() *topology.Topology { return s.top }

// Algo returns the registry name of the configured epoch solver.
func (s *Server) Algo() string { return s.cfg.Algo }

// Start launches the background recompute loop — one solver goroutine
// per shard in sharded mode, a single supervised loop otherwise.
func (s *Server) Start() {
	s.startOnce.Do(func() {
		if s.sharded != nil {
			for sid := range s.shardStates {
				s.wg.Add(1)
				go s.runShard(sid)
			}
			return
		}
		s.wg.Add(1)
		go s.run()
	})
}

// Close stops the recompute loop, cancelling any in-flight epoch solve,
// and waits for the loop to exit.
func (s *Server) Close() {
	s.closeOnce.Do(func() {
		s.baseCancel()
		close(s.stop)
	})
	s.wg.Wait()
}

// Ingest appends a batch of interval observations to the live window,
// atomically with respect to snapshot cloning, and returns the sequence
// number after the batch. Sets may contain indices outside the path
// universe; they are dropped (observe.Recorder semantics).
func (s *Server) Ingest(batch []*bitset.Set) uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, obs := range batch {
		s.win.Add(obs)
	}
	return s.win.Seq()
}

// Seq returns the total number of intervals ingested.
func (s *Server) Seq() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.win.Seq()
}

// Latest returns the most recently published snapshot, or nil before
// the first solve completes.
func (s *Server) Latest() *Snapshot { return s.snap.Load() }

// Recompute clones the live window, runs the configured estimator over
// the frozen clone, publishes the new snapshot, and returns it. It is
// what the background loop calls each tick; tests and the daemon's
// shutdown path call it directly for a synchronous epoch.
//
// ctx cancels the solve mid-flight: the returned snapshot then carries
// ctx.Err() (wrapped) in Err, is NOT published, and does not consume an
// epoch — the previously published snapshot stays current. A nil ctx
// means the server's lifetime context.
func (s *Server) Recompute(ctx context.Context) *Snapshot {
	if ctx == nil {
		ctx = s.baseCtx
	}
	if s.sharded != nil {
		return s.recomputeSharded(ctx)
	}
	s.computeMu.Lock()
	defer s.computeMu.Unlock()
	s.mu.Lock()
	w := s.win.CloneStore()
	s.mu.Unlock()
	start := time.Now()
	est, err := s.est.Estimate(ctx, s.top, w, s.cfg.SolverOpts...)
	snap := &Snapshot{
		Algo:        s.cfg.Algo,
		Est:         est,
		Window:      w,
		SeqHigh:     w.Seq(),
		T:           w.T(),
		ComputedAt:  time.Now(),
		ComputeTime: time.Since(start),
		Err:         err,
		top:         s.top,
		opts:        s.cfg.SolverOpts,
		lifetime:    s.baseCtx,
		byAlgo:      map[string]*algoCell{},
	}
	if err != nil && (errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)) {
		return snap // cancelled: do not publish, do not consume an epoch
	}
	snap.Epoch = s.epoch.Add(1)
	s.snap.Store(snap)
	return snap
}

// recomputeSharded is Recompute for sharded mode: one synchronous epoch
// of every shard from a single frozen clone, then one merged publish.
// Because every block is solved at the same sequence, the published
// estimate equals an offline replay of the surviving window — the
// determinism the e2e tests pin. Cancellation follows the plain path's
// contract: the returned snapshot carries ctx.Err(), is not published,
// and consumes no epoch.
func (s *Server) recomputeSharded(ctx context.Context) *Snapshot {
	s.computeMu.Lock()
	defer s.computeMu.Unlock()
	s.mu.Lock()
	full := s.shardedWin.Clone()
	s.mu.Unlock()
	start := time.Now()
	results := make([]*core.Result, len(s.shardStates))
	warms := make([]bool, len(s.shardStates))
	durs := make([]time.Duration, len(s.shardStates))
	for sid, st := range s.shardStates {
		st.mu.Lock()
		shardStart := time.Now()
		res, warm, err := s.sharded.SolveShard(ctx, sid, full.Shard(sid))
		durs[sid] = time.Since(shardStart)
		st.mu.Unlock()
		if err != nil {
			snap := &Snapshot{
				Algo:        s.cfg.Algo,
				Window:      full,
				SeqHigh:     full.Seq(),
				T:           full.T(),
				ComputedAt:  time.Now(),
				ComputeTime: time.Since(start),
				Err:         err,
				top:         s.top,
				opts:        s.cfg.SolverOpts,
				lifetime:    s.baseCtx,
				byAlgo:      map[string]*algoCell{},
			}
			if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
				return snap // cancelled: do not publish, do not consume an epoch
			}
			s.publishMu.Lock()
			snap.Epoch = s.epoch.Add(1)
			s.publishMu.Unlock()
			s.storeSnapshotGuarded(snap)
			return snap
		}
		results[sid] = res
		warms[sid] = warm
	}
	// Publish every shard's block, unless a background shard epoch has
	// already published a newer one (then its state — and its block —
	// win); merge the surviving blocks off-lock like publishMerged.
	s.publishMu.Lock()
	blocks := make([]*core.Result, len(s.shardStates))
	shards := make([]ShardInfo, len(s.shardStates))
	for sid, st := range s.shardStates {
		if full.Seq() >= st.seqHigh {
			st.res, st.seqHigh, st.t, st.warm, st.err = results[sid], full.Seq(), full.T(), warms[sid], nil
			st.epoch++
			st.computeTime = durs[sid]
		}
		blocks[sid] = st.res
		shards[sid] = s.shardInfoLocked(sid)
	}
	epoch := s.epoch.Add(1)
	s.publishMu.Unlock()
	est := s.sharded.Merge(blocks, full)
	snap := &Snapshot{
		Epoch:       epoch,
		Algo:        s.cfg.Algo,
		Est:         est,
		Window:      full,
		SeqHigh:     full.Seq(),
		T:           full.T(),
		Shards:      shards,
		ComputedAt:  time.Now(),
		ComputeTime: time.Since(start),
		top:         s.top,
		opts:        s.cfg.SolverOpts,
		lifetime:    s.baseCtx,
		byAlgo:      map[string]*algoCell{},
	}
	s.storeSnapshotGuarded(snap)
	return snap
}

// runShard is shard sid's solver loop: one potential shard epoch per
// tick, skipped while nothing has been ingested since the shard's last
// solve. Shutdown cancels an in-flight solve via the lifetime context.
func (s *Server) runShard(sid int) {
	defer s.wg.Done()
	ticker := time.NewTicker(s.cfg.RecomputeEvery)
	defer ticker.Stop()
	for {
		select {
		case <-s.stop:
			return
		case <-ticker.C:
			s.publishMu.Lock()
			solved := s.shardStates[sid].res != nil
			last := s.shardStates[sid].seqHigh
			s.publishMu.Unlock()
			if solved && last == s.Seq() {
				continue // nothing new since this shard's last epoch
			}
			s.solveShard(s.baseCtx, sid)
		}
	}
}

// solveShard runs one epoch of shard sid: clone only the shard's ring
// under the ingest lock, solve it off-lock (warm-starting the
// structural plan when the shard's always-good set is unchanged), then
// publish the shard's block and a fresh merged snapshot. Publication is
// stale-guarded: a block solved at an older sequence than the shard's
// published state (a synchronous Recompute raced ahead) is dropped
// rather than allowed to roll the shard backwards.
func (s *Server) solveShard(ctx context.Context, sid int) {
	st := s.shardStates[sid]
	st.mu.Lock()
	defer st.mu.Unlock()
	s.mu.Lock()
	ring := s.shardedWin.Shard(sid).Clone()
	s.mu.Unlock()
	start := time.Now()
	res, warm, err := s.sharded.SolveShard(ctx, sid, ring)
	s.publishMu.Lock()
	if err != nil {
		st.err = err
		s.publishMu.Unlock()
		return // keep the shard's previous block; merged snapshot unchanged
	}
	if ring.Seq() < st.seqHigh {
		s.publishMu.Unlock()
		return // stale: a newer block for this shard was already published
	}
	st.res, st.seqHigh, st.t, st.warm, st.err = res, ring.Seq(), ring.T(), warm, nil
	st.epoch++
	st.computeTime = time.Since(start)
	s.publishMu.Unlock()
	s.publishMerged()
}

// shardInfoLocked flattens shard sid's published state; the caller
// holds publishMu.
func (s *Server) shardInfoLocked(sid int) ShardInfo {
	st := s.shardStates[sid]
	paths, links := s.sharded.ShardSize(sid)
	return ShardInfo{
		Shard:       sid,
		Epoch:       st.epoch,
		SeqHigh:     st.seqHigh,
		T:           st.t,
		Warm:        st.warm,
		ComputeTime: st.computeTime,
		Paths:       paths,
		Links:       links,
	}
}

// publishMerged assembles a merged snapshot from the latest per-shard
// blocks and publishes it; before every shard has solved at least once
// there is nothing coherent to publish. The per-shard state is
// collected and the global epoch assigned under publishMu (which orders
// epochs by collection time), but the lock is released before the
// expensive part (full-window clone + estimate merge), so concurrent
// shard publishes and /v1/status reads never stall behind a merge. The
// final swap is guarded: a merge that lost the race to a higher-epoch
// publish is dropped, which is safe because the later epoch was
// collected later and therefore saw a superset of the shard updates.
func (s *Server) publishMerged() {
	s.publishMu.Lock()
	results := make([]*core.Result, len(s.shardStates))
	shards := make([]ShardInfo, len(s.shardStates))
	var maxCompute time.Duration
	for sid, st := range s.shardStates {
		if st.res == nil {
			s.publishMu.Unlock()
			return
		}
		results[sid] = st.res
		shards[sid] = s.shardInfoLocked(sid)
		if st.computeTime > maxCompute {
			maxCompute = st.computeTime
		}
	}
	epoch := s.epoch.Add(1)
	s.publishMu.Unlock()

	s.mu.Lock()
	full := s.shardedWin.Clone()
	s.mu.Unlock()
	est := s.sharded.Merge(results, full)
	snap := &Snapshot{
		Epoch:       epoch,
		Algo:        s.cfg.Algo,
		Est:         est,
		Window:      full,
		SeqHigh:     full.Seq(),
		T:           full.T(),
		Shards:      shards,
		ComputedAt:  time.Now(),
		ComputeTime: maxCompute,
		top:         s.top,
		opts:        s.cfg.SolverOpts,
		lifetime:    s.baseCtx,
		byAlgo:      map[string]*algoCell{},
	}
	s.storeSnapshotGuarded(snap)
}

// storeSnapshotGuarded publishes snap unless a higher-epoch snapshot
// got there first.
func (s *Server) storeSnapshotGuarded(snap *Snapshot) {
	s.publishMu.Lock()
	defer s.publishMu.Unlock()
	if cur := s.snap.Load(); cur == nil || cur.Epoch < snap.Epoch {
		s.snap.Store(snap)
	}
}

// run is the solver loop: one potential epoch per tick, skipped when
// nothing was ingested since the last one. Solves normally run under
// supersession supervision; after a superseded cancellation the next
// solve runs unsupervised (shutdown can still abort it), guaranteeing
// forward progress — when ingest permanently outruns the solver, every
// other solve still completes and publishes, so queries see a bounded-
// stale snapshot instead of starving on 503s.
func (s *Server) run() {
	defer s.wg.Done()
	ticker := time.NewTicker(s.cfg.RecomputeEvery)
	defer ticker.Stop()
	superseded := false
	for {
		select {
		case <-s.stop:
			return
		case <-ticker.C:
			if last := s.snap.Load(); last != nil && last.SeqHigh == s.Seq() {
				continue // window unchanged since the last epoch
			}
			if superseded {
				s.Recompute(s.baseCtx) // backstop: run to completion
				superseded = false
				continue
			}
			superseded = s.recomputeSupervised()
		}
	}
}

// recomputeSupervised runs one epoch solve under supervision,
// cancelling it early in two cases: the server is closing, or the solve
// has been superseded — ingest has advanced a full window capacity past
// the solve's base, so the frozen clone being solved shares no interval
// with the live window and its result could only describe evicted data.
// A superseded solve is abandoned (never published); the return value
// reports whether that happened so the loop can back-stop the next one.
func (s *Server) recomputeSupervised() (superseded bool) {
	base := s.Seq()
	ctx, cancel := context.WithCancel(s.baseCtx)
	defer cancel()
	done := make(chan struct{})
	go func() {
		defer close(done)
		s.Recompute(ctx)
	}()
	pollEvery := s.cfg.RecomputeEvery / 4
	if pollEvery < 10*time.Millisecond {
		pollEvery = 10 * time.Millisecond
	}
	poll := time.NewTicker(pollEvery)
	defer poll.Stop()
	for {
		select {
		case <-done:
			return false
		case <-s.stop:
			cancel()
			<-done
			return false
		case <-poll.C:
			if s.Seq() >= base+uint64(s.cfg.WindowSize) {
				cancel() // superseded: the solved window is fully evicted
				<-done
				return true
			}
		}
	}
}
