// Package server implements the streaming tomography service: a
// sliding-window observation store fed by batched ingest, an
// epoch-versioned solver loop that recomputes the configured
// estimator's result over the live window on a fixed cadence, and the
// versioned HTTP/JSON API served by cmd/tomod.
//
// Concurrency contract (see DESIGN.md):
//
//   - Ingest serializes on one mutex guarding the live stream.Window;
//     batches are applied atomically with respect to snapshots.
//   - The solver loop clones the window under that mutex (cheap, O(state))
//     and runs the estimator on the frozen clone off-lock, so a slow
//     solve never blocks ingest.
//   - Each solve publishes an immutable Snapshot — the estimate, the
//     frozen window it was computed over, and a monotonically increasing
//     epoch — via an atomic pointer swap. Queries load the pointer once
//     and answer entirely from that snapshot, so every response is
//     internally consistent with exactly one epoch and queries never
//     block ingest or the solver.
//   - Epoch solves are cancellable: shutdown cancels the in-flight
//     solve, and a solve whose frozen window has been entirely evicted
//     by newer ingest (superseded) is abandoned rather than published.
//     Cancelled solves return ctx.Err() promptly and never publish.
//
// Sharded mode (Algo = "correlation-complete-sharded") replaces the
// single solver loop with one goroutine per correlation-set shard (see
// topology.Partition): ingest routes each interval into one ring per
// shard (stream.Sharded), each shard loop clones and solves only its
// own ring — warm-starting the structural plan while its always-good
// set is stable — and every shard epoch publishes a fresh merged
// snapshot assembled from the latest per-shard blocks. A congestion
// burst confined to one shard therefore re-derives one block's
// structure while the others keep re-solving their carried-forward
// factorizations; per-shard epochs and lag are exposed on /v1/status.
// Shard solves are not supersession-supervised (warm solves are far
// faster than a window turnover); shutdown still cancels them.
package server

import (
	"context"
	"errors"
	"fmt"
	"log/slog"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/bitset"
	"repro/internal/core"
	"repro/internal/estimator"
	"repro/internal/observe"
	"repro/internal/stream"
	"repro/internal/telemetry"
	"repro/internal/topology"
	"repro/internal/wal"
)

// Config parameterizes the streaming service.
type Config struct {
	// WindowSize is the sliding-window capacity in intervals
	// (default 1000, the paper's monitoring-period length).
	WindowSize int

	// RecomputeEvery is the solver cadence (default 2s). A tick with no
	// new observations since the last epoch is skipped.
	RecomputeEvery time.Duration

	// Algo selects the epoch solver from the estimator registry
	// (default estimator.CorrelationComplete). Queries may still select
	// other algorithms per request with ?algo=.
	Algo string

	// SolverOpts tunes every estimate the server computes — epoch
	// solves and per-request ?algo= runs alike. Invalid options are
	// reported by New, before the service starts.
	SolverOpts []estimator.Option

	// EpochEvery, when positive, adds interval-stride epochs to the
	// time-based cadence: ingest freezes a window checkpoint every
	// EpochEvery intervals, and the solver drains all queued
	// checkpoints on its next run — through one batched multi-RHS solve
	// when the epoch solver is correlation-complete — publishing one
	// epoch per checkpoint. A burst that crosses several stride
	// boundaries therefore yields several observable epochs (see
	// /v1/epochs) instead of one coarse latest-state solve.
	//
	// In sharded mode each checkpoint freezes the whole sharded window;
	// the drain runs every shard's queued rings through the backend's
	// batched path (ShardBatchSolver, one multi-RHS solve per shard)
	// when it offers one — sequential SolveShard calls otherwise — and
	// publishes one merged epoch per checkpoint. With a remote backend
	// (the cluster coordinator) shard blocks come from the workers'
	// own live solves, so drained epochs are best-effort rather than
	// checkpoint-exact; the in-process backend is exact.
	EpochEvery int

	// MaxEpochBacklog bounds the queued checkpoints (default 8): when
	// ingest outruns the solver past the bound, the oldest pending
	// checkpoints are dropped (counted on /v1/status) and lag degrades
	// to the latest-state semantics, exactly as without EpochEvery.
	MaxEpochBacklog int

	// WAL configures the durable ingest path. With WAL.Dir set, New
	// opens (and recovers) a write-ahead log there: every ingest batch
	// is logged before it is applied, and a restart replays the log so
	// the sliding window survives a crash instead of refilling from
	// empty. WAL.Horizon defaults to WindowSize. An empty Dir disables
	// durability (the pre-WAL behavior).
	WAL wal.Options

	// MaxIngestBytes bounds one POST /v1/observations body (default
	// 64 MiB, ~ a day of intervals on the paper-scale path universe).
	MaxIngestBytes int64

	// Backend overrides where per-shard solves happen (sharded algo
	// only; New rejects it otherwise). nil means the in-process
	// estimator.ShardedSolver. The cluster coordinator plugs in here:
	// its backend forwards ingest to shard-owning workers
	// (BatchForwarder), fetches their solved blocks (SolveShard) and
	// reports worker health (ClusterReporter), while the server keeps
	// its own full window for merging and observation-level queries.
	Backend ShardBackend

	// Logger receives the service's structured log events (WAL
	// recovery, epoch publishes at debug, solver errors and panics,
	// ingest failures). nil means slog.Default().
	Logger *slog.Logger
}

// withDefaults fills the zero values.
func (c Config) withDefaults() Config {
	if c.WindowSize <= 0 {
		c.WindowSize = 1000
	}
	if c.RecomputeEvery <= 0 {
		c.RecomputeEvery = 2 * time.Second
	}
	if c.Algo == "" {
		c.Algo = estimator.CorrelationComplete
	}
	if c.MaxEpochBacklog <= 0 {
		c.MaxEpochBacklog = 8
	}
	if c.MaxIngestBytes <= 0 {
		c.MaxIngestBytes = maxIngestBody
	}
	return c
}

// Snapshot is one epoch of solver output. The published fields are
// immutable: Est and Window are never mutated again, so any number of
// queries may read them concurrently. Estimates for other algorithms
// over the same frozen window are computed lazily per request and
// cached on the snapshot.
type Snapshot struct {
	// Epoch increases by one per published solve; queries report it so
	// clients can correlate answers. 0 on an unpublished (cancelled)
	// snapshot.
	Epoch uint64

	// Algo is the registry name of the epoch solver.
	Algo string

	// Est is the epoch estimate over Window; nil when Err is non-nil.
	Est *estimator.Estimate

	// Window is the frozen clone of the live store the estimate was
	// computed over (a single ring, or a stream.Sharded in sharded
	// mode). In sharded mode it is cloned at publish time and may be
	// slightly newer than the per-shard blocks merged into Est; a
	// quiescent Recompute resolves every shard from one clone.
	Window stream.Store

	// Shards describes the per-shard blocks merged into Est; nil
	// outside sharded mode.
	Shards []ShardInfo

	// SeqHigh is the sequence number of the newest interval included:
	// the window covers [SeqHigh−T, SeqHigh).
	SeqHigh uint64

	// T is the number of intervals in the window at solve time.
	T int

	// Warm reports that the epoch solver skipped the structural phase
	// (carried-forward plan); Repaired that the plan additionally
	// absorbed an always-good drift via the tier-1 re-key, and
	// RepairedNumeric via the tier-2 factorization patch
	// (core.Plan.RepairNumeric; requires WithNumericalPlanRepair).
	// RepairFailed marks a cold epoch whose repair attempt failed, as
	// opposed to one forced by a config or topology change. Always
	// false outside the warm correlation-complete loop (sharded mode
	// reports the same per shard in Shards).
	Warm            bool
	Repaired        bool
	RepairedNumeric bool
	RepairFailed    bool

	ComputedAt  time.Time
	ComputeTime time.Duration

	// Err is the solver error, if the solve failed; ctx.Err() when the
	// solve was cancelled (shutdown or supersession), in which case the
	// snapshot was not published.
	Err error

	top  *topology.Topology
	opts []estimator.Option

	// lifetime is the server's lifetime context: per-request solves run
	// under it (not the request's context), so a slow solve outlives an
	// impatient client, completes once, and serves every later request
	// from the cache. Shutdown still aborts it.
	lifetime context.Context

	// mu guards byAlgo, the lazy per-request estimate cache. Each
	// algorithm gets its own cell so a slow solve for one algorithm
	// never blocks cache hits (or solves) for another.
	mu     sync.Mutex
	byAlgo map[string]*algoCell
}

// algoCell is one algorithm's slot in the snapshot's lazy cache. The
// solve starts once (once) and runs detached from any single request;
// done closes when est/err are final.
type algoCell struct {
	once sync.Once
	done chan struct{}
	est  *estimator.Estimate
	err  error
}

// EstimateFor returns this snapshot's estimate for the named algorithm
// ("" means the epoch solver's). Estimates for other algorithms are
// computed over the frozen window on first request and cached, so every
// algorithm answers about the same epoch. The solve itself runs under
// the server's lifetime context; the request's ctx only bounds how long
// this caller waits for it — an abandoned request does not waste the
// solve, which completes and serves the next caller from the cache.
func (s *Snapshot) EstimateFor(ctx context.Context, algo string) (*estimator.Estimate, error) {
	if algo == "" || algo == s.Algo {
		if s.Err != nil {
			return nil, s.Err
		}
		return s.Est, nil
	}
	est, err := estimator.New(algo)
	if err != nil {
		return nil, err
	}
	// A request that is already dead neither starts nor waits for a
	// solve; this also keeps the cancelled-solve error deterministic.
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	s.mu.Lock()
	cell := s.byAlgo[algo]
	if cell == nil {
		cell = &algoCell{}
		s.byAlgo[algo] = cell
	}
	s.mu.Unlock()
	cell.once.Do(func() {
		cell.done = make(chan struct{})
		go func() {
			defer close(cell.done)
			cell.est, cell.err = est.Estimate(s.lifetime, s.top, s.Window, s.opts...)
		}()
	})
	// Prefer a finished solve over a dead request context: both may be
	// ready at once and select would pick randomly.
	select {
	case <-cell.done:
		return cell.est, cell.err
	default:
	}
	select {
	case <-cell.done:
		return cell.est, cell.err
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// ShardInfo describes one shard's contribution to a merged snapshot.
type ShardInfo struct {
	Shard int

	// Epoch is the shard's own epoch counter (independent per shard).
	Epoch uint64

	// SeqHigh is the ingest sequence the shard's block was solved at;
	// T the live intervals of its ring at that point.
	SeqHigh uint64
	T       int

	// Warm reports whether the structural plan was carried forward from
	// the shard's previous epoch; Repaired whether it was re-keyed
	// across an always-good drift (tier-1, core.Plan.Repair) and
	// RepairedNumeric whether its factorization was patched across a
	// frontier move (tier-2, core.Plan.RepairNumeric). RepairFailed
	// marks a cold shard epoch whose repair attempt failed.
	Warm            bool
	Repaired        bool
	RepairedNumeric bool
	RepairFailed    bool

	ComputeTime time.Duration

	// EpochBacklog is the shard's pending interval-stride checkpoints
	// (0 unless Config.EpochEvery is set).
	EpochBacklog int

	// Paths and Links are the shard's slice of the universe.
	Paths, Links int
}

// shardState is one shard's solver state. mu serializes the shard's
// solves (the background loop and synchronous Recompute); the published
// fields below it are guarded by the server's publishMu.
type shardState struct {
	mu sync.Mutex

	// epochBacklog is the shard's pending interval-stride checkpoints
	// (Config.EpochEvery in sharded mode): set by ingest at enqueue,
	// cleared as the drain finishes the shard's solves. Atomic so
	// /v1/status reads it without the ingest or publish locks.
	epochBacklog atomic.Int64

	res             *core.Result
	seqHigh         uint64
	t               int
	epoch           uint64
	warm            bool
	repaired        bool
	repairedNumeric bool
	repairFailed    bool
	computeTime     time.Duration
	err             error
}

// EpochSummary is one published epoch's record in the server's bounded
// history ring, the backing of GET /v1/epochs.
type EpochSummary struct {
	Epoch           uint64
	SeqHigh         uint64
	T               int
	Warm            bool
	Repaired        bool
	RepairedNumeric bool
	RepairFailed    bool
	ComputedAt      time.Time
	ComputeTime     time.Duration
	Err             string
}

// Server is the streaming tomography service.
type Server struct {
	top    *topology.Topology
	cfg    Config
	est    estimator.Estimator // the epoch solver, resolved from cfg.Algo
	logger *slog.Logger

	// shardLag holds the per-shard lag gauges, resolved once in New so
	// the shard solver loops never pay a labeled lookup; nil outside
	// sharded mode.
	shardLag []*telemetry.Gauge

	// warmSolver carries the correlation-complete structural plan
	// across unsharded epochs (nil for other algorithms): the loop no
	// longer discards its plan, so steady-state epochs skip the
	// structural phase and always-good drift repairs in O(Δ). Guarded
	// by computeMu (one solver loop owns it).
	warmSolver *estimator.WarmSolver

	// Sharded mode: the shard-solve backend (in-process warm solver or
	// the cluster coordinator), the partitioned window (aliasing win,
	// internally locked with per-shard granularity) and one state per
	// shard. All nil/empty otherwise.
	backend     ShardBackend
	shardedWin  *stream.Sharded
	shardStates []*shardState
	publishMu   sync.Mutex // guards shardStates' published fields, snapshot assembly + history

	// history is the bounded ring of published epochs (newest last,
	// ascending epoch after sorting on read); guarded by publishMu.
	history []EpochSummary

	mu  sync.Mutex // guards win in unsharded mode (ingest, cloning, backlog)
	win stream.Store

	// backlog holds the frozen interval-stride checkpoints ingest has
	// queued for the solver (Config.EpochEvery); dropped counts the
	// checkpoints discarded past MaxEpochBacklog. Guarded by mu.
	backlog        []stream.Store
	backlogDropped uint64

	computeMu sync.Mutex // serializes solver runs
	epoch     atomic.Uint64
	snap      atomic.Pointer[Snapshot]

	// tiers holds the server's own cumulative epoch-solve counts by
	// plan path for /v1/status (the tomod_epoch_solves_total counters
	// in metrics.go are process-wide, which tests sharing a registry
	// cannot read per server).
	tiers struct {
		cold, warm, repaired, repairedNumeric, repairFailed atomic.Uint64
	}

	// wal is the write-ahead log behind the window (nil when
	// durability is disabled); walRecovered the recovery record of the
	// startup scan, frozen after New.
	wal          *wal.WAL
	walRecovered wal.RecoveryStats

	// degraded holds the latest contained-failure reason (a string; ""
	// when healthy). Solver panics set it; the next clean publish
	// clears it. A latched WAL failure is reported alongside it by
	// DegradedReason.
	degraded atomic.Value

	// baseCtx is the lifetime context of the service: Close cancels it,
	// which aborts any in-flight epoch solve promptly.
	baseCtx    context.Context
	baseCancel context.CancelFunc

	stop      chan struct{}
	wg        sync.WaitGroup
	startOnce sync.Once
	closeOnce sync.Once
}

// New assembles a server over the topology, resolving the configured
// estimator and validating the solver options eagerly so a bad
// configuration fails here rather than on the first epoch. Call Start
// to launch the recompute loop and Close to stop it.
func New(top *topology.Topology, cfg Config) (*Server, error) {
	cfg = cfg.withDefaults()
	est, err := estimator.New(cfg.Algo)
	if err != nil {
		return nil, err
	}
	if _, err := estimator.Apply(cfg.SolverOpts...); err != nil {
		return nil, err
	}
	logger := cfg.Logger
	if logger == nil {
		logger = slog.Default()
	}
	ctx, cancel := context.WithCancel(context.Background())
	s := &Server{
		top:        top,
		cfg:        cfg,
		est:        est,
		logger:     logger,
		baseCtx:    ctx,
		baseCancel: cancel,
		stop:       make(chan struct{}),
	}
	if cfg.Algo == estimator.CorrelationCompleteSharded {
		if cfg.Backend != nil {
			s.backend = cfg.Backend
		} else {
			sv, err := estimator.NewShardedSolver(top, cfg.SolverOpts...)
			if err != nil {
				cancel()
				return nil, err
			}
			s.backend = &localBackend{sv: sv}
		}
		s.shardedWin = stream.NewSharded(top.NumPaths(), cfg.WindowSize, s.backend.PathShards(), s.backend.NumShards())
		s.win = s.shardedWin
		s.shardStates = make([]*shardState, s.backend.NumShards())
		s.shardLag = make([]*telemetry.Gauge, s.backend.NumShards())
		for i := range s.shardStates {
			s.shardStates[i] = &shardState{}
			s.shardLag[i] = metricShardLag.With(strconv.Itoa(i))
		}
	} else if cfg.Backend != nil {
		cancel()
		return nil, errors.New("server: Config.Backend requires the sharded algorithm (correlation-complete-sharded)")
	} else {
		if cfg.Algo == estimator.CorrelationComplete {
			ws, err := estimator.NewWarmSolver(top, cfg.SolverOpts...)
			if err != nil {
				cancel()
				return nil, err
			}
			s.warmSolver = ws
		}
		s.win = stream.NewWindow(top.NumPaths(), cfg.WindowSize)
	}
	if cfg.WAL.Dir != "" {
		if err := s.openWAL(); err != nil {
			cancel()
			return nil, err
		}
	}
	return s, nil
}

// openWAL opens (or recovers) the write-ahead log and rebuilds the
// window from it: the store is fast-forwarded to the log's first
// retained sequence, every surviving record is replayed through the
// raw Add path (which never re-logs), and only then is the log
// attached so subsequent ingest logs before applying. A log the scan
// cannot vouch for (corruption before the torn tail) fails startup
// loudly rather than serving estimates over silently dropped data.
func (s *Server) openWAL() error {
	opts := s.cfg.WAL
	if opts.Horizon == 0 {
		opts.Horizon = s.cfg.WindowSize
	}
	w, err := wal.Open(opts)
	if err != nil {
		return fmt.Errorf("server: opening WAL: %w", err)
	}
	rec := w.Recovered()
	if rec.Records > 0 {
		s.win.ResetSeq(rec.FirstSeq)
		if err := w.Replay(func(_ uint64, batch []*bitset.Set) error {
			for _, obs := range batch {
				s.win.Add(obs)
			}
			return nil
		}); err != nil {
			w.Close()
			return fmt.Errorf("server: replaying WAL: %w", err)
		}
	}
	s.win.SetLog(w)
	s.wal = w
	s.walRecovered = rec
	s.logger.Info("wal recovered",
		"dir", opts.Dir,
		"records", rec.Records,
		"intervals", rec.Intervals,
		"first_seq", rec.FirstSeq,
		"last_seq", rec.LastSeq,
		"truncated_bytes", rec.TruncatedBytes)
	return nil
}

// NumShards returns the number of independent shard solvers (0 outside
// sharded mode).
func (s *Server) NumShards() int { return len(s.shardStates) }

// Topology returns the topology the server monitors.
func (s *Server) Topology() *topology.Topology { return s.top }

// Algo returns the registry name of the configured epoch solver.
func (s *Server) Algo() string { return s.cfg.Algo }

// Start launches the background recompute loop — one solver goroutine
// per shard in sharded mode, a single supervised loop otherwise.
func (s *Server) Start() {
	s.startOnce.Do(func() {
		if s.backend != nil {
			if lc, ok := s.backend.(BackendLifecycle); ok {
				lc.Start(s.shardedWin)
			}
			for sid := range s.shardStates {
				s.wg.Add(1)
				go s.runShard(sid)
			}
			if s.cfg.EpochEvery > 0 {
				s.wg.Add(1)
				go s.runDrain()
			}
			return
		}
		s.wg.Add(1)
		go s.run()
	})
}

// Close stops the recompute loop, cancelling any in-flight epoch solve,
// and waits for the loop to exit.
func (s *Server) Close() {
	s.closeOnce.Do(func() {
		s.baseCancel()
		close(s.stop)
	})
	s.wg.Wait()
	if lc, ok := s.backend.(BackendLifecycle); ok {
		lc.Close() // after the solver loops: no more backend solves in flight
	}
	if s.wal != nil {
		s.wal.Close() // flushes the tail; safe after ingest has stopped
	}
}

// Ready reports whether the service can serve coherent queries: WAL
// recovery (synchronous in New) is complete and the first snapshot has
// been published. GET /v1/readyz exposes it to orchestrators.
func (s *Server) Ready() bool { return s.snap.Load() != nil }

// WALStats returns the live WAL counters and the startup recovery
// record; ok is false when durability is disabled.
func (s *Server) WALStats() (st wal.Stats, rec wal.RecoveryStats, ok bool) {
	if s.wal == nil {
		return wal.Stats{}, wal.RecoveryStats{}, false
	}
	return s.wal.Stats(), s.walRecovered, true
}

// SolveTierCounts is the server's cumulative published-epoch count by
// plan path, as served on /v1/status. RepairFailed counts cold solves
// whose repair attempt failed and overlaps Cold; the other four
// partition the total.
type SolveTierCounts struct {
	Cold            uint64 `json:"cold"`
	Warm            uint64 `json:"warm"`
	Repaired        uint64 `json:"repaired"`
	RepairedNumeric uint64 `json:"repaired_numeric"`
	RepairFailed    uint64 `json:"repair_failed"`
}

// SolveTiers returns the cumulative per-tier epoch-solve counts.
func (s *Server) SolveTiers() SolveTierCounts {
	return SolveTierCounts{
		Cold:            s.tiers.cold.Load(),
		Warm:            s.tiers.warm.Load(),
		Repaired:        s.tiers.repaired.Load(),
		RepairedNumeric: s.tiers.repairedNumeric.Load(),
		RepairFailed:    s.tiers.repairFailed.Load(),
	}
}

// observeSolve records one published epoch's plan path on both the
// process-wide metrics and the server's own /v1/status counters.
func (s *Server) observeSolve(info estimator.SolveInfo) {
	switch {
	case info.RepairedNumeric:
		s.tiers.repairedNumeric.Add(1)
	case info.Repaired:
		s.tiers.repaired.Add(1)
	case info.Warm:
		s.tiers.warm.Add(1)
	default:
		s.tiers.cold.Add(1)
	}
	if info.RepairFailed {
		s.tiers.repairFailed.Add(1)
	}
	observeSolveMetrics(info)
}

// ErrSolverPanic wraps a panic recovered from an estimator call: the
// panic becomes an error snapshot plus a degraded_reason on
// /v1/status instead of killing the daemon.
var ErrSolverPanic = errors.New("server: solver panicked")

// guardPanic runs fn, containing any panic as an ErrSolverPanic and
// marking the server degraded.
func (s *Server) guardPanic(fn func()) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("%w: %v", ErrSolverPanic, r)
			s.setDegraded(err.Error())
			metricSolverPanics.Inc()
			s.logger.Error("solver panicked", "panic", fmt.Sprint(r))
		}
	}()
	fn()
	return nil
}

func (s *Server) setDegraded(reason string) { s.degraded.Store(reason) }

// DegradedReason returns why the service is degraded ("" when
// healthy): the latest contained solver panic — cleared by the next
// clean publish — a latched WAL failure, which persists until restart
// (see the wal package's degradation contract), or unreachable cluster
// shards, which clear when the owning workers rejoin and catch up.
func (s *Server) DegradedReason() string {
	if v, _ := s.degraded.Load().(string); v != "" {
		return v
	}
	if s.wal != nil {
		if err := s.wal.Err(); err != nil {
			return "wal: " + err.Error()
		}
	}
	if cs := s.clusterStatus(); cs != nil && len(cs.UnreachableShards) > 0 {
		return fmt.Sprintf("cluster: %d shard(s) unavailable (workers unreachable)", len(cs.UnreachableShards))
	}
	return ""
}

// clusterStatus returns the backend's worker report, or nil outside
// cluster mode.
func (s *Server) clusterStatus() *ClusterStatus {
	if r, ok := s.backend.(ClusterReporter); ok {
		return r.ClusterStatus()
	}
	return nil
}

// Ingest appends a batch of interval observations to the live window,
// atomically with respect to snapshot cloning, and returns the sequence
// number after the batch. Sets may contain indices outside the path
// universe; they are dropped (observe.Recorder semantics).
//
// In sharded mode the batch goes through stream.Sharded.AddBatch,
// whose shard-aware locking applies each shard's column of the batch
// under that shard's own ring lock — a shard solver cloning its ring
// mid-batch waits only for its own shard's slice, not for the whole
// fan-out. With Config.EpochEvery set, ingest also freezes a window
// checkpoint at every stride boundary it crosses — the plain window
// unsharded, the whole sharded window otherwise — bounded by
// MaxEpochBacklog (oldest dropped first); the batch is split at those
// boundaries so each WAL record ends exactly on a checkpoint seq.
//
// With a WAL attached, each (sub-)batch is persisted before it is
// applied; on a log failure nothing past the failed record is applied
// and the error is returned — the HTTP layer maps it to 503 with
// Retry-After. A stalled WAL disk fails fast (wal.ErrStalled) instead
// of wedging every ingest request behind the hung fsync.
func (s *Server) Ingest(batch []*bitset.Set) (uint64, error) {
	n := uint64(len(batch))
	stride := uint64(s.cfg.EpochEvery)
	if s.backend != nil {
		fw, _ := s.backend.(BatchForwarder)
		if fw != nil || stride > 0 {
			// Cluster fan-out needs consistent base sequences and
			// checkpointing needs exact stride boundaries: both
			// serialize sharded ingest under mu. The plain sharded path
			// below stays off mu (AddBatch's per-shard locks suffice).
			s.mu.Lock()
			defer s.mu.Unlock()
		}
		if fw != nil {
			// Cluster mode: forward to the shard owners first, then apply
			// locally. A retry after a partial failure is safe either
			// way: workers deduplicate by base seq, and the local window
			// only advances once the whole fan-out has accepted.
			base := s.shardedWin.Seq()
			if err := fw.Forward(base, batch); err != nil {
				s.logger.Warn("ingest fan-out failed", "seq", base, "error", err)
				return base, err
			}
		}
		if stride == 0 {
			seq, err := s.shardedWin.AddBatch(batch)
			if err != nil {
				s.logger.Warn("ingest failed", "seq", seq, "error", err)
				return seq, err
			}
			metricIngestBatches.Inc()
			metricIngestIntervals.Add(n)
			return seq, nil
		}
		for len(batch) > 0 {
			nb := len(batch)
			if to := int(stride - s.shardedWin.Seq()%stride); to < nb {
				nb = to
			}
			seq, err := s.shardedWin.AddBatch(batch[:nb])
			if err != nil {
				s.logger.Warn("ingest failed", "seq", seq, "error", err)
				return seq, err
			}
			batch = batch[nb:]
			if seq%stride == 0 {
				// The whole sharded window freezes at the boundary: the
				// drain solves each shard's ring of this clone and
				// merges over it.
				s.enqueueCheckpointLocked(s.shardedWin.Clone())
			}
		}
		metricIngestBatches.Inc()
		metricIngestIntervals.Add(n)
		return s.shardedWin.Seq(), nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for len(batch) > 0 {
		nb := len(batch)
		if stride > 0 {
			if to := int(stride - s.win.Seq()%stride); to < nb {
				nb = to
			}
		}
		seq, err := s.win.AddBatch(batch[:nb])
		if err != nil {
			s.logger.Warn("ingest failed", "seq", seq, "error", err)
			return seq, err
		}
		batch = batch[nb:]
		if stride > 0 && seq%stride == 0 {
			s.enqueueCheckpointLocked(s.win.CloneStore())
		}
	}
	metricIngestBatches.Inc()
	metricIngestIntervals.Add(n)
	return s.win.Seq(), nil
}

// enqueueCheckpointLocked queues one frozen checkpoint for the drain,
// dropping the oldest past MaxEpochBacklog. The caller holds mu; in
// sharded mode the per-shard backlog gauges track the queue length.
func (s *Server) enqueueCheckpointLocked(ck stream.Store) {
	s.backlog = append(s.backlog, ck)
	if len(s.backlog) > s.cfg.MaxEpochBacklog {
		dropped := len(s.backlog) - s.cfg.MaxEpochBacklog
		s.backlog = append(s.backlog[:0], s.backlog[dropped:]...)
		s.backlogDropped += uint64(dropped)
		metricCheckpointsDropped.Add(uint64(dropped))
	}
	metricBacklog.Set(int64(len(s.backlog)))
	for _, st := range s.shardStates {
		st.epochBacklog.Store(int64(len(s.backlog)))
	}
}

// Seq returns the total number of intervals ingested.
func (s *Server) Seq() uint64 {
	if s.backend != nil {
		return s.shardedWin.Seq()
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.win.Seq()
}

// Latest returns the most recently published snapshot, or nil before
// the first solve completes.
func (s *Server) Latest() *Snapshot { return s.snap.Load() }

// backlogPending reports whether interval-stride checkpoints await the
// solver.
func (s *Server) backlogPending() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.backlog) > 0
}

// backlogStats returns the pending checkpoint count and how many have
// been dropped past MaxEpochBacklog.
func (s *Server) backlogStats() (pending int, dropped uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.backlog), s.backlogDropped
}

// Recompute clones the live window, runs the configured estimator over
// the frozen clone, publishes the new snapshot, and returns it. It is
// what the background loop calls each tick; tests and the daemon's
// shutdown path call it directly for a synchronous epoch.
//
// ctx cancels the solve mid-flight: the returned snapshot then carries
// ctx.Err() (wrapped) in Err, is NOT published, and does not consume an
// epoch — the previously published snapshot stays current. A nil ctx
// means the server's lifetime context.
func (s *Server) Recompute(ctx context.Context) *Snapshot {
	if ctx == nil {
		ctx = s.baseCtx
	}
	if s.backend != nil {
		return s.recomputeSharded(ctx)
	}
	s.computeMu.Lock()
	defer s.computeMu.Unlock()
	drained, err := s.drainBacklog(ctx)
	if err != nil {
		return drained // error/cancelled snapshot; checkpoints were requeued
	}
	s.mu.Lock()
	w := s.win.CloneStore()
	s.mu.Unlock()
	if drained != nil && drained.SeqHigh == w.Seq() {
		// The newest checkpoint was the live state: the drain already
		// published this epoch.
		return drained
	}
	start := time.Now()
	var est *estimator.Estimate
	var info estimator.SolveInfo
	if perr := s.guardPanic(func() {
		if s.warmSolver != nil {
			est, info, err = s.warmSolver.Estimate(ctx, w)
		} else {
			est, err = s.est.Estimate(ctx, s.top, w, s.cfg.SolverOpts...)
		}
	}); perr != nil {
		est, err = nil, perr
	}
	snap := &Snapshot{
		Algo:            s.cfg.Algo,
		Est:             est,
		Window:          w,
		SeqHigh:         w.Seq(),
		T:               w.T(),
		Warm:            info.Warm,
		Repaired:        info.Repaired,
		RepairedNumeric: info.RepairedNumeric,
		RepairFailed:    info.RepairFailed,
		ComputedAt:      time.Now(),
		ComputeTime:     time.Since(start),
		Err:             err,
		top:             s.top,
		opts:            s.cfg.SolverOpts,
		lifetime:        s.baseCtx,
		byAlgo:          map[string]*algoCell{},
	}
	if err != nil && (errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)) {
		return snap // cancelled: do not publish, do not consume an epoch
	}
	if err == nil {
		s.observeSolve(info)
	}
	s.publish(snap)
	return snap
}

// drainBacklog solves every queued interval-stride checkpoint —
// through the warm solver's batched multi-RHS path when available —
// and publishes one epoch per checkpoint, returning the newest
// published snapshot (nil when the backlog was empty). Errors follow
// Recompute's contract: a cancellation requeues the checkpoints (the
// MaxEpochBacklog bound re-applied) and returns an unpublished
// snapshot consuming no epoch; any other solver error publishes the
// error snapshot — visible on /v1/status and in the history — and
// drops the failed checkpoints so a persistent error can never pin
// the solver to the backlog and starve the live-window solve.
func (s *Server) drainBacklog(ctx context.Context) (*Snapshot, error) {
	s.mu.Lock()
	pending := s.backlog
	s.backlog = nil
	metricBacklog.Set(0)
	s.mu.Unlock()
	if len(pending) == 0 {
		return nil, nil
	}
	start := time.Now()
	ests := make([]*estimator.Estimate, len(pending))
	infos := make([]estimator.SolveInfo, len(pending))
	var err error
	if perr := s.guardPanic(func() {
		if s.warmSolver != nil {
			stores := make([]observe.Store, len(pending))
			for i, w := range pending {
				stores[i] = w
			}
			ests, infos, err = s.warmSolver.EstimateBatch(ctx, stores)
		} else {
			for i, w := range pending {
				if ests[i], err = s.est.Estimate(ctx, s.top, w, s.cfg.SolverOpts...); err != nil {
					break
				}
			}
		}
	}); perr != nil {
		err = perr
	}
	if err != nil {
		last := pending[len(pending)-1]
		snap := &Snapshot{
			Algo:        s.cfg.Algo,
			Window:      last,
			SeqHigh:     last.Seq(),
			T:           last.T(),
			ComputedAt:  time.Now(),
			ComputeTime: time.Since(start),
			Err:         err,
			top:         s.top,
			opts:        s.cfg.SolverOpts,
			lifetime:    s.baseCtx,
			byAlgo:      map[string]*algoCell{},
		}
		if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			// Cancelled: requeue for the next tick, keeping the bound.
			s.mu.Lock()
			s.backlog = append(pending, s.backlog...)
			if over := len(s.backlog) - s.cfg.MaxEpochBacklog; over > 0 {
				s.backlog = append(s.backlog[:0], s.backlog[over:]...)
				s.backlogDropped += uint64(over)
				metricCheckpointsDropped.Add(uint64(over))
			}
			metricBacklog.Set(int64(len(s.backlog)))
			s.mu.Unlock()
			return snap, err // not published, no epoch consumed
		}
		s.publish(snap)
		s.mu.Lock()
		s.backlogDropped += uint64(len(pending))
		s.mu.Unlock()
		metricCheckpointsDropped.Add(uint64(len(pending)))
		return snap, err
	}
	// One publish per checkpoint, oldest first; the batch's cost is
	// amortized evenly across the drained epochs. Stage histograms get
	// nothing here: a batched drain has no per-epoch stage attribution
	// (estimator.SolveInfo documents the zero times).
	share := time.Duration(int64(time.Since(start)) / int64(len(pending)))
	var newest *Snapshot
	for i, w := range pending {
		s.observeSolve(infos[i]) // stage times are zero on batched drains
		snap := &Snapshot{
			Algo:            s.cfg.Algo,
			Est:             ests[i],
			Window:          w,
			SeqHigh:         w.Seq(),
			T:               w.T(),
			Warm:            infos[i].Warm,
			Repaired:        infos[i].Repaired,
			RepairedNumeric: infos[i].RepairedNumeric,
			RepairFailed:    infos[i].RepairFailed,
			ComputedAt:      time.Now(),
			ComputeTime:     share,
			top:             s.top,
			opts:            s.cfg.SolverOpts,
			lifetime:        s.baseCtx,
			byAlgo:          map[string]*algoCell{},
		}
		s.publish(snap)
		newest = snap
	}
	return newest, nil
}

// publish assigns the next epoch to snap, makes it the latest snapshot
// and records it in the history ring. The pointer swap is seq-guarded:
// a drained checkpoint older than the already-published live window
// consumes its epoch and enters the history but never rolls the latest
// snapshot backwards in ingest sequence.
func (s *Server) publish(snap *Snapshot) {
	// The lag gauge reads the live sequence before taking publishMu
	// (Seq takes the ingest lock; keep the two disjoint).
	lag := int64(s.Seq() - snap.SeqHigh)
	s.publishMu.Lock()
	defer s.publishMu.Unlock()
	snap.Epoch = s.epoch.Add(1)
	if cur := s.snap.Load(); cur == nil || (cur.Epoch < snap.Epoch && cur.SeqHigh <= snap.SeqHigh) {
		s.snap.Store(snap)
		metricEpochLag.Set(lag)
	}
	if snap.Err == nil {
		s.setDegraded("") // a clean epoch ends solver-panic degradation
	}
	s.appendHistoryLocked(snap)
	s.logEpoch(snap)
}

// logEpoch emits one structured event per published epoch: debug on a
// clean solve (these are frequent), warn on an error snapshot.
func (s *Server) logEpoch(snap *Snapshot) {
	if snap.Err != nil {
		s.logger.Warn("epoch solve failed",
			"epoch", snap.Epoch,
			"seq_high", snap.SeqHigh,
			"error", snap.Err.Error())
		return
	}
	s.logger.Debug("epoch published",
		"epoch", snap.Epoch,
		"seq_high", snap.SeqHigh,
		"t", snap.T,
		"warm", snap.Warm,
		"repaired", snap.Repaired,
		"repaired_numeric", snap.RepairedNumeric,
		"repair_failed", snap.RepairFailed,
		"shards", len(snap.Shards),
		"compute_ms", float64(snap.ComputeTime)/float64(time.Millisecond))
}

// epochHistoryCap bounds the history ring behind GET /v1/epochs.
const epochHistoryCap = 64

// appendHistoryLocked records a published epoch; the caller holds
// publishMu.
func (s *Server) appendHistoryLocked(snap *Snapshot) {
	sum := EpochSummary{
		Epoch:           snap.Epoch,
		SeqHigh:         snap.SeqHigh,
		T:               snap.T,
		Warm:            snap.Warm,
		Repaired:        snap.Repaired,
		RepairedNumeric: snap.RepairedNumeric,
		RepairFailed:    snap.RepairFailed,
		ComputedAt:      snap.ComputedAt,
		ComputeTime:     snap.ComputeTime,
	}
	if snap.Err != nil {
		sum.Err = snap.Err.Error()
	}
	s.history = append(s.history, sum)
	if len(s.history) > epochHistoryCap {
		s.history = append(s.history[:0], s.history[len(s.history)-epochHistoryCap:]...)
	}
}

// History returns the published-epoch ring, oldest first.
func (s *Server) History() []EpochSummary {
	s.publishMu.Lock()
	defer s.publishMu.Unlock()
	out := append([]EpochSummary(nil), s.history...)
	sort.Slice(out, func(i, j int) bool { return out[i].Epoch < out[j].Epoch })
	return out
}

// recomputeSharded is Recompute for sharded mode: one synchronous epoch
// of every shard from a single frozen clone, then one merged publish.
// Because every block is solved at the same sequence, the published
// estimate equals an offline replay of the surviving window — the
// determinism the e2e tests pin. Cancellation follows the plain path's
// contract: the returned snapshot carries ctx.Err(), is not published,
// and consumes no epoch.
func (s *Server) recomputeSharded(ctx context.Context) *Snapshot {
	s.computeMu.Lock()
	defer s.computeMu.Unlock()
	drained, derr := s.drainShardBacklog(ctx)
	if derr != nil {
		return drained // error/cancelled snapshot; checkpoints handled per contract
	}
	full := s.shardedWin.Clone()
	if drained != nil && drained.SeqHigh == full.Seq() {
		// The newest checkpoint was the live state: the drain already
		// published this epoch.
		return drained
	}
	start := time.Now()
	solves := make([]ShardSolve, len(s.shardStates))
	durs := make([]time.Duration, len(s.shardStates))
	for sid, st := range s.shardStates {
		st.mu.Lock()
		shardStart := time.Now()
		var sol ShardSolve
		var err error
		if perr := s.guardPanic(func() {
			sol, err = s.backend.SolveShard(ctx, sid, full.Shard(sid))
		}); perr != nil {
			sol, err = ShardSolve{}, perr
		}
		durs[sid] = time.Since(shardStart)
		st.mu.Unlock()
		if err != nil {
			snap := &Snapshot{
				Algo:        s.cfg.Algo,
				Window:      full,
				SeqHigh:     full.Seq(),
				T:           full.T(),
				ComputedAt:  time.Now(),
				ComputeTime: time.Since(start),
				Err:         err,
				top:         s.top,
				opts:        s.cfg.SolverOpts,
				lifetime:    s.baseCtx,
				byAlgo:      map[string]*algoCell{},
			}
			if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
				return snap // cancelled: do not publish, do not consume an epoch
			}
			s.publishMu.Lock()
			snap.Epoch = s.epoch.Add(1)
			s.publishMu.Unlock()
			s.storeSnapshotGuarded(snap)
			return snap
		}
		solves[sid] = sol
	}
	// Publish every shard's block, unless a background shard epoch has
	// already published a newer one (then its state — and its block —
	// win); merge the surviving blocks off-lock like publishMerged.
	s.publishMu.Lock()
	blocks := make([]*core.Result, len(s.shardStates))
	shards := make([]ShardInfo, len(s.shardStates))
	for sid, st := range s.shardStates {
		sol := solves[sid]
		if sol.SeqHigh >= st.seqHigh {
			st.res, st.seqHigh, st.t, st.err = sol.Res, sol.SeqHigh, sol.T, nil
			st.warm, st.repaired = sol.Info.Warm, sol.Info.Repaired
			st.repairedNumeric, st.repairFailed = sol.Info.RepairedNumeric, sol.Info.RepairFailed
			st.epoch++
			st.computeTime = durs[sid]
			s.observeSolve(sol.Info)
			s.shardLag[sid].Set(0) // solved at the clone's own sequence
		}
		blocks[sid] = st.res
		shards[sid] = s.shardInfoLocked(sid)
	}
	epoch := s.epoch.Add(1)
	s.publishMu.Unlock()
	var est *estimator.Estimate
	mergeErr := s.guardPanic(func() { est = s.backend.Merge(blocks, full) })
	snap := &Snapshot{
		Epoch:       epoch,
		Algo:        s.cfg.Algo,
		Est:         est,
		Window:      full,
		SeqHigh:     full.Seq(),
		T:           full.T(),
		Shards:      shards,
		ComputedAt:  time.Now(),
		ComputeTime: time.Since(start),
		Err:         mergeErr,
		top:         s.top,
		opts:        s.cfg.SolverOpts,
		lifetime:    s.baseCtx,
		byAlgo:      map[string]*algoCell{},
	}
	s.storeSnapshotGuarded(snap)
	return snap
}

// drainShardBacklog solves every queued interval-stride checkpoint of
// the sharded window — each shard's run of frozen rings through the
// backend's batched path (ShardBatchSolver, one multi-RHS solve per
// shard) when it offers one, sequential SolveShard calls otherwise —
// and publishes one merged epoch per checkpoint, oldest first,
// returning the newest published snapshot (nil when the backlog was
// empty). Errors follow the unsharded drain's contract: a cancellation
// requeues the checkpoints (the MaxEpochBacklog bound re-applied) and
// returns an unpublished snapshot consuming no epoch; any other error
// publishes the error snapshot and drops the pending checkpoints so a
// persistent failure can never starve the live solves.
func (s *Server) drainShardBacklog(ctx context.Context) (*Snapshot, error) {
	s.mu.Lock()
	pending := s.backlog
	s.backlog = nil
	metricBacklog.Set(0)
	s.mu.Unlock()
	if len(pending) == 0 {
		return nil, nil
	}
	cks := make([]*stream.Sharded, len(pending))
	for i, w := range pending {
		cks[i] = w.(*stream.Sharded)
	}
	start := time.Now()
	bb, _ := s.backend.(ShardBatchSolver)
	sols := make([][]ShardSolve, len(s.shardStates))
	var err error
	for sid := range s.shardStates {
		st := s.shardStates[sid]
		rings := make([]*stream.Window, len(cks))
		for k, ck := range cks {
			rings[k] = ck.Shard(sid)
		}
		st.mu.Lock()
		if perr := s.guardPanic(func() {
			if bb != nil {
				sols[sid], err = bb.SolveShardBatch(ctx, sid, rings)
			} else {
				sols[sid] = make([]ShardSolve, len(rings))
				for k, ring := range rings {
					if sols[sid][k], err = s.backend.SolveShard(ctx, sid, ring); err != nil {
						break
					}
				}
			}
		}); perr != nil {
			err = perr
		}
		st.mu.Unlock()
		if err != nil {
			break
		}
		st.epochBacklog.Store(0) // this shard's checkpoints are solved
	}
	if err != nil {
		last := cks[len(cks)-1]
		snap := &Snapshot{
			Algo:        s.cfg.Algo,
			Window:      last,
			SeqHigh:     last.Seq(),
			T:           last.T(),
			ComputedAt:  time.Now(),
			ComputeTime: time.Since(start),
			Err:         err,
			top:         s.top,
			opts:        s.cfg.SolverOpts,
			lifetime:    s.baseCtx,
			byAlgo:      map[string]*algoCell{},
		}
		if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			// Cancelled: requeue for the next tick, keeping the bound.
			s.mu.Lock()
			s.backlog = append(pending, s.backlog...)
			if over := len(s.backlog) - s.cfg.MaxEpochBacklog; over > 0 {
				s.backlog = append(s.backlog[:0], s.backlog[over:]...)
				s.backlogDropped += uint64(over)
				metricCheckpointsDropped.Add(uint64(over))
			}
			metricBacklog.Set(int64(len(s.backlog)))
			for _, st := range s.shardStates {
				st.epochBacklog.Store(int64(len(s.backlog)))
			}
			s.mu.Unlock()
			return snap, err // not published, no epoch consumed
		}
		s.publishMu.Lock()
		snap.Epoch = s.epoch.Add(1)
		s.publishMu.Unlock()
		s.storeSnapshotGuarded(snap)
		s.mu.Lock()
		s.backlogDropped += uint64(len(pending))
		s.mu.Unlock()
		metricCheckpointsDropped.Add(uint64(len(pending)))
		for _, st := range s.shardStates {
			st.epochBacklog.Store(0)
		}
		return snap, err
	}
	// One merged publish per checkpoint, oldest first; the drain's cost
	// is amortized evenly across the published epochs (stage histograms
	// get nothing: batched solves have no per-epoch stage attribution).
	// A shard whose background loop raced ahead keeps its newer block —
	// the same stale guard as a synchronous recomputeSharded.
	share := time.Duration(int64(time.Since(start)) / int64(len(cks)))
	live := s.shardedWin.Seq()
	var newest *Snapshot
	for k, ck := range cks {
		s.publishMu.Lock()
		blocks := make([]*core.Result, len(s.shardStates))
		shards := make([]ShardInfo, len(s.shardStates))
		for sid, st := range s.shardStates {
			sol := sols[sid][k]
			if sol.SeqHigh >= st.seqHigh {
				st.res, st.seqHigh, st.t, st.err = sol.Res, sol.SeqHigh, sol.T, nil
				st.warm, st.repaired = sol.Info.Warm, sol.Info.Repaired
				st.repairedNumeric, st.repairFailed = sol.Info.RepairedNumeric, sol.Info.RepairFailed
				st.epoch++
				st.computeTime = share
				s.observeSolve(sol.Info)
				if live >= sol.SeqHigh {
					s.shardLag[sid].Set(int64(live - sol.SeqHigh))
				}
			}
			blocks[sid] = st.res
			shards[sid] = s.shardInfoLocked(sid)
		}
		epoch := s.epoch.Add(1)
		s.publishMu.Unlock()
		var est *estimator.Estimate
		mergeErr := s.guardPanic(func() { est = s.backend.Merge(blocks, ck) })
		snap := &Snapshot{
			Epoch:       epoch,
			Algo:        s.cfg.Algo,
			Est:         est,
			Window:      ck,
			SeqHigh:     ck.Seq(),
			T:           ck.T(),
			Shards:      shards,
			ComputedAt:  time.Now(),
			ComputeTime: share,
			Err:         mergeErr,
			top:         s.top,
			opts:        s.cfg.SolverOpts,
			lifetime:    s.baseCtx,
			byAlgo:      map[string]*algoCell{},
		}
		s.storeSnapshotGuarded(snap)
		newest = snap
	}
	return newest, nil
}

// runDrain is the sharded checkpoint-drain loop. With Config.EpochEvery
// set, the per-shard loops still publish latest-state shard epochs;
// this dedicated ticker turns the queued stride checkpoints into their
// own merged epochs so a lag burst stays observable on /v1/epochs.
func (s *Server) runDrain() {
	defer s.wg.Done()
	ticker := time.NewTicker(s.cfg.RecomputeEvery)
	defer ticker.Stop()
	for {
		select {
		case <-s.stop:
			return
		case <-ticker.C:
			if !s.backlogPending() {
				continue
			}
			s.tickSafely(func() {
				s.computeMu.Lock()
				defer s.computeMu.Unlock()
				s.drainShardBacklog(s.baseCtx)
			})
		}
	}
}

// runShard is shard sid's solver loop: one potential shard epoch per
// tick, skipped while nothing has been ingested since the shard's last
// solve. Shutdown cancels an in-flight solve via the lifetime context.
func (s *Server) runShard(sid int) {
	defer s.wg.Done()
	ticker := time.NewTicker(s.cfg.RecomputeEvery)
	defer ticker.Stop()
	for {
		select {
		case <-s.stop:
			return
		case <-ticker.C:
			s.publishMu.Lock()
			solved := s.shardStates[sid].res != nil
			last := s.shardStates[sid].seqHigh
			s.publishMu.Unlock()
			if solved && last == s.Seq() {
				continue // nothing new since this shard's last epoch
			}
			s.tickSafely(func() { s.solveShard(s.baseCtx, sid) })
		}
	}
}

// solveShard runs one epoch of shard sid: clone only the shard's ring
// under the ingest lock, solve it off-lock (warm-starting the
// structural plan when the shard's always-good set is unchanged), then
// publish the shard's block and a fresh merged snapshot. Publication is
// stale-guarded: a block solved at an older sequence than the shard's
// published state (a synchronous Recompute raced ahead) is dropped
// rather than allowed to roll the shard backwards.
func (s *Server) solveShard(ctx context.Context, sid int) {
	st := s.shardStates[sid]
	st.mu.Lock()
	defer st.mu.Unlock()
	// CloneShard takes only this shard's ring lock: an ingest batch
	// mid-fan-out on other shards no longer stalls this solve.
	ring := s.shardedWin.CloneShard(sid)
	start := time.Now()
	var sol ShardSolve
	var err error
	if perr := s.guardPanic(func() {
		sol, err = s.backend.SolveShard(ctx, sid, ring)
	}); perr != nil {
		sol, err = ShardSolve{}, perr
	}
	s.publishMu.Lock()
	if err != nil {
		st.err = err
		s.publishMu.Unlock()
		s.logger.Warn("shard solve failed", "shard", sid, "seq", ring.Seq(), "error", err.Error())
		return // keep the shard's previous block; merged snapshot unchanged
	}
	if sol.SeqHigh < st.seqHigh {
		s.publishMu.Unlock()
		return // stale: a newer block for this shard was already published
	}
	st.res, st.seqHigh, st.t, st.err = sol.Res, sol.SeqHigh, sol.T, nil
	st.warm, st.repaired = sol.Info.Warm, sol.Info.Repaired
	st.repairedNumeric, st.repairFailed = sol.Info.RepairedNumeric, sol.Info.RepairFailed
	st.epoch++
	st.computeTime = time.Since(start)
	shardEpoch, computeTime := st.epoch, st.computeTime
	s.publishMu.Unlock()
	s.observeSolve(sol.Info)
	live := s.shardedWin.Seq()
	if live >= sol.SeqHigh {
		s.shardLag[sid].Set(int64(live - sol.SeqHigh))
	} else {
		s.shardLag[sid].Set(0) // a remote solve may run ahead of the local window
	}
	s.logger.Debug("shard epoch published",
		"shard", sid,
		"epoch", shardEpoch,
		"seq_high", sol.SeqHigh,
		"warm", sol.Info.Warm,
		"repaired", sol.Info.Repaired,
		"repaired_numeric", sol.Info.RepairedNumeric,
		"repair_failed", sol.Info.RepairFailed,
		"compute_ms", float64(computeTime)/float64(time.Millisecond))
	s.publishMerged()
}

// shardInfoLocked flattens shard sid's published state; the caller
// holds publishMu.
func (s *Server) shardInfoLocked(sid int) ShardInfo {
	st := s.shardStates[sid]
	paths, links := s.backend.ShardSize(sid)
	return ShardInfo{
		Shard:           sid,
		Epoch:           st.epoch,
		SeqHigh:         st.seqHigh,
		T:               st.t,
		Warm:            st.warm,
		Repaired:        st.repaired,
		RepairedNumeric: st.repairedNumeric,
		RepairFailed:    st.repairFailed,
		ComputeTime:     st.computeTime,
		EpochBacklog:    int(st.epochBacklog.Load()),
		Paths:           paths,
		Links:           links,
	}
}

// publishMerged assembles a merged snapshot from the latest per-shard
// blocks and publishes it; before every shard has solved at least once
// there is nothing coherent to publish. The per-shard state is
// collected and the global epoch assigned under publishMu (which orders
// epochs by collection time), but the lock is released before the
// expensive part (full-window clone + estimate merge), so concurrent
// shard publishes and /v1/status reads never stall behind a merge. The
// final swap is guarded: a merge that lost the race to a higher-epoch
// publish is dropped, which is safe because the later epoch was
// collected later and therefore saw a superset of the shard updates.
func (s *Server) publishMerged() {
	s.publishMu.Lock()
	results := make([]*core.Result, len(s.shardStates))
	shards := make([]ShardInfo, len(s.shardStates))
	var maxCompute time.Duration
	for sid, st := range s.shardStates {
		if st.res == nil {
			s.publishMu.Unlock()
			return
		}
		results[sid] = st.res
		shards[sid] = s.shardInfoLocked(sid)
		if st.computeTime > maxCompute {
			maxCompute = st.computeTime
		}
	}
	epoch := s.epoch.Add(1)
	s.publishMu.Unlock()

	full := s.shardedWin.Clone()
	var est *estimator.Estimate
	if perr := s.guardPanic(func() { est = s.backend.Merge(results, full) }); perr != nil {
		return // keep the previous snapshot; degraded_reason is set
	}
	snap := &Snapshot{
		Epoch:       epoch,
		Algo:        s.cfg.Algo,
		Est:         est,
		Window:      full,
		SeqHigh:     full.Seq(),
		T:           full.T(),
		Shards:      shards,
		ComputedAt:  time.Now(),
		ComputeTime: maxCompute,
		top:         s.top,
		opts:        s.cfg.SolverOpts,
		lifetime:    s.baseCtx,
		byAlgo:      map[string]*algoCell{},
	}
	s.storeSnapshotGuarded(snap)
}

// storeSnapshotGuarded publishes snap unless a higher-epoch snapshot
// got there first; either way the epoch was consumed and is recorded
// in the history ring.
func (s *Server) storeSnapshotGuarded(snap *Snapshot) {
	lag := int64(s.Seq() - snap.SeqHigh)
	s.publishMu.Lock()
	defer s.publishMu.Unlock()
	if cur := s.snap.Load(); cur == nil || cur.Epoch < snap.Epoch {
		s.snap.Store(snap)
		metricEpochLag.Set(lag)
	}
	if snap.Err == nil {
		s.setDegraded("") // a clean epoch ends solver-panic degradation
	}
	s.appendHistoryLocked(snap)
	s.logEpoch(snap)
}

// run is the solver loop: one potential epoch per tick, skipped when
// nothing was ingested since the last one. Solves normally run under
// supersession supervision; after a superseded cancellation the next
// solve runs unsupervised (shutdown can still abort it), guaranteeing
// forward progress — when ingest permanently outruns the solver, every
// other solve still completes and publishes, so queries see a bounded-
// stale snapshot instead of starving on 503s.
func (s *Server) run() {
	defer s.wg.Done()
	ticker := time.NewTicker(s.cfg.RecomputeEvery)
	defer ticker.Stop()
	superseded := false
	for {
		select {
		case <-s.stop:
			return
		case <-ticker.C:
			if last := s.snap.Load(); last != nil && last.SeqHigh == s.Seq() && !s.backlogPending() {
				continue // window unchanged since the last epoch
			}
			if superseded {
				s.tickSafely(func() { s.Recompute(s.baseCtx) }) // backstop: run to completion
				superseded = false
				continue
			}
			s.tickSafely(func() { superseded = s.recomputeSupervised() })
		}
	}
}

// tickSafely contains a panic escaping one solver-loop iteration
// (outside the per-call guards — snapshot assembly, cloning, publish)
// so the loop survives to the next tick with the panic recorded as
// the degradation reason instead of crashing the daemon.
func (s *Server) tickSafely(fn func()) {
	defer func() {
		if r := recover(); r != nil {
			s.setDegraded(fmt.Sprintf("solver loop panic: %v", r))
			metricSolverPanics.Inc()
			s.logger.Error("solver loop panicked", "panic", fmt.Sprint(r))
		}
	}()
	fn()
}

// recomputeSupervised runs one epoch solve under supervision,
// cancelling it early in two cases: the server is closing, or the solve
// has been superseded — ingest has advanced a full window capacity past
// the solve's base, so the frozen clone being solved shares no interval
// with the live window and its result could only describe evicted data.
// A superseded solve is abandoned (never published); the return value
// reports whether that happened so the loop can back-stop the next one.
func (s *Server) recomputeSupervised() (superseded bool) {
	base := s.Seq()
	ctx, cancel := context.WithCancel(s.baseCtx)
	defer cancel()
	done := make(chan struct{})
	go func() {
		defer close(done)
		s.tickSafely(func() { s.Recompute(ctx) }) // solve runs off-loop: contain panics here too
	}()
	pollEvery := s.cfg.RecomputeEvery / 4
	if pollEvery < 10*time.Millisecond {
		pollEvery = 10 * time.Millisecond
	}
	poll := time.NewTicker(pollEvery)
	defer poll.Stop()
	for {
		select {
		case <-done:
			return false
		case <-s.stop:
			cancel()
			<-done
			return false
		case <-poll.C:
			if s.Seq() >= base+uint64(s.cfg.WindowSize) {
				cancel() // superseded: the solved window is fully evicted
				<-done
				return true
			}
		}
	}
}
