package server

import (
	"context"
	"encoding/json"
	"fmt"
	"math"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/bitset"
	"repro/internal/core"
	"repro/internal/estimator"
	"repro/internal/experiment"
	"repro/internal/netsim"
	"repro/internal/observe"
	"repro/internal/topology"
)

// testTopology builds a small Brite overlay with router-level
// correlation ground truth (needed by the load generator's simulator).
func testTopology(t testing.TB) *topology.Topology {
	t.Helper()
	scale := experiment.Small()
	scale.BriteNumAS = 12
	scale.BritePaths = 40
	top, err := experiment.BuildTopology(experiment.Brite, scale, 1)
	if err != nil {
		t.Fatal(err)
	}
	return top
}

func solverOpts() []estimator.Option {
	return []estimator.Option{
		estimator.WithMaxSubsetSize(2),
		estimator.WithAlwaysGoodTol(0.02),
	}
}

func solverConfig() core.Config {
	return core.Config{MaxSubsetSize: 2, AlwaysGoodTol: 0.02}
}

// newServer is New with a fatal error check.
func newServer(t testing.TB, top *topology.Topology, cfg Config) *Server {
	t.Helper()
	s, err := New(top, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// fetchJSON fetches url and decodes the body into v, returning the
// status code. Safe to call from any goroutine.
func fetchJSON(client *http.Client, url string, v any) (int, error) {
	resp, err := client.Get(url)
	if err != nil {
		return 0, fmt.Errorf("GET %s: %w", url, err)
	}
	defer resp.Body.Close()
	if v != nil && resp.StatusCode == http.StatusOK {
		var env Envelope
		if err := json.NewDecoder(resp.Body).Decode(&env); err != nil {
			return resp.StatusCode, fmt.Errorf("GET %s: decoding envelope: %w", url, err)
		}
		if env.APIVersion != APIVersion {
			return resp.StatusCode, fmt.Errorf("GET %s: api_version %q", url, env.APIVersion)
		}
		if err := json.Unmarshal(env.Data, v); err != nil {
			return resp.StatusCode, fmt.Errorf("GET %s: decoding data: %w", url, err)
		}
	}
	return resp.StatusCode, nil
}

// getJSON is fetchJSON for the test goroutine: transport and decode
// errors are fatal.
func getJSON(t testing.TB, client *http.Client, url string, v any) int {
	t.Helper()
	code, err := fetchJSON(client, url, v)
	if err != nil {
		t.Fatal(err)
	}
	return code
}

// TestEndToEndStreaming is the acceptance test of the streaming
// subsystem: the load generator ingests 10k simulated intervals over
// real HTTP while concurrent readers query links, congested paths and
// status; every answer must be internally consistent with one epoch,
// epochs must be monotone per reader, and the final published state
// must bit-match an offline core.Compute over a fresh Recorder holding
// exactly the surviving window intervals.
func TestEndToEndStreaming(t *testing.T) {
	const totalIntervals, windowSize = 10000, 2000
	top := testTopology(t)
	s := newServer(t, top, Config{
		WindowSize:     windowSize,
		RecomputeEvery: 20 * time.Millisecond,
		SolverOpts:     solverOpts(),
	})
	s.Start()
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// Concurrent readers: hammer the query endpoints during ingest.
	done := make(chan struct{})
	var wg sync.WaitGroup
	var mu sync.Mutex
	var readerErrs []string
	fail := func(format string, args ...any) {
		mu.Lock()
		readerErrs = append(readerErrs, fmt.Sprintf(format, args...))
		mu.Unlock()
	}
	for g := 0; g < 3; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			lastEpoch := uint64(0)
			for {
				select {
				case <-done:
					return
				default:
				}
				var st StatusResponse
				code, err := fetchJSON(ts.Client(), ts.URL+"/v1/status", &st)
				if err != nil {
					fail("%v", err)
					return
				}
				if code != http.StatusOK {
					fail("status returned %d", code)
					return
				}
				if st.Epoch < lastEpoch {
					fail("epoch went backwards: %d then %d", lastEpoch, st.Epoch)
					return
				}
				lastEpoch = st.Epoch
				if st.SnapshotSeq > st.IngestedSeq {
					fail("snapshot ahead of ingest: %d > %d", st.SnapshotSeq, st.IngestedSeq)
					return
				}
				var lr LinkResponse
				code, err = fetchJSON(ts.Client(), ts.URL+"/v1/links/"+[]string{"0", "1", "2"}[g], &lr)
				if err != nil {
					fail("%v", err)
					return
				}
				switch code {
				case http.StatusServiceUnavailable:
					// No snapshot yet: legal before the first epoch.
				case http.StatusOK:
					if lr.CongestProb < 0 || lr.CongestProb > 1 || math.IsNaN(lr.CongestProb) {
						fail("link prob out of range: %v", lr.CongestProb)
						return
					}
					if lr.Epoch == 0 {
						fail("link answer without an epoch")
						return
					}
				default:
					fail("link returned %d", code)
					return
				}
				var cp CongestedPathsResponse
				code, err = fetchJSON(ts.Client(), ts.URL+"/v1/paths/congested?min=0.25", &cp)
				if err != nil {
					fail("%v", err)
					return
				}
				if code == http.StatusOK {
					for _, p := range cp.Paths {
						if p.CongestedFraction < 0.25 || p.CongestedFraction > 1 {
							fail("congested fraction out of range: %v", p.CongestedFraction)
							return
						}
					}
				}
			}
		}(g)
	}

	// Drive 10k intervals at the server over HTTP.
	simCfg := netsim.DefaultConfig(netsim.RandomCongestion)
	simCfg.PerfectE2E = true
	loadCfg := LoadConfig{
		Target:    ts.URL,
		Intervals: totalIntervals,
		BatchSize: 250,
		Seed:      3,
		Sim:       simCfg,
		Client:    ts.Client(),
	}
	stats, err := RunLoadGen(context.Background(), top, loadCfg)
	if err != nil {
		t.Fatal(err)
	}
	close(done)
	wg.Wait()
	for _, msg := range readerErrs {
		t.Error(msg)
	}
	if stats.Intervals != totalIntervals {
		t.Fatalf("loadgen sent %d intervals, want %d", stats.Intervals, totalIntervals)
	}

	// Final synchronous epoch over the fully ingested window.
	snap := s.Recompute(nil)
	if snap.Err != nil {
		t.Fatalf("solver: %v", snap.Err)
	}
	if snap.SeqHigh != totalIntervals {
		t.Fatalf("snapshot seq %d, want %d", snap.SeqHigh, totalIntervals)
	}
	if snap.T != windowSize {
		t.Fatalf("snapshot window has %d intervals, want %d", snap.T, windowSize)
	}

	// Epoch determinism: recomputing with no new data must publish a
	// bit-identical result.
	snap2 := s.Recompute(nil)
	if snap2.Epoch <= snap.Epoch {
		t.Fatalf("epoch did not advance: %d then %d", snap.Epoch, snap2.Epoch)
	}
	for e := 0; e < top.NumLinks(); e++ {
		p1, x1 := snap.Est.LinkCongestProb(e)
		p2, x2 := snap2.Est.LinkCongestProb(e)
		if p1 != p2 || x1 != x2 {
			t.Fatalf("link %d: quiescent epochs disagree: (%v,%v) vs (%v,%v)", e, p1, x1, p2, x2)
		}
	}

	// Ground-truth replay: rebuild the exact observation stream the
	// load generator sent (same seed, same model), keep the last
	// windowSize intervals in a fresh Recorder, and solve offline. The
	// streamed window must produce bit-identical link probabilities.
	rng := rand.New(rand.NewSource(loadCfg.Seed))
	model, err := netsim.NewModel(top, simCfg, totalIntervals, rng)
	if err != nil {
		t.Fatal(err)
	}
	rec := observe.NewRecorder(top.NumPaths())
	for ti := 0; ti < totalIntervals; ti++ {
		obs := model.Interval(ti, rng)
		if ti >= totalIntervals-windowSize {
			rec.Add(obs.CongestedPaths)
		}
	}
	ref, err := core.Compute(context.Background(), top, rec, solverConfig())
	if err != nil {
		t.Fatal(err)
	}
	for e := 0; e < top.NumLinks(); e++ {
		want, wantExact := ref.LinkCongestProbOrFallback(e)
		got, gotExact := snap.Est.LinkCongestProb(e)
		if got != want || gotExact != wantExact {
			t.Fatalf("link %d: streamed window (%v,%v) != offline replay (%v,%v)",
				e, got, gotExact, want, wantExact)
		}
	}
}

func TestIngestValidation(t *testing.T) {
	top := testTopology(t)
	s := newServer(t, top, Config{SolverOpts: solverOpts()})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	post := func(body string) int {
		resp, err := ts.Client().Post(ts.URL+"/v1/observations", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		return resp.StatusCode
	}
	if code := post(`{"intervals": [{"congested_paths": [0, 1]}, {"congested_paths": []}]}`); code != http.StatusOK {
		t.Fatalf("valid batch: %d", code)
	}
	if got := s.Seq(); got != 2 {
		t.Fatalf("seq = %d, want 2", got)
	}
	if code := post(`{"intervals"`); code != http.StatusBadRequest {
		t.Fatalf("truncated JSON: %d, want 400", code)
	}
	if code := post(`{"intervals": [{"congested_paths": [-1]}]}`); code != http.StatusBadRequest {
		t.Fatalf("negative path: %d, want 400", code)
	}
	if code := post(`{"intervals": [{"congested_paths": [99999]}]}`); code != http.StatusBadRequest {
		t.Fatalf("out-of-universe path: %d, want 400", code)
	}
	// Rejected batches must not have been partially applied.
	if got := s.Seq(); got != 2 {
		t.Fatalf("seq after rejected batches = %d, want 2", got)
	}
}

func TestQueryEndpoints(t *testing.T) {
	top := testTopology(t)
	s := newServer(t, top, Config{WindowSize: 100, SolverOpts: solverOpts()})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// Before any snapshot: 503 for answers, 200 for status.
	if code := getJSON(t, ts.Client(), ts.URL+"/v1/links/0", nil); code != http.StatusServiceUnavailable {
		t.Fatalf("link before snapshot: %d, want 503", code)
	}
	if code := getJSON(t, ts.Client(), ts.URL+"/v1/paths/congested", nil); code != http.StatusServiceUnavailable {
		t.Fatalf("paths before snapshot: %d, want 503", code)
	}
	var st StatusResponse
	if code := getJSON(t, ts.Client(), ts.URL+"/v1/status", &st); code != http.StatusOK {
		t.Fatalf("status: %d", code)
	}
	if st.Epoch != 0 || st.WindowCap != 100 {
		t.Fatalf("zero-state status: %+v", st)
	}

	// Bad link ids.
	if code := getJSON(t, ts.Client(), ts.URL+"/v1/links/abc", nil); code != http.StatusBadRequest {
		t.Fatalf("non-numeric link: %d, want 400", code)
	}
	if code := getJSON(t, ts.Client(), ts.URL+"/v1/links/99999", nil); code != http.StatusNotFound {
		t.Fatalf("unknown link: %d, want 404", code)
	}
	if code := getJSON(t, ts.Client(), ts.URL+"/v1/paths/congested?min=2", nil); code != http.StatusBadRequest {
		t.Fatalf("bad threshold: %d, want 400", code)
	}

	// Ingest a little traffic and solve one epoch synchronously.
	simCfg := netsim.DefaultConfig(netsim.RandomCongestion)
	simCfg.PerfectE2E = true
	if _, err := RunLoadGen(context.Background(), top, LoadConfig{
		Target: ts.URL, Intervals: 150, BatchSize: 40, Seed: 7, Sim: simCfg, Client: ts.Client(),
	}); err != nil {
		t.Fatal(err)
	}
	snap := s.Recompute(nil)
	if snap.Err != nil {
		t.Fatal(snap.Err)
	}
	if snap.T != 100 || snap.SeqHigh != 150 {
		t.Fatalf("snapshot T=%d seq=%d, want 100/150", snap.T, snap.SeqHigh)
	}

	var lr LinkResponse
	if code := getJSON(t, ts.Client(), ts.URL+"/v1/links/0", &lr); code != http.StatusOK {
		t.Fatalf("link after snapshot: %d", code)
	}
	if lr.Epoch != snap.Epoch || lr.WindowT != 100 || lr.SeqHigh != 150 {
		t.Fatalf("link response inconsistent with snapshot: %+v", lr)
	}
	var cp CongestedPathsResponse
	if code := getJSON(t, ts.Client(), ts.URL+"/v1/paths/congested?min=0", &cp); code != http.StatusOK {
		t.Fatalf("paths after snapshot: %d", code)
	}
	if len(cp.Paths) != top.NumPaths() {
		t.Fatalf("min=0 should list every path: %d of %d", len(cp.Paths), top.NumPaths())
	}
	for i := 1; i < len(cp.Paths); i++ {
		if cp.Paths[i].CongestedFraction > cp.Paths[i-1].CongestedFraction {
			t.Fatal("paths not sorted by congested fraction")
		}
	}
	if code := getJSON(t, ts.Client(), ts.URL+"/v1/status", &st); code != http.StatusOK {
		t.Fatalf("status: %d", code)
	}
	if st.Epoch != snap.Epoch || st.SnapshotSeq != 150 || st.LagIntervals != 0 {
		t.Fatalf("status inconsistent after quiescent solve: %+v", st)
	}
}

// The background loop must publish fresh epochs as data arrives and
// skip ticks with nothing new.
func TestRecomputeLoop(t *testing.T) {
	top := testTopology(t)
	s := newServer(t, top, Config{
		WindowSize:     200,
		RecomputeEvery: 5 * time.Millisecond,
		SolverOpts:     solverOpts(),
	})
	s.Start()
	defer s.Close()

	rng := rand.New(rand.NewSource(9))
	simCfg := netsim.DefaultConfig(netsim.RandomCongestion)
	simCfg.PerfectE2E = true
	model, err := netsim.NewModel(top, simCfg, 300, rng)
	if err != nil {
		t.Fatal(err)
	}
	for ti := 0; ti < 300; ti++ {
		s.Ingest([]*bitset.Set{model.Interval(ti, rng).CongestedPaths})
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		snap := s.Latest()
		if snap != nil && snap.SeqHigh == 300 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("loop never caught up with ingest")
		}
		time.Sleep(time.Millisecond)
	}
	// Quiescent: epochs must stop advancing once the loop has seen all
	// data (the skip branch).
	e1 := s.Latest().Epoch
	time.Sleep(30 * time.Millisecond)
	if e2 := s.Latest().Epoch; e2 != e1 {
		t.Fatalf("epoch advanced with no new data: %d then %d", e1, e2)
	}
}
