package server

import (
	"context"
	"encoding/json"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"testing"

	"repro/internal/bitset"
	"repro/internal/estimator"
	"repro/internal/netsim"
	"repro/internal/topology"
)

// simulatedBatches renders a deterministic interval stream for a
// topology, one congested-path set per interval.
func simulatedBatches(t testing.TB, top *topology.Topology, intervals int) []*bitset.Set {
	t.Helper()
	rng := rand.New(rand.NewSource(2))
	mc := netsim.DefaultConfig(netsim.RandomCongestion)
	mc.PerfectE2E = true
	model, err := netsim.NewModel(top, mc, intervals, rng)
	if err != nil {
		t.Fatal(err)
	}
	out := make([]*bitset.Set, intervals)
	for ti := 0; ti < intervals; ti++ {
		out[ti] = model.Interval(ti, rng).CongestedPaths
	}
	return out
}

// The unsharded epoch loop must keep (and reuse) its structural plan:
// a re-solve over an unchanged window warm-starts, and warm estimates
// stay bit-identical to the stateless registry estimator.
func TestUnshardedWarmEpochs(t *testing.T) {
	top := testTopology(t)
	s := newServer(t, top, Config{WindowSize: 300, SolverOpts: solverOpts()})
	defer s.Close()
	stream := simulatedBatches(t, top, 400)
	s.Ingest(stream[:250])

	first := s.Recompute(nil)
	if first.Err != nil {
		t.Fatal(first.Err)
	}
	if first.Warm {
		t.Fatal("first epoch cannot be warm")
	}
	warm := s.Recompute(nil)
	if warm.Err != nil {
		t.Fatal(warm.Err)
	}
	if !warm.Warm {
		t.Fatal("re-solve over the unchanged window did not warm-start")
	}
	// More ingest, another epoch; whatever path it took, the estimate
	// must equal the stateless registry estimator over the same frozen
	// window.
	s.Ingest(stream[250:])
	snap := s.Recompute(nil)
	if snap.Err != nil {
		t.Fatal(snap.Err)
	}
	registry, err := estimator.New(estimator.CorrelationComplete)
	if err != nil {
		t.Fatal(err)
	}
	want, err := registry.Estimate(context.Background(), top, snap.Window, solverOpts()...)
	if err != nil {
		t.Fatal(err)
	}
	for e := range want.LinkProb {
		if got, exact := snap.Est.LinkCongestProb(e); got != want.LinkProb[e] || exact != want.LinkExact[e] {
			t.Fatalf("link %d: warm loop (%v,%v) != stateless (%v,%v)", e, got, exact, want.LinkProb[e], want.LinkExact[e])
		}
	}
}

// With EpochEvery set, a burst that crosses several stride boundaries
// must drain as one epoch per checkpoint — each bit-identical to the
// stateless solve over that checkpoint's window — plus a live epoch,
// all visible in the history ring and on /v1/epochs.
func TestEpochCheckpointDrain(t *testing.T) {
	const windowSize, epochEvery, total = 200, 60, 250
	top := testTopology(t)
	s := newServer(t, top, Config{
		WindowSize: windowSize,
		EpochEvery: epochEvery,
		SolverOpts: solverOpts(),
	})
	defer s.Close()
	stream := simulatedBatches(t, top, total)
	s.Ingest(stream)

	if pending, dropped := s.backlogStats(); pending != 4 || dropped != 0 {
		t.Fatalf("backlog = (%d,%d), want (4,0)", pending, dropped)
	}
	snap := s.Recompute(nil)
	if snap.Err != nil {
		t.Fatal(snap.Err)
	}
	if snap.SeqHigh != total || snap.Epoch != 5 {
		t.Fatalf("latest = seq %d epoch %d, want seq %d epoch 5", snap.SeqHigh, snap.Epoch, total)
	}
	if pending, _ := s.backlogStats(); pending != 0 {
		t.Fatalf("backlog not drained: %d pending", pending)
	}
	history := s.History()
	if len(history) != 5 {
		t.Fatalf("history has %d epochs, want 5", len(history))
	}
	wantSeqs := []uint64{60, 120, 180, 240, 250}
	registry, err := estimator.New(estimator.CorrelationComplete)
	if err != nil {
		t.Fatal(err)
	}
	for i, h := range history {
		if h.Epoch != uint64(i+1) || h.SeqHigh != wantSeqs[i] {
			t.Fatalf("history[%d] = epoch %d seq %d, want epoch %d seq %d", i, h.Epoch, h.SeqHigh, i+1, wantSeqs[i])
		}
	}
	// Re-derive checkpoint 3 (seq 180, window [0,180) truncated to 200
	// cap — all 180 intervals) offline and compare against a replayed
	// drain on a fresh server, asserting determinism of the batch path.
	s2 := newServer(t, top, Config{WindowSize: windowSize, SolverOpts: solverOpts()})
	defer s2.Close()
	s2.Ingest(stream[:180])
	ref := s2.Recompute(nil)
	if ref.Err != nil {
		t.Fatal(ref.Err)
	}
	want, err := registry.Estimate(context.Background(), top, ref.Window, solverOpts()...)
	if err != nil {
		t.Fatal(err)
	}
	for e := range want.LinkProb {
		if got, _ := ref.Est.LinkCongestProb(e); got != want.LinkProb[e] {
			t.Fatalf("checkpoint replay link %d: %v != %v", e, got, want.LinkProb[e])
		}
	}

	// /v1/epochs serves the ring (and honors limit).
	handler := s.Handler()
	req := httptest.NewRequest(http.MethodGet, "/v1/epochs?limit=3", nil)
	rw := httptest.NewRecorder()
	handler.ServeHTTP(rw, req)
	if rw.Code != http.StatusOK {
		t.Fatalf("GET /v1/epochs: %d", rw.Code)
	}
	var env struct {
		Data EpochsResponse `json:"data"`
	}
	if err := json.Unmarshal(rw.Body.Bytes(), &env); err != nil {
		t.Fatal(err)
	}
	if len(env.Data.Epochs) != 3 {
		t.Fatalf("limit=3 returned %d epochs", len(env.Data.Epochs))
	}
	if env.Data.Epochs[2].Epoch != 5 || env.Data.Epochs[2].SeqHigh != total {
		t.Fatalf("newest epoch = %+v, want epoch 5 seq %d", env.Data.Epochs[2], total)
	}
}

// Past MaxEpochBacklog the oldest checkpoints are dropped and counted;
// the drain then covers only the surviving ones.
func TestEpochBacklogBound(t *testing.T) {
	top := testTopology(t)
	s := newServer(t, top, Config{
		WindowSize:      200,
		EpochEvery:      10,
		MaxEpochBacklog: 3,
		SolverOpts:      solverOpts(),
	})
	defer s.Close()
	s.Ingest(simulatedBatches(t, top, 100))
	if pending, dropped := s.backlogStats(); pending != 3 || dropped != 7 {
		t.Fatalf("backlog = (%d,%d), want (3,7)", pending, dropped)
	}
	snap := s.Recompute(nil)
	if snap.Err != nil {
		t.Fatal(snap.Err)
	}
	// The surviving checkpoints (80, 90, 100) publish; the newest one
	// is the live state, so no extra live epoch follows.
	history := s.History()
	if len(history) != 3 {
		t.Fatalf("history has %d epochs, want 3", len(history))
	}
	if got := history[len(history)-1].SeqHigh; got != 100 {
		t.Fatalf("newest epoch seq %d, want 100", got)
	}
	if snap.SeqHigh != 100 {
		t.Fatalf("latest snapshot seq %d, want 100", snap.SeqHigh)
	}
}

// With EpochEvery set in sharded mode, a burst that crosses several
// stride boundaries must drain as one merged epoch per checkpoint —
// every shard's queued rings solved through the backend's batched
// multi-RHS path — plus a live epoch, with the per-shard epoch_backlog
// gauges tracking the queue.
func TestShardedEpochCheckpointDrain(t *testing.T) {
	const windowSize, epochEvery, total = 200, 60, 250
	top := shardedTestTopology(t)
	s := newServer(t, top, Config{
		WindowSize: windowSize,
		EpochEvery: epochEvery,
		Algo:       estimator.CorrelationCompleteSharded,
		SolverOpts: solverOpts(),
	})
	defer s.Close()
	stream := simulatedBatches(t, top, total)
	s.Ingest(stream)

	if pending, dropped := s.backlogStats(); pending != 4 || dropped != 0 {
		t.Fatalf("backlog = (%d,%d), want (4,0)", pending, dropped)
	}
	for _, info := range s.shardStatuses(s.Seq()) {
		if info.EpochBacklog != 4 {
			t.Fatalf("shard %d epoch_backlog = %d, want 4", info.Shard, info.EpochBacklog)
		}
	}
	snap := s.Recompute(nil)
	if snap.Err != nil {
		t.Fatal(snap.Err)
	}
	if snap.SeqHigh != total || snap.Epoch != 5 {
		t.Fatalf("latest = seq %d epoch %d, want seq %d epoch 5", snap.SeqHigh, snap.Epoch, total)
	}
	if pending, _ := s.backlogStats(); pending != 0 {
		t.Fatalf("backlog not drained: %d pending", pending)
	}
	for _, info := range s.shardStatuses(s.Seq()) {
		if info.EpochBacklog != 0 {
			t.Fatalf("shard %d epoch_backlog = %d after drain, want 0", info.Shard, info.EpochBacklog)
		}
		if info.Epoch == 0 || info.SeqHigh != total {
			t.Fatalf("shard %d published epoch %d seq %d, want seq %d", info.Shard, info.Epoch, info.SeqHigh, total)
		}
	}
	history := s.History()
	if len(history) != 5 {
		t.Fatalf("history has %d epochs, want 5", len(history))
	}
	wantSeqs := []uint64{60, 120, 180, 240, 250}
	for i, h := range history {
		if h.Epoch != uint64(i+1) || h.SeqHigh != wantSeqs[i] {
			t.Fatalf("history[%d] = epoch %d seq %d, want epoch %d seq %d", i, h.Epoch, h.SeqHigh, i+1, wantSeqs[i])
		}
	}

	// A drained checkpoint must be bit-identical to a plain sharded
	// epoch over the same prefix: replay 180 intervals through a fresh
	// sharded server with checkpoints (the newest checkpoint is then
	// the live state, so the drain publishes the final epoch itself)
	// and compare against one without.
	s2 := newServer(t, top, Config{
		WindowSize: windowSize,
		EpochEvery: epochEvery,
		Algo:       estimator.CorrelationCompleteSharded,
		SolverOpts: solverOpts(),
	})
	defer s2.Close()
	s2.Ingest(stream[:180])
	got := s2.Recompute(nil)
	if got.Err != nil {
		t.Fatal(got.Err)
	}
	if got.SeqHigh != 180 || got.Epoch != 3 {
		t.Fatalf("drained prefix = seq %d epoch %d, want seq 180 epoch 3", got.SeqHigh, got.Epoch)
	}
	s3 := newServer(t, top, Config{
		WindowSize: windowSize,
		Algo:       estimator.CorrelationCompleteSharded,
		SolverOpts: solverOpts(),
	})
	defer s3.Close()
	s3.Ingest(stream[:180])
	want := s3.Recompute(nil)
	if want.Err != nil {
		t.Fatal(want.Err)
	}
	for e := 0; e < top.NumLinks(); e++ {
		wp, wx := want.Est.LinkCongestProb(e)
		gp, gx := got.Est.LinkCongestProb(e)
		if gp != wp || gx != wx {
			t.Fatalf("link %d: drained checkpoint (%v,%v) != plain sharded epoch (%v,%v)", e, gp, gx, wp, wx)
		}
	}
}

// A cancelled sharded drain must requeue its checkpoints (bounded),
// publish nothing, and consume no epoch; the retry drains them.
func TestShardedEpochBacklogCancelRequeues(t *testing.T) {
	top := shardedTestTopology(t)
	s := newServer(t, top, Config{
		WindowSize: 200,
		EpochEvery: 60,
		Algo:       estimator.CorrelationCompleteSharded,
		SolverOpts: solverOpts(),
	})
	defer s.Close()
	s.Ingest(simulatedBatches(t, top, 250))
	if pending, _ := s.backlogStats(); pending != 4 {
		t.Fatalf("backlog = %d, want 4", pending)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	snap := s.Recompute(ctx)
	if snap == nil || snap.Err == nil {
		t.Fatal("cancelled drain returned no error snapshot")
	}
	if snap.Epoch != 0 {
		t.Fatalf("cancelled drain consumed epoch %d", snap.Epoch)
	}
	if s.Latest() != nil {
		t.Fatal("cancelled drain published a snapshot")
	}
	if pending, dropped := s.backlogStats(); pending != 4 || dropped != 0 {
		t.Fatalf("backlog after cancel = (%d,%d), want (4,0)", pending, dropped)
	}
	if snap := s.Recompute(nil); snap.Err != nil || snap.Epoch != 5 {
		t.Fatalf("retry = epoch %d (err %v), want 5", snap.Epoch, snap.Err)
	}
}

// A cancelled backlog drain must requeue its checkpoints (bounded),
// publish nothing, and consume no epoch; the next tick drains them.
func TestEpochBacklogCancelRequeues(t *testing.T) {
	top := testTopology(t)
	s := newServer(t, top, Config{
		WindowSize: 200,
		EpochEvery: 60,
		SolverOpts: solverOpts(),
	})
	defer s.Close()
	s.Ingest(simulatedBatches(t, top, 250))
	if pending, _ := s.backlogStats(); pending != 4 {
		t.Fatalf("backlog = %d, want 4", pending)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	snap := s.Recompute(ctx)
	if snap == nil || snap.Err == nil {
		t.Fatal("cancelled drain returned no error snapshot")
	}
	if snap.Epoch != 0 {
		t.Fatalf("cancelled drain consumed epoch %d", snap.Epoch)
	}
	if s.Latest() != nil {
		t.Fatal("cancelled drain published a snapshot")
	}
	if pending, dropped := s.backlogStats(); pending != 4 || dropped != 0 {
		t.Fatalf("backlog after cancel = (%d,%d), want (4,0)", pending, dropped)
	}
	// The retry drains normally: 4 checkpoint epochs + 1 live.
	if snap := s.Recompute(nil); snap.Err != nil || snap.Epoch != 5 {
		t.Fatalf("retry = epoch %d (err %v), want 5", snap.Epoch, snap.Err)
	}
}
