package server

import (
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/estimator"
	"repro/internal/telemetry"
	"repro/internal/wal"
	"repro/internal/wal/faultfs"
)

// delta reads the change of one snapshot key between two registry
// snapshots. The registry is process-wide and other tests in the
// package move the same counters, so metric assertions must always be
// delta-based, never absolute.
func delta(pre, post map[string]float64, key string) float64 {
	return post[key] - pre[key]
}

// TestMetricsEndToEnd streams batches over real HTTP and asserts the
// ingest counters, WAL counters, HTTP request counters, and the
// per-stage epoch histogram all advanced by exactly the amounts the
// traffic implies, and that /metrics exposes every family in valid
// exposition format.
func TestMetricsEndToEnd(t *testing.T) {
	const batches, perBatch = 10, 5
	top := testTopology(t)
	s := newServer(t, top, Config{
		WindowSize: 500,
		SolverOpts: solverOpts(),
		WAL:        wal.Options{Dir: t.TempDir(), Policy: wal.SyncPerBatch},
	})
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	pre := telemetry.Default().Snapshot()

	body := `{"intervals":[` + strings.Repeat(`{"congested_paths":[0]},`, perBatch-1) + `{"congested_paths":[0]}]}`
	for i := 0; i < batches; i++ {
		resp, err := ts.Client().Post(ts.URL+"/v1/observations", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("batch %d: status %d", i, resp.StatusCode)
		}
	}
	// Two explicit epochs: the first is a cold solve (fresh plan), the
	// second warm (carried plan, no drift in between).
	for i := 0; i < 2; i++ {
		if snap := s.Recompute(nil); snap.Err != nil {
			t.Fatal(snap.Err)
		}
	}

	post := telemetry.Default().Snapshot()
	intDeltas := map[string]float64{
		"tomod_ingest_batches_total":   batches,
		"tomod_ingest_intervals_total": batches * perBatch,
		"tomod_wal_appends_total":      batches,
		`tomod_http_requests_total{route="POST /v1/observations",code="200"}`: batches,
		// Each published epoch observes its solve tail; only the cold
		// first epoch has a structural rebuild stage.
		`tomod_epoch_compute_seconds_count{stage="solve"}`:   2,
		`tomod_epoch_compute_seconds_count{stage="rebuild"}`: 1,
		`tomod_epoch_solves_total{path="cold"}`:              1,
		`tomod_epoch_solves_total{path="warm"}`:              1,
	}
	for key, want := range intDeltas {
		if got := delta(pre, post, key); got != want {
			t.Errorf("delta(%s) = %v, want %v", key, got, want)
		}
	}
	if got := delta(pre, post, "tomod_wal_bytes_written_total"); got <= 0 {
		t.Errorf("wal bytes delta %v, want > 0", got)
	}
	if got := delta(pre, post, "tomod_wal_fsync_duration_seconds_count"); got < float64(batches) {
		t.Errorf("fsync count delta %v, want >= %d (SyncPerBatch)", got, batches)
	}

	// The exposition endpoint itself: right content type, every family
	// the server registers present with TYPE lines.
	resp, err := ts.Client().Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Fatalf("content type %q", ct)
	}
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	text := string(raw)
	for _, want := range []string{
		"# TYPE tomod_http_requests_total counter",
		"# TYPE tomod_http_request_duration_seconds histogram",
		"# TYPE tomod_http_in_flight_requests gauge",
		"# TYPE tomod_ingest_batches_total counter",
		"# TYPE tomod_ingest_intervals_total counter",
		"# TYPE tomod_ingest_rejected_total counter",
		"# TYPE tomod_window_evictions_total counter",
		"# TYPE tomod_wal_appends_total counter",
		"# TYPE tomod_wal_fsync_duration_seconds histogram",
		"# TYPE tomod_wal_segment_rotations_total counter",
		"# TYPE tomod_wal_degraded gauge",
		"# TYPE tomod_epoch_solves_total counter",
		"# TYPE tomod_epoch_compute_seconds histogram",
		"# TYPE tomod_epoch_lag_intervals gauge",
		"# TYPE tomod_solver_panics_total counter",
		"# TYPE tomod_build_info gauge",
		"# TYPE tomod_uptime_seconds gauge",
		"# TYPE tomod_gomaxprocs gauge",
		`tomod_build_info{goversion="`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
}

// TestStatusBuildInfo covers the /v1/status process-identity fields:
// uptime advances, the Go version is stamped, and GOMAXPROCS is the
// solver's parallelism budget.
func TestStatusBuildInfo(t *testing.T) {
	top := testTopology(t)
	s := newServer(t, top, Config{WindowSize: 100, SolverOpts: solverOpts()})
	defer s.Close()

	code, env, _ := get(t, s.Handler(), "/v1/status")
	if code != http.StatusOK {
		t.Fatalf("status returned %d", code)
	}
	var st StatusResponse
	decodeData(t, env, &st)
	if st.UptimeSeconds <= 0 {
		t.Errorf("uptime_seconds = %v, want > 0", st.UptimeSeconds)
	}
	if !strings.HasPrefix(st.GoVersion, "go") {
		t.Errorf("go_version = %q", st.GoVersion)
	}
	if st.GOMAXPROCS < 1 {
		t.Errorf("gomaxprocs = %d", st.GOMAXPROCS)
	}
}

// TestReadyzDegraded covers the readiness probe's degraded states: a
// latched WAL failure and an uncleared solver panic must both answer
// 503 with their reason even though the first epoch has published, and
// recovery must flip the probe back to 200.
func TestReadyzDegraded(t *testing.T) {
	t.Run("wal_unavailable", func(t *testing.T) {
		top := testTopology(t)
		ffs := faultfs.New(nil)
		s := newServer(t, top, Config{
			WindowSize: 100,
			SolverOpts: solverOpts(),
			WAL:        wal.Options{Dir: t.TempDir(), FS: ffs, Policy: wal.SyncPerBatch},
		})
		defer s.Close()
		h := s.Handler()

		ingestSimulated(t, s, top, 50)
		if snap := s.Recompute(nil); snap.Err != nil {
			t.Fatal(snap.Err)
		}
		if code, _, _ := get(t, h, "/v1/readyz"); code != http.StatusOK {
			t.Fatalf("readyz healthy returned %d", code)
		}

		ffs.FailSync(faultfs.ErrInjectedSync)
		rw := httptest.NewRecorder()
		h.ServeHTTP(rw, httptest.NewRequest(http.MethodPost, "/v1/observations",
			strings.NewReader(`{"intervals":[{"congested_paths":[0]}]}`)))
		if rw.Code != http.StatusServiceUnavailable {
			t.Fatalf("ingest with failing WAL returned %d", rw.Code)
		}

		code, env, _ := get(t, h, "/v1/readyz")
		if code != http.StatusServiceUnavailable {
			t.Fatalf("readyz with latched WAL returned %d", code)
		}
		if env.Error == nil || env.Error.Code != CodeWALUnavailable {
			t.Fatalf("readyz error envelope %+v, want code %q", env.Error, CodeWALUnavailable)
		}
	})

	t.Run("solver_panic", func(t *testing.T) {
		top := testTopology(t)
		s := newServer(t, top, Config{
			WindowSize: 200,
			Algo:       estimator.Independence,
			SolverOpts: solverOpts(),
		})
		defer s.Close()
		h := s.Handler()

		ingestSimulated(t, s, top, 200)
		good := s.est
		if snap := s.Recompute(nil); snap.Err != nil {
			t.Fatal(snap.Err)
		}

		s.est = panicEstimator{}
		s.Recompute(nil)
		code, env, _ := get(t, h, "/v1/readyz")
		if code != http.StatusServiceUnavailable {
			t.Fatalf("readyz while degraded returned %d", code)
		}
		if env.Error == nil || env.Error.Code != CodeSolverPanic {
			t.Fatalf("readyz error envelope %+v, want code %q", env.Error, CodeSolverPanic)
		}

		s.est = good
		if snap := s.Recompute(nil); snap.Err != nil {
			t.Fatal(snap.Err)
		}
		if code, _, _ := get(t, h, "/v1/readyz"); code != http.StatusOK {
			t.Fatalf("readyz after recovery returned %d", code)
		}
	})
}

// TestMetricsSolverPanicCounter pins the panic counter to the
// containment path.
func TestMetricsSolverPanicCounter(t *testing.T) {
	top := testTopology(t)
	s := newServer(t, top, Config{
		WindowSize: 100,
		Algo:       estimator.Independence,
		SolverOpts: solverOpts(),
	})
	defer s.Close()
	ingestSimulated(t, s, top, 100)
	s.est = panicEstimator{}

	pre := telemetry.Default().Snapshot()
	s.Recompute(nil)
	post := telemetry.Default().Snapshot()
	if got := delta(pre, post, "tomod_solver_panics_total"); got != 1 {
		t.Fatalf("panic counter delta %v, want 1", got)
	}
}

// TestIngestRejectedCounters pins each rejection reason to its label.
func TestIngestRejectedCounters(t *testing.T) {
	top := testTopology(t)
	s := newServer(t, top, Config{WindowSize: 100, SolverOpts: solverOpts()})
	defer s.Close()
	h := s.Handler()

	reject := func(body string) {
		t.Helper()
		rw := httptest.NewRecorder()
		h.ServeHTTP(rw, httptest.NewRequest(http.MethodPost, "/v1/observations", strings.NewReader(body)))
		if rw.Code == http.StatusOK {
			t.Fatalf("expected rejection, got 200 for %q", body)
		}
	}

	pre := telemetry.Default().Snapshot()
	reject(`{"intervals":`)
	reject(fmt.Sprintf(`{"intervals":[{"congested_paths":[%d]}]}`, top.NumPaths()))
	post := telemetry.Default().Snapshot()

	if got := delta(pre, post, `tomod_ingest_rejected_total{reason="bad_request"}`); got != 1 {
		t.Errorf("bad_request delta %v, want 1", got)
	}
	if got := delta(pre, post, `tomod_ingest_rejected_total{reason="bad_path"}`); got != 1 {
		t.Errorf("bad_path delta %v, want 1", got)
	}
}
