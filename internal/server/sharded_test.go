package server

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"repro/internal/bitset"
	"repro/internal/estimator"
	"repro/internal/experiment"
	"repro/internal/netsim"
	"repro/internal/observe"
	"repro/internal/topology"
)

// shardedTestTopology builds a topology whose correlation-set partition
// has at least two shards, so the per-shard solver loops genuinely run
// independently (the Sparse family at this scale splits in two).
func shardedTestTopology(t testing.TB) *topology.Topology {
	t.Helper()
	top, err := experiment.BuildTopology(experiment.Sparse, experiment.Small(), 1)
	if err != nil {
		t.Fatal(err)
	}
	if n := topology.NewPartition(top).NumShards(); n < 2 {
		t.Fatalf("test topology has %d shards, want ≥ 2", n)
	}
	return top
}

// TestEndToEndShardedStreaming is the acceptance test of sharded mode,
// run under -race in CI: sharded ingest over real HTTP with concurrent
// queries crossing shard epoch boundaries, per-shard status invariants
// throughout, and a final synchronous epoch that must bit-match an
// offline replay through the registry's sharded estimator.
func TestEndToEndShardedStreaming(t *testing.T) {
	const totalIntervals, windowSize = 4000, 1000
	top := shardedTestTopology(t)
	s := newServer(t, top, Config{
		WindowSize:     windowSize,
		RecomputeEvery: 10 * time.Millisecond,
		Algo:           estimator.CorrelationCompleteSharded,
		SolverOpts:     solverOpts(),
	})
	if s.NumShards() < 2 {
		t.Fatalf("server runs %d shard solvers, want ≥ 2", s.NumShards())
	}
	s.Start()
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// Concurrent readers: status (with per-shard invariants), links and
	// subsets, racing the shard epoch boundaries.
	done := make(chan struct{})
	var wg sync.WaitGroup
	var mu sync.Mutex
	var readerErrs []string
	fail := func(format string, args ...any) {
		mu.Lock()
		readerErrs = append(readerErrs, fmt.Sprintf(format, args...))
		mu.Unlock()
	}
	for g := 0; g < 3; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			lastEpoch := uint64(0)
			lastShardEpochs := map[int]uint64{}
			for {
				select {
				case <-done:
					return
				default:
				}
				var st StatusResponse
				code, err := fetchJSON(ts.Client(), ts.URL+"/v1/status", &st)
				if err != nil {
					fail("%v", err)
					return
				}
				if code != 200 {
					fail("status returned %d", code)
					return
				}
				if st.Epoch < lastEpoch {
					fail("merged epoch went backwards: %d then %d", lastEpoch, st.Epoch)
					return
				}
				lastEpoch = st.Epoch
				if len(st.Shards) != s.NumShards() {
					fail("status lists %d shards, want %d", len(st.Shards), s.NumShards())
					return
				}
				for _, sh := range st.Shards {
					if sh.Epoch < lastShardEpochs[sh.Shard] {
						fail("shard %d epoch went backwards: %d then %d", sh.Shard, lastShardEpochs[sh.Shard], sh.Epoch)
						return
					}
					lastShardEpochs[sh.Shard] = sh.Epoch
					if sh.SeqHigh > st.IngestedSeq {
						fail("shard %d solved ahead of ingest: %d > %d", sh.Shard, sh.SeqHigh, st.IngestedSeq)
						return
					}
					if sh.Paths <= 0 || sh.Links <= 0 {
						fail("shard %d reports empty universe: %+v", sh.Shard, sh)
						return
					}
				}
				var lr LinkResponse
				code, err = fetchJSON(ts.Client(), ts.URL+"/v1/links/"+[]string{"0", "1", "2"}[g], &lr)
				if err != nil {
					fail("%v", err)
					return
				}
				switch code {
				case 503:
					// No merged snapshot yet (some shard hasn't solved).
				case 200:
					if lr.CongestProb < 0 || lr.CongestProb > 1 || math.IsNaN(lr.CongestProb) {
						fail("link prob out of range: %v", lr.CongestProb)
						return
					}
					if lr.Algorithm != estimator.CorrelationCompleteSharded {
						fail("link answered by %q", lr.Algorithm)
						return
					}
				default:
					fail("link returned %d", code)
					return
				}
				var sr SubsetsResponse
				code, err = fetchJSON(ts.Client(), ts.URL+"/v1/subsets", &sr)
				if err != nil {
					fail("%v", err)
					return
				}
				if code == 200 && sr.Total != len(sr.Subsets) {
					fail("subsets total %d but %d listed", sr.Total, len(sr.Subsets))
					return
				}
			}
		}(g)
	}

	// Drive simulated intervals at the server over HTTP.
	simCfg := netsim.DefaultConfig(netsim.RandomCongestion)
	simCfg.PerfectE2E = true
	loadCfg := LoadConfig{
		Target:    ts.URL,
		Intervals: totalIntervals,
		BatchSize: 100,
		Seed:      5,
		Sim:       simCfg,
		Client:    ts.Client(),
	}
	stats, err := RunLoadGen(context.Background(), top, loadCfg)
	if err != nil {
		t.Fatal(err)
	}
	close(done)
	wg.Wait()
	for _, msg := range readerErrs {
		t.Error(msg)
	}
	if stats.Intervals != totalIntervals {
		t.Fatalf("loadgen sent %d intervals, want %d", stats.Intervals, totalIntervals)
	}

	// Final synchronous epoch: every shard solved at the same sequence.
	snap := s.Recompute(nil)
	if snap.Err != nil {
		t.Fatalf("solver: %v", snap.Err)
	}
	if snap.SeqHigh != totalIntervals || snap.T != windowSize {
		t.Fatalf("snapshot seq %d T %d, want %d/%d", snap.SeqHigh, snap.T, totalIntervals, windowSize)
	}
	if len(snap.Shards) != s.NumShards() {
		t.Fatalf("snapshot carries %d shard blocks, want %d", len(snap.Shards), s.NumShards())
	}
	for _, sh := range snap.Shards {
		if sh.SeqHigh != totalIntervals {
			t.Fatalf("shard %d solved at seq %d, want %d", sh.Shard, sh.SeqHigh, totalIntervals)
		}
	}

	// A quiescent re-solve must warm-start every shard (no always-good
	// drift without new data) and stay bit-identical.
	snap2 := s.Recompute(nil)
	if snap2.Err != nil {
		t.Fatal(snap2.Err)
	}
	for _, sh := range snap2.Shards {
		if !sh.Warm {
			t.Fatalf("quiescent re-solve of shard %d did not warm-start", sh.Shard)
		}
	}
	for e := 0; e < top.NumLinks(); e++ {
		p1, x1 := snap.Est.LinkCongestProb(e)
		p2, x2 := snap2.Est.LinkCongestProb(e)
		if p1 != p2 || x1 != x2 {
			t.Fatalf("link %d: quiescent epochs disagree: (%v,%v) vs (%v,%v)", e, p1, x1, p2, x2)
		}
	}

	// Offline replay: rebuild the exact stream, keep the surviving
	// window in a fresh Recorder, and solve through the registry's
	// sharded estimator. The streamed result must be bit-identical.
	rng := rand.New(rand.NewSource(loadCfg.Seed))
	model, err := netsim.NewModel(top, simCfg, totalIntervals, rng)
	if err != nil {
		t.Fatal(err)
	}
	rec := observe.NewRecorder(top.NumPaths())
	for ti := 0; ti < totalIntervals; ti++ {
		obs := model.Interval(ti, rng)
		if ti >= totalIntervals-windowSize {
			rec.Add(obs.CongestedPaths)
		}
	}
	est, err := estimator.New(estimator.CorrelationCompleteSharded)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := est.Estimate(context.Background(), top, rec, solverOpts()...)
	if err != nil {
		t.Fatal(err)
	}
	for e := 0; e < top.NumLinks(); e++ {
		want, wantExact := ref.LinkCongestProb(e)
		got, gotExact := snap.Est.LinkCongestProb(e)
		if got != want || gotExact != wantExact {
			t.Fatalf("link %d: streamed shards (%v,%v) != offline replay (%v,%v)",
				e, got, gotExact, want, wantExact)
		}
	}
}

// The per-shard loops must publish merged snapshots on their own as
// data arrives, and stop once quiescent.
func TestShardedRecomputeLoop(t *testing.T) {
	top := shardedTestTopology(t)
	s := newServer(t, top, Config{
		WindowSize:     300,
		RecomputeEvery: 5 * time.Millisecond,
		Algo:           estimator.CorrelationCompleteSharded,
		SolverOpts:     solverOpts(),
	})
	s.Start()
	defer s.Close()

	rng := rand.New(rand.NewSource(9))
	simCfg := netsim.DefaultConfig(netsim.RandomCongestion)
	simCfg.PerfectE2E = true
	model, err := netsim.NewModel(top, simCfg, 400, rng)
	if err != nil {
		t.Fatal(err)
	}
	for ti := 0; ti < 400; ti++ {
		s.Ingest([]*bitset.Set{model.Interval(ti, rng).CongestedPaths})
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		snap := s.Latest()
		if snap != nil && snap.SeqHigh == 400 {
			allCaught := true
			for _, sh := range snap.Shards {
				if sh.SeqHigh != 400 {
					allCaught = false
				}
			}
			if allCaught {
				break
			}
		}
		if time.Now().After(deadline) {
			t.Fatal("shard loops never caught up with ingest")
		}
		time.Sleep(time.Millisecond)
	}
	e1 := s.Latest().Epoch
	time.Sleep(30 * time.Millisecond)
	if e2 := s.Latest().Epoch; e2 != e1 {
		t.Fatalf("merged epoch advanced with no new data: %d then %d", e1, e2)
	}
}
