package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"runtime"
	"sort"
	"strconv"
	"time"

	"repro/internal/bitset"
	"repro/internal/estimator"
	"repro/internal/telemetry"
)

// maxIngestBody is the default Config.MaxIngestBytes (64 MiB is ~ a
// day of intervals on the paper-scale path universe).
const maxIngestBody = 64 << 20

// APIVersion tags every response envelope; clients should reject
// versions they do not understand.
const APIVersion = "v1"

// Machine-readable error codes of the v1 API. They are part of the
// wire contract: clients dispatch on Code, never on Message.
const (
	CodeBadRequest    = "bad_request"    // malformed body or query parameter
	CodeUnknownAlgo   = "unknown_algo"   // ?algo= names no registered estimator
	CodeUnknownLink   = "unknown_link"   // link id outside the universe
	CodeUnknownSubset = "unknown_subset" // subset id outside the snapshot's universe
	CodeNoSnapshot    = "no_snapshot"    // no epoch published yet
	CodeSolveCanceled = "solve_canceled" // the request's solve was cancelled (client gone or shutdown)
	CodeSolverFailed  = "solver_failed"  // the estimator returned an error
	CodeInternal      = "internal_error" // server-side failure unrelated to the solve

	CodePayloadTooLarge  = "payload_too_large" // ingest body exceeds MaxIngestBytes
	CodeWALUnavailable   = "wal_unavailable"   // the write-ahead log cannot accept the batch (stalled or failed disk)
	CodeNotReady         = "not_ready"         // readiness probe: no snapshot published yet
	CodeSolverPanic      = "solver_panic"      // readiness probe: a contained solver panic has degraded the service
	CodeShardUnavailable = "shard_unavailable" // cluster mode: a shard's worker is unreachable (retry after it rejoins)
)

// Envelope is the versioned wrapper of every v1 response: exactly one
// of Data and Error is set.
type Envelope struct {
	APIVersion string          `json:"api_version"`
	Data       json.RawMessage `json:"data,omitempty"`
	Error      *APIError       `json:"error,omitempty"`
}

// APIError is the machine-readable error payload.
type APIError struct {
	Code    string `json:"code"`
	Message string `json:"message"`
}

// Wire types of the JSON API.

// IntervalObs is one measurement interval on the wire: the IDs of the
// paths observed congested (Assumption 2: E2E monitoring).
type IntervalObs struct {
	CongestedPaths []int `json:"congested_paths"`
}

// ObservationsRequest is the body of POST /v1/observations.
type ObservationsRequest struct {
	Intervals []IntervalObs `json:"intervals"`
}

// ObservationsResponse acknowledges an ingest batch.
type ObservationsResponse struct {
	Accepted int    `json:"accepted"`
	Seq      uint64 `json:"seq"`
}

// LinkResponse is the answer of GET /v1/links/{id}: the best available
// estimate of P(link congested) under the snapshot's epoch, by the
// requested algorithm (?algo=, default the epoch solver).
type LinkResponse struct {
	Link        int     `json:"link"`
	Name        string  `json:"name,omitempty"`
	Algorithm   string  `json:"algorithm"`
	CongestProb float64 `json:"congest_prob"`
	// Exact reports whether the probability was identified by the
	// algorithm (vs an observable fallback estimate).
	Exact   bool   `json:"exact"`
	Epoch   uint64 `json:"epoch"`
	WindowT int    `json:"window_intervals"`
	SeqHigh uint64 `json:"seq_high"`
}

// SubsetResponse is one correlation subset's estimate: the probability
// that all its links are simultaneously good (the paper's primary
// output). GoodProb is omitted when the subset is unidentifiable.
type SubsetResponse struct {
	ID           int      `json:"id"`
	Links        []int    `json:"links"`
	CorrSet      int      `json:"corr_set"`
	GoodProb     *float64 `json:"good_prob,omitempty"`
	CongestProb  *float64 `json:"congest_prob,omitempty"`
	Identifiable bool     `json:"identifiable"`
}

// SubsetsResponse is GET /v1/subsets: every correlation subset of the
// snapshot's estimate, in stable ID order.
type SubsetsResponse struct {
	Epoch        uint64           `json:"epoch"`
	Algorithm    string           `json:"algorithm"`
	WindowT      int              `json:"window_intervals"`
	SeqHigh      uint64           `json:"seq_high"`
	Total        int              `json:"total"`
	Identifiable int              `json:"identifiable"`
	Subsets      []SubsetResponse `json:"subsets"`
}

// EstimatorInfo describes one registered estimator.
type EstimatorInfo struct {
	Name        string `json:"name"`
	Description string `json:"description"`
	// Default reports whether this is the server's epoch solver.
	Default bool `json:"default"`
}

// EstimatorsResponse is GET /v1/estimators: the registry, sorted by
// name.
type EstimatorsResponse struct {
	Estimators []EstimatorInfo `json:"estimators"`
}

// CongestedPath is one entry of GET /v1/paths/congested.
type CongestedPath struct {
	Path              int     `json:"path"`
	Name              string  `json:"name,omitempty"`
	CongestedFraction float64 `json:"congested_fraction"`
}

// CongestedPathsResponse lists the paths whose congested fraction over
// the snapshot window meets the threshold, most congested first.
type CongestedPathsResponse struct {
	Epoch     uint64          `json:"epoch"`
	WindowT   int             `json:"window_intervals"`
	SeqHigh   uint64          `json:"seq_high"`
	Threshold float64         `json:"threshold"`
	Paths     []CongestedPath `json:"paths"`
}

// ShardStatus is one shard solver's live state in GET /v1/status
// (sharded mode only): its independent epoch counter, the ingest
// sequence its last solve covered, how far ingest has run ahead of it,
// and whether the solve warm-started from the carried-forward plan.
type ShardStatus struct {
	Shard           int     `json:"shard"`
	Epoch           uint64  `json:"epoch"`
	SeqHigh         uint64  `json:"seq_high"`
	LagIntervals    uint64  `json:"lag_intervals"`
	Warm            bool    `json:"warm"`
	Repaired        bool    `json:"repaired"`
	RepairedNumeric bool    `json:"repaired_numeric"`
	RepairFailed    bool    `json:"repair_failed,omitempty"`
	ComputeMs       float64 `json:"last_compute_ms"`
	// EpochBacklog is the shard's pending interval-stride checkpoints
	// (0 unless Config.EpochEvery is set).
	EpochBacklog int    `json:"epoch_backlog,omitempty"`
	Paths        int    `json:"paths"`
	Links        int    `json:"links"`
	Error        string `json:"error,omitempty"`
}

// StatusResponse is GET /v1/status: ingest/solver progress and lag.
type StatusResponse struct {
	Epoch       uint64 `json:"epoch"`
	Algorithm   string `json:"algorithm"`
	IngestedSeq uint64 `json:"ingested_seq"`
	SnapshotSeq uint64 `json:"snapshot_seq"`
	// LagIntervals is how many ingested intervals the published
	// snapshot has not yet seen.
	LagIntervals uint64  `json:"lag_intervals"`
	WindowT      int     `json:"window_intervals"`
	WindowCap    int     `json:"window_capacity"`
	NumLinks     int     `json:"num_links"`
	NumPaths     int     `json:"num_paths"`
	ComputeMs    float64 `json:"last_compute_ms"`
	Rank         int     `json:"rank"`
	Nullity      int     `json:"nullity"`
	Subsets      int     `json:"subsets"`
	Identifiable int     `json:"identifiable_subsets"`
	ClampedRows  int     `json:"clamped_rows"`
	SolverError  string  `json:"solver_error,omitempty"`

	// Warm, Repaired and RepairedNumeric report how the published
	// epoch's solve used the carried-forward structural plan (unsharded
	// correlation-complete; sharded mode reports per shard below):
	// warm reuse, tier-1 re-key, or tier-2 factorization patch.
	// RepairFailed marks a cold epoch whose repair attempt failed.
	Warm            bool `json:"warm"`
	Repaired        bool `json:"repaired"`
	RepairedNumeric bool `json:"repaired_numeric"`
	RepairFailed    bool `json:"repair_failed,omitempty"`

	// SolveTiers is the cumulative published-epoch count by plan path
	// since process start (cold / warm / repaired / repaired_numeric,
	// plus the overlapping repair_failed count).
	SolveTiers SolveTierCounts `json:"solve_tiers"`

	// EpochBacklog is the number of interval-stride checkpoints waiting
	// for the solver, CheckpointsDropped how many were discarded past
	// the backlog bound; both 0 unless Config.EpochEvery is set.
	EpochBacklog       int    `json:"epoch_backlog,omitempty"`
	CheckpointsDropped uint64 `json:"checkpoints_dropped,omitempty"`

	// Process identity and age, for fleet dashboards that correlate
	// behavior changes with deploys: UptimeSeconds since process start,
	// the Go toolchain that built the binary, the VCS revision stamped
	// at build time (absent for `go run` / test binaries), and the
	// solver's parallelism budget.
	UptimeSeconds float64 `json:"uptime_seconds"`
	GoVersion     string  `json:"go_version"`
	VCSRevision   string  `json:"vcs_revision,omitempty"`
	GOMAXPROCS    int     `json:"gomaxprocs"`

	// Shards lists each shard solver's independent epoch and lag;
	// present only in sharded mode.
	Shards []ShardStatus `json:"shards,omitempty"`

	// Cluster reports the coordinator's worker fleet — per-worker shard
	// placement, health state and acknowledged sequence — present only
	// in cluster mode (-role coordinator).
	Cluster *ClusterStatus `json:"cluster,omitempty"`

	// Degraded reports a contained failure: a recovered solver panic
	// (cleared by the next clean epoch) or a latched WAL failure
	// (persists until restart). The daemon keeps serving its last good
	// snapshot while degraded.
	Degraded       bool   `json:"degraded,omitempty"`
	DegradedReason string `json:"degraded_reason,omitempty"`

	// WAL is the durable-ingest state; absent when -wal-dir is unset.
	WAL *WALStatus `json:"wal,omitempty"`
}

// WALStatus is the wal{} block of GET /v1/status.
type WALStatus struct {
	// LastSeq is the durable high-water mark: every interval up to it
	// survives a crash (modulo the fsync policy's window).
	LastSeq  uint64 `json:"last_seq"`
	Segments int    `json:"segments"`
	Bytes    int64  `json:"bytes"`
	// FsyncPolicy is "batch", "interval" or "off".
	FsyncPolicy string `json:"fsync_policy"`
	// RecoveredRecords is how many records the startup scan replayed;
	// TruncatedBytes the torn tail it dropped (0 on a clean start).
	RecoveredRecords int   `json:"recovered_records"`
	TruncatedBytes   int64 `json:"truncated_bytes,omitempty"`
	// Error is the latched WAL failure, if any: ingest is refusing
	// batches (503) until the daemon is restarted.
	Error string `json:"error,omitempty"`
}

// HealthResponse is GET /v1/healthz and /v1/readyz.
type HealthResponse struct {
	Status string `json:"status"`
}

// EpochRecord is one published epoch in GET /v1/epochs.
type EpochRecord struct {
	Epoch           uint64  `json:"epoch"`
	SeqHigh         uint64  `json:"seq_high"`
	WindowT         int     `json:"window_intervals"`
	Warm            bool    `json:"warm"`
	Repaired        bool    `json:"repaired"`
	RepairedNumeric bool    `json:"repaired_numeric"`
	RepairFailed    bool    `json:"repair_failed,omitempty"`
	ComputeMs       float64 `json:"compute_ms"`
	Error           string  `json:"error,omitempty"`
}

// EpochsResponse is GET /v1/epochs: the bounded ring of published
// epochs, oldest first — with interval-stride epochs enabled
// (Config.EpochEvery) this is where a drained lag burst becomes
// visible as one epoch per checkpoint.
type EpochsResponse struct {
	Algorithm string        `json:"algorithm"`
	Epochs    []EpochRecord `json:"epochs"`
}

// Handler returns the versioned HTTP API: batched ingest; per-link,
// subset-level and congested-path queries answered from the latest
// snapshot; the estimator registry; and status. The estimate-backed
// endpoints (/v1/links/{id}, /v1/subsets, /v1/subsets/{id}) accept
// per-request estimator selection via ?algo=; /v1/paths/congested is
// observation-level (raw window fractions, no estimator involved).
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/observations", s.handleObservations)
	mux.HandleFunc("GET /v1/links/{id}", s.handleLink)
	mux.HandleFunc("GET /v1/subsets", s.handleSubsets)
	mux.HandleFunc("GET /v1/subsets/{id}", s.handleSubset)
	mux.HandleFunc("GET /v1/estimators", s.handleEstimators)
	mux.HandleFunc("GET /v1/paths/congested", s.handleCongestedPaths)
	mux.HandleFunc("GET /v1/status", s.handleStatus)
	mux.HandleFunc("GET /v1/epochs", s.handleEpochs)
	mux.HandleFunc("GET /v1/healthz", s.handleHealthz)
	mux.HandleFunc("GET /v1/readyz", s.handleReadyz)
	mux.Handle("GET /metrics", telemetry.Handler(telemetry.Default()))
	return withMetrics(mux)
}

// statusRecorder captures the response code for the request metrics; a
// handler that never calls WriteHeader implicitly answered 200.
type statusRecorder struct {
	http.ResponseWriter
	code int
}

func (sr *statusRecorder) WriteHeader(code int) {
	sr.code = code
	sr.ResponseWriter.WriteHeader(code)
}

// withMetrics instruments every request with the in-flight gauge, the
// per-route latency histogram and the per-route/code counter. The
// route label is the mux pattern the request dispatched to (set on the
// request by ServeMux before the handler runs), so cardinality is
// bounded by the route table — client-controlled paths never mint new
// series.
func withMetrics(h http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		metricHTTPInFlight.Inc()
		defer metricHTTPInFlight.Dec()
		sr := &statusRecorder{ResponseWriter: w, code: http.StatusOK}
		start := time.Now()
		h.ServeHTTP(sr, r)
		route := r.Pattern
		if route == "" {
			route = "unmatched"
		}
		metricHTTPDuration.With(route).Observe(time.Since(start).Seconds())
		metricHTTPRequests.With(route, strconv.Itoa(sr.code)).Inc()
	})
}

// writeData wraps v in the versioned envelope.
func writeData(w http.ResponseWriter, status int, v any) {
	raw, err := json.Marshal(v)
	if err != nil {
		writeError(w, http.StatusInternalServerError, CodeInternal, "encoding response: %v", err)
		return
	}
	writeEnvelope(w, status, Envelope{APIVersion: APIVersion, Data: raw})
}

// writeError wraps a machine-readable error in the versioned envelope.
func writeError(w http.ResponseWriter, status int, code, format string, args ...any) {
	writeEnvelope(w, status, Envelope{
		APIVersion: APIVersion,
		Error:      &APIError{Code: code, Message: fmt.Sprintf(format, args...)},
	})
}

func writeEnvelope(w http.ResponseWriter, status int, env Envelope) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(env)
}

func (s *Server) handleObservations(w http.ResponseWriter, r *http.Request) {
	var req ObservationsRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, s.cfg.MaxIngestBytes))
	if err := dec.Decode(&req); err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			rejTooLarge.Inc()
			writeError(w, http.StatusRequestEntityTooLarge, CodePayloadTooLarge,
				"body exceeds the %d-byte ingest limit; split the batch", tooLarge.Limit)
			return
		}
		rejBadRequest.Inc()
		writeError(w, http.StatusBadRequest, CodeBadRequest, "decoding body: %v", err)
		return
	}
	numPaths := s.top.NumPaths()
	batch := make([]*bitset.Set, len(req.Intervals))
	for i, iv := range req.Intervals {
		set := bitset.New(numPaths)
		for _, p := range iv.CongestedPaths {
			if p < 0 || p >= numPaths {
				rejBadPath.Inc()
				writeError(w, http.StatusBadRequest, CodeBadRequest,
					"interval %d: path %d outside universe [0,%d)", i, p, numPaths)
				return
			}
			set.Add(p)
		}
		batch[i] = set
	}
	seq, err := s.Ingest(batch)
	if err != nil {
		w.Header().Set("Retry-After", "1")
		if errors.Is(err, ErrShardUnavailable) {
			// A shard-owning worker is unreachable: nothing was applied
			// (the fan-out rejects before the local window advances), so
			// the client can retry the identical batch once the worker
			// rejoins — workers deduplicate by base sequence.
			rejShard.Inc()
			writeError(w, http.StatusServiceUnavailable, CodeShardUnavailable, "cluster ingest unavailable: %v", err)
			return
		}
		// The WAL cannot persist the batch: a stalled disk clears on
		// its own (retry soon), a latched write/fsync failure needs a
		// restart — either way the client should back off and retry
		// rather than treat the observations as accepted.
		rejWAL.Inc()
		writeError(w, http.StatusServiceUnavailable, CodeWALUnavailable, "durable ingest unavailable: %v", err)
		return
	}
	writeData(w, http.StatusOK, ObservationsResponse{Accepted: len(batch), Seq: seq})
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeData(w, http.StatusOK, HealthResponse{Status: "ok"})
}

// handleReadyz reports readiness: WAL recovery is complete (it is
// synchronous in New, so reaching a handler implies it), the first
// snapshot has been published (queries will not 503 with no_snapshot),
// and the service is not degraded — a latched WAL failure (ingest is
// refusing batches until restart) or an uncleared solver panic both
// answer 503 with the reason, so a load balancer stops routing to a
// wedged instance instead of feeding it traffic it can only half
// serve.
func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	if s.wal != nil {
		if err := s.wal.Err(); err != nil {
			writeError(w, http.StatusServiceUnavailable, CodeWALUnavailable,
				"degraded: durable ingest unavailable until restart: %v", err)
			return
		}
	}
	if cs := s.clusterStatus(); cs != nil && len(cs.UnreachableShards) > 0 {
		writeError(w, http.StatusServiceUnavailable, CodeShardUnavailable,
			"degraded: %d shard(s) unavailable (workers unreachable); serving last merged snapshot", len(cs.UnreachableShards))
		return
	}
	if reason, _ := s.degraded.Load().(string); reason != "" {
		writeError(w, http.StatusServiceUnavailable, CodeSolverPanic, "degraded: %s", reason)
		return
	}
	if !s.Ready() {
		writeError(w, http.StatusServiceUnavailable, CodeNotReady, "no solver snapshot published yet")
		return
	}
	writeData(w, http.StatusOK, HealthResponse{Status: "ready"})
}

// snapshotEstimate resolves the latest snapshot and the estimate for
// the request's ?algo= selection, writing the appropriate error
// envelope on failure.
func (s *Server) snapshotEstimate(w http.ResponseWriter, r *http.Request) (*Snapshot, *estimator.Estimate, bool) {
	snap := s.Latest()
	if snap == nil {
		writeError(w, http.StatusServiceUnavailable, CodeNoSnapshot, "no solver snapshot yet")
		return nil, nil, false
	}
	algo := r.URL.Query().Get("algo")
	est, err := snap.EstimateFor(r.Context(), algo)
	if err != nil {
		switch {
		case errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded):
			writeError(w, http.StatusServiceUnavailable, CodeSolveCanceled, "solve cancelled: %v", err)
		case algo != "" && !registered(algo):
			writeError(w, http.StatusBadRequest, CodeUnknownAlgo, "%v", err)
		default:
			writeError(w, http.StatusInternalServerError, CodeSolverFailed, "%v", err)
		}
		return nil, nil, false
	}
	return snap, est, true
}

// registered reports whether name is in the estimator registry.
func registered(name string) bool {
	_, err := estimator.New(name)
	return err == nil
}

func (s *Server) handleLink(w http.ResponseWriter, r *http.Request) {
	id, err := strconv.Atoi(r.PathValue("id"))
	if err != nil {
		writeError(w, http.StatusBadRequest, CodeBadRequest, "link id %q is not an integer", r.PathValue("id"))
		return
	}
	if id < 0 || id >= s.top.NumLinks() {
		writeError(w, http.StatusNotFound, CodeUnknownLink, "link %d outside universe [0,%d)", id, s.top.NumLinks())
		return
	}
	snap, est, ok := s.snapshotEstimate(w, r)
	if !ok {
		return
	}
	p, exact := est.LinkCongestProb(id)
	writeData(w, http.StatusOK, LinkResponse{
		Link:        id,
		Name:        s.top.Links[id].Name,
		Algorithm:   est.Algorithm,
		CongestProb: p,
		Exact:       exact,
		Epoch:       snap.Epoch,
		WindowT:     snap.T,
		SeqHigh:     snap.SeqHigh,
	})
}

// subsetResponse flattens one subset estimate for the wire; the good
// probability is omitted (not NaN, which JSON cannot carry) when the
// subset is unidentifiable. For estimates with joint-query detail, the
// subset's congestion probability is included too.
func subsetResponse(est *estimator.Estimate, sub estimator.SubsetEstimate) SubsetResponse {
	out := SubsetResponse{
		ID:           sub.ID,
		Links:        sub.Links.Indices(),
		CorrSet:      sub.CorrSet,
		Identifiable: sub.Identifiable,
	}
	if sub.Identifiable {
		g := sub.GoodProb
		out.GoodProb = &g
		if est.Detail != nil {
			if c, ok := est.Detail.CongestedProb(sub.Links); ok {
				out.CongestProb = &c
			}
		}
	}
	return out
}

func (s *Server) handleSubsets(w http.ResponseWriter, r *http.Request) {
	snap, est, ok := s.snapshotEstimate(w, r)
	if !ok {
		return
	}
	resp := SubsetsResponse{
		Epoch:     snap.Epoch,
		Algorithm: est.Algorithm,
		WindowT:   snap.T,
		SeqHigh:   snap.SeqHigh,
		Total:     len(est.Subsets),
		Subsets:   make([]SubsetResponse, 0, len(est.Subsets)),
	}
	for _, sub := range est.Subsets {
		if sub.Identifiable {
			resp.Identifiable++
		}
		resp.Subsets = append(resp.Subsets, subsetResponse(est, sub))
	}
	writeData(w, http.StatusOK, resp)
}

func (s *Server) handleSubset(w http.ResponseWriter, r *http.Request) {
	id, err := strconv.Atoi(r.PathValue("id"))
	if err != nil {
		writeError(w, http.StatusBadRequest, CodeBadRequest, "subset id %q is not an integer", r.PathValue("id"))
		return
	}
	snap, est, ok := s.snapshotEstimate(w, r)
	if !ok {
		return
	}
	if id < 0 || id >= len(est.Subsets) {
		writeError(w, http.StatusNotFound, CodeUnknownSubset,
			"subset %d outside universe [0,%d) of epoch %d", id, len(est.Subsets), snap.Epoch)
		return
	}
	writeData(w, http.StatusOK, subsetResponse(est, est.Subsets[id]))
}

func (s *Server) handleEstimators(w http.ResponseWriter, r *http.Request) {
	resp := EstimatorsResponse{}
	for _, name := range estimator.Names() {
		est, err := estimator.New(name)
		if err != nil {
			continue // unreachable: Names only lists registered estimators
		}
		resp.Estimators = append(resp.Estimators, EstimatorInfo{
			Name:        name,
			Description: est.Description(),
			Default:     name == s.cfg.Algo,
		})
	}
	writeData(w, http.StatusOK, resp)
}

func (s *Server) handleCongestedPaths(w http.ResponseWriter, r *http.Request) {
	threshold := 0.5
	if v := r.URL.Query().Get("min"); v != "" {
		f, err := strconv.ParseFloat(v, 64)
		if err != nil || f < 0 || f > 1 {
			writeError(w, http.StatusBadRequest, CodeBadRequest, "min must be a number in [0,1], got %q", v)
			return
		}
		threshold = f
	}
	snap := s.Latest()
	if snap == nil {
		writeError(w, http.StatusServiceUnavailable, CodeNoSnapshot, "no solver snapshot yet")
		return
	}
	resp := CongestedPathsResponse{
		Epoch:     snap.Epoch,
		WindowT:   snap.T,
		SeqHigh:   snap.SeqHigh,
		Threshold: threshold,
		Paths:     []CongestedPath{},
	}
	for p := 0; p < s.top.NumPaths(); p++ {
		if f := snap.Window.CongestedFraction(p); f >= threshold {
			resp.Paths = append(resp.Paths, CongestedPath{
				Path:              p,
				Name:              s.top.Paths[p].Name,
				CongestedFraction: f,
			})
		}
	}
	sort.Slice(resp.Paths, func(i, j int) bool {
		if resp.Paths[i].CongestedFraction != resp.Paths[j].CongestedFraction {
			return resp.Paths[i].CongestedFraction > resp.Paths[j].CongestedFraction
		}
		return resp.Paths[i].Path < resp.Paths[j].Path
	})
	writeData(w, http.StatusOK, resp)
}

func (s *Server) handleEpochs(w http.ResponseWriter, r *http.Request) {
	limit := 0
	if v := r.URL.Query().Get("limit"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 1 {
			writeError(w, http.StatusBadRequest, CodeBadRequest, "limit must be a positive integer, got %q", v)
			return
		}
		limit = n
	}
	history := s.History()
	if limit > 0 && len(history) > limit {
		history = history[len(history)-limit:]
	}
	resp := EpochsResponse{Algorithm: s.cfg.Algo, Epochs: make([]EpochRecord, 0, len(history))}
	for _, h := range history {
		resp.Epochs = append(resp.Epochs, EpochRecord{
			Epoch:           h.Epoch,
			SeqHigh:         h.SeqHigh,
			WindowT:         h.T,
			Warm:            h.Warm,
			Repaired:        h.Repaired,
			RepairedNumeric: h.RepairedNumeric,
			RepairFailed:    h.RepairFailed,
			ComputeMs:       float64(h.ComputeTime.Microseconds()) / 1000,
			Error:           h.Err,
		})
	}
	writeData(w, http.StatusOK, resp)
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	// Load the snapshot before reading the ingest counter: SeqHigh is a
	// past value of the monotone counter, so this order guarantees
	// IngestedSeq ≥ SnapshotSeq and the lag subtraction cannot wrap.
	snap := s.Latest()
	st := StatusResponse{
		Algorithm:     s.cfg.Algo,
		IngestedSeq:   s.Seq(),
		WindowCap:     s.cfg.WindowSize,
		NumLinks:      s.top.NumLinks(),
		NumPaths:      s.top.NumPaths(),
		UptimeSeconds: Uptime().Seconds(),
		GOMAXPROCS:    runtime.GOMAXPROCS(0),
		SolveTiers:    s.SolveTiers(),
	}
	st.GoVersion, st.VCSRevision = BuildInfo()
	if st.VCSRevision == "unknown" {
		st.VCSRevision = ""
	}
	st.EpochBacklog, st.CheckpointsDropped = s.backlogStats()
	if snap != nil {
		st.Epoch = snap.Epoch
		st.SnapshotSeq = snap.SeqHigh
		st.LagIntervals = st.IngestedSeq - snap.SeqHigh
		st.WindowT = snap.T
		st.Warm = snap.Warm
		st.Repaired = snap.Repaired
		st.RepairedNumeric = snap.RepairedNumeric
		st.RepairFailed = snap.RepairFailed
		st.ComputeMs = float64(snap.ComputeTime.Microseconds()) / 1000
		if snap.Err != nil {
			st.SolverError = snap.Err.Error()
		}
		if est := snap.Est; est != nil {
			st.Rank = est.Rank
			st.Nullity = est.Nullity
			st.Subsets = len(est.Subsets)
			st.ClampedRows = est.ClampedRows
			for _, sub := range est.Subsets {
				if sub.Identifiable {
					st.Identifiable++
				}
			}
		}
	} else {
		st.LagIntervals = st.IngestedSeq
	}
	if s.backend != nil {
		st.Shards = s.shardStatuses(st.IngestedSeq)
	}
	if cs := s.clusterStatus(); cs != nil {
		st.Cluster = cs
	}
	if reason := s.DegradedReason(); reason != "" {
		st.Degraded = true
		st.DegradedReason = reason
	}
	if ws, rec, ok := s.WALStats(); ok {
		st.WAL = &WALStatus{
			LastSeq:          ws.LastSeq,
			Segments:         ws.Segments,
			Bytes:            ws.Bytes,
			FsyncPolicy:      ws.Policy.String(),
			RecoveredRecords: rec.Records,
			TruncatedBytes:   rec.TruncatedBytes,
		}
		if err := s.wal.Err(); err != nil {
			st.WAL.Error = err.Error()
		}
	}
	writeData(w, http.StatusOK, st)
}

// shardStatuses reads the live per-shard solver states. ingested is the
// ingest sequence already reported in the same response; a shard that
// published between the two reads is clamped to zero lag rather than
// allowed to wrap.
func (s *Server) shardStatuses(ingested uint64) []ShardStatus {
	s.publishMu.Lock()
	defer s.publishMu.Unlock()
	out := make([]ShardStatus, len(s.shardStates))
	for i := range s.shardStates {
		info := s.shardInfoLocked(i)
		out[i] = ShardStatus{
			Shard:           info.Shard,
			Epoch:           info.Epoch,
			SeqHigh:         info.SeqHigh,
			Warm:            info.Warm,
			Repaired:        info.Repaired,
			RepairedNumeric: info.RepairedNumeric,
			RepairFailed:    info.RepairFailed,
			ComputeMs:       float64(info.ComputeTime.Microseconds()) / 1000,
			EpochBacklog:    info.EpochBacklog,
			Paths:           info.Paths,
			Links:           info.Links,
		}
		if ingested >= info.SeqHigh {
			out[i].LagIntervals = ingested - info.SeqHigh
		}
		if err := s.shardStates[i].err; err != nil {
			out[i].Error = err.Error()
		}
	}
	return out
}
