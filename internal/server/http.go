package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"strconv"

	"repro/internal/bitset"
)

// maxIngestBody bounds one ingest request (64 MiB is ~ a day of
// intervals on the paper-scale path universe).
const maxIngestBody = 64 << 20

// Wire types of the JSON API.

// IntervalObs is one measurement interval on the wire: the IDs of the
// paths observed congested (Assumption 2: E2E monitoring).
type IntervalObs struct {
	CongestedPaths []int `json:"congested_paths"`
}

// ObservationsRequest is the body of POST /v1/observations.
type ObservationsRequest struct {
	Intervals []IntervalObs `json:"intervals"`
}

// ObservationsResponse acknowledges an ingest batch.
type ObservationsResponse struct {
	Accepted int    `json:"accepted"`
	Seq      uint64 `json:"seq"`
}

// LinkResponse is the answer of GET /v1/links/{id}: the best available
// estimate of P(link congested) under the snapshot's epoch.
type LinkResponse struct {
	Link        int     `json:"link"`
	Name        string  `json:"name,omitempty"`
	CongestProb float64 `json:"congest_prob"`
	// Exact reports whether the probability was identified by the
	// solver (vs an observable fallback estimate).
	Exact   bool   `json:"exact"`
	Epoch   uint64 `json:"epoch"`
	WindowT int    `json:"window_intervals"`
	SeqHigh uint64 `json:"seq_high"`
}

// CongestedPath is one entry of GET /v1/paths/congested.
type CongestedPath struct {
	Path              int     `json:"path"`
	Name              string  `json:"name,omitempty"`
	CongestedFraction float64 `json:"congested_fraction"`
}

// CongestedPathsResponse lists the paths whose congested fraction over
// the snapshot window meets the threshold, most congested first.
type CongestedPathsResponse struct {
	Epoch     uint64          `json:"epoch"`
	WindowT   int             `json:"window_intervals"`
	SeqHigh   uint64          `json:"seq_high"`
	Threshold float64         `json:"threshold"`
	Paths     []CongestedPath `json:"paths"`
}

// StatusResponse is GET /v1/status: ingest/solver progress and lag.
type StatusResponse struct {
	Epoch       uint64 `json:"epoch"`
	IngestedSeq uint64 `json:"ingested_seq"`
	SnapshotSeq uint64 `json:"snapshot_seq"`
	// LagIntervals is how many ingested intervals the published
	// snapshot has not yet seen.
	LagIntervals uint64  `json:"lag_intervals"`
	WindowT      int     `json:"window_intervals"`
	WindowCap    int     `json:"window_capacity"`
	NumLinks     int     `json:"num_links"`
	NumPaths     int     `json:"num_paths"`
	ComputeMs    float64 `json:"last_compute_ms"`
	Rank         int     `json:"rank"`
	Nullity      int     `json:"nullity"`
	Subsets      int     `json:"subsets"`
	Identifiable int     `json:"identifiable_subsets"`
	ClampedRows  int     `json:"clamped_rows"`
	SolverError  string  `json:"solver_error,omitempty"`
}

// Handler returns the HTTP API: batched ingest, per-link and congested
// path queries answered from the latest snapshot, and status.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/observations", s.handleObservations)
	mux.HandleFunc("GET /v1/links/{id}", s.handleLink)
	mux.HandleFunc("GET /v1/paths/congested", s.handleCongestedPaths)
	mux.HandleFunc("GET /v1/status", s.handleStatus)
	return mux
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, map[string]string{"error": fmt.Sprintf(format, args...)})
}

func (s *Server) handleObservations(w http.ResponseWriter, r *http.Request) {
	var req ObservationsRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxIngestBody))
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "decoding body: %v", err)
		return
	}
	numPaths := s.top.NumPaths()
	batch := make([]*bitset.Set, len(req.Intervals))
	for i, iv := range req.Intervals {
		set := bitset.New(numPaths)
		for _, p := range iv.CongestedPaths {
			if p < 0 || p >= numPaths {
				writeError(w, http.StatusBadRequest,
					"interval %d: path %d outside universe [0,%d)", i, p, numPaths)
				return
			}
			set.Add(p)
		}
		batch[i] = set
	}
	seq := s.Ingest(batch)
	writeJSON(w, http.StatusOK, ObservationsResponse{Accepted: len(batch), Seq: seq})
}

func (s *Server) handleLink(w http.ResponseWriter, r *http.Request) {
	id, err := strconv.Atoi(r.PathValue("id"))
	if err != nil {
		writeError(w, http.StatusBadRequest, "link id %q is not an integer", r.PathValue("id"))
		return
	}
	if id < 0 || id >= s.top.NumLinks() {
		writeError(w, http.StatusNotFound, "link %d outside universe [0,%d)", id, s.top.NumLinks())
		return
	}
	snap := s.Latest()
	if snap == nil || snap.Result == nil {
		writeError(w, http.StatusServiceUnavailable, "no solver snapshot yet")
		return
	}
	p, exact := snap.Result.LinkCongestProbOrFallback(id)
	writeJSON(w, http.StatusOK, LinkResponse{
		Link:        id,
		Name:        s.top.Links[id].Name,
		CongestProb: p,
		Exact:       exact,
		Epoch:       snap.Epoch,
		WindowT:     snap.T,
		SeqHigh:     snap.SeqHigh,
	})
}

func (s *Server) handleCongestedPaths(w http.ResponseWriter, r *http.Request) {
	threshold := 0.5
	if v := r.URL.Query().Get("min"); v != "" {
		f, err := strconv.ParseFloat(v, 64)
		if err != nil || f < 0 || f > 1 {
			writeError(w, http.StatusBadRequest, "min must be a number in [0,1], got %q", v)
			return
		}
		threshold = f
	}
	snap := s.Latest()
	if snap == nil {
		writeError(w, http.StatusServiceUnavailable, "no solver snapshot yet")
		return
	}
	resp := CongestedPathsResponse{
		Epoch:     snap.Epoch,
		WindowT:   snap.T,
		SeqHigh:   snap.SeqHigh,
		Threshold: threshold,
		Paths:     []CongestedPath{},
	}
	for p := 0; p < s.top.NumPaths(); p++ {
		if f := snap.Window.CongestedFraction(p); f >= threshold {
			resp.Paths = append(resp.Paths, CongestedPath{
				Path:              p,
				Name:              s.top.Paths[p].Name,
				CongestedFraction: f,
			})
		}
	}
	sort.Slice(resp.Paths, func(i, j int) bool {
		if resp.Paths[i].CongestedFraction != resp.Paths[j].CongestedFraction {
			return resp.Paths[i].CongestedFraction > resp.Paths[j].CongestedFraction
		}
		return resp.Paths[i].Path < resp.Paths[j].Path
	})
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	// Load the snapshot before reading the ingest counter: SeqHigh is a
	// past value of the monotone counter, so this order guarantees
	// IngestedSeq ≥ SnapshotSeq and the lag subtraction cannot wrap.
	snap := s.Latest()
	st := StatusResponse{
		IngestedSeq: s.Seq(),
		WindowCap:   s.cfg.WindowSize,
		NumLinks:    s.top.NumLinks(),
		NumPaths:    s.top.NumPaths(),
	}
	if snap != nil {
		st.Epoch = snap.Epoch
		st.SnapshotSeq = snap.SeqHigh
		st.LagIntervals = st.IngestedSeq - snap.SeqHigh
		st.WindowT = snap.T
		st.ComputeMs = float64(snap.ComputeTime.Microseconds()) / 1000
		if snap.Err != nil {
			st.SolverError = snap.Err.Error()
		}
		if res := snap.Result; res != nil {
			st.Rank = res.Rank
			st.Nullity = res.Nullity
			st.Subsets = len(res.Subsets)
			st.ClampedRows = res.ClampedRows
			for _, sub := range res.Subsets {
				if sub.Identifiable {
					st.Identifiable++
				}
			}
		}
	} else {
		st.LagIntervals = st.IngestedSeq
	}
	writeJSON(w, http.StatusOK, st)
}
