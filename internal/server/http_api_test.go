package server

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"

	"repro/internal/estimator"
)

// apiServer builds a server over the small test topology with one
// published epoch.
func apiServer(t *testing.T) (*Server, *Snapshot, http.Handler) {
	t.Helper()
	top := testTopology(t)
	s := newServer(t, top, Config{WindowSize: 200, SolverOpts: solverOpts()})
	t.Cleanup(s.Close)
	ingestSimulated(t, s, top, 200)
	snap := s.Recompute(nil)
	if snap.Err != nil {
		t.Fatal(snap.Err)
	}
	return s, snap, s.Handler()
}

// do serves one request against the handler and returns the status and
// the decoded envelope plus raw body.
func do(t *testing.T, h http.Handler, req *http.Request) (int, Envelope, string) {
	t.Helper()
	rw := httptest.NewRecorder()
	h.ServeHTTP(rw, req)
	var env Envelope
	if err := json.Unmarshal(rw.Body.Bytes(), &env); err != nil {
		t.Fatalf("%s %s: body is not an envelope: %v\n%s", req.Method, req.URL, err, rw.Body.String())
	}
	if env.APIVersion != APIVersion {
		t.Fatalf("%s %s: api_version = %q, want %q", req.Method, req.URL, env.APIVersion, APIVersion)
	}
	return rw.Code, env, strings.TrimSpace(rw.Body.String())
}

func get(t *testing.T, h http.Handler, url string) (int, Envelope, string) {
	t.Helper()
	return do(t, h, httptest.NewRequest(http.MethodGet, url, nil))
}

// decodeData unmarshals the envelope's data payload.
func decodeData(t *testing.T, env Envelope, v any) {
	t.Helper()
	if env.Error != nil {
		t.Fatalf("unexpected error envelope: %+v", env.Error)
	}
	if err := json.Unmarshal(env.Data, v); err != nil {
		t.Fatal(err)
	}
}

// GET /v1/estimators is fully deterministic: golden-compare the whole
// payload (names sorted, default flagged, descriptions present).
func TestEstimatorsEndpointGolden(t *testing.T) {
	_, _, h := apiServer(t)
	code, env, _ := get(t, h, "/v1/estimators")
	if code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	var resp EstimatorsResponse
	decodeData(t, env, &resp)

	wantNames := []string{
		"bayesian-correlation",
		"bayesian-independence",
		"correlation-complete",
		"correlation-complete-sharded",
		"correlation-heuristic",
		"independence",
		"sparsity",
	}
	if len(resp.Estimators) != len(wantNames) {
		t.Fatalf("got %d estimators, want %d", len(resp.Estimators), len(wantNames))
	}
	for i, info := range resp.Estimators {
		if info.Name != wantNames[i] {
			t.Fatalf("estimator %d = %q, want %q", i, info.Name, wantNames[i])
		}
		if info.Description == "" {
			t.Fatalf("%s: empty description", info.Name)
		}
		if info.Default != (info.Name == estimator.CorrelationComplete) {
			t.Fatalf("%s: default = %v", info.Name, info.Default)
		}
	}
}

// GET /v1/subsets and /v1/subsets/{id} answer from the snapshot's
// estimate with stable IDs; good_prob is present exactly for
// identifiable subsets.
func TestSubsetsEndpoint(t *testing.T) {
	_, snap, h := apiServer(t)
	code, env, _ := get(t, h, "/v1/subsets")
	if code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	var resp SubsetsResponse
	decodeData(t, env, &resp)

	est := snap.Est
	if resp.Epoch != snap.Epoch || resp.Algorithm != estimator.CorrelationComplete ||
		resp.Total != len(est.Subsets) || len(resp.Subsets) != len(est.Subsets) {
		t.Fatalf("header fields wrong: %+v", resp)
	}
	identifiable := 0
	for i, sub := range resp.Subsets {
		want := est.Subsets[i]
		if sub.ID != i || sub.CorrSet != want.CorrSet || sub.Identifiable != want.Identifiable {
			t.Fatalf("subset %d diverges from estimate", i)
		}
		if got, wantLinks := len(sub.Links), want.Links.Count(); got != wantLinks {
			t.Fatalf("subset %d: %d links on the wire, %d in the estimate", i, got, wantLinks)
		}
		if want.Identifiable {
			identifiable++
			if sub.GoodProb == nil || *sub.GoodProb != want.GoodProb {
				t.Fatalf("subset %d: good_prob %v, want %v", i, sub.GoodProb, want.GoodProb)
			}
		} else if sub.GoodProb != nil {
			t.Fatalf("subset %d: unidentifiable but good_prob present", i)
		}
	}
	if resp.Identifiable != identifiable {
		t.Fatalf("identifiable = %d, want %d", resp.Identifiable, identifiable)
	}

	// Single-subset lookup matches the list entry.
	code, env, _ = get(t, h, "/v1/subsets/0")
	if code != http.StatusOK {
		t.Fatalf("subset 0: status %d", code)
	}
	var one SubsetResponse
	decodeData(t, env, &one)
	if one.ID != 0 || one.Identifiable != resp.Subsets[0].Identifiable {
		t.Fatalf("subset 0 lookup diverges from list: %+v", one)
	}
}

// ?algo= selects any registered estimator per request, computed over
// the same frozen snapshot window and cached per epoch.
func TestAlgoSelection(t *testing.T) {
	s, snap, h := apiServer(t)
	indep, err := estimator.New(estimator.Independence)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := indep.Estimate(context.Background(), s.Topology(), snap.Window, solverOpts()...)
	if err != nil {
		t.Fatal(err)
	}

	for _, link := range []int{0, 3} {
		code, env, _ := get(t, h, "/v1/links/"+itoa(link)+"?algo=independence")
		if code != http.StatusOK {
			t.Fatalf("status %d", code)
		}
		var lr LinkResponse
		decodeData(t, env, &lr)
		if lr.Algorithm != estimator.Independence {
			t.Fatalf("algorithm = %q", lr.Algorithm)
		}
		wantP, wantX := ref.LinkCongestProb(link)
		if lr.CongestProb != wantP || lr.Exact != wantX {
			t.Fatalf("link %d via ?algo=: (%v,%v), want (%v,%v)", link, lr.CongestProb, lr.Exact, wantP, wantX)
		}
		if lr.Epoch != snap.Epoch {
			t.Fatalf("epoch %d, want %d", lr.Epoch, snap.Epoch)
		}
	}

	// The default (no ?algo=) is the epoch solver.
	code, env, _ := get(t, h, "/v1/links/0")
	if code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	var lr LinkResponse
	decodeData(t, env, &lr)
	if lr.Algorithm != estimator.CorrelationComplete {
		t.Fatalf("default algorithm = %q", lr.Algorithm)
	}

	// Subsets honor ?algo= too: a per-link-only estimator reports none.
	code, env, _ = get(t, h, "/v1/subsets?algo=independence")
	if code != http.StatusOK {
		t.Fatalf("subsets?algo=: status %d", code)
	}
	var sr SubsetsResponse
	decodeData(t, env, &sr)
	if sr.Algorithm != estimator.Independence || sr.Total != 0 {
		t.Fatalf("independence subsets: %+v", sr)
	}
}

// The error envelope carries machine-readable codes: unknown algo, bad
// subset id, and a cancelled per-request solve.
func TestErrorEnvelopeCodes(t *testing.T) {
	_, snap, h := apiServer(t)

	expectError := func(code int, env Envelope, wantStatus int, wantCode string) {
		t.Helper()
		if code != wantStatus {
			t.Fatalf("status %d, want %d", code, wantStatus)
		}
		if env.Error == nil || env.Error.Code != wantCode {
			t.Fatalf("error = %+v, want code %q", env.Error, wantCode)
		}
		if env.Data != nil {
			t.Fatal("error envelope also carries data")
		}
	}

	// Unknown algorithm.
	code, env, _ := get(t, h, "/v1/links/0?algo=nope")
	expectError(code, env, http.StatusBadRequest, CodeUnknownAlgo)
	code, env, _ = get(t, h, "/v1/subsets?algo=nope")
	expectError(code, env, http.StatusBadRequest, CodeUnknownAlgo)

	// Bad subset ids: non-numeric and out of universe. The
	// out-of-universe message is deterministic — golden-compare it.
	code, env, _ = get(t, h, "/v1/subsets/abc")
	expectError(code, env, http.StatusBadRequest, CodeBadRequest)
	code, env, body := get(t, h, "/v1/subsets/99999")
	expectError(code, env, http.StatusNotFound, CodeUnknownSubset)
	wantBody := `{"api_version":"v1","error":{"code":"unknown_subset","message":"subset 99999 outside universe [0,` +
		itoa(len(snap.Est.Subsets)) + `) of epoch 1"}}`
	if body != wantBody {
		t.Fatalf("golden mismatch:\n got: %s\nwant: %s", body, wantBody)
	}

	// Bad link id keeps its own code.
	code, env, _ = get(t, h, "/v1/links/99999")
	expectError(code, env, http.StatusNotFound, CodeUnknownLink)

	// A cancelled per-request solve (the request context is already
	// dead and sparsity is not cached) surfaces as solve_canceled.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	req := httptest.NewRequest(http.MethodGet, "/v1/links/0?algo=sparsity", nil).WithContext(ctx)
	code, env, _ = do(t, h, req)
	expectError(code, env, http.StatusServiceUnavailable, CodeSolveCanceled)

	// No snapshot yet: fresh server, no_snapshot code.
	top := testTopology(t)
	fresh := newServer(t, top, Config{SolverOpts: solverOpts()})
	t.Cleanup(fresh.Close)
	code, env, _ = get(t, fresh.Handler(), "/v1/subsets")
	expectError(code, env, http.StatusServiceUnavailable, CodeNoSnapshot)
}

func itoa(n int) string { return strconv.Itoa(n) }
