package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"strings"
	"time"

	"repro/internal/netsim"
	"repro/internal/topology"
)

// LoadConfig parameterizes a load-generation run: netsim.Model
// intervals simulated over the topology and POSTed at a running server
// in batches.
type LoadConfig struct {
	// Target is the server's base URL, e.g. "http://localhost:9900".
	Target string

	// Intervals is the total number of intervals to simulate and send.
	Intervals int

	// BatchSize is the number of intervals per POST (default 100).
	BatchSize int

	// Seed seeds the simulation; the same seed against the same
	// topology replays the same observation stream.
	Seed int64

	// Sim configures the congestion/loss/probing simulator.
	Sim netsim.Config

	// Client is the HTTP client to use (default http.DefaultClient).
	Client *http.Client
}

// LoadStats summarizes a load-generation run.
type LoadStats struct {
	Intervals int
	Batches   int
	Elapsed   time.Duration
}

// IntervalsPerSec is the achieved ingest throughput.
func (st LoadStats) IntervalsPerSec() float64 {
	if st.Elapsed <= 0 {
		return 0
	}
	return float64(st.Intervals) / st.Elapsed.Seconds()
}

// RunLoadGen simulates cfg.Intervals netsim intervals over the topology
// and drives them at the target server's ingest endpoint in batches.
// The topology must be the same one the server was started with.
func RunLoadGen(ctx context.Context, top *topology.Topology, cfg LoadConfig) (LoadStats, error) {
	if cfg.Intervals <= 0 {
		return LoadStats{}, fmt.Errorf("loadgen: Intervals must be positive")
	}
	if cfg.BatchSize <= 0 {
		cfg.BatchSize = 100
	}
	client := cfg.Client
	if client == nil {
		client = http.DefaultClient
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	model, err := netsim.NewModel(top, cfg.Sim, cfg.Intervals, rng)
	if err != nil {
		return LoadStats{}, fmt.Errorf("loadgen: %w", err)
	}
	url := strings.TrimSuffix(cfg.Target, "/") + "/v1/observations"

	var st LoadStats
	start := time.Now()
	batch := make([]IntervalObs, 0, cfg.BatchSize)
	for t := 0; t < cfg.Intervals; t++ {
		if err := ctx.Err(); err != nil {
			return st, err
		}
		obs := model.Interval(t, rng)
		batch = append(batch, IntervalObs{CongestedPaths: obs.CongestedPaths.Indices()})
		if len(batch) == cfg.BatchSize || t == cfg.Intervals-1 {
			if err := postBatch(ctx, client, url, batch); err != nil {
				return st, err
			}
			st.Intervals += len(batch)
			st.Batches++
			batch = batch[:0]
		}
	}
	st.Elapsed = time.Since(start)
	return st, nil
}

// postBatch sends one ObservationsRequest and checks for a 200.
func postBatch(ctx context.Context, client *http.Client, url string, batch []IntervalObs) error {
	body, err := json.Marshal(ObservationsRequest{Intervals: batch})
	if err != nil {
		return fmt.Errorf("loadgen: encoding batch: %w", err)
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, url, bytes.NewReader(body))
	if err != nil {
		return fmt.Errorf("loadgen: %w", err)
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := client.Do(req)
	if err != nil {
		return fmt.Errorf("loadgen: POST %s: %w", url, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return fmt.Errorf("loadgen: POST %s: %s: %s", url, resp.Status, strings.TrimSpace(string(msg)))
	}
	io.Copy(io.Discard, resp.Body)
	return nil
}
