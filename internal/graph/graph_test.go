package graph

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func line(n int) *Graph {
	g := New(n)
	for i := 0; i+1 < n; i++ {
		g.AddEdge(i, i+1)
	}
	return g
}

func TestAddEdgeAndAccessors(t *testing.T) {
	g := New(3)
	e0 := g.AddEdge(0, 1)
	e1 := g.AddEdge(1, 2)
	if e0 != 0 || e1 != 1 || g.M() != 2 || g.N() != 3 {
		t.Fatalf("ids %d,%d M=%d N=%d", e0, e1, g.M(), g.N())
	}
	if g.Endpoints(1) != [2]int{1, 2} {
		t.Fatalf("Endpoints = %v", g.Endpoints(1))
	}
	if g.Degree(1) != 2 || g.Degree(0) != 1 {
		t.Fatal("degrees wrong")
	}
	if !g.HasEdge(0, 1) || !g.HasEdge(1, 0) || g.HasEdge(0, 2) {
		t.Fatal("HasEdge wrong")
	}
	var seen int
	g.Neighbors(1, func(to, edgeID int) { seen++ })
	if seen != 2 {
		t.Fatalf("Neighbors visited %d", seen)
	}
}

func TestSelfLoopPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(2).AddEdge(1, 1)
}

func TestParallelEdgesAllowed(t *testing.T) {
	g := New(2)
	a := g.AddEdge(0, 1)
	b := g.AddEdge(0, 1)
	if a == b || g.M() != 2 {
		t.Fatal("parallel edges must get distinct IDs")
	}
}

func TestShortestPathLine(t *testing.T) {
	g := line(5)
	vs, es, ok := g.ShortestPath(0, 4)
	if !ok || len(vs) != 5 || len(es) != 4 {
		t.Fatalf("vs=%v es=%v ok=%v", vs, es, ok)
	}
	for i, v := range vs {
		if v != i {
			t.Fatalf("vertex order %v", vs)
		}
	}
	for i, e := range es {
		if e != i {
			t.Fatalf("edge order %v", es)
		}
	}
}

func TestShortestPathTrivialAndUnreachable(t *testing.T) {
	g := New(3)
	g.AddEdge(0, 1)
	vs, es, ok := g.ShortestPath(1, 1)
	if !ok || len(vs) != 1 || len(es) != 0 {
		t.Fatal("self path wrong")
	}
	if _, _, ok := g.ShortestPath(0, 2); ok {
		t.Fatal("vertex 2 should be unreachable")
	}
}

func TestConnected(t *testing.T) {
	if !line(4).Connected() {
		t.Fatal("line should be connected")
	}
	g := New(4)
	g.AddEdge(0, 1)
	if g.Connected() {
		t.Fatal("disconnected graph reported connected")
	}
	if !New(0).Connected() || !New(1).Connected() {
		t.Fatal("trivial graphs should be connected")
	}
}

// Property: on a random connected graph, BFS path length equals the
// randomized-BFS path length (both are shortest), and consecutive path
// edges are incident to consecutive vertices.
func TestQuickShortestPathProperties(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(20)
		g := New(n)
		// Random spanning tree guarantees connectivity.
		for v := 1; v < n; v++ {
			g.AddEdge(rng.Intn(v), v)
		}
		for k := 0; k < n; k++ {
			u, v := rng.Intn(n), rng.Intn(n)
			if u != v {
				g.AddEdge(u, v)
			}
		}
		src, dst := rng.Intn(n), rng.Intn(n)
		vs, es, ok := g.ShortestPath(src, dst)
		if !ok {
			return false
		}
		if len(vs) != len(es)+1 || vs[0] != src || vs[len(vs)-1] != dst {
			return false
		}
		for i, e := range es {
			ep := g.Endpoints(e)
			if !(ep[0] == vs[i] && ep[1] == vs[i+1] || ep[1] == vs[i] && ep[0] == vs[i+1]) {
				return false
			}
		}
		_, es2, ok2 := g.RandomizedShortestPath(src, dst, rng)
		return ok2 && len(es2) == len(es)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
