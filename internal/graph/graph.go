// Package graph provides the small undirected-multigraph substrate used
// by the topology generators: adjacency with stable edge IDs, BFS
// shortest paths, and connectivity checks.
package graph

import (
	"fmt"
	"math/rand"
)

// halfEdge is one direction of an undirected edge.
type halfEdge struct {
	to   int
	edge int
}

// Graph is an undirected multigraph over vertices 0..N-1. Edges carry
// dense integer IDs in insertion order.
type Graph struct {
	n     int
	adj   [][]halfEdge
	edges [][2]int
}

// New returns an empty graph with n vertices.
func New(n int) *Graph {
	if n < 0 {
		panic("graph: negative vertex count")
	}
	return &Graph{n: n, adj: make([][]halfEdge, n)}
}

// N returns the number of vertices.
func (g *Graph) N() int { return g.n }

// M returns the number of edges.
func (g *Graph) M() int { return len(g.edges) }

// AddEdge inserts an undirected edge {u, v} and returns its ID.
// Self-loops are rejected; parallel edges are allowed (they model
// parallel peering links).
func (g *Graph) AddEdge(u, v int) int {
	if u == v {
		panic("graph: self-loop")
	}
	if u < 0 || u >= g.n || v < 0 || v >= g.n {
		panic(fmt.Sprintf("graph: edge (%d,%d) out of range [0,%d)", u, v, g.n))
	}
	id := len(g.edges)
	g.edges = append(g.edges, [2]int{u, v})
	g.adj[u] = append(g.adj[u], halfEdge{to: v, edge: id})
	g.adj[v] = append(g.adj[v], halfEdge{to: u, edge: id})
	return id
}

// HasEdge reports whether at least one edge connects u and v.
func (g *Graph) HasEdge(u, v int) bool {
	if len(g.adj[v]) < len(g.adj[u]) {
		u, v = v, u
	}
	for _, he := range g.adj[u] {
		if he.to == v {
			return true
		}
	}
	return false
}

// Endpoints returns the two endpoints of edge id.
func (g *Graph) Endpoints(id int) [2]int { return g.edges[id] }

// Degree returns the number of incident edges of v.
func (g *Graph) Degree(v int) int { return len(g.adj[v]) }

// Neighbors calls fn for each incident half-edge of v.
func (g *Graph) Neighbors(v int, fn func(to, edgeID int)) {
	for _, he := range g.adj[v] {
		fn(he.to, he.edge)
	}
}

// ShortestPath returns the vertices and edge IDs of an unweighted
// shortest path from src to dst (BFS). ok is false if dst is
// unreachable. A path from a vertex to itself is ([]int{src}, nil,
// true).
func (g *Graph) ShortestPath(src, dst int) (vertices, edgeIDs []int, ok bool) {
	if src == dst {
		return []int{src}, nil, true
	}
	prevV := make([]int, g.n)
	prevE := make([]int, g.n)
	for i := range prevV {
		prevV[i] = -1
	}
	prevV[src] = src
	queue := []int{src}
	for len(queue) > 0 && prevV[dst] == -1 {
		v := queue[0]
		queue = queue[1:]
		for _, he := range g.adj[v] {
			if prevV[he.to] == -1 {
				prevV[he.to] = v
				prevE[he.to] = he.edge
				queue = append(queue, he.to)
			}
		}
	}
	if prevV[dst] == -1 {
		return nil, nil, false
	}
	for v := dst; v != src; v = prevV[v] {
		vertices = append(vertices, v)
		edgeIDs = append(edgeIDs, prevE[v])
	}
	vertices = append(vertices, src)
	reverseInts(vertices)
	reverseInts(edgeIDs)
	return vertices, edgeIDs, true
}

// RandomizedShortestPath is ShortestPath with neighbor order shuffled
// per call, so equal-length shortest paths are sampled (this models
// load balancing across ECMP paths in the traceroute synthesizer).
func (g *Graph) RandomizedShortestPath(src, dst int, rng *rand.Rand) (vertices, edgeIDs []int, ok bool) {
	if src == dst {
		return []int{src}, nil, true
	}
	prevV := make([]int, g.n)
	prevE := make([]int, g.n)
	for i := range prevV {
		prevV[i] = -1
	}
	prevV[src] = src
	queue := []int{src}
	scratch := make([]halfEdge, 0, 16)
	for len(queue) > 0 && prevV[dst] == -1 {
		v := queue[0]
		queue = queue[1:]
		scratch = append(scratch[:0], g.adj[v]...)
		rng.Shuffle(len(scratch), func(i, j int) { scratch[i], scratch[j] = scratch[j], scratch[i] })
		for _, he := range scratch {
			if prevV[he.to] == -1 {
				prevV[he.to] = v
				prevE[he.to] = he.edge
				queue = append(queue, he.to)
			}
		}
	}
	if prevV[dst] == -1 {
		return nil, nil, false
	}
	for v := dst; v != src; v = prevV[v] {
		vertices = append(vertices, v)
		edgeIDs = append(edgeIDs, prevE[v])
	}
	vertices = append(vertices, src)
	reverseInts(vertices)
	reverseInts(edgeIDs)
	return vertices, edgeIDs, true
}

// Connected reports whether the graph is connected (true for the empty
// and single-vertex graph).
func (g *Graph) Connected() bool {
	if g.n <= 1 {
		return true
	}
	seen := make([]bool, g.n)
	seen[0] = true
	queue := []int{0}
	count := 1
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for _, he := range g.adj[v] {
			if !seen[he.to] {
				seen[he.to] = true
				count++
				queue = append(queue, he.to)
			}
		}
	}
	return count == g.n
}

func reverseInts(s []int) {
	for i, j := 0, len(s)-1; i < j; i, j = i+1, j-1 {
		s[i], s[j] = s[j], s[i]
	}
}
