// Package cluster distributes the streaming tomography service across
// processes along the correlation-set partition seam: a coordinator
// owns the public /v1/* surface and the full ingest window, workers own
// disjoint sets of partition shards (their rings, warm structural
// plans, and per-shard WALs), and the two sides speak a small versioned
// JSON-over-HTTP wire format. The block-diagonal structure makes the
// distribution exact: each shard's solve reads only its own paths, so
// the coordinator's scatter-gather merge (core.MergeResults) is
// bit-identical to a single-process sharded solve over the same
// intervals.
//
// Wire contract (version "c1"; all responses wrapped in an envelope
// carrying the version and exactly one of data/error):
//
//   - POST /c1/assign        — shard placement: topology fingerprint,
//     window size, solver settings, shard list. Idempotent; replies
//     with each shard's recovered (WAL-replayed) sequence.
//   - POST /c1/ingest        — batched ingest to every assigned shard,
//     keyed by the coordinator's pre-batch sequence; workers skip the
//     already-applied prefix (retry dedupe) and reject gaps.
//   - POST /c1/shards/{k}/ingest — per-shard catch-up replay of rows a
//     rejoining worker missed; same dedupe/gap semantics, one shard.
//   - POST /c1/shards/{k}/reset  — discard the shard's ring and WAL and
//     fast-forward to a base sequence (worker fell behind the
//     coordinator's retained window, or ran ahead of a recovered
//     coordinator).
//   - GET  /c1/shards/{k}/result — the shard's solved block at the
//     worker's current sequence (solved on demand, warm plans, cached
//     until the ring advances).
//   - GET  /c1/status        — worker identity, fingerprint, per-shard
//     sequences.
//
// Failure semantics: the coordinator health-checks each worker and
// latches it unreachable on any RPC failure; while any shard is
// unreachable, ingest answers 503 shard_unavailable (nothing is ever
// half-applied: the fan-out precedes the coordinator's local apply, and
// workers deduplicate retried batches by base sequence) and queries
// keep serving the last merged snapshot. A restarted worker replays its
// per-shard WALs, reports its recovered sequences, and the health loop
// replays the missed suffix from the coordinator's window — or resets
// the shard when the gap has left the retained window.
package cluster

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"

	"repro/internal/bitset"
	"repro/internal/core"
	"repro/internal/estimator"
	"repro/internal/topology"
)

// WireVersion tags every internal-API response envelope; both sides
// reject versions they do not understand.
const WireVersion = "c1"

// maxRPCBody bounds one internal-API body on both sides (decode and
// reply), mirroring the public API's ingest bound.
const maxRPCBody = 64 << 20

// Machine-readable error codes of the cluster wire format. Like the
// public API, peers dispatch on Code, never on Message.
const (
	CodeWireVersion       = "wire_version"       // peer speaks an unknown wire version
	CodeTopologyMismatch  = "topology_mismatch"  // fingerprints disagree: the fleet is not monitoring one topology
	CodeNotAssigned       = "not_assigned"       // RPC before a successful /c1/assign
	CodeUnknownShard      = "unknown_shard"      // shard index not assigned to this worker
	CodeSeqGap            = "seq_gap"            // ingest base is ahead of the worker (missed batches); carries per-shard seqs
	CodeAssignmentChanged = "assignment_changed" // assign conflicts with live state; restart the worker to re-place
	CodeBadRequest        = "bad_request"        // malformed body or path
	CodeNotSolved         = "not_solved"         // result requested from an empty shard (nothing ingested yet)
	CodeSolverFailed      = "solver_failed"      // the shard solve returned an error
	CodeWALUnavailable    = "wal_unavailable"    // the shard WAL cannot accept the batch
)

// WireError is the error payload of the internal API; it implements
// error so clients can errors.As straight out of an RPC call.
type WireError struct {
	Code    string `json:"code"`
	Message string `json:"message"`
	// Shards carries the worker's per-shard sequences on seq_gap, so
	// the coordinator can see exactly how far behind the worker is.
	Shards []ShardSeq `json:"shards,omitempty"`
}

func (e *WireError) Error() string { return fmt.Sprintf("cluster: %s: %s", e.Code, e.Message) }

// envelope wraps every internal-API response.
type envelope struct {
	WireVersion string          `json:"wire_version"`
	Data        json.RawMessage `json:"data,omitempty"`
	Error       *WireError      `json:"error,omitempty"`
}

// ShardSeq is one shard's ingest sequence, the unit of ack and catch-up
// bookkeeping.
type ShardSeq struct {
	Shard int    `json:"shard"`
	Seq   uint64 `json:"seq"`
}

// AssignRequest is POST /c1/assign: the coordinator places a set of
// partition shards on a worker. The fingerprint pins both sides to the
// same topology (and therefore the same partition, which both compute
// locally and never ship); the solver settings make worker solves
// bit-identical to what the coordinator would compute itself.
type AssignRequest struct {
	Fingerprint string             `json:"topology_fingerprint"`
	WorkerID    string             `json:"worker_id"`
	Shards      []int              `json:"shards"`
	WindowSize  int                `json:"window_size"`
	Solver      estimator.Settings `json:"solver"`
}

// AssignResponse acknowledges placement with each shard's current
// (possibly WAL-recovered) sequence, from which the coordinator plans
// catch-up.
type AssignResponse struct {
	WorkerID string     `json:"worker_id"`
	Shards   []ShardSeq `json:"shards"`
}

// IngestRequest is POST /c1/ingest (all assigned shards) and
// POST /c1/shards/{k}/ingest (one shard): a batch of intervals, each
// the congested path IDs in full-universe indexing, based at the
// sender's pre-batch sequence. A receiver whose shard is already past
// BaseSeq skips the overlap (idempotent retries); one that is behind it
// answers seq_gap and applies nothing.
type IngestRequest struct {
	BaseSeq   uint64  `json:"base_seq"`
	Intervals [][]int `json:"intervals"`
}

// IngestResponse acks the batch with the per-shard sequences after it.
type IngestResponse struct {
	Shards []ShardSeq `json:"shards"`
}

// ResetRequest is POST /c1/shards/{k}/reset: discard the shard's ring
// and WAL and fast-forward the empty state to Seq. Used when a worker's
// recovered sequence falls outside what the coordinator can replay.
type ResetRequest struct {
	Seq uint64 `json:"seq"`
}

// ResetResponse acknowledges the reset.
type ResetResponse struct {
	Shard int    `json:"shard"`
	Seq   uint64 `json:"seq"`
}

// WireSubset is one correlation subset of a shard's solved block.
// GoodProb is omitted (not NaN, which JSON cannot carry) when the
// subset is unidentifiable; links are full-universe IDs. encoding/json
// round-trips float64 exactly (shortest-representation encoding), so a
// decoded block is bit-identical to the worker's.
type WireSubset struct {
	Links        []int    `json:"links"`
	CorrSet      int      `json:"corr_set"`
	GoodProb     *float64 `json:"good_prob,omitempty"`
	Identifiable bool     `json:"identifiable"`
}

// ShardResultResponse is GET /c1/shards/{k}/result: the shard's solved
// block — the exported fields core.MergeResults reads — plus the
// sequence it was solved at and how the worker's warm plan served.
type ShardResultResponse struct {
	Shard           int    `json:"shard"`
	SeqHigh         uint64 `json:"seq_high"`
	T               int    `json:"t"`
	Warm            bool   `json:"warm"`
	Repaired        bool   `json:"repaired"`
	RepairedNumeric bool   `json:"repaired_numeric,omitempty"`
	RepairFailed    bool   `json:"repair_failed,omitempty"`
	BuildNs         int64  `json:"build_ns,omitempty"`
	RepairNs        int64  `json:"repair_ns,omitempty"`
	SolveNs         int64  `json:"solve_ns,omitempty"`

	Subsets     []WireSubset `json:"subsets"`
	PathSets    [][]int      `json:"path_sets"`
	Rank        int          `json:"rank"`
	Nullity     int          `json:"nullity"`
	ClampedRows int          `json:"clamped_rows"`
}

// WorkerStatusResponse is GET /c1/status on a worker.
type WorkerStatusResponse struct {
	WorkerID    string     `json:"worker_id"`
	Fingerprint string     `json:"topology_fingerprint"`
	WindowSize  int        `json:"window_size"`
	Shards      []ShardSeq `json:"shards"`
}

// Fingerprint identifies a topology on the wire: the hash of its
// canonical JSON serialization. Both sides compute their partition from
// the topology locally, so agreeing on the fingerprint means agreeing
// on the shard universe.
func Fingerprint(top *topology.Topology) string {
	h := sha256.New()
	if err := top.WriteJSON(h); err != nil {
		// WriteJSON to a hash cannot fail short of a marshal bug; make
		// that loud rather than fingerprint-collide.
		panic(fmt.Sprintf("cluster: fingerprinting topology: %v", err))
	}
	return hex.EncodeToString(h.Sum(nil))
}

// encodeResult flattens a shard's solved block for the wire.
func encodeResult(shard int, seqHigh uint64, t int, res *core.Result, info estimator.SolveInfo) *ShardResultResponse {
	out := &ShardResultResponse{
		Shard:           shard,
		SeqHigh:         seqHigh,
		T:               t,
		Warm:            info.Warm,
		Repaired:        info.Repaired,
		RepairedNumeric: info.RepairedNumeric,
		RepairFailed:    info.RepairFailed,
		BuildNs:         info.BuildTime.Nanoseconds(),
		RepairNs:        info.RepairTime.Nanoseconds(),
		SolveNs:         info.SolveTime.Nanoseconds(),
		Subsets:         make([]WireSubset, len(res.Subsets)),
		PathSets:        make([][]int, len(res.PathSets)),
		Rank:            res.Rank,
		Nullity:         res.Nullity,
		ClampedRows:     res.ClampedRows,
	}
	for i, sub := range res.Subsets {
		ws := WireSubset{
			Links:        sub.Links.Indices(),
			CorrSet:      sub.CorrSet,
			Identifiable: sub.Identifiable,
		}
		if !math.IsNaN(sub.GoodProb) {
			g := sub.GoodProb
			ws.GoodProb = &g
		}
		out.Subsets[i] = ws
	}
	for i, ps := range res.PathSets {
		out.PathSets[i] = ps.Indices()
	}
	return out
}

// decodeResult reconstructs the block over the given universe sizes.
// Unidentifiable subsets get their NaN back.
func (r *ShardResultResponse) decodeResult(numPaths, numLinks int) *core.Result {
	subsets := make([]core.SubsetResult, len(r.Subsets))
	for i, ws := range r.Subsets {
		g := math.NaN()
		if ws.GoodProb != nil {
			g = *ws.GoodProb
		}
		subsets[i] = core.SubsetResult{
			Links:        bitset.FromIndices(numLinks, ws.Links...),
			CorrSet:      ws.CorrSet,
			GoodProb:     g,
			Identifiable: ws.Identifiable,
		}
	}
	pathSets := make([]*bitset.Set, len(r.PathSets))
	for i, ps := range r.PathSets {
		pathSets[i] = bitset.FromIndices(numPaths, ps...)
	}
	return core.NewShardResult(subsets, pathSets, r.Rank, r.Nullity, r.ClampedRows)
}

// intervalsOf flattens a batch of congested-path sets into wire
// intervals.
func intervalsOf(batch []*bitset.Set) [][]int {
	out := make([][]int, len(batch))
	for i, set := range batch {
		out[i] = set.Indices()
	}
	return out
}

// client is one peer's view of a worker's internal API.
type client struct {
	base string // e.g. "http://127.0.0.1:9101"
	hc   *http.Client
}

// do performs one RPC: marshal in (nil means no body), decode the
// envelope, enforce the wire version, and unmarshal data into out (nil
// means discard). Application errors come back as *WireError; transport
// errors as whatever the HTTP client produced.
func (c *client) do(ctx context.Context, method, path string, in, out any) error {
	var body io.Reader
	if in != nil {
		raw, err := json.Marshal(in)
		if err != nil {
			return fmt.Errorf("cluster: encoding %s %s: %w", method, path, err)
		}
		body = bytes.NewReader(raw)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.base+path, body)
	if err != nil {
		return err
	}
	if in != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	var env envelope
	if err := json.NewDecoder(io.LimitReader(resp.Body, maxRPCBody)).Decode(&env); err != nil {
		return fmt.Errorf("cluster: decoding %s %s (HTTP %d): %w", method, path, resp.StatusCode, err)
	}
	if env.WireVersion != WireVersion {
		return &WireError{Code: CodeWireVersion,
			Message: fmt.Sprintf("peer speaks wire version %q, this build speaks %q", env.WireVersion, WireVersion)}
	}
	if env.Error != nil {
		return env.Error
	}
	if out != nil {
		if err := json.Unmarshal(env.Data, out); err != nil {
			return fmt.Errorf("cluster: decoding %s %s data: %w", method, path, err)
		}
	}
	return nil
}

// writeWire wraps v in the versioned envelope.
func writeWire(w http.ResponseWriter, status int, v any) {
	raw, err := json.Marshal(v)
	if err != nil {
		writeWireError(w, http.StatusInternalServerError,
			&WireError{Code: CodeBadRequest, Message: fmt.Sprintf("encoding response: %v", err)})
		return
	}
	writeWireEnvelope(w, status, envelope{WireVersion: WireVersion, Data: raw})
}

// writeWireError wraps a wire error in the versioned envelope.
func writeWireError(w http.ResponseWriter, status int, e *WireError) {
	writeWireEnvelope(w, status, envelope{WireVersion: WireVersion, Error: e})
}

func writeWireEnvelope(w http.ResponseWriter, status int, env envelope) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(env)
}

// settingsOptions turns resolved Settings back into an option list, so
// a worker reconstructs exactly the solver configuration the
// coordinator resolved (Apply over defaults is the identity for a
// resolved set).
func settingsOptions(st estimator.Settings) []estimator.Option {
	return []estimator.Option{
		estimator.WithMaxSubsetSize(st.MaxSubsetSize),
		estimator.WithAlwaysGoodTol(st.AlwaysGoodTol),
		estimator.WithMaxEnumPathSets(st.MaxEnumPathSets),
		estimator.WithConcurrency(st.Concurrency),
		estimator.WithPairsPerLink(st.PairsPerLink),
		estimator.WithGlobalPairs(st.GlobalPairs),
		estimator.WithSweeps(st.Sweeps),
		estimator.WithSeed(st.Seed),
		estimator.WithPlanRepair(!st.DisablePlanRepair),
		estimator.WithNumericalPlanRepair(st.NumericalPlanRepair),
		estimator.WithNumericalRepairMaxFrac(st.NumericalRepairMaxFrac),
	}
}
