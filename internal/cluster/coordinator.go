package cluster

import (
	"context"
	"errors"
	"fmt"
	"log/slog"
	"net/http"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/bitset"
	"repro/internal/core"
	"repro/internal/estimator"
	"repro/internal/observe"
	"repro/internal/server"
	"repro/internal/stream"
	"repro/internal/topology"
)

// Worker lifecycle states as the coordinator sees them.
const (
	stateConnecting  = "connecting"  // never yet assigned (fresh coordinator)
	stateHealthy     = "healthy"     // assigned and caught up; serving
	stateUnreachable = "unreachable" // an RPC failed; latched until rejoin succeeds
	stateRejoining   = "rejoining"   // assign + catch-up handshake in progress
)

// WorkerSpec names one worker process of the fleet.
type WorkerSpec struct {
	// ID is the placement identity sent with /c1/assign; empty defaults
	// to "w<index>" in peer order.
	ID string
	// Addr is the worker's internal API base URL, e.g.
	// "http://127.0.0.1:9101".
	Addr string
}

// CoordinatorConfig parameterizes the coordinator backend.
type CoordinatorConfig struct {
	// Topology is the monitored topology; workers must be running the
	// same one (checked by fingerprint on every assignment and probe).
	Topology *topology.Topology

	// Workers is the fleet. Shard k is placed on Workers[k mod len]:
	// deterministic, so a restarted coordinator re-derives the same
	// placement its workers' WALs were written under.
	Workers []WorkerSpec

	// WindowSize is the sliding window capacity, which workers must
	// share so sequence arithmetic and eviction agree fleet-wide.
	WindowSize int

	// SolverOpts configure the per-shard solves; the resolved settings
	// ship with each assignment so worker solves are bit-identical to a
	// local solve under the same options.
	SolverOpts []estimator.Option

	// Logger receives coordinator log events; nil means slog.Default().
	Logger *slog.Logger

	// RPCTimeout bounds each RPC attempt (default 5s).
	RPCTimeout time.Duration
	// HealthEvery is the per-worker probe/rejoin cadence (default 1s).
	HealthEvery time.Duration
	// Retries is how many extra attempts a failed RPC gets before the
	// worker is declared unreachable (default 2; application errors are
	// never retried).
	Retries int
	// RetryBackoff is the pause between attempts (default 100ms).
	RetryBackoff time.Duration
}

// workerHandle is the coordinator's live state for one worker.
type workerHandle struct {
	id     string
	addr   string
	shards []int // owned shards, ascending
	client *client

	mu      sync.Mutex
	state   string
	seq     uint64 // last acked ingest sequence
	lastErr string
}

func (h *workerHandle) getState() string {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.state
}

func (h *workerHandle) setSeq(seq uint64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if seq > h.seq {
		h.seq = seq
	}
}

// Coordinator is the cluster ShardBackend: it fans ingest batches out to
// the workers owning each shard, fetches per-shard solved blocks and
// merges them locally, health-checks the fleet, and replays missed
// intervals to rejoining workers from the server's retained window. It
// plugs into server.Config.Backend and additionally implements
// server.BatchForwarder, server.BackendLifecycle, and
// server.ClusterReporter.
type Coordinator struct {
	top      *topology.Topology
	fp       string
	sv       *estimator.ShardedSolver // local partition arithmetic + merge; never solves
	settings estimator.Settings
	window   int
	logger   *slog.Logger

	rpcTimeout  time.Duration
	healthEvery time.Duration
	retries     int
	backoff     time.Duration

	workers []*workerHandle
	owner   []*workerHandle // shard index → owning worker

	src       server.ShardSource // live window; set by Start
	stop      chan struct{}
	wg        sync.WaitGroup
	startOnce sync.Once
	closeOnce sync.Once
}

var _ server.ShardBackend = (*Coordinator)(nil)
var _ server.BatchForwarder = (*Coordinator)(nil)
var _ server.BackendLifecycle = (*Coordinator)(nil)
var _ server.ClusterReporter = (*Coordinator)(nil)

// NewCoordinator validates the fleet spec and derives the placement. No
// RPCs happen here: every worker starts out connecting, and the health
// loops started by Start (via server.Start) perform the first
// assignment — ingest answers 503 shard_unavailable until the fleet is
// healthy.
func NewCoordinator(cfg CoordinatorConfig) (*Coordinator, error) {
	if cfg.Topology == nil {
		return nil, errors.New("cluster: coordinator requires a topology")
	}
	if len(cfg.Workers) == 0 {
		return nil, errors.New("cluster: coordinator requires at least one worker")
	}
	if cfg.WindowSize <= 0 {
		return nil, fmt.Errorf("cluster: window size %d must be positive", cfg.WindowSize)
	}
	settings, err := estimator.Apply(cfg.SolverOpts...)
	if err != nil {
		return nil, err
	}
	sv, err := estimator.NewShardedSolver(cfg.Topology, cfg.SolverOpts...)
	if err != nil {
		return nil, err
	}
	logger := cfg.Logger
	if logger == nil {
		logger = slog.Default()
	}
	c := &Coordinator{
		top:         cfg.Topology,
		fp:          Fingerprint(cfg.Topology),
		sv:          sv,
		settings:    settings,
		window:      cfg.WindowSize,
		logger:      logger,
		rpcTimeout:  cfg.RPCTimeout,
		healthEvery: cfg.HealthEvery,
		retries:     cfg.Retries,
		backoff:     cfg.RetryBackoff,
		stop:        make(chan struct{}),
	}
	if c.rpcTimeout <= 0 {
		c.rpcTimeout = 5 * time.Second
	}
	if c.healthEvery <= 0 {
		c.healthEvery = time.Second
	}
	if c.retries < 0 {
		c.retries = 0
	} else if cfg.Retries == 0 {
		c.retries = 2
	}
	if c.backoff <= 0 {
		c.backoff = 100 * time.Millisecond
	}
	for i, spec := range cfg.Workers {
		id := spec.ID
		if id == "" {
			id = fmt.Sprintf("w%d", i)
		}
		if spec.Addr == "" {
			return nil, fmt.Errorf("cluster: worker %s has no address", id)
		}
		c.workers = append(c.workers, &workerHandle{
			id:     id,
			addr:   spec.Addr,
			client: &client{base: strings.TrimRight(spec.Addr, "/"), hc: &http.Client{}},
			state:  stateConnecting,
		})
	}
	c.owner = make([]*workerHandle, c.sv.NumShards())
	for k := range c.owner {
		h := c.workers[k%len(c.workers)]
		c.owner[k] = h
		h.shards = append(h.shards, k)
	}
	for _, h := range c.workers {
		metricShardsAssigned.With(h.id).Set(int64(len(h.shards)))
	}
	c.updateFleetGauges()
	return c, nil
}

// NumShards implements server.ShardBackend.
func (c *Coordinator) NumShards() int { return c.sv.NumShards() }

// PathShards implements server.ShardBackend.
func (c *Coordinator) PathShards() []int { return c.sv.Partition().PathShards() }

// ShardSize implements server.ShardBackend.
func (c *Coordinator) ShardSize(shard int) (paths, links int) { return c.sv.ShardSize(shard) }

// Merge implements server.ShardBackend: reassembly is local — the
// blocks were fetched over the wire, but gluing them is pure
// arithmetic over the coordinator's own window.
func (c *Coordinator) Merge(results []*core.Result, obs observe.Store) *estimator.Estimate {
	return c.sv.Merge(results, obs)
}

// Start implements server.BackendLifecycle: remember the live window
// (the catch-up replay source) and start one health loop per worker.
func (c *Coordinator) Start(src server.ShardSource) {
	c.startOnce.Do(func() {
		c.src = src
		for _, h := range c.workers {
			c.wg.Add(1)
			go c.healthLoop(h)
		}
	})
}

// Close implements server.BackendLifecycle.
func (c *Coordinator) Close() {
	c.closeOnce.Do(func() {
		close(c.stop)
		c.wg.Wait()
	})
}

// ClusterStatus implements server.ClusterReporter.
func (c *Coordinator) ClusterStatus() *server.ClusterStatus {
	st := &server.ClusterStatus{Role: "coordinator"}
	for _, h := range c.workers {
		h.mu.Lock()
		ws := server.WorkerState{
			ID:        h.id,
			Addr:      h.addr,
			Shards:    h.shards,
			State:     h.state,
			SeqHigh:   h.seq,
			LastError: h.lastErr,
		}
		h.mu.Unlock()
		st.Workers = append(st.Workers, ws)
		if ws.State != stateHealthy {
			st.UnreachableShards = append(st.UnreachableShards, h.shards...)
		}
	}
	sort.Ints(st.UnreachableShards)
	return st
}

// Forward implements server.BatchForwarder: replicate one ingest batch
// to every worker before the coordinator applies it locally. Any
// non-healthy worker fails the whole batch up front — the public API
// answers 503 and the window does not advance, which is what keeps
// catch-up replay race-free. A mid-flight failure can leave some
// workers with the batch applied and others without; the base sequence
// makes the client's retry exact (appliers skip, the rest apply).
func (c *Coordinator) Forward(baseSeq uint64, batch []*bitset.Set) error {
	for _, h := range c.workers {
		if len(h.shards) == 0 {
			continue
		}
		if st := h.getState(); st != stateHealthy {
			return fmt.Errorf("%w: worker %s is %s", server.ErrShardUnavailable, h.id, st)
		}
	}
	req := &IngestRequest{BaseSeq: baseSeq, Intervals: intervalsOf(batch)}
	start := time.Now()
	errCh := make(chan error, len(c.workers))
	n := 0
	for _, h := range c.workers {
		if len(h.shards) == 0 {
			continue
		}
		n++
		go func(h *workerHandle) {
			var resp IngestResponse
			if err := c.rpc(context.Background(), h, "ingest", http.MethodPost, "/c1/ingest", req, &resp); err != nil {
				c.markUnreachable(h, err)
				errCh <- fmt.Errorf("%w: worker %s: %v", server.ErrShardUnavailable, h.id, err)
				return
			}
			h.setSeq(baseSeq + uint64(len(batch)))
			errCh <- nil
		}(h)
	}
	var firstErr error
	for i := 0; i < n; i++ {
		if err := <-errCh; err != nil && firstErr == nil {
			firstErr = err
		}
	}
	if firstErr == nil {
		metricFanout.Observe(time.Since(start).Seconds())
	}
	return firstErr
}

// SolveShard implements server.ShardBackend: fetch the shard's block
// from its owner. The ring argument is ignored — the worker solves its
// own replica, which the ingest protocol keeps bit-identical to the
// coordinator's rows for that shard.
func (c *Coordinator) SolveShard(ctx context.Context, shard int, _ *stream.Window) (server.ShardSolve, error) {
	h := c.owner[shard]
	if st := h.getState(); st != stateHealthy {
		return server.ShardSolve{}, fmt.Errorf("%w: shard %d owner %s is %s", server.ErrShardUnavailable, shard, h.id, st)
	}
	var resp ShardResultResponse
	err := c.rpc(ctx, h, "result", http.MethodGet, fmt.Sprintf("/c1/shards/%d/result", shard), nil, &resp)
	if err != nil {
		// A solver failure means the worker is alive and the shard
		// genuinely failed; anything else (transport, not_assigned
		// after a restart, unknown_shard) means the replica cannot
		// serve and the health loop must repair it.
		var we *WireError
		if !errors.As(err, &we) || we.Code != CodeSolverFailed {
			c.markUnreachable(h, err)
		}
		return server.ShardSolve{}, fmt.Errorf("%w: shard %d: %v", server.ErrShardUnavailable, shard, err)
	}
	if resp.Shard != shard {
		err := fmt.Errorf("worker %s answered for shard %d, wanted %d", h.id, resp.Shard, shard)
		c.markUnreachable(h, err)
		return server.ShardSolve{}, fmt.Errorf("%w: %v", server.ErrShardUnavailable, err)
	}
	return server.ShardSolve{
		Res:     resp.decodeResult(c.top.NumPaths(), c.top.NumLinks()),
		SeqHigh: resp.SeqHigh,
		T:       resp.T,
		Info: estimator.SolveInfo{
			Warm:            resp.Warm,
			Repaired:        resp.Repaired,
			RepairedNumeric: resp.RepairedNumeric,
			RepairFailed:    resp.RepairFailed,
			BuildTime:       time.Duration(resp.BuildNs),
			RepairTime:      time.Duration(resp.RepairNs),
			SolveTime:       time.Duration(resp.SolveNs),
		},
	}, nil
}

// healthLoop drives one worker: an immediate first assignment, then a
// probe (healthy) or rejoin attempt (anything else) per tick.
func (c *Coordinator) healthLoop(h *workerHandle) {
	defer c.wg.Done()
	ticker := time.NewTicker(c.healthEvery)
	defer ticker.Stop()
	c.checkWorker(h)
	for {
		select {
		case <-c.stop:
			return
		case <-ticker.C:
			c.checkWorker(h)
		}
	}
}

func (c *Coordinator) checkWorker(h *workerHandle) {
	if h.getState() != stateHealthy {
		c.rejoin(h)
		return
	}
	var st WorkerStatusResponse
	if err := c.rpc(context.Background(), h, "status", http.MethodGet, "/c1/status", nil, &st); err != nil {
		c.markUnreachable(h, err)
		return
	}
	if st.Fingerprint != c.fp {
		c.markUnreachable(h, fmt.Errorf("worker %s monitors a different topology (fingerprint %.12s…, want %.12s…)", h.id, st.Fingerprint, c.fp))
	}
}

// rejoin runs the (re)placement handshake: assign (idempotent), then
// per-shard catch-up replay from the coordinator's retained window.
// While it runs the worker is not healthy, so Forward rejects every
// batch and the window cannot advance under the replay — catch-up is
// exact, not chasing a moving target.
func (c *Coordinator) rejoin(h *workerHandle) {
	h.mu.Lock()
	h.state = stateRejoining
	h.mu.Unlock()
	c.updateFleetGauges()
	req := &AssignRequest{
		Fingerprint: c.fp,
		WorkerID:    h.id,
		Shards:      h.shards,
		WindowSize:  c.window,
		Solver:      c.settings,
	}
	var resp AssignResponse
	if err := c.rpc(context.Background(), h, "assign", http.MethodPost, "/c1/assign", req, &resp); err != nil {
		c.markUnreachable(h, err)
		return
	}
	seqs := make(map[int]uint64, len(resp.Shards))
	for _, ss := range resp.Shards {
		seqs[ss.Shard] = ss.Seq
	}
	for _, k := range h.shards {
		wseq, ok := seqs[k]
		if !ok {
			c.markUnreachable(h, fmt.Errorf("assign ack from %s is missing shard %d", h.id, k))
			return
		}
		if err := c.catchUpShard(h, k, wseq); err != nil {
			c.markUnreachable(h, err)
			return
		}
	}
	h.mu.Lock()
	h.state = stateHealthy
	h.lastErr = ""
	h.seq = c.src.Seq()
	seq := h.seq
	h.mu.Unlock()
	c.updateFleetGauges()
	c.logger.Info("worker joined", "worker", h.id, "shards", h.shards, "seq", seq)
}

// catchUpChunk bounds one catch-up replay request. ~2048 rows keeps a
// request well under maxRPCBody at any realistic path count while
// amortizing the HTTP round trip.
const catchUpChunk = 2048

// catchUpShard brings one shard of a rejoining worker from wseq to the
// coordinator's sequence by replaying the missed rows from the shard's
// retained ring. A worker outside the replayable range — behind the
// retained window's low edge, or ahead of a coordinator that lost tail
// data in its own crash — is reset to the window base and replayed in
// full.
func (c *Coordinator) catchUpShard(h *workerHandle, shard int, wseq uint64) error {
	ring := c.src.CloneShard(shard)
	seq, low := ring.Seq(), ring.SeqLow()
	if wseq > seq || wseq < low {
		var rr ResetResponse
		err := c.rpc(context.Background(), h, "reset", http.MethodPost,
			fmt.Sprintf("/c1/shards/%d/reset", shard), &ResetRequest{Seq: low}, &rr)
		if err != nil {
			return fmt.Errorf("resetting shard %d on %s: %w", shard, h.id, err)
		}
		c.logger.Warn("shard reset for replay",
			"worker", h.id, "shard", shard, "worker_seq", wseq, "window_low", low, "window_high", seq)
		wseq = low
	}
	replayed := 0
	for wseq < seq {
		t := int(wseq - low)
		end := min(t+catchUpChunk, ring.T())
		intervals := make([][]int, 0, end-t)
		for i := t; i < end; i++ {
			intervals = append(intervals, ring.CongestedAt(i).Indices())
		}
		var resp IngestResponse
		err := c.rpc(context.Background(), h, "catchup", http.MethodPost,
			fmt.Sprintf("/c1/shards/%d/ingest", shard),
			&IngestRequest{BaseSeq: wseq, Intervals: intervals}, &resp)
		if err != nil {
			return fmt.Errorf("replaying shard %d to %s: %w", shard, h.id, err)
		}
		replayed += len(intervals)
		wseq = low + uint64(end)
	}
	if replayed > 0 {
		metricCatchupIntervals.Add(uint64(replayed))
		c.logger.Info("shard caught up", "worker", h.id, "shard", shard, "intervals", replayed)
	}
	return nil
}

// markUnreachable latches the worker out of the fleet until the health
// loop rejoins it.
func (c *Coordinator) markUnreachable(h *workerHandle, err error) {
	h.mu.Lock()
	wasHealthy := h.state == stateHealthy
	h.state = stateUnreachable
	h.lastErr = err.Error()
	h.mu.Unlock()
	c.updateFleetGauges()
	if wasHealthy {
		c.logger.Warn("worker unreachable", "worker", h.id, "shards", h.shards, "error", err)
	}
}

// updateFleetGauges recomputes the fleet-level health gauges; callers
// hold no handle locks.
func (c *Coordinator) updateFleetGauges() {
	healthy, unreachable := 0, 0
	for _, h := range c.workers {
		if h.getState() == stateHealthy {
			healthy++
		} else {
			unreachable += len(h.shards)
		}
	}
	metricWorkersHealthy.Set(int64(healthy))
	metricShardsUnreachable.Set(int64(unreachable))
}

// rpc runs one named RPC with the configured per-attempt timeout,
// retrying transport failures with backoff. Application errors
// (*WireError) return immediately: the peer answered, so a retry would
// just repeat the answer.
func (c *Coordinator) rpc(ctx context.Context, h *workerHandle, name, method, path string, in, out any) error {
	var lastErr error
	for attempt := 0; attempt <= c.retries; attempt++ {
		if attempt > 0 {
			select {
			case <-c.stop:
				return lastErr
			case <-ctx.Done():
				return ctx.Err()
			case <-time.After(c.backoff):
			}
		}
		actx, cancel := context.WithTimeout(ctx, c.rpcTimeout)
		start := time.Now()
		err := h.client.do(actx, method, path, in, out)
		cancel()
		if err == nil {
			metricRPCDuration.With(h.id, name).Observe(time.Since(start).Seconds())
			return nil
		}
		metricRPCErrors.With(h.id, name).Inc()
		lastErr = err
		var we *WireError
		if errors.As(err, &we) {
			return err
		}
	}
	return lastErr
}
