package cluster

import "repro/internal/telemetry"

// Cluster metrics, registered once against the process-wide telemetry
// registry. Coordinator and worker roles never share a process, so the
// two halves below are disjoint in any real scrape; both follow the
// repo's conventions (tomod_ prefix, _total counters, _seconds
// histograms, constant-cardinality labels).
var (
	// Coordinator side.
	metricRPCDuration = telemetry.Default().HistogramVec("tomod_cluster_rpc_duration_seconds",
		"Coordinator→worker RPC latency by worker and RPC name (successful attempts).",
		telemetry.ExpBuckets(1e-4, 4, 10), "worker", "rpc")
	metricRPCErrors = telemetry.Default().CounterVec("tomod_cluster_rpc_errors_total",
		"Failed coordinator→worker RPC attempts by worker and RPC name (transport and application errors).",
		"worker", "rpc")
	metricFanout = telemetry.Default().Histogram("tomod_cluster_fanout_seconds",
		"Wall time to fan one ingest batch out to every worker (slowest worker dominates).",
		telemetry.ExpBuckets(1e-4, 4, 10))
	metricShardsAssigned = telemetry.Default().GaugeVec("tomod_cluster_shards_assigned",
		"Partition shards placed on each worker.", "worker")
	metricShardsUnreachable = telemetry.Default().Gauge("tomod_cluster_shards_unreachable",
		"Shards whose owning worker is currently not healthy (drives degraded mode).")
	metricWorkersHealthy = telemetry.Default().Gauge("tomod_cluster_workers_healthy",
		"Workers currently in the healthy state.")
	metricCatchupIntervals = telemetry.Default().Counter("tomod_cluster_catchup_intervals_total",
		"Intervals replayed to rejoining workers from the coordinator's retained window.")

	// Worker side.
	metricWorkerShards = telemetry.Default().Gauge("tomod_cluster_worker_shards",
		"Shards assigned to this worker.")
	metricWorkerSolves = telemetry.Default().Counter("tomod_cluster_worker_solves_total",
		"Per-shard block solves executed by this worker (cache hits at an unchanged sequence excluded).")
	metricWorkerIngested = telemetry.Default().Counter("tomod_cluster_worker_ingest_intervals_total",
		"Interval rows applied to this worker's shard rings (per shard; one broadcast row counts once per assigned shard).")
)
