package cluster

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"math/rand"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/bitset"
	"repro/internal/estimator"
	"repro/internal/netsim"
	"repro/internal/server"
	"repro/internal/topology"
)

// testWorker runs one worker process stand-in on a stable address so a
// "restarted" worker comes back where the coordinator expects it.
type testWorker struct {
	t      *testing.T
	top    *topology.Topology
	walDir string
	addr   string
	wk     *Worker
	ts     *httptest.Server
}

func newTestWorker(t *testing.T, top *topology.Topology, walDir string) *testWorker {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	tw := &testWorker{t: t, top: top, walDir: walDir, addr: l.Addr().String()}
	tw.start(l)
	t.Cleanup(func() {
		if tw.ts != nil {
			tw.kill()
		}
	})
	return tw
}

func (tw *testWorker) url() string { return "http://" + tw.addr }

func (tw *testWorker) start(l net.Listener) {
	tw.wk = NewWorker(WorkerConfig{Topology: tw.top, WALDir: tw.walDir, Logger: discardLogger()})
	ts := httptest.NewUnstartedServer(tw.wk.Handler())
	ts.Listener.Close()
	ts.Listener = l
	ts.Start()
	tw.ts = ts
}

// kill stops serving and drops all in-memory state, leaving only the
// WAL (when configured) behind.
func (tw *testWorker) kill() {
	tw.ts.CloseClientConnections()
	tw.ts.Close()
	tw.wk.Close()
	tw.ts, tw.wk = nil, nil
}

// restart rebinds the same address with a fresh (empty) worker.
func (tw *testWorker) restart() {
	tw.t.Helper()
	var l net.Listener
	var err error
	for i := 0; i < 100; i++ {
		l, err = net.Listen("tcp", tw.addr)
		if err == nil {
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	if err != nil {
		tw.t.Fatalf("rebinding %s: %v", tw.addr, err)
	}
	tw.start(l)
}

// newClusterServer wires a coordinator over the given workers into a
// public server. Health checking runs fast so tests converge quickly.
func newClusterServer(t *testing.T, top *topology.Topology, workers []*testWorker, window int, recompute time.Duration) (*server.Server, *Coordinator) {
	t.Helper()
	specs := make([]WorkerSpec, len(workers))
	for i, tw := range workers {
		specs[i] = WorkerSpec{Addr: tw.url()}
	}
	coord, err := NewCoordinator(CoordinatorConfig{
		Topology:     top,
		Workers:      specs,
		WindowSize:   window,
		SolverOpts:   testSolverOpts(),
		Logger:       discardLogger(),
		RPCTimeout:   20 * time.Second, // cold solves are slow under -race
		HealthEvery:  20 * time.Millisecond,
		RetryBackoff: 10 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	s, err := server.New(top, server.Config{
		WindowSize:     window,
		RecomputeEvery: recompute,
		Algo:           estimator.CorrelationCompleteSharded,
		SolverOpts:     testSolverOpts(),
		Backend:        coord,
		Logger:         discardLogger(),
	})
	if err != nil {
		t.Fatal(err)
	}
	return s, coord
}

// newLocalServer is the single-process sharded reference the cluster
// must bit-match.
func newLocalServer(t *testing.T, top *topology.Topology, window int) *server.Server {
	t.Helper()
	s, err := server.New(top, server.Config{
		WindowSize:     window,
		RecomputeEvery: time.Hour,
		Algo:           estimator.CorrelationCompleteSharded,
		SolverOpts:     testSolverOpts(),
		Logger:         discardLogger(),
	})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func waitFleetHealthy(t *testing.T, coord *Coordinator, timeout time.Duration) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for {
		cs := coord.ClusterStatus()
		if len(cs.UnreachableShards) == 0 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("fleet never became healthy: %+v", cs.Workers)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// ingestRetry drives one batch into the cluster server, retrying the
// 503 shard_unavailable rejections that a worker outage produces. The
// base sequence cannot move while the batch is rejected, so the retry
// is exact.
func ingestRetry(t *testing.T, s *server.Server, batch []*bitset.Set, timeout time.Duration) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for {
		_, err := s.Ingest(batch)
		if err == nil {
			return
		}
		if !errors.Is(err, server.ErrShardUnavailable) {
			t.Fatalf("ingest failed hard: %v", err)
		}
		if time.Now().After(deadline) {
			t.Fatalf("ingest never recovered: %v", err)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

func randomBatch(top *topology.Topology, rng *rand.Rand, n int) []*bitset.Set {
	batch := make([]*bitset.Set, n)
	for i := range batch {
		set := bitset.New(top.NumPaths())
		for p := 0; p < top.NumPaths(); p++ {
			if rng.Float64() < 0.15 {
				set.Add(p)
			}
		}
		batch[i] = set
	}
	return batch
}

// compareSnapshots asserts two final solves are bit-identical across
// every link probability.
func compareSnapshots(t *testing.T, top *topology.Topology, got, want *server.Snapshot) {
	t.Helper()
	if got.Err != nil {
		t.Fatalf("cluster solve: %v", got.Err)
	}
	if want.Err != nil {
		t.Fatalf("reference solve: %v", want.Err)
	}
	if got.SeqHigh != want.SeqHigh || got.T != want.T {
		t.Fatalf("cluster solved seq %d T %d, reference %d/%d", got.SeqHigh, got.T, want.SeqHigh, want.T)
	}
	for e := 0; e < top.NumLinks(); e++ {
		gp, gx := got.Est.LinkCongestProb(e)
		wp, wx := want.Est.LinkCongestProb(e)
		if math.Float64bits(gp) != math.Float64bits(wp) || gx != wx {
			t.Fatalf("link %d: cluster (%v,%v) != single-process (%v,%v)", e, gp, gx, wp, wx)
		}
	}
}

// TestClusterPropertyBitIdentical is the distribution-exactness
// property over randomized topogen topologies: a coordinator + 2
// workers must produce bit-identical estimates to a single sharded
// process fed the same accepted batches — including a case where a
// worker (without WAL) is killed mid-stream and rebuilt purely from
// coordinator replay (reset + full-window catch-up).
func TestClusterPropertyBitIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("cluster property test is slow")
	}
	type tcase struct {
		seed int64
		kill bool
	}
	var cases []tcase
	for seed := int64(1); seed <= 10 && len(cases) < 3; seed++ {
		top := testTopology(t, seed)
		if topology.NewPartition(top).NumShards() < 2 {
			continue
		}
		cases = append(cases, tcase{seed: seed, kill: len(cases) == 1})
	}
	if len(cases) == 0 {
		t.Fatal("no multi-shard topology in seeds 1..10")
	}
	for _, tc := range cases {
		t.Run(fmt.Sprintf("seed=%d,kill=%v", tc.seed, tc.kill), func(t *testing.T) {
			const window, batches, perBatch = 200, 30, 20
			top := testTopology(t, tc.seed)
			workers := []*testWorker{
				newTestWorker(t, top, ""),
				newTestWorker(t, top, ""),
			}
			cs, coord := newClusterServer(t, top, workers, window, time.Hour)
			cs.Start()
			defer cs.Close()
			ref := newLocalServer(t, top, window)
			ref.Start()
			defer ref.Close()
			waitFleetHealthy(t, coord, 10*time.Second)

			rng := rand.New(rand.NewSource(tc.seed * 1000))
			for bi := 0; bi < batches; bi++ {
				batch := randomBatch(top, rng, perBatch)
				if tc.kill && bi == batches/2 {
					workers[1].kill()
					// The outage must reject ingest outright — nothing
					// half-applied, the window frozen.
					if _, err := cs.Ingest(batch); !errors.Is(err, server.ErrShardUnavailable) {
						t.Fatalf("ingest during outage: %v, want shard unavailable", err)
					}
					workers[1].restart()
				}
				ingestRetry(t, cs, batch, 30*time.Second)
				if _, err := ref.Ingest(batch); err != nil {
					t.Fatal(err)
				}
			}
			waitFleetHealthy(t, coord, 10*time.Second)
			compareSnapshots(t, top, cs.Recompute(nil), ref.Recompute(nil))
		})
	}
}

// postBatch sends one /v1/observations batch; it returns the HTTP
// status, the API error code (if any), and the Retry-After header.
func postBatch(client *http.Client, base string, batch []*bitset.Set) (status int, errCode, retryAfter string, err error) {
	var req server.ObservationsRequest
	for _, set := range batch {
		req.Intervals = append(req.Intervals, server.IntervalObs{CongestedPaths: set.Indices()})
	}
	raw, err := json.Marshal(req)
	if err != nil {
		return 0, "", "", err
	}
	resp, err := client.Post(base+"/v1/observations", "application/json", bytes.NewReader(raw))
	if err != nil {
		return 0, "", "", err
	}
	defer resp.Body.Close()
	var env server.Envelope
	if err := json.NewDecoder(resp.Body).Decode(&env); err != nil {
		return resp.StatusCode, "", "", err
	}
	if env.Error != nil {
		errCode = env.Error.Code
	}
	return resp.StatusCode, errCode, resp.Header.Get("Retry-After"), nil
}

// TestClusterE2E is the full cluster acceptance path over real HTTP:
// coordinator + 2 WAL-backed workers, a 10k-interval stream, one worker
// killed mid-stream (asserting latched degraded mode end to end:
// 503 shard_unavailable ingest with Retry-After, failing readiness, the
// cluster block of /v1/status, tomod_cluster_* metrics), then restarted
// — WAL replay + catch-up — and a final solve bit-identical to a
// single-process run. CI runs it under -race.
func TestClusterE2E(t *testing.T) {
	if testing.Short() {
		t.Skip("cluster e2e is slow")
	}
	const window, totalIntervals, perBatch = 1000, 10000, 100
	top := shardedTopology(t)
	workers := []*testWorker{
		newTestWorker(t, top, t.TempDir()),
		newTestWorker(t, top, t.TempDir()),
	}
	cs, coord := newClusterServer(t, top, workers, window, 20*time.Millisecond)
	cs.Start()
	defer cs.Close()
	ts := httptest.NewServer(cs.Handler())
	defer ts.Close()
	client := ts.Client()
	ref := newLocalServer(t, top, window)
	ref.Start()
	defer ref.Close()
	waitFleetHealthy(t, coord, 10*time.Second)

	// The stream is simulated network telemetry, same generator as the
	// load tool.
	rng := rand.New(rand.NewSource(3))
	simCfg := netsim.DefaultConfig(netsim.RandomCongestion)
	simCfg.PerfectE2E = true
	model, err := netsim.NewModel(top, simCfg, totalIntervals, rng)
	if err != nil {
		t.Fatal(err)
	}
	nextBatch := func(base int) []*bitset.Set {
		batch := make([]*bitset.Set, perBatch)
		for i := range batch {
			batch[i] = model.Interval(base+i, rng).CongestedPaths
		}
		return batch
	}

	killAt := totalIntervals / perBatch / 2
	for bi := 0; bi < totalIntervals/perBatch; bi++ {
		batch := nextBatch(bi * perBatch)
		if bi == killAt {
			workers[1].kill()
			assertDegraded(t, client, ts.URL, batch)
			workers[1].restart()
		}
		deadline := time.Now().Add(30 * time.Second)
		for {
			status, code, _, err := postBatch(client, ts.URL, batch)
			if err != nil {
				t.Fatal(err)
			}
			if status == http.StatusOK {
				break
			}
			if status != http.StatusServiceUnavailable || code != server.CodeShardUnavailable {
				t.Fatalf("batch %d: HTTP %d code %q", bi, status, code)
			}
			if time.Now().After(deadline) {
				t.Fatalf("batch %d never accepted", bi)
			}
			time.Sleep(20 * time.Millisecond)
		}
		if _, err := ref.Ingest(batch); err != nil {
			t.Fatal(err)
		}
	}

	waitFleetHealthy(t, coord, 10*time.Second)
	compareSnapshots(t, top, cs.Recompute(nil), ref.Recompute(nil))

	// /v1/status must expose the per-worker placement, healthy again.
	var st server.StatusResponse
	if _, err := getEnvelope(client, ts.URL+"/v1/status", &st); err != nil {
		t.Fatal(err)
	}
	if st.Cluster == nil || st.Cluster.Role != "coordinator" || len(st.Cluster.Workers) != 2 {
		t.Fatalf("status cluster block missing or wrong: %+v", st.Cluster)
	}
	seen := map[int]bool{}
	for _, w := range st.Cluster.Workers {
		if w.State != "healthy" {
			t.Fatalf("worker %s still %s after recovery (%s)", w.ID, w.State, w.LastError)
		}
		if len(w.Shards) == 0 {
			t.Fatalf("worker %s owns no shards", w.ID)
		}
		for _, k := range w.Shards {
			if seen[k] {
				t.Fatalf("shard %d placed twice", k)
			}
			seen[k] = true
		}
	}
	if len(seen) != cs.NumShards() {
		t.Fatalf("placement covers %d shards, want %d", len(seen), cs.NumShards())
	}

	// Cluster metrics are exposed.
	resp, err := client.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	for _, name := range []string{
		"tomod_cluster_rpc_duration_seconds",
		"tomod_cluster_fanout_seconds",
		"tomod_cluster_shards_unreachable",
		"tomod_cluster_workers_healthy",
	} {
		if !strings.Contains(string(body), name) {
			t.Errorf("/metrics is missing %s", name)
		}
	}
}

// assertDegraded checks every degraded-mode surface while a worker is
// down. It first waits for the health loop to latch the outage (so the
// probe batch below is guaranteed to be rejected, never half-applied):
// then ingest must 503 with the structured code and Retry-After,
// readiness must fail, and /v1/status must report the outage.
func assertDegraded(t *testing.T, client *http.Client, base string, batch []*bitset.Set) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		var st server.StatusResponse
		if _, err := getEnvelope(client, base+"/v1/status", &st); err != nil {
			t.Fatal(err)
		}
		if st.Degraded && st.Cluster != nil && len(st.Cluster.UnreachableShards) > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("status never latched the outage: degraded=%v cluster=%+v", st.Degraded, st.Cluster)
		}
		time.Sleep(10 * time.Millisecond)
	}
	status, code, retryAfter, err := postBatch(client, base, batch)
	if err != nil {
		t.Fatal(err)
	}
	if status != http.StatusServiceUnavailable || code != server.CodeShardUnavailable {
		t.Fatalf("outage ingest answered HTTP %d code %q, want 503 %s", status, code, server.CodeShardUnavailable)
	}
	if retryAfter == "" {
		t.Fatal("outage 503 carries no Retry-After")
	}
	readyStatus, err := getEnvelope(client, base+"/v1/readyz", nil)
	if err != nil {
		t.Fatal(err)
	}
	if readyStatus != http.StatusServiceUnavailable {
		t.Fatalf("readyz answered %d during outage, want 503", readyStatus)
	}
}

// getEnvelope fetches an enveloped public-API response.
func getEnvelope(client *http.Client, url string, v any) (int, error) {
	resp, err := client.Get(url)
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	var env server.Envelope
	if err := json.NewDecoder(resp.Body).Decode(&env); err != nil {
		return resp.StatusCode, fmt.Errorf("GET %s: %w", url, err)
	}
	if v != nil && env.Data != nil {
		if err := json.Unmarshal(env.Data, v); err != nil {
			return resp.StatusCode, fmt.Errorf("GET %s: %w", url, err)
		}
	}
	return resp.StatusCode, nil
}
