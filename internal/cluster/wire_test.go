package cluster

import (
	"context"
	"encoding/json"
	"math"
	"math/rand"
	"testing"

	"repro/internal/bitset"
	"repro/internal/core"
	"repro/internal/estimator"
	"repro/internal/experiment"
	"repro/internal/observe"
	"repro/internal/topology"
)

// testTopology builds the deterministic sparse topology the server
// tests use, asserting it actually exercises the partition seam.
func testTopology(t testing.TB, seed int64) *topology.Topology {
	t.Helper()
	top, err := experiment.BuildTopology(experiment.Sparse, experiment.Small(), seed)
	if err != nil {
		t.Fatal(err)
	}
	return top
}

func shardedTopology(t testing.TB) *topology.Topology {
	t.Helper()
	top := testTopology(t, 1)
	if n := topology.NewPartition(top).NumShards(); n < 2 {
		t.Fatalf("test topology has %d shards, want ≥ 2", n)
	}
	return top
}

func testSolverOpts() []estimator.Option {
	return []estimator.Option{
		estimator.WithMaxSubsetSize(2),
		estimator.WithAlwaysGoodTol(0.02),
	}
}

// randomRecorder fills a recorder with seeded random congestion rows.
func randomRecorder(top *topology.Topology, intervals int, seed int64) *observe.Recorder {
	rng := rand.New(rand.NewSource(seed))
	rec := observe.NewRecorder(top.NumPaths())
	for i := 0; i < intervals; i++ {
		set := bitset.New(top.NumPaths())
		for p := 0; p < top.NumPaths(); p++ {
			if rng.Float64() < 0.15 {
				set.Add(p)
			}
		}
		rec.Add(set)
	}
	return rec
}

func TestFingerprint(t *testing.T) {
	a1, a2 := testTopology(t, 1), testTopology(t, 1)
	if Fingerprint(a1) != Fingerprint(a2) {
		t.Fatal("same generation, different fingerprints")
	}
	if Fingerprint(a1) == Fingerprint(testTopology(t, 2)) {
		t.Fatal("different topologies share a fingerprint")
	}
}

// A solved shard block must survive encode → JSON → decode with every
// field bit-identical, NaN good-probabilities included: merged cluster
// estimates are only exact if the wire is.
func TestResultWireRoundTrip(t *testing.T) {
	top := shardedTopology(t)
	sv, err := estimator.NewShardedSolver(top, testSolverOpts()...)
	if err != nil {
		t.Fatal(err)
	}
	rec := randomRecorder(top, 200, 7)
	origBlocks := make([]*core.Result, sv.NumShards())
	wireBlocks := make([]*core.Result, sv.NumShards())
	for shard := 0; shard < sv.NumShards(); shard++ {
		res, info, err := sv.SolveShard(context.Background(), shard, rec)
		if err != nil {
			t.Fatalf("shard %d: %v", shard, err)
		}
		raw, err := json.Marshal(encodeResult(shard, 200, rec.T(), res, info))
		if err != nil {
			t.Fatal(err)
		}
		var over ShardResultResponse
		if err := json.Unmarshal(raw, &over); err != nil {
			t.Fatal(err)
		}
		if over.Shard != shard || over.SeqHigh != 200 || over.T != rec.T() {
			t.Fatalf("shard %d: header mangled: %+v", shard, over)
		}
		got := over.decodeResult(top.NumPaths(), top.NumLinks())
		if len(got.Subsets) != len(res.Subsets) {
			t.Fatalf("shard %d: %d subsets, want %d", shard, len(got.Subsets), len(res.Subsets))
		}
		sawNaN := false
		for i, want := range res.Subsets {
			g := got.Subsets[i]
			if g.Links.Key() != want.Links.Key() || g.CorrSet != want.CorrSet || g.Identifiable != want.Identifiable {
				t.Fatalf("shard %d subset %d: %+v != %+v", shard, i, g, want)
			}
			if math.Float64bits(g.GoodProb) != math.Float64bits(want.GoodProb) {
				t.Fatalf("shard %d subset %d: good prob %v != %v (bit-exact)", shard, i, g.GoodProb, want.GoodProb)
			}
			if math.IsNaN(want.GoodProb) {
				sawNaN = true
			}
		}
		if len(got.PathSets) != len(res.PathSets) {
			t.Fatalf("shard %d: %d path sets, want %d", shard, len(got.PathSets), len(res.PathSets))
		}
		for i := range res.PathSets {
			if got.PathSets[i].Key() != res.PathSets[i].Key() {
				t.Fatalf("shard %d path set %d differs", shard, i)
			}
		}
		if got.Rank != res.Rank || got.Nullity != res.Nullity || got.ClampedRows != res.ClampedRows {
			t.Fatalf("shard %d: rank/nullity/clamped (%d,%d,%d) != (%d,%d,%d)",
				shard, got.Rank, got.Nullity, got.ClampedRows, res.Rank, res.Nullity, res.ClampedRows)
		}
		_ = sawNaN // coverage varies by shard; the bit-exact check above is what matters
		origBlocks[shard] = res
		wireBlocks[shard] = got
	}

	// The decoded blocks must merge to the same estimate as the
	// originals: every link probability bit-identical.
	want := sv.Merge(origBlocks, rec)
	got := sv.Merge(wireBlocks, rec)
	for e := 0; e < top.NumLinks(); e++ {
		wp, wx := want.LinkCongestProb(e)
		gp, gx := got.LinkCongestProb(e)
		if math.Float64bits(wp) != math.Float64bits(gp) || wx != gx {
			t.Fatalf("link %d: merged estimate over wire blocks (%v,%v) != local (%v,%v)", e, gp, gx, wp, wx)
		}
	}
}
