package cluster

import (
	"context"
	"encoding/json"
	"fmt"
	"log/slog"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"sync"

	"repro/internal/bitset"
	"repro/internal/estimator"
	"repro/internal/stream"
	"repro/internal/telemetry"
	"repro/internal/topology"
	"repro/internal/wal"
)

// WorkerConfig parameterizes one worker process.
type WorkerConfig struct {
	// ID is the worker's identity. Empty means adopt the ID the
	// coordinator sends with the first assignment; set it explicitly
	// (-worker-id) to make the coordinator's placement fail loudly when
	// it reaches the wrong process.
	ID string

	// Topology is the monitored topology; its fingerprint must match
	// the coordinator's or every RPC is rejected.
	Topology *topology.Topology

	// WALDir enables per-shard durable ingest: shard k logs under
	// WALDir/shard-<k>, so multiple shards on one worker never
	// interleave segment files. Empty disables durability.
	WALDir string

	// Logger receives the worker's structured log events; nil means
	// slog.Default().
	Logger *slog.Logger
}

// workerShard is one assigned shard's state: its ring (the shard's
// masked rows only), its WAL, and its solve serialization + response
// cache. The ring pointer and its contents are guarded by the worker's
// mu; solveMu serializes solves per shard and guards the cache.
type workerShard struct {
	shard int
	mask  *bitset.Set // shard's path universe; nil when the partition is degenerate
	ring  *stream.Window
	wal   *wal.WAL

	solveMu   sync.Mutex
	cached    *ShardResultResponse
	cachedSeq uint64
	solvedYet bool
}

// Worker owns a set of partition shards on behalf of a coordinator: it
// ingests their masked interval rows (durably, when a WAL directory is
// configured), solves each shard's block on demand with warm structural
// plans, and serves the internal /c1/* API.
type Worker struct {
	top    *topology.Topology
	part   *topology.Partition
	fp     string
	cfg    WorkerConfig
	logger *slog.Logger

	// mu guards the assignment (id, window, settings, solver, shards)
	// and every ring mutation; result reads clone their ring under it.
	// Lock order: mu before a shard's solveMu, never the reverse.
	mu       sync.Mutex
	id       string
	window   int
	settings estimator.Settings
	solver   *estimator.ShardedSolver
	shards   map[int]*workerShard
	order    []int // assigned shard IDs, ascending
}

// NewWorker builds an unassigned worker; placement arrives via
// POST /c1/assign.
func NewWorker(cfg WorkerConfig) *Worker {
	logger := cfg.Logger
	if logger == nil {
		logger = slog.Default()
	}
	return &Worker{
		top:    cfg.Topology,
		part:   topology.NewPartition(cfg.Topology),
		fp:     Fingerprint(cfg.Topology),
		cfg:    cfg,
		logger: logger,
		id:     cfg.ID,
	}
}

// Close releases the per-shard WALs (flushing their tails). The worker
// must no longer be serving.
func (wk *Worker) Close() {
	wk.mu.Lock()
	defer wk.mu.Unlock()
	for _, ws := range wk.shards {
		if ws.wal != nil {
			ws.wal.Close()
			ws.wal = nil
		}
	}
}

// Handler returns the worker's internal API.
func (wk *Worker) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /c1/assign", wk.handleAssign)
	mux.HandleFunc("POST /c1/ingest", wk.handleIngest)
	mux.HandleFunc("POST /c1/shards/{shard}/ingest", wk.handleShardIngest)
	mux.HandleFunc("POST /c1/shards/{shard}/reset", wk.handleReset)
	mux.HandleFunc("GET /c1/shards/{shard}/result", wk.handleResult)
	mux.HandleFunc("GET /c1/status", wk.handleStatus)
	mux.HandleFunc("GET /c1/healthz", wk.handleHealthz)
	mux.Handle("GET /metrics", telemetry.Handler(telemetry.Default()))
	return mux
}

// numShards is the partition's shard universe (at least 1, matching
// estimator.ShardedSolver).
func (wk *Worker) numShards() int {
	if n := wk.part.NumShards(); n > 1 {
		return n
	}
	return 1
}

func (wk *Worker) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeWire(w, http.StatusOK, map[string]string{"status": "ok"})
}

func (wk *Worker) handleStatus(w http.ResponseWriter, r *http.Request) {
	wk.mu.Lock()
	defer wk.mu.Unlock()
	resp := WorkerStatusResponse{
		WorkerID:    wk.id,
		Fingerprint: wk.fp,
		WindowSize:  wk.window,
		Shards:      wk.shardSeqsLocked(),
	}
	writeWire(w, http.StatusOK, resp)
}

// shardSeqsLocked flattens the per-shard sequences, ascending by shard;
// the caller holds mu.
func (wk *Worker) shardSeqsLocked() []ShardSeq {
	out := make([]ShardSeq, 0, len(wk.order))
	for _, k := range wk.order {
		out = append(out, ShardSeq{Shard: k, Seq: wk.shards[k].ring.Seq()})
	}
	return out
}

func decodeBody(w http.ResponseWriter, r *http.Request, v any) bool {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxRPCBody))
	if err := dec.Decode(v); err != nil {
		writeWireError(w, http.StatusBadRequest,
			&WireError{Code: CodeBadRequest, Message: fmt.Sprintf("decoding body: %v", err)})
		return false
	}
	return true
}

func (wk *Worker) handleAssign(w http.ResponseWriter, r *http.Request) {
	var req AssignRequest
	if !decodeBody(w, r, &req) {
		return
	}
	if req.Fingerprint != wk.fp {
		writeWireError(w, http.StatusConflict, &WireError{Code: CodeTopologyMismatch,
			Message: fmt.Sprintf("coordinator fingerprint %.12s… does not match worker %.12s…", req.Fingerprint, wk.fp)})
		return
	}
	if req.WindowSize <= 0 {
		writeWireError(w, http.StatusBadRequest, &WireError{Code: CodeBadRequest,
			Message: fmt.Sprintf("window size %d must be positive", req.WindowSize)})
		return
	}
	numShards := wk.numShards()
	seen := map[int]bool{}
	for _, k := range req.Shards {
		if k < 0 || k >= numShards || seen[k] {
			writeWireError(w, http.StatusBadRequest, &WireError{Code: CodeBadRequest,
				Message: fmt.Sprintf("shard %d invalid or repeated (universe [0,%d))", k, numShards)})
			return
		}
		seen[k] = true
	}
	wk.mu.Lock()
	defer wk.mu.Unlock()
	if wk.id == "" {
		wk.id = req.WorkerID
	} else if req.WorkerID != wk.id {
		writeWireError(w, http.StatusConflict, &WireError{Code: CodeAssignmentChanged,
			Message: fmt.Sprintf("this worker is %q, not %q", wk.id, req.WorkerID)})
		return
	}
	if wk.solver != nil {
		// Re-assign: idempotent when nothing changed (the common rejoin
		// handshake); anything else needs a worker restart, which
		// clears in-memory state and re-places cleanly.
		if wk.window == req.WindowSize && wk.settings == req.Solver && wk.sameShardsLocked(req.Shards) {
			writeWire(w, http.StatusOK, AssignResponse{WorkerID: wk.id, Shards: wk.shardSeqsLocked()})
			return
		}
		writeWireError(w, http.StatusConflict, &WireError{Code: CodeAssignmentChanged,
			Message: "assignment conflicts with live state; restart the worker to re-place"})
		return
	}
	sv, err := estimator.NewShardedSolver(wk.top, settingsOptions(req.Solver)...)
	if err != nil {
		writeWireError(w, http.StatusBadRequest, &WireError{Code: CodeBadRequest,
			Message: fmt.Sprintf("solver settings: %v", err)})
		return
	}
	shards := make(map[int]*workerShard, len(req.Shards))
	order := append([]int(nil), req.Shards...)
	sort.Ints(order)
	for _, k := range order {
		ws := &workerShard{
			shard: k,
			ring:  stream.NewWindow(wk.top.NumPaths(), req.WindowSize),
		}
		if wk.part.NumShards() > 1 {
			ws.mask = wk.part.ShardPaths(k)
		}
		if wk.cfg.WALDir != "" {
			if err := wk.openShardWAL(ws, req.WindowSize, 0); err != nil {
				for _, prev := range shards {
					if prev.wal != nil {
						prev.wal.Close()
					}
				}
				writeWireError(w, http.StatusInternalServerError, &WireError{Code: CodeWALUnavailable,
					Message: fmt.Sprintf("shard %d WAL: %v", k, err)})
				return
			}
		}
		shards[k] = ws
	}
	wk.window = req.WindowSize
	wk.settings = req.Solver
	wk.solver = sv
	wk.shards = shards
	wk.order = order
	metricWorkerShards.Set(int64(len(order)))
	wk.logger.Info("assignment accepted",
		"worker", wk.id, "shards", order, "window", wk.window)
	writeWire(w, http.StatusOK, AssignResponse{WorkerID: wk.id, Shards: wk.shardSeqsLocked()})
}

// sameShardsLocked reports whether the request's shard set equals the
// live assignment; the caller holds mu.
func (wk *Worker) sameShardsLocked(reqShards []int) bool {
	if len(reqShards) != len(wk.order) {
		return false
	}
	for _, k := range reqShards {
		if _, ok := wk.shards[k]; !ok {
			return false
		}
	}
	return true
}

// openShardWAL opens (or recovers) shard ws's log under
// WALDir/shard-<k> and rebuilds the ring from it, mirroring the
// standalone server's recovery: fast-forward to the log's first
// retained sequence, replay through the raw Add path, then attach the
// log so subsequent ingest logs before applying. initialSeq re-bases an
// empty log after a reset.
func (wk *Worker) openShardWAL(ws *workerShard, window int, initialSeq uint64) error {
	w, err := wal.Open(wal.Options{
		Dir:        filepath.Join(wk.cfg.WALDir, fmt.Sprintf("shard-%d", ws.shard)),
		Horizon:    window,
		InitialSeq: initialSeq,
	})
	if err != nil {
		return err
	}
	rec := w.Recovered()
	if rec.Records > 0 {
		ws.ring.ResetSeq(rec.FirstSeq)
		if err := w.Replay(func(_ uint64, batch []*bitset.Set) error {
			for _, obs := range batch {
				ws.ring.Add(obs)
			}
			return nil
		}); err != nil {
			w.Close()
			return fmt.Errorf("replaying: %w", err)
		}
	}
	ws.ring.SetLog(w)
	ws.wal = w
	wk.logger.Info("shard wal recovered",
		"shard", ws.shard,
		"records", rec.Records,
		"first_seq", rec.FirstSeq,
		"last_seq", rec.LastSeq,
		"truncated_bytes", rec.TruncatedBytes)
	return nil
}

// decodeIntervals validates and converts wire intervals to path sets,
// masked to the shard's universe when mask is non-nil.
func (wk *Worker) decodeIntervals(intervals [][]int, mask *bitset.Set) ([]*bitset.Set, error) {
	numPaths := wk.top.NumPaths()
	batch := make([]*bitset.Set, len(intervals))
	for i, iv := range intervals {
		set := bitset.New(numPaths)
		for _, p := range iv {
			if p < 0 || p >= numPaths {
				return nil, fmt.Errorf("interval %d: path %d outside universe [0,%d)", i, p, numPaths)
			}
			set.Add(p)
		}
		if mask != nil {
			set.IntersectWith(mask)
		}
		batch[i] = set
	}
	return batch, nil
}

// applyToShard applies the request's suffix this shard has not yet
// seen: rows below the shard's sequence were applied by an earlier
// delivery of the same batch and are skipped, which is what makes
// coordinator retries after a partial fan-out failure safe. The caller
// holds mu and has already ruled out a gap.
func (wk *Worker) applyToShard(ws *workerShard, req *IngestRequest) error {
	seq := ws.ring.Seq()
	skip := int(seq - req.BaseSeq)
	if skip >= len(req.Intervals) {
		return nil // entire batch already applied
	}
	batch, err := wk.decodeIntervals(req.Intervals[skip:], ws.mask)
	if err != nil {
		return &WireError{Code: CodeBadRequest, Message: err.Error()}
	}
	if _, err := ws.ring.AddBatch(batch); err != nil {
		return &WireError{Code: CodeWALUnavailable,
			Message: fmt.Sprintf("shard %d: %v", ws.shard, err)}
	}
	metricWorkerIngested.Add(uint64(len(batch)))
	return nil
}

// writeIngestError maps an applyToShard failure.
func (wk *Worker) writeIngestError(w http.ResponseWriter, err error) {
	we, ok := err.(*WireError)
	if !ok {
		we = &WireError{Code: CodeBadRequest, Message: err.Error()}
	}
	status := http.StatusBadRequest
	if we.Code == CodeWALUnavailable {
		status = http.StatusServiceUnavailable
	}
	writeWireError(w, status, we)
}

func (wk *Worker) handleIngest(w http.ResponseWriter, r *http.Request) {
	var req IngestRequest
	if !decodeBody(w, r, &req) {
		return
	}
	wk.mu.Lock()
	defer wk.mu.Unlock()
	if wk.solver == nil {
		writeWireError(w, http.StatusConflict, &WireError{Code: CodeNotAssigned,
			Message: "no assignment; POST /c1/assign first"})
		return
	}
	// A base ahead of any shard means this worker missed batches the
	// coordinator believes delivered (or the shard lags after a rejoin):
	// refuse the whole request — partial application would break ring
	// lockstep — and report every sequence so the coordinator can plan
	// per-shard catch-up.
	for _, k := range wk.order {
		if req.BaseSeq > wk.shards[k].ring.Seq() {
			writeWireError(w, http.StatusConflict, &WireError{
				Code:    CodeSeqGap,
				Message: fmt.Sprintf("batch base %d is ahead of shard %d (seq %d)", req.BaseSeq, k, wk.shards[k].ring.Seq()),
				Shards:  wk.shardSeqsLocked(),
			})
			return
		}
	}
	for _, k := range wk.order {
		if err := wk.applyToShard(wk.shards[k], &req); err != nil {
			wk.writeIngestError(w, err)
			return
		}
	}
	writeWire(w, http.StatusOK, IngestResponse{Shards: wk.shardSeqsLocked()})
}

// shardFromPath resolves the {shard} path value to live state; the
// caller holds mu.
func (wk *Worker) shardFromPathLocked(w http.ResponseWriter, r *http.Request) *workerShard {
	k, err := strconv.Atoi(r.PathValue("shard"))
	if err != nil {
		writeWireError(w, http.StatusBadRequest, &WireError{Code: CodeBadRequest,
			Message: fmt.Sprintf("shard %q is not an integer", r.PathValue("shard"))})
		return nil
	}
	if wk.solver == nil {
		writeWireError(w, http.StatusConflict, &WireError{Code: CodeNotAssigned,
			Message: "no assignment; POST /c1/assign first"})
		return nil
	}
	ws, ok := wk.shards[k]
	if !ok {
		writeWireError(w, http.StatusNotFound, &WireError{Code: CodeUnknownShard,
			Message: fmt.Sprintf("shard %d is not assigned to worker %q", k, wk.id)})
		return nil
	}
	return ws
}

// handleShardIngest is the per-shard catch-up path: the coordinator
// replays rows one shard missed (already masked to the shard's paths,
// since they come from the coordinator's own shard ring) without
// touching the worker's other shards — which may themselves lag at a
// different sequence.
func (wk *Worker) handleShardIngest(w http.ResponseWriter, r *http.Request) {
	var req IngestRequest
	if !decodeBody(w, r, &req) {
		return
	}
	wk.mu.Lock()
	defer wk.mu.Unlock()
	ws := wk.shardFromPathLocked(w, r)
	if ws == nil {
		return
	}
	if req.BaseSeq > ws.ring.Seq() {
		writeWireError(w, http.StatusConflict, &WireError{
			Code:    CodeSeqGap,
			Message: fmt.Sprintf("batch base %d is ahead of shard %d (seq %d)", req.BaseSeq, ws.shard, ws.ring.Seq()),
			Shards:  []ShardSeq{{Shard: ws.shard, Seq: ws.ring.Seq()}},
		})
		return
	}
	if err := wk.applyToShard(ws, &req); err != nil {
		wk.writeIngestError(w, err)
		return
	}
	writeWire(w, http.StatusOK, IngestResponse{
		Shards: []ShardSeq{{Shard: ws.shard, Seq: ws.ring.Seq()}},
	})
}

// handleReset discards a shard's ring and WAL and fast-forwards the
// empty state to the requested base. The coordinator uses it when
// replay cannot bridge the gap: the worker's recovered sequence has
// aged out of the coordinator's retained window, or is ahead of a
// coordinator that lost unsynced tail data in a crash.
func (wk *Worker) handleReset(w http.ResponseWriter, r *http.Request) {
	var req ResetRequest
	if !decodeBody(w, r, &req) {
		return
	}
	wk.mu.Lock()
	defer wk.mu.Unlock()
	ws := wk.shardFromPathLocked(w, r)
	if ws == nil {
		return
	}
	ring := stream.NewWindow(wk.top.NumPaths(), wk.window)
	if req.Seq > 0 {
		ring.ResetSeq(req.Seq)
	}
	if ws.wal != nil {
		ws.wal.Close()
		dir := filepath.Join(wk.cfg.WALDir, fmt.Sprintf("shard-%d", ws.shard))
		if err := os.RemoveAll(dir); err != nil {
			ws.wal = nil // the old log is closed either way
			writeWireError(w, http.StatusInternalServerError, &WireError{Code: CodeWALUnavailable,
				Message: fmt.Sprintf("shard %d: clearing WAL: %v", ws.shard, err)})
			return
		}
		ws.wal = nil
		prev := ws.ring
		ws.ring = ring
		if err := wk.openShardWAL(ws, wk.window, req.Seq); err != nil {
			ws.ring = prev
			writeWireError(w, http.StatusInternalServerError, &WireError{Code: CodeWALUnavailable,
				Message: fmt.Sprintf("shard %d: reopening WAL: %v", ws.shard, err)})
			return
		}
	} else {
		ws.ring = ring
	}
	// The old sequence numbering may now mean different intervals:
	// drop the solve cache.
	ws.solveMu.Lock()
	ws.cached, ws.cachedSeq, ws.solvedYet = nil, 0, false
	ws.solveMu.Unlock()
	wk.logger.Info("shard reset", "shard", ws.shard, "seq", req.Seq)
	writeWire(w, http.StatusOK, ResetResponse{Shard: ws.shard, Seq: ws.ring.Seq()})
}

// handleResult solves the shard's block over its current ring (warm
// plans make the steady state cheap) and returns it with the sequence
// it covers. Repeated polls at an unchanged sequence serve the cached
// encoding without re-solving.
func (wk *Worker) handleResult(w http.ResponseWriter, r *http.Request) {
	wk.mu.Lock()
	ws := wk.shardFromPathLocked(w, r)
	if ws == nil {
		wk.mu.Unlock()
		return
	}
	ring := ws.ring.Clone()
	solver := wk.solver
	wk.mu.Unlock()

	ws.solveMu.Lock()
	defer ws.solveMu.Unlock()
	if ws.solvedYet && ws.cachedSeq == ring.Seq() {
		writeWire(w, http.StatusOK, ws.cached)
		return
	}
	// Solve detached from the request context: a poller that times out
	// mid-solve would otherwise abort the work, and its retry would
	// start over — a livelock for solves longer than the caller's
	// timeout. Completing anyway caches the block, so the retry is an
	// instant hit.
	res, info, err := solver.SolveShard(context.Background(), ws.shard, ring)
	if err != nil {
		writeWireError(w, http.StatusInternalServerError, &WireError{Code: CodeSolverFailed,
			Message: fmt.Sprintf("shard %d: %v", ws.shard, err)})
		return
	}
	resp := encodeResult(ws.shard, ring.Seq(), ring.T(), res, info)
	ws.cached, ws.cachedSeq, ws.solvedYet = resp, ring.Seq(), true
	metricWorkerSolves.Inc()
	writeWire(w, http.StatusOK, resp)
}
